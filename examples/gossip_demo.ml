(* Gossiping (Appendix A): all-to-all broadcast on a √n-connected graph.

   This is the paper's motivating example: with vertex connectivity
   k = Θ(√n), the decomposition-based gossip finishes in O~(n/k + n/k)
   rounds instead of the trivial O(n), because messages flow in parallel
   through Θ(k/log n) vertex-disjoint(-ish) dominating trees.

     dune exec examples/gossip_demo.exe *)

let () =
  let n = 64 in
  let k = 32 in
  (* ~ sqrt n-ish connectivity, the regime discussed in Appendix A *)
  let g = Graphs.Gen.harary ~k ~n in
  Format.printf "gossiping on n=%d, vertex connectivity k=%d@.@." n k;

  (* high-rate decomposition: t = Θ(k) classes over few layers *)
  let cds = Domtree.Cds_packing.run g ~classes:(k * 2 / 3) ~layers:2 in
  let packing = Domtree.Tree_extract.of_cds_packing cds in
  Format.printf "decomposition: %d dominating trees, packing size %.2f@."
    (Domtree.Packing.count packing)
    (Domtree.Packing.size packing);

  let net = Congest.Net.create Congest.Model.V_congest g in
  let report = Routing.Gossip.all_to_all net packing ~k in
  let r = report.Routing.Gossip.result in
  Format.printf
    "tree-parallel gossip: %d messages in %d rounds (throughput %.2f/round)@."
    r.Routing.Broadcast.messages r.Routing.Broadcast.rounds
    r.Routing.Broadcast.throughput;
  Format.printf "Corollary A.1 reference eta + (N+n)/k = %.1f rounds@."
    report.Routing.Gossip.bound;

  let net2 = Congest.Net.create Congest.Model.V_congest g in
  let naive = Routing.Gossip.all_to_all_naive net2 in
  Format.printf
    "single-BFS-tree baseline: %d rounds (throughput %.2f/round)@."
    naive.Routing.Broadcast.rounds naive.Routing.Broadcast.throughput;
  Format.printf "@.speedup: %.2fx@."
    (float_of_int naive.Routing.Broadcast.rounds
    /. float_of_int r.Routing.Broadcast.rounds)
