(* Vertex-connectivity approximation (Corollary 1.7): the packing-based
   O(log n)-approximation, centralized and distributed, against the
   exact (flow-based) value — on graph families where the exact value is
   known by construction.

     dune exec examples/vc_approx_demo.exe *)

let () =
  Format.printf "== O(log n)-approximation of vertex connectivity ==@.@.";
  Format.printf "%-28s %5s %5s %8s %8s@." "graph" "k" "k-hat" "ratio"
    "attempts";
  List.iter
    (fun (name, g) ->
      let truth = Graphs.Connectivity.vertex_connectivity g in
      let r = Domtree.Vc_approx.centralized g in
      Format.printf "%-28s %5d %5d %8.2f %8d@." name truth
        r.Domtree.Vc_approx.estimate
        (Domtree.Vc_approx.approximation_ratio ~truth r)
        r.Domtree.Vc_approx.attempts)
    [
      ("harary k=4 n=48", Graphs.Gen.harary ~k:4 ~n:48);
      ("harary k=8 n=64", Graphs.Gen.harary ~k:8 ~n:64);
      ("harary k=16 n=96", Graphs.Gen.harary ~k:16 ~n:96);
      ("hypercube d=5", Graphs.Gen.hypercube 5);
      ("clique path k=6", Graphs.Gen.clique_path ~k:6 ~len:10);
      ("2 cliques, 3 bridges", Graphs.Gen.two_cliques_bridged ~size:16 ~bridges:3);
    ];

  Format.printf "@.distributed (V-CONGEST) on harary k=8 n=48:@.";
  let g = Graphs.Gen.harary ~k:8 ~n:48 in
  let net = Congest.Net.create Congest.Model.V_congest g in
  let r = Domtree.Vc_approx.distributed net in
  Format.printf "estimate %d (truth 8), %d rounds, %d messages@."
    r.Domtree.Vc_approx.estimate (Congest.Net.rounds net)
    (Congest.Net.messages_sent net)
