(* Quickstart: build a well-connected graph, run both connectivity
   decompositions (vertex -> dominating trees, edge -> spanning trees),
   verify them, and print what came out.

     dune exec examples/quickstart.exe *)

let () =
  Format.printf "== Connectivity decomposition quickstart ==@.@.";

  (* a 12-vertex-connected graph on 72 nodes *)
  let k = 12 in
  let g = Graphs.Gen.harary ~k ~n:72 in
  Format.printf "graph: n=%d m=%d vertex-connectivity=%d edge-connectivity=%d@."
    (Graphs.Graph.n g) (Graphs.Graph.m g)
    (Graphs.Connectivity.vertex_connectivity g)
    (Graphs.Connectivity.edge_connectivity g);

  (* --- vertex connectivity -> fractional dominating-tree packing --- *)
  Format.printf "@.-- dominating-tree packing (Theorem 1.2) --@.";
  let cds = Domtree.Cds_packing.pack g ~k in
  let dom = Domtree.Tree_extract.of_cds_packing cds in
  Format.printf "trees: %d, size: %.2f, max node load: %.2f, multiplicity: %d@."
    (Domtree.Packing.count dom)
    (Domtree.Packing.size dom)
    (Domtree.Packing.max_node_load dom)
    (Domtree.Packing.max_multiplicity dom);
  Format.printf "max tree diameter: %d (n/k = %d)@."
    (Domtree.Packing.max_tree_diameter dom)
    (Graphs.Graph.n g / k);
  (match Domtree.Packing.verify dom with
  | [] -> Format.printf "verification: OK@."
  | vs ->
    List.iter (Format.printf "violation: %a@." Domtree.Packing.pp_violation) vs);

  (* --- edge connectivity -> fractional spanning-tree packing --- *)
  Format.printf "@.-- spanning-tree packing (Theorem 1.3) --@.";
  let sp = Spantree.Sampling_pack.run_auto g in
  let packing = sp.Spantree.Sampling_pack.packing in
  Format.printf "trees: %d, size: %.2f (target %d), max edge load: %.3f@."
    (Spantree.Spacking.count packing)
    (Spantree.Spacking.size packing)
    (Spantree.Lagrangian.target ~lambda:k)
    (Spantree.Spacking.max_edge_load packing);
  (match Spantree.Spacking.verify ~tolerance:1e-6 packing with
  | [] -> Format.printf "verification: OK@."
  | vs ->
    List.iter (Format.printf "violation: %a@." Spantree.Spacking.pp_violation) vs);

  (* --- the same, distributed --- *)
  Format.printf "@.-- distributed dominating-tree packing (Theorem 1.1) --@.";
  let net = Congest.Net.create Congest.Model.V_congest g in
  let dres = Domtree.Dist_packing.pack net ~k in
  let valid = List.length (Domtree.Cds_packing.valid_classes dres) in
  Format.printf "valid classes: %d/%d, rounds: %d, messages: %d@."
    valid dres.Domtree.Cds_packing.classes
    (Congest.Net.rounds net) (Congest.Net.messages_sent net);
  let d = Graphs.Traversal.diameter g in
  let sqrt_n = sqrt (float_of_int (Graphs.Graph.n g)) in
  Format.printf "round budget shape: D + sqrt(n) = %.0f (x polylog)@."
    (float_of_int d +. sqrt_n)
