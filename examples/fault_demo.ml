(* Fault injection: run all-to-all gossip on a k-connected graph while
   an adversary crashes nodes and drops messages, and watch the CDS
   packing reroute around the damage where a single BFS tree collapses.

   Everything is deterministic for the fixed seeds below. *)

module F = Congest.Faults

let () =
  let k = 12 and n = 36 in
  let g = Graphs.Gen.harary ~k ~n in
  let res =
    Domtree.Cds_packing.run ~seed:1 g ~classes:(max 1 (2 * k / 3)) ~layers:2
  in
  let packing = Domtree.Tree_extract.of_cds_packing res in
  Format.printf "graph: harary k=%d n=%d; packing: %d dominating trees@." k n
    (Domtree.Packing.count packing);

  (* the adversary: two fail-stop crashes plus 3% background loss *)
  let specs = [ F.Crash_at [ (4, 1); (8, n / 2) ]; F.Drop_bernoulli 0.03 ] in

  let run label f =
    let net = Congest.Net.create Congest.Model.V_congest g in
    let faults = F.create ~seed:3 specs in
    let r : Routing.Broadcast.ft_result = f net faults in
    Format.printf
      "%-18s %3d/%2d delivered, %4d rounds, coverage %.3f, %d dead trees@."
      label r.ft_delivered r.ft_messages r.ft_rounds r.ft_coverage
      r.ft_dead_trees;
    r
  in
  let r =
    run "CDS packing:" (fun net faults ->
        Routing.Gossip.all_to_all_ft ~seed:5 net faults packing)
  in
  let rn =
    run "single BFS tree:" (fun net faults ->
        Routing.Gossip.all_to_all_naive_ft net faults)
  in
  assert r.Routing.Broadcast.ft_converged;
  assert (r.ft_coverage >= rn.ft_coverage);
  assert (r.ft_throughput > rn.ft_throughput);

  (* the verify-and-retry pipeline: every decomposition is guarded by
     the Appendix E tester before being trusted *)
  let net = Congest.Net.create Congest.Model.V_congest g in
  let v = Domtree.Reliable.pack_verified_distributed ~seed:1 net ~k in
  assert v.Domtree.Reliable.verified;
  Format.printf
    "verified decomposition: %d attempt(s), %d CONGEST rounds charged@."
    (List.length v.Domtree.Reliable.attempts)
    v.Domtree.Reliable.rounds_charged
