(* Self-healing decomposition: break an already-built CDS packing with
   targeted crashes, then race the two recovery policies of
   Domtree.Reliable — [`Retry] re-decomposes from scratch, [`Repair]
   splices the surviving fragments locally and re-verifies. Both return
   a machine-checkable Certificate for whatever survived.

   Everything is deterministic for the fixed seeds below. *)

module F = Congest.Faults
module Reliable = Domtree.Reliable
module Certificate = Domtree.Certificate

let () =
  let k = 8 and n = 48 and seed = 11 in
  let g = Graphs.Gen.harary ~k ~n in
  let classes = max 2 (2 * k / 3) and layers = 2 in

  (* calibrate: how long does the packing take unmolested? A crash storm
     scheduled after that point hits the verification window — the
     packing is already built, and the storm punches holes in it. *)
  let after =
    let net = Congest.Net.create Congest.Model.V_congest g in
    ignore (Domtree.Dist_packing.run ~seed net ~classes ~layers);
    Congest.Net.rounds net + 2
  in
  Format.printf "harary k=%d n=%d: packing takes %d rounds; storm at %d@." k n
    (after - 2) after;

  let race policy =
    let net = Congest.Net.create Congest.Model.V_congest g in
    let faults =
      F.create ~seed
        [
          F.Crash_storm
            { from_round = after; per_round = 4; storm_rounds = 3; universe = n };
        ]
    in
    F.install net faults;
    let r = Reliable.run_verified_distributed ~seed ~policy ~k net ~classes ~layers in
    Format.printf
      "%-8s verified=%b in %d rounds, %d attempt(s), %d/%d classes, %d crashed@."
      (match policy with `Retry -> "retry:" | `Repair -> "repair:")
      r.Reliable.verified r.Reliable.rounds_charged
      (List.length r.Reliable.attempts)
      r.Reliable.classes_retained classes
      (List.length (F.crashed_nodes faults));
    (match r.Reliable.repair with
    | Some rep -> Format.printf "  %a@." Domtree.Repair.pp rep
    | None -> ());
    (* the certificate is a claim anyone can re-check against the live
       subgraph — here we do, with an independent seed *)
    (match
       Certificate.check ~seed:(seed + 100) ~live:(F.alive faults) g
         ~memberships:(fun v -> r.Reliable.memberships.(v))
         r.Reliable.certificate
     with
    | Ok () -> Format.printf "  certificate: %a — checks@." Certificate.pp r.Reliable.certificate
    | Error es -> List.iter (Format.printf "  certificate REJECTED: %s@.") es);
    r
  in

  let retry = race `Retry in
  let repair = race `Repair in
  assert repair.Reliable.verified;
  assert (repair.Reliable.classes_retained = classes);
  (* the point of incremental repair: where both policies cope, repair
     is never slower — and here retry burns its whole budget without
     ever verifying *)
  assert ((not retry.Reliable.verified)
         || repair.Reliable.rounds_charged <= retry.Reliable.rounds_charged);
  Format.printf "repair healed in %d rounds; full retry charged %d@."
    repair.Reliable.rounds_charged retry.Reliable.rounds_charged
