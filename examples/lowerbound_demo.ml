(* The Appendix G lower bound, made executable: build G(X,Y) (Fig. 3),
   check the cut dichotomy of Lemma G.4, and run a real distributed
   vertex-connectivity protocol on it while counting the communication
   that crosses the Alice/Bob midline.

     dune exec examples/lowerbound_demo.exe *)

let () =
  let rng = Random.State.make [| 2026 |] in
  let h = 5 and ell = 2 and w = 6 in
  Format.printf "G(X,Y) with h=%d, ell=%d, w=%d@.@." h ell w;

  let show name inst =
    let c = Lowerbound.Construction.build inst ~ell ~w in
    let g = c.Lowerbound.Construction.graph in
    let k, cut = Lowerbound.Construction.cut_dichotomy c in
    Format.printf "%s instance: X={%s} Y={%s}@." name
      (String.concat "," (List.map string_of_int inst.Lowerbound.Disjointness.x))
      (String.concat "," (List.map string_of_int inst.Lowerbound.Disjointness.y));
    Format.printf "  n=%d diameter<=3: %b  vertex connectivity=%d %s@."
      (Graphs.Graph.n g)
      (Lowerbound.Construction.diameter_ok c)
      k
      (match cut with
      | Some ids ->
        Printf.sprintf "(min cut = {a,b,u_z,v_z} = {%s})"
          (String.concat "," (List.map string_of_int ids))
      | None -> "(every cut >= w)");
    c
  in
  let _cd =
    show "disjoint   "
      (Lowerbound.Disjointness.random_disjoint rng ~h ~density:0.6)
  in
  let ci =
    show "intersecting"
      (Lowerbound.Disjointness.random_intersecting rng ~h ~density:0.6)
  in

  Format.printf "@.two-party reduction (Lemma G.6):@.";
  let n = Graphs.Graph.n ci.Lowerbound.Construction.graph in
  Format.printf "  message bandwidth B = %d bits@."
    (Lowerbound.Simulation.bits_per_message ~n);
  Format.printf "  simulating T rounds costs 2BT bits; T=10 -> %d bits@."
    (Lowerbound.Simulation.two_party_cost ~rounds:10 ~n);
  Format.printf "  Razborov Omega(h) => round lower bound %.2f for this instance@."
    (Lowerbound.Simulation.implied_round_lower_bound ~h ~n);

  Format.printf "@.Lemma G.5, literally executed (flood-min for T rounds):@.";
  List.iter
    (fun rounds ->
      let rp =
        Lowerbound.Simulation.two_party_replay ci
          Lowerbound.Simulation.flood_min_protocol ~rounds ~equal:( = )
      in
      Format.printf
        "  T=%d: Alice+Bob reproduce the run exactly (%b), exchanging %d \
         bits <= 2BT = %d@."
        rounds rp.Lowerbound.Simulation.states_match
        rp.Lowerbound.Simulation.bits_exchanged
        rp.Lowerbound.Simulation.lemma_bound_bits)
    [ 1; 2 ];

  Format.printf "@.running the distributed vc-approximation on G(X,Y):@.";
  let rep = Lowerbound.Simulation.distinguish_via_packing ci in
  Format.printf
    "  rounds=%d, boundary bits=%d, estimate=%d (instance has the size-4 cut)@."
    rep.Lowerbound.Simulation.measured_rounds
    rep.Lowerbound.Simulation.boundary_bits rep.Lowerbound.Simulation.estimate
