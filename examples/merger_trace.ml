(* The Fast Merger Lemma, watched live (Lemma 4.4, Fig. 1): run the
   recursive class assignment on a clique path with a deliberately thin
   jump-start, and print how the bridging-graph matchings collapse the
   excess component count layer by layer.

     dune exec examples/merger_trace.exe *)

let () =
  let g = Graphs.Gen.clique_path ~k:8 ~len:32 in
  Format.printf
    "clique path: n=%d, vertex connectivity 8, diameter %d@.@."
    (Graphs.Graph.n g)
    (Graphs.Traversal.diameter g);
  let res =
    Domtree.Cds_packing.run ~seed:9 ~jumpstart:1 g ~classes:12 ~layers:14
  in
  let stats = res.Domtree.Cds_packing.stats in
  Format.printf "%8s %12s %12s %12s@." "layer" "excess M"
    "bridge edges" "matched";
  let bridging = stats.Domtree.Cds_packing.bridging_edges_per_layer in
  let matched = stats.Domtree.Cds_packing.matched_per_layer in
  List.iter
    (fun (layer, m) ->
      let b = try List.assoc layer bridging with Not_found -> 0 in
      let mt = try List.assoc layer matched with Not_found -> 0 in
      Format.printf "%8d %12d %12d %12d@." layer m b mt)
    stats.Domtree.Cds_packing.excess_after_layer;
  let valid = List.length (Domtree.Cds_packing.valid_classes res) in
  Format.printf "@.valid classes at the end: %d / %d@." valid
    res.Domtree.Cds_packing.classes;
  let p = Domtree.Tree_extract.of_cds_packing res in
  Format.printf "fractional dominating-tree packing size: %.2f@."
    (Domtree.Packing.size p)
