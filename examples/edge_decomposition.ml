(* Edge-connectivity decomposition tour (Theorem 1.3 and friends):
   fractional spanning-tree packing via multiplicative weights, the
   Karger-sampled general case, integral peeling, the distributed run,
   and the packing driving an E-CONGEST broadcast.

     dune exec examples/edge_decomposition.exe *)

let () =
  let lambda = 12 and n = 72 in
  let g = Graphs.Gen.harary ~k:lambda ~n in
  Format.printf "graph: n=%d m=%d lambda=%d, target = ceil((l-1)/2) = %d@.@."
    n (Graphs.Graph.m g) lambda
    (Spantree.Lagrangian.target ~lambda);

  (* fractional: §5.1 multiplicative weights *)
  let r = Spantree.Lagrangian.run g ~lambda in
  let p = r.Spantree.Lagrangian.packing in
  Format.printf "fractional packing: %d weighted trees, size %.2f, max edge load %.3f@."
    (Spantree.Spacking.count p) (Spantree.Spacking.size p)
    (Spantree.Spacking.max_edge_load p);
  Format.printf "  %d iterations (stop rule fired: %b)@."
    r.Spantree.Lagrangian.trace.Spantree.Lagrangian.iterations
    r.Spantree.Lagrangian.trace.Spantree.Lagrangian.stopped_by_rule;

  (* integral: degree-balanced peeling *)
  let trees = Spantree.Integral.peel g in
  Format.printf "integral peeling: %d edge-disjoint spanning trees@."
    (List.length trees);

  (* distributed, with the sampling-based lambda estimate first *)
  let net = Congest.Net.create Congest.Model.E_congest g in
  let d = Spantree.Dist_packing.run_auto net in
  Format.printf
    "distributed: size %.2f over eta=%d parts, %d rounds (pipelined %d)@."
    (Spantree.Spacking.size d.Spantree.Dist_packing.packing)
    d.Spantree.Dist_packing.eta d.Spantree.Dist_packing.measured_rounds
    d.Spantree.Dist_packing.parallel_rounds;

  (* use it: many-message broadcast at ~lambda/2 per round *)
  let sources = List.init n (fun v -> (v, 6)) in
  let net2 = Congest.Net.create Congest.Model.E_congest g in
  let b = Routing.Broadcast.via_spanning_trees net2 p ~sources in
  Format.printf
    "broadcast over the packing: %d messages in %d rounds = %.2f/round@."
    b.Routing.Broadcast.messages b.Routing.Broadcast.rounds
    b.Routing.Broadcast.throughput
