(* Oblivious-routing broadcast (Corollary 1.6): routing every message
   along an independently random tree of the decomposition gives
   congestion competitive with the offline optimum — O(log n) for
   vertex congestion (V-CONGEST) and O(1) for edge congestion
   (E-CONGEST) — even though the routes ignore the actual load.

     dune exec examples/oblivious_broadcast.exe *)

let () =
  let n = 60 and k = 30 in
  let g = Graphs.Gen.harary ~k ~n in
  Format.printf "oblivious broadcast on n=%d, k = lambda = %d@.@." n k;

  (* vertex congestion via dominating trees *)
  let cds = Domtree.Cds_packing.run g ~classes:(2 * k / 3) ~layers:2 in
  let dom = Domtree.Tree_extract.of_cds_packing cds in
  let sources = List.init n (fun v -> (v, 4)) in
  let net = Congest.Net.create Congest.Model.V_congest g in
  let vrep = Routing.Oblivious.vertex_competitiveness net dom ~k ~sources in
  Format.printf "vertex congestion: measured %d vs optimum >= %.1f  =>  %.2f-competitive (O(log n) = %.1f)@."
    vrep.Routing.Oblivious.measured_congestion
    vrep.Routing.Oblivious.optimum_lower_bound
    vrep.Routing.Oblivious.competitiveness
    (log (float_of_int n) /. log 2.);

  (* edge congestion via spanning trees *)
  let sp = (Spantree.Sampling_pack.run g ~lambda:k).Spantree.Sampling_pack.packing in
  let net2 = Congest.Net.create Congest.Model.E_congest g in
  let erep =
    Routing.Oblivious.edge_competitiveness net2 sp ~lambda:k ~sources
  in
  Format.printf "edge congestion:   measured %d vs optimum >= %.1f  =>  %.2f-competitive (O(1) target)@."
    erep.Routing.Oblivious.measured_congestion
    erep.Routing.Oblivious.optimum_lower_bound
    erep.Routing.Oblivious.competitiveness
