(* Perf sweep (`bench/main.exe -- perf [n_cap]`): throughput of the
   CONGEST round engine itself — rounds/sec and words/sec — on the
   workload families the experiments drive, at several sizes. This is
   the trajectory artifact for the simulator hot path: every PR that
   touches lib/graph or lib/congest can be judged against the previous
   BENCH_perf.json.

   Two engine drivers:
   - [broadcast]: V-CONGEST, every node locally broadcasts a 3-word
     message each round (the Net.broadcast_round inner loop, neighbor
     fan-out and per-message accounting included);
   - [edge]: E-CONGEST, every node sends a 1-word message over each
     incident edge direction (the Net.edge_round inner loop, non-edge /
     duplicate-direction checks included).
   Caller-side allocations are hoisted (messages and out-lists are
   prebuilt and reused), so the measurement isolates the engine.

   Timing jobs are never memoized — a replayed timing is a lie — so this
   sweep ignores `_cache/` entirely; and it defaults to one worker
   domain (`-j 1`) so concurrent jobs do not contend for cores while the
   clock runs. Each job also records its telemetry run digest, so a
   perf regression hunt can confirm on the spot that an engine change
   left traffic bit-identical.

   BENCH_perf.json schema (written by this module, not Exec.Sweep):
     { "sweep": "perf", "jobs": N, "wall_s": W,
       "rows": [ { "workload": "er|rr|lollipop", "driver":
                   "broadcast|edge", "n", "m", "rounds",
                   "rounds_per_sec", "words_per_sec", "run_digest" } ] }
*)

module Graph = Graphs.Graph
module Net = Congest.Net

let now () = Unix.gettimeofday ()

(* Deterministic round count per workload: enough rounds to dominate
   setup noise, capped so the largest sizes stay interactive. *)
let rounds_for ~m = max 16 (min 512 (400_000 / max 1 m))

(* V-CONGEST driver: every node broadcasts a small message each round.
   Messages are preallocated and mutated in place (round tag), so the
   only per-round work outside the engine is O(n) stores. *)
let drive_broadcast net ~rounds =
  let n = Net.n net in
  let msgs = Array.init n (fun u -> [| u land 63; 0; (u * 7) land 63 |]) in
  for r = 1 to rounds do
    let tag = r land 63 in
    for u = 0 to n - 1 do
      msgs.(u).(1) <- tag
    done;
    ignore (Net.broadcast_round net (fun u -> Some msgs.(u)))
  done

(* E-CONGEST driver: every node loads every incident edge direction with
   a 1-word message. Out-lists are prebuilt once and reused verbatim. *)
let drive_edge net ~rounds =
  let n = Net.n net in
  let g = Net.graph net in
  let outs =
    Array.init n (fun u ->
        Array.to_list
          (Array.map (fun v -> (v, [| u land 63 |])) (Graph.neighbors g u)))
  in
  for _ = 1 to rounds do
    ignore (Net.edge_round net (fun u -> outs.(u)))
  done

type spec = {
  workload : string;
  driver : string;
  n : int;
  gen : unit -> Graph.t;
}

let specs n_cap =
  let sizes = List.filter (fun n -> n <= n_cap) [ 256; 1024; 2048 ] in
  List.concat_map
    (fun n ->
      [
        {
          workload = "er";
          driver = "broadcast";
          n;
          gen =
            (fun () ->
              let rng = Random.State.make [| 0xE5; n |] in
              Graphs.Gen.erdos_renyi rng ~n ~p:(8.0 /. float_of_int n));
        };
        {
          workload = "rr";
          driver = "edge";
          n;
          gen =
            (fun () ->
              (* d = 4: the configuration model is rejection-sampled and
                 its acceptance rate decays like exp(-d^2/4) *)
              let rng = Random.State.make [| 0x55; n |] in
              Graphs.Gen.random_regular rng ~n ~d:4);
        };
        {
          workload = "lollipop";
          driver = "broadcast";
          n;
          gen =
            (fun () ->
              let c = n / 8 in
              Graphs.Gen.lollipop ~clique:c ~tail:(n - c));
        };
      ])
    sizes

let run_spec s () =
  let g = s.gen () in
  let m = Graph.m g in
  let rounds = rounds_for ~m in
  let model, drive =
    match s.driver with
    | "edge" -> (Congest.Model.E_congest, drive_edge)
    | _ -> (Congest.Model.V_congest, drive_broadcast)
  in
  let net = Net.create model g in
  (* warmup: heat caches and the minor heap, then measure from a clean
     counter state so words/sec covers exactly the timed rounds *)
  drive net ~rounds:(max 4 (rounds / 4));
  Net.reset_stats net;
  let t0 = now () in
  drive net ~rounds;
  let dt = now () -. t0 in
  let dt = if dt > 0. then dt else 1e-9 in
  let words = Net.words_sent net in
  let rps = float_of_int rounds /. dt in
  let wps = float_of_int words /. dt in
  let digest = Printf.sprintf "%x" (Net.run_digest (Net.telemetry net)) in
  let out =
    Printf.sprintf "%-9s %-9s %6d %7d %7d | %12.0f %14.0f  %s\n" s.workload
      s.driver s.n m rounds rps wps digest
  in
  let row =
    Printf.sprintf "%s,%s,%d,%d,%d,%.0f,%.0f" s.workload s.driver s.n m rounds
      rps wps
  in
  Exec.Job.payload ~rows:[ row ]
    ~meta:
      [
        ("workload", s.workload);
        ("driver", s.driver);
        ("n", string_of_int s.n);
        ("m", string_of_int m);
        ("rounds", string_of_int rounds);
        ("rounds_per_sec", Printf.sprintf "%.0f" rps);
        ("words_per_sec", Printf.sprintf "%.0f" wps);
        ("run_digest", digest);
      ]
    out

let all ?n_cap ?jobs () =
  let n_cap = match n_cap with Some c -> c | None -> 2048 in
  (* timing wants an uncontended core: default to one worker domain *)
  let jobs = match jobs with Some j -> j | None -> 1 in
  let items =
    Exec.Sweep.text "@.== round-engine perf sweep (n <= %d) ==@." n_cap
    :: Exec.Sweep.text "%-9s %-9s %6s %7s %7s | %12s %14s  %s@." "workload"
         "driver" "n" "m" "rounds" "rounds/sec" "words/sec" "digest"
    :: List.map
         (fun s ->
           Exec.Sweep.Job
             (Exec.Job.make ~algo:"perf"
                ~params:
                  [
                    ("workload", s.workload);
                    ("driver", s.driver);
                    ("n", string_of_int s.n);
                  ]
                (run_spec s)))
         (specs n_cap)
  in
  let t0 = now () in
  let stats, outcomes = Exec.Sweep.run ~name:"perf" ~jobs items in
  let wall = now () -. t0 in
  let rows =
    List.filter_map
      (fun (_, outcome) ->
        match outcome with
        | `Failed _ -> None
        | `Ok p ->
          let f k = match Exec.Job.meta p k with Some v -> v | None -> "" in
          let int k = Exec.Artifact.Int (int_of_string (f k)) in
          let num k = Exec.Artifact.Float (float_of_string (f k)) in
          Some
            (Exec.Artifact.Obj
               [
                 ("workload", Exec.Artifact.String (f "workload"));
                 ("driver", Exec.Artifact.String (f "driver"));
                 ("n", int "n");
                 ("m", int "m");
                 ("rounds", int "rounds");
                 ("rounds_per_sec", num "rounds_per_sec");
                 ("words_per_sec", num "words_per_sec");
                 ("run_digest", Exec.Artifact.String (f "run_digest"));
               ]))
      outcomes
  in
  Exec.Artifact.write_json ~path:"BENCH_perf.json"
    (Exec.Artifact.Obj
       [
         ("sweep", Exec.Artifact.String "perf");
         ("jobs", Exec.Artifact.Int stats.Exec.Sweep.jobs);
         ("failed", Exec.Artifact.Int stats.Exec.Sweep.failed);
         ("wall_s", Exec.Artifact.Float wall);
         ("rows", Exec.Artifact.List rows);
       ]);
  if stats.Exec.Sweep.failed > 0 then exit 1
