(* Perf sweep (`bench/main.exe -- perf [n_cap]`): throughput of the
   CONGEST round engine itself — rounds/sec and words/sec — on the
   workload families the experiments drive, at several sizes. This is
   the trajectory artifact for the simulator hot path: every PR that
   touches lib/graph or lib/congest can be judged against the previous
   BENCH_perf.json.

   Two engine drivers:
   - [broadcast]: V-CONGEST, every node locally broadcasts a 3-word
     message each round (the Net.broadcast_round inner loop, neighbor
     fan-out and per-message accounting included);
   - [edge]: E-CONGEST, every node sends a 1-word message over each
     incident edge direction (the Net.edge_round inner loop, non-edge /
     duplicate-direction checks included).
   Caller-side allocations are hoisted (messages and out-lists are
   prebuilt and reused), so the measurement isolates the engine.

   Sizes run from the historical small points (256..2048, kept so the
   trajectory stays comparable across PRs) up to the large regime the
   sharded engine targets: Erdős–Rényi (geometric-skip sampler, O(n+m))
   and square grids at n = 2^15, 2^17 and 2^20. After the size rows, a
   domain-scaling sub-table re-times one workload at 1/2/4/8 domains on
   the SAME graph and byte-compares every run digest against the
   1-domain baseline — a scaling number only counts if the traffic is
   bit-identical (DESIGN.md §15).

   Timing jobs are never memoized — a replayed timing is a lie — so this
   sweep ignores `_cache/` entirely; and it defaults to one worker
   domain (`-j 1`) so concurrent jobs do not contend for cores while the
   clock runs. Each job also records its telemetry run digest, so a
   perf regression hunt can confirm on the spot that an engine change
   left traffic bit-identical.

   BENCH_perf.json schema (written by this module, not Exec.Sweep):
     { "sweep": "perf", "jobs": N, "wall_s": W,
       "rows": [ { "workload": "er|rr|lollipop|grid", "driver":
                   "broadcast|edge", "n", "m", "rounds", "domains",
                   "rounds_per_sec", "words_per_sec", "run_digest" } ],
       "scaling": { "workload", "driver", "n", "m", "rounds",
                    "digests_match": true,
                    "rows": [ { "domains", "effective_domains",
                                "rounds_per_sec", "speedup",
                                "run_digest" } ] } }
*)

module Graph = Graphs.Graph
module Net = Congest.Net

let now () = Unix.gettimeofday ()

(* Deterministic round count per workload: enough rounds to dominate
   setup noise, capped so the largest sizes stay interactive. *)
let rounds_for ~m = max 16 (min 512 (400_000 / max 1 m))

(* V-CONGEST driver: every node broadcasts a small message each round.
   Messages are preallocated and mutated in place (round tag), so the
   only per-round work outside the engine is O(n) stores. *)
let drive_broadcast net ~rounds =
  let n = Net.n net in
  let msgs = Array.init n (fun u -> [| u land 63; 0; (u * 7) land 63 |]) in
  for r = 1 to rounds do
    let tag = r land 63 in
    for u = 0 to n - 1 do
      msgs.(u).(1) <- tag
    done;
    ignore (Net.broadcast_round net (fun u -> Some msgs.(u)))
  done

(* E-CONGEST driver: every node loads every incident edge direction with
   a 1-word message. Out-lists are prebuilt once and reused verbatim. *)
let drive_edge net ~rounds =
  let n = Net.n net in
  let g = Net.graph net in
  let outs =
    Array.init n (fun u ->
        Array.to_list
          (Array.map (fun v -> (v, [| u land 63 |])) (Graph.neighbors g u)))
  in
  for _ = 1 to rounds do
    ignore (Net.edge_round net (fun u -> outs.(u)))
  done

type spec = {
  workload : string;
  driver : string;
  n : int;
  domains : int;
  gen : unit -> Graph.t;
}

(* Square-ish grid with r*c = the largest perfect square <= n; the row
   reports the actual vertex count. *)
let grid_side n = int_of_float (sqrt (float_of_int n))

let er_skip_spec ~n ~domains =
  {
    workload = "er";
    driver = "broadcast";
    n;
    domains;
    gen =
      (fun () ->
        let rng = Random.State.make [| 0xE5; n |] in
        Graphs.Gen.erdos_renyi_skip rng ~n ~p:(8.0 /. float_of_int n));
  }

let grid_spec ~n ~domains =
  let side = grid_side n in
  {
    workload = "grid";
    driver = "edge";
    n = side * side;
    domains;
    gen = (fun () -> Graphs.Gen.grid side side);
  }

let specs n_cap =
  let small_sizes = List.filter (fun n -> n <= n_cap) [ 256; 1024; 2048 ] in
  let small =
    List.concat_map
      (fun n ->
        [
          {
            workload = "er";
            driver = "broadcast";
            n;
            domains = 1;
            gen =
              (fun () ->
                let rng = Random.State.make [| 0xE5; n |] in
                Graphs.Gen.erdos_renyi rng ~n ~p:(8.0 /. float_of_int n));
          };
          {
            workload = "rr";
            driver = "edge";
            n;
            domains = 1;
            gen =
              (fun () ->
                (* d = 4: the configuration model is rejection-sampled and
                   its acceptance rate decays like exp(-d^2/4) *)
                let rng = Random.State.make [| 0x55; n |] in
                Graphs.Gen.random_regular rng ~n ~d:4);
          };
          {
            workload = "lollipop";
            driver = "broadcast";
            n;
            domains = 1;
            gen =
              (fun () ->
                let c = n / 8 in
                Graphs.Gen.lollipop ~clique:c ~tail:(n - c));
          };
        ])
      small_sizes
  in
  (* Large regime: the O(n+m) skip sampler (the quadratic Bernoulli scan
     would dominate the wall clock at 2^20) and square grids. *)
  let large_sizes =
    List.filter (fun n -> n <= n_cap && n > 2048)
      [ 1 lsl 15; 1 lsl 17; 1 lsl 20 ]
  in
  let large =
    List.concat_map
      (fun n -> [ er_skip_spec ~n ~domains:1; grid_spec ~n ~domains:1 ])
      large_sizes
  in
  small @ large

let run_spec s () =
  let g = s.gen () in
  let m = Graph.m g in
  let rounds = rounds_for ~m in
  let model, drive =
    match s.driver with
    | "edge" -> (Congest.Model.E_congest, drive_edge)
    | _ -> (Congest.Model.V_congest, drive_broadcast)
  in
  let net = Net.create ~domains:s.domains model g in
  (* warmup: heat caches and the minor heap, then measure from a clean
     counter state so words/sec covers exactly the timed rounds *)
  drive net ~rounds:(max 4 (rounds / 4));
  Net.reset_stats net;
  let t0 = now () in
  drive net ~rounds;
  let dt = now () -. t0 in
  let dt = if dt > 0. then dt else 1e-9 in
  let words = Net.words_sent net in
  let rps = float_of_int rounds /. dt in
  let wps = float_of_int words /. dt in
  let digest = Printf.sprintf "%x" (Net.run_digest (Net.telemetry net)) in
  Net.shutdown net;
  let out =
    Printf.sprintf "%-9s %-9s %8d %8d %6d %3d | %10.1f %14.0f  %s\n" s.workload
      s.driver (Graph.n g) m rounds s.domains rps wps digest
  in
  let row =
    Printf.sprintf "%s,%s,%d,%d,%d,%d,%.1f,%.0f" s.workload s.driver
      (Graph.n g) m rounds s.domains rps wps
  in
  Exec.Job.payload ~rows:[ row ]
    ~meta:
      [
        ("workload", s.workload);
        ("driver", s.driver);
        ("n", string_of_int (Graph.n g));
        ("m", string_of_int m);
        ("rounds", string_of_int rounds);
        ("domains", string_of_int s.domains);
        ("rounds_per_sec", Printf.sprintf "%.1f" rps);
        ("words_per_sec", Printf.sprintf "%.0f" wps);
        ("run_digest", digest);
      ]
    out

(* Domain-scaling sub-table: the same ER broadcast workload, one graph,
   re-timed at 1/2/4/8 domains. The 1-domain digest is the baseline;
   any mismatch is a determinism bug and fails the sweep. Effective
   domain count is also recorded: Net.create clamps the request to the
   vertex count and to 1 inside pool workers, so requested 8 on a small
   CI graph may report fewer. *)
let scaling_domains = [ 1; 2; 4; 8 ]

type scale_row = {
  sc_domains : int;
  sc_effective : int;
  sc_rps : float;
  sc_digest : string;
}

let run_scaling ~n =
  let rng = Random.State.make [| 0x5CA1E; n |] in
  let g = Graphs.Gen.erdos_renyi_skip rng ~n ~p:(8.0 /. float_of_int n) in
  let m = Graph.m g in
  let rounds = rounds_for ~m in
  let measure d =
    let net = Net.create ~domains:d Congest.Model.V_congest g in
    drive_broadcast net ~rounds:(max 4 (rounds / 4));
    Net.reset_stats net;
    let t0 = now () in
    drive_broadcast net ~rounds;
    let dt = now () -. t0 in
    let dt = if dt > 0. then dt else 1e-9 in
    let digest = Printf.sprintf "%x" (Net.run_digest (Net.telemetry net)) in
    let effective = Net.domains net in
    Net.shutdown net;
    {
      sc_domains = d;
      sc_effective = effective;
      sc_rps = float_of_int rounds /. dt;
      sc_digest = digest;
    }
  in
  let rows = List.map measure scaling_domains in
  (g, m, rounds, rows)

let all ?n_cap ?jobs () =
  let n_cap = match n_cap with Some c -> c | None -> 1 lsl 20 in
  (* timing wants an uncontended core: default to one worker domain *)
  let jobs = match jobs with Some j -> j | None -> 1 in
  let items =
    Exec.Sweep.text "@.== round-engine perf sweep (n <= %d) ==@." n_cap
    :: Exec.Sweep.text "%-9s %-9s %8s %8s %6s %3s | %10s %14s  %s@." "workload"
         "driver" "n" "m" "rounds" "dom" "rounds/sec" "words/sec" "digest"
    :: List.map
         (fun s ->
           Exec.Sweep.Job
             (Exec.Job.make ~algo:"perf"
                ~params:
                  [
                    ("workload", s.workload);
                    ("driver", s.driver);
                    ("n", string_of_int s.n);
                    ("domains", string_of_int s.domains);
                  ]
                (run_spec s)))
         (specs n_cap)
  in
  let t0 = now () in
  let stats, outcomes = Exec.Sweep.run ~name:"perf" ~jobs items in
  (* scaling sub-table, sequential by construction (it is a timing
     comparison): n = 2^17 per the acceptance bar, scaled down under a
     CI smoke cap so the multi-domain path is still exercised there *)
  let scale_n = min (1 lsl 17) n_cap in
  let scale_g, scale_m, scale_rounds, scale_rows = run_scaling ~n:scale_n in
  let wall = now () -. t0 in
  let base_rps, base_digest =
    match scale_rows with
    | { sc_rps; sc_digest; _ } :: _ -> (sc_rps, sc_digest)
    | [] -> (1.0, "")
  in
  let digests_match =
    List.for_all (fun r -> r.sc_digest = base_digest) scale_rows
  in
  Format.printf
    "@.== domain-scaling sub-table (er broadcast, n=%d m=%d rounds=%d) ==@."
    (Graph.n scale_g) scale_m scale_rounds;
  Format.printf "%8s %9s %12s %9s  %s@." "domains" "effective" "rounds/sec"
    "speedup" "digest";
  List.iter
    (fun r ->
      Format.printf "%8d %9d %12.1f %8.2fx  %s@." r.sc_domains r.sc_effective
        r.sc_rps (r.sc_rps /. base_rps) r.sc_digest)
    scale_rows;
  if digests_match then
    Format.printf "digests: all byte-identical to the 1-domain baseline@."
  else
    Format.printf
      "digests: MISMATCH vs the 1-domain baseline — determinism bug@.";
  let rows =
    List.filter_map
      (fun (_, outcome) ->
        match outcome with
        | `Failed _ -> None
        | `Ok p ->
          let f k = match Exec.Job.meta p k with Some v -> v | None -> "" in
          let int k = Exec.Artifact.Int (int_of_string (f k)) in
          let num k = Exec.Artifact.Float (float_of_string (f k)) in
          Some
            (Exec.Artifact.Obj
               [
                 ("workload", Exec.Artifact.String (f "workload"));
                 ("driver", Exec.Artifact.String (f "driver"));
                 ("n", int "n");
                 ("m", int "m");
                 ("rounds", int "rounds");
                 ("domains", int "domains");
                 ("rounds_per_sec", num "rounds_per_sec");
                 ("words_per_sec", num "words_per_sec");
                 ("run_digest", Exec.Artifact.String (f "run_digest"));
               ]))
      outcomes
  in
  let scaling_json =
    Exec.Artifact.Obj
      [
        ("workload", Exec.Artifact.String "er");
        ("driver", Exec.Artifact.String "broadcast");
        ("n", Exec.Artifact.Int (Graph.n scale_g));
        ("m", Exec.Artifact.Int scale_m);
        ("rounds", Exec.Artifact.Int scale_rounds);
        ("digests_match", Exec.Artifact.Bool digests_match);
        ( "rows",
          Exec.Artifact.List
            (List.map
               (fun r ->
                 Exec.Artifact.Obj
                   [
                     ("domains", Exec.Artifact.Int r.sc_domains);
                     ("effective_domains", Exec.Artifact.Int r.sc_effective);
                     ("rounds_per_sec", Exec.Artifact.Float r.sc_rps);
                     ("speedup", Exec.Artifact.Float (r.sc_rps /. base_rps));
                     ("run_digest", Exec.Artifact.String r.sc_digest);
                   ])
               scale_rows) );
      ]
  in
  Exec.Artifact.write_json ~path:"BENCH_perf.json"
    (Exec.Artifact.Obj
       [
         ("sweep", Exec.Artifact.String "perf");
         ("jobs", Exec.Artifact.Int stats.Exec.Sweep.jobs);
         ("failed", Exec.Artifact.Int stats.Exec.Sweep.failed);
         ("wall_s", Exec.Artifact.Float wall);
         ("rows", Exec.Artifact.List rows);
         ("scaling", scaling_json);
       ]);
  if stats.Exec.Sweep.failed > 0 || not digests_match then exit 1
