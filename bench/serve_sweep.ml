(* Load generator for the decomposition service
   (`bench/main.exe -- serve [requests]`).

   Spawns the daemon in-process (one extra domain) on a temp socket and
   drives three phases through the real wire protocol — every byte goes
   through Framing/Protocol exactly as a remote client's would:

   - [throughput]: synchronous round trips of one memoizable request on
     an n=1024 Erdős–Rényi graph; after the first request computes, the
     daemon serves memo hits, so this measures the service stack
     (socket, framing, CRC, codec, queue) rather than the solver. The
     target is >= 1000 req/s sustained; the row records whether it was
     met.
   - [burst]: a pipelined burst of 256 requests against a 16-deep
     queue; the daemon must shed the overflow with structured
     Overloaded replies instead of collapsing. The row records the
     shed rate.
   - [chaos]: distributed requests under Bernoulli message drops with a
     1 ms deadline, after priming the last-good certificate store: the
     daemon degrades to stale certificates (or errors in a structured
     frame) and survives. The row records degraded/stale/error counts.

   The daemon is drained (clean shutdown protocol) at the end; the
   sweep fails loudly if the drain handshake does not complete.

   BENCH_serve.json schema:
     { "sweep": "serve", "wall_s": W, "drained": bool,
       "target_req_per_sec": 1000.0, "target_met": bool,
       "rows": [ { "phase": "throughput|burst|chaos", "requests",
                   "wall_s", "req_per_sec", "p50_ms", "p99_ms",
                   "ok", "degraded", "stale", "shed", "errors" } ] } *)

module P = Serve.Protocol
module Client = Serve.Server.Client

let now () = Unix.gettimeofday ()
let target_rps = 1000.

(* ------------------------------------------------------------------ *)
(* Response accounting *)

type tally = {
  mutable ok : int;  (** fresh verified results *)
  mutable degraded : int;  (** verified but fewer classes / unverified *)
  mutable stale : int;  (** cached certificate served past a deadline *)
  mutable shed : int;  (** Overloaded: bounded queue was full *)
  mutable errors : int;  (** every other structured error frame *)
}

let tally () = { ok = 0; degraded = 0; stale = 0; shed = 0; errors = 0 }

let count t = function
  | Ok (P.Result r) ->
    if r.P.degraded || not r.P.verified then t.degraded <- t.degraded + 1
    else t.ok <- t.ok + 1
  | Ok (P.Cert c) ->
    if c.P.c_stale then t.stale <- t.stale + 1 else t.ok <- t.ok + 1
  | Ok (P.Health_report _ | P.Drained _ | P.Stats_report _) ->
    t.ok <- t.ok + 1
  | Ok (P.Error (P.Overloaded, _)) -> t.shed <- t.shed + 1
  | Ok (P.Error _) | Error _ -> t.errors <- t.errors + 1

type row = {
  phase : string;
  requests : int;
  wall_s : float;
  p50_ms : float;
  p99_ms : float;
  t : tally;
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (float_of_int n *. p)))

let row ~phase ~requests ~wall_s latencies t =
  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  {
    phase;
    requests;
    wall_s;
    p50_ms = percentile sorted 0.50 *. 1000.;
    p99_ms = percentile sorted 0.99 *. 1000.;
    t;
  }

let rps r = float_of_int r.requests /. (if r.wall_s > 0. then r.wall_s else 1e-9)

let pp_row r =
  Format.printf
    "%-10s %6d req %8.3f s %10.0f req/s  p50 %7.3f ms  p99 %7.3f ms | ok %d \
     degraded %d stale %d shed %d errors %d@."
    r.phase r.requests r.wall_s (rps r) r.p50_ms r.p99_ms r.t.ok r.t.degraded
    r.t.stale r.t.shed r.t.errors

(* ------------------------------------------------------------------ *)
(* Phases *)

let throughput_gen = "er:n=1024,deg=8,seed=1"
let chaos_gen = "harary:k=4,n=64"

let throughput_req =
  { (P.default_decompose ~gen:throughput_gen) with P.k = 2; seed = 7 }

let throughput_phase ~requests socket =
  let cl = Client.connect socket in
  (* first request computes and memoizes; it is the warmup, not the
     measurement *)
  let warm = Client.request cl (P.Decompose throughput_req) in
  (match warm with
  | Ok (P.Result _) -> ()
  | Ok resp -> Format.printf "warmup surprise: %a@." P.pp_response resp
  | Error m -> failwith ("throughput warmup failed: " ^ m));
  let t = tally () in
  let lat = ref [] in
  let t0 = now () in
  for _ = 1 to requests do
    let r0 = now () in
    let resp = Client.request cl (P.Decompose throughput_req) in
    lat := (now () -. r0) :: !lat;
    count t resp
  done;
  let wall = now () -. t0 in
  Client.close cl;
  row ~phase:"throughput" ~requests ~wall_s:wall !lat t

let burst_phase ~requests socket =
  let cl = Client.connect socket in
  let t = tally () in
  let t0 = now () in
  for _ = 1 to requests do
    Client.send cl (P.Decompose throughput_req)
  done;
  for _ = 1 to requests do
    count t (Client.recv cl)
  done;
  let wall = now () -. t0 in
  Client.close cl;
  row ~phase:"burst" ~requests ~wall_s:wall [] t

let chaos_phase ~requests socket =
  let cl = Client.connect socket in
  (* prime the last-good certificate store: one healthy verified run
     records a certificate under this graph's digest *)
  (match
     Client.request cl
       (P.Decompose { (P.default_decompose ~gen:chaos_gen) with P.k = 4 })
   with
  | Ok (P.Result { P.verified = true; _ }) -> ()
  | Ok resp ->
    Format.printf "chaos priming did not verify: %a@." P.pp_response resp
  | Error m -> failwith ("chaos priming failed: " ^ m));
  let t = tally () in
  let lat = ref [] in
  let t0 = now () in
  for i = 1 to requests do
    let req =
      {
        (P.default_decompose ~gen:chaos_gen) with
        P.k = 4;
        seed = 100 + i;
        distributed = true;
        fail_p = 0.45;
        storm = "2:6:8" (* up to 48 of 64 nodes crash mid-run *);
        deadline_ms = 1;
      }
    in
    let r0 = now () in
    let resp = Client.request cl (P.Decompose req) in
    lat := (now () -. r0) :: !lat;
    count t resp
  done;
  let wall = now () -. t0 in
  Client.close cl;
  row ~phase:"chaos" ~requests ~wall_s:wall !lat t

(* ------------------------------------------------------------------ *)

let json_row r =
  Exec.Artifact.Obj
    [
      ("phase", Exec.Artifact.String r.phase);
      ("requests", Exec.Artifact.Int r.requests);
      ("wall_s", Exec.Artifact.Float r.wall_s);
      ("req_per_sec", Exec.Artifact.Float (rps r));
      ("p50_ms", Exec.Artifact.Float r.p50_ms);
      ("p99_ms", Exec.Artifact.Float r.p99_ms);
      ("ok", Exec.Artifact.Int r.t.ok);
      ("degraded", Exec.Artifact.Int r.t.degraded);
      ("stale", Exec.Artifact.Int r.t.stale);
      ("shed", Exec.Artifact.Int r.t.shed);
      ("errors", Exec.Artifact.Int r.t.errors);
    ]

let all ?(requests = 3000) () =
  Format.printf "@.== decomposition service load sweep (%d requests) ==@."
    requests;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "decompose-bench-%d.sock" (Unix.getpid ()))
  in
  let ready = Atomic.make false in
  let cfg =
    {
      (Serve.Server.default_config ~socket_path:socket) with
      Serve.Server.queue_capacity = 16 (* small on purpose: burst must shed *);
    }
  in
  let daemon =
    (* lint: allow domain-spawn — the service daemon under test is a
       long-lived background process, not a run-to-completion compute
       job; Exec.Pool cannot host it, and the sweep joins it on exit *)
    Domain.spawn (fun () ->
        Serve.Server.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  let t0 = now () in
  (* let-bound: list elements would evaluate right-to-left *)
  let tp = throughput_phase ~requests socket in
  let burst = burst_phase ~requests:256 socket in
  let chaos = chaos_phase ~requests:24 socket in
  let rows = [ tp; burst; chaos ] in
  List.iter pp_row rows;
  (* clean shutdown: scrape the metrics once, drain, then join *)
  let cl = Client.connect socket in
  (match Client.request cl P.Stats with
  | Ok (P.Stats_report _ as resp) ->
    Format.printf "%a@." P.pp_response resp
  | Ok resp -> Format.printf "stats surprise: %a@." P.pp_response resp
  | Error m -> Format.printf "stats failed: %s@." m);
  let drained =
    match Client.request cl P.Drain with
    | Ok (P.Drained { served }) ->
      Format.printf "drained after %d served requests@." served;
      true
    | Ok resp ->
      Format.printf "drain surprise: %a@." P.pp_response resp;
      false
    | Error m ->
      Format.printf "drain failed: %s@." m;
      false
  in
  Client.close cl;
  Domain.join daemon;
  let wall = now () -. t0 in
  let met = rps tp >= target_rps in
  Format.printf "throughput target %.0f req/s: %s (%.0f req/s)@." target_rps
    (if met then "MET" else "MISSED")
    (rps tp);
  Exec.Artifact.write_json ~path:"BENCH_serve.json"
    (Exec.Artifact.Obj
       [
         ("sweep", Exec.Artifact.String "serve");
         ("wall_s", Exec.Artifact.Float wall);
         ("drained", Exec.Artifact.Bool drained);
         ("target_req_per_sec", Exec.Artifact.Float target_rps);
         ("target_met", Exec.Artifact.Bool met);
         ("rows", Exec.Artifact.List (List.map json_row rows));
       ]);
  if not drained then exit 1
