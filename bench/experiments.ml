(* The experiment suite: one table per quantitative claim of the paper
   (the per-experiment index lives in DESIGN.md §3; results are recorded
   in EXPERIMENTS.md). Each experiment prints paper-reference vs
   measured rows; none of them aims at absolute timings except E7's
   runtime-scaling comparison.

   Since the multicore engine (DESIGN.md §9) the suite is a grid of
   Exec.Job cells: every table row (or indivisible block) is a pure,
   self-seeded closure, so the grid shards across domains with `-j N`
   and memoizes under `_cache/` — while the rendered tables stay
   byte-identical to a sequential run, because Exec.Sweep prints
   payloads in item order. Rows that used to share one Random.State now
   derive a private per-row state (seeded by the experiment id and the
   row coordinates), which is what makes each cell independent. *)

module Graph = Graphs.Graph

let buf f =
  let b = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer b in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents b

let text = Exec.Sweep.text

let header title =
  text "@.%s@.%s@." title (String.make (String.length title) '-')

let job ~algo ?params ?seed f =
  Exec.Sweep.Job
    (Exec.Job.make ~algo ?params ?seed (fun () -> Exec.Job.payload (buf f)))

let i2s = string_of_int
let lg n = log (float_of_int (max 2 n)) /. log 2.

(* ------------------------------------------------------------------ *)
(* E1 — Theorems 1.1/1.2: fractional dominating-tree packing size
   Ω(k / log n), Ω(k) trees, node load O(log n), tree diameter O~(n/k) *)

let e1 () =
  header
    "E1  dominating-tree packing: size = Theta(k/log n), load O(log n), \
     diameter O~(n/k)   [Thm 1.1/1.2]"
  :: text "%6s %5s %4s | %6s %8s %14s | %5s %9s %14s@." "n" "k" "t" "trees"
       "size" "size/(k/lg n)" "mult" "mult/lg n" "diam*k/n"
  :: List.map
       (fun (n, k) ->
         job ~algo:"e1" ~params:[ ("n", i2s n); ("k", i2s k) ] ~seed:1
           (fun ppf ->
             let g = Graphs.Gen.harary ~k ~n in
             (* the k >> log n regime where the k/log n scaling is visible:
                t = 2k/3 classes over the minimum number of layers *)
             let res =
               Domtree.Cds_packing.run ~seed:1 g ~classes:(2 * k / 3) ~layers:2
             in
             let p = Domtree.Tree_extract.of_cds_packing res in
             let size = Domtree.Packing.size p in
             let mult = Domtree.Packing.max_multiplicity p in
             let diam = Domtree.Packing.max_tree_diameter p in
             Format.fprintf ppf
               "%6d %5d %4d | %6d %8.2f %14.2f | %5d %9.2f %14.2f@." n k
               res.Domtree.Cds_packing.classes (Domtree.Packing.count p) size
               (size /. (float_of_int k /. lg n))
               mult
               (float_of_int mult /. lg n)
               (float_of_int (diam * k) /. float_of_int n)))
       [ (48, 12); (64, 16); (96, 24); (128, 32); (192, 48); (256, 64) ]
  @ [
      text
        "(shape: size/(k/lg n) roughly constant; mult/lg n bounded; diam*k/n \
         bounded)@.";
    ]

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 1.1 round complexity O~(D + sqrt(n)) in V-CONGEST *)

let e2 () =
  header
    "E2  distributed dominating-tree packing rounds vs O~(D + sqrt n)   \
     [Thm 1.1]"
  :: text "%6s %4s %4s | %8s %14s %14s@." "n" "k" "D" "rounds"
       "(D+sqrt n)lg^3" "ratio"
  :: List.map
       (fun n ->
         job ~algo:"e2" ~params:[ ("n", i2s n) ] ~seed:2 (fun ppf ->
             let k = 8 in
             let g = Graphs.Gen.harary ~k ~n in
             let d = Graphs.Traversal.diameter g in
             let net = Congest.Net.create Congest.Model.V_congest g in
             let res = Domtree.Dist_packing.pack ~seed:2 net ~k in
             let valid = List.length (Domtree.Cds_packing.valid_classes res) in
             assert (valid = res.Domtree.Cds_packing.classes);
             let rounds = Congest.Net.rounds net in
             let budget =
               (float_of_int d +. sqrt (float_of_int n)) *. (lg n ** 3.)
             in
             Format.fprintf ppf "%6d %4d %4d | %8d %14.0f %14.2f@." n k d
               rounds budget
               (float_of_int rounds /. budget)))
       [ 32; 64; 128; 256 ]
  @ text "(shape: ratio stays bounded as n grows)@."
    :: (* E2b: the two Theorem B.2 realizations on a long-strong-diameter
          subgraph embedded in a small-diameter host *)
       text
         "@.E2b  component identification (Thm B.2): flooding (D' branch) vs      Kutten-Peleg hybrid (D+sqrt(n) branch)@."
    :: text "%6s | %10s %10s@." "n" "flooding" "hybrid"
    :: List.map
         (fun n ->
           job ~algo:"e2b" ~params:[ ("n", i2s n) ] ~seed:2 (fun ppf ->
               let path_edges = List.init (n - 1) (fun i -> (i, i + 1)) in
               let hub_edges = List.init (n / 8) (fun j -> (n, 8 * j)) in
               let g = Graph.of_edges ~n:(n + 1) (path_edges @ hub_edges) in
               let active v = v < n in
               let edge_active u v = u < n && v < n in
               let net1 = Congest.Net.create Congest.Model.V_congest g in
               let _ = Congest.Components.identify net1 ~active ~edge_active in
               let net2 = Congest.Net.create Congest.Model.V_congest g in
               let _ =
                 Congest.Components.identify_hybrid net2 ~active ~edge_active
               in
               Format.fprintf ppf "%6d | %10d %10d@." n
                 (Congest.Net.rounds net1) (Congest.Net.rounds net2)))
         [ 64; 256; 1024 ]
  @ text "(shape: flooding ~ n on the path; hybrid ~ sqrt(n)-ish)@."
    :: (* E2c: the same two branches inside the distributed MST *)
       text "@.E2c  distributed MST: flooding Boruvka vs Kutten-Peleg \
             pipelined@."
    :: text "%6s | %10s %10s@." "n" "flooding" "pipelined"
    :: List.map
         (fun n ->
           job ~algo:"e2c" ~params:[ ("n", i2s n) ] ~seed:2 (fun ppf ->
               let path_edges = List.init (n - 1) (fun i -> (i, i + 1)) in
               let hub_edges = List.init (n / 8) (fun j -> (n, 8 * j)) in
               let g = Graph.of_edges ~n:(n + 1) (path_edges @ hub_edges) in
               (* path edges cheap, hub edges dear: the MST is the long path,
                  so flooding Boruvka must flood along Theta(n)-diameter
                  fragments *)
               let weight u v =
                 if u = n || v = n then 1000 else 1 + ((u + v) mod 7)
               in
               let net1 = Congest.Net.create Congest.Model.V_congest g in
               let a = Congest.Dist_mst.minimum_spanning_forest net1 ~weight in
               let net2 = Congest.Net.create Congest.Model.V_congest g in
               let b =
                 Congest.Dist_mst.minimum_spanning_forest_hybrid net2 ~weight
               in
               assert (a = b);
               Format.fprintf ppf "%6d | %10d %10d@." n
                 (Congest.Net.rounds net1) (Congest.Net.rounds net2)))
         [ 64; 256; 1024 ]
  @ [
      text
        "(same forests; the pipelined variant wins as the      fragment \
         diameters grow)@.";
    ]

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 1.3 / §5.1: fractional spanning-tree packing of size
   ceil((lambda-1)/2)(1 - eps); iterations O(log^3 n); feasible loads *)

let e3 () =
  header
    "E3  spanning-tree packing: size vs ceil((lambda-1)/2), iterations vs \
     log^3 n   [Thm 1.3, Lemmas F.1/F.2]"
  :: text "%6s %7s %7s | %8s %8s %6s | %6s %8s %9s@." "n" "lambda" "target"
       "size" "ratio" "load" "iters" "lg^3 n" "edge mult"
  :: List.map
       (fun (n, lambda) ->
         job ~algo:"e3"
           ~params:[ ("n", i2s n); ("lambda", i2s lambda) ]
           (fun ppf ->
             let g = Graphs.Gen.harary ~k:lambda ~n in
             let r = Spantree.Lagrangian.run g ~lambda in
             let p = r.Spantree.Lagrangian.packing in
             let target = Spantree.Lagrangian.target ~lambda in
             Format.fprintf ppf
               "%6d %7d %7d | %8.2f %8.2f %6.3f | %6d %8.0f %9d@." n lambda
               target (Spantree.Spacking.size p)
               (Spantree.Spacking.size p /. float_of_int target)
               (Spantree.Spacking.max_edge_load p)
               r.Spantree.Lagrangian.trace.Spantree.Lagrangian.iterations
               (lg n ** 3.)
               (Spantree.Spacking.max_edge_multiplicity p)))
       [ (48, 4); (48, 8); (64, 16); (64, 32) ]
  @ [ text "(shape: ratio ~ (1 - eps); load <= 1)@." ]

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 1.3 round complexity O~(D + sqrt(n lambda)) *)

let e4 () =
  header
    "E4  distributed spanning-tree packing rounds vs O~(D + sqrt(n \
     lambda))   [Thm 1.3, Lemma 5.1]"
  :: text "%6s %7s %4s | %8s %9s %14s %8s@." "n" "lambda" "D" "rounds"
       "parallel" "(D+sqrt(nl))lg^3" "ratio"
  :: List.map
       (fun (n, lambda) ->
         job ~algo:"e4"
           ~params:[ ("n", i2s n); ("lambda", i2s lambda) ]
           (fun ppf ->
             let g = Graphs.Gen.harary ~k:lambda ~n in
             let d = Graphs.Traversal.diameter g in
             let net = Congest.Net.create Congest.Model.E_congest g in
             let r = Spantree.Dist_packing.run ~max_iterations:40 net ~lambda in
             let budget =
               (float_of_int d +. sqrt (float_of_int (n * lambda)))
               *. (lg n ** 3.)
             in
             Format.fprintf ppf "%6d %7d %4d | %8d %9d %14.0f %8.2f@." n
               lambda d r.Spantree.Dist_packing.measured_rounds
               r.Spantree.Dist_packing.parallel_rounds budget
               (float_of_int r.Spantree.Dist_packing.parallel_rounds /. budget)))
       [ (24, 4); (48, 4); (96, 4); (48, 8) ]
  @ [
      text
        "(shape: ratio stays bounded; 40-iteration cap keeps the \
         run tractable and only lowers the packing size)@.";
    ]

(* ------------------------------------------------------------------ *)
(* E5 — Corollaries 1.4/1.5, A.1: broadcast throughput *)

let e5 () =
  header
    "E5  broadcast throughput: Omega(k/log n) resp. ~lambda/2 msgs/round \
     vs the 1/round baseline   [Cor 1.4/1.5, A.1]"
  :: text "%-24s %6s | %10s %10s %9s@." "setting" "k|l" "throughput"
       "reference" "naive"
  :: (* V-CONGEST: dominating trees *)
     List.map
       (fun k ->
         job ~algo:"e5v" ~params:[ ("k", i2s k) ] ~seed:4 (fun ppf ->
             let n = 2 * k in
             let g = Graphs.Gen.harary ~k ~n in
             let res =
               Domtree.Cds_packing.run ~seed:4 g ~classes:(2 * k / 3) ~layers:2
             in
             let p = Domtree.Tree_extract.of_cds_packing res in
             let sources = List.init n (fun v -> (v, 4)) in
             let net = Congest.Net.create Congest.Model.V_congest g in
             let r =
               Routing.Broadcast.via_dominating_trees ~seed:4 net p ~sources
             in
             let net2 = Congest.Net.create Congest.Model.V_congest g in
             let naive = Routing.Broadcast.naive_single_tree net2 ~sources in
             Format.fprintf ppf "%-24s %6d | %10.2f %10.2f %9.2f@."
               (Printf.sprintf "V-CONGEST n=%d" n)
               k r.Routing.Broadcast.throughput
               (float_of_int k /. lg n)
               naive.Routing.Broadcast.throughput))
       [ 16; 24; 32; 48 ]
  @ (* E-CONGEST: spanning trees; large message count amortizes tree depth *)
  List.map
    (fun lambda ->
      job ~algo:"e5e" ~params:[ ("lambda", i2s lambda) ] ~seed:4 (fun ppf ->
          let n = 48 in
          let g = Graphs.Gen.harary ~k:lambda ~n in
          let sp =
            (Spantree.Sampling_pack.run ~seed:4 g ~lambda)
              .Spantree.Sampling_pack.packing
          in
          let sources = List.init n (fun v -> (v, 8)) in
          let net = Congest.Net.create Congest.Model.E_congest g in
          let r = Routing.Broadcast.via_spanning_trees ~seed:4 net sp ~sources in
          Format.fprintf ppf "%-24s %6d | %10.2f %10.2f %9s@."
            (Printf.sprintf "E-CONGEST n=%d" n)
            lambda r.Routing.Broadcast.throughput
            (float_of_int (Spantree.Lagrangian.target ~lambda))
            "-"))
    [ 8; 16; 24 ]
  @ [ text "(shape: throughput tracks the reference and beats 1)@." ]

(* ------------------------------------------------------------------ *)
(* E6 — Corollary 1.6: oblivious congestion competitiveness *)

let e6 () =
  header
    "E6  oblivious routing: vertex congestion O(log n)-competitive, edge \
     congestion O(1)-competitive   [Cor 1.6]"
  :: text "%-10s %4s %4s | %9s %9s %14s %8s@." "model" "n" "k|l" "measured"
       "optimum" "competitive" "lg n"
  :: List.map
       (fun k ->
         job ~algo:"e6v" ~params:[ ("k", i2s k) ] ~seed:5 (fun ppf ->
             let n = 2 * k in
             let g = Graphs.Gen.harary ~k ~n in
             let res =
               Domtree.Cds_packing.run ~seed:5 g ~classes:(2 * k / 3) ~layers:2
             in
             let p = Domtree.Tree_extract.of_cds_packing res in
             let sources = List.init n (fun v -> (v, 4)) in
             let net = Congest.Net.create Congest.Model.V_congest g in
             let rep =
               Routing.Oblivious.vertex_competitiveness ~seed:5 net p ~k
                 ~sources
             in
             Format.fprintf ppf "%-10s %4d %4d | %9d %9.1f %14.2f %8.2f@."
               "vertex" n k rep.Routing.Oblivious.measured_congestion
               rep.Routing.Oblivious.optimum_lower_bound
               rep.Routing.Oblivious.competitiveness (lg n)))
       [ 16; 24; 32 ]
  @ List.map
      (fun lambda ->
        job ~algo:"e6e" ~params:[ ("lambda", i2s lambda) ] ~seed:5 (fun ppf ->
            let n = 40 in
            let g = Graphs.Gen.harary ~k:lambda ~n in
            let sp =
              (Spantree.Sampling_pack.run ~seed:5 g ~lambda)
                .Spantree.Sampling_pack.packing
            in
            let sources = List.init n (fun v -> (v, 6)) in
            let net = Congest.Net.create Congest.Model.E_congest g in
            let rep =
              Routing.Oblivious.edge_competitiveness ~seed:5 net sp ~lambda
                ~sources
            in
            Format.fprintf ppf "%-10s %4d %4d | %9d %9.1f %14.2f %8s@." "edge"
              n lambda rep.Routing.Oblivious.measured_congestion
              rep.Routing.Oblivious.optimum_lower_bound
              rep.Routing.Oblivious.competitiveness "O(1)"))
      [ 8; 16 ]
  @ [ text "(shape: vertex column = O(log n), edge column flat)@." ]

(* ------------------------------------------------------------------ *)
(* E7 — Corollary 1.7: O(log n)-approximation of vertex connectivity,
   near-linear centralized time vs the flow-based exact baseline *)

let e7 () =
  header
    "E7  vertex-connectivity approximation: ratio <= O(log n); O~(m) time \
     vs flow-based exact   [Cor 1.7]"
  :: text "%-24s %5s %6s %7s | %9s %10s@." "graph" "k" "k-hat" "ratio"
       "approx(s)" "exact(s)"
  :: List.map
       (fun (name, mk) ->
         job ~algo:"e7" ~params:[ ("graph", name) ] ~seed:6 (fun ppf ->
             let g = mk () in
             let t0 = Sys.time () in
             let truth = Graphs.Connectivity.vertex_connectivity g in
             let t_exact = Sys.time () -. t0 in
             let t1 = Sys.time () in
             let r = Domtree.Vc_approx.centralized ~seed:6 g in
             let t_approx = Sys.time () -. t1 in
             Format.fprintf ppf "%-24s %5d %6d %7.2f | %9.3f %10.3f@." name
               truth r.Domtree.Vc_approx.estimate
               (Domtree.Vc_approx.approximation_ratio ~truth r)
               t_approx t_exact))
       [
         ("harary k=8 n=64", fun () -> Graphs.Gen.harary ~k:8 ~n:64);
         ("harary k=8 n=128", fun () -> Graphs.Gen.harary ~k:8 ~n:128);
         ("harary k=8 n=256", fun () -> Graphs.Gen.harary ~k:8 ~n:256);
         ("harary k=8 n=512", fun () -> Graphs.Gen.harary ~k:8 ~n:512);
         ("harary k=16 n=256", fun () -> Graphs.Gen.harary ~k:16 ~n:256);
         ("hypercube d=6", fun () -> Graphs.Gen.hypercube 6);
         ("clique path k=8", fun () -> Graphs.Gen.clique_path ~k:8 ~len:16);
       ]
  @ text
      "(shape: approx time grows ~linearly in m; exact flow baseline grows \
       much faster)@."
    :: (* E7b: the SODA'14 explicit-connector baseline vs Theorem 1.2 *)
       text
         "@.E7b  packing construction: Theorem 1.2 vs the [CGK SODA'14] \
          explicit-connector baseline@."
    :: text "%-24s | %10s %10s %8s@." "clique path (t=12, L=14)" "ours(s)"
         "base(s)" "base/ours"
    :: List.map
         (fun len ->
           job ~algo:"e7b" ~params:[ ("len", i2s len) ] ~seed:5 (fun ppf ->
               let g = Graphs.Gen.clique_path ~k:8 ~len in
               let t0 = Sys.time () in
               let base =
                 Domtree.Cgk_baseline.run ~seed:5 ~jumpstart:1 g ~classes:12
                   ~layers:14
               in
               let t_base = Sys.time () -. t0 in
               let t1 = Sys.time () in
               let ours =
                 Domtree.Cds_packing.run ~seed:5 ~jumpstart:1 g ~classes:12
                   ~layers:14
               in
               let t_ours = Sys.time () -. t1 in
               assert (List.length (Domtree.Cds_packing.valid_classes base) = 12);
               assert (List.length (Domtree.Cds_packing.valid_classes ours) = 12);
               Format.fprintf ppf "%-24s | %10.3f %10.3f %8.1f@."
                 (Printf.sprintf "n=%d" (Graph.n g))
                 t_ours t_base
                 (t_base /. Float.max 1e-9 t_ours)))
         [ 16; 32; 64; 128 ]
  @ [
      text
        "(shape: both always produce 12/12 valid classes; the baseline's \
         time ratio grows with n — the Theorem 1.2 improvement)@.";
    ]

(* ------------------------------------------------------------------ *)
(* E8 — Lemma 4.4 (Fast Merger): M drops by a constant factor per layer *)

let e8 () =
  header
    "E8  fast merger: excess components per layer (expect geometric decay) \
     [Lemma 4.4]"
  :: text "%-28s | %s@." "instance" "M after each layer"
  :: List.map
       (fun (name, mk, classes, layers) ->
         job ~algo:"e8" ~params:[ ("instance", name) ] ~seed:7 (fun ppf ->
             let res =
               Domtree.Cds_packing.run ~seed:7 ~jumpstart:1 (mk ()) ~classes
                 ~layers
             in
             let ms =
               res.Domtree.Cds_packing.stats
                 .Domtree.Cds_packing.excess_after_layer
             in
             Format.fprintf ppf "%-28s | %s@." name
               (String.concat " " (List.map (fun (_, m) -> string_of_int m) ms));
             (* per-layer decay ratios *)
             let rec ratios = function
               | (_, a) :: ((_, b) :: _ as rest) when a > 0 ->
                 (float_of_int b /. float_of_int a) :: ratios rest
               | _ :: rest -> ratios rest
               | [] -> []
             in
             let rs = ratios ms in
             if rs <> [] then
               Format.fprintf ppf "%-28s |   decay ratios: %s@." ""
                 (String.concat " " (List.map (Printf.sprintf "%.2f") rs))))
       [
         ( "clique_path k=8 len=32",
           (fun () -> Graphs.Gen.clique_path ~k:8 ~len:32), 12, 14 );
         ( "clique_path k=6 len=40",
           (fun () -> Graphs.Gen.clique_path ~k:6 ~len:40), 8, 14 );
         ("harary k=24 n=256", (fun () -> Graphs.Gen.harary ~k:24 ~n:256), 24, 16);
         ("torus 16x16", (fun () -> Graphs.Gen.torus 16 16), 4, 14);
       ]
  @ [
      text
        "(shape: every ratio < 1, typically << 1; M hits 0 well \
         before the last layer)@.";
    ]

(* ------------------------------------------------------------------ *)
(* E9 — Lemma 4.3 (Connector Abundance) *)

let e9 () =
  header
    "E9  connector abundance: every non-singleton component has >= k \
     internally disjoint connector paths   [Lemma 4.3, Fig. 2]"
  :: text "%-26s %4s | %10s %10s %12s %6s@." "graph" "k" "classes"
       "components" "min paths" "ok"
  :: List.map
       (fun (name, mk, k, classes, layers) ->
         job ~algo:"e9" ~params:[ ("graph", name) ] ~seed:8 (fun ppf ->
             let audit =
               Domtree.Connector.audit_jumpstart ~seed:8 (mk ()) ~classes
                 ~layers ~k
             in
             Format.fprintf ppf "%-26s %4d | %10d %10d %12s %6b@." name k
               audit.Domtree.Connector.classes_checked
               audit.Domtree.Connector.components_checked
               (if audit.Domtree.Connector.min_disjoint = max_int then "-"
                else string_of_int audit.Domtree.Connector.min_disjoint)
               audit.Domtree.Connector.all_above_k))
       [
         ("hypercube d=5", (fun () -> Graphs.Gen.hypercube 5), 5, 8, 2);
         ( "clique_path k=6 len=12",
           (fun () -> Graphs.Gen.clique_path ~k:6 ~len:12), 6, 8, 2 );
         ("harary k=8 n=64", (fun () -> Graphs.Gen.harary ~k:8 ~n:64), 8, 12, 2);
         ("torus 10x10", (fun () -> Graphs.Gen.torus 10 10), 4, 4, 2);
       ]
  @ [ text "(claim: the 'ok' column is always true)@." ]

(* ------------------------------------------------------------------ *)
(* E10 — Lemma E.1: the randomized tester. One indivisible block: the
   valid and sabotaged trials aggregate into shared summary lines. *)

let e10 () =
  [
    header
      "E10  packing tester: valid packings pass, sabotaged ones are caught \
       w.h.p.   [Lemma E.1]";
    job ~algo:"e10" ~seed:1 (fun ppf ->
        let trials = 20 in
        let k = 6 in
        let g = Graphs.Gen.clique_path ~k ~len:4 in
        (* valid partition: all blocks in class 0 and 1 *)
        let valid_memberships _ = [ 0; 1 ] in
        (* sabotage: class 0 loses the middle blocks -> distance-3 split *)
        let sabotaged v =
          let block = v / k in
          if block = 0 || block = 3 then [ 0; 1 ] else [ 1 ]
        in
        let count memberships =
          let passes = ref 0 in
          let detection_rounds = ref [] in
          for seed = 1 to trials do
            let o =
              Domtree.Tester.run_centralized ~seed g ~memberships ~classes:2
                ~detection_rounds:40
            in
            if o.Domtree.Tester.pass then incr passes;
            match o.Domtree.Tester.detection_round with
            | Some r -> detection_rounds := r :: !detection_rounds
            | None -> ()
          done;
          (!passes, !detection_rounds)
        in
        let vp, _ = count valid_memberships in
        let sp, rounds = count sabotaged in
        Format.fprintf ppf "valid partition:    %d/%d trials pass (expect all)@."
          vp trials;
        Format.fprintf ppf
          "sabotaged (split):  %d/%d trials pass (expect none)@." sp trials;
        if rounds <> [] then begin
          let sum = List.fold_left ( + ) 0 rounds in
          Format.fprintf ppf
            "detection rounds: mean %.1f, max %d (Theta(log n) budget was 40)@."
            (float_of_int sum /. float_of_int (List.length rounds))
            (List.fold_left max 0 rounds)
        end);
  ]

(* ------------------------------------------------------------------ *)
(* E11 — Theorem G.2 / Lemmas G.3-G.6: the lower-bound family. Each row
   derives a private RNG from (11, h) so rows are independent cells. *)

let e11 () =
  header
    "E11  lower-bound family G(X,Y): cut dichotomy, diameter 3, reduction \
     arithmetic   [Thm G.2, Fig. 3]"
  :: text "%3s %4s | %6s %7s %7s | %9s %12s@." "h" "n" "k(dis)" "k(int)"
       "diam<=3" "B bits" "round LB"
  :: List.map
       (fun h ->
         job ~algo:"e11" ~params:[ ("h", i2s h) ] ~seed:11 (fun ppf ->
             let ell = 1 and w = 5 in
             let rng = Random.State.make [| 11; h |] in
             let d = Lowerbound.Disjointness.random_disjoint rng ~h ~density:0.5 in
             let i =
               Lowerbound.Disjointness.random_intersecting rng ~h ~density:0.5
             in
             let cd = Lowerbound.Construction.build d ~ell ~w in
             let ci = Lowerbound.Construction.build i ~ell ~w in
             let kd, _ = Lowerbound.Construction.cut_dichotomy cd in
             let ki, cut = Lowerbound.Construction.cut_dichotomy ci in
             assert (cut <> None);
             let n = Graph.n ci.Lowerbound.Construction.graph in
             Format.fprintf ppf "%3d %4d | %6d %7d %7b | %9d %12.4f@." h n kd
               ki
               (Lowerbound.Construction.diameter_ok cd
               && Lowerbound.Construction.diameter_ok ci)
               (Lowerbound.Simulation.bits_per_message ~n)
               (Lowerbound.Simulation.implied_round_lower_bound ~h ~n)))
       [ 3; 4; 6; 8; 12 ]
  @ text
      "(claims: k(dis) >= w = 5, k(int) = 4 always, diameter 3; the implied \
       round bound grows linearly in h)@."
    :: (* one full distinguisher run with boundary accounting *)
       job ~algo:"e11-distinguisher" ~seed:11 (fun ppf ->
           let rng = Random.State.make [| 11; 99 |] in
           let i =
             Lowerbound.Disjointness.random_intersecting rng ~h:4 ~density:0.5
           in
           let c = Lowerbound.Construction.build i ~ell:1 ~w:5 in
           let rep = Lowerbound.Simulation.distinguish_via_packing ~seed:11 c in
           Format.fprintf ppf
             "distinguisher run (h=4): rounds=%d >= implied %.3f; Alice/Bob \
              boundary bits=%d@."
             rep.Lowerbound.Simulation.measured_rounds
             rep.Lowerbound.Simulation.implied_round_lower_bound
             rep.Lowerbound.Simulation.boundary_bits)
    :: (* Lemma G.5, executed: a T-round protocol simulated by two players *)
       List.map
         (fun rounds ->
           job ~algo:"e11-replay" ~params:[ ("rounds", i2s rounds) ] ~seed:11
             (fun ppf ->
               let rng = Random.State.make [| 11; 98 |] in
               let i2 =
                 Lowerbound.Disjointness.random_intersecting rng ~h:5
                   ~density:0.5
               in
               let c2 = Lowerbound.Construction.build i2 ~ell:3 ~w:4 in
               let rp =
                 Lowerbound.Simulation.two_party_replay c2
                   Lowerbound.Simulation.flood_min_protocol ~rounds
                   ~equal:( = )
               in
               Format.fprintf ppf
                 "Lemma G.5 replay T=%d: split run matches=%b, exchanged %d \
                  bits (2BT bound %d)@."
                 rounds rp.Lowerbound.Simulation.states_match
                 rp.Lowerbound.Simulation.bits_exchanged
                 rp.Lowerbound.Simulation.lemma_bound_bits))
         [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* E12 — integral packings *)

let e12 () =
  header
    "E12  integral packings: spanning-tree peeling vs \
     Tutte/Nash-Williams; vertex-disjoint dominating trees   [§1.2]"
  :: text "%-22s %7s | %7s %9s@." "graph" "lambda" "peeled" "target"
  :: List.map
       (fun lambda ->
         job ~algo:"e12-peel" ~params:[ ("lambda", i2s lambda) ] (fun ppf ->
             let g = Graphs.Gen.harary ~k:lambda ~n:64 in
             let trees = Spantree.Integral.peel g in
             Format.fprintf ppf "%-22s %7d | %7d %9d@."
               (Printf.sprintf "harary n=64") lambda (List.length trees)
               (Spantree.Lagrangian.target ~lambda)))
       [ 4; 8; 16; 32 ]
  @ text "%-22s %7s | %9s %9s %9s@." "graph" "k" "layering" "subpack"
      "k/log^2 n"
    :: List.map
         (fun k ->
           job ~algo:"e12-dom" ~params:[ ("k", i2s k) ] ~seed:12 (fun ppf ->
               let n = 2 * k in
               let g = Graphs.Gen.harary ~k ~n in
               let layering =
                 Domtree.Integral_layering.run ~seed:12 g
                   ~layers:(Domtree.Integral_layering.default_layers ~n)
               in
               let res =
                 Domtree.Cds_packing.run ~seed:12 g ~classes:(2 * k / 3)
                   ~layers:2
               in
               let p = Domtree.Tree_extract.of_cds_packing res in
               let q = Domtree.Tree_extract.integral_subpacking p in
               Format.fprintf ppf "%-22s %7d | %9d %9d %9.2f@."
                 (Printf.sprintf "harary n=%d" n)
                 k layering.Domtree.Integral_layering.successes
                 (Domtree.Packing.count q)
                 (float_of_int k /. (lg n ** 2.))))
         [ 16; 32; 48; 64 ]
  @ [
      text
        "(shape: peeled ~ target; both integral dominating-tree routes are \
         Omega(k/log^2 n), random layering clearly stronger)@.";
    ]

(* ------------------------------------------------------------------ *)
(* E13 — §1.2 remark: learning the 2-neighborhood needs Omega(n/k) rounds *)

let e13 () =
  header
    "E13  learning 2-neighborhood ids costs ~n/k rounds in V-CONGEST   \
     [§1.2 remark]"
  :: text "%6s %4s %7s | %8s %8s@." "n" "k" "extra" "rounds" "n/k"
  :: List.map
       (fun (k, extra) ->
         job ~algo:"e13"
           ~params:[ ("k", i2s k); ("extra", i2s extra) ]
           (fun ppf ->
             let g = Graphs.Gen.star_of_cliques ~k ~extra in
             let n = Graph.n g in
             let net = Congest.Net.create Congest.Model.V_congest g in
             (* protocol: each leaf announces its id (1 round); each clique
                node then forwards its leaves' ids one per round; the hub
                needs all *)
             let inboxes =
               Congest.Net.broadcast_round net (fun v -> Some [| v |])
             in
             let pending = Array.make n [] in
             for v = 1 to k do
               List.iter
                 (fun (sender, _) ->
                   if sender > k then pending.(v) <- sender :: pending.(v))
                 inboxes.(v)
             done;
             let hub_known = ref 0 in
             while Array.exists (fun l -> l <> []) pending do
               let _ =
                 Congest.Net.broadcast_round net (fun v ->
                     match pending.(v) with
                     | id :: rest ->
                       pending.(v) <- rest;
                       incr hub_known;
                       Some [| id |]
                     | [] -> None)
               in
               ()
             done;
             assert (!hub_known = extra);
             Format.fprintf ppf "%6d %4d %7d | %8d %8.1f@." n k extra
               (Congest.Net.rounds net)
               (float_of_int n /. float_of_int k)))
       [ (4, 60); (8, 120); (8, 248); (16, 240) ]
  @ [ text "(shape: rounds ~ extra/k ~ n/k)@." ]

(* ------------------------------------------------------------------ *)
(* E14 — the kappa of [CGK SODA'14] used by the integral packings:
   vertex sampling at 1/2 keeps connectivity Omega(k / log^3 n);
   empirically kappa ~ k/2. Per-row private RNG from (14, n, k). *)

let e14 () =
  header
    "E14  half-density vertex sampling keeps connectivity: kappa vs k      \
     [§1.1, integral packings via [12]]"
  :: text "%6s %4s | %8s %10s@." "n" "k" "kappa" "kappa/k"
  :: List.map
       (fun (n, k) ->
         job ~algo:"e14" ~params:[ ("n", i2s n); ("k", i2s k) ] ~seed:14
           (fun ppf ->
             let rng = Random.State.make [| 14; n; k |] in
             let g = Graphs.Gen.harary ~k ~n in
             let kappa = Graphs.Sampling.sampled_connectivity rng g ~trials:5 in
             Format.fprintf ppf "%6d %4d | %8d %10.2f@." n k kappa
               (float_of_int kappa /. float_of_int k)))
       [ (48, 8); (64, 12); (64, 16); (96, 24) ]
  @ [ text "(shape: kappa/k ~ 1/2 >> the 1/log^3 n guarantee)@." ]

(* ------------------------------------------------------------------ *)
(* E15 — the §1 motivation quantified: RLNC broadcast throughput decays
   with the number of messages (coefficient overhead), tree routing
   does not *)

let e15 () =
  header
    "E15  network coding vs tree routing: coefficient overhead makes RLNC      \
     throughput decay in N; the decomposition is N-independent   [§1]"
  :: text "%6s | %10s %10s %12s %8s@." "N" "rlnc" "trees" "cut k*B/N"
       "decoded"
  :: List.map
       (fun total ->
         job ~algo:"e15" ~params:[ ("N", i2s total) ] ~seed:15 (fun ppf ->
             let k = 16 and n = 32 in
             let g = Graphs.Gen.harary ~k ~n in
             let res =
               Domtree.Cds_packing.run ~seed:15 g ~classes:(2 * k / 3)
                 ~layers:2
             in
             let p = Domtree.Tree_extract.of_cds_packing res in
             let per = max 1 (total / n) in
             let sources = List.init n (fun v -> (v, per)) in
             let netc = Congest.Net.create Congest.Model.V_congest g in
             let rl =
               Routing.Coding.rlnc_broadcast ~seed:15 ~coeff_words_per_round:2
                 netc ~sources
             in
             let nett = Congest.Net.create Congest.Model.V_congest g in
             let tr =
               Routing.Broadcast.via_dominating_trees ~seed:15 nett p ~sources
             in
             Format.fprintf ppf "%6d | %10.2f %10.2f %12.1f %8b@."
               rl.Routing.Coding.messages rl.Routing.Coding.throughput
               tr.Routing.Broadcast.throughput
               (float_of_int (k * 32) /. float_of_int total)
               rl.Routing.Coding.decoded_all))
       [ 32; 64; 128; 256 ]
  @ [
      text
        "(shape: the rlnc column decays toward the k*B/N cut bound as N      \
         grows; the trees column is flat)@.";
    ]

(* ------------------------------------------------------------------ *)

let items () =
  text
    "=================================================================@."
  :: text " Distributed Connectivity Decomposition - experiment suite@."
  :: text " (paper claims vs measured; see DESIGN.md #3 and EXPERIMENTS.md)@."
  :: text
       "=================================================================@."
  :: List.concat
       [
         e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 ();
         e10 (); e11 (); e12 (); e13 (); e14 (); e15 ();
       ]

let all ?jobs ?cache () =
  let stats, _ =
    Exec.Sweep.run ~name:"experiments" ?jobs ?cache
      ~bench_json:"BENCH_experiments.json" (items ())
  in
  if stats.Exec.Sweep.failed > 0 then
    failwith
      (Printf.sprintf "experiments: %d cell(s) failed their embedded claim"
         stats.Exec.Sweep.failed);
  Format.printf
    "@.done. (every embedded shape assertion passed; a failed claim would      \
     have aborted this run)@."
