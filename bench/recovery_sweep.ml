(* Process-level chaos harness for the crash-only daemon
   (`bench/main.exe -- recovery [kills]`).

   Unlike serve_sweep (which spawns the daemon in-process to measure
   the service stack), this sweep drives a real out-of-process
   `decompose serve` through the failures that only exist at the
   process boundary:

   - [kill_under_load]: upload graphs, pipeline a burst, SIGKILL the
     daemon mid-burst at a varying kill point, restart it on the same
     state directory, and measure recovery time, journal replay counts,
     requests lost vs. served, whether every pre-crash certificate is
     queryable again, and that the degrade store stayed monotone
     (no retained-class regression vs. pre-crash).
   - [torn_files]: kill the daemon, then vandalize its durable state —
     a torn tail appended to the live journal segment and a bit flipped
     inside a cache entry — and demand a clean restart plus an
     {!Exec.Cache.scan} that quarantines every corrupt entry (a second
     scan finding nothing is the "zero undetected-corrupt entries"
     acceptance check).
   - [slowloris]: a dribbling client parks a half-written frame while a
     fast client keeps getting answers; the idle deadline must drop the
     dribbler with one structured error.
   - [fd_exhaustion]: the daemon runs under `ulimit -n`; a herd of idle
     connections starves it of fds; once they leave, the accept-loop
     backoff must recover without a restart.

   BENCH_recovery.json schema:
     { "sweep": "recovery", "wall_s": W,
       "rows": [ { "phase": ..., per-phase fields ... } ] }
   kill_under_load rows carry "recovery_ms" — the restart-to-ready
   latency the issue's acceptance criteria ask for. *)

module P = Serve.Protocol
module Client = Serve.Server.Client

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Daemon process control *)

let bin () =
  match Sys.getenv_opt "DECOMPOSE_BIN" with
  | Some p -> p
  | None ->
    (* the sweep runs as _build/default/bench/main.exe; the daemon
       binary sits in the sibling bin/ directory *)
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat Filename.parent_dir_name
         (Filename.concat "bin" "decompose.exe"))

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

type env = { socket : string; state_dir : string; cache_dir : string }

let fresh_env tag =
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "decompose-recovery-%d-%s" (Unix.getpid ()) tag)
  in
  rm_rf base;
  Unix.mkdir base 0o755;
  {
    socket = Filename.concat base "d.sock";
    state_dir = Filename.concat base "state";
    cache_dir = Filename.concat base "cache";
  }

let devnull = lazy (Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0)

(* Start `decompose serve` out of process. [fd_limit > 0] wraps it in
   `sh -c 'ulimit -n N; exec ...'` so the limit applies to the daemon
   alone, not this sweep. *)
let start_daemon ?(fd_limit = 0) ?(extra = []) env =
  let null = Lazy.force devnull in
  let args =
    [
      bin (); "serve"; "--socket"; env.socket; "--state-dir"; env.state_dir;
      "--cache-dir"; env.cache_dir;
    ]
    @ extra
  in
  if fd_limit > 0 then
    let cmd =
      Printf.sprintf "ulimit -n %d; exec %s" fd_limit
        (String.concat " " (List.map Filename.quote args))
    in
    Unix.create_process "/bin/sh" [| "/bin/sh"; "-c"; cmd |] Unix.stdin null null
  else Unix.create_process (bin ()) (Array.of_list args) Unix.stdin null null

let rec waitpid_retry flags pid =
  try Unix.waitpid flags pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry flags pid

let kill9 pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (waitpid_retry [] pid)

(* Poll a Health round trip until the daemon answers; returns the wait
   in seconds and the first health report. *)
let wait_ready ?(timeout_s = 30.) env =
  let t0 = now () in
  let rec go () =
    if now () -. t0 > timeout_s then
      failwith ("daemon not ready within timeout on " ^ env.socket)
    else
      match Client.connect ~timeout_s:1. env.socket with
      | cl ->
        let h =
          match Client.request cl P.Health with
          | Ok (P.Health_report h) -> Some h
          | _ -> None
        in
        Client.close cl;
        (match h with
        | Some h -> (now () -. t0, h)
        | None ->
          Unix.sleepf 0.01;
          go ())
      | exception (Unix.Unix_error _ | Sys_error _) ->
        Unix.sleepf 0.01;
        go ()
  in
  go ()

let drain env pid =
  (match Client.connect ~timeout_s:10. env.socket with
  | cl ->
    (match Client.request cl P.Drain with
    | Ok (P.Drained _) -> ()
    | Ok r -> Format.printf "drain surprise: %a@." P.pp_response r
    | Error m -> Format.printf "drain failed: %s@." m);
    Client.close cl
  | exception (Unix.Unix_error _ | Sys_error _) ->
    Format.printf "drain: could not connect; killing@.";
    try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (waitpid_retry [] pid)

(* ------------------------------------------------------------------ *)
(* Rows: phases report different facts, so a row is a tagged field list *)

type row = { phase : string; fields : (string * Exec.Artifact.json) list }

let pp_row r =
  Format.printf "%-16s" r.phase;
  List.iter
    (fun (k, v) ->
      match v with
      | Exec.Artifact.Int i -> Format.printf " %s=%d" k i
      | Exec.Artifact.Float f -> Format.printf " %s=%.2f" k f
      | Exec.Artifact.Bool b -> Format.printf " %s=%b" k b
      | Exec.Artifact.String s -> Format.printf " %s=%s" k s
      | _ -> ())
    r.fields;
  Format.printf "@."

let json_row r =
  Exec.Artifact.Obj (("phase", Exec.Artifact.String r.phase) :: r.fields)

(* ------------------------------------------------------------------ *)
(* Phase 1: SIGKILL under load, restart, recover *)

let uploads = [ ("harary:k=4,n=32", 4); ("harary:k=4,n=40", 4); ("hypercube:d=4", 2) ]

let decompose_req ~gen ~k ~seed =
  { (P.default_decompose ~gen) with P.k; seed }

let certificate_retained env gen =
  let cl = Client.connect ~timeout_s:10. env.socket in
  let r =
    match Client.request cl (P.Certificate { gen }) with
    | Ok (P.Cert c) ->
      Some (Domtree.Certificate.retained_count c.P.c_cert, c.P.c_stale)
    | _ -> None
  in
  Client.close cl;
  r

let kill_under_load_phase ~index env =
  let pid = start_daemon env in
  let _, _ = wait_ready env in
  (* upload: one verified decompose per graph promotes a certificate,
     each journaled durably before the reply *)
  let cl = Client.connect ~timeout_s:30. env.socket in
  List.iter
    (fun (gen, k) ->
      match Client.request cl (P.Decompose (decompose_req ~gen ~k ~seed:7)) with
      | Ok (P.Result { P.verified = true; _ }) -> ()
      | Ok r -> Format.printf "upload surprise (%s): %a@." gen P.pp_response r
      | Error m -> failwith ("upload failed: " ^ m))
    uploads;
  Client.close cl;
  let pre =
    List.filter_map
      (fun (gen, _) ->
        Option.map (fun (ret, _) -> (gen, ret)) (certificate_retained env gen))
      uploads
  in
  (* burst: pipeline fresh-seed requests (memo misses, so the daemon is
     genuinely computing when the kill lands), then SIGKILL after
     draining a phase-dependent number of replies *)
  let burst = 24 in
  let kill_after = 2 + (5 * index) in
  let bc = Client.connect ~timeout_s:5. env.socket in
  let gen0, k0 = List.hd uploads in
  for i = 1 to burst do
    Client.send bc (P.Decompose (decompose_req ~gen:gen0 ~k:k0 ~seed:(100 + (burst * index) + i)))
  done;
  let received = ref 0 in
  (try
     for _ = 1 to kill_after do
       match Client.recv bc with Ok _ -> incr received | Error _ -> raise Exit
     done
   with Exit -> ());
  kill9 pid;
  (* everything still in flight is lost — count it *)
  let lost = ref 0 in
  (try
     for _ = !received + 1 to burst do
       match Client.recv bc with Ok _ -> incr received | Error _ -> incr lost; raise Exit
     done
   with Exit -> lost := !lost + (burst - !received - !lost));
  Client.close bc;
  (* restart on the same state directory: the journal replay must hand
     back every uploaded graph and certificate *)
  let t_restart = now () in
  let pid' = start_daemon env in
  let wait_s, h = wait_ready env in
  let recovery_ms = (now () -. t_restart) *. 1000. in
  ignore wait_s;
  let recovered = ref 0 in
  let monotone = ref true in
  List.iter
    (fun (gen, pre_ret) ->
      match certificate_retained env gen with
      | Some (post_ret, _stale) ->
        incr recovered;
        if post_ret < pre_ret then monotone := false
      | None -> ())
    pre;
  drain env pid';
  {
    phase = "kill_under_load";
    fields =
      [
        ("kill_point", Exec.Artifact.Int kill_after);
        ("uploads", Exec.Artifact.Int (List.length uploads));
        ("burst", Exec.Artifact.Int burst);
        ("served_before_kill", Exec.Artifact.Int !received);
        ("lost", Exec.Artifact.Int !lost);
        ("recovery_ms", Exec.Artifact.Float recovery_ms);
        ("replayed", Exec.Artifact.Int h.P.h_replayed);
        ("certs_pre_crash", Exec.Artifact.Int (List.length pre));
        ("certs_recovered", Exec.Artifact.Int !recovered);
        ("monotone", Exec.Artifact.Bool !monotone);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Phase 2: torn journal tail + bit-flipped cache entry *)

let flip_byte path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  if len = 0 then false
  else begin
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
    let off = len / 2 in
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    let b = Bytes.create 1 in
    ignore (Unix.read fd b 0 1);
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    ignore (Unix.write fd b 0 1);
    Unix.close fd;
    true
  end

let append_garbage path bytes =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc bytes;
  close_out oc

let files_under dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries |> List.sort String.compare
    |> List.filter_map (fun e ->
           let p = Filename.concat dir e in
           if Sys.is_directory p then None else Some p)
  | exception Sys_error _ -> []

let torn_files_phase env =
  let pid = start_daemon env in
  let _ = wait_ready env in
  let cl = Client.connect ~timeout_s:30. env.socket in
  List.iter
    (fun (gen, k) ->
      ignore (Client.request cl (P.Decompose (decompose_req ~gen ~k ~seed:7))))
    uploads;
  Client.close cl;
  kill9 pid;
  (* vandalism: a torn tail on the live journal segment... *)
  let torn = "\x01\x00\x00\x13torn-mid-write" (* valid header, missing body *) in
  let journal_torn =
    match
      files_under env.state_dir
      |> List.filter (fun p -> Filename.check_suffix p ".wal")
    with
    | seg :: _ ->
      append_garbage seg torn;
      true
    | [] -> false
  in
  (* ...and a flipped byte inside a cache entry *)
  let cache_v = Filename.concat env.cache_dir "v1" in
  let flipped =
    match files_under cache_v with p :: _ -> flip_byte p | [] -> false
  in
  (* offline cache audit while the damage is still on disk: the scan
     must quarantine the flipped entry, never serve it. (Done before
     the restart — journal replay re-mirrors certificates to the cache,
     which would overwrite-repair the flip and mask the detection.) *)
  let cache = Exec.Cache.open_dir env.cache_dir in
  let s1 = Exec.Cache.scan cache in
  (* the daemon must restart cleanly anyway *)
  let pid' = start_daemon env in
  let _, h = wait_ready env in
  let gen0, _ = List.hd uploads in
  let queryable = certificate_retained env gen0 <> None in
  drain env pid';
  (* a second scan finding nothing corrupt — across both the
     quarantined state and the daemon's replay-rewritten entries — is
     the "zero undetected-corrupt entries" acceptance criterion *)
  let s2 = Exec.Cache.scan (Exec.Cache.open_dir env.cache_dir) in
  {
    phase = "torn_files";
    fields =
      [
        ("journal_torn", Exec.Artifact.Bool journal_torn);
        ("cache_flipped", Exec.Artifact.Bool flipped);
        ("torn_bytes", Exec.Artifact.Int (String.length torn));
        ("replayed", Exec.Artifact.Int h.P.h_replayed);
        ("cert_queryable", Exec.Artifact.Bool queryable);
        ("scan_entries", Exec.Artifact.Int s1.Exec.Cache.scanned);
        ("scan_quarantined", Exec.Artifact.Int s1.Exec.Cache.swept);
        ("undetected_corrupt", Exec.Artifact.Int s2.Exec.Cache.swept);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Phase 3: slowloris dribbler vs. fast client *)

let slowloris_phase env =
  let pid = start_daemon ~extra:[ "--idle-timeout-ms"; "300" ] env in
  let _ = wait_ready env in
  (* the dribbler parks 3 bytes of a valid frame and stalls *)
  let dribbler = Client.connect ~timeout_s:5. env.socket in
  let frame = Serve.Framing.encode (P.encode_request P.Health) in
  Client.send_raw dribbler (String.sub frame 0 3);
  (* the fast client keeps being served during and after the stall *)
  let fast = Client.connect ~timeout_s:10. env.socket in
  let gen0, k0 = List.hd uploads in
  let fast_ok = ref 0 in
  for seed = 1 to 10 do
    match Client.request fast (P.Decompose (decompose_req ~gen:gen0 ~k:k0 ~seed)) with
    | Ok (P.Result _) -> incr fast_ok
    | _ -> ()
  done;
  Unix.sleepf 0.5 (* past the 300 ms idle deadline *);
  (match Client.request fast (P.Decompose (decompose_req ~gen:gen0 ~k:k0 ~seed:99)) with
  | Ok (P.Result _) -> incr fast_ok
  | _ -> ());
  (* the dribbler gets one structured error (or a straight close) *)
  let dropped =
    match Client.recv dribbler with
    | Ok (P.Error (P.Bad_request, _)) -> true
    | Error _ -> true
    | _ -> false
  in
  Client.close dribbler;
  Client.close fast;
  drain env pid;
  {
    phase = "slowloris";
    fields =
      [
        ("fast_ok", Exec.Artifact.Int !fast_ok);
        ("fast_total", Exec.Artifact.Int 11);
        ("dribbler_dropped", Exec.Artifact.Bool dropped);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Phase 4: fd exhaustion around the accept loop *)

let fd_exhaustion_phase env =
  let pid = start_daemon ~fd_limit:32 env in
  let _ = wait_ready env in
  (* a herd of idle connections: with ~32 fds the daemon hits EMFILE
     partway through accepting these *)
  let herd = ref [] in
  let opened = ref 0 in
  (try
     for _ = 1 to 64 do
       let cl = Client.connect ~timeout_s:1. env.socket in
       herd := cl :: !herd;
       incr opened
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  Unix.sleepf 0.3 (* let the accept loop hit EMFILE and start pausing *);
  (* the herd leaves; the paused listener must come back on its own *)
  List.iter Client.close !herd;
  let health_after =
    let t0 = now () in
    let rec go () =
      if now () -. t0 > 10. then false
      else
        match Client.connect ~timeout_s:1. env.socket with
        | cl ->
          let ok =
            match Client.request cl P.Health with
            | Ok (P.Health_report _) -> true
            | _ -> false
          in
          Client.close cl;
          if ok then true
          else begin
            Unix.sleepf 0.05;
            go ()
          end
        | exception (Unix.Unix_error _ | Sys_error _) ->
          Unix.sleepf 0.05;
          go ()
    in
    go ()
  in
  drain env pid;
  {
    phase = "fd_exhaustion";
    fields =
      [
        ("fd_limit", Exec.Artifact.Int 32);
        ("herd_opened", Exec.Artifact.Int !opened);
        ("recovered_without_restart", Exec.Artifact.Bool health_after);
      ];
  }

(* ------------------------------------------------------------------ *)

let all ?(kills = 2) () =
  Format.printf "@.== crash-recovery chaos sweep (%d kill points) ==@." kills;
  Format.printf "daemon binary: %s@." (bin ());
  let t0 = now () in
  let rows = ref [] in
  for i = 0 to kills - 1 do
    let env = fresh_env (Printf.sprintf "kill%d" i) in
    let r = kill_under_load_phase ~index:i env in
    pp_row r;
    rows := r :: !rows
  done;
  let torn = torn_files_phase (fresh_env "torn") in
  pp_row torn;
  let slow = slowloris_phase (fresh_env "slow") in
  pp_row slow;
  let fd = fd_exhaustion_phase (fresh_env "fd") in
  pp_row fd;
  rows := fd :: slow :: torn :: !rows;
  let rows = List.rev !rows in
  let wall = now () -. t0 in
  Exec.Artifact.write_json ~path:"BENCH_recovery.json"
    (Exec.Artifact.Obj
       [
         ("sweep", Exec.Artifact.String "recovery");
         ("wall_s", Exec.Artifact.Float wall);
         ("rows", Exec.Artifact.List (List.map json_row rows));
       ]);
  Format.printf "BENCH_recovery.json written (%.1f s)@." wall
