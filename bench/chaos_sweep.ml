(* F3 — the chaos harness behind the self-healing pipeline: sweep
   adversary schedules across graph families and race the two recovery
   policies of Domtree.Reliable head to head.

   Schedules:
   - storm:     a seeded crash storm early in the run;
   - mincut:    targeted fail-stop kills of all-but-one vertex of a
                minimum vertex cut — redundancy attacked exactly where
                it is thinnest, while the live graph stays connected (a
                strict subset of a minimum cut is never a separator).
                The Appendix G family reuses Lowerbound.Construction:
                its intersecting instance pins the cut at {a,b,u_z,v_z}
                (Lemma G.4, via cut_dichotomy);
   - attrition: an adaptive greedy edge killer plus light Bernoulli
                message drops for the whole run.

   Every cell reports rounds-to-verified and classes retained, and the
   output's Certificate is re-checked independently against the live
   subgraph. Two invariants fail the sweep loudly:
   - every certificate (degraded or not) must pass the check;
   - wherever both policies verify, `Repair must charge no more rounds
     than `Retry — the point of incremental repair.

   Deterministic for a fixed seed. The grid is 4 families x 4 schedules;
   each cell is one self-contained Exec.Job (it rebuilds its family by
   name and re-runs calibration inside the closure, so a warm cache
   skips every bit of computation). The two grid invariants are checked
   after the pool drains, from the structured meta facts each cell
   returns — they need the whole grid, so they cannot live inside any
   single job. *)

module Faults = Congest.Faults
module Reliable = Domtree.Reliable
module Certificate = Domtree.Certificate

type family = {
  fam : string;
  graph : Graphs.Graph.t;
  k : int;
  cut : int list option;  (** a minimum vertex cut, when one is known *)
}

let family_names = [ "harary"; "hypercube"; "clique_path"; "lowerbound" ]

(* Rebuild one family from its name — called inside job closures so each
   cell owns its graph. Deterministic: the lowerbound instance derives
   from a fixed-seed state. *)
let family_of_name ~n ~k name =
  let mk fam graph k =
    { fam; graph; k; cut = Graphs.Connectivity.min_vertex_cut graph }
  in
  match name with
  | "harary" -> mk "harary" (Graphs.Gen.harary ~k ~n) k
  | "hypercube" -> mk "hypercube" (Graphs.Gen.hypercube 5) 5
  | "clique_path" -> mk "clique_path" (Graphs.Gen.clique_path ~k:6 ~len:6) 6
  | "lowerbound" ->
    (* Appendix G graph on an intersecting instance: Lemma G.4 pins the
       minimum cut at exactly {a, b, u_z, v_z} *)
    let rng = Random.State.make [| 5 |] in
    let inst =
      Lowerbound.Disjointness.random_intersecting rng ~h:4 ~density:0.5
    in
    let c = Lowerbound.Construction.build inst ~ell:1 ~w:4 in
    let vc, cut = Lowerbound.Construction.cut_dichotomy c in
    { fam = "lowerbound"; graph = c.Lowerbound.Construction.graph; k = vc; cut }
  | other -> invalid_arg ("chaos family: " ^ other)

(* A calibration run of the first attempt's packing, fault-free. Faults
   scheduled {e after} its round count land inside the verification
   window, breaking a packing that was already built — the case
   incremental repair exists for. (Faults during packing are simply
   absorbed: the pipeline is live-aware, so a packing grown on the
   surviving graph verifies.) Because the chaos schedules only fire
   after this point, the calibration memberships are exactly the first
   attempt's memberships, so the adversary can aim. *)
(* With the default (deep-layered) parameters the packing is fully
   redundant — every vertex lands in every class and no crash short of
   disconnecting the graph breaks anything. Chaos wants the sparse
   regime, where classes have structure an adversary can break and a
   repair can mend: more classes, shallow layers. *)
let shape f =
  let classes = max 2 (2 * f.k / 3) in
  (classes, 2)

let calibrate ~seed f =
  let net = Congest.Net.create Congest.Model.V_congest f.graph in
  let classes, layers = shape f in
  let res = Domtree.Dist_packing.run ~seed net ~classes ~layers in
  (Congest.Net.rounds net, Domtree.Cds_packing.real_classes res)

(* The aimed kill: find a non-member of class 0 whose class-0 neighbors
   are few — but not its whole neighborhood — and crash exactly those. A
   guaranteed domination hole at that vertex, detected by the tester and
   patched by one orphan reassignment (plus splices if the kill also
   fragmented the class). Requiring a surviving non-class-0 neighbor
   keeps the target attached to the live graph: isolating a vertex is a
   different experiment (it disconnects the live graph, which no
   distributed tester can see across — the certificate is the arbiter
   there, and Repair rightly degrades). *)
let orphan_kills ~after g per_real =
  let n = Graphs.Graph.n g in
  let in0 v = List.mem 0 per_real.(v) in
  let best = ref None in
  for v = 0 to n - 1 do
    if not (in0 v) then begin
      let nbrs = Array.to_list (Graphs.Graph.neighbors g v) in
      let cover = List.filter in0 nbrs in
      if cover <> [] && List.length cover < List.length nbrs then
        match !best with
        | Some (_, c) when List.length c <= List.length cover -> ()
        | _ -> best := Some (v, cover)
    end
  done;
  match !best with
  | Some (_, cover) ->
    [ Faults.Crash_at (List.map (fun u -> (after, u)) cover) ]
  | None -> []

let schedule_names = [ "storm"; "mincut"; "orphan"; "attrition" ]

let schedule_of_name ~after ~per_real f name =
  let n = Graphs.Graph.n f.graph in
  match name with
  | "storm" ->
    [
      Faults.Crash_storm
        { from_round = after; per_round = 4; storm_rounds = 3; universe = n };
    ]
  | "mincut" -> (
    match f.cut with
    | None | Some ([] | [ _ ]) -> []
    | Some (_keep :: rest) ->
      [ Faults.Crash_at (List.mapi (fun i v -> (after + (2 * i), v)) rest) ])
  | "orphan" -> orphan_kills ~after f.graph per_real
  | "attrition" ->
    [
      Faults.Greedy_edge_kill { budget = f.k; period = 1; from_round = after };
      Faults.Drop_bernoulli 0.01;
    ]
  | other -> invalid_arg ("chaos schedule: " ^ other)

type cell = {
  verified : bool;
  rounds : int;
  retained : int;
  requested : int;
  attempts : int;
  crashes : int;
  degraded : bool;
  cert_ok : bool;
}

let run_cell ~seed f specs policy =
  let net = Congest.Net.create Congest.Model.V_congest f.graph in
  let faults = Faults.create ~seed specs in
  Faults.install net faults;
  let classes, layers = shape f in
  let r =
    Reliable.run_verified_distributed ~seed ~policy ~k:f.k net ~classes ~layers
  in
  let cert = r.Reliable.certificate in
  let cert_ok =
    match
      Certificate.check ~seed:(seed + 1) ~live:(Faults.alive faults) f.graph
        ~memberships:(fun v -> r.Reliable.memberships.(v))
        cert
    with
    | Ok () -> true
    | Error _ -> false
  in
  {
    verified = r.Reliable.verified;
    rounds = r.Reliable.rounds_charged;
    retained = r.Reliable.classes_retained;
    requested = cert.Certificate.c_classes_requested;
    attempts = List.length r.Reliable.attempts;
    crashes = List.length (Faults.crashed_nodes faults);
    degraded = r.Reliable.degraded;
    cert_ok;
  }

let csv_header =
  "family,schedule,policy,verified,rounds,retained,requested,attempts,crashes,degraded,cert_ok"

(* One chaos cell: both policies on one (family, schedule) pair. An
   empty schedule (e.g. a missing min cut) yields an empty payload with
   meta empty=true, so the post-run checks skip it. *)
let cell_job ~n ~k ~seed fname sname =
  Exec.Sweep.Job
    (Exec.Job.make ~algo:"chaos"
       ~params:
         [
           ("family", fname);
           ("schedule", sname);
           ("n", string_of_int n);
           ("k", string_of_int k);
         ]
       ~seed
       (fun () ->
         let f = family_of_name ~n ~k fname in
         let rounds, per_real = calibrate ~seed f in
         let after = rounds + 2 in
         let specs = schedule_of_name ~after ~per_real f sname in
         if specs = [] then Exec.Job.payload ~meta:[ ("empty", "true") ] ""
         else begin
           let retry = run_cell ~seed f specs `Retry in
           let repair = run_cell ~seed f specs `Repair in
           let b = Buffer.create 256 in
           let ppf = Format.formatter_of_buffer b in
           let rows =
             List.map
               (fun (pname, c) ->
                 Format.fprintf ppf
                   "%-12s %-10s %-7s | %5b %7d %6d/%-2d %8d %7d %5b %5b@."
                   f.fam sname pname c.verified c.rounds c.retained c.requested
                   c.attempts c.crashes c.degraded c.cert_ok;
                 Printf.sprintf "%s,%s,%s,%b,%d,%d,%d,%d,%d,%b,%b" f.fam sname
                   pname c.verified c.rounds c.retained c.requested c.attempts
                   c.crashes c.degraded c.cert_ok)
               [ ("retry", retry); ("repair", repair) ]
           in
           Format.pp_print_flush ppf ();
           Exec.Job.payload ~rows
             ~meta:
               [
                 ("family", f.fam);
                 ("schedule", sname);
                 ("retry_verified", string_of_bool retry.verified);
                 ("repair_verified", string_of_bool repair.verified);
                 ("retry_rounds", string_of_int retry.rounds);
                 ("repair_rounds", string_of_int repair.rounds);
                 ("retry_cert_ok", string_of_bool retry.cert_ok);
                 ("repair_cert_ok", string_of_bool repair.cert_ok);
               ]
             (Buffer.contents b)
         end))

let items ?(n = 48) ?(k = 8) ?(seed = 11) () =
  let text = Exec.Sweep.text in
  let title =
    Printf.sprintf
      "F3  chaos harness: repair vs retry under adversary schedules (n=%d \
       k=%d seed=%d)"
      n k seed
  in
  text "@.%s@.%s@." title (String.make (String.length title) '-')
  :: text "%-12s %-10s %-7s | %5s %7s %9s %8s %7s %5s %5s@." "family"
       "schedule" "policy" "ok" "rounds" "retained" "attempts" "crashes"
       "degr" "cert"
  :: List.concat_map
       (fun fname ->
         List.map (fun sname -> cell_job ~n ~k ~seed fname sname)
           schedule_names)
       family_names

(* The grid invariants, reconstructed from each cell's meta facts. *)
let check_invariants outcomes =
  let cert_failures = ref [] in
  let violations = ref [] in
  List.iter
    (fun (_, outcome) ->
      match outcome with
      | `Failed msg -> failwith ("chaos sweep: cell failed: " ^ msg)
      | `Ok p when Exec.Job.meta p "empty" = Some "true" -> ()
      | `Ok p ->
        let get key =
          match Exec.Job.meta p key with
          | Some v -> v
          | None -> failwith ("chaos sweep: cell missing meta " ^ key)
        in
        let fam = get "family" and sname = get "schedule" in
        List.iter
          (fun pname ->
            if get (pname ^ "_cert_ok") <> "true" then
              cert_failures := (fam, sname, pname) :: !cert_failures)
          [ "retry"; "repair" ];
        if
          get "retry_verified" = "true"
          && get "repair_verified" = "true"
          && int_of_string (get "repair_rounds")
             > int_of_string (get "retry_rounds")
        then violations := (fam, sname) :: !violations)
    outcomes;
  (match List.rev !cert_failures with
  | [] -> Format.printf "every output's certificate checks: OK@."
  | l ->
    List.iter
      (fun (f, s, p) -> Format.eprintf "certificate FAILED: %s/%s/%s@." f s p)
      l;
    failwith "chaos sweep: a certificate failed its independent check");
  match List.rev !violations with
  | [] ->
    Format.printf
      "repair verified in <= retry rounds wherever both succeed: OK@."
  | l ->
    List.iter
      (fun (f, s) ->
        Format.eprintf "round inversion: %s/%s repair cost more than retry@." f
          s)
      l;
    failwith "chaos sweep: repair cost more rounds than retry"

let all ?n ?k ?seed ?csv ?jobs ?cache () =
  let _stats, outcomes =
    Exec.Sweep.run ~name:"chaos" ?jobs ?cache ?csv ~csv_header
      ~bench_json:"BENCH_chaos.json"
      (items ?n ?k ?seed ())
  in
  check_invariants outcomes
