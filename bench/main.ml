(* Benchmark entry point.

   Running `dune exec bench/main.exe` produces:
   1. the experiment tables E1..E15 (DESIGN.md §3) — the paper's
      quantitative claims, paper-reference vs measured;
   2. a bechamel microbenchmark suite over the hot kernels behind each
      experiment family (one Test.make per family).

   `dune exec bench/main.exe -- tables` / `-- micro` runs one half;
   `-- csv` emits the headline series in machine-readable form;
   `-- failures` / `-- chaos` run the fault sweeps.

   Every sweep (everything except `micro`, which is timing-sensitive and
   stays sequential) executes its grid on the lib/exec domain pool:

     -j N | --jobs N | --jobs=N   worker domains
                                  (default: recommended_domain_count - 1)
     --no-cache                   bypass the _cache/ memo store

   Each sweep also writes a BENCH_<sweep>.json run report (wall clock,
   jobs, cache hits, estimated speedup vs -j 1); see DESIGN.md §9. *)

open Bechamel
open Toolkit

let kernel_tests =
  let graph_k8 = Graphs.Gen.harary ~k:8 ~n:64 in
  let graph_big = Graphs.Gen.harary ~k:8 ~n:128 in
  [
    (* E1/E2 family: the CDS packing itself *)
    Test.make ~name:"cds_packing n=64 k=8"
      (Staged.stage (fun () ->
           ignore (Domtree.Cds_packing.pack ~seed:1 graph_k8 ~k:8)));
    (* E3/E4 family: one multiplicative-weights packing *)
    Test.make ~name:"lagrangian n=64 lambda=8"
      (Staged.stage (fun () ->
           ignore
             (Spantree.Lagrangian.run ~max_iterations:60 graph_k8 ~lambda:8)));
    (* E7 family: exact connectivity baselines *)
    Test.make ~name:"stoer_wagner n=128"
      (Staged.stage (fun () ->
           ignore (Graphs.Connectivity.edge_connectivity graph_big)));
    Test.make ~name:"vertex_connectivity n=64"
      (Staged.stage (fun () ->
           ignore (Graphs.Connectivity.vertex_connectivity graph_k8)));
    (* E9 family: the connector-path flow *)
    Test.make ~name:"connector max_disjoint"
      (Staged.stage (fun () ->
           let g = Graphs.Gen.clique_path ~k:6 ~len:8 in
           let in_class v = v < 6 || v >= 42 in
           let in_component v = v < 6 in
           ignore (Domtree.Connector.max_disjoint g ~in_class ~in_component)));
    (* E10 family: the tester *)
    Test.make ~name:"tester (centralized) n=64"
      (Staged.stage (fun () ->
           ignore
             (Domtree.Tester.run_centralized graph_k8
                ~memberships:(fun v -> [ v mod 2 ])
                ~classes:2 ~detection_rounds:16)));
    (* E11 family: building the lower-bound graph *)
    Test.make ~name:"lowerbound build h=6"
      (Staged.stage (fun () ->
           let rng = Random.State.make [| 1 |] in
           let inst =
             Lowerbound.Disjointness.random_intersecting rng ~h:6 ~density:0.5
           in
           ignore (Lowerbound.Construction.build inst ~ell:1 ~w:5)));
    (* substrate: max-flow and MST *)
    Test.make ~name:"dinic vertex pair n=64"
      (Staged.stage (fun () ->
           ignore (Graphs.Maxflow.vertex_connectivity_pair graph_k8 0 32)));
    Test.make ~name:"distributed MST n=64"
      (Staged.stage (fun () ->
           let net = Congest.Net.create Congest.Model.V_congest graph_k8 in
           ignore
             (Congest.Dist_mst.minimum_spanning_forest net
                ~weight:(fun u v -> (u * 7) + (v * 13)))));
  ]

let run_micro () =
  Format.printf "@.== bechamel microbenchmarks (monotonic clock) ==@.";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let instances = Instance.[ monotonic_clock ] in
  let analyze = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let rows =
        Hashtbl.fold (fun name wall acc -> (name, wall) :: acc) results []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, wall) ->
          match Analyze.one analyze Instance.monotonic_clock wall with
          | ols -> (
            match Analyze.OLS.estimates ols with
            | Some [ est ] ->
              Format.printf "%-32s %12.0f ns/run@." name est
            | _ -> Format.printf "%-32s (no estimate)@." name)
          | exception _ -> Format.printf "%-32s (failed)@." name)
        rows)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) kernel_tests)

(* CLI: flags (-j N / --jobs N / --jobs=N / --no-cache) may appear
   anywhere; the remaining positionals are [mode [n [k]]]. *)
type cli = { mode : string; pos : int list; jobs : int option; cache : bool }

let usage () =
  prerr_endline
    "usage: main.exe \
     [all|tables|micro|csv|failures|chaos|perf|serve|recovery|obs] [n [k]] [-j \
     N | --jobs N] [--no-cache]";
  exit 2

let parse_cli argv =
  let cli = ref { mode = "all"; pos = []; jobs = None; cache = true } in
  let set_jobs s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> cli := { !cli with jobs = Some j }
    | _ -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "--no-cache" :: rest ->
      cli := { !cli with cache = false };
      go rest
    | ("-j" | "--jobs") :: v :: rest ->
      set_jobs v;
      go rest
    | [ ("-j" | "--jobs") ] -> usage ()
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
      set_jobs (String.sub a 7 (String.length a - 7));
      go rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
      set_jobs (String.sub a 2 (String.length a - 2));
      go rest
    | a :: rest -> (
      match int_of_string_opt a with
      | Some p ->
        cli := { !cli with pos = !cli.pos @ [ p ] };
        go rest
      | None ->
        if !cli.mode <> "all" && !cli.mode <> a then usage ();
        cli := { !cli with mode = a };
        go rest)
  in
  go (List.tl (Array.to_list argv));
  !cli

let () =
  let cli = parse_cli Sys.argv in
  let jobs = cli.jobs in
  let cache =
    if cli.cache then Some (Exec.Cache.open_dir Exec.Cache.default_dir)
    else None
  in
  let pos i default =
    match List.nth_opt cli.pos i with Some v -> v | None -> default
  in
  match cli.mode with
  | "csv" -> Sweeps.Csv_export.all ?jobs ?cache ()
  | "failures" ->
    (* optional small-n override for CI smoke: `-- failures 48 12` *)
    Sweeps.Failure_sweep.all ~n:(pos 0 96) ~k:(pos 1 24) ~csv:"failures.csv"
      ?jobs ?cache ()
  | "chaos" ->
    (* optional small-n override for CI smoke: `-- chaos 32 6` *)
    Sweeps.Chaos_sweep.all ~n:(pos 0 48) ~k:(pos 1 8) ~csv:"chaos.csv" ?jobs
      ?cache ()
  | "perf" ->
    (* optional size cap for CI smoke: `-- perf 256`. Timings are never
       cached (the sweep ignores _cache/ by construction). *)
    ignore cache;
    Sweeps.Perf_sweep.all ?n_cap:(List.nth_opt cli.pos 0) ?jobs ()
  | "serve" ->
    (* optional request-count override for CI smoke: `-- serve 500`.
       Drives the daemon over its real socket; never cached. *)
    ignore cache;
    Sweeps.Serve_sweep.all ?requests:(List.nth_opt cli.pos 0) ()
  | "obs" ->
    (* optional size override: `-- obs 512`. Interleaved metrics-off vs
       metrics-on timing of the round engine; never cached, never
       parallel (it is a timing sweep). *)
    ignore cache;
    Sweeps.Obs_sweep.all ?n:(List.nth_opt cli.pos 0) ()
  | "recovery" ->
    (* optional kill-point count: `-- recovery 3`. Drives a real
       out-of-process daemon through SIGKILL/corruption/starvation;
       never cached. *)
    ignore cache;
    Sweeps.Recovery_sweep.all ?kills:(List.nth_opt cli.pos 0) ()
  | "tables" | "experiments" -> Sweeps.Experiments.all ?jobs ?cache ()
  | "micro" -> run_micro ()
  | "all" ->
    Sweeps.Experiments.all ?jobs ?cache ();
    run_micro ();
    Sweeps.Failure_sweep.all ?jobs ?cache ()
  | _ -> usage ()
