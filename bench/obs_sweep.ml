(* Observability overhead sweep (`bench/main.exe -- obs [n]`): proves
   the ISSUE budget that attaching `Obs` instruments to the CONGEST
   round engine costs < 5% rounds/sec (DESIGN.md §14 overhead budget).

   Method: the perf sweep's V-CONGEST broadcast workload is driven in
   interleaved trial pairs — metrics OFF, then the same net with a
   full obs attachment (counters + per-round spans) — so thermal drift
   and heap state bias neither arm. The median of each arm's
   rounds/sec is compared; interleaving plus medians is the standard
   defence against a single hot/cold outlier deciding the verdict.

   The sweep also cross-checks correctness while it is at it: after
   the ON arm, the `congest_messages_total` counter must equal the
   engine's own `Net.messages_sent` exactly (metrics are fed per-round
   deltas from the same telemetry the replay digests certify), and the
   ON/OFF run digests must be bit-identical — the out-of-band claim,
   measured rather than asserted.

   Timing sweep: never memoized, single-threaded, no Exec.Pool.

   BENCH_obs.json schema:
     { "sweep": "obs", "n", "m", "rounds", "trials",
       "off_rounds_per_sec", "on_rounds_per_sec",
       "overhead_pct", "target_pct": 5.0, "target_met": bool,
       "digest_match": bool, "counter_match": bool,
       "spans_recorded": int } *)

module Graph = Graphs.Graph
module Net = Congest.Net

let now () = Unix.gettimeofday ()
let target_pct = 5.0

(* Same broadcast driver as the perf sweep: preallocated messages, the
   per-round work outside the engine is O(n) stores. *)
let drive net ~rounds =
  let n = Net.n net in
  let msgs = Array.init n (fun u -> [| u land 63; 0; (u * 7) land 63 |]) in
  for r = 1 to rounds do
    let tag = r land 63 in
    for u = 0 to n - 1 do
      msgs.(u).(1) <- tag
    done;
    ignore (Net.broadcast_round net (fun u -> Some msgs.(u)))
  done

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let timed_run net ~rounds =
  Net.reset_stats net;
  let t0 = now () in
  drive net ~rounds;
  let dt = now () -. t0 in
  float_of_int rounds /. (if dt > 0. then dt else 1e-9)

let all ?(n = 1024) () =
  Format.printf "@.== observability overhead sweep (n=%d) ==@." n;
  let rng = Random.State.make [| 0xE5; n |] in
  let g = Graphs.Gen.erdos_renyi rng ~n ~p:(8.0 /. float_of_int n) in
  let m = Graph.m g in
  let rounds = max 16 (min 512 (400_000 / max 1 m)) in
  let trials = 7 in
  let net = Net.create Congest.Model.V_congest g in
  let metrics = Obs.Metrics.create () in
  let spans = Obs.Span.enabled () in
  let obs = Net.make_obs ~spans metrics in
  (* warmup both arms before any timing *)
  drive net ~rounds:(max 4 (rounds / 4));
  Net.attach_obs net obs;
  drive net ~rounds:(max 4 (rounds / 4));
  Net.detach_obs net;
  (* interleaved trial pairs: OFF then ON, [trials] times *)
  let off_rps = ref [] and on_rps = ref [] in
  let off_digest = ref 0 and on_digest = ref 0 in
  for _ = 1 to trials do
    Net.detach_obs net;
    off_rps := timed_run net ~rounds :: !off_rps;
    off_digest := Net.run_digest (Net.telemetry net);
    Net.attach_obs net obs;
    on_rps := timed_run net ~rounds :: !on_rps;
    on_digest := Net.run_digest (Net.telemetry net)
  done;
  (* correctness cross-check: one more instrumented run from a clean
     counter state — the counter delta must equal the engine's own
     cumulative message count exactly *)
  Net.attach_obs net obs;
  Net.reset_stats net;
  (* instrument lookup is idempotent: this is the same counter the
     attached obs feeds *)
  let c = Obs.Metrics.counter metrics "congest_messages_total" in
  let c0 = Obs.Metrics.counter_value c in
  drive net ~rounds;
  let messages_engine = Net.messages_sent net in
  let counter_delta = Obs.Metrics.counter_value c - c0 in
  let counter_match = counter_delta = messages_engine && messages_engine > 0 in
  let digest_match = !off_digest = !on_digest in
  let spans_recorded = Obs.Span.recorded spans in
  let off = median !off_rps and on_ = median !on_rps in
  let overhead_pct = (off -. on_) /. off *. 100. in
  let met = overhead_pct < target_pct in
  Format.printf
    "off %10.0f rounds/s  on %10.0f rounds/s  overhead %+.2f%% (target < \
     %.0f%%): %s@."
    off on_ overhead_pct target_pct
    (if met then "MET" else "MISSED");
  Format.printf "digest match: %b  counter vs engine: %d / %d  spans: %d@."
    digest_match counter_delta messages_engine spans_recorded;
  Exec.Artifact.write_json ~path:"BENCH_obs.json"
    (Exec.Artifact.Obj
       [
         ("sweep", Exec.Artifact.String "obs");
         ("n", Exec.Artifact.Int n);
         ("m", Exec.Artifact.Int m);
         ("rounds", Exec.Artifact.Int rounds);
         ("trials", Exec.Artifact.Int trials);
         ("off_rounds_per_sec", Exec.Artifact.Float off);
         ("on_rounds_per_sec", Exec.Artifact.Float on_);
         ("overhead_pct", Exec.Artifact.Float overhead_pct);
         ("target_pct", Exec.Artifact.Float target_pct);
         ("target_met", Exec.Artifact.Bool met);
         ("digest_match", Exec.Artifact.Bool digest_match);
         ("counter_match", Exec.Artifact.Bool counter_match);
         ("spans_recorded", Exec.Artifact.Int spans_recorded);
       ]);
  if not (digest_match && counter_match) then exit 1
