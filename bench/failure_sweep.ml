(* F1 — the robustness experiment behind Theorem 1.1's redundancy story:
   sweep the failure intensity and compare sustained gossip throughput
   of the CDS packing (reroutes around dead classes) against the
   single-BFS-tree baseline (collapses once its one tree is hit).

   Deterministic for a fixed seed: all randomness flows through
   explicitly seeded Random.State values. *)

module Graph = Graphs.Graph
module Faults = Congest.Faults

let header title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '-')

let run_pair ~seed ~per_node ~g ~packing specs =
  let run variant =
    let net = Congest.Net.create Congest.Model.V_congest g in
    let faults = Faults.create ~seed specs in
    let r =
      match variant with
      | `Packing -> Routing.Gossip.all_to_all_ft ~seed ~per_node net faults packing
      | `Naive -> Routing.Gossip.all_to_all_naive_ft ~per_node net faults
    in
    (r, faults)
  in
  (run `Packing, run `Naive)

let pp_row ?(emit = fun _ -> ()) label (r : Routing.Broadcast.ft_result)
    (faults : Faults.t) =
  Format.printf
    "%-24s | %7d %9.3f %9.3f | %5d %5d %5d | %9d %5b@." label r.ft_rounds
    r.ft_throughput r.ft_coverage r.ft_survivors r.ft_dead_trees
    (Faults.edges_killed faults)
    (Faults.drops faults) r.ft_converged;
  emit
    (Printf.sprintf "%s,%d,%.6f,%.6f,%d,%d,%d,%d,%b"
       (String.concat " " (String.split_on_char ' ' label |> List.filter (( <> ) "")))
       r.ft_rounds r.ft_throughput r.ft_coverage r.ft_survivors r.ft_dead_trees
       (Faults.edges_killed faults)
       (Faults.drops faults) r.ft_converged)

let sweep ?(n = 96) ?(k = 24) ?(seed = 7) ?(per_node = 1) ?csv () =
  Csv_export.with_artifact ?path:csv
    ~header:
      "scenario,rounds,msgs_per_round,coverage,survivors,dead_trees,edges_killed,drops,converged"
  @@ fun emit ->
  let pp_row label r faults = pp_row ~emit label r faults in
  header
    (Printf.sprintf
       "F1  gossip under faults: CDS packing vs single BFS tree (n=%d k=%d \
        seed=%d)"
       n k seed);
  let g = Graphs.Gen.harary ~k ~n in
  let res =
    Domtree.Cds_packing.run ~seed g ~classes:(max 1 (2 * k / 3)) ~layers:2
  in
  let packing = Domtree.Tree_extract.of_cds_packing res in
  Format.printf "packing: %d dominating trees over %d classes@."
    (Domtree.Packing.count packing) res.Domtree.Cds_packing.classes;
  Format.printf "%-24s | %7s %9s %9s | %5s %5s %5s | %9s %5s@." "scenario"
    "rounds" "msgs/rnd" "coverage" "alive" "deadT" "killE" "drops" "conv";
  (* 1. Bernoulli message-drop sweep *)
  List.iter
    (fun p ->
      let (rp, fp), (rn, fn) =
        run_pair ~seed ~per_node ~g ~packing
          (if p = 0. then [] else [ Faults.Drop_bernoulli p ])
      in
      pp_row (Printf.sprintf "packing  p=%.2f" p) rp fp;
      pp_row (Printf.sprintf "1-tree   p=%.2f" p) rn fn)
    [ 0.; 0.01; 0.03; 0.05; 0.10 ];
  (* 2. fail-stop crashes: hit nodes early, with light drops on top.
     Node 1 is an internal BFS-tree node on virtually every graph, so
     the baseline's single tree is severed. *)
  let crash_specs =
    [ Faults.Crash_at [ (5, 1); (9, n / 2) ]; Faults.Drop_bernoulli 0.02 ]
  in
  let (rp, fp), (rn, fn) = run_pair ~seed ~per_node ~g ~packing crash_specs in
  pp_row "packing  2 crashes" rp fp;
  pp_row "1-tree   2 crashes" rn fn;
  (* 3. adaptive edge killer under budget *)
  let kill_specs =
    [ Faults.Greedy_edge_kill { budget = k / 2; period = 4; from_round = 6 } ]
  in
  let (rp2, fp2), (rn2, fn2) = run_pair ~seed ~per_node ~g ~packing kill_specs in
  pp_row (Printf.sprintf "packing  %d edge kills" (k / 2)) rp2 fp2;
  pp_row (Printf.sprintf "1-tree   %d edge kills" (k / 2)) rn2 fn2;
  Format.printf
    "(shape: packing throughput degrades smoothly with p and survives \
     crashes/kills;@. the single tree collapses — coverage < 1, throughput \
     ~0 — once an internal@. node or tree edge is hit)@.";
  (* 4. verify-and-retry pipeline cost *)
  header "F2  verify-and-retry decomposition pipeline (Lemma E.1 guard)";
  Format.printf "%6s %7s | %8s %8s %8s@." "n" "flaky" "attempts" "verified"
    "rounds";
  List.iter
    (fun (n, classes, layers) ->
      let g = Graphs.Gen.harary ~k:8 ~n in
      let net = Congest.Net.create Congest.Model.V_congest g in
      let r =
        Domtree.Reliable.run_verified_distributed ~seed net ~classes ~layers
      in
      Format.printf "%6d %7s | %8d %8b %8d@." n
        (if layers <= 2 then "yes" else "no")
        (List.length r.Domtree.Reliable.attempts)
        r.Domtree.Reliable.verified r.Domtree.Reliable.rounds_charged)
    [ (32, 5, 8); (48, 5, 8); (64, 6, 10); (48, 10, 2) ];
  Format.printf "(valid decompositions verify on the first attempt; the \
                 tester's rounds and any@. backoff are charged to the CONGEST \
                 clock)@."

let all ?n ?k ?seed ?csv () = sweep ?n ?k ?seed ?csv ()
