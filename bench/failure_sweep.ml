(* F1 — the robustness experiment behind Theorem 1.1's redundancy story:
   sweep the failure intensity and compare sustained gossip throughput
   of the CDS packing (reroutes around dead classes) against the
   single-BFS-tree baseline (collapses once its one tree is hit).

   Deterministic for a fixed seed: all randomness flows through
   explicitly seeded Random.State values. Each scenario is one Exec.Job
   (both variants of the pair run inside the same cell so their table
   lines stay adjacent); the packing is built once in the parent and
   captured immutably by the closures — the job key still content-
   addresses it, because the packing is a deterministic function of
   (n, k, seed), which the key includes. *)

module Graph = Graphs.Graph
module Faults = Congest.Faults

let run_pair ~seed ~per_node ~g ~packing specs =
  let run variant =
    let net = Congest.Net.create Congest.Model.V_congest g in
    let faults = Faults.create ~seed specs in
    let r =
      match variant with
      | `Packing ->
        Routing.Gossip.all_to_all_ft ~seed ~per_node net faults packing
      | `Naive -> Routing.Gossip.all_to_all_naive_ft ~per_node net faults
    in
    (r, faults)
  in
  (run `Packing, run `Naive)

let pp_row ppf ~emit label (r : Routing.Broadcast.ft_result)
    (faults : Faults.t) =
  Format.fprintf ppf "%-24s | %7d %9.3f %9.3f | %5d %5d %5d | %9d %5b@." label
    r.ft_rounds r.ft_throughput r.ft_coverage r.ft_survivors r.ft_dead_trees
    (Faults.edges_killed faults)
    (Faults.drops faults) r.ft_converged;
  emit
    (Printf.sprintf "%s,%d,%.6f,%.6f,%d,%d,%d,%d,%b"
       (String.concat " "
          (String.split_on_char ' ' label |> List.filter (( <> ) "")))
       r.ft_rounds r.ft_throughput r.ft_coverage r.ft_survivors r.ft_dead_trees
       (Faults.edges_killed faults)
       (Faults.drops faults) r.ft_converged)

let csv_header =
  "scenario,rounds,msgs_per_round,coverage,survivors,dead_trees,edges_killed,drops,converged"

(* One F1 cell: run the pair, return its two table lines + two CSV rows. *)
let pair_job ~algo ~params ~seed ~per_node ~g ~packing ~labels specs =
  Exec.Sweep.Job
    (Exec.Job.make ~algo ~params ~seed (fun () ->
         let b = Buffer.create 256 in
         let ppf = Format.formatter_of_buffer b in
         let rows = ref [] in
         let emit r = rows := r :: !rows in
         let (rp, fp), (rn, fn) = run_pair ~seed ~per_node ~g ~packing specs in
         let lp, ln = labels in
         pp_row ppf ~emit lp rp fp;
         pp_row ppf ~emit ln rn fn;
         Format.pp_print_flush ppf ();
         Exec.Job.payload ~rows:(List.rev !rows) (Buffer.contents b)))

let items ?(n = 96) ?(k = 24) ?(seed = 7) ?(per_node = 1) () =
  let text = Exec.Sweep.text in
  let header title =
    text "@.%s@.%s@." title (String.make (String.length title) '-')
  in
  let g = Graphs.Gen.harary ~k ~n in
  let res =
    Domtree.Cds_packing.run ~seed g ~classes:(max 1 (2 * k / 3)) ~layers:2
  in
  let packing = Domtree.Tree_extract.of_cds_packing res in
  let base = [ ("n", string_of_int n); ("k", string_of_int k) ] in
  header
    (Printf.sprintf
       "F1  gossip under faults: CDS packing vs single BFS tree (n=%d k=%d \
        seed=%d)"
       n k seed)
  :: text "packing: %d dominating trees over %d classes@."
       (Domtree.Packing.count packing)
       res.Domtree.Cds_packing.classes
  :: text "%-24s | %7s %9s %9s | %5s %5s %5s | %9s %5s@." "scenario" "rounds"
       "msgs/rnd" "coverage" "alive" "deadT" "killE" "drops" "conv"
  :: (* 1. Bernoulli message-drop sweep *)
     List.map
       (fun p ->
         pair_job ~algo:"f1-drop"
           ~params:(("p", Printf.sprintf "%.2f" p) :: base)
           ~seed ~per_node ~g ~packing
           ~labels:
             ( Printf.sprintf "packing  p=%.2f" p,
               Printf.sprintf "1-tree   p=%.2f" p )
           (if p = 0. then [] else [ Faults.Drop_bernoulli p ]))
       [ 0.; 0.01; 0.03; 0.05; 0.10 ]
  @ [
      (* 2. fail-stop crashes: hit nodes early, with light drops on top.
         Node 1 is an internal BFS-tree node on virtually every graph,
         so the baseline's single tree is severed. *)
      pair_job ~algo:"f1-crash" ~params:base ~seed ~per_node ~g ~packing
        ~labels:("packing  2 crashes", "1-tree   2 crashes")
        [ Faults.Crash_at [ (5, 1); (9, n / 2) ]; Faults.Drop_bernoulli 0.02 ];
      (* 3. adaptive edge killer under budget *)
      pair_job ~algo:"f1-kill" ~params:base ~seed ~per_node ~g ~packing
        ~labels:
          ( Printf.sprintf "packing  %d edge kills" (k / 2),
            Printf.sprintf "1-tree   %d edge kills" (k / 2) )
        [ Faults.Greedy_edge_kill { budget = k / 2; period = 4; from_round = 6 } ];
      text
        "(shape: packing throughput degrades smoothly with p and survives \
         crashes/kills;@. the single tree collapses — coverage < 1, \
         throughput ~0 — once an internal@. node or tree edge is hit)@.";
      (* 4. verify-and-retry pipeline cost *)
      header "F2  verify-and-retry decomposition pipeline (Lemma E.1 guard)";
      text "%6s %7s | %8s %8s %8s@." "n" "flaky" "attempts" "verified" "rounds";
    ]
  @ List.map
      (fun (n, classes, layers) ->
        Exec.Sweep.Job
          (Exec.Job.make ~algo:"f2"
             ~params:
               [
                 ("n", string_of_int n);
                 ("classes", string_of_int classes);
                 ("layers", string_of_int layers);
               ]
             ~seed
             (fun () ->
               let g = Graphs.Gen.harary ~k:8 ~n in
               let net = Congest.Net.create Congest.Model.V_congest g in
               let r =
                 Domtree.Reliable.run_verified_distributed ~seed net ~classes
                   ~layers
               in
               Exec.Job.payload
                 (Format.asprintf "%6d %7s | %8d %8b %8d@." n
                    (if layers <= 2 then "yes" else "no")
                    (List.length r.Domtree.Reliable.attempts)
                    r.Domtree.Reliable.verified
                    r.Domtree.Reliable.rounds_charged))))
      [ (32, 5, 8); (48, 5, 8); (64, 6, 10); (48, 10, 2) ]
  @ [
      text
        "(valid decompositions verify on the first attempt; the tester's \
         rounds and any@. backoff are charged to the CONGEST clock)@.";
    ]

let all ?n ?k ?seed ?csv ?jobs ?cache () =
  let stats, _ =
    Exec.Sweep.run ~name:"failures" ?jobs ?cache ?csv ~csv_header
      ~bench_json:"BENCH_failures.json"
      (items ?n ?k ?seed ())
  in
  if stats.Exec.Sweep.failed > 0 then
    failwith
      (Printf.sprintf "failure sweep: %d cell(s) failed"
         stats.Exec.Sweep.failed)
