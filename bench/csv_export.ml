(* Machine-readable export of the headline experiment series, for
   external plotting:

     dune exec bench/main.exe -- csv > results.csv

   Format: experiment,x,series,value — one row per measured point. *)

let row exp x series value =
  Printf.printf "%s,%s,%s,%.6f\n" exp x series value

(* File sink for the sweeps: [with_artifact ~path ~header f] hands [f]
   an [emit] function that appends one CSV line per call; with no path,
   emit is a no-op and the sweep only prints its tables. The file is
   closed (and announced) even if [f] raises. *)
let with_artifact ?path ~header f =
  match path with
  | None -> f (fun _ -> ())
  | Some path ->
    let oc = open_out path in
    output_string oc header;
    output_char oc '\n';
    Fun.protect
      ~finally:(fun () ->
        close_out oc;
        Format.printf "csv artifact: %s@." path)
      (fun () ->
        f (fun line ->
            output_string oc line;
            output_char oc '\n'))

let lg n = log (float_of_int (max 2 n)) /. log 2.

(* E1: packing size vs k *)
let e1 () =
  List.iter
    (fun (n, k) ->
      let g = Graphs.Gen.harary ~k ~n in
      let res =
        Domtree.Cds_packing.run ~seed:1 g ~classes:(2 * k / 3) ~layers:2
      in
      let p = Domtree.Tree_extract.of_cds_packing res in
      row "E1" (string_of_int k) "size" (Domtree.Packing.size p);
      row "E1" (string_of_int k) "k_over_lg_n" (float_of_int k /. lg n))
    [ (48, 12); (64, 16); (96, 24); (128, 32); (192, 48); (256, 64) ]

(* E2: distributed packing rounds vs n *)
let e2 () =
  List.iter
    (fun n ->
      let g = Graphs.Gen.harary ~k:8 ~n in
      let d = Graphs.Traversal.diameter g in
      let net = Congest.Net.create Congest.Model.V_congest g in
      let _ = Domtree.Dist_packing.pack ~seed:2 net ~k:8 in
      row "E2" (string_of_int n) "rounds"
        (float_of_int (Congest.Net.rounds net));
      row "E2" (string_of_int n) "budget"
        ((float_of_int d +. sqrt (float_of_int n)) *. (lg n ** 3.)))
    [ 32; 64; 128; 256 ]

(* E3: spanning packing size ratio vs lambda *)
let e3 () =
  List.iter
    (fun (n, lambda) ->
      let g = Graphs.Gen.harary ~k:lambda ~n in
      let r = Spantree.Lagrangian.run g ~lambda in
      let target = float_of_int (Spantree.Lagrangian.target ~lambda) in
      row "E3" (string_of_int lambda) "size_ratio"
        (Spantree.Spacking.size r.Spantree.Lagrangian.packing /. target))
    [ (48, 4); (48, 8); (64, 16); (64, 32) ]

(* E5: throughput vs k, decomposition vs baseline *)
let e5 () =
  List.iter
    (fun k ->
      let n = 2 * k in
      let g = Graphs.Gen.harary ~k ~n in
      let res =
        Domtree.Cds_packing.run ~seed:4 g ~classes:(2 * k / 3) ~layers:2
      in
      let p = Domtree.Tree_extract.of_cds_packing res in
      let sources = List.init n (fun v -> (v, 4)) in
      let net = Congest.Net.create Congest.Model.V_congest g in
      let r = Routing.Broadcast.via_dominating_trees ~seed:4 net p ~sources in
      let net2 = Congest.Net.create Congest.Model.V_congest g in
      let naive = Routing.Broadcast.naive_single_tree net2 ~sources in
      row "E5" (string_of_int k) "trees" r.Routing.Broadcast.throughput;
      row "E5" (string_of_int k) "naive" naive.Routing.Broadcast.throughput)
    [ 16; 24; 32; 48 ]

(* E7: runtimes vs n *)
let e7 () =
  List.iter
    (fun n ->
      let g = Graphs.Gen.harary ~k:8 ~n in
      let t0 = Sys.time () in
      let _ = Graphs.Connectivity.vertex_connectivity g in
      row "E7" (string_of_int n) "exact_s" (Sys.time () -. t0);
      let t1 = Sys.time () in
      let _ = Domtree.Vc_approx.centralized ~seed:6 g in
      row "E7" (string_of_int n) "approx_s" (Sys.time () -. t1))
    [ 64; 128; 256 ]

(* E15: coding vs trees throughput vs N *)
let e15 () =
  let k = 16 and n = 32 in
  let g = Graphs.Gen.harary ~k ~n in
  let res = Domtree.Cds_packing.run ~seed:15 g ~classes:(2 * k / 3) ~layers:2 in
  let p = Domtree.Tree_extract.of_cds_packing res in
  List.iter
    (fun total ->
      let per = max 1 (total / n) in
      let sources = List.init n (fun v -> (v, per)) in
      let netc = Congest.Net.create Congest.Model.V_congest g in
      let rl =
        Routing.Coding.rlnc_broadcast ~seed:15 ~coeff_words_per_round:2 netc
          ~sources
      in
      let nett = Congest.Net.create Congest.Model.V_congest g in
      let tr = Routing.Broadcast.via_dominating_trees ~seed:15 nett p ~sources in
      row "E15" (string_of_int total) "rlnc" rl.Routing.Coding.throughput;
      row "E15" (string_of_int total) "trees" tr.Routing.Broadcast.throughput)
    [ 32; 64; 128; 256 ]

let all () =
  print_endline "experiment,x,series,value";
  e1 ();
  e2 ();
  e3 ();
  e5 ();
  e7 ();
  e15 ()
