(* Machine-readable export of the headline experiment series, for
   external plotting:

     dune exec bench/main.exe -- csv > results.csv

   Format: experiment,x,series,value — one row per measured point.

   Each series is a grid of Exec.Job cells (one job per x-point), so the
   export shards across domains and memoizes like every other sweep;
   Exec.Sweep prints the payloads in item order, which keeps the stdout
   stream byte-identical to the sequential version. File-sink artifact
   writing lives in Exec.Artifact (atomic tmp-file rename) — the old
   [with_artifact] streaming sink is gone. *)

let buf f =
  let b = Buffer.create 256 in
  f (fun exp x series value ->
      Buffer.add_string b (Printf.sprintf "%s,%s,%s,%.6f\n" exp x series value));
  Buffer.contents b

let job ~algo ?params ?seed f =
  Exec.Sweep.Job
    (Exec.Job.make ~algo ?params ?seed (fun () -> Exec.Job.payload (buf f)))

let i2s = string_of_int
let lg n = log (float_of_int (max 2 n)) /. log 2.

(* E1: packing size vs k *)
let e1 () =
  List.map
    (fun (n, k) ->
      job ~algo:"csv-e1" ~params:[ ("n", i2s n); ("k", i2s k) ] ~seed:1
        (fun row ->
          let g = Graphs.Gen.harary ~k ~n in
          let res =
            Domtree.Cds_packing.run ~seed:1 g ~classes:(2 * k / 3) ~layers:2
          in
          let p = Domtree.Tree_extract.of_cds_packing res in
          row "E1" (i2s k) "size" (Domtree.Packing.size p);
          row "E1" (i2s k) "k_over_lg_n" (float_of_int k /. lg n)))
    [ (48, 12); (64, 16); (96, 24); (128, 32); (192, 48); (256, 64) ]

(* E2: distributed packing rounds vs n *)
let e2 () =
  List.map
    (fun n ->
      job ~algo:"csv-e2" ~params:[ ("n", i2s n) ] ~seed:2 (fun row ->
          let g = Graphs.Gen.harary ~k:8 ~n in
          let d = Graphs.Traversal.diameter g in
          let net = Congest.Net.create Congest.Model.V_congest g in
          let _ = Domtree.Dist_packing.pack ~seed:2 net ~k:8 in
          row "E2" (i2s n) "rounds" (float_of_int (Congest.Net.rounds net));
          row "E2" (i2s n) "budget"
            ((float_of_int d +. sqrt (float_of_int n)) *. (lg n ** 3.))))
    [ 32; 64; 128; 256 ]

(* E3: spanning packing size ratio vs lambda *)
let e3 () =
  List.map
    (fun (n, lambda) ->
      job ~algo:"csv-e3"
        ~params:[ ("n", i2s n); ("lambda", i2s lambda) ]
        (fun row ->
          let g = Graphs.Gen.harary ~k:lambda ~n in
          let r = Spantree.Lagrangian.run g ~lambda in
          let target = float_of_int (Spantree.Lagrangian.target ~lambda) in
          row "E3" (i2s lambda) "size_ratio"
            (Spantree.Spacking.size r.Spantree.Lagrangian.packing /. target)))
    [ (48, 4); (48, 8); (64, 16); (64, 32) ]

(* E5: throughput vs k, decomposition vs baseline *)
let e5 () =
  List.map
    (fun k ->
      job ~algo:"csv-e5" ~params:[ ("k", i2s k) ] ~seed:4 (fun row ->
          let n = 2 * k in
          let g = Graphs.Gen.harary ~k ~n in
          let res =
            Domtree.Cds_packing.run ~seed:4 g ~classes:(2 * k / 3) ~layers:2
          in
          let p = Domtree.Tree_extract.of_cds_packing res in
          let sources = List.init n (fun v -> (v, 4)) in
          let net = Congest.Net.create Congest.Model.V_congest g in
          let r =
            Routing.Broadcast.via_dominating_trees ~seed:4 net p ~sources
          in
          let net2 = Congest.Net.create Congest.Model.V_congest g in
          let naive = Routing.Broadcast.naive_single_tree net2 ~sources in
          row "E5" (i2s k) "trees" r.Routing.Broadcast.throughput;
          row "E5" (i2s k) "naive" naive.Routing.Broadcast.throughput))
    [ 16; 24; 32; 48 ]

(* E7: runtimes vs n *)
let e7 () =
  List.map
    (fun n ->
      job ~algo:"csv-e7" ~params:[ ("n", i2s n) ] ~seed:6 (fun row ->
          let g = Graphs.Gen.harary ~k:8 ~n in
          let t0 = Sys.time () in
          let _ = Graphs.Connectivity.vertex_connectivity g in
          row "E7" (i2s n) "exact_s" (Sys.time () -. t0);
          let t1 = Sys.time () in
          let _ = Domtree.Vc_approx.centralized ~seed:6 g in
          row "E7" (i2s n) "approx_s" (Sys.time () -. t1)))
    [ 64; 128; 256 ]

(* E15: coding vs trees throughput vs N *)
let e15 () =
  List.map
    (fun total ->
      job ~algo:"csv-e15" ~params:[ ("N", i2s total) ] ~seed:15 (fun row ->
          let k = 16 and n = 32 in
          let g = Graphs.Gen.harary ~k ~n in
          let res =
            Domtree.Cds_packing.run ~seed:15 g ~classes:(2 * k / 3) ~layers:2
          in
          let p = Domtree.Tree_extract.of_cds_packing res in
          let per = max 1 (total / n) in
          let sources = List.init n (fun v -> (v, per)) in
          let netc = Congest.Net.create Congest.Model.V_congest g in
          let rl =
            Routing.Coding.rlnc_broadcast ~seed:15 ~coeff_words_per_round:2
              netc ~sources
          in
          let nett = Congest.Net.create Congest.Model.V_congest g in
          let tr =
            Routing.Broadcast.via_dominating_trees ~seed:15 nett p ~sources
          in
          row "E15" (i2s total) "rlnc" rl.Routing.Coding.throughput;
          row "E15" (i2s total) "trees" tr.Routing.Broadcast.throughput))
    [ 32; 64; 128; 256 ]

let items () =
  Exec.Sweep.text "experiment,x,series,value@."
  :: List.concat [ e1 (); e2 (); e3 (); e5 (); e7 (); e15 () ]

let all ?jobs ?cache () =
  let stats, _ =
    Exec.Sweep.run ~name:"csv" ?jobs ?cache ~progress:false
      ~bench_json:"BENCH_csv.json" (items ())
  in
  if stats.Exec.Sweep.failed > 0 then
    failwith
      (Printf.sprintf "csv export: %d cell(s) failed" stats.Exec.Sweep.failed)
