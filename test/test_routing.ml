(* Tests for the information-dissemination applications: tree-parallel
   broadcast, gossiping, oblivious-routing congestion. *)

open Graphs

let vnet g = Congest.Net.create Congest.Model.V_congest g
let enet g = Congest.Net.create Congest.Model.E_congest g

let dom_packing ?(seed = 1) g ~k =
  Domtree.Tree_extract.of_cds_packing (Domtree.Cds_packing.pack ~seed g ~k)

(* a high-rate packing: many classes, few layers (the k >> log n regime
   where the k/log n throughput shows) *)
let fast_packing ?(seed = 1) g ~classes =
  Domtree.Tree_extract.of_cds_packing
    (Domtree.Cds_packing.run ~seed g ~classes ~layers:2)

let span_packing ?(seed = 1) g ~lambda =
  (Spantree.Sampling_pack.run ~seed g ~lambda).Spantree.Sampling_pack.packing

(* ------------------------------------------------------------------ *)

let test_broadcast_delivers () =
  let g = Gen.harary ~k:8 ~n:40 in
  let p = dom_packing g ~k:8 in
  let net = vnet g in
  let r =
    Routing.Broadcast.via_dominating_trees net p ~sources:[ (0, 5); (17, 3) ]
  in
  Alcotest.(check int) "all messages counted" 8 r.Routing.Broadcast.messages;
  Alcotest.(check bool) "positive throughput" true
    (r.Routing.Broadcast.throughput > 0.)

let test_broadcast_beats_naive () =
  (* strong-connectivity regime: k = 30 on n = 60; messages ~ 4k *)
  let g = Gen.harary ~k:30 ~n:60 in
  let p = fast_packing g ~classes:24 in
  Alcotest.(check bool) "packing has many trees" true
    (Domtree.Packing.count p >= 16);
  let sources = List.init 60 (fun v -> (v, 2)) in
  let net = vnet g in
  let r = Routing.Broadcast.via_dominating_trees net p ~sources in
  let net2 = vnet g in
  let naive = Routing.Broadcast.naive_single_tree net2 ~sources in
  Alcotest.(check bool)
    (Printf.sprintf "tree-parallel %.2f > 1.5x naive %.2f"
       r.Routing.Broadcast.throughput naive.Routing.Broadcast.throughput)
    true
    (r.Routing.Broadcast.throughput
    > 1.5 *. naive.Routing.Broadcast.throughput);
  Alcotest.(check bool) "naive is ~1 msg/round" true
    (naive.Routing.Broadcast.throughput <= 1.05)

let test_spanning_broadcast_delivers () =
  let g = Gen.harary ~k:8 ~n:32 in
  let p = span_packing g ~lambda:8 in
  let net = enet g in
  let r =
    Routing.Broadcast.via_spanning_trees net p ~sources:[ (0, 40) ]
  in
  Alcotest.(check int) "messages" 40 r.Routing.Broadcast.messages;
  Alcotest.(check bool) "throughput > 1 (beats one tree)" true
    (r.Routing.Broadcast.throughput > 1.)

let test_gossip_bound_shape () =
  let g = Gen.harary ~k:24 ~n:48 in
  let p = fast_packing g ~classes:8 in
  let net = vnet g in
  let rep = Routing.Gossip.all_to_all net p ~k:24 in
  (* rounds within a polylog factor of the Corollary A.1 reference *)
  let rounds = float_of_int rep.Routing.Gossip.result.Routing.Broadcast.rounds in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %.0f <= 20x bound %.1f" rounds
       rep.Routing.Gossip.bound)
    true
    (rounds <= 20. *. rep.Routing.Gossip.bound)

let test_oblivious_vertex_competitiveness () =
  let g = Gen.harary ~k:24 ~n:48 in
  let p = fast_packing g ~classes:8 in
  let net = vnet g in
  let sources = List.init 48 (fun v -> (v, 2)) in
  let rep =
    Routing.Oblivious.vertex_competitiveness net p ~k:24 ~sources
  in
  let lg = log (float_of_int 48) /. log 2. in
  Alcotest.(check bool)
    (Printf.sprintf "vertex competitiveness %.2f = O(log n)"
       rep.Routing.Oblivious.competitiveness)
    true
    (rep.Routing.Oblivious.competitiveness <= 8. *. lg)

let test_oblivious_edge_competitiveness () =
  let g = Gen.harary ~k:8 ~n:32 in
  let p = span_packing g ~lambda:8 in
  let net = enet g in
  let rep =
    Routing.Oblivious.edge_competitiveness net p ~lambda:8
      ~sources:[ (0, 40); (16, 40) ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "edge competitiveness %.2f = O(1)-ish"
       rep.Routing.Oblivious.competitiveness)
    true
    (rep.Routing.Oblivious.competitiveness <= 16.)

let test_weighted_schedule_delivers () =
  let g = Gen.harary ~k:12 ~n:36 in
  let p = dom_packing g ~k:12 in
  let net = vnet g in
  let r =
    Routing.Broadcast.via_dominating_trees ~schedule:`Weighted net p
      ~sources:[ (0, 6); (9, 6) ]
  in
  Alcotest.(check int) "all delivered" 12 r.Routing.Broadcast.messages

let test_scattered_gossip () =
  let g = Gen.harary ~k:24 ~n:48 in
  let p = fast_packing g ~classes:8 in
  let net = vnet g in
  let rep = Routing.Gossip.scattered net p ~k:24 ~total:60 ~max_per_node:3 in
  Alcotest.(check int) "all messages" 60
    rep.Routing.Gossip.result.Routing.Broadcast.messages;
  Alcotest.(check bool) "bound sane" true (rep.Routing.Gossip.bound > 0.);
  (* rounds within a generous polylog factor of the A.1 reference *)
  Alcotest.(check bool) "rounds near bound" true
    (float_of_int rep.Routing.Gossip.result.Routing.Broadcast.rounds
    <= 20. *. rep.Routing.Gossip.bound)

let test_empty_packing_rejected () =
  let g = Gen.path 4 in
  let p = { Domtree.Packing.graph = g; trees = []; weights = [] } in
  let net = vnet g in
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Broadcast.via_dominating_trees: empty packing")
    (fun () ->
      ignore
        (Routing.Broadcast.via_dominating_trees net p ~sources:[ (0, 1) ]))

let test_rlnc_decodes () =
  let g = Gen.harary ~k:8 ~n:16 in
  let net = vnet g in
  let r =
    Routing.Coding.rlnc_broadcast ~seed:3 net ~sources:[ (0, 10); (7, 6) ]
  in
  Alcotest.(check bool) "decoded everywhere" true r.Routing.Coding.decoded_all;
  Alcotest.(check int) "message count" 16 r.Routing.Coding.messages;
  Alcotest.(check bool) "rounds > 0" true (r.Routing.Coding.rounds > 0)

let test_rlnc_overhead_grows () =
  (* chunking: more messages -> more rounds per packet -> decaying
     throughput per message *)
  let g = Gen.harary ~k:8 ~n:16 in
  let run total =
    let net = vnet g in
    let sources = List.init 16 (fun v -> (v, total / 16)) in
    (Routing.Coding.rlnc_broadcast ~seed:4 ~coeff_words_per_round:1 net
       ~sources)
      .Routing.Coding.throughput
  in
  let t32 = run 32 and t128 = run 128 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput decays: %.2f (N=32) > %.2f (N=128)" t32 t128)
    true (t32 > t128)

let prop_rlnc_always_decodes =
  QCheck.Test.make ~name:"RLNC reaches full rank on connected graphs"
    ~count:8
    QCheck.(pair (int_range 2 4) (int_range 1 3))
    (fun (k2, per) ->
      let k = 2 * k2 in
      let g = Gen.harary ~k ~n:(4 * k) in
      let net = vnet g in
      let sources = List.init (4 * k) (fun v -> (v, per)) in
      let r = Routing.Coding.rlnc_broadcast ~seed:(k + per) net ~sources in
      r.Routing.Coding.decoded_all)

let test_coefficient_words () =
  Alcotest.(check int) "one limb" 1
    (Routing.Coding.coefficient_words ~n:100 ~messages:16);
  Alcotest.(check int) "two limbs" 2
    (Routing.Coding.coefficient_words ~n:100 ~messages:17)

(* ------------------------------------------------------------------ *)
(* Fault-tolerant gossip *)

module F = Congest.Faults

let test_ft_gossip_null_faults () =
  (* the fault-tolerant path with a null adversary: full coverage,
     convergence, no dead trees *)
  let g = Gen.harary ~k:12 ~n:36 in
  let p = fast_packing g ~classes:8 in
  let net = vnet g in
  let faults = F.none () in
  let r = Routing.Gossip.all_to_all_ft ~seed:5 net faults p in
  Alcotest.(check bool) "converged" true r.Routing.Broadcast.ft_converged;
  Alcotest.(check (float 1e-9)) "full coverage" 1.
    r.Routing.Broadcast.ft_coverage;
  Alcotest.(check int) "all delivered" 36 r.Routing.Broadcast.ft_delivered;
  Alcotest.(check int) "no dead trees" 0 r.Routing.Broadcast.ft_dead_trees;
  Alcotest.(check int) "everyone survives" 36 r.Routing.Broadcast.ft_survivors

let test_ft_gossip_recovers_from_drops () =
  (* p = 0.05 message drops: the repair tick refills the holes and the
     run still converges with full coverage *)
  let g = Gen.harary ~k:12 ~n:36 in
  let p = fast_packing g ~classes:8 in
  let net = vnet g in
  let faults = F.create ~seed:9 [ F.Drop_bernoulli 0.05 ] in
  let r = Routing.Gossip.all_to_all_ft ~seed:5 net faults p in
  Alcotest.(check bool) "converged despite drops" true
    r.Routing.Broadcast.ft_converged;
  Alcotest.(check (float 1e-9)) "full coverage" 1.
    r.Routing.Broadcast.ft_coverage;
  Alcotest.(check bool) "drops actually happened" true (F.drops faults > 0)

let test_ft_gossip_beats_naive_under_crashes () =
  (* crash two nodes early: the packing reroutes around dead classes,
     the single BFS tree is severed and cannot recover *)
  let g = Gen.harary ~k:12 ~n:36 in
  let p = fast_packing g ~classes:8 in
  let specs = [ F.Crash_at [ (4, 1); (7, 18) ] ] in
  let net = vnet g in
  let faults = F.create ~seed:3 specs in
  let r = Routing.Gossip.all_to_all_ft ~seed:5 net faults p in
  let net2 = vnet g in
  let faults2 = F.create ~seed:3 specs in
  let rn = Routing.Gossip.all_to_all_naive_ft net2 faults2 in
  Alcotest.(check int) "34 survivors" 34 r.Routing.Broadcast.ft_survivors;
  Alcotest.(check bool)
    (Printf.sprintf "packing coverage %.3f >= naive coverage %.3f"
       r.Routing.Broadcast.ft_coverage rn.Routing.Broadcast.ft_coverage)
    true
    (r.Routing.Broadcast.ft_coverage >= rn.Routing.Broadcast.ft_coverage);
  Alcotest.(check bool)
    (Printf.sprintf "packing throughput %.3f > naive %.3f"
       r.Routing.Broadcast.ft_throughput rn.Routing.Broadcast.ft_throughput)
    true
    (r.Routing.Broadcast.ft_throughput > rn.Routing.Broadcast.ft_throughput)

let test_ft_gossip_deterministic () =
  let run () =
    let g = Gen.harary ~k:12 ~n:36 in
    let p = fast_packing g ~classes:8 in
    let net = vnet g in
    let faults = F.create ~seed:9 [ F.Drop_bernoulli 0.08 ] in
    let r = Routing.Gossip.all_to_all_ft ~seed:5 net faults p in
    ( r.Routing.Broadcast.ft_rounds,
      r.Routing.Broadcast.ft_delivered,
      Congest.Net.messages_sent net,
      F.drops faults )
  in
  Alcotest.(check bool) "fixed seed, identical run" true (run () = run ())

let prop_broadcast_always_delivers =
  QCheck.Test.make ~name:"tree-parallel broadcast always delivers everything"
    ~count:8
    QCheck.(pair (int_range 3 6) (int_range 1 5))
    (fun (k2, msgs) ->
      let k = 2 * k2 in
      let g = Gen.harary ~k ~n:(6 * k) in
      let p = dom_packing g ~k in
      let net = vnet g in
      let r =
        Routing.Broadcast.via_dominating_trees net p
          ~sources:[ (0, msgs); (1, msgs) ]
      in
      r.Routing.Broadcast.messages = 2 * msgs)

let () =
  Alcotest.run "routing"
    [
      ( "broadcast",
        [
          Alcotest.test_case "delivers" `Quick test_broadcast_delivers;
          Alcotest.test_case "beats naive" `Quick test_broadcast_beats_naive;
          Alcotest.test_case "spanning delivers" `Quick
            test_spanning_broadcast_delivers;
          Alcotest.test_case "weighted schedule" `Quick
            test_weighted_schedule_delivers;
          Alcotest.test_case "empty packing" `Quick test_empty_packing_rejected;
        ] );
      ( "broadcast.props",
        List.map QCheck_alcotest.to_alcotest [ prop_broadcast_always_delivers ]
      );
      ( "gossip",
        [
          Alcotest.test_case "bound shape" `Quick test_gossip_bound_shape;
          Alcotest.test_case "scattered (Cor A.1)" `Quick test_scattered_gossip;
        ] );
      ( "gossip.faults",
        [
          Alcotest.test_case "null adversary" `Quick test_ft_gossip_null_faults;
          Alcotest.test_case "recovers from drops" `Quick
            test_ft_gossip_recovers_from_drops;
          Alcotest.test_case "beats naive under crashes" `Quick
            test_ft_gossip_beats_naive_under_crashes;
          Alcotest.test_case "deterministic" `Quick test_ft_gossip_deterministic;
        ] );
      ( "coding",
        [
          Alcotest.test_case "rlnc decodes" `Quick test_rlnc_decodes;
          Alcotest.test_case "overhead grows" `Quick test_rlnc_overhead_grows;
          Alcotest.test_case "coefficient words" `Quick test_coefficient_words;
        ] );
      ( "coding.props",
        List.map QCheck_alcotest.to_alcotest [ prop_rlnc_always_decodes ] );
      ( "oblivious",
        [
          Alcotest.test_case "vertex competitiveness" `Quick
            test_oblivious_vertex_competitiveness;
          Alcotest.test_case "edge competitiveness" `Quick
            test_oblivious_edge_competitiveness;
        ] );
    ]
