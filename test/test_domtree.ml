(* Tests for the dominating-tree packing: virtual graph indexing, the
   centralized and distributed packing algorithms, packing verification,
   tree extraction, connector paths, the Appendix E tester, and the
   vertex-connectivity approximation. *)

open Graphs
open Domtree
module Union_find = Graphs.Union_find

let vnet g = Congest.Net.create Congest.Model.V_congest g

(* ------------------------------------------------------------------ *)
(* Virtual graph *)

let test_vg_indexing () =
  let g = Gen.cycle 5 in
  let vg = Virtual_graph.create g ~layers:6 in
  Alcotest.(check int) "count" (5 * 18) (Virtual_graph.count vg);
  (* round-trip all coordinates *)
  for real = 0 to 4 do
    for layer = 1 to 6 do
      for vtype = 1 to 3 do
        let id = Virtual_graph.vid vg ~real ~layer ~vtype in
        Alcotest.(check int) "real" real (Virtual_graph.real_of vg id);
        Alcotest.(check int) "layer" layer (Virtual_graph.layer_of vg id);
        Alcotest.(check int) "type" vtype (Virtual_graph.type_of vg id)
      done
    done
  done

let test_vg_ids_distinct () =
  let g = Gen.path 4 in
  let vg = Virtual_graph.create g ~layers:4 in
  let seen = Hashtbl.create 64 in
  for real = 0 to 3 do
    for layer = 1 to 4 do
      for vtype = 1 to 3 do
        let id = Virtual_graph.vid vg ~real ~layer ~vtype in
        Alcotest.(check bool) "fresh id" false (Hashtbl.mem seen id);
        Hashtbl.replace seen id ();
        Alcotest.(check bool) "in range" true (id >= 0 && id < Virtual_graph.count vg)
      done
    done
  done

let test_vg_adjacency () =
  let g = Gen.path 3 in
  let vg = Virtual_graph.create g ~layers:2 in
  let a = Virtual_graph.vid vg ~real:0 ~layer:1 ~vtype:1 in
  let a' = Virtual_graph.vid vg ~real:0 ~layer:2 ~vtype:3 in
  let b = Virtual_graph.vid vg ~real:1 ~layer:1 ~vtype:2 in
  let c = Virtual_graph.vid vg ~real:2 ~layer:1 ~vtype:1 in
  Alcotest.(check bool) "same real adjacent" true (Virtual_graph.adjacent vg a a');
  Alcotest.(check bool) "not self adjacent" false (Virtual_graph.adjacent vg a a);
  Alcotest.(check bool) "adjacent reals" true (Virtual_graph.adjacent vg a b);
  Alcotest.(check bool) "non-adjacent reals" false (Virtual_graph.adjacent vg a c);
  Alcotest.(check bool) "rejects odd layers" true
    (try
       ignore (Virtual_graph.create g ~layers:3);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Centralized packing *)

let check_packing_result g res =
  (* every virtual node got a class *)
  Array.iter
    (fun c ->
      Alcotest.(check bool) "class assigned" true
        (c >= 0 && c < res.Cds_packing.classes))
    res.Cds_packing.class_of;
  (* members consistent with class_of *)
  let n = Graph.n g in
  let per_real = Cds_packing.real_classes res in
  Array.iteri
    (fun i members ->
      Array.iter
        (fun r ->
          Alcotest.(check bool) "member listed in real_classes" true
            (List.mem i per_real.(r)))
        members;
      ignore i)
    res.Cds_packing.members;
  (* per-node load is at most 3 * layers *)
  let layers = Virtual_graph.layers res.Cds_packing.vg in
  for r = 0 to n - 1 do
    Alcotest.(check bool) "load O(log n)" true
      (List.length per_real.(r) <= 3 * layers)
  done

let test_pack_valid_on_harary () =
  let g = Gen.harary ~k:12 ~n:72 in
  let res = Cds_packing.pack ~seed:1 g ~k:12 in
  check_packing_result g res;
  let valid = Cds_packing.valid_classes res in
  Alcotest.(check int) "all classes valid" res.Cds_packing.classes
    (List.length valid);
  (* verified flags match direct predicates *)
  List.iter
    (fun i ->
      let members = res.Cds_packing.members.(i) in
      let in_set v = Array.exists (fun x -> x = v) members in
      Alcotest.(check bool) "dominating flag correct" true
        (Domination.is_dominating g in_set))
    valid

let test_pack_merges_components () =
  (* sparse jump-start on the clique path forces merging work *)
  let g = Gen.clique_path ~k:8 ~len:24 in
  let res = Cds_packing.run ~seed:3 ~jumpstart:1 g ~classes:10 ~layers:14 in
  let excess = res.Cds_packing.stats.Cds_packing.excess_after_layer in
  (match excess with
  | (_, m0) :: _ ->
    Alcotest.(check bool) "jump-start leaves work" true (m0 > 0)
  | [] -> Alcotest.fail "no stats");
  let _, last = List.nth excess (List.length excess - 1) in
  Alcotest.(check int) "all classes connected at the end" 0 last;
  Alcotest.(check int) "all valid" 10
    (List.length (Cds_packing.valid_classes res))

let test_excess_monotone () =
  let g = Gen.clique_path ~k:8 ~len:16 in
  let res = Cds_packing.run ~seed:5 ~jumpstart:1 g ~classes:8 ~layers:12 in
  let ms = List.map snd res.Cds_packing.stats.Cds_packing.excess_after_layer in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  (* Lemma 4.4 first part: M never increases *)
  Alcotest.(check bool) "M non-increasing" true (monotone ms)

(* Lemma 4.6: each class holds O(n log n / t) real vertices *)
let test_class_size_bound () =
  let n = 128 and k = 16 in
  let g = Gen.harary ~k ~n in
  let res = Cds_packing.pack ~seed:44 g ~k in
  let t = res.Cds_packing.classes in
  let bound =
    8. *. float_of_int n *. log (float_of_int n) /. float_of_int t
  in
  Array.iter
    (fun members ->
      Alcotest.(check bool)
        (Printf.sprintf "class size %d <= O(n log n / t) = %.0f"
           (Array.length members) bound)
        true
        (float_of_int (Array.length members) <= bound))
    res.Cds_packing.members

(* Theorem B.1 regression: the distributed run stays within the
   O~(D + sqrt n) budget on a standard instance *)
let test_dist_rounds_budget () =
  let n = 64 and k = 8 in
  let g = Gen.harary ~k ~n in
  let d = Traversal.diameter g in
  let net = vnet g in
  let _ = Dist_packing.pack ~seed:45 net ~k in
  let lg = log (float_of_int n) /. log 2. in
  let budget = (float_of_int d +. sqrt (float_of_int n)) *. (lg ** 3.) in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d <= budget %.0f" (Congest.Net.rounds net) budget)
    true
    (float_of_int (Congest.Net.rounds net) <= budget)

let prop_pack_classes_cover_all_vnodes =
  QCheck.Test.make ~name:"every virtual node is assigned exactly one class"
    ~count:10
    QCheck.(pair (int_range 12 40) (int_range 2 4))
    (fun (n, k) ->
      let g = Gen.harary ~k ~n in
      let res = Cds_packing.pack g ~k in
      Array.for_all (fun c -> c >= 0) res.Cds_packing.class_of)

(* ------------------------------------------------------------------ *)
(* Packing verification + tree extraction *)

let test_extract_valid_packing () =
  let g = Gen.harary ~k:10 ~n:60 in
  let res = Cds_packing.pack ~seed:2 g ~k:10 in
  let p = Tree_extract.of_cds_packing res in
  Alcotest.(check (list string)) "no violations" []
    (List.map (Format.asprintf "%a" Packing.pp_violation) (Packing.verify p));
  Alcotest.(check bool) "size positive" true (Packing.size p > 0.);
  Alcotest.(check bool) "load <= 1" true (Packing.max_node_load p <= 1. +. 1e-9)

let test_verify_rejects_bad_tree () =
  let g = Gen.cycle 6 in
  (* a "tree" with a cycle *)
  let bad =
    {
      Packing.graph = g;
      trees =
        [
          {
            Packing.cls = 0;
            vertices = [| 0; 1; 2; 3; 4; 5 |];
            edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (0, 5) ];
          };
        ];
      weights = [ 1. ];
    }
  in
  Alcotest.(check bool) "cycle rejected" false (Packing.is_valid bad)

let test_verify_rejects_non_dominating () =
  let g = Gen.path 9 in
  let bad =
    {
      Packing.graph = g;
      trees =
        [ { Packing.cls = 0; vertices = [| 0; 1 |]; edges = [ (0, 1) ] } ];
      weights = [ 1. ];
    }
  in
  let violations = Packing.verify bad in
  Alcotest.(check bool) "non-dominating rejected" true
    (List.exists (function Packing.Not_dominating _ -> true | _ -> false)
       violations)

let test_verify_rejects_overload () =
  let g = Gen.clique 4 in
  let tree =
    { Packing.cls = 0; vertices = [| 0; 1; 2; 3 |];
      edges = [ (0, 1); (1, 2); (2, 3) ] }
  in
  let bad = { Packing.graph = g; trees = [ tree; tree ]; weights = [ 0.7; 0.7 ] } in
  let violations = Packing.verify bad in
  Alcotest.(check bool) "overload rejected" true
    (List.exists (function Packing.Overloaded_vertex _ -> true | _ -> false)
       violations)

let test_integral_subpacking_disjoint () =
  let g = Gen.harary ~k:12 ~n:72 in
  let res = Cds_packing.pack ~seed:4 g ~k:12 in
  let p = Tree_extract.of_cds_packing res in
  let q = Tree_extract.integral_subpacking p in
  (* chosen trees pairwise vertex-disjoint *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun tr ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "vertex used once" false (Hashtbl.mem seen v);
          Hashtbl.replace seen v ())
        tr.Packing.vertices)
    q.Packing.trees;
  Alcotest.(check bool) "at least one tree" true (Packing.count q >= 1)

let test_tree_diameter_bound () =
  (* clique-path: diameter of each dominating tree should be O~(n/k) *)
  let k = 6 and len = 12 in
  let g = Gen.clique_path ~k ~len in
  let res = Cds_packing.pack ~seed:6 g ~k in
  let p = Tree_extract.of_cds_packing res in
  let nk = Graph.n g / k in
  Alcotest.(check bool) "diameter O~(n/k)" true
    (Packing.max_tree_diameter p <= 8 * nk)

(* failure injection: every mutation of a valid packing must be caught *)
let prop_verifier_catches_mutations =
  QCheck.Test.make ~name:"verifier rejects every mutation of a valid packing"
    ~count:20
    QCheck.(pair (int_range 0 3) small_int)
    (fun (mutation, seed) ->
      let g = Gen.harary ~k:8 ~n:40 in
      let res = Cds_packing.pack ~seed:(seed + 1) g ~k:8 in
      let p = Tree_extract.of_cds_packing res in
      QCheck.assume (Packing.count p >= 1);
      let mutate (tr : Packing.tree) =
        match mutation with
        | 0 ->
          (* drop a tree edge: disconnects the tree *)
          (match tr.Packing.edges with
          | _ :: rest -> { tr with Packing.edges = rest }
          | [] -> tr)
        | 1 ->
          (* drop a vertex but keep its edges: edge outside the set *)
          let vs = tr.Packing.vertices in
          if Array.length vs > 1 then
            { tr with Packing.vertices = Array.sub vs 1 (Array.length vs - 1) }
          else tr
        | 2 ->
          (* add a fake edge, creating a cycle *)
          let vs = tr.Packing.vertices in
          if Array.length vs >= 3 then
            let u = vs.(0) and v = vs.(Array.length vs - 1) in
            if Graph.mem_edge g u v
               && not (List.mem (min u v, max u v) tr.Packing.edges)
            then
              { tr with Packing.edges = (min u v, max u v) :: tr.Packing.edges }
            else tr
          else tr
        | _ -> tr
      in
      match (p.Packing.trees, mutation) with
      | tr :: rest, m when m <= 2 ->
        let tr' = mutate tr in
        if tr' = tr then true (* mutation not applicable: vacuous *)
        else
          let bad = { p with Packing.trees = tr' :: rest } in
          not (Packing.is_valid bad)
      | _, _ ->
        (* mutation 3: overload by doubling every weight above 1 *)
        let bad =
          { p with Packing.weights = List.map (fun _ -> 0.9) p.Packing.weights }
        in
        if Packing.max_multiplicity p < 2 then true
        else not (Packing.is_valid bad))

let test_integral_layering () =
  let g = Gen.harary ~k:48 ~n:96 in
  let r = Integral_layering.run ~seed:21 g ~layers:8 in
  Alcotest.(check bool) "most layers succeed" true
    (r.Integral_layering.successes >= 4);
  let p = r.Integral_layering.packing in
  Alcotest.(check (list string)) "valid integral packing" []
    (List.map (Format.asprintf "%a" Packing.pp_violation) (Packing.verify p));
  (* vertex-disjointness: multiplicity exactly 1 *)
  Alcotest.(check int) "vertex-disjoint" 1 (Packing.max_multiplicity p)

let test_integral_layering_sparse_fails_gracefully () =
  (* a path cannot host CDSs inside thin random layers *)
  let g = Gen.path 20 in
  let r = Integral_layering.run ~seed:22 g ~layers:4 in
  Alcotest.(check bool) "no invalid trees" true
    (Packing.verify r.Integral_layering.packing = [])

let test_packing_serialization_roundtrip () =
  let g = Gen.harary ~k:8 ~n:40 in
  let res = Cds_packing.pack ~seed:33 g ~k:8 in
  let p = Tree_extract.of_cds_packing res in
  let path = Filename.temp_file "packing" ".txt" in
  Packing.save path p;
  let q = Packing.load path ~graph:g in
  Sys.remove path;
  Alcotest.(check int) "tree count" (Packing.count p) (Packing.count q);
  Alcotest.(check (float 1e-9)) "size" (Packing.size p) (Packing.size q);
  Alcotest.(check bool) "still valid" true (Packing.is_valid q)

(* ------------------------------------------------------------------ *)
(* Connector paths *)

let test_connector_validity () =
  let g = Gen.cycle 6 in
  (* class = {0, 3}: dominating, two singleton components at distance 3;
     the two arcs give two long connector paths *)
  let in_class v = v = 0 || v = 3 in
  let in_component v = v = 0 in
  let paths = Connector.enumerate g ~in_class ~in_component in
  Alcotest.(check bool) "found some" true (List.length paths >= 1);
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid connector path" true
        (Connector.is_connector_path g ~in_class ~in_component p))
    paths

let test_connector_max_disjoint_cycle () =
  let g = Gen.cycle 6 in
  let in_class v = v = 0 || v = 3 in
  let in_component v = v = 0 in
  (* two disjoint routes around the cycle, each with two internals *)
  Alcotest.(check int) "two disjoint connectors" 2
    (Connector.max_disjoint g ~in_class ~in_component);
  (* beyond distance 3 no connector path can exist (condition (B)) *)
  let g8 = Gen.cycle 8 in
  Alcotest.(check int) "distance 4: none" 0
    (Connector.max_disjoint g8
       ~in_class:(fun v -> v = 0 || v = 4)
       ~in_component:(fun v -> v = 0))

let test_connector_short_path_rule () =
  (* star-like: class {1, 2} non-adjacent, sharing neighbor 0 *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 2) ] in
  let in_class v = v = 1 || v = 2 in
  let in_component v = v = 1 in
  let paths = Connector.enumerate g ~in_class ~in_component in
  Alcotest.(check int) "one short connector" 1 (List.length paths);
  Alcotest.(check bool) "it is short" true (Connector.is_short (List.hd paths))

let test_connector_condition_c () =
  (* u adjacent to both sides must not be the first internal of a long
     path: on a path 1-0-2, vertex 0 sees both; a long path through it
     would violate minimality *)
  let g = Graph.of_edges ~n:4 [ (1, 0); (0, 2); (0, 3); (3, 2) ] in
  let in_class v = v = 1 || v = 2 in
  let in_component v = v = 1 in
  let bad =
    { Connector.endpoint_in = 1; internals = [ 0; 3 ]; endpoint_out = 2 }
  in
  Alcotest.(check bool) "condition (C) rejects" false
    (Connector.is_connector_path g ~in_class ~in_component bad)

let test_connector_realization () =
  let g = Gen.cycle 6 in
  let vg = Virtual_graph.create g ~layers:4 in
  let in_class v = v = 0 || v = 3 in
  let in_component v = v = 0 in
  let paths = Connector.enumerate g ~in_class ~in_component in
  List.iter
    (fun p ->
      let vs = Connector.realize vg ~layer:3 p in
      match (p.Connector.internals, vs) with
      | [ x ], [ (id, 1) ] ->
        Alcotest.(check int) "short: type-1 on the internal" x
          (Virtual_graph.real_of vg id)
      | [ u; w ], [ (id2, 2); (id3, 3) ] ->
        Alcotest.(check int) "long: type-2 on the C side" u
          (Virtual_graph.real_of vg id2);
        Alcotest.(check int) "long: type-3 on the far side" w
          (Virtual_graph.real_of vg id3);
        Alcotest.(check int) "layer stamped" 3 (Virtual_graph.layer_of vg id2)
      | _ -> Alcotest.fail "unexpected realization shape")
    paths

(* Proposition 4.2: within one class, a type-2 internal vertex (the first
   internal of a long connector) serves at most one component. *)
let test_proposition_4_2 () =
  let g = Gen.clique_path ~k:6 ~len:10 in
  let n = Graph.n g in
  let rng = Random.State.make [| 42 |] in
  (* random sparse class *)
  for _trial = 1 to 5 do
    let member = Array.init n (fun _ -> Random.State.float rng 1. < 0.3) in
    let in_class v = member.(v) in
    if Domination.is_dominating g in_class then begin
      let sub =
        Graph.spanning_subgraph g (fun u v -> in_class u && in_class v)
      in
      let _, labels = Traversal.components sub in
      let roots = Hashtbl.create 8 in
      for v = 0 to n - 1 do
        if in_class v then Hashtbl.replace roots labels.(v) ()
      done;
      if Hashtbl.length roots >= 2 then begin
        (* first-internal (type-2) vertices per component *)
        let owner = Hashtbl.create 16 in
        Hashtbl.iter
          (fun root () ->
            let in_component v = in_class v && labels.(v) = root in
            List.iter
              (fun p ->
                match p.Connector.internals with
                | [ u; _ ] -> (
                  match Hashtbl.find_opt owner u with
                  | Some other ->
                    Alcotest.(check int)
                      "type-2 vertex serves one component" other root
                  | None -> Hashtbl.replace owner u root)
                | _ -> ())
              (Connector.enumerate g ~in_class ~in_component))
          roots
      end
    end
  done

let test_connector_abundance () =
  (* Lemma 4.3 on the hypercube: k = 4 *)
  let g = Gen.hypercube 4 in
  let audit =
    Connector.audit_jumpstart ~seed:3 g ~classes:4 ~layers:4 ~k:4
  in
  Alcotest.(check bool) "every component has >= k disjoint connectors" true
    audit.Connector.all_above_k

(* ------------------------------------------------------------------ *)
(* The bridging graph (Fig. 1), standalone *)

(* Fig. 1-style scenario on a path of cliques: class 0 has two
   components (blocks 0 and 2); block 1 vertices are unassigned old
   nodes; type-3 witnesses on block 1 enable type-2 edges. *)
let bridging_scenario () =
  let k = 3 in
  let g = Gen.clique_path ~k ~len:3 in
  let members i v = i = 0 && (v < k || v >= 2 * k) in
  (* type-1 nodes pick class 1 (absent from the scenario): no
     deactivation; type-3 nodes on the middle block pick class 0 *)
  let class1 = Array.make (Graph.n g) 1 in
  let class3 =
    Array.init (Graph.n g) (fun v -> if v = 4 then 0 else 1)
  in
  (g, members, class1, class3)

let test_bridging_rules () =
  let g, members, class1, class3 = bridging_scenario () in
  let b = Bridging.build g ~classes:2 ~members ~class1 ~class3 in
  (* two components of class 0 *)
  Alcotest.(check int) "two components" 2 (List.length b.Bridging.components);
  List.iter
    (fun c -> Alcotest.(check bool) "active" true c.Bridging.active)
    b.Bridging.components;
  (* vertex 4 (middle block, position 1) is a type-3 witness of class 0:
     it sees both components, so adjacent type-2 middle vertices get
     bridging edges *)
  Alcotest.(check bool) "bridging edges exist" true (b.Bridging.edges <> []);
  List.iter
    (fun (r, (i, _)) ->
      ignore r;
      (* note: members may carry type-2 edges too — the virtual graph's
         same-real adjacency makes a node its own old nodes' neighbor *)
      Alcotest.(check int) "edges are for class 0" 0 i)
    b.Bridging.edges;
  (* a maximal matching merges at least one pair *)
  Alcotest.(check bool) "matching nonempty" true
    (Bridging.greedy_matching b <> [])

let test_bridging_deactivation () =
  let g, members, _class1, class3 = bridging_scenario () in
  (* now a type-1 node in the middle block joins class 0 and sees both
     components: both deactivate, killing all bridging edges *)
  let class1 = Array.init (Graph.n g) (fun v -> if v = 4 then 0 else 1) in
  let b = Bridging.build g ~classes:2 ~members ~class1 ~class3 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "deactivated" false c.Bridging.active)
    b.Bridging.components;
  Alcotest.(check (list (pair int (pair int int)))) "no edges" []
    b.Bridging.edges

let test_bridging_no_witness_no_edge () =
  let g, members, class1, _class3 = bridging_scenario () in
  (* no type-3 node of class 0 anywhere: condition (c) fails *)
  let class3 = Array.make (Graph.n g) 1 in
  let b = Bridging.build g ~classes:2 ~members ~class1 ~class3 in
  Alcotest.(check (list (pair int (pair int int)))) "no edges" []
    b.Bridging.edges

(* first-principles check: every reported bridging edge satisfies the
   §3.1 conditions (a)-(c), and the deactivated components carry none *)
let prop_bridging_rules_sound =
  QCheck.Test.make ~name:"bridging edges satisfy conditions (a)-(c)" ~count:15
    QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed; 99 |] in
      let g = Gen.clique_path ~k:5 ~len:6 in
      let n = Graph.n g in
      let classes = 3 in
      let member = Array.make_matrix classes n false in
      for v = 0 to n - 1 do
        (* sparse random memberships *)
        if Random.State.float rng 1.0 < 0.4 then
          member.(Random.State.int rng classes).(v) <- true
      done;
      let members i v = member.(i).(v) in
      let class1 = Array.init n (fun _ -> Random.State.int rng classes) in
      let class3 = Array.init n (fun _ -> Random.State.int rng classes) in
      let b = Bridging.build g ~classes ~members ~class1 ~class3 in
      (* recompute component ids for the check *)
      let uf = Array.init classes (fun _ -> Union_find.create n) in
      Graph.iter_edges
        (fun u v ->
          for i = 0 to classes - 1 do
            if members i u && members i v then ignore (Union_find.union uf.(i) u v)
          done)
        g;
      let closed r = r :: Array.to_list (Graph.neighbors g r) in
      let comp_min i v =
        (* canonical id = min member of the component *)
        let root = Union_find.find uf.(i) v in
        let best = ref max_int in
        for u = 0 to n - 1 do
          if members i u && Union_find.find uf.(i) u = root then
            if u < !best then best := u
        done;
        !best
      in
      List.for_all
        (fun (r, (i, c)) ->
          (* (a) r's closed neighborhood touches component c of class i *)
          let touches =
            List.exists
              (fun u -> members i u && comp_min i u = c)
              (closed r)
          in
          (* (c) some type-3 neighbor of class i witnesses another
             component *)
          let witnessed =
            List.exists
              (fun w ->
                class3.(w) = i
                && List.exists
                     (fun u -> members i u && comp_min i u <> c)
                     (closed w)
                && List.exists (fun u -> members i u) (closed w))
              (closed r)
          in
          (* (b) the component is listed active *)
          let active =
            List.exists
              (fun comp ->
                comp.Bridging.cls = i && comp.Bridging.id = c
                && comp.Bridging.active)
              b.Bridging.components
          in
          touches && witnessed && active)
        b.Bridging.edges)

(* ------------------------------------------------------------------ *)
(* The [CGK SODA'14] explicit-connector baseline *)

let test_cgk_baseline_valid () =
  let g = Gen.harary ~k:9 ~n:54 in
  let res = Cgk_baseline.pack ~seed:17 g ~k:9 in
  Alcotest.(check int) "all classes valid" res.Cds_packing.classes
    (List.length (Cds_packing.valid_classes res));
  let p = Tree_extract.of_cds_packing res in
  Alcotest.(check (list string)) "extracted packing verifies" []
    (List.map (Format.asprintf "%a" Packing.pp_violation) (Packing.verify p))

let test_cgk_baseline_merges () =
  let g = Gen.clique_path ~k:8 ~len:16 in
  let res = Cgk_baseline.run ~seed:18 ~jumpstart:1 g ~classes:10 ~layers:12 in
  let excess = res.Cds_packing.stats.Cds_packing.excess_after_layer in
  (match excess with
  | (_, m0) :: _ -> Alcotest.(check bool) "initial components" true (m0 > 0)
  | [] -> Alcotest.fail "no stats");
  Alcotest.(check int) "all merged by explicit connectors" 10
    (List.length (Cds_packing.valid_classes res))

(* ------------------------------------------------------------------ *)
(* Multiflood (the virtual-graph meta-round simulation) *)

let test_multiflood_component_ids () =
  (* cycle of 6; class 0 = {0,1,2}, class 1 = {3,4,5}, both intervals:
     each class is one component, min ids 0 and 3 *)
  let g = Gen.cycle 6 in
  let net = vnet g in
  let memberships v = if v < 3 then [ 0 ] else [ 1 ] in
  let table =
    Multiflood.flood_min net ~memberships ~init:(fun r _ -> (r, r))
  in
  for v = 0 to 2 do
    Alcotest.(check (pair int int)) "class 0 cid" (0, 0)
      (Hashtbl.find table (v, 0))
  done;
  for v = 3 to 5 do
    Alcotest.(check (pair int int)) "class 1 cid" (3, 3)
      (Hashtbl.find table (v, 1))
  done

let test_multiflood_split_class () =
  (* class 0 = {0, 3} on a cycle of 6: two separated singletons keep
     their own ids *)
  let g = Gen.cycle 6 in
  let net = vnet g in
  let memberships v = if v = 0 || v = 3 then [ 0 ] else [ 1 ] in
  let table =
    Multiflood.flood_min net ~memberships ~init:(fun r _ -> (r, r))
  in
  Alcotest.(check (pair int int)) "cid of 0" (0, 0) (Hashtbl.find table (0, 0));
  Alcotest.(check (pair int int)) "cid of 3" (3, 3) (Hashtbl.find table (3, 0))

let test_multiflood_overlapping_memberships () =
  (* every node in class 0; odd nodes also in class 1; rounds cost
     reflects two slots *)
  let g = Gen.path 5 in
  let net = vnet g in
  let memberships v = if v mod 2 = 1 then [ 0; 1 ] else [ 0 ] in
  let table =
    Multiflood.flood_min net ~memberships ~init:(fun r _ -> (r, r))
  in
  Alcotest.(check (pair int int)) "class 0 connects everyone" (0, 0)
    (Hashtbl.find table (4, 0));
  (* class 1 = {1, 3}: nodes 1 and 3 are not adjacent -> separate *)
  Alcotest.(check (pair int int)) "class 1 of node 3" (3, 3)
    (Hashtbl.find table (3, 1));
  Alcotest.(check bool) "rounds > 0" true (Congest.Net.rounds net > 0)

let test_membership_sweep_payload () =
  let g = Gen.path 3 in
  let net = vnet g in
  let memberships v = [ v mod 2 ] in
  let received =
    Multiflood.membership_sweep net ~memberships ~payload:(fun r i ->
        [ (10 * r) + i ])
  in
  (* middle node hears both neighbors *)
  let mid = List.sort compare received.(1) in
  Alcotest.(check int) "two messages" 2 (List.length mid);
  (match mid with
  | [ (s1, c1, p1); (s2, c2, p2) ] ->
    Alcotest.(check int) "sender 0" 0 s1;
    Alcotest.(check int) "class of 0" 0 c1;
    Alcotest.(check (list int)) "payload of 0" [ 0 ] p1;
    Alcotest.(check int) "sender 2" 2 s2;
    Alcotest.(check int) "class of 2" 0 c2;
    Alcotest.(check (list int)) "payload of 2" [ 20 ] p2
  | _ -> Alcotest.fail "expected two entries")

(* ------------------------------------------------------------------ *)
(* Tester (Appendix E) *)

(* a hand-built disconnected-but-dominating class: blocks 0 and 2 of a
   3-block clique path in class 0, the rest in class 1 *)
let split_class_instance () =
  let k = 6 in
  let g = Gen.clique_path ~k ~len:3 in
  let memberships v =
    let block = v / k in
    if block = 1 then [ 1 ] else [ 0; 1 ]
  in
  (g, memberships)

let test_tester_passes_valid () =
  let g = Gen.harary ~k:8 ~n:48 in
  let res = Cds_packing.pack ~seed:7 g ~k:8 in
  let per_real = Cds_packing.real_classes res in
  let outcome =
    Tester.run_centralized g
      ~memberships:(fun r -> per_real.(r))
      ~classes:res.Cds_packing.classes ~detection_rounds:24
  in
  Alcotest.(check bool) "valid packing passes" true outcome.Tester.pass

let test_tester_detects_disconnected_centralized () =
  let g, memberships = split_class_instance () in
  let outcome =
    Tester.run_centralized g ~memberships ~classes:2 ~detection_rounds:24
  in
  Alcotest.(check bool) "domination fine" true outcome.Tester.domination_ok;
  Alcotest.(check bool) "disconnect detected" false outcome.Tester.pass

let test_tester_detects_disconnected_distributed () =
  let g, memberships = split_class_instance () in
  let net = vnet g in
  let outcome =
    Tester.run_distributed net ~memberships ~classes:2 ~detection_rounds:24
  in
  Alcotest.(check bool) "disconnect detected (dist)" false outcome.Tester.pass;
  Alcotest.(check bool) "rounds charged" true (Congest.Net.rounds net > 0)

let test_tester_detects_non_domination () =
  let g = Gen.path 8 in
  (* class 1 = {0}: does not dominate the far end *)
  let memberships v = if v = 0 then [ 0; 1 ] else [ 0 ] in
  let outcome =
    Tester.run_centralized g ~memberships ~classes:2 ~detection_rounds:8
  in
  Alcotest.(check bool) "domination failure" false outcome.Tester.domination_ok;
  Alcotest.(check bool) "fails" false outcome.Tester.pass

let test_tester_distance3_detection () =
  (* components of class 0 at distance 3: needs the random rounds *)
  let k = 5 in
  let g = Gen.clique_path ~k ~len:4 in
  let memberships v =
    let block = v / k in
    if block = 0 || block = 3 then [ 0; 1 ] else [ 1 ]
  in
  let outcome =
    Tester.run_centralized ~seed:13 g ~memberships ~classes:2
      ~detection_rounds:40
  in
  Alcotest.(check bool) "distance-3 disconnect detected" false
    outcome.Tester.pass

let test_tester_detection_rate () =
  (* Lemma E.1: a disconnected class is detected w.h.p. Measure the
     empirical detection rate of the randomized tester over 100
     independent seeds on a hand-built broken partition. *)
  let g, memberships = split_class_instance () in
  let trials = 100 in
  let detected = ref 0 in
  for seed = 1 to trials do
    let outcome =
      Tester.run_centralized ~seed g ~memberships ~classes:2
        ~detection_rounds:24
    in
    if not outcome.Tester.pass then incr detected
  done;
  Alcotest.(check bool)
    (Printf.sprintf "detection rate %d/%d clears the w.h.p. bound" !detected
       trials)
    true (!detected >= 95)

let test_tester_no_false_positives () =
  (* the other half of Lemma E.1: a valid partition always passes *)
  let g = Gen.harary ~k:8 ~n:48 in
  let res = Cds_packing.pack ~seed:7 g ~k:8 in
  let per_real = Cds_packing.real_classes res in
  let passes = ref 0 in
  for seed = 1 to 100 do
    let outcome =
      Tester.run_centralized ~seed g
        ~memberships:(fun r -> per_real.(r))
        ~classes:res.Cds_packing.classes ~detection_rounds:24
    in
    if outcome.Tester.pass then incr passes
  done;
  Alcotest.(check int) "valid partition passes on every seed" 100 !passes

(* ------------------------------------------------------------------ *)
(* Verify-and-retry pipeline *)

let test_reliable_verifies_first_try () =
  let g = Gen.harary ~k:8 ~n:48 in
  let r = Reliable.pack_verified ~seed:7 g ~k:8 in
  Alcotest.(check bool) "verified" true r.Reliable.verified;
  Alcotest.(check int) "no retries" 0 r.Reliable.retries;
  Alcotest.(check int) "one attempt" 1 (List.length r.Reliable.attempts);
  Alcotest.(check int) "centralized: no rounds" 0 r.Reliable.rounds_charged

let test_reliable_exhausts_retries () =
  (* an over-ambitious configuration (10 classes, 2 layers on a k=8
     graph) keeps failing the tester: the bounded retry policy must
     stop after max_retries and report verified=false *)
  let g = Gen.harary ~k:8 ~n:48 in
  let r =
    Reliable.run_verified ~seed:7 ~max_retries:3 g ~classes:10 ~layers:2
  in
  Alcotest.(check bool) "not verified" false r.Reliable.verified;
  Alcotest.(check int) "all attempts used" 4 (List.length r.Reliable.attempts);
  Alcotest.(check int) "retries counted" 3 r.Reliable.retries;
  let seeds =
    List.map (fun a -> a.Reliable.attempt_seed) r.Reliable.attempts
  in
  Alcotest.(check int) "fresh decorrelated seed per attempt" 4
    (List.length (List.sort_uniq compare seeds));
  List.iter
    (fun (a : Reliable.attempt) ->
      Alcotest.(check bool) "every attempt failed the tester" false
        a.outcome.Tester.pass)
    r.Reliable.attempts

let test_reliable_distributed_charges_rounds () =
  let g = Gen.harary ~k:8 ~n:48 in
  let net = vnet g in
  let r = Reliable.pack_verified_distributed ~seed:7 net ~k:8 in
  Alcotest.(check bool) "verified" true r.Reliable.verified;
  Alcotest.(check int) "rounds_charged = clock delta"
    (Congest.Net.rounds net) r.Reliable.rounds_charged;
  Alcotest.(check bool) "packing + tester cost rounds" true
    (r.Reliable.rounds_charged > 0)

let test_reliable_distributed_backoff () =
  (* a flaky distributed config: each retry is preceded by 2^attempt
     silent rounds charged to the CONGEST clock *)
  let g = Gen.harary ~k:8 ~n:48 in
  let net = vnet g in
  let r =
    Reliable.run_verified_distributed ~seed:7 ~max_retries:2 net ~classes:10
      ~layers:2
  in
  Alcotest.(check bool) "not verified" false r.Reliable.verified;
  Alcotest.(check int) "attempts = max_retries + 1" 3
    (List.length r.Reliable.attempts);
  Alcotest.(check int) "clock delta matches" (Congest.Net.rounds net)
    r.Reliable.rounds_charged

(* ------------------------------------------------------------------ *)
(* Reliable edge cases *)

let test_reliable_max_retries_zero () =
  (* max_retries = 0: exactly one attempt, no retry even on failure *)
  let g = Gen.harary ~k:8 ~n:48 in
  let r = Reliable.run_verified ~seed:7 ~max_retries:0 g ~classes:10 ~layers:2 in
  Alcotest.(check bool) "not verified" false r.Reliable.verified;
  Alcotest.(check int) "single attempt" 1 (List.length r.Reliable.attempts);
  Alcotest.(check int) "no retries" 0 r.Reliable.retries

let test_reliable_all_fail_keeps_last_packing () =
  (* every attempt fails: the last packing is returned, and the result's
     memberships are exactly that packing's live view *)
  let g = Gen.harary ~k:8 ~n:48 in
  let r =
    Reliable.run_verified ~seed:7 ~max_retries:2 g ~classes:10 ~layers:2
  in
  Alcotest.(check bool) "not verified" false r.Reliable.verified;
  Alcotest.(check int) "attempts" 3 (List.length r.Reliable.attempts);
  let per_real = Cds_packing.real_classes r.Reliable.packing in
  Array.iteri
    (fun v ls ->
      Alcotest.(check (list int))
        "memberships mirror the last packing" (List.sort_uniq compare per_real.(v))
        ls)
    r.Reliable.memberships

let test_reliable_rounds_exact_accounting () =
  (* rounds_charged = sum of attempt rounds + sum of backoffs, exactly *)
  let g = Gen.harary ~k:8 ~n:48 in
  let net = vnet g in
  let r =
    Reliable.run_verified_distributed ~seed:7 ~max_retries:2 net ~classes:10
      ~layers:2
  in
  Alcotest.(check bool) "not verified" false r.Reliable.verified;
  let attempt_sum =
    List.fold_left (fun a x -> a + x.Reliable.attempt_rounds) 0
      r.Reliable.attempts
  in
  let backoff_sum =
    (* backoff fires after each failed attempt except the last *)
    List.init r.Reliable.retries Reliable.default_backoff
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "rounds = attempts + backoffs"
    (attempt_sum + backoff_sum) r.Reliable.rounds_charged;
  Alcotest.(check int) "clock delta matches" (Congest.Net.rounds net)
    r.Reliable.rounds_charged

let test_reliable_round_budget_truncates () =
  (* a deadline-derived round budget of 1: the first attempt always
     runs (a budget never yields an empty result), but the retry ladder
     is cut immediately after, with the exhaustion reported and the
     accounting invariant intact *)
  let g = Gen.harary ~k:8 ~n:48 in
  let net = vnet g in
  let r =
    Reliable.run_verified_distributed ~seed:7 ~max_retries:4 ~round_budget:1
      net ~classes:10 ~layers:2
  in
  Alcotest.(check bool) "not verified" false r.Reliable.verified;
  Alcotest.(check bool) "budget exhaustion reported" true
    r.Reliable.budget_exhausted;
  Alcotest.(check int) "single attempt despite max_retries=4" 1
    (List.length r.Reliable.attempts);
  Alcotest.(check int) "no retries" 0 r.Reliable.retries;
  (* no backoff was charged: rounds_charged is exactly the attempt *)
  let attempt_sum =
    List.fold_left (fun a x -> a + x.Reliable.attempt_rounds) 0
      r.Reliable.attempts
  in
  Alcotest.(check int) "rounds = the one attempt, no backoff" attempt_sum
    r.Reliable.rounds_charged;
  Alcotest.(check int) "clock delta matches" (Congest.Net.rounds net)
    r.Reliable.rounds_charged

let test_reliable_retries_exhausted_is_not_budget () =
  (* running out of max_retries is not a budget exhaustion: the flag
     must stay false when no round_budget was given *)
  let g = Gen.harary ~k:8 ~n:48 in
  let net = vnet g in
  let r =
    Reliable.run_verified_distributed ~seed:7 ~max_retries:1 net ~classes:10
      ~layers:2
  in
  Alcotest.(check bool) "not verified" false r.Reliable.verified;
  Alcotest.(check bool) "not a budget exhaustion" false
    r.Reliable.budget_exhausted;
  Alcotest.(check int) "all attempts used" 2 (List.length r.Reliable.attempts)

let test_reliable_budget_allows_retries_within () =
  (* a generous budget must change nothing: same attempts, same rounds
     as the unbudgeted run, flag false *)
  let g = Gen.harary ~k:8 ~n:48 in
  let unbudgeted =
    Reliable.run_verified_distributed ~seed:7 ~max_retries:2 (vnet g)
      ~classes:10 ~layers:2
  in
  let budgeted =
    Reliable.run_verified_distributed ~seed:7 ~max_retries:2
      ~round_budget:(10 * unbudgeted.Reliable.rounds_charged)
      (vnet g) ~classes:10 ~layers:2
  in
  Alcotest.(check bool) "flag false" false budgeted.Reliable.budget_exhausted;
  Alcotest.(check int) "same attempts"
    (List.length unbudgeted.Reliable.attempts)
    (List.length budgeted.Reliable.attempts);
  Alcotest.(check int) "same rounds" unbudgeted.Reliable.rounds_charged
    budgeted.Reliable.rounds_charged

let test_reliable_repair_retains_nothing () =
  (* extinction: with every node dead, repair has nothing to splice and
     drops every class outright *)
  let g = Gen.harary ~k:8 ~n:48 in
  let dead _ = false in
  let rep_direct =
    Domtree.Repair.run_centralized ~live:dead g
      ~memberships:(fun v -> [ v mod 2 ])
      ~classes:2
  in
  Alcotest.(check (list int)) "repair retains nothing" []
    rep_direct.Domtree.Repair.r_retained;
  (* two isolated survivors (0 and 24 are >1 hop apart in this
     circulant, so no live node can bridge them): each class ends with
     both survivors as members in two fragments, the splice loop finds
     no live bridge, and every class is dropped — repair retains
     nothing, the Repair policy falls back to reseeded retries, and the
     centralized pipeline charges exactly zero rounds.  (A fully dead
     graph would not do: the tester passes vacuously when nobody is
     alive to witness a violation.) *)
  let live v = v = 0 || v = 24 in
  let r =
    Reliable.run_verified ~seed:7 ~max_retries:2 ~policy:`Repair ~live g
      ~classes:10 ~layers:2
  in
  Alcotest.(check bool) "not verified" false r.Reliable.verified;
  Alcotest.(check int) "all attempts used" 3 (List.length r.Reliable.attempts);
  List.iter
    (fun (a : Reliable.attempt) ->
      Alcotest.(check bool) "repair was attempted each time" true a.repaired)
    r.Reliable.attempts;
  Alcotest.(check int) "centralized: exactly zero rounds charged" 0
    r.Reliable.rounds_charged;
  Alcotest.(check bool) "no repair in the result" true
    (r.Reliable.repair = None)

(* ------------------------------------------------------------------ *)
(* Repair *)

let test_repair_fixes_split_class () =
  (* class 0 is dominating but split in two fragments at distance 3:
     repair must splice it without touching the healthy class 1 *)
  let g, memberships = split_class_instance () in
  let rep = Repair.run_centralized g ~memberships ~classes:2 in
  Alcotest.(check bool) "class 0 repaired" true
    (rep.Repair.r_status.(0) = Repair.Repaired);
  Alcotest.(check bool) "class 1 healthy" true
    (rep.Repair.r_status.(1) = Repair.Healthy);
  Alcotest.(check (list int)) "both retained" [ 0; 1 ] rep.Repair.r_retained;
  Alcotest.(check bool) "splices happened" true (rep.Repair.r_splices > 0);
  let o =
    Tester.run_centralized g
      ~memberships:(fun r -> rep.Repair.r_memberships.(r))
      ~classes:2 ~detection_rounds:24
  in
  Alcotest.(check bool) "repaired packing passes the tester" true
    o.Tester.pass

let test_repair_distributed_matches_and_charges () =
  let g, memberships = split_class_instance () in
  let net = vnet g in
  let rep = Repair.run_distributed net ~memberships ~classes:2 in
  Alcotest.(check (list int)) "both retained" [ 0; 1 ] rep.Repair.r_retained;
  Alcotest.(check bool) "rounds charged" true (rep.Repair.r_rounds > 0);
  Alcotest.(check int) "rounds match the clock" (Congest.Net.rounds net)
    rep.Repair.r_rounds;
  let o =
    Tester.run_centralized g
      ~memberships:(fun r -> rep.Repair.r_memberships.(r))
      ~classes:2 ~detection_rounds:24
  in
  Alcotest.(check bool) "repaired packing passes the tester" true o.Tester.pass

let test_repair_healthy_untouched () =
  (* a valid packing must come back byte-identical: no orphans, no
     splices, every class Healthy *)
  let g = Gen.harary ~k:8 ~n:48 in
  let res = Cds_packing.pack ~seed:7 g ~k:8 in
  let per_real = Cds_packing.real_classes res in
  let rep =
    Repair.run_centralized g
      ~memberships:(fun r -> per_real.(r))
      ~classes:res.Cds_packing.classes
  in
  Alcotest.(check int) "no orphans" 0 rep.Repair.r_orphans;
  Alcotest.(check int) "no splices" 0 rep.Repair.r_splices;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "healthy" true (s = Repair.Healthy))
    rep.Repair.r_status;
  Array.iteri
    (fun v ls ->
      Alcotest.(check (list int))
        "memberships unchanged" (List.sort_uniq compare per_real.(v)) ls)
    rep.Repair.r_memberships

let test_repair_under_crashes () =
  (* crash a handful of nodes out of a verified packing; repair must
     yield classes that pass the live tester *)
  let g = Gen.harary ~k:8 ~n:48 in
  let res = Cds_packing.pack ~seed:7 g ~k:8 in
  let per_real = Cds_packing.real_classes res in
  let victims = [ 3; 17; 29 ] in
  let live u = not (List.mem u victims) in
  let rep =
    Repair.run_centralized ~live g
      ~memberships:(fun r -> per_real.(r))
      ~classes:res.Cds_packing.classes
  in
  Alcotest.(check bool) "something retained" true
    (rep.Repair.r_retained <> []);
  List.iter
    (fun v ->
      Alcotest.(check (list int)) "victims hold nothing" []
        rep.Repair.r_memberships.(v))
    victims;
  (* retest the retained classes, remapped, on the live graph *)
  let retained = rep.Repair.r_retained in
  let idx = Array.make res.Cds_packing.classes (-1) in
  List.iteri (fun j i -> idx.(i) <- j) retained;
  let memfn r =
    List.filter_map
      (fun i -> if idx.(i) >= 0 then Some idx.(i) else None)
      rep.Repair.r_memberships.(r)
  in
  let o =
    Tester.run_centralized ~live g ~memberships:memfn
      ~classes:(List.length retained) ~detection_rounds:24
  in
  Alcotest.(check bool) "retained classes pass the live tester" true
    o.Tester.pass

let test_repair_drops_unfixable () =
  (* kill the whole middle block of a 3-block clique path: the live
     graph is disconnected, so no class can stay a connected dominating
     set — graceful degradation must drop them all, not loop *)
  let k = 6 in
  let g = Gen.clique_path ~k ~len:3 in
  let memberships v = if v / k = 1 then [ 1 ] else [ 0; 1 ] in
  let live v = v / k <> 1 in
  let rep = Repair.run_centralized ~live g ~memberships ~classes:2 in
  Alcotest.(check (list int)) "all dropped" [ 0; 1 ] rep.Repair.r_dropped;
  Alcotest.(check (list int)) "nothing retained" [] rep.Repair.r_retained;
  Array.iter
    (fun ls -> Alcotest.(check (list int)) "memberships emptied" [] ls)
    rep.Repair.r_memberships

(* ------------------------------------------------------------------ *)
(* Certificates *)

let test_certificate_valid_roundtrip () =
  let g = Gen.harary ~k:8 ~n:48 in
  let res = Cds_packing.pack ~seed:7 g ~k:8 in
  let per_real = Cds_packing.real_classes res in
  let memfn r = per_real.(r) in
  let cert =
    Certificate.build g ~memberships:memfn ~classes:res.Cds_packing.classes
      ~k:8
  in
  Alcotest.(check int) "all classes retained" res.Cds_packing.classes
    (Certificate.retained_count cert);
  Alcotest.(check bool) "not degraded" false (Certificate.degraded cert);
  Alcotest.(check bool) "meets the floor" true (Certificate.meets_target cert);
  match Certificate.check g ~memberships:memfn cert with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check rejected: %s" (String.concat "; " es)

let test_certificate_rejects_mutations () =
  let g = Gen.harary ~k:8 ~n:48 in
  let res = Cds_packing.pack ~seed:7 g ~k:8 in
  let per_real = Cds_packing.real_classes res in
  let memfn r = per_real.(r) in
  let cert =
    Certificate.build g ~memberships:memfn ~classes:res.Cds_packing.classes
      ~k:8
  in
  let rejects label cert' =
    match Certificate.check g ~memberships:memfn cert' with
    | Ok () -> Alcotest.failf "%s: mutation accepted" label
    | Error _ -> ()
  in
  (* a witness loses an edge: no longer spanning *)
  (match cert.Certificate.c_witnesses with
  | w :: rest ->
    rejects "edge removed"
      {
        cert with
        Certificate.c_witnesses =
          { w with Certificate.w_edges = List.tl w.Certificate.w_edges }
          :: rest;
      }
  | [] -> Alcotest.fail "no witnesses");
  (* claim a class retained that the memberships do not support *)
  rejects "phantom class"
    {
      cert with
      Certificate.c_retained =
        cert.Certificate.c_retained @ [ cert.Certificate.c_classes_requested ];
      Certificate.c_classes_requested = cert.Certificate.c_classes_requested + 1;
    };
  (* dishonest accounting *)
  rejects "wrong load"
    { cert with Certificate.c_max_load = cert.Certificate.c_max_load + 1 };
  rejects "wrong live count"
    { cert with Certificate.c_live = cert.Certificate.c_live - 1 }

let test_certificate_degraded_accounting () =
  (* certify a repair that dropped nothing vs. one after crashes *)
  let g = Gen.harary ~k:8 ~n:48 in
  let res = Cds_packing.pack ~seed:7 g ~k:8 in
  let per_real = Cds_packing.real_classes res in
  let victims = [ 3; 17; 29 ] in
  let live u = not (List.mem u victims) in
  let rep =
    Repair.run_centralized ~live g
      ~memberships:(fun r -> per_real.(r))
      ~classes:res.Cds_packing.classes
  in
  let memfn r = rep.Repair.r_memberships.(r) in
  let cert =
    Certificate.build ~live g ~memberships:memfn
      ~classes:res.Cds_packing.classes ~k:8
  in
  Alcotest.(check int) "cert agrees with repair on retained classes"
    (List.length rep.Repair.r_retained)
    (Certificate.retained_count cert);
  Alcotest.(check int) "live count" (48 - List.length victims)
    cert.Certificate.c_live;
  (match Certificate.check ~live g ~memberships:memfn cert with
  | Ok () -> ()
  | Error es -> Alcotest.failf "check rejected: %s" (String.concat "; " es));
  (* the degraded flag tracks retained < requested *)
  Alcotest.(check bool) "degraded iff classes were dropped"
    (rep.Repair.r_dropped <> [])
    (Certificate.degraded cert)

(* ------------------------------------------------------------------ *)
(* Repair policy end-to-end *)

let test_reliable_repair_policy_rescues () =
  (* 10 classes on a k=8 graph always fails the tester; the `Repair
     policy fixes it in-place (connectors may overlap) instead of
     burning every retry *)
  let g = Gen.harary ~k:8 ~n:48 in
  let r =
    Reliable.run_verified ~seed:7 ~max_retries:3 ~policy:`Repair g ~classes:10
      ~layers:2
  in
  Alcotest.(check bool) "verified via repair" true r.Reliable.verified;
  Alcotest.(check bool) "repair recorded" true (r.Reliable.repair <> None);
  Alcotest.(check bool) "last attempt repaired" true
    (match List.rev r.Reliable.attempts with
    | a :: _ -> a.Reliable.repaired
    | [] -> false);
  match
    Certificate.check g
      ~memberships:(fun v -> r.Reliable.memberships.(v))
      r.Reliable.certificate
  with
  | Ok () -> ()
  | Error es -> Alcotest.failf "certificate rejected: %s" (String.concat "; " es)

let test_reliable_repair_cheaper_than_retry () =
  (* same failing configuration, same seeds: the repair policy must
     verify, and in no more rounds than the retry policy burns *)
  let g = Gen.harary ~k:8 ~n:48 in
  let run policy =
    let net = vnet g in
    Reliable.run_verified_distributed ~seed:7 ~max_retries:2 ~policy net
      ~classes:10 ~layers:2
  in
  let retry = run `Retry in
  let repair = run `Repair in
  Alcotest.(check bool) "retry exhausts unverified" false
    retry.Reliable.verified;
  Alcotest.(check bool) "repair verifies" true repair.Reliable.verified;
  Alcotest.(check bool)
    (Printf.sprintf "repair rounds (%d) <= retry rounds (%d)"
       repair.Reliable.rounds_charged retry.Reliable.rounds_charged)
    true
    (repair.Reliable.rounds_charged <= retry.Reliable.rounds_charged)

let test_reliable_repair_under_storm () =
  (* a seeded crash storm mid-run: the repair policy must converge to a
     verified (possibly degraded) packing whose certificate checks out
     against the live graph *)
  let g = Gen.harary ~k:8 ~n:48 in
  let net = vnet g in
  let faults =
    Congest.Faults.create ~seed:3
      [
        Congest.Faults.Crash_storm
          { from_round = 5; per_round = 1; storm_rounds = 3; universe = 48 };
      ]
  in
  Congest.Faults.install net faults;
  let r = Reliable.pack_verified_distributed ~seed:7 ~policy:`Repair net ~k:8 in
  Alcotest.(check bool) "verified under the storm" true r.Reliable.verified;
  Alcotest.(check bool) "some nodes actually died" true
    (Congest.Faults.crashes faults > 0);
  let live u = Congest.Faults.alive faults u in
  match
    Certificate.check ~live g
      ~memberships:(fun v -> r.Reliable.memberships.(v))
      r.Reliable.certificate
  with
  | Ok () -> ()
  | Error es -> Alcotest.failf "certificate rejected: %s" (String.concat "; " es)

(* ------------------------------------------------------------------ *)
(* Distributed packing *)

let test_dist_pack_valid () =
  let g = Gen.harary ~k:9 ~n:54 in
  let net = vnet g in
  let res = Dist_packing.pack ~seed:8 net ~k:9 in
  check_packing_result g res;
  Alcotest.(check int) "all classes valid"
    res.Cds_packing.classes
    (List.length (Cds_packing.valid_classes res));
  Alcotest.(check bool) "rounds consumed" true (Congest.Net.rounds net > 0)

let test_dist_pack_merges () =
  let g = Gen.clique_path ~k:8 ~len:12 in
  let net = vnet g in
  let res = Dist_packing.run ~seed:9 ~jumpstart:1 net ~classes:8 ~layers:12 in
  let excess = res.Cds_packing.stats.Cds_packing.excess_after_layer in
  (match excess with
  | (_, m0) :: _ -> Alcotest.(check bool) "work to do" true (m0 > 0)
  | [] -> Alcotest.fail "no stats");
  Alcotest.(check int) "valid at the end" 8
    (List.length (Cds_packing.valid_classes res));
  (* the matching really is a matching: per layer, the number of matched
     type-2 nodes cannot exceed the number of matchable components
     (excess entering the layer plus one per class) *)
  List.iter
    (fun (layer, matched) ->
      let entering =
        try List.assoc (layer - 1) excess with Not_found -> max_int
      in
      if entering <> max_int then
        Alcotest.(check bool)
          (Printf.sprintf "layer %d: matched %d <= components %d" layer
             matched (entering + 8))
          true
          (matched <= entering + 8))
    res.Cds_packing.stats.Cds_packing.matched_per_layer

let test_dist_extract_trees () =
  let g = Gen.harary ~k:8 ~n:40 in
  let net = vnet g in
  let res = Dist_packing.pack ~seed:19 net ~k:8 in
  let before = Congest.Net.rounds net in
  let p = Dist_packing.extract_trees net res in
  Alcotest.(check bool) "extraction charges rounds" true
    (Congest.Net.rounds net > before);
  Alcotest.(check (list string)) "distributed extraction verifies" []
    (List.map (Format.asprintf "%a" Packing.pp_violation) (Packing.verify p));
  (* same trees as the centralized extractor would produce, class-wise *)
  let q = Tree_extract.of_cds_packing res in
  Alcotest.(check int) "same tree count" (Packing.count q) (Packing.count p)

let test_dist_pack_respects_bandwidth () =
  (* the Net would raise on any oversized message; also check the load
     counters are consistent with V-CONGEST: per-round node load is at
     most (budget words) x (max degree) *)
  let g = Gen.harary ~k:6 ~n:36 in
  let net = vnet g in
  let _ = Dist_packing.pack ~seed:10 net ~k:6 in
  let max_deg =
    let best = ref 0 in
    Graph.iter_vertices (fun v -> best := max !best (Graph.degree g v)) g;
    !best
  in
  Alcotest.(check bool) "node load bounded" true
    (Congest.Net.max_node_load net <= 8 * max_deg)

(* ------------------------------------------------------------------ *)
(* Vertex-connectivity approximation *)

let test_vc_approx_families () =
  List.iter
    (fun (g, k) ->
      let r = Vc_approx.centralized ~seed:11 g in
      let ratio = Vc_approx.approximation_ratio ~truth:k r in
      let lg = log (float_of_int (Graph.n g)) /. log 2. in
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.2f within O(log n) for k=%d" ratio k)
        true
        (ratio <= 4. *. lg))
    [
      (Gen.harary ~k:4 ~n:40, 4);
      (Gen.harary ~k:8 ~n:48, 8);
      (Gen.hypercube 5, 5);
      (Gen.clique_path ~k:6 ~len:8, 6);
    ]

let test_vc_approx_distributed () =
  let g = Gen.harary ~k:6 ~n:36 in
  let net = vnet g in
  let r = Vc_approx.distributed ~seed:12 net in
  let ratio = Vc_approx.approximation_ratio ~truth:6 r in
  Alcotest.(check bool) "distributed ratio within O(log n)" true (ratio <= 12.);
  Alcotest.(check bool) "rounds accumulated" true (Congest.Net.rounds net > 0)

(* ------------------------------------------------------------------ *)

let prop_vc_dist_close_to_central =
  QCheck.Test.make
    ~name:"distributed and centralized vc estimates agree within 4x" ~count:5
    QCheck.(int_range 3 6)
    (fun k2 ->
      let k = 2 * k2 in
      let g = Gen.harary ~k ~n:(5 * k) in
      let c = Vc_approx.centralized ~seed:k g in
      let net = vnet g in
      let d = Vc_approx.distributed ~seed:k net in
      let hi = float_of_int (max c.Vc_approx.estimate d.Vc_approx.estimate) in
      let lo = float_of_int (min c.Vc_approx.estimate d.Vc_approx.estimate) in
      hi /. Float.max 1. lo <= 4.)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "domtree"
    [
      ( "virtual_graph",
        [
          Alcotest.test_case "indexing" `Quick test_vg_indexing;
          Alcotest.test_case "ids distinct" `Quick test_vg_ids_distinct;
          Alcotest.test_case "adjacency" `Quick test_vg_adjacency;
        ] );
      ( "cds_packing",
        [
          Alcotest.test_case "valid on harary" `Quick test_pack_valid_on_harary;
          Alcotest.test_case "merges components" `Quick
            test_pack_merges_components;
          Alcotest.test_case "excess monotone" `Quick test_excess_monotone;
          Alcotest.test_case "class sizes (Lemma 4.6)" `Quick
            test_class_size_bound;
          Alcotest.test_case "round budget (Thm B.1)" `Quick
            test_dist_rounds_budget;
        ] );
      qsuite "cds_packing.props" [ prop_pack_classes_cover_all_vnodes ];
      qsuite "packing.fuzz" [ prop_verifier_catches_mutations ];
      qsuite "bridging.props" [ prop_bridging_rules_sound ];
      ( "packing",
        [
          Alcotest.test_case "extraction valid" `Quick test_extract_valid_packing;
          Alcotest.test_case "rejects cycles" `Quick test_verify_rejects_bad_tree;
          Alcotest.test_case "rejects non-dominating" `Quick
            test_verify_rejects_non_dominating;
          Alcotest.test_case "rejects overload" `Quick test_verify_rejects_overload;
          Alcotest.test_case "integral subpacking" `Quick
            test_integral_subpacking_disjoint;
          Alcotest.test_case "integral layering" `Quick test_integral_layering;
          Alcotest.test_case "layering on sparse" `Quick
            test_integral_layering_sparse_fails_gracefully;
          Alcotest.test_case "tree diameter" `Quick test_tree_diameter_bound;
          Alcotest.test_case "serialization" `Quick
            test_packing_serialization_roundtrip;
        ] );
      ( "connector",
        [
          Alcotest.test_case "validity" `Quick test_connector_validity;
          Alcotest.test_case "max disjoint on cycle" `Quick
            test_connector_max_disjoint_cycle;
          Alcotest.test_case "short path" `Quick test_connector_short_path_rule;
          Alcotest.test_case "condition (C)" `Quick test_connector_condition_c;
          Alcotest.test_case "realization (rules D/E)" `Quick
            test_connector_realization;
          Alcotest.test_case "Proposition 4.2" `Quick test_proposition_4_2;
          Alcotest.test_case "abundance (Lemma 4.3)" `Quick
            test_connector_abundance;
        ] );
      ( "bridging",
        [
          Alcotest.test_case "rules (a)(c)" `Quick test_bridging_rules;
          Alcotest.test_case "rule (b) deactivation" `Quick
            test_bridging_deactivation;
          Alcotest.test_case "no witness, no edge" `Quick
            test_bridging_no_witness_no_edge;
        ] );
      ( "cgk_baseline",
        [
          Alcotest.test_case "valid" `Quick test_cgk_baseline_valid;
          Alcotest.test_case "merges" `Quick test_cgk_baseline_merges;
        ] );
      ( "multiflood",
        [
          Alcotest.test_case "component ids" `Quick test_multiflood_component_ids;
          Alcotest.test_case "split class" `Quick test_multiflood_split_class;
          Alcotest.test_case "overlapping memberships" `Quick
            test_multiflood_overlapping_memberships;
          Alcotest.test_case "sweep payload" `Quick test_membership_sweep_payload;
        ] );
      ( "tester",
        [
          Alcotest.test_case "passes valid" `Quick test_tester_passes_valid;
          Alcotest.test_case "detects disconnect (centralized)" `Quick
            test_tester_detects_disconnected_centralized;
          Alcotest.test_case "detects disconnect (distributed)" `Quick
            test_tester_detects_disconnected_distributed;
          Alcotest.test_case "detects non-domination" `Quick
            test_tester_detects_non_domination;
          Alcotest.test_case "distance-3 detection" `Quick
            test_tester_distance3_detection;
          Alcotest.test_case "detection rate (Lemma E.1)" `Slow
            test_tester_detection_rate;
          Alcotest.test_case "no false positives" `Slow
            test_tester_no_false_positives;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "verifies first try" `Quick
            test_reliable_verifies_first_try;
          Alcotest.test_case "exhausts bounded retries" `Quick
            test_reliable_exhausts_retries;
          Alcotest.test_case "distributed charges rounds" `Quick
            test_reliable_distributed_charges_rounds;
          Alcotest.test_case "distributed backoff" `Quick
            test_reliable_distributed_backoff;
          Alcotest.test_case "max_retries = 0" `Quick
            test_reliable_max_retries_zero;
          Alcotest.test_case "all-fail keeps last packing" `Quick
            test_reliable_all_fail_keeps_last_packing;
          Alcotest.test_case "exact rounds accounting" `Quick
            test_reliable_rounds_exact_accounting;
          Alcotest.test_case "round budget truncates retries" `Quick
            test_reliable_round_budget_truncates;
          Alcotest.test_case "retry exhaustion is not budget exhaustion"
            `Quick test_reliable_retries_exhausted_is_not_budget;
          Alcotest.test_case "generous budget changes nothing" `Quick
            test_reliable_budget_allows_retries_within;
          Alcotest.test_case "repair retains nothing" `Quick
            test_reliable_repair_retains_nothing;
          Alcotest.test_case "repair policy rescues" `Quick
            test_reliable_repair_policy_rescues;
          Alcotest.test_case "repair cheaper than retry" `Quick
            test_reliable_repair_cheaper_than_retry;
          Alcotest.test_case "repair under crash storm" `Quick
            test_reliable_repair_under_storm;
        ] );
      ( "repair",
        [
          Alcotest.test_case "fixes split class" `Quick
            test_repair_fixes_split_class;
          Alcotest.test_case "distributed matches and charges" `Quick
            test_repair_distributed_matches_and_charges;
          Alcotest.test_case "healthy untouched" `Quick
            test_repair_healthy_untouched;
          Alcotest.test_case "repairs after crashes" `Quick
            test_repair_under_crashes;
          Alcotest.test_case "drops unfixable classes" `Quick
            test_repair_drops_unfixable;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "valid roundtrip" `Quick
            test_certificate_valid_roundtrip;
          Alcotest.test_case "rejects mutations" `Quick
            test_certificate_rejects_mutations;
          Alcotest.test_case "degraded accounting" `Quick
            test_certificate_degraded_accounting;
        ] );
      ( "dist_packing",
        [
          Alcotest.test_case "valid" `Quick test_dist_pack_valid;
          Alcotest.test_case "merges" `Quick test_dist_pack_merges;
          Alcotest.test_case "distributed tree extraction" `Quick
            test_dist_extract_trees;
          Alcotest.test_case "bandwidth respected" `Quick
            test_dist_pack_respects_bandwidth;
        ] );
      ( "vc_approx",
        [
          Alcotest.test_case "families" `Quick test_vc_approx_families;
          Alcotest.test_case "distributed" `Quick test_vc_approx_distributed;
        ] );
      qsuite "vc_approx.props" [ prop_vc_dist_close_to_central ];
    ]
