(* Tests for the hardened decomposition service (lib/serve): framing,
   codecs, admission queue, degradation store, worker robustness, and
   an end-to-end daemon exercising all four robustness paths — load
   shedding, crash containment, stale-certificate degradation, and
   malformed-frame rejection — plus the clean drain protocol. *)

module Framing = Serve.Framing
module P = Serve.Protocol
module Queue = Serve.Queue
module Degrade = Serve.Degrade
module Worker = Serve.Worker
module Server = Serve.Server
module Journal = Serve.Journal
module Supervisor = Serve.Supervisor
module Gen = Graphs.Gen

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_crc32_vector () =
  (* the standard IEEE 802.3 check value *)
  Alcotest.(check int) "crc32(\"123456789\")" 0xCBF43926
    (Framing.crc32 "123456789");
  Alcotest.(check int) "crc32(\"\") is zero" 0 (Framing.crc32 "")

let feed frame ~len = Framing.try_decode (Bytes.of_string frame) ~len

let test_framing_roundtrip () =
  let payload = "hello, decomposition" in
  let frame = Framing.encode payload in
  Alcotest.(check int) "framed length"
    (String.length payload + Framing.overhead)
    (String.length frame);
  match feed frame ~len:(String.length frame) with
  | `Frame (p, consumed) ->
    Alcotest.(check string) "payload survives" payload p;
    Alcotest.(check int) "whole frame consumed" (String.length frame) consumed
  | `Need_more -> Alcotest.fail "decoder wanted more of a complete frame"
  | `Error m -> Alcotest.fail ("decoder rejected a valid frame: " ^ m)

let test_framing_partial_feed () =
  (* every strict prefix must come back Need_more, never Error *)
  let frame = Framing.encode "partial" in
  for len = 0 to String.length frame - 1 do
    match feed frame ~len with
    | `Need_more -> ()
    | `Frame _ -> Alcotest.fail "frame produced from a strict prefix"
    | `Error m ->
      Alcotest.fail (Printf.sprintf "prefix of %d bytes rejected: %s" len m)
  done

let test_framing_corrupt_crc () =
  let frame = Bytes.of_string (Framing.encode "checksummed") in
  (* flip one payload bit: the stored CRC no longer matches *)
  Bytes.set frame 6 (Char.chr (Char.code (Bytes.get frame 6) lxor 1));
  match Framing.try_decode frame ~len:(Bytes.length frame) with
  | `Error m ->
    Alcotest.(check bool) "mentions CRC" true
      (String.length m >= 3 && String.uppercase_ascii m <> m)
  | `Frame _ -> Alcotest.fail "corrupt frame accepted"
  | `Need_more -> Alcotest.fail "corrupt frame asked for more bytes"

let test_framing_bad_version () =
  let frame = Bytes.of_string (Framing.encode "v?") in
  Bytes.set frame 0 (Char.chr (Framing.version + 1));
  (match Framing.try_decode frame ~len:(Bytes.length frame) with
  | `Error _ -> ()
  | _ -> Alcotest.fail "wrong version accepted");
  (* version is checked on the very first byte — a bad stream is
     rejected before any length is trusted *)
  match Framing.try_decode frame ~len:1 with
  | `Error _ -> ()
  | _ -> Alcotest.fail "wrong version not rejected from one byte"

let test_framing_oversize_rejected () =
  (* a forged length field beyond the cap must be rejected from the
     5-byte header alone, before any allocation *)
  let b = Bytes.create 5 in
  Bytes.set b 0 (Char.chr Framing.version);
  Bytes.set_int32_be b 1 1_000_000l;
  match Framing.try_decode ~max_len:1024 b ~len:5 with
  | `Error _ -> ()
  | `Need_more -> Alcotest.fail "oversize length stalled instead of erroring"
  | `Frame _ -> Alcotest.fail "oversize frame accepted"

(* ------------------------------------------------------------------ *)
(* Protocol codecs *)

let sample_requests =
  [
    P.Decompose
      {
        (P.default_decompose ~gen:"harary:k=4,n=32") with
        P.seed = 9;
        k = 4;
        policy = `Repair;
        distributed = true;
        deadline_ms = 250;
        fail_p = 0.125;
        storm = "2:3:4";
      };
    P.Verify (P.default_decompose ~gen:"grid:rows=4,cols=4");
    P.Certificate { gen = "harary:k=4,n=32" };
    P.Health;
    P.Drain;
    P.Crash_test;
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match P.decode_request (P.encode_request req) with
      | Ok req' ->
        Alcotest.(check bool) "request survives the codec" true (req = req')
      | Error m -> Alcotest.fail ("request failed to decode: " ^ m))
    sample_requests

let sample_cert () =
  let g = Gen.harary ~k:4 ~n:32 in
  let r = Domtree.Reliable.run_verified ~seed:3 g ~classes:2 ~layers:2 in
  r.Domtree.Reliable.certificate

let sample_responses cert =
  [
    P.Result
      {
        P.digest = "abc123";
        verified = true;
        degraded = false;
        stale = false;
        budget_exhausted = true;
        classes_requested = 4;
        classes_retained = 3;
        rounds_charged = 512;
        attempts = 2;
      };
    P.Cert { P.c_digest = "abc123"; c_stale = true; c_cert = cert };
    P.Health_report
      {
        P.h_uptime_ms = 12;
        h_served = 34;
        h_fresh = 30;
        h_stale = 2;
        h_shed = 1;
        h_errors = 1;
        h_queue_depth = 5;
        h_queue_capacity = 64;
        h_draining = true;
        h_cached_certs = 7;
        h_replayed = 3;
        h_journal_bytes = 4096;
        h_journal_segments = 2;
      };
    P.Drained { served = 99 };
    P.Error (P.Overloaded, "queue full");
    P.Error (P.Bad_request, "");
  ]

let test_response_roundtrip () =
  let cert = sample_cert () in
  List.iter
    (fun resp ->
      match P.decode_response (P.encode_response resp) with
      | Ok resp' ->
        Alcotest.(check bool) "response survives the codec" true (resp = resp')
      | Error m -> Alcotest.fail ("response failed to decode: " ^ m))
    (sample_responses cert)

let test_certificate_codec () =
  let cert = sample_cert () in
  match P.decode_certificate (P.encode_certificate cert) with
  | Ok cert' ->
    Alcotest.(check bool) "certificate survives the codec" true (cert = cert')
  | Error m -> Alcotest.fail ("certificate failed to decode: " ^ m)

let test_decoder_rejects_garbage () =
  (* trailing garbage, truncation, and random bytes must all come back
     Error — never an exception, never a bogus Ok *)
  let enc = P.encode_request (List.hd sample_requests) in
  (match P.decode_request (enc ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  for len = 0 to String.length enc - 1 do
    match P.decode_request (String.sub enc 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncation to %d accepted" len)
  done;
  match P.decode_response "\xff\xfe\xfd" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "random bytes decoded as a response"

(* ------------------------------------------------------------------ *)
(* Bounded queue *)

let test_queue_fifo_and_shed () =
  let q = Queue.create ~capacity:2 in
  Alcotest.(check bool) "empty at birth" true (Queue.is_empty q);
  Alcotest.(check int) "capacity" 2 (Queue.capacity q);
  Alcotest.(check bool) "push 1" true (Queue.push q 1);
  Alcotest.(check bool) "push 2" true (Queue.push q 2);
  Alcotest.(check bool) "push 3 shed at capacity" false (Queue.push q 3);
  Alcotest.(check int) "depth stays at capacity" 2 (Queue.depth q);
  Alcotest.(check (option int)) "FIFO pop" (Some 1) (Queue.pop q);
  (* a pop frees a slot: admission works again *)
  Alcotest.(check bool) "push after pop" true (Queue.push q 4);
  Alcotest.(check (option int)) "then 2" (Some 2) (Queue.pop q);
  Alcotest.(check (option int)) "then 4" (Some 4) (Queue.pop q);
  Alcotest.(check (option int)) "empty pops None" None (Queue.pop q)

(* ------------------------------------------------------------------ *)
(* Degradation store *)

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let test_degrade_memory_and_disk () =
  with_tmp_dir @@ fun dir ->
  let cert = sample_cert () in
  let disk = Exec.Cache.open_dir dir in
  let d = Degrade.create ~disk () in
  Alcotest.(check bool) "cold lookup misses" true
    (Degrade.lookup d ~digest:"g1" = None);
  Alcotest.(check bool) "record keeps a first certificate" true
    (Degrade.record d ~digest:"g1" cert);
  (match Degrade.lookup d ~digest:"g1" with
  | Some { Degrade.cert = c; fresh } ->
    Alcotest.(check bool) "same certificate" true (c = cert);
    Alcotest.(check bool) "this process's cert is fresh" true fresh
  | None -> Alcotest.fail "recorded certificate not found");
  Alcotest.(check int) "one digest cached" 1 (Degrade.count d);
  (* a new store over the same disk simulates a daemon restart: the
     certificate survives, but is no longer fresh *)
  let d' = Degrade.create ~disk:(Exec.Cache.open_dir dir) () in
  (match Degrade.lookup d' ~digest:"g1" with
  | Some { Degrade.cert = c; fresh } ->
    Alcotest.(check bool) "certificate survived the restart" true (c = cert);
    Alcotest.(check bool) "disk replays are not fresh" false fresh
  | None -> Alcotest.fail "certificate lost across restart");
  (* without disk, nothing survives *)
  let d'' = Degrade.create () in
  Alcotest.(check bool) "memory-only store starts empty" true
    (Degrade.lookup d'' ~digest:"g1" = None)

let test_degrade_record_is_monotone () =
  (* a verified-but-weaker certificate (here: every class lost to a
     total blackout) must not clobber the stronger one already held *)
  let g = Gen.harary ~k:4 ~n:32 in
  let r = Domtree.Reliable.run_verified ~seed:3 g ~classes:2 ~layers:2 in
  let strong = r.Domtree.Reliable.certificate in
  let weak =
    Domtree.Certificate.build
      ~live:(fun _ -> false)
      g
      ~memberships:(fun v -> r.Domtree.Reliable.memberships.(v))
      ~classes:2 ~k:4
  in
  Alcotest.(check bool) "weak really is weaker" true
    (Domtree.Certificate.retained_count weak
    < Domtree.Certificate.retained_count strong);
  let d = Degrade.create () in
  Alcotest.(check bool) "strong kept" true (Degrade.record d ~digest:"g" strong);
  Alcotest.(check bool) "weak rejected (signals no journal write)" false
    (Degrade.record d ~digest:"g" weak);
  (match Degrade.lookup d ~digest:"g" with
  | Some { Degrade.cert; _ } ->
    Alcotest.(check bool) "strong survives a weak record" true (cert = strong)
  | None -> Alcotest.fail "certificate vanished");
  (* the weak certificate is still better than nothing on a fresh
     digest, and a strong record upgrades it *)
  Alcotest.(check bool) "weak kept on fresh digest" true
    (Degrade.record d ~digest:"g2" weak);
  Alcotest.(check bool) "strong upgrade kept" true
    (Degrade.record d ~digest:"g2" strong);
  match Degrade.lookup d ~digest:"g2" with
  | Some { Degrade.cert; _ } ->
    Alcotest.(check bool) "strong upgrades weak" true (cert = strong)
  | None -> Alcotest.fail "certificate vanished"

(* ------------------------------------------------------------------ *)
(* Worker: one request in, one structured response out — always *)

let worker () = Worker.create Worker.default_config
let gen = "harary:k=4,n=32"
let now = Worker.now_ms

let expect_error kind = function
  | P.Error (k, _) when k = kind -> ()
  | resp ->
    Alcotest.failf "wanted %s, got: %a"
      (P.error_kind_to_string kind)
      P.pp_response resp

let test_worker_bad_requests () =
  let w = worker () in
  let d = P.default_decompose ~gen in
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ())
       (P.Decompose { d with P.gen = "no-such-generator:x=1" }));
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ())
       (P.Decompose { d with P.fail_p = 1.5 }));
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ())
       (* fault injection without distributed mode is meaningless *)
       (P.Decompose { d with P.fail_p = 0.1 }));
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ())
       (P.Decompose { d with P.distributed = true; storm = "nonsense" }));
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ()) (P.Decompose { d with P.k = -1 }));
  (* control ops never reach the worker in a healthy daemon *)
  expect_error P.Bad_request (Worker.handle w ~enqueued_at_ms:(now ()) P.Health);
  expect_error P.Bad_request (Worker.handle w ~enqueued_at_ms:(now ()) P.Drain)

let test_worker_crash_contained () =
  let w = worker () in
  expect_error P.Internal_error
    (Worker.handle w ~enqueued_at_ms:(now ()) P.Crash_test);
  (* the worker is not poisoned: a normal request still computes *)
  match
    Worker.handle w ~enqueued_at_ms:(now ())
      (P.Decompose { (P.default_decompose ~gen) with P.k = 4 })
  with
  | P.Result r -> Alcotest.(check bool) "verified after crash" true r.P.verified
  | resp -> Alcotest.failf "wanted a result, got: %a" P.pp_response resp

let test_worker_memoizes () =
  let w = worker () in
  let req = P.Decompose { (P.default_decompose ~gen) with P.k = 4 } in
  let r1 = Worker.handle w ~enqueued_at_ms:(now ()) req in
  let t0 = now () in
  let r2 = Worker.handle w ~enqueued_at_ms:(now ()) req in
  let dt = now () -. t0 in
  Alcotest.(check bool) "memo hit is identical" true (r1 = r2);
  Alcotest.(check bool) "memo hit is instant (<50ms)" true (dt < 50.)

let test_worker_deadline_degrades_to_stale () =
  let w = worker () in
  let d = { (P.default_decompose ~gen) with P.k = 4 } in
  (* nothing cached yet: an expired-in-queue deadline is a hard error *)
  expect_error P.Deadline_exceeded
    (Worker.handle w
       ~enqueued_at_ms:(now () -. 10_000.)
       (P.Decompose { d with P.seed = 1 }));
  (* prime the last-good store with a verified run, then expire again:
     the daemon now degrades to the stale certificate instead *)
  (match Worker.handle w ~enqueued_at_ms:(now ()) (P.Decompose d) with
  | P.Result r -> Alcotest.(check bool) "priming verified" true r.P.verified
  | resp -> Alcotest.failf "priming failed: %a" P.pp_response resp);
  match
    Worker.handle w
      ~enqueued_at_ms:(now () -. 10_000.)
      (P.Decompose { d with P.seed = 2 })
  with
  | P.Cert c ->
    Alcotest.(check bool) "served stale" true c.P.c_stale;
    Alcotest.(check bool) "the certificate is machine-checkable" true
      (Domtree.Certificate.degraded c.P.c_cert = false)
  | resp -> Alcotest.failf "wanted a stale certificate, got: %a" P.pp_response resp

let test_worker_certificate_lookup () =
  let w = worker () in
  expect_error P.Not_found
    (Worker.handle w ~enqueued_at_ms:(now ()) (P.Certificate { gen }));
  (match
     Worker.handle w ~enqueued_at_ms:(now ())
       (P.Decompose { (P.default_decompose ~gen) with P.k = 4 })
   with
  | P.Result _ -> ()
  | resp -> Alcotest.failf "decompose failed: %a" P.pp_response resp);
  match Worker.handle w ~enqueued_at_ms:(now ()) (P.Certificate { gen }) with
  | P.Cert c ->
    Alcotest.(check bool) "this process's certificate is not stale" false
      c.P.c_stale
  | resp -> Alcotest.failf "wanted a certificate, got: %a" P.pp_response resp

let test_worker_chaos_survives () =
  (* distributed request under heavy fault injection: whatever comes
     back must be a structured frame — degraded results, stale certs
     and structured errors are all acceptable; an exception is not *)
  let w = worker () in
  for seed = 1 to 5 do
    let req =
      P.Decompose
        {
          (P.default_decompose ~gen) with
          P.k = 4;
          seed;
          distributed = true;
          fail_p = 0.4;
          storm = "2:4:4";
          deadline_ms = 50;
        }
    in
    match Worker.handle w ~enqueued_at_ms:(now ()) req with
    | P.Result _ | P.Cert _ | P.Error ((P.Deadline_exceeded | P.Internal_error), _)
      ->
      ()
    | resp -> Alcotest.failf "unexpected chaos response: %a" P.pp_response resp
  done

(* ------------------------------------------------------------------ *)
(* End-to-end daemon: all four robustness paths over one socket *)

let with_daemon ?(queue_capacity = 4) ?state_dir ?idle_timeout_ms f =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-test-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let cfg = Server.default_config ~socket_path:socket in
  let cfg =
    {
      cfg with
      Server.queue_capacity;
      state_dir;
      idle_timeout_ms =
        Option.value idle_timeout_ms ~default:cfg.Server.idle_timeout_ms;
    }
  in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      (* drain if the test has not already; never leave the domain
         running *)
      (try
         let cl = Server.Client.connect socket in
         ignore (Server.Client.request cl P.Drain);
         Server.Client.close cl
       with _ -> ());
      Domain.join daemon)
    (fun () -> f socket)

let request_ok cl req =
  match Server.Client.request cl req with
  | Ok resp -> resp
  | Error m -> Alcotest.fail ("transport error: " ^ m)

let test_daemon_end_to_end () =
  with_daemon @@ fun socket ->
  let cl = Server.Client.connect socket in
  (* 0. liveness *)
  (match request_ok cl P.Health with
  | P.Health_report h ->
    Alcotest.(check int) "nothing served yet" 0 h.P.h_served
  | resp -> Alcotest.failf "health broke: %a" P.pp_response resp);
  (* 1. crash containment: the worker dies, the daemon does not *)
  (match request_ok cl P.Crash_test with
  | P.Error (P.Internal_error, _) -> ()
  | resp -> Alcotest.failf "crash not contained: %a" P.pp_response resp);
  (* 2. a verified decomposition primes the last-good store *)
  let d = { (P.default_decompose ~gen) with P.k = 4 } in
  (match request_ok cl (P.Decompose d) with
  | P.Result r -> Alcotest.(check bool) "verified" true r.P.verified
  | resp -> Alcotest.failf "decompose broke: %a" P.pp_response resp);
  (* 3. stale degradation: chaos + a 1ms deadline on the same graph *)
  let chaos_seen = ref false in
  for seed = 10 to 19 do
    match
      request_ok cl
        (P.Decompose
           {
             d with
             P.seed;
             distributed = true;
             fail_p = 0.45;
             storm = "1:8:8";
             deadline_ms = 1;
           })
    with
    | P.Cert { P.c_stale = true; _ } -> chaos_seen := true
    | P.Result { P.verified = false; _ } | P.Result { P.degraded = true; _ } ->
      chaos_seen := true
    | P.Result _ | P.Error ((P.Deadline_exceeded | P.Internal_error), _) -> ()
    | resp -> Alcotest.failf "chaos leaked: %a" P.pp_response resp
  done;
  Alcotest.(check bool) "chaos produced degraded service, not death" true
    !chaos_seen;
  (* 4. load shedding: pipeline far more than queue + loop can admit.
     Sheds are load-dependent, so only assert the daemon answered every
     single frame with a structured response *)
  let burst = 64 in
  for seed = 100 to 100 + burst - 1 do
    Server.Client.send cl (P.Decompose { d with P.seed })
  done;
  let answered = ref 0 in
  for _ = 1 to burst do
    match Server.Client.recv cl with
    | Ok (P.Result _ | P.Cert _ | P.Error _) -> incr answered
    | Ok resp -> Alcotest.failf "burst surprise: %a" P.pp_response resp
    | Error m -> Alcotest.fail ("burst transport error: " ^ m)
  done;
  Alcotest.(check int) "every burst frame answered" burst !answered;
  (* 5. malformed frame: one structured error, that connection dies,
     the daemon lives *)
  let bad = Server.Client.connect socket in
  Server.Client.send_raw bad "this is definitely not a frame";
  (match Server.Client.recv bad with
  | Ok (P.Error (P.Bad_request, _)) -> ()
  | Ok resp -> Alcotest.failf "malformed frame got: %a" P.pp_response resp
  | Error m -> Alcotest.fail ("malformed frame transport error: " ^ m));
  (match Server.Client.recv bad with
  | Error _ -> () (* connection closed: the stream cannot be resynced *)
  | Ok resp -> Alcotest.failf "poisoned stream answered: %a" P.pp_response resp);
  Server.Client.close bad;
  (* the original connection and a fresh one both still work *)
  (match request_ok cl P.Health with
  | P.Health_report h ->
    Alcotest.(check bool) "served counts grew" true (h.P.h_served > 0);
    Alcotest.(check bool) "errors were accounted" true (h.P.h_errors > 0)
  | resp -> Alcotest.failf "health after abuse: %a" P.pp_response resp);
  Server.Client.close cl;
  let cl2 = Server.Client.connect socket in
  (* 6. clean drain: structured goodbye, then the socket disappears *)
  (match request_ok cl2 P.Drain with
  | P.Drained { served } ->
    Alcotest.(check bool) "drain reports the served total" true (served > 0)
  | resp -> Alcotest.failf "drain broke: %a" P.pp_response resp);
  Server.Client.close cl2

let test_daemon_sheds_under_tiny_queue () =
  (* deterministic shedding: capacity 1 and a burst of slow distinct
     requests must produce at least one Overloaded *)
  with_daemon ~queue_capacity:1 @@ fun socket ->
  let cl = Server.Client.connect socket in
  let d = { (P.default_decompose ~gen:"harary:k=6,n=96") with P.k = 6 } in
  let burst = 32 in
  for seed = 1 to burst do
    Server.Client.send cl (P.Decompose { d with P.seed })
  done;
  let shed = ref 0 and okay = ref 0 in
  for _ = 1 to burst do
    match Server.Client.recv cl with
    | Ok (P.Error (P.Overloaded, _)) -> incr shed
    | Ok (P.Result _) -> incr okay
    | Ok resp -> Alcotest.failf "burst surprise: %a" P.pp_response resp
    | Error m -> Alcotest.fail ("transport error: " ^ m)
  done;
  Alcotest.(check int) "every frame answered" burst (!shed + !okay);
  Alcotest.(check bool) "some requests were shed" true (!shed > 0);
  Alcotest.(check bool) "some requests were served" true (!okay > 0);
  Server.Client.close cl

(* ------------------------------------------------------------------ *)
(* Framing under adversarial byte boundaries: however a stream of
   concatenated frames is split and coalesced by the transport, an
   incremental reader must recover exactly the original payloads *)

let prop_framing_adversarial_boundaries =
  QCheck.Test.make
    ~name:"any chunking of a frame stream decodes to the same payloads"
    ~count:100
    QCheck.(
      pair
        (list_of_size
           (QCheck.Gen.int_range 0 8)
           (string_of_size (QCheck.Gen.int_range 0 64)))
        small_int)
    (fun (payloads, seed) ->
      let stream = String.concat "" (List.map Framing.encode payloads) in
      let rng = Random.State.make [| seed |] in
      let pending = Buffer.create 256 in
      let decoded = ref [] in
      let drain () =
        let b = Buffer.to_bytes pending in
        let len = Bytes.length b in
        let pos = ref 0 in
        let continue = ref true in
        while !continue do
          match Framing.try_decode ~pos:!pos b ~len with
          | `Frame (p, consumed) ->
            decoded := p :: !decoded;
            pos := !pos + consumed
          | `Need_more -> continue := false
          | `Error m -> Alcotest.fail ("valid stream rejected: " ^ m)
        done;
        Buffer.clear pending;
        Buffer.add_subbytes pending b !pos (len - !pos)
      in
      let i = ref 0 in
      let n = String.length stream in
      while !i < n do
        let chunk = min (1 + Random.State.int rng 7) (n - !i) in
        Buffer.add_substring pending stream !i chunk;
        i := !i + chunk;
        drain ()
      done;
      List.rev !decoded = payloads && Buffer.length pending = 0)

(* ------------------------------------------------------------------ *)
(* Journal: the write-ahead log behind crash-only restarts *)

let test_journal_record_codec () =
  let cert = sample_cert () in
  List.iter
    (fun r ->
      match Journal.decode_record (Journal.encode_record r) with
      | Ok r' ->
        Alcotest.(check bool) "record survives the codec" true (r = r')
      | Error m -> Alcotest.fail ("record failed to decode: " ^ m))
    [
      Journal.Meta { gen = 7 };
      Journal.Graph { spec = "harary:k=4,n=32" };
      Journal.Accept { req = P.encode_request P.Health };
      Journal.Promote { digest = "abc123"; cert };
    ];
  (match Journal.decode_record "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty record accepted");
  match Journal.decode_record "\xff\x00\x01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag accepted"

let journal_graphs n = List.init n (fun i -> Printf.sprintf "g-%d" i)

let test_journal_append_and_reopen () =
  with_tmp_dir @@ fun dir ->
  let cert = sample_cert () in
  let records =
    List.map (fun s -> Journal.Graph { spec = s }) (journal_graphs 3)
    @ [
        Journal.Accept { req = P.encode_request P.Health };
        Journal.Promote { digest = "d1"; cert };
        (* duplicate graph: replay must dedup it *)
        Journal.Graph { spec = "g-0" };
      ]
  in
  let t, r0 = Journal.open_dir dir in
  Alcotest.(check int) "fresh dir replays nothing" 0 r0.Journal.r_records;
  List.iter (Journal.append t) records;
  Journal.sync t;
  Journal.close t;
  let t2, r = Journal.open_dir dir in
  Journal.close t2;
  let expected = Journal.replay_records records in
  Alcotest.(check int) "every record replayed" expected.Journal.r_records
    r.Journal.r_records;
  Alcotest.(check (list string)) "graphs deduped in first-seen order"
    expected.Journal.r_graphs r.Journal.r_graphs;
  Alcotest.(check int) "accepts counted" 1 r.Journal.r_accepted;
  Alcotest.(check bool) "the promoted certificate replays intact" true
    (r.Journal.r_certs = [ ("d1", cert) ]);
  Alcotest.(check int) "nothing torn" 0 r.Journal.r_torn_bytes

let live_segment dir = Filename.concat dir "journal-000000000.wal"

let test_journal_torn_tail_truncated () =
  with_tmp_dir @@ fun dir ->
  let t, _ = Journal.open_dir dir in
  List.iter
    (fun s -> Journal.append t (Journal.Graph { spec = s }))
    (journal_graphs 3);
  Journal.sync t;
  Journal.close t;
  (* a kill -9 mid-write leaves a partial frame at the tail *)
  let torn_frame =
    Framing.encode (Journal.encode_record (Journal.Graph { spec = "torn" }))
  in
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (live_segment dir)
  in
  output_string oc (String.sub torn_frame 0 7);
  close_out oc;
  let t2, r = Journal.open_dir dir in
  Alcotest.(check int) "synced records all survive" 3 r.Journal.r_records;
  Alcotest.(check int) "the torn tail is measured" 7 r.Journal.r_torn_bytes;
  Alcotest.(check int) "torn is not corrupt" 0 r.Journal.r_corrupt_frames;
  (* the tail was physically cut: the next append extends a valid
     stream *)
  Journal.append t2 (Journal.Graph { spec = "after-the-tear" });
  Journal.sync t2;
  Journal.close t2;
  let t3, r' = Journal.open_dir dir in
  Journal.close t3;
  Alcotest.(check int) "append after truncation replays cleanly" 4
    r'.Journal.r_records;
  Alcotest.(check int) "no residual tear" 0 r'.Journal.r_torn_bytes;
  Alcotest.(check (list string)) "order preserved"
    (journal_graphs 3 @ [ "after-the-tear" ])
    r'.Journal.r_graphs

let test_journal_bit_flip_detected () =
  with_tmp_dir @@ fun dir ->
  let t, _ = Journal.open_dir dir in
  let sizes =
    List.map
      (fun s ->
        Journal.append t (Journal.Graph { spec = s });
        Journal.sync t;
        (Unix.stat (live_segment dir)).Unix.st_size)
      (journal_graphs 5)
  in
  Journal.close t;
  (* flip one payload byte of the third frame: its CRC no longer
     matches, and frames cannot be resynchronized past it *)
  let boundary = List.nth sizes 1 in
  let fd = Unix.openfile (live_segment dir) [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (boundary + 5) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
  ignore (Unix.lseek fd (boundary + 5) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let t2, r = Journal.open_dir dir in
  Alcotest.(check int) "records before the flip survive" 2
    r.Journal.r_records;
  Alcotest.(check int) "corruption is reported, not ignored" 1
    r.Journal.r_corrupt_frames;
  Alcotest.(check bool) "poisoned bytes are discarded" true
    (r.Journal.r_torn_bytes > 0);
  (* the journal stays writable: crash-only recovery truncated the
     poisoned region *)
  Journal.append t2 (Journal.Graph { spec = "after-the-flip" });
  Journal.sync t2;
  Journal.close t2;
  let t3, r' = Journal.open_dir dir in
  Journal.close t3;
  Alcotest.(check (list string)) "recovered stream is clean"
    [ "g-0"; "g-1"; "after-the-flip" ]
    r'.Journal.r_graphs;
  Alcotest.(check int) "no residual corruption" 0 r'.Journal.r_corrupt_frames

let test_journal_snapshot_rotation () =
  with_tmp_dir @@ fun dir ->
  let cert = sample_cert () in
  let t, _ = Journal.open_dir dir in
  List.iter
    (fun s -> Journal.append t (Journal.Graph { spec = s }))
    (journal_graphs 4);
  Journal.append t (Journal.Promote { digest = "d1"; cert });
  Journal.sync t;
  Alcotest.(check int) "appends counted" 5 (Journal.appended_since_snapshot t);
  (* compaction: the snapshot replaces the whole history *)
  Journal.snapshot t
    [ Journal.Graph { spec = "g-0" }; Journal.Promote { digest = "d1"; cert } ];
  Alcotest.(check int) "rotation resets the counter" 0
    (Journal.appended_since_snapshot t);
  Alcotest.(check bool) "compacted segment deleted" false
    (Sys.file_exists (live_segment dir));
  Alcotest.(check bool) "snapshot materialized" true
    (Sys.file_exists (Filename.concat dir "snapshot.bin"));
  Journal.append t (Journal.Graph { spec = "post-snapshot" });
  Journal.sync t;
  Journal.close t;
  let t2, r = Journal.open_dir dir in
  Journal.close t2;
  Alcotest.(check int) "snapshot generation advanced" 1
    r.Journal.r_snapshot_gen;
  Alcotest.(check (list string)) "snapshot + live segment replay"
    [ "g-0"; "post-snapshot" ] r.Journal.r_graphs;
  Alcotest.(check bool) "certificate compacted into the snapshot" true
    (r.Journal.r_certs = [ ("d1", cert) ])

(* The acceptance property: kill -9 at an arbitrary byte offset loses
   nothing that was synced and replays a clean prefix of history. Each
   record is synced individually so every frame boundary is a possible
   kill point. *)
let prop_journal_random_kill_point =
  QCheck.Test.make
    ~name:"kill -9 at any offset: synced prefix survives, tail is torn"
    ~count:60
    QCheck.(pair (int_range 1 40) small_int)
    (fun (n, cut_salt) ->
      with_tmp_dir @@ fun dir ->
      let records =
        List.init n (fun i ->
            if i mod 3 = 2 then
              Journal.Accept { req = Printf.sprintf "req-%d" i }
            else Journal.Graph { spec = Printf.sprintf "graph-%d" i })
      in
      let t, _ = Journal.open_dir dir in
      let seg = live_segment dir in
      let sizes =
        List.map
          (fun r ->
            Journal.append t r;
            Journal.sync t;
            (Unix.stat seg).Unix.st_size)
          records
      in
      Journal.close t;
      let total = (Unix.stat seg).Unix.st_size in
      let cut = cut_salt mod (total + 1) in
      Unix.truncate seg cut;
      let t2, r = Journal.open_dir dir in
      Journal.close t2;
      (* exactly the records whose sync completed inside the surviving
         prefix replay; a mid-frame cut is torn, never misread *)
      let durable = List.length (List.filter (fun s -> s <= cut) sizes) in
      let expected =
        Journal.replay_records
          (List.filteri (fun i _ -> i < durable) records)
      in
      r.Journal.r_records = durable
      && r.Journal.r_graphs = expected.Journal.r_graphs
      && r.Journal.r_accepted = expected.Journal.r_accepted
      && r.Journal.r_corrupt_frames = 0)

(* ------------------------------------------------------------------ *)
(* Daemon crash-only behaviors over a real socket *)

let test_daemon_warm_restart () =
  with_tmp_dir @@ fun dir ->
  (* first life: resolve a graph and promote a certificate *)
  with_daemon ~state_dir:dir (fun socket ->
      let cl = Server.Client.connect socket in
      (match
         request_ok cl (P.Decompose { (P.default_decompose ~gen) with P.k = 4 })
       with
      | P.Result r -> Alcotest.(check bool) "verified" true r.P.verified
      | resp -> Alcotest.failf "decompose broke: %a" P.pp_response resp);
      Server.Client.close cl);
  (* second life over the same state directory: the journal replays
     into warm state before the socket opens *)
  with_daemon ~state_dir:dir (fun socket ->
      let cl = Server.Client.connect socket in
      (match request_ok cl P.Health with
      | P.Health_report h ->
        Alcotest.(check bool) "journal replayed into warm state" true
          (h.P.h_replayed > 0)
      | resp -> Alcotest.failf "health broke: %a" P.pp_response resp);
      (match request_ok cl (P.Certificate { gen }) with
      | P.Cert c ->
        Alcotest.(check bool) "replayed certificate is stale" true c.P.c_stale;
        Alcotest.(check bool) "and machine-checkable" false
          (Domtree.Certificate.degraded c.P.c_cert)
      | resp ->
        Alcotest.failf "wanted the replayed certificate, got: %a" P.pp_response
          resp);
      Server.Client.close cl)

let test_daemon_drops_stalled_conn () =
  with_daemon ~idle_timeout_ms:150 @@ fun socket ->
  (* a dribbling client: three bytes of a valid frame, then silence *)
  let dribble = Server.Client.connect ~timeout_s:5. socket in
  let frame = Framing.encode (P.encode_request P.Health) in
  Server.Client.send_raw dribble (String.sub frame 0 3);
  (* a fast client keeps working well past the dribbler's deadline *)
  let cl = Server.Client.connect socket in
  let deadline = Unix.gettimeofday () +. 0.6 in
  while Unix.gettimeofday () < deadline do
    (match request_ok cl P.Health with
    | P.Health_report _ -> ()
    | resp -> Alcotest.failf "health under dribble: %a" P.pp_response resp);
    Unix.sleepf 0.02
  done;
  (* the stalled connection got one structured complaint and was
     dropped; an idle-but-empty connection would have been spared *)
  (match Server.Client.recv dribble with
  | Ok (P.Error (P.Bad_request, m)) ->
    Alcotest.(check bool) "the error names the stall" true
      (String.length m > 0)
  | Ok resp -> Alcotest.failf "stalled conn answered: %a" P.pp_response resp
  | Error m -> Alcotest.fail ("stalled conn transport error: " ^ m));
  (match Server.Client.recv dribble with
  | Error _ -> ()
  | Ok resp -> Alcotest.failf "dead conn answered: %a" P.pp_response resp);
  Server.Client.close dribble;
  (match request_ok cl P.Health with
  | P.Health_report _ -> ()
  | resp -> Alcotest.failf "fast client collateral: %a" P.pp_response resp);
  Server.Client.close cl

let test_accept_error_action () =
  Alcotest.(check bool) "EMFILE pauses the listener" true
    (Server.accept_error_action Unix.EMFILE = `Pause);
  Alcotest.(check bool) "ENFILE pauses the listener" true
    (Server.accept_error_action Unix.ENFILE = `Pause);
  List.iter
    (fun e ->
      Alcotest.(check bool) "transient accept noise retries" true
        (Server.accept_error_action e = `Retry))
    [ Unix.EINTR; Unix.ECONNABORTED; Unix.ECONNRESET; Unix.EAGAIN ]

(* ------------------------------------------------------------------ *)
(* Supervisor: restart policy without a real daemon underneath *)

let sup_cfg =
  {
    Supervisor.max_crashes = 3;
    window_s = 60.;
    backoff0_ms = 1.;
    backoff_max_ms = 4.;
    stable_s = 5.;
    ready_timeout_s = 2.;
    probe_interval_ms = 2.;
  }

let test_supervisor_clean_exit () =
  match
    Supervisor.supervise sup_cfg
      ~spawn:(fun () -> ())
      ~probe:(fun () -> false)
  with
  | Supervisor.Clean_exit { restarts } ->
    Alcotest.(check int) "no restarts for a clean child" 0 restarts
  | Supervisor.Crash_loop _ ->
    Alcotest.fail "clean exit reported as a crash loop"

let test_supervisor_crash_loop_opens_circuit () =
  let events = ref [] in
  match
    Supervisor.supervise
      ~on_event:(fun e -> events := e :: !events)
      sup_cfg
      ~spawn:(fun () -> failwith "always crashing")
      ~probe:(fun () -> false)
  with
  | Supervisor.Crash_loop { crashes } ->
    Alcotest.(check bool) "breaker opened past the budget" true (crashes > 3);
    Alcotest.(check bool) "backoff ladder was climbed" true
      (List.exists
         (function Supervisor.Backoff _ -> true | _ -> false)
         !events);
    Alcotest.(check bool) "circuit-open event emitted" true
      (List.exists
         (function Supervisor.Circuit_open _ -> true | _ -> false)
         !events)
  | Supervisor.Clean_exit _ ->
    Alcotest.fail "a child that always crashes reported clean"

let test_supervisor_flaky_child_heals () =
  with_tmp_dir @@ fun dir ->
  (* the child is a forked process: the crash counter must live on
     disk, exactly like the daemon's own journal *)
  let counter = Filename.concat dir "attempts" in
  let spawn () =
    let attempts =
      if Sys.file_exists counter then (
        let ic = open_in counter in
        let n = int_of_string (input_line ic) in
        close_in ic;
        n)
      else 0
    in
    let oc = open_out counter in
    output_string oc (string_of_int (attempts + 1));
    close_out oc;
    if attempts < 2 then failwith "still flaky"
  in
  match Supervisor.supervise sup_cfg ~spawn ~probe:(fun () -> false) with
  | Supervisor.Clean_exit { restarts } ->
    Alcotest.(check int) "two restarts healed it" 2 restarts
  | Supervisor.Crash_loop _ ->
    Alcotest.fail "a healing child tripped the breaker"

let test_supervisor_operator_sigterm () =
  (* "kill <supervisor>" must drain the whole tree: the forwarded TERM
     reaches a child whose default disposition was restored after the
     fork (the inherited forward handler would discard it), and the
     supervisor reports the death as Clean_exit instead of restarting
     into a shutdown. Run supervise in its own process so the real
     signal path — handler, forward, waitpid EINTR — is exercised. *)
  let pid = Unix.fork () in
  if pid = 0 then begin
    let outcome =
      Supervisor.supervise sup_cfg
        ~spawn:(fun () ->
          while true do
            Unix.sleepf 3600.
          done)
        ~probe:(fun () -> true)
    in
    match outcome with
    | Supervisor.Clean_exit _ -> Unix._exit 0
    | Supervisor.Crash_loop _ -> Unix._exit 7
  end
  else begin
    (* let the supervisor fork its child and pass the readiness gate *)
    Unix.sleepf 0.3;
    Unix.kill pid Sys.sigterm;
    let deadline = Unix.gettimeofday () +. 5. in
    let rec await () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "supervisor ignored SIGTERM (tree still alive)"
        end
        else begin
          Unix.sleepf 0.02;
          await ()
        end
      | _, status -> status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
    in
    match await () with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED 7 ->
      Alcotest.fail "operator SIGTERM was counted as a crash loop"
    | Unix.WEXITED c -> Alcotest.failf "supervisor exited %d on SIGTERM" c
    | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      Alcotest.failf "supervisor killed by signal %d instead of draining" s
  end

let () =
  Alcotest.run "serve"
    [
      ( "framing",
        [
          Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
          Alcotest.test_case "roundtrip" `Quick test_framing_roundtrip;
          Alcotest.test_case "partial feed wants more" `Quick
            test_framing_partial_feed;
          Alcotest.test_case "corrupt CRC rejected" `Quick
            test_framing_corrupt_crc;
          Alcotest.test_case "bad version rejected" `Quick
            test_framing_bad_version;
          Alcotest.test_case "oversize length rejected" `Quick
            test_framing_oversize_rejected;
          QCheck_alcotest.to_alcotest prop_framing_adversarial_boundaries;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "certificate codec" `Quick test_certificate_codec;
          Alcotest.test_case "garbage rejected" `Quick
            test_decoder_rejects_garbage;
        ] );
      ( "queue",
        [
          Alcotest.test_case "FIFO + shed at capacity" `Quick
            test_queue_fifo_and_shed;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "memory, disk, restart" `Quick
            test_degrade_memory_and_disk;
          Alcotest.test_case "record keeps the stronger certificate" `Quick
            test_degrade_record_is_monotone;
        ] );
      ( "worker",
        [
          Alcotest.test_case "bad requests are structured" `Quick
            test_worker_bad_requests;
          Alcotest.test_case "crash contained" `Quick
            test_worker_crash_contained;
          Alcotest.test_case "memoizes" `Quick test_worker_memoizes;
          Alcotest.test_case "deadline degrades to stale cert" `Quick
            test_worker_deadline_degrades_to_stale;
          Alcotest.test_case "certificate lookup" `Quick
            test_worker_certificate_lookup;
          Alcotest.test_case "chaos answers structurally" `Quick
            test_worker_chaos_survives;
        ] );
      ( "journal",
        [
          Alcotest.test_case "record codec" `Quick test_journal_record_codec;
          Alcotest.test_case "append, sync, reopen" `Quick
            test_journal_append_and_reopen;
          Alcotest.test_case "torn tail truncated" `Quick
            test_journal_torn_tail_truncated;
          Alcotest.test_case "bit flip detected and contained" `Quick
            test_journal_bit_flip_detected;
          Alcotest.test_case "snapshot rotation" `Quick
            test_journal_snapshot_rotation;
          QCheck_alcotest.to_alcotest prop_journal_random_kill_point;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean exit" `Quick test_supervisor_clean_exit;
          Alcotest.test_case "crash loop opens the circuit" `Quick
            test_supervisor_crash_loop_opens_circuit;
          Alcotest.test_case "flaky child heals after restarts" `Quick
            test_supervisor_flaky_child_heals;
          Alcotest.test_case "operator SIGTERM drains, never restarts" `Quick
            test_supervisor_operator_sigterm;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end robustness" `Quick
            test_daemon_end_to_end;
          Alcotest.test_case "sheds under a tiny queue" `Quick
            test_daemon_sheds_under_tiny_queue;
          Alcotest.test_case "warm restart replays the journal" `Quick
            test_daemon_warm_restart;
          Alcotest.test_case "stalled partial frame is dropped" `Quick
            test_daemon_drops_stalled_conn;
          Alcotest.test_case "accept error policy" `Quick
            test_accept_error_action;
        ] );
    ]
