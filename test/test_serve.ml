(* Tests for the hardened decomposition service (lib/serve): framing,
   codecs, admission queue, degradation store, worker robustness, and
   an end-to-end daemon exercising all four robustness paths — load
   shedding, crash containment, stale-certificate degradation, and
   malformed-frame rejection — plus the clean drain protocol. *)

module Framing = Serve.Framing
module P = Serve.Protocol
module Queue = Serve.Queue
module Degrade = Serve.Degrade
module Worker = Serve.Worker
module Server = Serve.Server
module Gen = Graphs.Gen

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_crc32_vector () =
  (* the standard IEEE 802.3 check value *)
  Alcotest.(check int) "crc32(\"123456789\")" 0xCBF43926
    (Framing.crc32 "123456789");
  Alcotest.(check int) "crc32(\"\") is zero" 0 (Framing.crc32 "")

let feed frame ~len = Framing.try_decode (Bytes.of_string frame) ~len

let test_framing_roundtrip () =
  let payload = "hello, decomposition" in
  let frame = Framing.encode payload in
  Alcotest.(check int) "framed length"
    (String.length payload + Framing.overhead)
    (String.length frame);
  match feed frame ~len:(String.length frame) with
  | `Frame (p, consumed) ->
    Alcotest.(check string) "payload survives" payload p;
    Alcotest.(check int) "whole frame consumed" (String.length frame) consumed
  | `Need_more -> Alcotest.fail "decoder wanted more of a complete frame"
  | `Error m -> Alcotest.fail ("decoder rejected a valid frame: " ^ m)

let test_framing_partial_feed () =
  (* every strict prefix must come back Need_more, never Error *)
  let frame = Framing.encode "partial" in
  for len = 0 to String.length frame - 1 do
    match feed frame ~len with
    | `Need_more -> ()
    | `Frame _ -> Alcotest.fail "frame produced from a strict prefix"
    | `Error m ->
      Alcotest.fail (Printf.sprintf "prefix of %d bytes rejected: %s" len m)
  done

let test_framing_corrupt_crc () =
  let frame = Bytes.of_string (Framing.encode "checksummed") in
  (* flip one payload bit: the stored CRC no longer matches *)
  Bytes.set frame 6 (Char.chr (Char.code (Bytes.get frame 6) lxor 1));
  match Framing.try_decode frame ~len:(Bytes.length frame) with
  | `Error m ->
    Alcotest.(check bool) "mentions CRC" true
      (String.length m >= 3 && String.uppercase_ascii m <> m)
  | `Frame _ -> Alcotest.fail "corrupt frame accepted"
  | `Need_more -> Alcotest.fail "corrupt frame asked for more bytes"

let test_framing_bad_version () =
  let frame = Bytes.of_string (Framing.encode "v?") in
  Bytes.set frame 0 (Char.chr (Framing.version + 1));
  (match Framing.try_decode frame ~len:(Bytes.length frame) with
  | `Error _ -> ()
  | _ -> Alcotest.fail "wrong version accepted");
  (* version is checked on the very first byte — a bad stream is
     rejected before any length is trusted *)
  match Framing.try_decode frame ~len:1 with
  | `Error _ -> ()
  | _ -> Alcotest.fail "wrong version not rejected from one byte"

let test_framing_oversize_rejected () =
  (* a forged length field beyond the cap must be rejected from the
     5-byte header alone, before any allocation *)
  let b = Bytes.create 5 in
  Bytes.set b 0 (Char.chr Framing.version);
  Bytes.set_int32_be b 1 1_000_000l;
  match Framing.try_decode ~max_len:1024 b ~len:5 with
  | `Error _ -> ()
  | `Need_more -> Alcotest.fail "oversize length stalled instead of erroring"
  | `Frame _ -> Alcotest.fail "oversize frame accepted"

(* ------------------------------------------------------------------ *)
(* Protocol codecs *)

let sample_requests =
  [
    P.Decompose
      {
        (P.default_decompose ~gen:"harary:k=4,n=32") with
        P.seed = 9;
        k = 4;
        policy = `Repair;
        distributed = true;
        deadline_ms = 250;
        fail_p = 0.125;
        storm = "2:3:4";
      };
    P.Verify (P.default_decompose ~gen:"grid:rows=4,cols=4");
    P.Certificate { gen = "harary:k=4,n=32" };
    P.Health;
    P.Drain;
    P.Crash_test;
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match P.decode_request (P.encode_request req) with
      | Ok req' ->
        Alcotest.(check bool) "request survives the codec" true (req = req')
      | Error m -> Alcotest.fail ("request failed to decode: " ^ m))
    sample_requests

let sample_cert () =
  let g = Gen.harary ~k:4 ~n:32 in
  let r = Domtree.Reliable.run_verified ~seed:3 g ~classes:2 ~layers:2 in
  r.Domtree.Reliable.certificate

let sample_responses cert =
  [
    P.Result
      {
        P.digest = "abc123";
        verified = true;
        degraded = false;
        stale = false;
        budget_exhausted = true;
        classes_requested = 4;
        classes_retained = 3;
        rounds_charged = 512;
        attempts = 2;
      };
    P.Cert { P.c_digest = "abc123"; c_stale = true; c_cert = cert };
    P.Health_report
      {
        P.h_uptime_ms = 12;
        h_served = 34;
        h_fresh = 30;
        h_stale = 2;
        h_shed = 1;
        h_errors = 1;
        h_queue_depth = 5;
        h_queue_capacity = 64;
        h_draining = true;
        h_cached_certs = 7;
      };
    P.Drained { served = 99 };
    P.Error (P.Overloaded, "queue full");
    P.Error (P.Bad_request, "");
  ]

let test_response_roundtrip () =
  let cert = sample_cert () in
  List.iter
    (fun resp ->
      match P.decode_response (P.encode_response resp) with
      | Ok resp' ->
        Alcotest.(check bool) "response survives the codec" true (resp = resp')
      | Error m -> Alcotest.fail ("response failed to decode: " ^ m))
    (sample_responses cert)

let test_certificate_codec () =
  let cert = sample_cert () in
  match P.decode_certificate (P.encode_certificate cert) with
  | Ok cert' ->
    Alcotest.(check bool) "certificate survives the codec" true (cert = cert')
  | Error m -> Alcotest.fail ("certificate failed to decode: " ^ m)

let test_decoder_rejects_garbage () =
  (* trailing garbage, truncation, and random bytes must all come back
     Error — never an exception, never a bogus Ok *)
  let enc = P.encode_request (List.hd sample_requests) in
  (match P.decode_request (enc ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  for len = 0 to String.length enc - 1 do
    match P.decode_request (String.sub enc 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncation to %d accepted" len)
  done;
  match P.decode_response "\xff\xfe\xfd" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "random bytes decoded as a response"

(* ------------------------------------------------------------------ *)
(* Bounded queue *)

let test_queue_fifo_and_shed () =
  let q = Queue.create ~capacity:2 in
  Alcotest.(check bool) "empty at birth" true (Queue.is_empty q);
  Alcotest.(check int) "capacity" 2 (Queue.capacity q);
  Alcotest.(check bool) "push 1" true (Queue.push q 1);
  Alcotest.(check bool) "push 2" true (Queue.push q 2);
  Alcotest.(check bool) "push 3 shed at capacity" false (Queue.push q 3);
  Alcotest.(check int) "depth stays at capacity" 2 (Queue.depth q);
  Alcotest.(check (option int)) "FIFO pop" (Some 1) (Queue.pop q);
  (* a pop frees a slot: admission works again *)
  Alcotest.(check bool) "push after pop" true (Queue.push q 4);
  Alcotest.(check (option int)) "then 2" (Some 2) (Queue.pop q);
  Alcotest.(check (option int)) "then 4" (Some 4) (Queue.pop q);
  Alcotest.(check (option int)) "empty pops None" None (Queue.pop q)

(* ------------------------------------------------------------------ *)
(* Degradation store *)

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let test_degrade_memory_and_disk () =
  with_tmp_dir @@ fun dir ->
  let cert = sample_cert () in
  let disk = Exec.Cache.open_dir dir in
  let d = Degrade.create ~disk () in
  Alcotest.(check bool) "cold lookup misses" true
    (Degrade.lookup d ~digest:"g1" = None);
  Degrade.record d ~digest:"g1" cert;
  (match Degrade.lookup d ~digest:"g1" with
  | Some { Degrade.cert = c; fresh } ->
    Alcotest.(check bool) "same certificate" true (c = cert);
    Alcotest.(check bool) "this process's cert is fresh" true fresh
  | None -> Alcotest.fail "recorded certificate not found");
  Alcotest.(check int) "one digest cached" 1 (Degrade.count d);
  (* a new store over the same disk simulates a daemon restart: the
     certificate survives, but is no longer fresh *)
  let d' = Degrade.create ~disk:(Exec.Cache.open_dir dir) () in
  (match Degrade.lookup d' ~digest:"g1" with
  | Some { Degrade.cert = c; fresh } ->
    Alcotest.(check bool) "certificate survived the restart" true (c = cert);
    Alcotest.(check bool) "disk replays are not fresh" false fresh
  | None -> Alcotest.fail "certificate lost across restart");
  (* without disk, nothing survives *)
  let d'' = Degrade.create () in
  Alcotest.(check bool) "memory-only store starts empty" true
    (Degrade.lookup d'' ~digest:"g1" = None)

let test_degrade_record_is_monotone () =
  (* a verified-but-weaker certificate (here: every class lost to a
     total blackout) must not clobber the stronger one already held *)
  let g = Gen.harary ~k:4 ~n:32 in
  let r = Domtree.Reliable.run_verified ~seed:3 g ~classes:2 ~layers:2 in
  let strong = r.Domtree.Reliable.certificate in
  let weak =
    Domtree.Certificate.build
      ~live:(fun _ -> false)
      g
      ~memberships:(fun v -> r.Domtree.Reliable.memberships.(v))
      ~classes:2 ~k:4
  in
  Alcotest.(check bool) "weak really is weaker" true
    (Domtree.Certificate.retained_count weak
    < Domtree.Certificate.retained_count strong);
  let d = Degrade.create () in
  Degrade.record d ~digest:"g" strong;
  Degrade.record d ~digest:"g" weak;
  (match Degrade.lookup d ~digest:"g" with
  | Some { Degrade.cert; _ } ->
    Alcotest.(check bool) "strong survives a weak record" true (cert = strong)
  | None -> Alcotest.fail "certificate vanished");
  (* the weak certificate is still better than nothing on a fresh
     digest, and a strong record upgrades it *)
  Degrade.record d ~digest:"g2" weak;
  Degrade.record d ~digest:"g2" strong;
  match Degrade.lookup d ~digest:"g2" with
  | Some { Degrade.cert; _ } ->
    Alcotest.(check bool) "strong upgrades weak" true (cert = strong)
  | None -> Alcotest.fail "certificate vanished"

(* ------------------------------------------------------------------ *)
(* Worker: one request in, one structured response out — always *)

let worker () = Worker.create Worker.default_config
let gen = "harary:k=4,n=32"
let now = Worker.now_ms

let expect_error kind = function
  | P.Error (k, _) when k = kind -> ()
  | resp ->
    Alcotest.failf "wanted %s, got: %a"
      (P.error_kind_to_string kind)
      P.pp_response resp

let test_worker_bad_requests () =
  let w = worker () in
  let d = P.default_decompose ~gen in
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ())
       (P.Decompose { d with P.gen = "no-such-generator:x=1" }));
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ())
       (P.Decompose { d with P.fail_p = 1.5 }));
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ())
       (* fault injection without distributed mode is meaningless *)
       (P.Decompose { d with P.fail_p = 0.1 }));
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ())
       (P.Decompose { d with P.distributed = true; storm = "nonsense" }));
  expect_error P.Bad_request
    (Worker.handle w ~enqueued_at_ms:(now ()) (P.Decompose { d with P.k = -1 }));
  (* control ops never reach the worker in a healthy daemon *)
  expect_error P.Bad_request (Worker.handle w ~enqueued_at_ms:(now ()) P.Health);
  expect_error P.Bad_request (Worker.handle w ~enqueued_at_ms:(now ()) P.Drain)

let test_worker_crash_contained () =
  let w = worker () in
  expect_error P.Internal_error
    (Worker.handle w ~enqueued_at_ms:(now ()) P.Crash_test);
  (* the worker is not poisoned: a normal request still computes *)
  match
    Worker.handle w ~enqueued_at_ms:(now ())
      (P.Decompose { (P.default_decompose ~gen) with P.k = 4 })
  with
  | P.Result r -> Alcotest.(check bool) "verified after crash" true r.P.verified
  | resp -> Alcotest.failf "wanted a result, got: %a" P.pp_response resp

let test_worker_memoizes () =
  let w = worker () in
  let req = P.Decompose { (P.default_decompose ~gen) with P.k = 4 } in
  let r1 = Worker.handle w ~enqueued_at_ms:(now ()) req in
  let t0 = now () in
  let r2 = Worker.handle w ~enqueued_at_ms:(now ()) req in
  let dt = now () -. t0 in
  Alcotest.(check bool) "memo hit is identical" true (r1 = r2);
  Alcotest.(check bool) "memo hit is instant (<50ms)" true (dt < 50.)

let test_worker_deadline_degrades_to_stale () =
  let w = worker () in
  let d = { (P.default_decompose ~gen) with P.k = 4 } in
  (* nothing cached yet: an expired-in-queue deadline is a hard error *)
  expect_error P.Deadline_exceeded
    (Worker.handle w
       ~enqueued_at_ms:(now () -. 10_000.)
       (P.Decompose { d with P.seed = 1 }));
  (* prime the last-good store with a verified run, then expire again:
     the daemon now degrades to the stale certificate instead *)
  (match Worker.handle w ~enqueued_at_ms:(now ()) (P.Decompose d) with
  | P.Result r -> Alcotest.(check bool) "priming verified" true r.P.verified
  | resp -> Alcotest.failf "priming failed: %a" P.pp_response resp);
  match
    Worker.handle w
      ~enqueued_at_ms:(now () -. 10_000.)
      (P.Decompose { d with P.seed = 2 })
  with
  | P.Cert c ->
    Alcotest.(check bool) "served stale" true c.P.c_stale;
    Alcotest.(check bool) "the certificate is machine-checkable" true
      (Domtree.Certificate.degraded c.P.c_cert = false)
  | resp -> Alcotest.failf "wanted a stale certificate, got: %a" P.pp_response resp

let test_worker_certificate_lookup () =
  let w = worker () in
  expect_error P.Not_found
    (Worker.handle w ~enqueued_at_ms:(now ()) (P.Certificate { gen }));
  (match
     Worker.handle w ~enqueued_at_ms:(now ())
       (P.Decompose { (P.default_decompose ~gen) with P.k = 4 })
   with
  | P.Result _ -> ()
  | resp -> Alcotest.failf "decompose failed: %a" P.pp_response resp);
  match Worker.handle w ~enqueued_at_ms:(now ()) (P.Certificate { gen }) with
  | P.Cert c ->
    Alcotest.(check bool) "this process's certificate is not stale" false
      c.P.c_stale
  | resp -> Alcotest.failf "wanted a certificate, got: %a" P.pp_response resp

let test_worker_chaos_survives () =
  (* distributed request under heavy fault injection: whatever comes
     back must be a structured frame — degraded results, stale certs
     and structured errors are all acceptable; an exception is not *)
  let w = worker () in
  for seed = 1 to 5 do
    let req =
      P.Decompose
        {
          (P.default_decompose ~gen) with
          P.k = 4;
          seed;
          distributed = true;
          fail_p = 0.4;
          storm = "2:4:4";
          deadline_ms = 50;
        }
    in
    match Worker.handle w ~enqueued_at_ms:(now ()) req with
    | P.Result _ | P.Cert _ | P.Error ((P.Deadline_exceeded | P.Internal_error), _)
      ->
      ()
    | resp -> Alcotest.failf "unexpected chaos response: %a" P.pp_response resp
  done

(* ------------------------------------------------------------------ *)
(* End-to-end daemon: all four robustness paths over one socket *)

let with_daemon ?(queue_capacity = 4) f =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-test-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let cfg =
    { (Server.default_config ~socket_path:socket) with Server.queue_capacity }
  in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      (* drain if the test has not already; never leave the domain
         running *)
      (try
         let cl = Server.Client.connect socket in
         ignore (Server.Client.request cl P.Drain);
         Server.Client.close cl
       with _ -> ());
      Domain.join daemon)
    (fun () -> f socket)

let request_ok cl req =
  match Server.Client.request cl req with
  | Ok resp -> resp
  | Error m -> Alcotest.fail ("transport error: " ^ m)

let test_daemon_end_to_end () =
  with_daemon @@ fun socket ->
  let cl = Server.Client.connect socket in
  (* 0. liveness *)
  (match request_ok cl P.Health with
  | P.Health_report h ->
    Alcotest.(check int) "nothing served yet" 0 h.P.h_served
  | resp -> Alcotest.failf "health broke: %a" P.pp_response resp);
  (* 1. crash containment: the worker dies, the daemon does not *)
  (match request_ok cl P.Crash_test with
  | P.Error (P.Internal_error, _) -> ()
  | resp -> Alcotest.failf "crash not contained: %a" P.pp_response resp);
  (* 2. a verified decomposition primes the last-good store *)
  let d = { (P.default_decompose ~gen) with P.k = 4 } in
  (match request_ok cl (P.Decompose d) with
  | P.Result r -> Alcotest.(check bool) "verified" true r.P.verified
  | resp -> Alcotest.failf "decompose broke: %a" P.pp_response resp);
  (* 3. stale degradation: chaos + a 1ms deadline on the same graph *)
  let chaos_seen = ref false in
  for seed = 10 to 19 do
    match
      request_ok cl
        (P.Decompose
           {
             d with
             P.seed;
             distributed = true;
             fail_p = 0.45;
             storm = "1:8:8";
             deadline_ms = 1;
           })
    with
    | P.Cert { P.c_stale = true; _ } -> chaos_seen := true
    | P.Result { P.verified = false; _ } | P.Result { P.degraded = true; _ } ->
      chaos_seen := true
    | P.Result _ | P.Error ((P.Deadline_exceeded | P.Internal_error), _) -> ()
    | resp -> Alcotest.failf "chaos leaked: %a" P.pp_response resp
  done;
  Alcotest.(check bool) "chaos produced degraded service, not death" true
    !chaos_seen;
  (* 4. load shedding: pipeline far more than queue + loop can admit.
     Sheds are load-dependent, so only assert the daemon answered every
     single frame with a structured response *)
  let burst = 64 in
  for seed = 100 to 100 + burst - 1 do
    Server.Client.send cl (P.Decompose { d with P.seed })
  done;
  let answered = ref 0 in
  for _ = 1 to burst do
    match Server.Client.recv cl with
    | Ok (P.Result _ | P.Cert _ | P.Error _) -> incr answered
    | Ok resp -> Alcotest.failf "burst surprise: %a" P.pp_response resp
    | Error m -> Alcotest.fail ("burst transport error: " ^ m)
  done;
  Alcotest.(check int) "every burst frame answered" burst !answered;
  (* 5. malformed frame: one structured error, that connection dies,
     the daemon lives *)
  let bad = Server.Client.connect socket in
  Server.Client.send_raw bad "this is definitely not a frame";
  (match Server.Client.recv bad with
  | Ok (P.Error (P.Bad_request, _)) -> ()
  | Ok resp -> Alcotest.failf "malformed frame got: %a" P.pp_response resp
  | Error m -> Alcotest.fail ("malformed frame transport error: " ^ m));
  (match Server.Client.recv bad with
  | Error _ -> () (* connection closed: the stream cannot be resynced *)
  | Ok resp -> Alcotest.failf "poisoned stream answered: %a" P.pp_response resp);
  Server.Client.close bad;
  (* the original connection and a fresh one both still work *)
  (match request_ok cl P.Health with
  | P.Health_report h ->
    Alcotest.(check bool) "served counts grew" true (h.P.h_served > 0);
    Alcotest.(check bool) "errors were accounted" true (h.P.h_errors > 0)
  | resp -> Alcotest.failf "health after abuse: %a" P.pp_response resp);
  Server.Client.close cl;
  let cl2 = Server.Client.connect socket in
  (* 6. clean drain: structured goodbye, then the socket disappears *)
  (match request_ok cl2 P.Drain with
  | P.Drained { served } ->
    Alcotest.(check bool) "drain reports the served total" true (served > 0)
  | resp -> Alcotest.failf "drain broke: %a" P.pp_response resp);
  Server.Client.close cl2

let test_daemon_sheds_under_tiny_queue () =
  (* deterministic shedding: capacity 1 and a burst of slow distinct
     requests must produce at least one Overloaded *)
  with_daemon ~queue_capacity:1 @@ fun socket ->
  let cl = Server.Client.connect socket in
  let d = { (P.default_decompose ~gen:"harary:k=6,n=96") with P.k = 6 } in
  let burst = 32 in
  for seed = 1 to burst do
    Server.Client.send cl (P.Decompose { d with P.seed })
  done;
  let shed = ref 0 and okay = ref 0 in
  for _ = 1 to burst do
    match Server.Client.recv cl with
    | Ok (P.Error (P.Overloaded, _)) -> incr shed
    | Ok (P.Result _) -> incr okay
    | Ok resp -> Alcotest.failf "burst surprise: %a" P.pp_response resp
    | Error m -> Alcotest.fail ("transport error: " ^ m)
  done;
  Alcotest.(check int) "every frame answered" burst (!shed + !okay);
  Alcotest.(check bool) "some requests were shed" true (!shed > 0);
  Alcotest.(check bool) "some requests were served" true (!okay > 0);
  Server.Client.close cl

let () =
  Alcotest.run "serve"
    [
      ( "framing",
        [
          Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
          Alcotest.test_case "roundtrip" `Quick test_framing_roundtrip;
          Alcotest.test_case "partial feed wants more" `Quick
            test_framing_partial_feed;
          Alcotest.test_case "corrupt CRC rejected" `Quick
            test_framing_corrupt_crc;
          Alcotest.test_case "bad version rejected" `Quick
            test_framing_bad_version;
          Alcotest.test_case "oversize length rejected" `Quick
            test_framing_oversize_rejected;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "certificate codec" `Quick test_certificate_codec;
          Alcotest.test_case "garbage rejected" `Quick
            test_decoder_rejects_garbage;
        ] );
      ( "queue",
        [
          Alcotest.test_case "FIFO + shed at capacity" `Quick
            test_queue_fifo_and_shed;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "memory, disk, restart" `Quick
            test_degrade_memory_and_disk;
          Alcotest.test_case "record keeps the stronger certificate" `Quick
            test_degrade_record_is_monotone;
        ] );
      ( "worker",
        [
          Alcotest.test_case "bad requests are structured" `Quick
            test_worker_bad_requests;
          Alcotest.test_case "crash contained" `Quick
            test_worker_crash_contained;
          Alcotest.test_case "memoizes" `Quick test_worker_memoizes;
          Alcotest.test_case "deadline degrades to stale cert" `Quick
            test_worker_deadline_degrades_to_stale;
          Alcotest.test_case "certificate lookup" `Quick
            test_worker_certificate_lookup;
          Alcotest.test_case "chaos answers structurally" `Quick
            test_worker_chaos_survives;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end robustness" `Quick
            test_daemon_end_to_end;
          Alcotest.test_case "sheds under a tiny queue" `Quick
            test_daemon_sheds_under_tiny_queue;
        ] );
    ]
