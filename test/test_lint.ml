(* congest-lint rule tests: every rule must fire on a known-bad inline
   fixture and stay silent on the known-good twin, the "lint: allow"
   escape hatch must suppress exactly one finding, and a dangling allow
   must itself be reported. These run the analyzer as a library
   (Lint_core.check_source) on source strings — no files involved. *)

let rules_of src =
  let findings, _ = Lint_core.check_source ~file:"fixture.ml" src in
  List.map (fun f -> f.Lint_core.rule) findings

let suppressed_of src = snd (Lint_core.check_source ~file:"fixture.ml" src)

let check_fires rule src () =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires" rule)
    true
    (List.mem rule (rules_of src))

let check_silent src () =
  Alcotest.(check (list string)) "no findings" [] (rules_of src)

(* --- nondet-random ------------------------------------------------- *)

let bad_random = "let roll () = Random.int 6\n"
let good_random = "let roll st = Random.State.int st 6\n"
let bad_self_init = "let () = Random.self_init ()\n"

(* --- nondet-clock -------------------------------------------------- *)

let bad_clock = "let stamp () = Sys.time ()\n"
let bad_unix = "let stamp () = Unix.gettimeofday ()\n"
let good_clock = "let stamp counter = incr counter; !counter\n"

(* --- nondet-hash --------------------------------------------------- *)

let bad_hash = "let key x = Hashtbl.hash x\n"
let good_hash = "let key (a, b) = (a * 65599) + b\n"

(* --- hashtbl-order ------------------------------------------------- *)

let bad_fold = "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n"
let bad_iter = "let send h f = Hashtbl.iter (fun k v -> f k v) h\n"

let good_fold_piped =
  "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort \
   Int.compare\n"

let good_fold_direct =
  "let keys h = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) \
   h [])\n"

(* cardinality via List.length is order-blind and sanctioned *)
let good_fold_length =
  "let size h = List.length (Hashtbl.fold (fun k _ acc -> k :: acc) h [])\n"

(* --- global-mutable-state ------------------------------------------ *)

let bad_global_ref = "let counter = ref 0\nlet bump () = incr counter\n"
let bad_global_table = "let cache = Hashtbl.create 16\n"
let bad_global_in_module = "module M = struct\n  let buf = Buffer.create 64\nend\n"
let good_local_ref = "let count xs =\n  let c = ref 0 in\n  List.iter (fun _ -> incr c) xs;\n  !c\n"
let good_immutable = "let limit = 64\nlet name = \"net\"\n"

(* --- obj-magic ----------------------------------------------------- *)

let bad_obj = "let coerce (x : int) : string = Obj.magic x\n"

(* --- physical-eq --------------------------------------------------- *)

let bad_phys_eq = "let same a b = a == b\n"
let bad_phys_neq = "let differ a b = a != b\n"
let good_struct_eq = "let same a b = a = b\n"

(* --- polymorphic-compare ------------------------------------------- *)

let bad_bare_compare = "let order xs = List.sort compare xs\n"
let bad_stdlib_compare = "let order xs = List.sort Stdlib.compare xs\n"
let bad_tuple_cmp = "let better w a b best = (w, a, b) < best\n"
let bad_some_cmp = "let won tbl k v = Hashtbl.find_opt tbl k = Some v\n"
let good_mono_compare = "let order xs = List.sort Int.compare xs\n"
let good_ident_cmp = "let better a b = a < b\n"

(* constant constructors compare immediately: must not fire *)
let good_none_cmp = "let missing o = o = None\n"

let allowed_compare =
  "(* lint: allow polymorphic-compare — cold path, keys are int pairs *)\n\
   let order xs = List.sort compare xs\n"

let test_allow_works_on_polymorphic_compare () =
  Alcotest.(check (list string)) "allow suppresses polymorphic-compare" []
    (rules_of allowed_compare);
  Alcotest.(check int) "one suppression" 1 (suppressed_of allowed_compare)

let test_exempt_drops_polymorphic_compare () =
  (* the driver scope-restricts this rule to lib/graph + lib/congest by
     exempting every other file; the exemption must drop the finding *)
  let findings, _ =
    Lint_core.check_source ~file:"lib/routing/broadcast.ml"
      ~exempt:[ "polymorphic-compare" ] bad_bare_compare
  in
  Alcotest.(check (list string)) "out-of-scope file is clean" []
    (List.map (fun f -> f.Lint_core.rule) findings)

(* --- silenced-warning ---------------------------------------------- *)

let bad_floating_attr = "[@@@warning \"-27\"]\nlet f x = 0\n"
let bad_expr_attr = "let f x = (ignore x [@warning \"-27\"])\n"

(* --- domain-spawn -------------------------------------------------- *)

let bad_spawn = "let fork f = Domain.spawn f\n"

let good_domain_query =
  "let width () = Domain.recommended_domain_count () - 1\n"

(* --- scoped exemption (lib/exec) ----------------------------------- *)

let exec_like =
  "let time_it f =\n\
  \  let t0 = Unix.gettimeofday () in\n\
  \  let d = Domain.spawn f in\n\
  \  let r = Domain.join d in\n\
  \  (r, Unix.gettimeofday () -. t0)\n"

let test_exempt_drops_scoped_rules () =
  let findings, _ =
    Lint_core.check_source ~file:"lib/exec/pool.ml"
      ~exempt:[ "domain-spawn"; "nondet-clock" ]
      exec_like
  in
  Alcotest.(check (list string)) "scope-exempt rules dropped" []
    (List.map (fun f -> f.Lint_core.rule) findings)

let test_exempt_is_rule_specific () =
  (* the exemption must not blanket-silence the file: a different rule
     in an exempted file still fires *)
  let findings, _ =
    Lint_core.check_source ~file:"lib/exec/pool.ml"
      ~exempt:[ "domain-spawn"; "nondet-clock" ]
      (exec_like ^ "let roll () = Random.int 6\n")
  in
  Alcotest.(check (list string)) "other rules still fire" [ "nondet-random" ]
    (List.map (fun f -> f.Lint_core.rule) findings)

let test_allow_works_on_domain_spawn () =
  let src =
    "(* lint: allow domain-spawn — test fixture *)\nlet fork f = Domain.spawn \
     f\n"
  in
  Alcotest.(check (list string)) "allow suppresses domain-spawn" []
    (rules_of src);
  Alcotest.(check int) "one suppression" 1 (suppressed_of src)

(* --- escape hatch -------------------------------------------------- *)

let allowed_fold =
  "(* lint: allow hashtbl-order — commutative min over entries *)\n\
   let best h = Hashtbl.fold (fun _ v acc -> min v acc) h max_int\n"

let allow_suppresses_only_its_rule =
  "(* lint: allow hashtbl-order — wrong rule for this finding *)\n\
   let roll () = Random.int 6\n"

let unused_allow = "(* lint: allow nondet-random — nothing here *)\nlet x = 1\n"

let stacked_allows =
  "(* lint: allow hashtbl-order — first *)\n\
   let a h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n\
   (* lint: allow hashtbl-order — second *)\n\
   let b h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n"

let test_allow_suppresses () =
  Alcotest.(check (list string)) "no findings" [] (rules_of allowed_fold);
  Alcotest.(check int) "one suppression" 1 (suppressed_of allowed_fold)

let test_allow_rule_specific () =
  Alcotest.(check bool) "nondet-random still fires" true
    (List.mem "nondet-random" (rules_of allow_suppresses_only_its_rule));
  Alcotest.(check bool) "dangling allow reported" true
    (List.mem "unused-allow" (rules_of allow_suppresses_only_its_rule))

let test_unused_allow () =
  Alcotest.(check (list string)) "reported" [ "unused-allow" ]
    (rules_of unused_allow)

let test_stacked_allows () =
  (* nearest-match binding: each allow claims the finding directly below
     it, so two stacked pairs leave nothing unsuppressed and no unused *)
  Alcotest.(check (list string)) "all suppressed" [] (rules_of stacked_allows);
  Alcotest.(check int) "two suppressions" 2 (suppressed_of stacked_allows)

(* --- parse-error --------------------------------------------------- *)

let test_parse_error () =
  Alcotest.(check bool) "unparsable source reported" true
    (List.mem "parse-error" (rules_of "let let let = = ="))

(* --- self-check: the shipped tree is clean ------------------------- *)

let test_multiple_findings_counted () =
  let src = "let a () = Random.int 2\nlet b () = Random.bool ()\n" in
  Alcotest.(check int) "both sites reported" 2 (List.length (rules_of src))

let fires rule src name = Alcotest.test_case name `Quick (check_fires rule src)
let silent src name = Alcotest.test_case name `Quick (check_silent src)

let () =
  Alcotest.run "lint"
    [
      ( "fires-on-bad",
        [
          fires "nondet-random" bad_random "Random.int";
          fires "nondet-random" bad_self_init "Random.self_init";
          fires "nondet-clock" bad_clock "Sys.time";
          fires "nondet-clock" bad_unix "Unix.gettimeofday";
          fires "nondet-hash" bad_hash "Hashtbl.hash";
          fires "hashtbl-order" bad_fold "bare fold";
          fires "hashtbl-order" bad_iter "bare iter";
          fires "global-mutable-state" bad_global_ref "toplevel ref";
          fires "global-mutable-state" bad_global_table "toplevel Hashtbl";
          fires "global-mutable-state" bad_global_in_module "ref inside module";
          fires "obj-magic" bad_obj "Obj.magic";
          fires "physical-eq" bad_phys_eq "(==)";
          fires "physical-eq" bad_phys_neq "(!=)";
          fires "silenced-warning" bad_floating_attr "floating attribute";
          fires "silenced-warning" bad_expr_attr "expression attribute";
          fires "domain-spawn" bad_spawn "Domain.spawn";
          fires "polymorphic-compare" bad_bare_compare "bare compare";
          fires "polymorphic-compare" bad_stdlib_compare "Stdlib.compare";
          fires "polymorphic-compare" bad_tuple_cmp "tuple operand";
          fires "polymorphic-compare" bad_some_cmp "Some payload operand";
        ] );
      ( "silent-on-good",
        [
          silent good_random "Random.State";
          silent good_clock "logical clock";
          silent good_hash "explicit hash";
          silent good_fold_piped "fold |> sort";
          silent good_fold_direct "sort (fold ...)";
          silent good_fold_length "List.length (fold ...)";
          silent good_local_ref "function-local ref";
          silent good_immutable "immutable toplevel";
          silent good_struct_eq "structural equality";
          silent good_domain_query "Domain.recommended_domain_count";
          silent good_mono_compare "Int.compare comparator";
          silent good_ident_cmp "(<) on identifiers";
          silent good_none_cmp "(=) against None";
        ] );
      ( "escape-hatch",
        [
          Alcotest.test_case "allow suppresses" `Quick test_allow_suppresses;
          Alcotest.test_case "allow is rule-specific" `Quick
            test_allow_rule_specific;
          Alcotest.test_case "unused allow reported" `Quick test_unused_allow;
          Alcotest.test_case "stacked allows bind nearest" `Quick
            test_stacked_allows;
          Alcotest.test_case "allow works on domain-spawn" `Quick
            test_allow_works_on_domain_spawn;
          Alcotest.test_case "allow works on polymorphic-compare" `Quick
            test_allow_works_on_polymorphic_compare;
        ] );
      ( "scoped-exemption",
        [
          Alcotest.test_case "exempt drops scoped rules" `Quick
            test_exempt_drops_scoped_rules;
          Alcotest.test_case "exempt is rule-specific" `Quick
            test_exempt_is_rule_specific;
          Alcotest.test_case "exempt drops polymorphic-compare" `Quick
            test_exempt_drops_polymorphic_compare;
        ] );
      ( "parse",
        [
          Alcotest.test_case "parse error reported" `Quick test_parse_error;
          Alcotest.test_case "multiple findings counted" `Quick
            test_multiple_findings_counted;
        ] );
    ]
