(* congest-lint rule tests: every rule must fire on a known-bad inline
   fixture and stay silent on the known-good twin, the "lint: allow"
   escape hatch must suppress exactly one finding, and a dangling allow
   must itself be reported. These run the analyzer as a library
   (Lint_core.check_source) on source strings — no files involved. *)

let rules_of src =
  let findings, _ = Lint_core.check_source ~file:"fixture.ml" src in
  List.map (fun f -> f.Lint_core.rule) findings

let suppressed_of src = snd (Lint_core.check_source ~file:"fixture.ml" src)

let check_fires rule src () =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires" rule)
    true
    (List.mem rule (rules_of src))

let check_silent src () =
  Alcotest.(check (list string)) "no findings" [] (rules_of src)

(* --- nondet-random ------------------------------------------------- *)

let bad_random = "let roll () = Random.int 6\n"
let good_random = "let roll st = Random.State.int st 6\n"
let bad_self_init = "let () = Random.self_init ()\n"

(* --- nondet-clock -------------------------------------------------- *)

let bad_clock = "let stamp () = Sys.time ()\n"
let bad_unix = "let stamp () = Unix.gettimeofday ()\n"
let good_clock = "let stamp counter = incr counter; !counter\n"

(* --- nondet-hash --------------------------------------------------- *)

let bad_hash = "let key x = Hashtbl.hash x\n"
let good_hash = "let key (a, b) = (a * 65599) + b\n"

(* --- hashtbl-order ------------------------------------------------- *)

let bad_fold = "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n"
let bad_iter = "let send h f = Hashtbl.iter (fun k v -> f k v) h\n"

let good_fold_piped =
  "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort \
   Int.compare\n"

let good_fold_direct =
  "let keys h = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) \
   h [])\n"

(* cardinality via List.length is order-blind and sanctioned *)
let good_fold_length =
  "let size h = List.length (Hashtbl.fold (fun k _ acc -> k :: acc) h [])\n"

(* --- global-mutable-state ------------------------------------------ *)

let bad_global_ref = "let counter = ref 0\nlet bump () = incr counter\n"
let bad_global_table = "let cache = Hashtbl.create 16\n"
let bad_global_in_module = "module M = struct\n  let buf = Buffer.create 64\nend\n"
let good_local_ref = "let count xs =\n  let c = ref 0 in\n  List.iter (fun _ -> incr c) xs;\n  !c\n"
let good_immutable = "let limit = 64\nlet name = \"net\"\n"

(* --- obj-magic ----------------------------------------------------- *)

let bad_obj = "let coerce (x : int) : string = Obj.magic x\n"

(* --- physical-eq --------------------------------------------------- *)

let bad_phys_eq = "let same a b = a == b\n"
let bad_phys_neq = "let differ a b = a != b\n"
let good_struct_eq = "let same a b = a = b\n"

(* --- polymorphic-compare ------------------------------------------- *)

let bad_bare_compare = "let order xs = List.sort compare xs\n"
let bad_stdlib_compare = "let order xs = List.sort Stdlib.compare xs\n"
let bad_tuple_cmp = "let better w a b best = (w, a, b) < best\n"
let bad_some_cmp = "let won tbl k v = Hashtbl.find_opt tbl k = Some v\n"
let good_mono_compare = "let order xs = List.sort Int.compare xs\n"
let good_ident_cmp = "let better a b = a < b\n"

(* constant constructors compare immediately: must not fire *)
let good_none_cmp = "let missing o = o = None\n"

let allowed_compare =
  "(* lint: allow polymorphic-compare — cold path, keys are int pairs *)\n\
   let order xs = List.sort compare xs\n"

let test_allow_works_on_polymorphic_compare () =
  Alcotest.(check (list string)) "allow suppresses polymorphic-compare" []
    (rules_of allowed_compare);
  Alcotest.(check int) "one suppression" 1 (suppressed_of allowed_compare)

let test_exempt_drops_polymorphic_compare () =
  (* the driver scope-restricts this rule to lib/graph + lib/congest by
     exempting every other file; the exemption must drop the finding *)
  let findings, _ =
    Lint_core.check_source ~file:"lib/routing/broadcast.ml"
      ~exempt:[ "polymorphic-compare" ] bad_bare_compare
  in
  Alcotest.(check (list string)) "out-of-scope file is clean" []
    (List.map (fun f -> f.Lint_core.rule) findings)

(* --- silenced-warning ---------------------------------------------- *)

let bad_floating_attr = "[@@@warning \"-27\"]\nlet f x = 0\n"
let bad_expr_attr = "let f x = (ignore x [@warning \"-27\"])\n"

(* --- domain-spawn -------------------------------------------------- *)

let bad_spawn = "let fork f = Domain.spawn f\n"

let good_domain_query =
  "let width () = Domain.recommended_domain_count () - 1\n"

(* --- scoped exemption (lib/exec) ----------------------------------- *)

let exec_like =
  "let time_it f =\n\
  \  let t0 = Unix.gettimeofday () in\n\
  \  let d = Domain.spawn f in\n\
  \  let r = Domain.join d in\n\
  \  (r, Unix.gettimeofday () -. t0)\n"

let test_exempt_drops_scoped_rules () =
  let findings, _ =
    Lint_core.check_source ~file:"lib/exec/pool.ml"
      ~exempt:[ "domain-spawn"; "nondet-clock" ]
      exec_like
  in
  Alcotest.(check (list string)) "scope-exempt rules dropped" []
    (List.map (fun f -> f.Lint_core.rule) findings)

let test_exempt_is_rule_specific () =
  (* the exemption must not blanket-silence the file: a different rule
     in an exempted file still fires *)
  let findings, _ =
    Lint_core.check_source ~file:"lib/exec/pool.ml"
      ~exempt:[ "domain-spawn"; "nondet-clock" ]
      (exec_like ^ "let roll () = Random.int 6\n")
  in
  Alcotest.(check (list string)) "other rules still fire" [ "nondet-random" ]
    (List.map (fun f -> f.Lint_core.rule) findings)

let test_allow_works_on_domain_spawn () =
  let src =
    "(* lint: allow domain-spawn — test fixture *)\nlet fork f = Domain.spawn \
     f\n"
  in
  Alcotest.(check (list string)) "allow suppresses domain-spawn" []
    (rules_of src);
  Alcotest.(check int) "one suppression" 1 (suppressed_of src)

(* --- escape hatch -------------------------------------------------- *)

let allowed_fold =
  "(* lint: allow hashtbl-order — commutative min over entries *)\n\
   let best h = Hashtbl.fold (fun _ v acc -> min v acc) h max_int\n"

let allow_suppresses_only_its_rule =
  "(* lint: allow hashtbl-order — wrong rule for this finding *)\n\
   let roll () = Random.int 6\n"

let unused_allow = "(* lint: allow nondet-random — nothing here *)\nlet x = 1\n"

let stacked_allows =
  "(* lint: allow hashtbl-order — first *)\n\
   let a h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n\
   (* lint: allow hashtbl-order — second *)\n\
   let b h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n"

let test_allow_suppresses () =
  Alcotest.(check (list string)) "no findings" [] (rules_of allowed_fold);
  Alcotest.(check int) "one suppression" 1 (suppressed_of allowed_fold)

let test_allow_rule_specific () =
  Alcotest.(check bool) "nondet-random still fires" true
    (List.mem "nondet-random" (rules_of allow_suppresses_only_its_rule));
  Alcotest.(check bool) "dangling allow reported" true
    (List.mem "unused-allow" (rules_of allow_suppresses_only_its_rule))

let test_unused_allow () =
  Alcotest.(check (list string)) "reported" [ "unused-allow" ]
    (rules_of unused_allow)

let test_stacked_allows () =
  (* nearest-match binding: each allow claims the finding directly below
     it, so two stacked pairs leave nothing unsuppressed and no unused *)
  Alcotest.(check (list string)) "all suppressed" [] (rules_of stacked_allows);
  Alcotest.(check int) "two suppressions" 2 (suppressed_of stacked_allows)

(* --- parse-error --------------------------------------------------- *)

let test_parse_error () =
  Alcotest.(check bool) "unparsable source reported" true
    (List.mem "parse-error" (rules_of "let let let = = ="))

(* ------------------------------------------------------------------- *)
(* Typedtree rules (Typed_lint.fixture_findings typechecks the fixture
   in-process and runs the same walks the driver runs on a .cmt). *)

let typed_rules_of src =
  List.map (fun f -> f.Lint_core.rule) (Typed_lint.fixture_findings src)

let typed_fires rule src name =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "%s fires" rule)
        true
        (List.mem rule (typed_rules_of src)))

let typed_silent_on rule src name =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "%s does not fire" rule)
        false
        (List.mem rule (typed_rules_of src)))

(* --- domain-race --------------------------------------------------- *)

let race_captured_ref =
  "let f () =\n\
  \  let hits = ref 0 in\n\
  \  let d = Domain.spawn (fun () -> hits := !hits + 1) in\n\
  \  ignore (Domain.join d);\n\
  \  !hits\n"

(* the acceptance fixture: a module alias hides the spawn from any
   spelling-based (parsetree) analysis, but not from the typedtree *)
let race_aliased_spawn =
  "module D = Domain\n\
   let f () =\n\
  \  let hits = ref 0 in\n\
  \  let d = D.spawn (fun () -> hits := !hits + 1) in\n\
  \  ignore (D.join d);\n\
  \  !hits\n"

let race_constant_slot =
  "let f () =\n\
  \  let slots = Array.make 2 0 in\n\
  \  let d = Domain.spawn (fun () -> slots.(0) <- 1) in\n\
  \  ignore (Domain.join d);\n\
  \  slots\n"

let race_hashtbl =
  "let f tbl =\n\
  \  let d = Domain.spawn (fun () -> Hashtbl.replace tbl 0 1) in\n\
  \  ignore (Domain.join d)\n"

(* a spawn closure calling a let-bound sibling loop is followed onto the
   spawned domain *)
let race_via_worker =
  "let f () =\n\
  \  let total = ref 0 in\n\
  \  let rec worker k =\n\
  \    if k > 0 then begin total := !total + k; worker (k - 1) end\n\
  \  in\n\
  \  let d = Domain.spawn (fun () -> worker 3) in\n\
  \  ignore (Domain.join d);\n\
  \  !total\n"

(* module-level state mutated by a function merely *reachable* from a
   spawn closure (interprocedural pass) *)
let race_module_state =
  "let tally = ref 0\n\
   let bump () = tally := !tally + 1\n\
   let go () = Domain.spawn bump\n"

(* a pool-style entry point (suffix-matched like Exec.Pool.run) also
   counts as a domain boundary *)
let race_pool_entry =
  "module Pool = struct\n\
  \  let run ~jobs f = ignore jobs; f 0\n\
   end\n\
   let f () =\n\
  \  let acc = ref [] in\n\
  \  Pool.run ~jobs:2 (fun i -> acc := i :: !acc)\n"

(* a Team.run-style entry point (the sharded round engine): the shard
   body — the last unlabelled argument — executes on worker domains *)
let team_prelude =
  "module Team = struct\n\
  \  let run _t ?main ~shards fn =\n\
  \    (match main with Some f -> f () | None -> ());\n\
  \    for k = 0 to shards - 1 do fn k done\n\
   end\n"

let race_team_entry =
  team_prelude
  ^ "let f t =\n\
    \  let acc = ref [] in\n\
    \  Team.run t ~shards:2 (fun k -> acc := k :: !acc);\n\
    \  !acc\n"

(* shard-owned slots indexed by the shard argument are the sanctioned
   discipline of the shard-merge boundary *)
let good_team_slotted =
  team_prelude
  ^ "let f t n =\n\
    \  let slots = Array.make n 0 in\n\
    \  Team.run t ~shards:n (fun k -> slots.(k) <- k);\n\
    \  slots\n"

(* the labelled ~main thunk stays on the calling domain (the sequential
   digest slot) and must not be treated as cross-domain *)
let good_team_main_thunk =
  team_prelude
  ^ "let f t =\n\
    \  let h = ref 0 in\n\
    \  Team.run t ~main:(fun () -> h := !h + 1) ~shards:2 (fun _ -> ());\n\
    \  !h\n"

let good_atomic =
  "let f () =\n\
  \  let hits = Atomic.make 0 in\n\
  \  let d = Domain.spawn (fun () -> Atomic.incr hits) in\n\
  \  ignore (Domain.join d);\n\
  \  Atomic.get hits\n"

let good_index_slot =
  "let f n =\n\
  \  let slots = Array.make n 0 in\n\
  \  let ds = List.init n (fun i -> Domain.spawn (fun () -> slots.(i) <- 1)) in\n\
  \  List.iter (fun d -> ignore (Domain.join d)) ds;\n\
  \  slots\n"

let good_closure_local =
  "let f () =\n\
  \  let d = Domain.spawn (fun () -> let c = ref 0 in incr c; !c) in\n\
  \  Domain.join d\n"

(* mutation outside any spawn closure is single-domain and fine *)
let good_no_spawn =
  "let f xs =\n\
  \  let c = ref 0 in\n\
  \  List.iter (fun _ -> incr c) xs;\n\
  \  !c\n"

(* --- msg-budget ---------------------------------------------------- *)

(* a local module named Net satisfies the suffix match exactly like
   Congest.Net does in the tree *)
let net_prelude =
  "module Net = struct\n\
  \  let broadcast_round (n : int) (send : int -> int array option) =\n\
  \    ignore n; ignore send\n\
   end\n"

let budget_of_list =
  net_prelude
  ^ "let f n xs = Net.broadcast_round n (fun _ -> Some (Array.of_list xs))\n"

let budget_wide_literal =
  net_prelude
  ^ "let f n = Net.broadcast_round n (fun _ -> Some [| 0; 1; 2; 3; 4; 5; 6; \
     7; 8 |])\n"

let budget_make_nonconst =
  net_prelude
  ^ "let f n w = Net.broadcast_round n (fun _ -> Some (Array.make w 0))\n"

(* the send closure bound beside the call site is still walked *)
let budget_local_send =
  net_prelude
  ^ "let f n xs =\n\
    \  let send _ = Some (Array.of_list xs) in\n\
    \  Net.broadcast_round n send\n"

let good_budget_literal =
  net_prelude ^ "let f n = Net.broadcast_round n (fun v -> Some [| v; 1 |])\n"

let good_budget_const_make =
  net_prelude
  ^ "let f n = Net.broadcast_round n (fun _ -> Some (Array.make 4 0))\n"

(* of_list far from any send closure is not a message *)
let good_of_list_elsewhere = "let f xs = Array.of_list xs\n"

(* --- typed ports see through aliases -------------------------------- *)

let aliased_random = "module R = Random\nlet roll () = R.int 6\n"
let aliased_obj = "module O = Obj\nlet c (x : int) : string = O.magic x\n"

let typed_good_sorted_fold =
  "let keys h =\n\
  \  Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort Int.compare\n"

let typed_bad_fold = "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n"

(* --- typecheck-error ----------------------------------------------- *)

let test_typecheck_error () =
  Alcotest.(check (list string)) "ill-typed fixture reported"
    [ "typecheck-error" ]
    (typed_rules_of "let x : int = \"s\"\n")

(* --- the acceptance comparison: parsetree misses, typedtree catches - *)

let test_aliased_spawn_beats_parsetree () =
  let parse_rules = rules_of race_aliased_spawn in
  Alcotest.(check bool) "parsetree misses the aliased spawn" false
    (List.mem "domain-spawn" parse_rules);
  Alcotest.(check bool) "parsetree misses the race" false
    (List.mem "domain-race" parse_rules);
  let typed_rules = typed_rules_of race_aliased_spawn in
  Alcotest.(check bool) "typedtree catches the spawn" true
    (List.mem "domain-spawn" typed_rules);
  Alcotest.(check bool) "typedtree catches the race" true
    (List.mem "domain-race" typed_rules)

(* ------------------------------------------------------------------- *)
(* Suppression auditor *)

let test_bare_allow_reported () =
  let src =
    "(* lint: allow hashtbl-order *)\n\
     let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n"
  in
  let rules = rules_of src in
  Alcotest.(check bool) "finding suppressed" false
    (List.mem "hashtbl-order" rules);
  Alcotest.(check bool) "bare allow reported" true
    (List.mem "bare-allow" rules)

let test_msg_budget_allow_needs_model () =
  let src = "(* lint: allow msg-budget — it is tiny *)\nlet x = 1\n" in
  let allows = Lint_core.scan_allows src in
  let finding =
    { Lint_core.file = "f.ml"; line = 2; col = 0; rule = "msg-budget";
      message = "m" }
  in
  let kept, suppressed = Lint_core.apply_allows ~file:"f.ml" ~allows [ finding ] in
  Alcotest.(check int) "finding suppressed" 1 suppressed;
  Alcotest.(check (list string)) "but flagged for missing Model anchor"
    [ "bare-allow" ]
    (List.map (fun f -> f.Lint_core.rule) kept)

let test_msg_budget_allow_with_model () =
  let src =
    "(* lint: allow msg-budget — 2 words, within Model.words_budget *)\n\
     let x = 1\n"
  in
  let allows = Lint_core.scan_allows src in
  let finding =
    { Lint_core.file = "f.ml"; line = 2; col = 0; rule = "msg-budget";
      message = "m" }
  in
  let kept, suppressed = Lint_core.apply_allows ~file:"f.ml" ~allows [ finding ] in
  Alcotest.(check int) "finding suppressed" 1 suppressed;
  Alcotest.(check (list string)) "no audit findings" []
    (List.map (fun f -> f.Lint_core.rule) kept)

let test_obs_clock_allow_needs_metrics () =
  (* inside lib/obs a nondet-clock allow must cite the metrics
     determinism boundary, same shape as the msg-budget Model anchor *)
  let src = "(* lint: allow nondet-clock — timing stuff *)\nlet x = 1\n" in
  let allows = Lint_core.scan_allows src in
  let finding =
    { Lint_core.file = "lib/obs/span.ml"; line = 2; col = 0;
      rule = "nondet-clock"; message = "m" }
  in
  let kept, suppressed =
    Lint_core.apply_allows ~file:"lib/obs/span.ml" ~allows [ finding ]
  in
  Alcotest.(check int) "finding suppressed" 1 suppressed;
  Alcotest.(check (list string)) "but flagged for missing metrics anchor"
    [ "bare-allow" ]
    (List.map (fun f -> f.Lint_core.rule) kept)

let test_obs_clock_allow_with_metrics () =
  let src =
    "(* lint: allow nondet-clock — span timestamps are observability \
     metrics only; never in payloads or digests *)\n\
     let x = 1\n"
  in
  let allows = Lint_core.scan_allows src in
  let finding =
    { Lint_core.file = "lib/obs/span.ml"; line = 2; col = 0;
      rule = "nondet-clock"; message = "m" }
  in
  let kept, suppressed =
    Lint_core.apply_allows ~file:"lib/obs/span.ml" ~allows [ finding ]
  in
  Alcotest.(check int) "finding suppressed" 1 suppressed;
  Alcotest.(check (list string)) "no audit findings" []
    (List.map (fun f -> f.Lint_core.rule) kept);
  (* the same reason outside lib/obs is also fine — the rule is scoped *)
  let src' = "(* lint: allow nondet-clock — wall-clock deadline *)\nlet x = 1\n" in
  let allows' = Lint_core.scan_allows src' in
  let finding' =
    { Lint_core.file = "lib/serve/worker.ml"; line = 2; col = 0;
      rule = "nondet-clock"; message = "m" }
  in
  let kept', _ =
    Lint_core.apply_allows ~file:"lib/serve/worker.ml" ~allows:allows'
      [ finding' ]
  in
  Alcotest.(check (list string)) "unscoped file not audited" []
    (List.map (fun f -> f.Lint_core.rule) kept')

let test_shard_allow_needs_boundary () =
  (* inside lib/congest a domain-spawn/domain-race allow must cite the
     shard-merge determinism boundary, same shape as the lib/obs
     metrics anchor *)
  List.iter
    (fun rule ->
      let src =
        Printf.sprintf "(* lint: allow %s — it is fine *)\nlet x = 1\n" rule
      in
      let allows = Lint_core.scan_allows src in
      let finding =
        { Lint_core.file = "lib/congest/team.ml"; line = 2; col = 0; rule;
          message = "m" }
      in
      let kept, suppressed =
        Lint_core.apply_allows ~file:"lib/congest/team.ml" ~allows [ finding ]
      in
      Alcotest.(check int) (rule ^ " suppressed") 1 suppressed;
      Alcotest.(check (list string))
        (rule ^ " flagged for missing shard-merge anchor")
        [ "bare-allow" ]
        (List.map (fun f -> f.Lint_core.rule) kept))
    [ "domain-spawn"; "domain-race" ]

let test_shard_allow_with_boundary () =
  let src =
    "(* lint: allow domain-spawn — persistent round team; shard bodies \
     write shard-owned slots only, merged in shard order (shard-merge \
     boundary) *)\n\
     let x = 1\n"
  in
  let allows = Lint_core.scan_allows src in
  let finding =
    { Lint_core.file = "lib/congest/team.ml"; line = 2; col = 0;
      rule = "domain-spawn"; message = "m" }
  in
  let kept, suppressed =
    Lint_core.apply_allows ~file:"lib/congest/team.ml" ~allows [ finding ]
  in
  Alcotest.(check int) "finding suppressed" 1 suppressed;
  Alcotest.(check (list string)) "no audit findings" []
    (List.map (fun f -> f.Lint_core.rule) kept);
  (* the same rule outside lib/congest is not held to this anchor *)
  let src' = "(* lint: allow domain-spawn — test fixture *)\nlet x = 1\n" in
  let allows' = Lint_core.scan_allows src' in
  let finding' =
    { Lint_core.file = "bench/driver.ml"; line = 2; col = 0;
      rule = "domain-spawn"; message = "m" }
  in
  let kept', _ =
    Lint_core.apply_allows ~file:"bench/driver.ml" ~allows:allows' [ finding' ]
  in
  Alcotest.(check (list string)) "unscoped file not audited" []
    (List.map (fun f -> f.Lint_core.rule) kept')

let test_multiline_allow () =
  (* the justification may span lines; suppression anchors on the line
     the comment closes, and the Model anchor may sit on any of them *)
  let src =
    "(* lint: allow msg-budget — chunked to a fixed width,\n\
    \   each packet stays within Model.words_budget *)\n\
     let x = 1\n"
  in
  match Lint_core.scan_allows src with
  | [ a ] ->
    Alcotest.(check int) "anchored on the closing line" 2 a.Lint_core.a_line;
    Alcotest.(check bool) "reason crosses the line break" true
      (String.length a.Lint_core.a_reason > 20)
  | l -> Alcotest.failf "expected one allow, got %d" (List.length l)

(* ------------------------------------------------------------------- *)
(* SARIF *)

let sample_findings =
  [
    { Lint_core.file = "lib/a.ml"; line = 3; col = 4; rule = "domain-race";
      message = "r1" };
    { Lint_core.file = "lib/b.ml"; line = 7; col = 0; rule = "msg-budget";
      message = "r2" };
  ]

let test_sarif_well_formed () =
  let doc =
    Sarif.report ~rules:Lint_core.rules
      ~baseline_state:(fun f ->
        if f.Lint_core.rule = "msg-budget" then Some "new" else Some "unchanged")
      sample_findings
  in
  let json = Sarif.Json.parse (Sarif.Json.to_string doc) in
  let str_member k j =
    Option.bind (Sarif.Json.member k j) Sarif.Json.as_string
  in
  Alcotest.(check (option string)) "schema"
    (Some "https://json.schemastore.org/sarif-2.1.0.json")
    (str_member "$schema" json);
  Alcotest.(check (option string)) "version" (Some "2.1.0")
    (str_member "version" json);
  let run =
    match Option.bind (Sarif.Json.member "runs" json) Sarif.Json.as_list with
    | Some [ r ] -> r
    | _ -> Alcotest.fail "expected exactly one run"
  in
  let driver =
    match Option.bind (Sarif.Json.member "tool" run) (Sarif.Json.member "driver") with
    | Some d -> d
    | None -> Alcotest.fail "missing tool.driver"
  in
  Alcotest.(check (option string)) "driver name" (Some "congest-lint")
    (str_member "name" driver);
  (match Option.bind (Sarif.Json.member "rules" driver) Sarif.Json.as_list with
  | Some rules ->
    Alcotest.(check int) "one descriptor per rule"
      (List.length Lint_core.rules) (List.length rules);
    Alcotest.(check bool) "every descriptor has an id" true
      (List.for_all (fun r -> str_member "id" r <> None) rules)
  | None -> Alcotest.fail "missing driver.rules");
  match Option.bind (Sarif.Json.member "results" run) Sarif.Json.as_list with
  | Some [ r1; r2 ] ->
    Alcotest.(check (option string)) "ruleId" (Some "domain-race")
      (str_member "ruleId" r1);
    Alcotest.(check (option string)) "level" (Some "error")
      (str_member "level" r1);
    Alcotest.(check (option string)) "baselineState carries the diff"
      (Some "new")
      (str_member "baselineState" r2);
    let start_line =
      Option.bind (Sarif.Json.member "locations" r1) Sarif.Json.as_list
      |> Fun.flip Option.bind (function l :: _ -> Some l | [] -> None)
      |> Fun.flip Option.bind (Sarif.Json.member "physicalLocation")
      |> Fun.flip Option.bind (Sarif.Json.member "region")
      |> Fun.flip Option.bind (Sarif.Json.member "startLine")
      |> Fun.flip Option.bind Sarif.Json.as_int
    in
    Alcotest.(check (option int)) "startLine" (Some 3) start_line
  | _ -> Alcotest.fail "expected two results"

(* ------------------------------------------------------------------- *)
(* Baseline diff *)

let test_baseline_diff () =
  let base = Baseline.of_findings sample_findings in
  (* identical findings: everything tracked, nothing new *)
  let d = Baseline.diff base sample_findings in
  Alcotest.(check int) "no new findings" 0 d.Baseline.new_count;
  Alcotest.(check int) "both tracked" 2 d.Baseline.tracked_count;
  Alcotest.(check int) "nothing resolved" 0 (List.length d.Baseline.resolved);
  (* one extra finding in a tracked bucket: exactly one is new *)
  let extra =
    { Lint_core.file = "lib/a.ml"; line = 9; col = 0; rule = "domain-race";
      message = "r3" }
  in
  let d = Baseline.diff base (sample_findings @ [ extra ]) in
  Alcotest.(check int) "surplus finding is new" 1 d.Baseline.new_count;
  Alcotest.(check string) "the surplus one is the new one" "new"
    (d.Baseline.state extra);
  (* a bucket that emptied out is surfaced as resolved *)
  let d = Baseline.diff base [ List.hd sample_findings ] in
  Alcotest.(check int) "resolved bucket surfaced" 1
    (List.length d.Baseline.resolved)

let test_baseline_roundtrip () =
  let path = Filename.temp_file "lint_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Baseline.save path (Baseline.of_findings sample_findings);
      match Baseline.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok t ->
        let d = Baseline.diff t sample_findings in
        Alcotest.(check int) "roundtrip tracks everything" 0
          d.Baseline.new_count)

let test_baseline_rejects_garbage () =
  let path = Filename.temp_file "lint_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"not\": \"an array\"}";
      close_out oc;
      match Baseline.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage baseline accepted")

(* --- self-check: the shipped tree is clean ------------------------- *)

let test_multiple_findings_counted () =
  let src = "let a () = Random.int 2\nlet b () = Random.bool ()\n" in
  Alcotest.(check int) "both sites reported" 2 (List.length (rules_of src))

let fires rule src name = Alcotest.test_case name `Quick (check_fires rule src)
let silent src name = Alcotest.test_case name `Quick (check_silent src)

let () =
  Alcotest.run "lint"
    [
      ( "fires-on-bad",
        [
          fires "nondet-random" bad_random "Random.int";
          fires "nondet-random" bad_self_init "Random.self_init";
          fires "nondet-clock" bad_clock "Sys.time";
          fires "nondet-clock" bad_unix "Unix.gettimeofday";
          fires "nondet-hash" bad_hash "Hashtbl.hash";
          fires "hashtbl-order" bad_fold "bare fold";
          fires "hashtbl-order" bad_iter "bare iter";
          fires "global-mutable-state" bad_global_ref "toplevel ref";
          fires "global-mutable-state" bad_global_table "toplevel Hashtbl";
          fires "global-mutable-state" bad_global_in_module "ref inside module";
          fires "obj-magic" bad_obj "Obj.magic";
          fires "physical-eq" bad_phys_eq "(==)";
          fires "physical-eq" bad_phys_neq "(!=)";
          fires "silenced-warning" bad_floating_attr "floating attribute";
          fires "silenced-warning" bad_expr_attr "expression attribute";
          fires "domain-spawn" bad_spawn "Domain.spawn";
          fires "polymorphic-compare" bad_bare_compare "bare compare";
          fires "polymorphic-compare" bad_stdlib_compare "Stdlib.compare";
          fires "polymorphic-compare" bad_tuple_cmp "tuple operand";
          fires "polymorphic-compare" bad_some_cmp "Some payload operand";
        ] );
      ( "silent-on-good",
        [
          silent good_random "Random.State";
          silent good_clock "logical clock";
          silent good_hash "explicit hash";
          silent good_fold_piped "fold |> sort";
          silent good_fold_direct "sort (fold ...)";
          silent good_fold_length "List.length (fold ...)";
          silent good_local_ref "function-local ref";
          silent good_immutable "immutable toplevel";
          silent good_struct_eq "structural equality";
          silent good_domain_query "Domain.recommended_domain_count";
          silent good_mono_compare "Int.compare comparator";
          silent good_ident_cmp "(<) on identifiers";
          silent good_none_cmp "(=) against None";
        ] );
      ( "escape-hatch",
        [
          Alcotest.test_case "allow suppresses" `Quick test_allow_suppresses;
          Alcotest.test_case "allow is rule-specific" `Quick
            test_allow_rule_specific;
          Alcotest.test_case "unused allow reported" `Quick test_unused_allow;
          Alcotest.test_case "stacked allows bind nearest" `Quick
            test_stacked_allows;
          Alcotest.test_case "allow works on domain-spawn" `Quick
            test_allow_works_on_domain_spawn;
          Alcotest.test_case "allow works on polymorphic-compare" `Quick
            test_allow_works_on_polymorphic_compare;
        ] );
      ( "scoped-exemption",
        [
          Alcotest.test_case "exempt drops scoped rules" `Quick
            test_exempt_drops_scoped_rules;
          Alcotest.test_case "exempt is rule-specific" `Quick
            test_exempt_is_rule_specific;
          Alcotest.test_case "exempt drops polymorphic-compare" `Quick
            test_exempt_drops_polymorphic_compare;
        ] );
      ( "parse",
        [
          Alcotest.test_case "parse error reported" `Quick test_parse_error;
          Alcotest.test_case "multiple findings counted" `Quick
            test_multiple_findings_counted;
        ] );
      ( "typed-domain-race",
        [
          typed_fires "domain-race" race_captured_ref "captured ref";
          typed_fires "domain-race" race_constant_slot "constant index slot";
          typed_fires "domain-race" race_hashtbl "captured Hashtbl";
          typed_fires "domain-race" race_via_worker "via let-bound worker";
          typed_fires "domain-race" race_module_state
            "module state, interprocedural";
          typed_fires "domain-race" race_pool_entry "pool-style entry point";
          typed_fires "domain-race" race_team_entry "Team.run shard body";
          typed_silent_on "domain-race" good_team_slotted
            "shard-owned slots in Team.run";
          typed_silent_on "domain-race" good_team_main_thunk
            "~main thunk stays on the caller";
          typed_silent_on "domain-race" good_atomic "Atomic discipline";
          typed_silent_on "domain-race" good_index_slot "per-domain slot";
          typed_silent_on "domain-race" good_closure_local "closure-local ref";
          typed_silent_on "domain-race" good_no_spawn "no spawn, no race";
          Alcotest.test_case "aliased spawn: typed catches, parsetree misses"
            `Quick test_aliased_spawn_beats_parsetree;
        ] );
      ( "typed-msg-budget",
        [
          typed_fires "msg-budget" budget_of_list "Array.of_list in send";
          typed_fires "msg-budget" budget_wide_literal "9-word literal";
          typed_fires "msg-budget" budget_make_nonconst "non-constant make";
          typed_fires "msg-budget" budget_local_send "let-bound send closure";
          typed_silent_on "msg-budget" good_budget_literal "2-word literal";
          typed_silent_on "msg-budget" good_budget_const_make "Array.make 4";
          typed_silent_on "msg-budget" good_of_list_elsewhere
            "of_list outside any send";
        ] );
      ( "typed-ports",
        [
          typed_fires "nondet-random" aliased_random "aliased Random";
          typed_fires "obj-magic" aliased_obj "aliased Obj";
          typed_fires "hashtbl-order" typed_bad_fold "bare fold (typed)";
          typed_silent_on "hashtbl-order" typed_good_sorted_fold
            "piped sort sanctions (typed)";
          Alcotest.test_case "ill-typed fixture reported" `Quick
            test_typecheck_error;
        ] );
      ( "suppression-audit",
        [
          Alcotest.test_case "bare allow reported" `Quick
            test_bare_allow_reported;
          Alcotest.test_case "msg-budget allow needs Model anchor" `Quick
            test_msg_budget_allow_needs_model;
          Alcotest.test_case "msg-budget allow with Model passes" `Quick
            test_msg_budget_allow_with_model;
          Alcotest.test_case "lib/obs clock allow needs metrics anchor" `Quick
            test_obs_clock_allow_needs_metrics;
          Alcotest.test_case "lib/obs clock allow with metrics passes" `Quick
            test_obs_clock_allow_with_metrics;
          Alcotest.test_case "lib/congest shard allow needs shard-merge anchor"
            `Quick test_shard_allow_needs_boundary;
          Alcotest.test_case "lib/congest shard allow with shard-merge passes"
            `Quick test_shard_allow_with_boundary;
          Alcotest.test_case "multi-line allow" `Quick test_multiline_allow;
        ] );
      ( "sarif",
        [ Alcotest.test_case "well-formed report" `Quick test_sarif_well_formed ] );
      ( "baseline",
        [
          Alcotest.test_case "diff classifies new vs tracked" `Quick
            test_baseline_diff;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_baseline_rejects_garbage;
        ] );
    ]
