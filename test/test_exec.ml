(* The multicore experiment engine (lib/exec): determinism of the
   domain pool, the content-addressed memo cache (hit / version bump /
   corruption recovery), crash containment, sweep rendering, and the
   chaos grid's -j N ≡ -j 1 digest equality. Plus the Graphs.Source
   regression: the verify-and-retry pipeline must construct its graph
   exactly once however many attempts it burns. *)

module Job = Exec.Job
module Cache = Exec.Cache
module Pool = Exec.Pool
module Sweep = Exec.Sweep

(* ------------------------------------------------------------------ *)
(* Job keys *)

let test_key_param_order_insensitive () =
  let f () = Job.payload "x" in
  let a = Job.make ~algo:"a" ~params:[ ("n", "4"); ("k", "2") ] ~seed:1 f in
  let b = Job.make ~algo:"a" ~params:[ ("k", "2"); ("n", "4") ] ~seed:1 f in
  Alcotest.(check string) "sorted params, same key" (Job.key a) (Job.key b)

let test_key_separates_inputs () =
  let f () = Job.payload "x" in
  let mk ~algo ~params ~seed = Job.key (Job.make ~algo ~params ~seed f) in
  let base = mk ~algo:"a" ~params:[ ("n", "4") ] ~seed:1 in
  Alcotest.(check bool) "seed changes key" true
    (base <> mk ~algo:"a" ~params:[ ("n", "4") ] ~seed:2);
  Alcotest.(check bool) "algo changes key" true
    (base <> mk ~algo:"b" ~params:[ ("n", "4") ] ~seed:1);
  Alcotest.(check bool) "param changes key" true
    (base <> mk ~algo:"a" ~params:[ ("n", "5") ] ~seed:1);
  (* concatenation ambiguity: ("ab","c")+("d","") vs ("a","bc")+("d","") *)
  Alcotest.(check bool) "no field-boundary collisions" true
    (mk ~algo:"a" ~params:[ ("ab", "cd") ] ~seed:1
    <> mk ~algo:"a" ~params:[ ("abc", "d") ] ~seed:1)

(* ------------------------------------------------------------------ *)
(* Pool: parallel ≡ sequential bit-identity on random grids *)

(* A deterministic pseudo-payload: every byte derives from the job's
   own integers, never from schedule, domain id, or time. *)
let synth_payload tag n =
  let st = Random.State.make [| 97; tag; n |] in
  String.init (16 + (n mod 48)) (fun _ ->
      Char.chr (32 + Random.State.int st 95))

let test_pool_matches_sequential =
  QCheck.Test.make ~name:"pool: domains=4 outcomes = domains=1 outcomes"
    ~count:30
    QCheck.(list_of_size Gen.(int_range 0 25) (int_bound 1000))
    (fun tags ->
      let tasks =
        Array.of_list
          (List.mapi (fun i tag () -> synth_payload tag i) tags)
      in
      let seq = Pool.run ~domains:1 tasks in
      let par = Pool.run ~domains:4 tasks in
      seq.Pool.results = par.Pool.results)

let test_pool_preserves_index_order () =
  let tasks = Array.init 50 (fun i () -> i * i) in
  let r = Pool.run ~domains:4 tasks in
  Array.iteri
    (fun i o ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d holds task %d" i i)
        true
        (o = `Ok (i * i)))
    r.Pool.results

let test_pool_contains_crashes () =
  let tasks =
    Array.init 8 (fun i () ->
        if i = 3 then failwith "boom-3"
        else if i = 6 then invalid_arg "boom-6"
        else i)
  in
  let r = Pool.run ~domains:4 tasks in
  Array.iteri
    (fun i o ->
      match (i, o) with
      | 3, `Failed msg ->
        Alcotest.(check bool) "task 3 message" true
          (String.length msg > 0)
      | 6, `Failed _ -> ()
      | (3 | 6), `Ok _ -> Alcotest.fail "crashing task reported Ok"
      | _, `Ok v -> Alcotest.(check int) "healthy task unaffected" i v
      | _, `Failed m -> Alcotest.fail ("healthy task failed: " ^ m))
    r.Pool.results

let test_pool_empty_and_oversubscribed () =
  let r = Pool.run ~domains:4 [||] in
  Alcotest.(check int) "empty grid" 0 (Array.length r.Pool.results);
  (* more domains than tasks must not wedge or duplicate *)
  let r = Pool.run ~domains:16 (Array.init 3 (fun i () -> i)) in
  Alcotest.(check bool) "3 tasks, 16 domains" true
    (r.Pool.results = [| `Ok 0; `Ok 1; `Ok 2 |])

(* ------------------------------------------------------------------ *)
(* Cache *)

let fresh_cache_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Printf.sprintf "_test_cache_%d_%d" (Unix.getpid ()) !n in
    if Sys.file_exists d then
      Array.iter
        (fun sub ->
          let subp = Filename.concat d sub in
          Array.iter
            (fun f -> Sys.remove (Filename.concat subp f))
            (Sys.readdir subp))
        (Sys.readdir d);
    d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let payload_eq : Job.payload Alcotest.testable =
  Alcotest.testable
    (fun ppf (p : Job.payload) -> Format.fprintf ppf "%S" p.Job.out)
    ( = )

let test_cache_roundtrip () =
  with_cache_dir @@ fun dir ->
  let c = Cache.open_dir dir in
  let p =
    Job.payload ~rows:[ "a,1"; "b,2" ] ~meta:[ ("k", "v") ] "table text\n"
  in
  Alcotest.(check (option payload_eq)) "cold miss" None (Cache.find c ~key:"k1");
  Cache.store c ~key:"k1" p;
  Alcotest.(check (option payload_eq)) "hit after store" (Some p)
    (Cache.find c ~key:"k1");
  Alcotest.(check int) "one hit" 1 (Cache.hits c);
  Alcotest.(check int) "one miss" 1 (Cache.misses c)

let test_cache_version_bump_invalidates () =
  with_cache_dir @@ fun dir ->
  let c1 = Cache.open_dir ~version:1 dir in
  Cache.store c1 ~key:"k" (Job.payload "old");
  let c2 = Cache.open_dir ~version:2 dir in
  Alcotest.(check (option payload_eq)) "bumped version misses" None
    (Cache.find c2 ~key:"k");
  (* the old generation is untouched — rollback still hits *)
  let c1' = Cache.open_dir ~version:1 dir in
  Alcotest.(check bool) "old version still hits" true
    (Cache.find c1' ~key:"k" <> None)

let quarantine_entries c =
  let qdir = Filename.concat (Cache.dir c) "_quarantine" in
  if Sys.file_exists qdir then Array.to_list (Sys.readdir qdir) else []

let test_cache_corruption_recovers () =
  with_cache_dir @@ fun dir ->
  let c = Cache.open_dir dir in
  let p = Job.payload ~rows:[ "r" ] "good" in
  Cache.store c ~key:"kc" p;
  let path = Filename.concat (Cache.dir c) "kc" in
  Alcotest.(check bool) "entry on disk" true (Sys.file_exists path);
  (* truncate/garble the entry *)
  let oc = open_out_bin path in
  output_string oc "EXEC-CACHE\ngarbage";
  close_out oc;
  Alcotest.(check (option payload_eq)) "corrupt entry is a miss" None
    (Cache.find c ~key:"kc");
  (* the evidence is moved aside, never served and never destroyed *)
  Alcotest.(check bool) "corrupt file vacated the entry slot" false
    (Sys.file_exists path);
  Alcotest.(check int) "quarantine counted" 1 (Cache.quarantined c);
  (match quarantine_entries c with
  | [ name ] ->
    Alcotest.(check bool) "quarantined under the original key" true
      (String.length name > 3 && String.sub name 0 3 = "kc.")
  | q -> Alcotest.failf "quarantine holds %d files, wanted 1" (List.length q));
  (* recompute-and-overwrite, then hit again *)
  Cache.store c ~key:"kc" p;
  Alcotest.(check (option payload_eq)) "recovered" (Some p)
    (Cache.find c ~key:"kc")

let test_cache_scan_quarantines_corruption () =
  with_cache_dir @@ fun dir ->
  let c = Cache.open_dir dir in
  List.iter
    (fun key -> Cache.store c ~key (Job.payload ~rows:[ key ] key))
    [ "a"; "b"; "z" ];
  (* bit-flip one entry on disk without touching it through the API *)
  let victim = Filename.concat (Cache.dir c) "b" in
  let bytes = In_channel.with_open_bin victim In_channel.input_all in
  let garbled = Bytes.of_string bytes in
  let mid = Bytes.length garbled / 2 in
  Bytes.set garbled mid (Char.chr (Char.code (Bytes.get garbled mid) lxor 1));
  Out_channel.with_open_bin victim (fun oc ->
      Out_channel.output_bytes oc garbled);
  let r = Cache.scan c in
  Alcotest.(check int) "all entries examined" 3 r.Cache.scanned;
  Alcotest.(check int) "two decode cleanly" 2 r.Cache.valid;
  Alcotest.(check int) "the garbled one is swept" 1 r.Cache.swept;
  Alcotest.(check int) "sweep counted as quarantine" 1 (Cache.quarantined c);
  Alcotest.(check int) "evidence preserved" 1
    (List.length (quarantine_entries c));
  (* after a scan, everything still in place is servable *)
  let r' = Cache.scan c in
  Alcotest.(check int) "second scan sees survivors only" 2 r'.Cache.scanned;
  Alcotest.(check int) "and sweeps nothing" 0 r'.Cache.swept;
  Alcotest.(check bool) "survivors still hit" true
    (Cache.find c ~key:"a" <> None && Cache.find c ~key:"z" <> None);
  Alcotest.(check (option payload_eq)) "the swept key is a clean miss" None
    (Cache.find c ~key:"b")

let test_cache_scan_skips_vanishing_entries () =
  with_cache_dir @@ fun dir ->
  let c = Cache.open_dir dir in
  List.iter
    (fun key -> Cache.store c ~key (Job.payload ~rows:[ key ] key))
    [ "a"; "z" ];
  (* a concurrent sweeper can remove an entry between scan's readdir and
     its stat; a dangling symlink makes Sys.is_directory raise the same
     Sys_error deterministically. The audit must skip the ghost — not
     abort, not quarantine — and still report the survivors. *)
  let ghost = Filename.concat (Cache.dir c) "ghost" in
  Unix.symlink (Filename.concat dir "does-not-exist") ghost;
  let r = try Cache.scan c with e -> Sys.remove ghost; raise e in
  Sys.remove ghost;
  Alcotest.(check int) "survivors scanned" 2 r.Cache.scanned;
  Alcotest.(check int) "survivors valid" 2 r.Cache.valid;
  Alcotest.(check int) "ghost neither valid nor swept" 0 r.Cache.swept;
  Alcotest.(check int) "ghost not quarantined" 0 (Cache.quarantined c)

let test_cache_ignores_foreign_magic () =
  with_cache_dir @@ fun dir ->
  let c = Cache.open_dir dir in
  let path = Filename.concat (Cache.dir c) "kf" in
  let oc = open_out_bin path in
  output_string oc "NOT-A-CACHE-ENTRY\nwhatever\n";
  close_out oc;
  Alcotest.(check (option payload_eq)) "foreign file is a miss" None
    (Cache.find c ~key:"kf")

let test_cache_sweeps_stale_tmp () =
  with_cache_dir @@ fun dir ->
  (* a writer that died between open_out and rename leaves
     "<key>.tmp.<domain>" behind; reopening the cache must sweep it
     while leaving real entries (and non-matching names) alone *)
  let c = Cache.open_dir dir in
  let p = Job.payload ~rows:[ "r" ] "kept" in
  Cache.store c ~key:"kept" p;
  let plant name contents =
    let oc = open_out_bin (Filename.concat (Cache.dir c) name) in
    output_string oc contents;
    close_out oc
  in
  plant "orphan.tmp.123" "half-written";
  plant "also.tmp.7" "";
  plant "not-a-temp.tmp.x9" "suffix is not digits";
  let c' = Cache.open_dir dir in
  let survivors = Sys.readdir (Cache.dir c') |> Array.to_list in
  Alcotest.(check bool) "stale tmp 1 swept" false
    (List.mem "orphan.tmp.123" survivors);
  Alcotest.(check bool) "stale tmp 2 swept" false
    (List.mem "also.tmp.7" survivors);
  Alcotest.(check bool) "non-matching name untouched" true
    (List.mem "not-a-temp.tmp.x9" survivors);
  Alcotest.(check (option payload_eq)) "real entry preserved" (Some p)
    (Cache.find c' ~key:"kept")

(* ------------------------------------------------------------------ *)
(* Sweep: rendering order, caching, failure accounting *)

(* counters are bumped from pool domains — Atomic, not ref *)
let counting_job ~algo ~seed counter out =
  Sweep.Job
    (Job.make ~algo ~seed (fun () ->
         Atomic.incr counter;
         Job.payload ~rows:[ out ^ ",row" ] (out ^ "\n")))

let test_sweep_renders_in_item_order () =
  with_cache_dir @@ fun dir ->
  let cache = Cache.open_dir dir in
  let ran = Atomic.make 0 in
  let items =
    [
      Sweep.text "head@.";
      counting_job ~algo:"s1" ~seed:1 ran "alpha";
      Sweep.text "mid@.";
      counting_job ~algo:"s2" ~seed:2 ran "beta";
    ]
  in
  let run () =
    Sweep.run ~name:"t" ~jobs:4 ~cache ~progress:false items
  in
  let stats, outcomes = run () in
  Alcotest.(check int) "both jobs ran" 2 (Atomic.get ran);
  Alcotest.(check int) "jobs" 2 stats.Sweep.jobs;
  Alcotest.(check int) "cold misses" 2 stats.Sweep.cache_misses;
  Alcotest.(check (list string)) "outcome labels in item order"
    [ "s1#1"; "s2#2" ]
    (List.map fst outcomes);
  (* warm rerun: same stats content, zero executions *)
  let stats2, _ = run () in
  Alcotest.(check int) "warm rerun executes nothing" 2 (Atomic.get ran);
  Alcotest.(check int) "warm hits" 2 stats2.Sweep.cache_hits;
  Alcotest.(check string) "digests agree" stats.Sweep.rows_digest
    stats2.Sweep.rows_digest

let test_sweep_digest_covers_cached_payloads () =
  with_cache_dir @@ fun dir ->
  let cache = Cache.open_dir dir in
  (* rows-free jobs (like the experiments sweep): the seed implementation
     digested only CSV rows, so this sweep reported the MD5 of the empty
     string on cold AND warm runs — a vacuous byte-identity check. The
     digest must cover replayed cached payloads. *)
  let items =
    [
      Sweep.text "header@.";
      Sweep.Job
        (Job.make ~algo:"norows" ~seed:9 (fun () ->
             Job.payload "table-line\n"));
    ]
  in
  let run () = Sweep.run ~name:"t" ~jobs:2 ~cache ~progress:false items in
  let cold, _ = run () in
  let warm, _ = run () in
  Alcotest.(check int) "warm run is fully cached" 1 warm.Sweep.cache_hits;
  Alcotest.(check bool) "digest is not the empty-string MD5" true
    (cold.Sweep.rows_digest <> Digest.to_hex (Digest.string ""));
  Alcotest.(check string) "warm digest covers replayed payloads"
    cold.Sweep.rows_digest warm.Sweep.rows_digest

let test_sweep_counts_failures_and_never_caches_them () =
  with_cache_dir @@ fun dir ->
  let cache = Cache.open_dir dir in
  let attempts = Atomic.make 0 in
  let items =
    [
      Sweep.Job
        (Job.make ~algo:"flaky" ~seed:3 (fun () ->
             Atomic.incr attempts;
             failwith "injected"));
    ]
  in
  let stats, outcomes =
    Sweep.run ~name:"t" ~jobs:2 ~cache ~progress:false items
  in
  Alcotest.(check int) "failed counted" 1 stats.Sweep.failed;
  (match outcomes with
  | [ (_, `Failed msg) ] ->
    Alcotest.(check bool) "message kept" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected one failed outcome");
  let _ = Sweep.run ~name:"t" ~jobs:2 ~cache ~progress:false items in
  Alcotest.(check int) "failure was not cached: reran" 2 (Atomic.get attempts)

(* ------------------------------------------------------------------ *)
(* The acceptance property on a real grid: every chaos cell computes
   the same payload under -j 4 as under -j 1 *)

let digest_outcomes report =
  let b = Buffer.create 4096 in
  Array.iter
    (fun o ->
      match o with
      | `Ok (p : Job.payload) ->
        Buffer.add_string b p.Job.out;
        List.iter (Buffer.add_string b) p.Job.rows;
        List.iter
          (fun (k, v) ->
            Buffer.add_string b k;
            Buffer.add_string b v)
          p.Job.meta
      | `Failed msg -> Buffer.add_string b ("FAILED:" ^ msg))
    report.Pool.results;
  Digest.to_hex (Digest.string (Buffer.contents b))

let test_chaos_grid_j4_matches_j1 () =
  let tasks () =
    Sweeps.Chaos_sweep.items ~n:32 ~k:6 ~seed:11 ()
    |> List.filter_map (function
         | Sweep.Job j -> Some (fun () -> Job.run j)
         | Sweep.Text _ -> None)
    |> Array.of_list
  in
  Alcotest.(check int) "full 4x4 grid" 16 (Array.length (tasks ()));
  let d1 = digest_outcomes (Pool.run ~domains:1 (tasks ())) in
  let d4 = digest_outcomes (Pool.run ~domains:4 (tasks ())) in
  Alcotest.(check string) "chaos digest: -j 4 = -j 1" d1 d4

(* ------------------------------------------------------------------ *)
(* Graphs.Source + the decompose regression: attempts ≥ 2, parses = 1 *)

let test_source_parse_kv () =
  Alcotest.(check (pair string (list (pair string int))))
    "spec with args"
    ("harary", [ ("k", 8); ("n", 64) ])
    (Graphs.Source.parse_kv "harary:k=8,n=64");
  Alcotest.(check (pair string (list (pair string int))))
    "bare name" ("hypercube", [])
    (Graphs.Source.parse_kv "hypercube");
  Alcotest.check_raises "malformed arg" (Failure "bad generator argument: k")
    (fun () -> ignore (Graphs.Source.parse_kv "harary:k"))

let test_source_gen_matches_direct () =
  let a = Graphs.Source.gen_graph "harary:k=8,n=48" in
  let b = Graphs.Gen.harary ~k:8 ~n:48 in
  Alcotest.(check int) "n" (Graphs.Graph.n b) (Graphs.Graph.n a);
  Alcotest.(check int) "m" (Graphs.Graph.m b) (Graphs.Graph.m a)

let test_source_load_requires_one_source () =
  Alcotest.check_raises "both"
    (Failure "exactly one of --gen or --file is required") (fun () ->
      ignore
        (Graphs.Source.load ~gen:(Some "clique:n=4") ~file:(Some "x") ()));
  Alcotest.check_raises "neither"
    (Failure "exactly one of --gen or --file is required") (fun () ->
      ignore (Graphs.Source.load ~gen:None ~file:None ()))

let test_verified_pipeline_parses_once () =
  (* the decompose `verified` flow: build the graph through
     Graphs.Source, then run a configuration that burns the whole retry
     budget (10 classes / 2 layers on a k=8 graph never verifies). The
     graph must be constructed exactly once — attempts re-seed the
     packing, not the parser. *)
  let loads = ref 0 in
  let g =
    Graphs.Source.load
      ~on_load:(fun () -> incr loads)
      ~gen:(Some "harary:k=8,n=48") ~file:None ()
  in
  let r =
    Domtree.Reliable.run_verified ~seed:7 ~max_retries:3 g ~classes:10
      ~layers:2
  in
  Alcotest.(check int) "attempts exceed one" 4
    (List.length r.Domtree.Reliable.attempts);
  Alcotest.(check int) "graph constructed exactly once" 1 !loads

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "exec"
    [
      ( "job-keys",
        [
          Alcotest.test_case "param order insensitive" `Quick
            test_key_param_order_insensitive;
          Alcotest.test_case "inputs separate keys" `Quick
            test_key_separates_inputs;
        ] );
      qsuite "pool-determinism" [ test_pool_matches_sequential ];
      ( "pool",
        [
          Alcotest.test_case "index order preserved" `Quick
            test_pool_preserves_index_order;
          Alcotest.test_case "crash containment" `Quick
            test_pool_contains_crashes;
          Alcotest.test_case "empty and oversubscribed" `Quick
            test_pool_empty_and_oversubscribed;
        ] );
      ( "cache",
        [
          Alcotest.test_case "roundtrip + counters" `Quick test_cache_roundtrip;
          Alcotest.test_case "version bump invalidates" `Quick
            test_cache_version_bump_invalidates;
          Alcotest.test_case "corruption recovers" `Quick
            test_cache_corruption_recovers;
          Alcotest.test_case "scan quarantines corruption" `Quick
            test_cache_scan_quarantines_corruption;
          Alcotest.test_case "scan skips entries that vanish mid-audit" `Quick
            test_cache_scan_skips_vanishing_entries;
          Alcotest.test_case "foreign magic is a miss" `Quick
            test_cache_ignores_foreign_magic;
          Alcotest.test_case "stale tmp files swept on open" `Quick
            test_cache_sweeps_stale_tmp;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "renders in item order, memoizes" `Quick
            test_sweep_renders_in_item_order;
          Alcotest.test_case "digest covers cached payloads" `Quick
            test_sweep_digest_covers_cached_payloads;
          Alcotest.test_case "failures counted, never cached" `Quick
            test_sweep_counts_failures_and_never_caches_them;
        ] );
      ( "chaos-grid",
        [
          Alcotest.test_case "-j 4 digest = -j 1 digest" `Slow
            test_chaos_grid_j4_matches_j1;
        ] );
      ( "graph-source",
        [
          Alcotest.test_case "parse_kv" `Quick test_source_parse_kv;
          Alcotest.test_case "gen matches direct" `Quick
            test_source_gen_matches_direct;
          Alcotest.test_case "exactly one source" `Quick
            test_source_load_requires_one_source;
          Alcotest.test_case "verified pipeline parses once" `Slow
            test_verified_pipeline_parses_once;
        ] );
    ]
