(* lib/obs: the observability subsystem (DESIGN.md §14).

   The properties that make the metrics trustworthy:
   - snapshot merge is associative and commutative with [empty] as
     identity — multi-registry aggregation cannot depend on merge order;
   - the wire codec ([Protocol.encode_snapshot]) roundtrips every
     snapshot a registry can produce — the daemon's [Stats] reply is
     exactly the snapshot it took;
   - counters and histograms stay exact under concurrent updates from
     [Exec.Pool] worker domains — lock-free does not mean lossy;
   - the log-bucket scheme brackets every value and the quantile
     estimate lands within its documented error. *)

module M = Obs.Metrics
module Span = Obs.Span
module P = Serve.Protocol

(* ------------------------------------------------------------------ *)
(* Snapshot generation: build through a registry, never by hand — a
   snapshot's canonical form (sorted names, sparse positive buckets) is
   the registry's business, and the properties should hold for exactly
   the snapshots registries produce. *)

let names = [| "alpha"; "beta"; "gamma"; "delta" |]

let snapshot_of_ops ops =
  let t = M.create () in
  List.iter
    (fun (kind, idx, v) ->
      let name = names.(idx mod Array.length names) in
      match kind mod 3 with
      | 0 -> M.add (M.counter t ("c_" ^ name)) (abs v)
      | 1 -> M.set (M.gauge t ("g_" ^ name)) v
      | _ -> M.observe (M.histogram t ("h_" ^ name)) v)
    ops;
  M.snapshot t

let ops_arb =
  QCheck.(
    list_of_size
      Gen.(int_range 0 40)
      (triple (int_bound 2) (int_bound 7) (int_range (-100) 10_000_000)))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:200
    QCheck.(triple ops_arb ops_arb ops_arb)
    (fun (a, b, c) ->
      let sa = snapshot_of_ops a
      and sb = snapshot_of_ops b
      and sc = snapshot_of_ops c in
      M.merge sa (M.merge sb sc) = M.merge (M.merge sa sb) sc)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative, empty is identity"
    ~count:200
    QCheck.(pair ops_arb ops_arb)
    (fun (a, b) ->
      let sa = snapshot_of_ops a and sb = snapshot_of_ops b in
      M.merge sa sb = M.merge sb sa
      && M.merge M.empty sa = sa
      && M.merge sa M.empty = sa)

let prop_snapshot_codec_roundtrip =
  QCheck.Test.make ~name:"Stats snapshot codec roundtrips" ~count:200 ops_arb
    (fun ops ->
      let s = snapshot_of_ops ops in
      match P.decode_snapshot (P.encode_snapshot s) with
      | Ok s' -> s = s'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Bucket scheme *)

let prop_bucket_brackets_value =
  QCheck.Test.make ~name:"bucket brackets its value" ~count:500
    QCheck.(int_bound max_int)
    (fun v ->
      let i = M.bucket_of v in
      i >= 0
      && i < M.bucket_count
      && v <= M.upper_bound i
      && (i = 0 || M.upper_bound (i - 1) < v))

let test_quantile_bounds () =
  let t = M.create () in
  let h = M.histogram t "q" in
  for v = 1 to 10_000 do
    M.observe h v
  done;
  let s = M.snapshot t in
  let hist = Option.get (M.find_hist s "q") in
  List.iter
    (fun (q, exact) ->
      let est = M.quantile hist q in
      (* a log-bucket estimate may over-shoot by one sub-bucket width
         (12.5% relative), never under-shoot below the exact rank *)
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f: %d within [%d, %d]" q est exact
           (exact + (exact / 7)))
        true
        (est >= exact && est <= exact + (exact / 7) + 1))
    [ (0.5, 5_000); (0.9, 9_000); (0.99, 9_900) ];
  Alcotest.(check int) "empty histogram quantile is 0" 0
    (M.quantile { M.h_count = 0; h_sum = 0; h_buckets = [] } 0.99)

(* ------------------------------------------------------------------ *)
(* Concurrency: exactness through Exec.Pool worker domains *)

let test_multidomain_exact () =
  let m = M.create () in
  let c = M.counter m "hits_total" in
  let g = M.gauge m "depth" in
  let h = M.histogram m "lat_us" in
  let per_task = 1_000 in
  let tasks =
    Array.init 32 (fun i () ->
        for j = 1 to per_task do
          M.incr c;
          M.set g i;
          M.observe h ((i * 31) + j)
        done)
  in
  let r = Exec.Pool.run ~domains:4 tasks in
  Array.iter
    (function `Ok () -> () | `Failed msg -> Alcotest.fail msg)
    r.Exec.Pool.results;
  let total = 32 * per_task in
  Alcotest.(check int) "counter exact across domains" total
    (M.counter_value c);
  let s = M.snapshot m in
  let hist = Option.get (M.find_hist s "lat_us") in
  Alcotest.(check int) "histogram count exact" total hist.M.h_count;
  Alcotest.(check int) "bucket counts sum to the count" total
    (List.fold_left (fun acc (_, n) -> acc + n) 0 hist.M.h_buckets);
  Alcotest.(check bool) "gauge holds one of the written values" true
    (let v = M.gauge_value g in
     v >= 0 && v < 32)

let test_pool_instruments () =
  let m = M.create () in
  let tasks =
    Array.init 20 (fun i () -> if i mod 5 = 0 then failwith "boom" else i)
  in
  ignore (Exec.Pool.run ~domains:4 ~metrics:m tasks);
  let s = M.snapshot m in
  Alcotest.(check (option int)) "jobs counted" (Some 20)
    (M.find_counter s "exec_jobs_total");
  Alcotest.(check (option int)) "failures counted" (Some 4)
    (M.find_counter s "exec_jobs_failed_total")

(* ------------------------------------------------------------------ *)
(* Registry semantics *)

let test_registry_idempotent_and_kinded () =
  let m = M.create () in
  let c = M.counter m "x_total" in
  M.incr c;
  M.incr (M.counter m "x_total");
  Alcotest.(check int) "same name, same counter" 2 (M.counter_value c);
  (match M.gauge m "x_total" with
  | _ -> Alcotest.fail "cross-kind reuse must raise"
  | exception Invalid_argument _ -> ());
  Alcotest.(check string) "labeled renders sorted and escaped"
    "lat{op=\"a\\\"b\",zone=\"eu\"}"
    (M.labeled "lat" [ ("zone", "eu"); ("op", "a\"b") ])

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_disabled_noop () =
  let t = Span.disabled in
  let tok = Span.start t "x" in
  Span.finish t tok;
  Alcotest.(check bool) "disabled" false (Span.is_enabled t);
  Alcotest.(check int) "nothing recorded" 0 (Span.recorded t);
  Alcotest.(check (list reject)) "no spans" [] (Span.spans t)

let test_span_ring_bounded () =
  let t = Span.enabled ~capacity:8 () in
  for i = 1 to 20 do
    Span.with_span t (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "all finishes counted" 20 (Span.recorded t);
  Alcotest.(check int) "overflow reported" 12 (Span.dropped t);
  let spans = Span.spans t in
  Alcotest.(check int) "ring holds capacity" 8 (List.length spans);
  Alcotest.(check (list string)) "oldest-first, newest retained"
    [ "s13"; "s14"; "s15"; "s16"; "s17"; "s18"; "s19"; "s20" ]
    (List.map (fun sp -> sp.Span.sp_name) spans);
  List.iter
    (fun sp ->
      Alcotest.(check bool) "durations never negative" true
        (sp.Span.sp_dur_us >= 0))
    spans

let test_span_parentage () =
  let t = Span.enabled () in
  let root = Span.start t "parent" in
  Span.with_span t ~parent:(Span.id root) "child" (fun () -> ());
  Span.finish t root;
  match Span.spans t with
  | [ child; parent ] ->
    Alcotest.(check string) "child first (finished first)" "child"
      child.Span.sp_name;
    Alcotest.(check int) "child points at parent" parent.Span.sp_id
      child.Span.sp_parent;
    Alcotest.(check int) "parent is a root" Span.none parent.Span.sp_parent
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "obs"
    [
      ( "metrics-properties",
        qsuite
          [
            prop_merge_associative;
            prop_merge_commutative;
            prop_snapshot_codec_roundtrip;
            prop_bucket_brackets_value;
          ] );
      ( "metrics",
        [
          Alcotest.test_case "quantile bounds" `Quick test_quantile_bounds;
          Alcotest.test_case "multi-domain exactness" `Quick
            test_multidomain_exact;
          Alcotest.test_case "pool instruments" `Quick test_pool_instruments;
          Alcotest.test_case "registry idempotent, kind-checked" `Quick
            test_registry_idempotent_and_kinded;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled recorder is a no-op" `Quick
            test_span_disabled_noop;
          Alcotest.test_case "ring buffer bounded" `Quick
            test_span_ring_bounded;
          Alcotest.test_case "parent/child ids" `Quick test_span_parentage;
        ] );
    ]
