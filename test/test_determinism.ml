(* Determinism sanitizer tests: Net.replay_check must certify that every
   distributed pipeline is a pure function of its seed (bit-identical
   telemetry, per-round digests included), across graph families, with
   and without an installed fault adversary — and must catch a protocol
   that smuggles state across runs. Also the reset contracts:
   reset_stats preserves adversary state, replay_reset rewinds it. *)

open Graphs
module Net = Congest.Net

let vnet g = Net.create Congest.Model.V_congest g

let pack_protocol ~seed g net =
  let k = max 1 (Connectivity.vertex_connectivity g) in
  ignore (Domtree.Dist_packing.pack ~seed net ~k)

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_replay_fresh_net () =
  let g = Gen.harary ~k:4 ~n:20 in
  let net = vnet g in
  let r = Net.replay_check net (pack_protocol ~seed:7 g) in
  Alcotest.(check bool) "deterministic" true (Net.deterministic r);
  Alcotest.(check bool) "rounds advanced" true (r.Net.r_first.Net.t_rounds > 0);
  Alcotest.(check bool) "digests recorded" true
    (Array.length r.Net.r_first.Net.t_digests > 0);
  (* the net is left in the second run's state, still usable *)
  Alcotest.(check int) "net state = second telemetry"
    r.Net.r_second.Net.t_rounds (Net.rounds net)

let test_replay_under_faults () =
  let g = Gen.harary ~k:4 ~n:20 in
  let net = vnet g in
  let faults =
    Congest.Faults.create ~seed:5
      [ Congest.Faults.Drop_bernoulli 0.3; Congest.Faults.Crash_at [ (3, 2) ] ]
  in
  Congest.Faults.install net faults;
  let r =
    Net.replay_check net (fun net ->
        ignore (Congest.Primitives.flood_min net ~value:(fun v -> v) ~rounds:25))
  in
  Alcotest.(check bool) "deterministic under faults" true (Net.deterministic r);
  Alcotest.(check bool) "faults were active" true
    (r.Net.r_second.Net.t_messages_lost > 0);
  Alcotest.(check int) "losses replayed exactly"
    r.Net.r_first.Net.t_messages_lost r.Net.r_second.Net.t_messages_lost

let test_reset_contracts () =
  let g = Gen.harary ~k:4 ~n:16 in
  let net = vnet g in
  let faults =
    Congest.Faults.create ~seed:3
      [ Congest.Faults.Drop_bernoulli 0.5; Congest.Faults.Crash_at [ (1, 4) ] ]
  in
  Congest.Faults.install net faults;
  ignore (Congest.Primitives.flood_min net ~value:(fun v -> v) ~rounds:8);
  Alcotest.(check (list int)) "node 4 crashed" [ 4 ]
    (Congest.Faults.crashed_nodes faults);
  Alcotest.(check bool) "drops happened" true (Congest.Faults.drops faults > 0);
  (* reset_stats: counters go, adversary state stays (documented) *)
  Net.reset_stats net;
  Alcotest.(check int) "rounds zeroed" 0 (Net.rounds net);
  Alcotest.(check (list int)) "crash survives reset_stats" [ 4 ]
    (Congest.Faults.crashed_nodes faults);
  Alcotest.(check bool) "fault telemetry survives reset_stats" true
    (Congest.Faults.drops faults > 0);
  (* replay_reset additionally rewinds the adversary *)
  Net.replay_reset net;
  Alcotest.(check (list int)) "crash rewound" []
    (Congest.Faults.crashed_nodes faults);
  Alcotest.(check int) "fault telemetry rewound" 0
    (Congest.Faults.drops faults);
  Alcotest.(check int) "events rewound" 0
    (List.length (Congest.Faults.events faults));
  Alcotest.(check bool) "hook still installed" true (Net.has_faults net)

let test_replay_catches_smuggled_state () =
  (* a protocol whose behaviour depends on how often it has run is
     exactly what the sanitizer exists to reject *)
  let g = Gen.harary ~k:4 ~n:12 in
  let net = vnet g in
  let calls = ref 0 in
  let r =
    Net.replay_check net (fun net ->
        incr calls;
        ignore
          (Congest.Primitives.flood_min net
             ~value:(fun v -> (v * !calls) + !calls)
             ~rounds:4))
  in
  Alcotest.(check bool) "divergence reported" false (Net.deterministic r);
  Alcotest.(check bool) "divergence names a field" true
    (match r.Net.r_divergence with Some d -> String.length d > 0 | None -> false)

let test_replay_repair_pipeline_under_storm () =
  (* the full self-healing pipeline — packing, tester, barrier'd repair
     with rollback on failure, retest — must be a pure function of its
     seed even while a crash storm rages *)
  let g = Gen.harary ~k:8 ~n:48 in
  let net = vnet g in
  let faults =
    Congest.Faults.create ~seed:13
      [
        Congest.Faults.Crash_storm
          { from_round = 5; per_round = 1; storm_rounds = 3; universe = 48 };
      ]
  in
  Congest.Faults.install net faults;
  let r =
    Net.replay_check net (fun net ->
        ignore
          (Domtree.Reliable.pack_verified_distributed ~seed:11 ~policy:`Repair
             net ~k:8))
  in
  Alcotest.(check bool) "repair pipeline deterministic" true
    (Net.deterministic r);
  Alcotest.(check bool) "storm was active" true
    (r.Net.r_second.Net.t_messages_lost > 0)

let test_diff_telemetry_localizes_round () =
  let g = Gen.cycle 8 in
  let net = vnet g in
  ignore (Congest.Primitives.flood_min net ~value:(fun v -> v) ~rounds:3);
  let t1 = Net.telemetry net in
  Net.replay_reset net;
  ignore (Congest.Primitives.flood_min net ~value:(fun v -> 7 - v) ~rounds:3);
  let t2 = Net.telemetry net in
  let diffs = Net.diff_telemetry t1 t2 in
  Alcotest.(check bool) "different runs diff" true (diffs <> []);
  Alcotest.(check bool) "a round digest is named" true
    (List.exists
       (fun d ->
         String.length d >= 5 && String.sub d 0 5 = "round")
       diffs)

(* ------------------------------------------------------------------ *)
(* Pinned-digest regressions: the exact traffic the round engine moves
   on a seeded ER graph, captured once under the seed implementation.
   Any graph-core or engine change that reorders one message, alters one
   delivered word, or misses one violation flips these constants — this
   is the byte-identity contract that lets the hot path be rebuilt. *)

let pinned_er_graph () =
  let rng = Random.State.make [| 0xD16; 64 |] in
  Gen.erdos_renyi rng ~n:64 ~p:0.15

let pinned_broadcast_protocol net =
  for r = 1 to 12 do
    ignore
      (Net.broadcast_round net (fun u ->
           if (u + r) mod 3 = 0 then None
           else Some [| u land 63; r land 63 |]))
  done;
  ignore
    (Congest.Primitives.flood_min net ~value:(fun v -> (v * 5) land 63)
       ~rounds:8)

let pinned_edge_protocol net =
  let g = Net.graph net in
  for r = 1 to 8 do
    ignore
      (Net.edge_round net (fun u ->
           Array.to_list
             (Array.map
                (fun v -> (v, [| (u + v + r) land 63 |]))
                (Graph.neighbors g u))))
  done

let test_pinned_broadcast_digest () =
  let net = vnet (pinned_er_graph ()) in
  let r = Net.replay_check net pinned_broadcast_protocol in
  Alcotest.(check bool) "deterministic" true (Net.deterministic r);
  Alcotest.(check int) "rounds" 20 r.Net.r_second.Net.t_rounds;
  Alcotest.(check int) "messages" 9248 r.Net.r_second.Net.t_messages;
  Alcotest.(check int) "words" 13872 r.Net.r_second.Net.t_words;
  Alcotest.(check string) "run digest" "1b2a4ab14466792"
    (Printf.sprintf "%x" (Net.run_digest r.Net.r_second))

let test_pinned_edge_digest () =
  let net = Net.create Congest.Model.E_congest (pinned_er_graph ()) in
  let r = Net.replay_check net pinned_edge_protocol in
  Alcotest.(check bool) "deterministic" true (Net.deterministic r);
  Alcotest.(check int) "rounds" 8 r.Net.r_second.Net.t_rounds;
  Alcotest.(check int) "messages" 4624 r.Net.r_second.Net.t_messages;
  Alcotest.(check int) "words" 4624 r.Net.r_second.Net.t_words;
  Alcotest.(check string) "run digest" "3aaee12c3814a68"
    (Printf.sprintf "%x" (Net.run_digest r.Net.r_second))

(* ------------------------------------------------------------------ *)
(* QCheck: same seed => bit-identical telemetry, per graph family *)

let replay_deterministic g protocol =
  let net = vnet g in
  Net.deterministic (Net.replay_check net protocol)

let prop_erdos_renyi =
  QCheck.Test.make ~name:"replay determinism on Erdos-Renyi" ~count:10
    QCheck.(pair (int_range 10 22) (int_range 0 999))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Gen.erdos_renyi rng ~n ~p:0.4 in
      QCheck.assume (Traversal.is_connected g);
      replay_deterministic g (pack_protocol ~seed g))

let prop_random_regular =
  QCheck.Test.make ~name:"replay determinism on random-regular" ~count:10
    QCheck.(pair (int_range 8 18) (int_range 0 999))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n; 2 |] in
      let g = Gen.random_regular rng ~n ~d:4 in
      QCheck.assume (Traversal.is_connected g);
      replay_deterministic g (pack_protocol ~seed g))

let prop_lollipop =
  QCheck.Test.make ~name:"replay determinism on lollipop" ~count:10
    QCheck.(triple (int_range 4 8) (int_range 1 6) (int_range 0 999))
    (fun (clique, tail, seed) ->
      let g = Gen.lollipop ~clique ~tail in
      replay_deterministic g (pack_protocol ~seed g))

let prop_lollipop_econgest =
  QCheck.Test.make ~name:"replay determinism on lollipop (E-CONGEST)" ~count:6
    QCheck.(triple (int_range 4 7) (int_range 1 4) (int_range 0 999))
    (fun (clique, tail, seed) ->
      let g = Gen.lollipop ~clique ~tail in
      let net = Net.create Congest.Model.E_congest g in
      let lambda = max 1 (Connectivity.edge_connectivity g) in
      Net.deterministic
        (Net.replay_check net (fun net ->
             ignore (Spantree.Dist_packing.run_sampled ~seed net ~lambda))))

let prop_faulty_gossip =
  QCheck.Test.make ~name:"replay determinism under Bernoulli drops" ~count:8
    QCheck.(pair (int_range 12 20) (int_range 0 999))
    (fun (n, seed) ->
      let g = Gen.harary ~k:4 ~n in
      let net = vnet g in
      let faults =
        Congest.Faults.create ~seed [ Congest.Faults.Drop_bernoulli 0.25 ]
      in
      Congest.Faults.install net faults;
      Net.deterministic
        (Net.replay_check net (fun net ->
             ignore
               (Congest.Primitives.flood_min net ~value:(fun v -> v)
                  ~rounds:(2 * n)))))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "determinism"
    [
      ( "replay",
        [
          Alcotest.test_case "fresh net" `Quick test_replay_fresh_net;
          Alcotest.test_case "under faults" `Quick test_replay_under_faults;
          Alcotest.test_case "reset contracts" `Quick test_reset_contracts;
          Alcotest.test_case "catches smuggled state" `Quick
            test_replay_catches_smuggled_state;
          Alcotest.test_case "repair pipeline under storm" `Quick
            test_replay_repair_pipeline_under_storm;
          Alcotest.test_case "diff localizes round" `Quick
            test_diff_telemetry_localizes_round;
        ] );
      ( "pinned digests",
        [
          Alcotest.test_case "broadcast engine traffic" `Quick
            test_pinned_broadcast_digest;
          Alcotest.test_case "edge engine traffic" `Quick
            test_pinned_edge_digest;
        ] );
      qsuite "qcheck"
        [
          prop_erdos_renyi;
          prop_random_regular;
          prop_lollipop;
          prop_lollipop_econgest;
          prop_faulty_gossip;
        ];
    ]
