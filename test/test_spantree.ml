(* Tests for the spanning-tree packing: the packing checker, the §5.1
   Lagrangian iteration, §5.2 sampling, integral peeling, the
   distributed version, and edge-connectivity estimation. *)

open Graphs
open Spantree

let enet g = Congest.Net.create Congest.Model.E_congest g

(* ------------------------------------------------------------------ *)
(* Spacking checker *)

let tree_of_path n = List.init (n - 1) (fun i -> (i, i + 1))

let test_spacking_size_and_load () =
  let g = Gen.cycle 4 in
  let t1 = { Spacking.edges = [ (0, 1); (1, 2); (2, 3) ]; weight = 0.5 } in
  let t2 = { Spacking.edges = [ (1, 2); (2, 3); (0, 3) ]; weight = 0.5 } in
  let p = { Spacking.graph = g; trees = [ t1; t2 ] } in
  Alcotest.(check (float 1e-9)) "size" 1.0 (Spacking.size p);
  Alcotest.(check (float 1e-9)) "shared edge load" 1.0 (Spacking.edge_load p 1 2);
  Alcotest.(check (float 1e-9)) "solo edge load" 0.5 (Spacking.edge_load p 0 1);
  Alcotest.(check int) "multiplicity" 2 (Spacking.max_edge_multiplicity p);
  Alcotest.(check bool) "valid" true (Spacking.is_valid p)

let test_spacking_rejects () =
  let g = Gen.path 4 in
  let not_spanning =
    { Spacking.graph = g;
      trees = [ { Spacking.edges = [ (0, 1) ]; weight = 1. } ] }
  in
  Alcotest.(check bool) "non-spanning rejected" false
    (Spacking.is_valid not_spanning);
  let overload =
    { Spacking.graph = g;
      trees =
        [
          { Spacking.edges = tree_of_path 4; weight = 0.8 };
          { Spacking.edges = tree_of_path 4; weight = 0.8 };
        ] }
  in
  Alcotest.(check bool) "overload rejected" false (Spacking.is_valid overload);
  let outside =
    { Spacking.graph = g;
      trees = [ { Spacking.edges = [ (0, 1); (1, 2); (0, 3) ]; weight = 1. } ] }
  in
  Alcotest.(check bool) "edge outside graph rejected" false
    (Spacking.is_valid outside)

let test_normalize () =
  let g = Gen.path 3 in
  let p =
    { Spacking.graph = g;
      trees = [ { Spacking.edges = tree_of_path 3; weight = 0.25 } ] }
  in
  let q = Spacking.normalize_to_unit_load p in
  Alcotest.(check (float 1e-9)) "normalized load" 1.0 (Spacking.max_edge_load q)

(* ------------------------------------------------------------------ *)
(* Lagrangian (§5.1) *)

let test_lagrangian_feasible_and_sized () =
  List.iter
    (fun (lambda, n) ->
      let g = Gen.harary ~k:lambda ~n in
      let r = Lagrangian.run g ~lambda in
      let p = r.Lagrangian.packing in
      Alcotest.(check bool) "feasible" true (Spacking.is_valid ~tolerance:1e-6 p);
      let target = float_of_int (Lagrangian.target ~lambda) in
      let ratio = Spacking.size p /. target in
      Alcotest.(check bool)
        (Printf.sprintf "size ratio %.2f >= 0.6 (lambda=%d)" ratio lambda)
        true (ratio >= 0.6))
    [ (4, 32); (8, 48); (12, 64) ]

let test_lagrangian_trivial_lambda () =
  let g = Gen.path 6 in
  let r = Lagrangian.run g ~lambda:1 in
  Alcotest.(check bool) "single tree packing valid" true
    (Spacking.is_valid ~tolerance:1e-6 r.Lagrangian.packing);
  Alcotest.(check bool) "size ~ 1" true
    (Spacking.size r.Lagrangian.packing >= 0.99)

let test_lagrangian_stop_certificate () =
  (* when the stop rule fires the final max z must be <= 1 + 6 eps
     (Lemma F.1) measured on the unscaled collection *)
  let g = Gen.harary ~k:4 ~n:32 in
  let eps = 0.15 in
  let r = Lagrangian.run ~eps g ~lambda:4 in
  if r.Lagrangian.trace.Lagrangian.stopped_by_rule then begin
    let tgt = float_of_int (Lagrangian.target ~lambda:4) in
    let max_z =
      Spacking.max_edge_load r.Lagrangian.collection *. tgt
    in
    Alcotest.(check bool) "Lemma F.1 certificate" true
      (max_z <= 1. +. (6. *. eps) +. 1e-6)
  end

let test_lagrangian_iteration_cap () =
  let g = Gen.harary ~k:6 ~n:32 in
  let r = Lagrangian.run ~max_iterations:5 g ~lambda:6 in
  Alcotest.(check bool) "respects the cap" true
    (r.Lagrangian.trace.Lagrangian.iterations <= 5)

let test_lagrangian_collection_invariant () =
  (* the §5.1 invariant: the raw collection's weights always sum to 1 *)
  let g = Gen.harary ~k:6 ~n:36 in
  let r = Lagrangian.run ~max_iterations:80 g ~lambda:6 in
  Alcotest.(check (float 1e-6)) "sum of weights = 1" 1.0
    (Spacking.size r.Lagrangian.collection)

let test_lagrangian_z_improves () =
  (* the multiplicative-weights loop must not end with a worse max load
     than it started with *)
  let g = Gen.harary ~k:8 ~n:40 in
  let r = Lagrangian.run g ~lambda:8 in
  match r.Lagrangian.trace.Lagrangian.max_z_history with
  | [] -> Alcotest.fail "no history"
  | first :: _ as hist ->
    let last = List.nth hist (List.length hist - 1) in
    Alcotest.(check bool)
      (Printf.sprintf "max z improved: %.2f -> %.2f" first last)
      true (last <= first +. 1e-9)

let test_lagrangian_capacities () =
  let g = Gen.harary ~k:6 ~n:36 in
  let unit = Lagrangian.run ~max_iterations:120 g ~lambda:6 in
  let doubled =
    Lagrangian.run ~max_iterations:120 ~capacity:(fun _ _ -> 2.) g ~lambda:6
  in
  let s1 = Spacking.size unit.Lagrangian.packing in
  let s2 = Spacking.size doubled.Lagrangian.packing in
  Alcotest.(check bool)
    (Printf.sprintf "capacity 2 gives ~2x the packing: %.2f vs %.2f" s2 s1)
    true
    (s2 >= 1.6 *. s1)

let prop_lagrangian_always_feasible =
  QCheck.Test.make ~name:"lagrangian output is always a feasible packing"
    ~count:10
    QCheck.(pair (int_range 2 6) (int_range 12 32))
    (fun (lambda, n) ->
      QCheck.assume (lambda < n);
      let g = Gen.harary ~k:lambda ~n in
      let r = Lagrangian.run ~max_iterations:60 g ~lambda in
      Spacking.is_valid ~tolerance:1e-6 r.Lagrangian.packing)

(* failure injection on the spanning-tree verifier *)
let prop_spacking_catches_mutations =
  QCheck.Test.make
    ~name:"spanning verifier rejects edge-drop and overload mutations"
    ~count:15
    QCheck.(pair bool small_int)
    (fun (drop_edge, seed) ->
      let g = Gen.harary ~k:6 ~n:30 in
      let r = Lagrangian.run ~max_iterations:40 g ~lambda:6 in
      let p = r.Lagrangian.packing in
      ignore seed;
      match p.Spacking.trees with
      | [] -> true
      | tr :: rest ->
        if drop_edge then begin
          match tr.Spacking.edges with
          | _ :: es ->
            let bad =
              { p with Spacking.trees = { tr with Spacking.edges = es } :: rest }
            in
            not (Spacking.is_valid ~tolerance:1e-6 bad)
          | [] -> true
        end
        else begin
          (* double one tree's weight so some edge overloads *)
          let bad =
            { p with
              Spacking.trees =
                { tr with Spacking.weight = tr.Spacking.weight +. 1.01 }
                :: rest }
          in
          not (Spacking.is_valid ~tolerance:1e-6 bad)
        end)

(* ------------------------------------------------------------------ *)
(* Sampling (§5.2) *)

let test_sampling_small_lambda_degenerates () =
  let g = Gen.harary ~k:4 ~n:32 in
  let r = Sampling_pack.run g ~lambda:4 in
  Alcotest.(check int) "eta = 1" 1 r.Sampling_pack.eta;
  Alcotest.(check bool) "feasible" true
    (Spacking.is_valid ~tolerance:1e-6 r.Sampling_pack.packing)

let test_sampling_splits_large_lambda () =
  (* a graph with large edge connectivity: clique K24, lambda = 23.
     The sampling threshold is 20 ln n / eps^2, so a large eps is what
     pushes eta above 1 at this scale. *)
  let g = Gen.clique 24 in
  let r = Sampling_pack.run ~eps:3.0 g ~lambda:23 in
  Alcotest.(check bool) "eta > 1" true (r.Sampling_pack.eta > 1);
  Alcotest.(check bool) "feasible union" true
    (Spacking.is_valid ~tolerance:1e-6 r.Sampling_pack.packing);
  Alcotest.(check bool) "size grows with lambda" true
    (Spacking.size r.Sampling_pack.packing >= 2.)

let test_run_auto () =
  let g = Gen.harary ~k:6 ~n:30 in
  let r = Sampling_pack.run_auto g in
  Alcotest.(check bool) "auto feasible" true
    (Spacking.is_valid ~tolerance:1e-6 r.Sampling_pack.packing)

(* ------------------------------------------------------------------ *)
(* Integral peeling *)

let test_peel_achieves_target () =
  List.iter
    (fun lambda ->
      let g = Gen.harary ~k:lambda ~n:48 in
      let trees = Integral.peel g in
      let target = Lagrangian.target ~lambda in
      Alcotest.(check bool)
        (Printf.sprintf "peel count %d >= %d/2 (lambda=%d)"
           (List.length trees) target lambda)
        true
        (2 * List.length trees >= target);
      Alcotest.(check bool) "edge-disjoint and spanning" true
        (Spacking.is_valid (Integral.to_packing g trees)))
    [ 2; 4; 8; 16 ]

let test_peel_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check int) "no trees" 0 (List.length (Integral.peel g))

let prop_peel_edge_disjoint =
  QCheck.Test.make ~name:"peeled trees are always edge-disjoint spanning trees"
    ~count:15
    QCheck.(pair (int_range 2 6) (int_range 10 30))
    (fun (lambda, n) ->
      QCheck.assume (lambda < n);
      let g = Gen.harary ~k:lambda ~n in
      let trees = Integral.peel g in
      trees <> [] && Spacking.is_valid (Integral.to_packing g trees))

(* ------------------------------------------------------------------ *)
(* Distributed packing *)

let test_dist_packing_feasible () =
  let g = Gen.harary ~k:6 ~n:36 in
  let net = enet g in
  let r = Dist_packing.run ~max_iterations:60 net ~lambda:6 in
  Alcotest.(check bool) "feasible" true
    (Spacking.is_valid ~tolerance:1e-6 r.Dist_packing.packing);
  Alcotest.(check bool) "decent size" true
    (Spacking.size r.Dist_packing.packing
    >= 0.5 *. float_of_int (Lagrangian.target ~lambda:6));
  Alcotest.(check bool) "rounds measured" true (r.Dist_packing.measured_rounds > 0);
  Alcotest.(check bool) "parallel <= measured" true
    (r.Dist_packing.parallel_rounds <= r.Dist_packing.measured_rounds)

let test_dist_packing_works_in_vcongest_rejected () =
  (* spanning-tree packing needs E-CONGEST for the broadcast app, but the
     algorithm itself only broadcasts, so it must also run under
     V-CONGEST (V-CONGEST is a restriction; Dist_mst uses broadcasts) *)
  let g = Gen.harary ~k:4 ~n:24 in
  let net = Congest.Net.create Congest.Model.V_congest g in
  let r = Dist_packing.run ~max_iterations:30 net ~lambda:4 in
  Alcotest.(check bool) "also runs in V-CONGEST" true
    (Spacking.is_valid ~tolerance:1e-6 r.Dist_packing.packing)

(* ------------------------------------------------------------------ *)
(* Distributed edge-connectivity estimation *)

let test_dist_ec_approx_regular () =
  (* min degree = lambda here: first guess accepted *)
  let g = Gen.harary ~k:8 ~n:64 in
  let net = Congest.Net.create Congest.Model.V_congest g in
  let r = Dist_ec_approx.run net in
  Alcotest.(check bool) "constant-factor estimate" true
    (r.Dist_ec_approx.estimate >= 2 && r.Dist_ec_approx.estimate <= 16);
  Alcotest.(check bool) "rounds counted" true (r.Dist_ec_approx.rounds > 0)

let test_dist_ec_approx_bottleneck () =
  (* min degree 15 but lambda = 2: the doubling search must descend *)
  let g = Gen.two_cliques_bridged ~size:16 ~bridges:2 in
  let net = Congest.Net.create Congest.Model.V_congest g in
  let r = Dist_ec_approx.run ~seed:7 net in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %d within constant factor of 2"
       r.Dist_ec_approx.estimate)
    true
    (r.Dist_ec_approx.estimate >= 1 && r.Dist_ec_approx.estimate <= 8);
  Alcotest.(check bool) "descended through guesses" true
    (r.Dist_ec_approx.guesses_tried >= 2)

let prop_dist_ec_constant_factor =
  QCheck.Test.make
    ~name:"distributed lambda estimate within constant factor" ~count:10
    QCheck.(int_range 2 6)
    (fun lambda ->
      let g = Gen.harary ~k:lambda ~n:48 in
      let net = Congest.Net.create Congest.Model.V_congest g in
      let r = Dist_ec_approx.run ~seed:lambda net in
      let ratio =
        float_of_int r.Dist_ec_approx.estimate /. float_of_int lambda
      in
      ratio >= 0.2 && ratio <= 5.0)

(* ------------------------------------------------------------------ *)
(* Edge-connectivity estimate *)

let test_ec_approx () =
  List.iter
    (fun lambda ->
      let g = Gen.harary ~k:lambda ~n:48 in
      let r = Ec_approx.centralized g in
      Alcotest.(check int) "truth exact" lambda r.Ec_approx.truth;
      let ratio =
        float_of_int r.Ec_approx.estimate /. float_of_int lambda
      in
      Alcotest.(check bool)
        (Printf.sprintf "estimate %d within [1/4, 2] of %d"
           r.Ec_approx.estimate lambda)
        true
        (ratio >= 0.25 && ratio <= 2.))
    [ 4; 8; 12 ]

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "spantree"
    [
      ( "spacking",
        [
          Alcotest.test_case "size and load" `Quick test_spacking_size_and_load;
          Alcotest.test_case "rejects" `Quick test_spacking_rejects;
          Alcotest.test_case "normalize" `Quick test_normalize;
        ] );
      ( "lagrangian",
        [
          Alcotest.test_case "feasible and sized" `Quick
            test_lagrangian_feasible_and_sized;
          Alcotest.test_case "trivial lambda" `Quick test_lagrangian_trivial_lambda;
          Alcotest.test_case "stop certificate (F.1)" `Quick
            test_lagrangian_stop_certificate;
          Alcotest.test_case "iteration cap" `Quick test_lagrangian_iteration_cap;
          Alcotest.test_case "collection invariant" `Quick
            test_lagrangian_collection_invariant;
          Alcotest.test_case "max z improves" `Quick test_lagrangian_z_improves;
          Alcotest.test_case "edge capacities" `Quick test_lagrangian_capacities;
        ] );
      qsuite "lagrangian.props" [ prop_lagrangian_always_feasible ];
      qsuite "spacking.fuzz" [ prop_spacking_catches_mutations ];
      ( "sampling",
        [
          Alcotest.test_case "degenerate" `Quick
            test_sampling_small_lambda_degenerates;
          Alcotest.test_case "splits" `Quick test_sampling_splits_large_lambda;
          Alcotest.test_case "auto" `Quick test_run_auto;
        ] );
      ( "integral",
        [
          Alcotest.test_case "achieves target" `Quick test_peel_achieves_target;
          Alcotest.test_case "disconnected" `Quick test_peel_disconnected;
        ] );
      qsuite "integral.props" [ prop_peel_edge_disjoint ];
      ( "dist_packing",
        [
          Alcotest.test_case "feasible" `Quick test_dist_packing_feasible;
          Alcotest.test_case "V-CONGEST compatible" `Quick
            test_dist_packing_works_in_vcongest_rejected;
        ] );
      ( "dist_sampled",
        [
          Alcotest.test_case "eta > 1 parts pack in parallel" `Quick (fun () ->
              let g = Gen.clique 20 in
              let net = Congest.Net.create Congest.Model.E_congest g in
              let r = Dist_packing.run_sampled ~eps:3.0 net ~lambda:19 in
              Alcotest.(check bool) "eta > 1" true (r.Dist_packing.eta > 1);
              Alcotest.(check bool) "feasible" true
                (Spacking.is_valid ~tolerance:1e-6 r.Dist_packing.packing);
              Alcotest.(check bool) "pipelined <= sequential" true
                (r.Dist_packing.parallel_rounds <= r.Dist_packing.measured_rounds));
        ] );
      ( "dist_integral",
        [
          Alcotest.test_case "edge-disjoint trees" `Quick (fun () ->
              let g = Gen.harary ~k:8 ~n:40 in
              let net = Congest.Net.create Congest.Model.E_congest g in
              let r = Dist_integral.run ~eps:3.0 net ~lambda:8 in
              Alcotest.(check bool) "at least one tree" true
                (r.Dist_integral.parts_connected >= 1);
              Alcotest.(check bool) "valid edge-disjoint packing" true
                (Spacking.is_valid
                   (Integral.to_packing g r.Dist_integral.trees));
              Alcotest.(check bool) "rounds counted" true
                (r.Dist_integral.rounds > 0));
        ] );
      ( "dist_run_auto",
        [
          Alcotest.test_case "end to end" `Quick (fun () ->
              let g = Gen.harary ~k:4 ~n:24 in
              let net = Congest.Net.create Congest.Model.E_congest g in
              let r = Dist_packing.run_auto net in
              Alcotest.(check bool) "feasible" true
                (Spacking.is_valid ~tolerance:1e-6 r.Dist_packing.packing);
              Alcotest.(check bool) "nonempty" true
                (Spacking.size r.Dist_packing.packing > 0.5));
        ] );
      ( "dist_ec_approx",
        [
          Alcotest.test_case "regular" `Quick test_dist_ec_approx_regular;
          Alcotest.test_case "bottleneck" `Quick test_dist_ec_approx_bottleneck;
        ] );
      qsuite "dist_ec_approx.props" [ prop_dist_ec_constant_factor ];
      ( "ec_approx",
        [ Alcotest.test_case "families" `Quick test_ec_approx ] );
    ]
