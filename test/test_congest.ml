(* Tests for the CONGEST simulator: runtime accounting and bandwidth
   enforcement, BFS/aggregation primitives, component identification,
   distributed MST. *)

open Graphs

let rng () = Random.State.make [| 0xBEEF |]

let vnet g = Congest.Net.create Congest.Model.V_congest g
let enet g = Congest.Net.create Congest.Model.E_congest g

(* ------------------------------------------------------------------ *)
(* Runtime *)

let test_broadcast_round () =
  let g = Gen.path 3 in
  let net = vnet g in
  let inboxes = Congest.Net.broadcast_round net (fun u -> Some [| u * 10 |]) in
  Alcotest.(check int) "one round" 1 (Congest.Net.rounds net);
  (* middle node hears both ends *)
  Alcotest.(check int) "inbox size" 2 (List.length inboxes.(1));
  let senders = List.map fst inboxes.(1) in
  Alcotest.(check (list int)) "senders sorted" [ 0; 2 ] senders;
  Alcotest.(check int) "messages" 4 (Congest.Net.messages_sent net)

let test_bandwidth_enforced () =
  let g = Gen.path 3 in
  let net = vnet g in
  match Congest.Net.broadcast_round net (fun _ -> Some (Array.make 9 0)) with
  | _ -> Alcotest.fail "oversized message accepted"
  | exception Congest.Net.Protocol_violation v ->
    Alcotest.(check int) "violation round" 0 v.Congest.Net.v_round;
    Alcotest.(check (option int)) "budget in context" (Some 8)
      v.Congest.Net.v_budget;
    Alcotest.(check bool) "offending node recorded" true
      (v.Congest.Net.v_node <> None)

let test_word_width_enforced () =
  let g = Gen.path 3 in
  let net = vnet g in
  let huge = max_int in
  try
    ignore (Congest.Net.broadcast_round net (fun _ -> Some [| huge |]));
    Alcotest.fail "expected rejection of an overly wide word"
  with Congest.Net.Protocol_violation _ -> ()

let test_edge_round_illegal_in_vcongest () =
  let g = Gen.path 3 in
  let net = vnet g in
  match Congest.Net.edge_round net (fun _ -> []) with
  | _ -> Alcotest.fail "edge_round accepted in V-CONGEST"
  | exception Congest.Net.Protocol_violation v ->
    Alcotest.(check bool) "detail names edge_round" true
      (String.length v.Congest.Net.v_detail > 0)

let test_edge_round_in_econgest () =
  let g = Gen.path 3 in
  let net = enet g in
  let inboxes =
    Congest.Net.edge_round net (fun u ->
        if u = 1 then [ (0, [| 7 |]); (2, [| 8 |]) ] else [])
  in
  Alcotest.(check int) "end 0 got 7" 7 (snd (List.hd inboxes.(0))).(0);
  Alcotest.(check int) "end 2 got 8" 8 (snd (List.hd inboxes.(2))).(0);
  match
    Congest.Net.edge_round net (fun u ->
        if u = 1 then [ (0, [| 1 |]); (0, [| 2 |]) ] else [])
  with
  | _ -> Alcotest.fail "duplicate edge direction accepted"
  | exception Congest.Net.Protocol_violation v ->
    Alcotest.(check (option (pair int int))) "offending edge" (Some (1, 0))
      v.Congest.Net.v_edge

let test_congestion_accounting () =
  let g = Gen.clique 4 in
  let net = vnet g in
  ignore (Congest.Net.broadcast_round net (fun _ -> Some [| 1; 2 |]));
  (* every node receives 3 messages x 2 words = 6 words *)
  Alcotest.(check int) "node load" 6 (Congest.Net.max_node_load net);
  (* each edge carries 2 words in each direction = 4 *)
  Alcotest.(check int) "edge load" 4 (Congest.Net.max_edge_load net)

let test_reset_and_checkpoint () =
  let g = Gen.path 4 in
  let net = vnet g in
  ignore (Congest.Net.broadcast_round net (fun _ -> Some [| 0 |]));
  let cp = Congest.Net.checkpoint net in
  ignore (Congest.Net.broadcast_round net (fun _ -> Some [| 0 |]));
  Congest.Net.silent_rounds net 3;
  Alcotest.(check int) "rounds since" 4 (Congest.Net.rounds_since net cp);
  Congest.Net.reset_stats net;
  Alcotest.(check int) "reset" 0 (Congest.Net.rounds net)

let test_boundary_accounting () =
  let g = Gen.path 4 in
  let net = vnet g in
  Congest.Net.set_boundary net (fun v -> v < 2);
  (* node 1 broadcasts a 3-word message: neighbors 0 (same side) and 2
     (across) -> 3 words cross; node 3 broadcasts 1 word to 2: same side *)
  ignore
    (Congest.Net.broadcast_round net (fun v ->
         if v = 1 then Some [| 1; 2; 3 |]
         else if v = 3 then Some [| 9 |]
         else None));
  Alcotest.(check int) "crossing words" 3 (Congest.Net.boundary_words net);
  Congest.Net.clear_boundary net;
  ignore (Congest.Net.broadcast_round net (fun _ -> Some [| 1 |]));
  Alcotest.(check int) "no boundary, no counting" 3
    (Congest.Net.boundary_words net);
  Congest.Net.reset_stats net;
  Alcotest.(check int) "reset" 0 (Congest.Net.boundary_words net)

(* ------------------------------------------------------------------ *)
(* Fault injection *)

module F = Congest.Faults

let net_fingerprint net =
  ( Congest.Net.rounds net,
    Congest.Net.messages_sent net,
    Congest.Net.words_sent net,
    Congest.Net.messages_lost net,
    Congest.Net.words_lost net,
    Congest.Net.max_node_load net,
    Congest.Net.max_edge_load net )

let prop_null_adversary_bit_identical =
  QCheck.Test.make
    ~name:"null adversary: execution bit-identical to fault-free" ~count:30
    QCheck.(triple (int_range 4 20) (int_range 0 20) (int_range 0 999))
    (fun (n, extra, salt) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let send1 u = if (u + salt) mod 3 = 0 then Some [| u; salt mod 7 |] else None in
      let send2 u = if u mod 2 = 0 then Some [| u; u; salt mod 5 |] else None in
      let run with_null =
        let net = vnet g in
        if with_null then F.install net (F.none ());
        let i1 = Congest.Net.broadcast_round net send1 in
        let i2 = Congest.Net.broadcast_round net send2 in
        (i1, i2, net_fingerprint net)
      in
      run false = run true)

let test_crash_silences_node () =
  let g = Gen.clique 4 in
  let net = vnet g in
  let faults = F.create [ F.Crash_at [ (1, 2) ] ] in
  F.install net faults;
  let i0 = Congest.Net.broadcast_round net (fun u -> Some [| u |]) in
  Alcotest.(check int) "round 0: all alive" 3 (List.length i0.(0));
  let i1 = Congest.Net.broadcast_round net (fun u -> Some [| u |]) in
  Alcotest.(check bool) "node 2 crashed" true (F.crashed faults 2);
  Alcotest.(check (list int)) "crashed node silenced as sender" [ 1; 3 ]
    (List.map fst i1.(0) |> List.sort compare);
  Alcotest.(check int) "crashed node's inbox silenced" 0 (List.length i1.(2));
  (* three messages destined to the crashed node were destroyed *)
  Alcotest.(check int) "messages lost" 3 (Congest.Net.messages_lost net);
  Alcotest.(check int) "words lost" 3 (Congest.Net.words_lost net);
  Alcotest.(check (list int)) "crashed_nodes" [ 2 ] (F.crashed_nodes faults);
  (* destroyed traffic is not billed as sent *)
  Alcotest.(check int) "sent excludes destroyed" (12 + 6)
    (Congest.Net.messages_sent net);
  match F.events faults with
  | [ F.Crash { round = 1; node = 2 } ] -> ()
  | _ -> Alcotest.fail "expected exactly one crash event at round 1"

let test_bernoulli_drops_accounted () =
  let g = Gen.clique 6 in
  let net = vnet g in
  let faults = F.create ~seed:3 [ F.Drop_bernoulli 0.5 ] in
  F.install net faults;
  for _ = 1 to 10 do
    ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]))
  done;
  let sent = Congest.Net.messages_sent net in
  let lost = Congest.Net.messages_lost net in
  Alcotest.(check int) "sent + lost = offered" (6 * 5 * 10) (sent + lost);
  Alcotest.(check bool) "some messages dropped" true (lost > 0);
  Alcotest.(check bool) "some messages survived" true (sent > 0);
  Alcotest.(check int) "adversary drop counter agrees" lost (F.drops faults);
  Alcotest.(check int) "adversary words_lost agrees"
    (Congest.Net.words_lost net) (F.words_lost faults)

let test_drop_determinism () =
  let run () =
    let g = Gen.clique 6 in
    let net = vnet g in
    let faults = F.create ~seed:11 [ F.Drop_bernoulli 0.3 ] in
    F.install net faults;
    let i = Congest.Net.broadcast_round net (fun u -> Some [| u |]) in
    (i, net_fingerprint net)
  in
  Alcotest.(check bool) "same seed, same execution" true (run () = run ())

let test_scheduled_edge_kill () =
  let g = Gen.cycle 4 in
  let net = vnet g in
  let faults = F.create [ F.Kill_edges_at [ (1, (1, 0)) ] ] in
  F.install net faults;
  let i0 = Congest.Net.broadcast_round net (fun u -> Some [| u |]) in
  Alcotest.(check int) "round 0: edge alive" 2 (List.length i0.(0));
  let i1 = Congest.Net.broadcast_round net (fun u -> Some [| u |]) in
  Alcotest.(check (list int)) "0 no longer hears 1" [ 3 ]
    (List.map fst i1.(0));
  Alcotest.(check (list int)) "1 no longer hears 0" [ 2 ]
    (List.map fst i1.(1));
  Alcotest.(check bool) "killed, orientation-free" true
    (F.edge_killed faults (0, 1) && F.edge_killed faults (1, 0));
  Alcotest.(check int) "both directions destroyed" 2
    (Congest.Net.messages_lost net)

let test_greedy_kill_budget () =
  let g = Gen.clique 5 in
  let net = vnet g in
  let faults =
    F.create [ F.Greedy_edge_kill { budget = 2; period = 1; from_round = 1 } ]
  in
  F.install net faults;
  for _ = 1 to 6 do
    ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]))
  done;
  Alcotest.(check int) "budget respected" 2 (F.edges_killed faults);
  Alcotest.(check int) "two distinct edges" 2
    (List.length (F.killed_edges faults))

let test_reset_stats_contract () =
  let g = Gen.clique 4 in
  let net = vnet g in
  let faults = F.create ~seed:1 [ F.Drop_bernoulli 1.0 ] in
  F.install net faults;
  ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]));
  Alcotest.(check int) "p=1: everything lost" 12
    (Congest.Net.messages_lost net);
  Alcotest.(check int) "p=1: nothing delivered" 0
    (Congest.Net.messages_sent net);
  Congest.Net.reset_stats net;
  Alcotest.(check int) "messages_lost zeroed" 0
    (Congest.Net.messages_lost net);
  Alcotest.(check int) "words_lost zeroed" 0 (Congest.Net.words_lost net);
  Alcotest.(check int) "boundary_words zeroed" 0
    (Congest.Net.boundary_words net);
  (* configuration survives a stats reset; only counters are cleared *)
  Alcotest.(check bool) "fault hook survives reset" true
    (Congest.Net.has_faults net);
  F.uninstall net;
  ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]));
  Alcotest.(check int) "uninstalled: deliveries resume" 12
    (Congest.Net.messages_sent net)

let test_invalid_drop_probability () =
  Alcotest.check_raises "p > 1 rejected"
    (Invalid_argument "Faults.create: drop probability outside [0,1]")
    (fun () -> ignore (F.create [ F.Drop_bernoulli 1.5 ]))

let storm_spec =
  F.Crash_storm { from_round = 2; per_round = 2; storm_rounds = 3; universe = 8 }

let test_crash_storm_determinism () =
  let run () =
    let g = Gen.clique 8 in
    let net = vnet g in
    let faults = F.create ~seed:21 [ storm_spec ] in
    F.install net faults;
    for _ = 1 to 8 do
      ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]))
    done;
    (F.crashed_nodes faults, net_fingerprint net)
  in
  Alcotest.(check bool) "same seed, same storm" true (run () = run ())

let test_crash_storm_bounds () =
  let g = Gen.clique 8 in
  let net = vnet g in
  let faults = F.create ~seed:21 [ storm_spec ] in
  F.install net faults;
  (* before the storm window opens, nobody dies *)
  ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]));
  ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]));
  Alcotest.(check (list int)) "quiet before from_round" []
    (F.crashed_nodes faults);
  for _ = 1 to 8 do
    ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]))
  done;
  let crashed = F.crashed_nodes faults in
  (* per_round victims are drawn per storm round; redraws of an already
     dead victim are no-ops, so the count is an upper bound *)
  Alcotest.(check bool) "at most per_round * storm_rounds victims" true
    (List.length crashed <= 2 * 3);
  Alcotest.(check bool) "at least one victim" true (crashed <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool) "victim within universe" true (v >= 0 && v < 8))
    crashed;
  (* storm window closed: further rounds kill nobody new *)
  for _ = 1 to 4 do
    ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]))
  done;
  Alcotest.(check (list int)) "storm over" crashed (F.crashed_nodes faults)

let test_barrier_rollback_deterministic () =
  let g = Gen.random_connected (rng ()) ~n:12 ~extra:8 in
  let net = vnet g in
  let faults =
    F.create ~seed:5
      [
        F.Drop_bernoulli 0.2;
        F.Crash_storm
          { from_round = 4; per_round = 1; storm_rounds = 2; universe = 12 };
      ]
  in
  F.install net faults;
  (* prefix: run into the middle of the fault schedule *)
  for _ = 1 to 3 do
    ignore (Congest.Net.broadcast_round net (fun u -> Some [| u |]))
  done;
  let b = Congest.Net.barrier net in
  let crashed_at_barrier = F.crashed_nodes faults in
  let segment () =
    for _ = 1 to 5 do
      ignore (Congest.Net.broadcast_round net (fun _ -> Some (Array.make 2 7)))
    done;
    Congest.Net.telemetry net
  in
  let t1 = segment () in
  Alcotest.(check int) "discarded_since counts the segment" 5
    (Congest.Net.discarded_since net b);
  Congest.Net.rollback net b;
  Alcotest.(check int) "clock rewound" 3 (Congest.Net.rounds net);
  Alcotest.(check (list int)) "crash set restored" crashed_at_barrier
    (F.crashed_nodes faults);
  (* the restored adversary replays the exact fault pattern: the
     re-executed segment is bit-identical *)
  let t2 = segment () in
  Alcotest.(check (list string)) "re-execution bit-identical" []
    (Congest.Net.diff_telemetry t1 t2);
  (* a barrier survives multiple rollbacks (the restore thunk is
     reusable) *)
  Congest.Net.rollback net b;
  let t3 = segment () in
  Alcotest.(check (list string)) "second rollback identical too" []
    (Congest.Net.diff_telemetry t1 t3)

(* ------------------------------------------------------------------ *)
(* Primitives *)

let test_bfs_tree_rounds () =
  let g = Gen.path 8 in
  let net = vnet g in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  Alcotest.(check int) "height" 7 tree.Congest.Primitives.height;
  Alcotest.(check int) "parent chain" 3 tree.Congest.Primitives.parent.(4);
  (* BFS from an end of a path takes ecc + 1 = 8 rounds *)
  Alcotest.(check int) "rounds" 8 (Congest.Net.rounds net)

let test_flood_min () =
  let g = Gen.cycle 7 in
  let net = vnet g in
  let mins =
    Congest.Primitives.flood_min net ~value:(fun u -> 100 - u) ~rounds:4
  in
  (* after >= diameter(3)+ rounds everyone has the global min 100-6 = 94 *)
  Array.iter (fun v -> Alcotest.(check int) "global min" 94 v) mins

let test_flood_min_checked_matches () =
  let g = Gen.random_connected (rng ()) ~n:18 ~extra:6 in
  let value u = (u * 13) mod 31 in
  let plain = Congest.Primitives.flood_min (vnet g) ~value ~rounds:18 in
  let checked =
    Congest.Primitives.flood_min_checked (vnet g) ~value ~rounds:18
  in
  Alcotest.(check (array int)) "same fixpoint" plain checked

let test_knowledge_unlearned_read_raises () =
  let g = Gen.path 5 in
  let net = vnet g in
  let k = Congest.Knowledge.create net ~init:(fun v -> v * 10) in
  (* own entry is always legal *)
  Alcotest.(check int) "own entry" 30 (Congest.Knowledge.read k ~reader:3 ~about:3);
  (* node 0 never received anything about node 4 *)
  Alcotest.check_raises "unlearned read"
    (Congest.Net.Protocol_violation
       {
         Congest.Net.v_round = 0;
         v_node = Some 0;
         v_edge = None;
         v_budget = None;
         v_detail = "locality: node 0 read knowledge about node 4 it never received";
       })
    (fun () -> ignore (Congest.Knowledge.read k ~reader:0 ~about:4))

let test_knowledge_exchange_is_one_hop () =
  let g = Gen.path 4 in
  let net = vnet g in
  let k = Congest.Knowledge.create net ~init:(fun v -> v) in
  Congest.Knowledge.exchange k ~encode:(fun v -> [| v |])
    ~decode:(fun m -> m.(0));
  (* after one exchange node 1 knows exactly {0, 1, 2} *)
  Alcotest.(check (list int)) "one-hop horizon" [ 0; 1; 2 ]
    (Congest.Knowledge.known_to k 1);
  Alcotest.(check bool) "neighbor readable" true
    (Congest.Knowledge.knows k ~reader:1 ~about:2);
  Alcotest.(check int) "delivered value" 2
    (Congest.Knowledge.read k ~reader:1 ~about:2);
  (* reads are logged for footprint assertions *)
  Alcotest.(check (list int)) "read log" [ 2 ]
    (Congest.Knowledge.reads_of k 1);
  (* two hops away stays out of reach *)
  Alcotest.(check bool) "two hops unknown" false
    (Congest.Knowledge.knows k ~reader:0 ~about:2)

let test_knowledge_unchecked_records_only () =
  let g = Gen.path 3 in
  let net = vnet g in
  let k = Congest.Knowledge.create ~checked:false net ~init:(fun v -> v) in
  Alcotest.(check bool) "not checked" false (Congest.Knowledge.checked k);
  (* out-of-horizon read: no raise, None, still logged *)
  Alcotest.(check (option int)) "unlearned is None" None
    (Congest.Knowledge.read_opt k ~reader:0 ~about:2);
  Alcotest.(check (list int)) "footprint recorded" [ 2 ]
    (Congest.Knowledge.reads_of k 0)

let test_preprocess () =
  let g = Gen.grid 3 5 in
  let net = vnet g in
  let tree, count, d_bound = Congest.Primitives.preprocess net in
  Alcotest.(check int) "n learned" 15 count;
  Alcotest.(check int) "leader is min id" 0 tree.Congest.Primitives.root;
  let d = Traversal.diameter g in
  Alcotest.(check bool) "d_bound in [D, 2D]" true (d <= d_bound && d_bound <= 2 * d)

let test_converge_sum_min () =
  let g = Gen.random_connected (rng ()) ~n:20 ~extra:10 in
  let net = vnet g in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let total = Congest.Primitives.converge_sum net tree (fun u -> u) in
  Alcotest.(check int) "sum of ids" (20 * 19 / 2) total;
  let m = Congest.Primitives.converge_min net tree (fun u -> 50 - u) in
  Alcotest.(check int) "min" 31 m

let test_broadcast_int () =
  let g = Gen.path 6 in
  let net = vnet g in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let got = Congest.Primitives.broadcast_int net tree 42 in
  Array.iter (fun v -> Alcotest.(check int) "everyone got 42" 42 v) got

let test_pipelined_upcast_filter () =
  (* star with center 0: leaves each hold one item; the filter keeps only
     even-valued items *)
  let g = Gen.complete_bipartite 1 5 in
  let net = vnet g in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let items u = if u > 0 then [ [| u |] ] else [] in
  let filter _ m = m.(0) mod 2 = 0 in
  let received = Congest.Primitives.pipelined_upcast net tree ~items ~filter in
  let values = List.map (fun m -> m.(0)) received |> List.sort compare in
  Alcotest.(check (list int)) "only evens arrive" [ 2; 4 ] values

let test_pipelined_upcast_forest_filter () =
  (* Kutten-Peleg style: upcast fragment-graph edges keeping a spanning
     forest only. Path 0-1-2-3; node 3 holds redundant edges. *)
  let g = Gen.path 4 in
  let net = vnet g in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let items u =
    if u = 3 then [ [| 10; 11 |]; [| 11; 12 |]; [| 10; 12 |]; [| 10; 11 |] ]
    else []
  in
  (* per-node union-find filter over fragment ids 10..12 *)
  let ufs = Array.init 4 (fun _ -> Union_find.create 3) in
  let filter v m = Union_find.union ufs.(v) (m.(0) - 10) (m.(1) - 10) in
  let received = Congest.Primitives.pipelined_upcast net tree ~items ~filter in
  Alcotest.(check int) "root sees spanning forest only" 2
    (List.length received)

let test_pipelined_downcast_rounds () =
  let g = Gen.path 5 in
  let net = vnet g in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let cp = Congest.Net.checkpoint net in
  Congest.Primitives.pipelined_downcast net tree [ [| 1 |]; [| 2 |]; [| 3 |] ];
  Alcotest.(check int) "rounds = items + height" (3 + 4)
    (Congest.Net.rounds_since net cp)

(* ------------------------------------------------------------------ *)
(* Component identification *)

let test_identify_subgraph () =
  let g = Gen.path 6 in
  let net = vnet g in
  (* deactivate the middle edge (2,3): two components *)
  let labels =
    Congest.Components.identify net
      ~active:(fun _ -> true)
      ~edge_active:(fun u v -> not ((u = 2 && v = 3) || (u = 3 && v = 2)))
  in
  Alcotest.(check (array int)) "labels" [| 0; 0; 0; 3; 3; 3 |] labels

let test_identify_inactive_nodes () =
  let g = Gen.cycle 6 in
  let net = vnet g in
  let labels =
    Congest.Components.identify net
      ~active:(fun v -> v <> 0 && v <> 3)
      ~edge_active:(fun _ _ -> true)
  in
  Alcotest.(check int) "inactive" (-1) labels.(0);
  Alcotest.(check int) "side a" 1 labels.(1);
  Alcotest.(check int) "side a" 1 labels.(2);
  Alcotest.(check int) "side b" 4 labels.(4);
  Alcotest.(check int) "side b" 4 labels.(5)

let test_identify_min_value () =
  let g = Gen.path 5 in
  let net = vnet g in
  let values, ids =
    Congest.Components.identify_min_value net
      ~active:(fun _ -> true)
      ~edge_active:(fun _ _ -> true)
      ~value:(fun u -> 10 - u)
  in
  Array.iter (fun v -> Alcotest.(check int) "min value" 6 v) values;
  Array.iter (fun i -> Alcotest.(check int) "argmin id" 4 i) ids

let prop_identify_matches_centralized =
  QCheck.Test.make
    ~name:"distributed component id = centralized components" ~count:25
    QCheck.(pair (int_range 4 20) (int_range 0 20))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      (* drop a pseudo-random half of the edges *)
      let keep u v = (u + (3 * v)) mod 3 <> 0 in
      let sym u v = keep (min u v) (max u v) in
      let net = vnet g in
      let labels =
        Congest.Components.identify net ~active:(fun _ -> true) ~edge_active:sym
      in
      let sub = Graph.spanning_subgraph g sym in
      let _, central = Traversal.components sub in
      (* same partition: labels agree iff centralized labels agree *)
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if labels.(u) = labels.(v) && central.(u) <> central.(v) then
            ok := false;
          if central.(u) = central.(v) && labels.(u) <> labels.(v) then
            ok := false
        done
      done;
      !ok)

let same_partition a b =
  let n = Array.length a in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if (a.(u) = a.(v)) <> (b.(u) = b.(v)) then ok := false;
      if (a.(u) < 0) <> (b.(u) < 0) then ok := false
    done
  done;
  !ok

let test_identify_hybrid_matches () =
  let g = Gen.random_connected (rng ()) ~n:40 ~extra:30 in
  let keep u v = (u + (2 * v)) mod 3 <> 0 in
  let sym u v = keep (min u v) (max u v) in
  let net1 = vnet g in
  let flood =
    Congest.Components.identify net1 ~active:(fun _ -> true) ~edge_active:sym
  in
  let net2 = vnet g in
  let hybrid =
    Congest.Components.identify_hybrid net2 ~active:(fun _ -> true)
      ~edge_active:sym
  in
  Alcotest.(check bool) "hybrid partition = flooding partition" true
    (same_partition flood hybrid)

let test_identify_hybrid_beats_flooding_on_paths () =
  (* a long path: flooding needs ~n rounds, the hybrid ~sqrt n + D...
     on a path D = n so we embed the path in a star-augmented graph to
     keep D small: path + hub connected to every 8th node *)
  let n = 256 in
  let path_edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  let hub_edges = List.init (n / 8) (fun j -> (n, 8 * j)) in
  let g = Graph.of_edges ~n:(n + 1) (path_edges @ hub_edges) in
  (* subgraph = the path only (hub inactive) *)
  let active v = v < n in
  let edge_active u v = u < n && v < n in
  let net1 = vnet g in
  let _ = Congest.Components.identify net1 ~active ~edge_active in
  let flood_rounds = Congest.Net.rounds net1 in
  let net2 = vnet g in
  let labels = Congest.Components.identify_hybrid net2 ~active ~edge_active in
  let hybrid_rounds = Congest.Net.rounds net2 in
  (* the path is one component: all labels equal, hub inactive *)
  for v = 1 to n - 1 do
    Alcotest.(check int) "single component" labels.(0) labels.(v)
  done;
  Alcotest.(check int) "hub inactive" (-1) labels.(n);
  Alcotest.(check bool)
    (Printf.sprintf "hybrid %d < flooding %d rounds" hybrid_rounds flood_rounds)
    true
    (hybrid_rounds < flood_rounds)

let test_identify_hybrid_isolated_fragments () =
  (* disconnected subgraph with singleton and small components *)
  let g = Gen.cycle 9 in
  let net = vnet g in
  let labels =
    Congest.Components.identify_hybrid net
      ~active:(fun v -> v <> 2 && v <> 5 && v <> 8)
      ~edge_active:(fun _ _ -> true)
  in
  Alcotest.(check int) "inactive" (-1) labels.(2);
  Alcotest.(check bool) "arc {0,1}" true (labels.(0) = labels.(1));
  Alcotest.(check bool) "arc {3,4}" true (labels.(3) = labels.(4));
  Alcotest.(check bool) "arcs distinct" true (labels.(0) <> labels.(3))

let prop_hybrid_matches_flooding =
  QCheck.Test.make
    ~name:"hybrid component id = flooding component id" ~count:20
    QCheck.(pair (int_range 5 30) (int_range 0 25))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let keep u v = (u * v) mod 4 <> 1 in
      let sym u v = keep (min u v) (max u v) in
      let net1 = vnet g in
      let a =
        Congest.Components.identify net1 ~active:(fun _ -> true) ~edge_active:sym
      in
      let net2 = vnet g in
      let b =
        Congest.Components.identify_hybrid ~cap:3 net2 ~active:(fun _ -> true)
          ~edge_active:sym
      in
      same_partition a b)

(* ------------------------------------------------------------------ *)
(* Distributed MST *)

let test_dist_mst_is_mst () =
  let g = Gen.random_connected (rng ()) ~n:25 ~extra:30 in
  let weight u v =
    let u, v = (min u v, max u v) in
    ((u * 131) + (v * 37)) mod 1000
  in
  let net = vnet g in
  let forest = Congest.Dist_mst.minimum_spanning_forest net ~weight in
  Alcotest.(check bool) "spanning tree" true
    (Mst.is_spanning_tree ~n:25 forest);
  let wt =
    List.fold_left (fun acc (u, v) -> acc +. float_of_int (weight u v)) 0. forest
  in
  let central =
    Mst.minimum_spanning_tree g ~weight:(fun u v -> float_of_int (weight u v))
  in
  let cw =
    List.fold_left (fun acc (u, v) -> acc +. float_of_int (weight u v)) 0.
      central
  in
  Alcotest.(check (float 1e-6)) "same weight as centralized MST" cw wt

let test_dist_mst_on_subgraph () =
  let g = Gen.clique 8 in
  let net = vnet g in
  (* restrict to even vertices, forming a 4-clique *)
  let active v = v mod 2 = 0 in
  let forest =
    Congest.Dist_mst.minimum_spanning_forest_on net ~active
      ~edge_active:(fun u v -> active u && active v)
      ~weight:(fun u v -> u + v)
  in
  Alcotest.(check int) "three edges" 3 (List.length forest);
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "even endpoints" true (active u && active v))
    forest

let test_pipelined_converge () =
  let g = Gen.path 6 in
  let net = vnet g in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  (* keys 0/1, payload = one word; minimum per key expected at root *)
  let values u = [ (u mod 2, [| 100 - u |]) ] in
  let better (a : Congest.Net.msg) b = a.(0) < b.(0) in
  let result = Congest.Primitives.pipelined_converge net tree ~values ~better in
  (match result with
  | [ (0, p0); (1, p1) ] ->
    Alcotest.(check int) "min even payload" (100 - 4) p0.(0);
    Alcotest.(check int) "min odd payload" (100 - 5) p1.(0)
  | _ -> Alcotest.fail "expected two keys");
  ignore tree

let test_pipelined_converge_rounds () =
  (* many keys: rounds should scale like height + #keys, far below
     height * #keys *)
  let g = Gen.path 16 in
  let net = vnet g in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let keys = 8 in
  let values u = [ (u mod keys, [| u |]) ] in
  let better (a : Congest.Net.msg) b = a.(0) < b.(0) in
  let cp = Congest.Net.checkpoint net in
  let result = Congest.Primitives.pipelined_converge net tree ~values ~better in
  Alcotest.(check int) "all keys arrive" keys (List.length result);
  let rounds = Congest.Net.rounds_since net cp in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined: %d rounds <= 3*(height+keys)" rounds)
    true
    (rounds <= 3 * (tree.Congest.Primitives.height + keys + 2))

let test_hybrid_mst_matches () =
  let g = Gen.random_connected (rng ()) ~n:30 ~extra:40 in
  let weight u v =
    let u, v = (min u v, max u v) in
    ((u * 101) + (v * 53)) mod 997
  in
  let net1 = vnet g in
  let a = Congest.Dist_mst.minimum_spanning_forest net1 ~weight in
  let net2 = vnet g in
  let b = Congest.Dist_mst.minimum_spanning_forest_hybrid net2 ~weight in
  Alcotest.(check (list (pair int int))) "same forest" a b

let prop_hybrid_mst_matches =
  QCheck.Test.make ~name:"hybrid MST = flooding MST" ~count:12
    QCheck.(pair (int_range 5 20) (int_range 0 25))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let weight u v =
        let u, v = (min u v, max u v) in
        ((u * 7) + (v * 13)) mod 61
      in
      let net1 = vnet g in
      let a = Congest.Dist_mst.minimum_spanning_forest net1 ~weight in
      let net2 = vnet g in
      let b = Congest.Dist_mst.minimum_spanning_forest_hybrid net2 ~weight in
      a = b)

let prop_dist_mst_weight =
  QCheck.Test.make ~name:"distributed MST weight matches centralized"
    ~count:15
    QCheck.(pair (int_range 5 18) (int_range 0 25))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let weight u v =
        let u, v = (min u v, max u v) in
        ((u * 7) + (v * 13)) mod 50
      in
      let net = vnet g in
      let forest = Congest.Dist_mst.minimum_spanning_forest net ~weight in
      let dw =
        List.fold_left (fun a (u, v) -> a + weight u v) 0 forest
      in
      let central =
        Mst.minimum_spanning_tree g ~weight:(fun u v -> float_of_int (weight u v))
      in
      let cw = List.fold_left (fun a (u, v) -> a + weight u v) 0 central in
      Mst.is_spanning_tree ~n forest && dw = cw)

(* ------------------------------------------------------------------ *)

let prop_words_accounting =
  QCheck.Test.make ~name:"words_sent equals the sum of message lengths"
    ~count:30
    QCheck.(pair (int_range 3 12) (int_range 1 8))
    (fun (n, len) ->
      let g = Gen.clique n in
      let net = vnet g in
      ignore
        (Congest.Net.broadcast_round net (fun u ->
             if u mod 2 = 0 then Some (Array.make len 1) else None));
      let senders = (n + 1) / 2 in
      Congest.Net.words_sent net = senders * (n - 1) * len
      && Congest.Net.messages_sent net = senders * (n - 1))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "congest"
    [
      ( "runtime",
        [
          Alcotest.test_case "broadcast round" `Quick test_broadcast_round;
          Alcotest.test_case "bandwidth" `Quick test_bandwidth_enforced;
          Alcotest.test_case "word width" `Quick test_word_width_enforced;
          Alcotest.test_case "edge_round illegal in V" `Quick
            test_edge_round_illegal_in_vcongest;
          Alcotest.test_case "edge_round in E" `Quick test_edge_round_in_econgest;
          Alcotest.test_case "congestion accounting" `Quick
            test_congestion_accounting;
          Alcotest.test_case "reset/checkpoint" `Quick test_reset_and_checkpoint;
          Alcotest.test_case "boundary accounting" `Quick
            test_boundary_accounting;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash silences node" `Quick
            test_crash_silences_node;
          Alcotest.test_case "bernoulli drops accounted" `Quick
            test_bernoulli_drops_accounted;
          Alcotest.test_case "drop determinism" `Quick test_drop_determinism;
          Alcotest.test_case "scheduled edge kill" `Quick
            test_scheduled_edge_kill;
          Alcotest.test_case "greedy kill budget" `Quick
            test_greedy_kill_budget;
          Alcotest.test_case "reset_stats contract" `Quick
            test_reset_stats_contract;
          Alcotest.test_case "invalid drop probability" `Quick
            test_invalid_drop_probability;
          Alcotest.test_case "crash storm determinism" `Quick
            test_crash_storm_determinism;
          Alcotest.test_case "crash storm bounds" `Quick
            test_crash_storm_bounds;
          Alcotest.test_case "barrier rollback deterministic" `Quick
            test_barrier_rollback_deterministic;
        ] );
      qsuite "faults.props" [ prop_null_adversary_bit_identical ];
      ( "primitives",
        [
          Alcotest.test_case "bfs tree + rounds" `Quick test_bfs_tree_rounds;
          Alcotest.test_case "flood min" `Quick test_flood_min;
          Alcotest.test_case "checked flood min matches" `Quick
            test_flood_min_checked_matches;
          Alcotest.test_case "preprocess" `Quick test_preprocess;
          Alcotest.test_case "converge" `Quick test_converge_sum_min;
          Alcotest.test_case "broadcast int" `Quick test_broadcast_int;
          Alcotest.test_case "pipelined upcast filter" `Quick
            test_pipelined_upcast_filter;
          Alcotest.test_case "upcast forest filter" `Quick
            test_pipelined_upcast_forest_filter;
          Alcotest.test_case "downcast rounds" `Quick
            test_pipelined_downcast_rounds;
        ] );
      ( "components",
        [
          Alcotest.test_case "subgraph split" `Quick test_identify_subgraph;
          Alcotest.test_case "inactive nodes" `Quick test_identify_inactive_nodes;
          Alcotest.test_case "min value" `Quick test_identify_min_value;
        ] );
      ( "components.hybrid",
        [
          Alcotest.test_case "matches flooding" `Quick
            test_identify_hybrid_matches;
          Alcotest.test_case "faster on paths" `Quick
            test_identify_hybrid_beats_flooding_on_paths;
          Alcotest.test_case "isolated fragments" `Quick
            test_identify_hybrid_isolated_fragments;
        ] );
      ( "knowledge",
        [
          Alcotest.test_case "unlearned read raises" `Quick
            test_knowledge_unlearned_read_raises;
          Alcotest.test_case "exchange is one hop" `Quick
            test_knowledge_exchange_is_one_hop;
          Alcotest.test_case "unchecked records only" `Quick
            test_knowledge_unchecked_records_only;
        ] );
      qsuite "runtime.props" [ prop_words_accounting ];
      qsuite "components.props"
        [ prop_identify_matches_centralized; prop_hybrid_matches_flooding ];
      ( "dist_mst",
        [
          Alcotest.test_case "matches centralized" `Quick test_dist_mst_is_mst;
          Alcotest.test_case "subgraph" `Quick test_dist_mst_on_subgraph;
        ] );
      ( "dist_mst.hybrid",
        [
          Alcotest.test_case "pipelined converge" `Quick test_pipelined_converge;
          Alcotest.test_case "converge rounds" `Quick
            test_pipelined_converge_rounds;
          Alcotest.test_case "matches flooding MST" `Quick
            test_hybrid_mst_matches;
        ] );
      qsuite "dist_mst.props" [ prop_dist_mst_weight; prop_hybrid_mst_matches ];
    ]
