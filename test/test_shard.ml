(* Sharded round engine tests: a net created with [domains > 1] must be
   byte-identical to the sequential engine — same inboxes (hence same
   protocol results), same telemetry, same per-round FNV digests, same
   violations — across graph families, models, fault adversaries,
   barriers/rollback, and replay_check. Plus the composition guards:
   nets created inside Exec.Pool workers clamp to sequential, and the
   per-shard Obs.Metrics registries merge to exact global counters. *)

open Graphs
module Net = Congest.Net

(* ------------------------------------------------------------------ *)
(* A deterministic mixed workload: value-dependent broadcast rounds
   (so later traffic depends on earlier deliveries — any merge-order
   slip corrupts the digests) followed by edge rounds under E-CONGEST. *)

let broadcast_phase net rounds =
  let n = Net.n net in
  let best = Array.init n (fun v -> (v * 7) land 63) in
  for r = 1 to rounds do
    let inboxes =
      Net.broadcast_round net (fun u ->
          if (u + r) mod 5 = 0 then None else Some [| best.(u); r land 63 |])
    in
    for v = 0 to n - 1 do
      List.iter
        (fun (_, m) -> if m.(0) < best.(v) then best.(v) <- m.(0))
        inboxes.(v)
    done
  done;
  best

let edge_phase net rounds =
  let g = Net.graph net in
  let n = Net.n net in
  let best = Array.init n (fun v -> (v * 3) land 63) in
  for r = 1 to rounds do
    let inboxes =
      Net.edge_round net (fun u ->
          Array.to_list (Graph.neighbors g u)
          |> List.filter (fun v -> (u + v + r) mod 4 <> 0)
          |> List.map (fun v -> (v, [| best.(u); (u + r) land 63 |])))
    in
    for v = 0 to n - 1 do
      List.iter
        (fun (_, m) -> if m.(0) < best.(v) then best.(v) <- m.(0))
        inboxes.(v)
    done
  done;
  best

type outcome = {
  o_result : int list;
  o_telemetry : Net.telemetry;
  o_digest : int;
}

(* Run [protocol] on a fresh net with the given domain count and return
   everything observable. The net is shut down before returning so test
   suites don't accumulate parked domains. *)
let run_outcome ?faults ~model ~domains g protocol =
  let net = Net.create ~domains model g in
  (match faults with
  | Some mk -> Congest.Faults.install net (mk ())
  | None -> ());
  let result = protocol net in
  let t = Net.telemetry net in
  let o =
    { o_result = result; o_telemetry = t; o_digest = Net.run_digest t }
  in
  Net.shutdown net;
  o

(* always driven under E-CONGEST, so both primitives are exercised *)
let mixed_protocol net =
  let a = broadcast_phase net 10 in
  let b = edge_phase net 6 in
  Array.to_list a @ Array.to_list b

(* ------------------------------------------------------------------ *)
(* Unit tests *)

(* The pinned seed-implementation digests (test_determinism.ml) must
   come out of the sharded engine too: domains=4 is the same machine. *)

let pinned_er_graph () =
  let rng = Random.State.make [| 0xD16; 64 |] in
  Gen.erdos_renyi rng ~n:64 ~p:0.15

let test_pinned_broadcast_digest_sharded () =
  let net = Net.create ~domains:4 Congest.Model.V_congest (pinned_er_graph ()) in
  Alcotest.(check int) "effective domains" 4 (Net.domains net);
  let r =
    Net.replay_check net (fun net ->
        for r = 1 to 12 do
          ignore
            (Net.broadcast_round net (fun u ->
                 if (u + r) mod 3 = 0 then None
                 else Some [| u land 63; r land 63 |]))
        done;
        ignore
          (Congest.Primitives.flood_min net
             ~value:(fun v -> (v * 5) land 63)
             ~rounds:8))
  in
  Alcotest.(check bool) "deterministic" true (Net.deterministic r);
  Alcotest.(check string) "pinned digest" "1b2a4ab14466792"
    (Printf.sprintf "%x" (Net.run_digest r.Net.r_second));
  Net.shutdown net

let test_pinned_edge_digest_sharded () =
  let net = Net.create ~domains:4 Congest.Model.E_congest (pinned_er_graph ()) in
  let r =
    Net.replay_check net (fun net ->
        let g = Net.graph net in
        for r = 1 to 8 do
          ignore
            (Net.edge_round net (fun u ->
                 Array.to_list
                   (Array.map
                      (fun v -> (v, [| (u + v + r) land 63 |]))
                      (Graph.neighbors g u))))
        done)
  in
  Alcotest.(check bool) "deterministic" true (Net.deterministic r);
  Alcotest.(check string) "pinned digest" "3aaee12c3814a68"
    (Printf.sprintf "%x" (Net.run_digest r.Net.r_second));
  Net.shutdown net

let test_domains_clamped () =
  (* requests are clamped by node count; shutdown degrades to sequential
     but changes nothing observable *)
  let g = Gen.cycle 3 in
  let net = Net.create ~domains:64 Congest.Model.V_congest g in
  Alcotest.(check int) "clamped to n" 3 (Net.domains net);
  let a = broadcast_phase net 4 in
  let t_sharded = Net.telemetry net in
  Net.shutdown net;
  Alcotest.(check int) "sequential after shutdown" 1 (Net.domains net);
  Net.reset_stats net;
  let b = broadcast_phase net 4 in
  Alcotest.(check (list int)) "same result after shutdown" (Array.to_list a)
    (Array.to_list b);
  Alcotest.(check (list string)) "same telemetry after shutdown" []
    (Net.diff_telemetry t_sharded (Net.telemetry net));
  (* shutdown is idempotent *)
  Net.shutdown net

let test_violation_equivalence () =
  (* the sequential engine raises the violation of the highest offending
     sender (senders swept descending); the sharded merge must pick the
     same one even when offenders land in different shards *)
  let g = Gen.clique 24 in
  let probe domains =
    let net = Net.create ~domains Congest.Model.V_congest g in
    let r =
      try
        ignore
          (Net.broadcast_round net (fun u ->
               if u = 5 || u = 17 then Some (Array.make 99 0) else Some [| u |]));
        None
      with Net.Protocol_violation v -> Some v
    in
    Net.shutdown net;
    r
  in
  match (probe 1, probe 4) with
  | Some a, Some b ->
    Alcotest.(check (option int)) "offender is the highest sender" (Some 17)
      a.Net.v_node;
    Alcotest.(check string) "identical violations"
      (Format.asprintf "%a" Net.pp_violation a)
      (Format.asprintf "%a" Net.pp_violation b)
  | _ -> Alcotest.fail "expected both engines to raise"

let test_faults_fall_back_identically () =
  (* with an adversary installed the sharded net must take the
     sequential path — and therefore agree with domains=1 on every
     observable, including losses *)
  let g = Gen.harary ~k:4 ~n:24 in
  let faults () =
    Congest.Faults.create ~seed:11
      [ Congest.Faults.Drop_bernoulli 0.3; Congest.Faults.Crash_at [ (2, 7) ] ]
  in
  let proto net = Array.to_list (broadcast_phase net 8) in
  let a = run_outcome ~faults ~model:Congest.Model.V_congest ~domains:1 g proto in
  let b = run_outcome ~faults ~model:Congest.Model.V_congest ~domains:4 g proto in
  Alcotest.(check bool) "losses happened" true
    (a.o_telemetry.Net.t_messages_lost > 0);
  Alcotest.(check (list string)) "identical under faults" []
    (Net.diff_telemetry a.o_telemetry b.o_telemetry);
  Alcotest.(check (list int)) "identical results" a.o_result b.o_result

let test_faults_toggle_midrun () =
  (* installing faults mid-run flips a sharded net to the sequential
     engine for exactly those rounds; clearing them flips it back. The
     whole interleaving must equal the domains=1 run. *)
  let g = Gen.harary ~k:4 ~n:24 in
  let proto net =
    let a = broadcast_phase net 5 in
    let f =
      Congest.Faults.create ~seed:7 [ Congest.Faults.Drop_bernoulli 0.4 ]
    in
    Congest.Faults.install net f;
    let b = broadcast_phase net 5 in
    Net.clear_faults net;
    let c = broadcast_phase net 5 in
    Array.to_list a @ Array.to_list b @ Array.to_list c
  in
  let a = run_outcome ~model:Congest.Model.V_congest ~domains:1 g proto in
  let b = run_outcome ~model:Congest.Model.V_congest ~domains:4 g proto in
  Alcotest.(check bool) "middle phase lost traffic" true
    (a.o_telemetry.Net.t_messages_lost > 0);
  Alcotest.(check (list string)) "identical across the toggle" []
    (Net.diff_telemetry a.o_telemetry b.o_telemetry);
  Alcotest.(check (list int)) "identical results" a.o_result b.o_result

let test_barrier_rollback_sharded () =
  (* regression: barrier/rollback under sharding — the rewound state
     must let a re-executed region reproduce the straight-through run *)
  let g = Gen.harary ~k:4 ~n:20 in
  let straight =
    run_outcome ~model:Congest.Model.V_congest ~domains:1 g (fun net ->
        Array.to_list (broadcast_phase net 12))
  in
  let net = Net.create ~domains:4 Congest.Model.V_congest g in
  ignore (broadcast_phase net 12);
  let bar = Net.barrier net in
  ignore (broadcast_phase net 7);
  Alcotest.(check int) "poisoned region on the clock" 7
    (Net.discarded_since net bar);
  Net.rollback net bar;
  let t = Net.telemetry net in
  Net.shutdown net;
  Alcotest.(check (list string)) "rolled back to the straight-through state"
    []
    (Net.diff_telemetry straight.o_telemetry t)

let test_obs_counters_exact_under_sharding () =
  (* the per-shard registries must merge to the exact global counts the
     obs bundle then re-exports: counter == messages_sent, words too *)
  let g = Gen.harary ~k:6 ~n:32 in
  let metrics = Obs.Metrics.create () in
  let net = Net.create ~domains:4 Congest.Model.E_congest g in
  Net.attach_obs net (Net.make_obs metrics);
  ignore (broadcast_phase net 9);
  ignore (edge_phase net 6);
  let snap = Obs.Metrics.snapshot metrics in
  let counter name =
    match Obs.Metrics.find_counter snap name with Some v -> v | None -> -1
  in
  Alcotest.(check int) "rounds counter exact" (Net.rounds net)
    (counter "congest_rounds_total");
  Alcotest.(check int) "messages counter exact" (Net.messages_sent net)
    (counter "congest_messages_total");
  Alcotest.(check int) "words counter exact" (Net.words_sent net)
    (counter "congest_words_total");
  Alcotest.(check bool) "traffic flowed" true (Net.messages_sent net > 0);
  Net.shutdown net

let test_pool_clamps_nested_nets () =
  (* a net created inside an Exec.Pool task must clamp to sequential —
     outer parallelism wins — and still produce identical output *)
  let g = Gen.harary ~k:4 ~n:20 in
  let outside = run_outcome ~model:Congest.Model.V_congest ~domains:1 g
      (fun net -> Array.to_list (broadcast_phase net 6))
  in
  let widths = Array.make 2 (-1) in
  let report =
    Exec.Pool.run ~domains:2
      (Array.init 2 (fun i ->
           fun () ->
             let net = Net.create ~domains:4 Congest.Model.V_congest g in
             widths.(i) <- Net.domains net;
             let r = Array.to_list (broadcast_phase net 6) in
             let d = Net.run_digest (Net.telemetry net) in
             Net.shutdown net;
             (r, d)))
  in
  Array.iter
    (fun w -> Alcotest.(check int) "nested net is sequential" 1 w)
    widths;
  Array.iter
    (function
      | `Ok (r, d) ->
        Alcotest.(check (list int)) "nested result identical" outside.o_result r;
        Alcotest.(check string) "nested digest identical"
          (Printf.sprintf "%x" outside.o_digest)
          (Printf.sprintf "%x" d)
      | `Failed m -> Alcotest.failf "pool task failed: %s" m)
    report.Exec.Pool.results

let test_reset_stats_keeps_merge_exact () =
  (* reset_stats rebases the counters; the per-shard registries are
     cumulative, so post-reset sharded rounds must still merge exact
     per-round deltas (regression for the st_prev_* bookkeeping) *)
  let g = Gen.harary ~k:4 ~n:24 in
  let net = Net.create ~domains:4 Congest.Model.V_congest g in
  ignore (broadcast_phase net 5);
  Net.reset_stats net;
  ignore (broadcast_phase net 5);
  let after = (Net.messages_sent net, Net.words_sent net) in
  Net.shutdown net;
  let seq = Net.create Congest.Model.V_congest g in
  ignore (broadcast_phase seq 5);
  Net.reset_stats seq;
  ignore (broadcast_phase seq 5);
  Alcotest.(check (pair int int)) "post-reset counters exact"
    (Net.messages_sent seq, Net.words_sent seq)
    after

(* ------------------------------------------------------------------ *)
(* QCheck: domains=1 vs domains=4 byte-identity across families *)

let prop_family name ~count gen_graph =
  QCheck.Test.make ~name ~count
    QCheck.(int_range 0 999)
    (fun seed ->
      match gen_graph seed with
      | None -> QCheck.assume_fail ()
      | Some g ->
        let a =
          run_outcome ~model:Congest.Model.E_congest ~domains:1 g
            mixed_protocol
        in
        let b =
          run_outcome ~model:Congest.Model.E_congest ~domains:4 g
            mixed_protocol
        in
        a.o_result = b.o_result && a.o_digest = b.o_digest
        && Net.diff_telemetry a.o_telemetry b.o_telemetry = [])

let prop_erdos_renyi =
  prop_family "shard identity on Erdos-Renyi" ~count:8 (fun seed ->
      let rng = Random.State.make [| seed; 31 |] in
      let n = 20 + (seed mod 30) in
      let g = Gen.erdos_renyi rng ~n ~p:0.25 in
      if Traversal.is_connected g then Some g else None)

let prop_random_regular =
  prop_family "shard identity on random-regular" ~count:8 (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let n = 2 * (8 + (seed mod 12)) in
      let g = Gen.random_regular rng ~n ~d:4 in
      if Traversal.is_connected g then Some g else None)

let prop_lollipop =
  prop_family "shard identity on lollipop" ~count:8 (fun seed ->
      Some (Gen.lollipop ~clique:(5 + (seed mod 8)) ~tail:(1 + (seed mod 9))))

let prop_under_adversary =
  QCheck.Test.make ~name:"shard identity under fault adversaries" ~count:8
    QCheck.(pair (int_range 0 999) (int_range 0 2))
    (fun (seed, which) ->
      let rng = Random.State.make [| seed; 13 |] in
      let g = Gen.erdos_renyi rng ~n:24 ~p:0.3 in
      QCheck.assume (Traversal.is_connected g);
      let specs =
        match which with
        | 0 -> [ Congest.Faults.Drop_bernoulli 0.25 ]
        | 1 -> [ Congest.Faults.Crash_at [ (1, seed mod 24); (3, (seed / 7) mod 24) ] ]
        | _ ->
          [ Congest.Faults.Drop_bernoulli 0.1;
            Congest.Faults.Crash_storm
              { from_round = 2; per_round = 1; storm_rounds = 3; universe = 24 } ]
      in
      let faults () = Congest.Faults.create ~seed specs in
      let proto net = Array.to_list (broadcast_phase net 8) in
      let a =
        run_outcome ~faults ~model:Congest.Model.V_congest ~domains:1 g proto
      in
      let b =
        run_outcome ~faults ~model:Congest.Model.V_congest ~domains:4 g proto
      in
      a.o_result = b.o_result && a.o_digest = b.o_digest
      && Net.diff_telemetry a.o_telemetry b.o_telemetry = [])

let () =
  Alcotest.run "shard"
    [
      ( "pinned",
        [
          Alcotest.test_case "broadcast digest at domains=4" `Quick
            test_pinned_broadcast_digest_sharded;
          Alcotest.test_case "edge digest at domains=4" `Quick
            test_pinned_edge_digest_sharded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "domains clamp and shutdown" `Quick
            test_domains_clamped;
          Alcotest.test_case "violation picks the highest sender" `Quick
            test_violation_equivalence;
          Alcotest.test_case "faults fall back identically" `Quick
            test_faults_fall_back_identically;
          Alcotest.test_case "faults toggling mid-run" `Quick
            test_faults_toggle_midrun;
          Alcotest.test_case "barrier/rollback under sharding" `Quick
            test_barrier_rollback_sharded;
          Alcotest.test_case "reset_stats keeps merge exact" `Quick
            test_reset_stats_keeps_merge_exact;
        ] );
      ( "composition",
        [
          Alcotest.test_case "obs counters exact under sharding" `Quick
            test_obs_counters_exact_under_sharding;
          Alcotest.test_case "pool clamps nested nets" `Quick
            test_pool_clamps_nested_nets;
        ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_erdos_renyi; prop_random_regular; prop_lollipop;
            prop_under_adversary;
          ] );
    ]
