(* Tests for the graph substrate: structure, traversal, MST, max-flow,
   exact connectivity, generators, domination, sampling. *)

open Graphs

let rng () = Random.State.make [| 0xC0FFEE |]

(* ------------------------------------------------------------------ *)
(* Union-find *)

let test_uf_basic () =
  let uf = Union_find.create 10 in
  Alcotest.(check int) "initial count" 10 (Union_find.count uf);
  Alcotest.(check bool) "union 0 1" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union again" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "count after union" 9 (Union_find.count uf);
  Alcotest.(check int) "set size" 2 (Union_find.set_size uf 1)

let test_uf_groups () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 3 4);
  let groups = Union_find.groups uf in
  let sizes =
    List.map (fun (_, ms) -> List.length ms) groups |> List.sort compare
  in
  Alcotest.(check (list int)) "group sizes" [ 1; 2; 3 ] sizes;
  Alcotest.(check int) "still 3 groups" 3 (List.length groups)

let test_uf_copy_independent () =
  let uf = Union_find.create 4 in
  let uf' = Union_find.copy uf in
  ignore (Union_find.union uf 0 1);
  Alcotest.(check bool) "copy unaffected" false (Union_find.same uf' 0 1)

let prop_uf_transitive =
  QCheck.Test.make ~name:"union-find equivalence is transitive" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* transitivity spot check over all triples *)
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          for c = 0 to 19 do
            if Union_find.same uf a b && Union_find.same uf b c then
              if not (Union_find.same uf a c) then ok := false
          done
        done
      done;
      !ok)

let prop_uf_count =
  QCheck.Test.make ~name:"union-find count equals distinct components"
    ~count:100
    QCheck.(list (pair (int_bound 14) (int_bound 14)))
    (fun pairs ->
      let uf = Union_find.create 15 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      let reps = Hashtbl.create 16 in
      for x = 0 to 14 do
        Hashtbl.replace reps (Union_find.find uf x) ()
      done;
      Hashtbl.length reps = Union_find.count uf)

(* ------------------------------------------------------------------ *)
(* Graph structure *)

let test_graph_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 0); (1, 2) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m dedups" 3 (Graph.m g);
  Alcotest.(check bool) "edge" true (Graph.mem_edge g 0 2);
  Alcotest.(check bool) "edge sym" true (Graph.mem_edge g 2 0);
  Alcotest.(check bool) "no edge" false (Graph.mem_edge g 0 3);
  Alcotest.(check int) "deg" 2 (Graph.degree g 1);
  Alcotest.(check int) "isolated deg" 0 (Graph.degree g 3)

let test_graph_rejects () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph: self-loop")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 3) ]))

let test_graph_induced () =
  let g = Gen.cycle 6 in
  let sub, mapping = Graph.induced g (fun v -> v < 4) in
  Alcotest.(check int) "induced n" 4 (Graph.n sub);
  Alcotest.(check int) "induced m" 3 (Graph.m sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2; 3 |] mapping

let test_graph_edge_index () =
  let g = Gen.cycle 5 in
  Graph.iter_edges
    (fun u v ->
      let i = Graph.edge_index g u v in
      Alcotest.(check (pair int int)) "edge_index roundtrip" (u, v)
        (Graph.edges g).(i))
    g

let test_spanning_subgraph () =
  let g = Gen.clique 5 in
  let sub = Graph.spanning_subgraph g (fun u v -> (u + v) mod 2 = 1) in
  Alcotest.(check int) "same vertex set" 5 (Graph.n sub);
  Graph.iter_edges
    (fun u v ->
      Alcotest.(check bool) "kept edges satisfy pred" true ((u + v) mod 2 = 1))
    sub

(* ------------------------------------------------------------------ *)
(* CSR vs reference model: the CSR core must agree, query by query,
   with a naive tuple-list implementation of the same contract —
   canonical (min,max) edges, first-class lex order, sorted neighbor
   lists. Random multigraph-ish input (duplicates, both orientations)
   exercises the dedup path too. *)

module Tuple_model = struct
  type t = { n : int; edges : (int * int) list }
      (* canonical, lex-sorted, deduped *)

  let lex (a, b) (c, d) = if a <> c then Int.compare a c else Int.compare b d

  let build ~n pairs =
    let canon = List.map (fun (u, v) -> (min u v, max u v)) pairs in
    { n; edges = List.sort_uniq lex canon }

  let neighbors t u =
    List.filter_map
      (fun (a, b) ->
        if a = u then Some b else if b = u then Some a else None)
      t.edges
    |> List.sort Int.compare

  let mem_edge t u v = List.mem (min u v, max u v) t.edges

  let edge_index t u v =
    let e = (min u v, max u v) in
    let rec go i = function
      | [] -> raise Not_found
      | x :: tl -> if x = e then i else go (i + 1) tl
    in
    go 0 t.edges
end

(* (n, raw pair list) -> simple-graph edge list over [0..n-1] *)
let mk_pairs n raw =
  List.filter_map
    (fun (a, b) ->
      let u = a mod n and v = b mod n in
      if u = v then None else Some (u, v))
    raw

let graph_model_gen =
  QCheck.(pair (int_range 2 24) (list (pair (int_bound 127) (int_bound 127))))

let prop_csr_matches_model_queries =
  QCheck.Test.make ~name:"CSR graph = tuple model (neighbors/mem/index)"
    ~count:200 graph_model_gen (fun (n, raw) ->
      let pairs = mk_pairs n raw in
      let g = Graph.of_edges ~n pairs in
      let m = Tuple_model.build ~n pairs in
      List.length m.Tuple_model.edges = Graph.m g
      && Array.to_list (Graph.edges g) = m.Tuple_model.edges
      && List.for_all
           (fun u ->
             Array.to_list (Graph.neighbors g u) = Tuple_model.neighbors m u
             && Graph.degree g u = List.length (Tuple_model.neighbors m u)
             && List.for_all
                  (fun v ->
                    Graph.mem_edge g u v = Tuple_model.mem_edge m u v
                    && (match Graph.edge_index g u v with
                       | i -> (
                         match Tuple_model.edge_index m u v with
                         | j -> i = j
                         | exception Not_found -> false)
                       | exception Not_found -> (
                         match Tuple_model.edge_index m u v with
                         | _ -> false
                         | exception Not_found -> true)))
                  (List.init n Fun.id))
           (List.init n Fun.id))

let prop_csr_slots_consistent =
  QCheck.Test.make ~name:"CSR slot table = neighbors + edge_index"
    ~count:200 graph_model_gen (fun (n, raw) ->
      let g = Graph.of_edges ~n (mk_pairs n raw) in
      let off = Graph.csr_offsets g
      and adj = Graph.csr_neighbors g
      and ids = Graph.csr_edge_ids g in
      Array.length off = n + 1
      && off.(n) = 2 * Graph.m g
      && Array.length adj = 2 * Graph.m g
      && Array.length ids = 2 * Graph.m g
      && List.for_all
           (fun u ->
             let seen = ref [] in
             Graph.iter_incident g u (fun v ei ->
                 seen := (v, ei) :: !seen);
             List.rev !seen
             = List.map
                 (fun v -> (v, Graph.edge_index g u v))
                 (Array.to_list (Graph.neighbors g u)))
           (List.init n Fun.id))

let prop_induced_matches_model =
  QCheck.Test.make ~name:"induced subgraph = relabeled model filter"
    ~count:200
    QCheck.(pair graph_model_gen (int_bound ((1 lsl 24) - 1)))
    (fun ((n, raw), mask) ->
      let pairs = mk_pairs n raw in
      let g = Graph.of_edges ~n pairs in
      let m = Tuple_model.build ~n pairs in
      let keep v = (mask lsr (v mod 24)) land 1 = 1 in
      let gi, mapping = Graph.induced g keep in
      let kept = List.filter keep (List.init n Fun.id) in
      let rank = List.mapi (fun i v -> (v, i)) kept in
      let expected =
        List.filter_map
          (fun (u, v) ->
            if keep u && keep v then
              Some (List.assoc u rank, List.assoc v rank)
            else None)
          m.Tuple_model.edges
        |> List.sort_uniq Tuple_model.lex
      in
      Graph.n gi = List.length kept
      && Array.to_list mapping = kept
      && Array.to_list (Graph.edges gi) = expected)

let prop_spanning_subgraph_matches_model =
  QCheck.Test.make ~name:"spanning_subgraph = model filter" ~count:200
    QCheck.(pair graph_model_gen (int_bound 97))
    (fun ((n, raw), salt) ->
      let pairs = mk_pairs n raw in
      let g = Graph.of_edges ~n pairs in
      let m = Tuple_model.build ~n pairs in
      let pred u v = (u + (2 * v) + salt) mod 3 <> 0 in
      let sub = Graph.spanning_subgraph g pred in
      let expected =
        List.filter (fun (u, v) -> pred u v) m.Tuple_model.edges
      in
      Graph.n sub = n && Array.to_list (Graph.edges sub) = expected)

(* ------------------------------------------------------------------ *)
(* Traversal *)

let test_bfs_path () =
  let g = Gen.path 5 in
  let dist = Traversal.bfs g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] dist

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let dist = Traversal.bfs g 0 in
  Alcotest.(check int) "unreachable" (-1) dist.(3)

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
  let count, label = Traversal.components g in
  Alcotest.(check int) "count" 3 count;
  Alcotest.(check bool) "same comp" true (label.(2) = label.(4));
  Alcotest.(check bool) "diff comp" true (label.(0) <> label.(2))

let test_diameter () =
  Alcotest.(check int) "path diameter" 7 (Traversal.diameter (Gen.path 8));
  Alcotest.(check int) "cycle diameter" 4 (Traversal.diameter (Gen.cycle 8));
  Alcotest.(check int) "clique diameter" 1 (Traversal.diameter (Gen.clique 8))

let test_diameter_2approx () =
  let g = Gen.grid 4 7 in
  let d = Traversal.diameter g in
  let est = Traversal.diameter_2approx g in
  Alcotest.(check bool) "within factor 2" true (est <= d && d <= 2 * est)

let prop_diameter_2approx =
  QCheck.Test.make ~name:"double-sweep is a 2-approximation of diameter"
    ~count:50
    QCheck.(pair (int_range 4 30) (int_range 0 40))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let d = Traversal.diameter g in
      let est = Traversal.diameter_2approx g in
      est <= d && d <= 2 * est)

(* ------------------------------------------------------------------ *)
(* MST *)

let test_kruskal_simple () =
  let edges =
    [
      { Mst.u = 0; v = 1; w = 1. };
      { Mst.u = 1; v = 2; w = 2. };
      { Mst.u = 2; v = 0; w = 3. };
    ]
  in
  let forest = Mst.kruskal ~n:3 edges in
  Alcotest.(check int) "two edges" 2 (List.length forest);
  Alcotest.(check (float 1e-9)) "weight" 3. (Mst.total_weight forest)

let test_prim_matches_kruskal () =
  let g = Gen.random_connected (rng ()) ~n:30 ~extra:40 in
  let weight u v = float_of_int (((u * 7919) + (v * 104729)) mod 1000) in
  let sym_weight u v = weight (min u v) (max u v) in
  let kr =
    Mst.kruskal ~n:(Graph.n g)
      (Graph.fold_edges
         (fun acc u v -> { Mst.u; v; w = sym_weight u v } :: acc)
         [] g)
  in
  let pr = Mst.minimum_spanning_tree g ~weight:sym_weight in
  let kr_weight = Mst.total_weight kr in
  let pr_weight =
    List.fold_left (fun acc (u, v) -> acc +. sym_weight u v) 0. pr
  in
  Alcotest.(check (float 1e-6)) "same weight" kr_weight pr_weight;
  Alcotest.(check bool) "prim result is spanning tree" true
    (Mst.is_spanning_tree ~n:(Graph.n g) pr)

let prop_mst_weight_invariant =
  QCheck.Test.make ~name:"prim weight = kruskal weight on random graphs"
    ~count:40
    QCheck.(pair (int_range 4 25) (int_range 0 30))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let sym_weight u v =
        let u, v = (min u v, max u v) in
        float_of_int (((u * 31) + (v * 17)) mod 97)
      in
      let kr =
        Mst.kruskal ~n
          (Graph.fold_edges
             (fun acc u v -> { Mst.u; v; w = sym_weight u v } :: acc)
             [] g)
      in
      let pr = Mst.minimum_spanning_tree g ~weight:sym_weight in
      let pw = List.fold_left (fun a (u, v) -> a +. sym_weight u v) 0. pr in
      abs_float (Mst.total_weight kr -. pw) < 1e-6)

let test_is_spanning_tree () =
  Alcotest.(check bool) "path is tree" true
    (Mst.is_spanning_tree ~n:4 [ (0, 1); (1, 2); (2, 3) ]);
  Alcotest.(check bool) "cycle is not" false
    (Mst.is_spanning_tree ~n:3 [ (0, 1); (1, 2); (2, 0) ]);
  Alcotest.(check bool) "disconnected is not" false
    (Mst.is_spanning_tree ~n:4 [ (0, 1); (2, 3); (0, 1) ])

(* ------------------------------------------------------------------ *)
(* Max-flow *)

let test_maxflow_simple () =
  let net = Maxflow.create 4 in
  Maxflow.add_edge net 0 1 3;
  Maxflow.add_edge net 0 2 2;
  Maxflow.add_edge net 1 3 2;
  Maxflow.add_edge net 2 3 3;
  Maxflow.add_edge net 1 2 5;
  Alcotest.(check int) "flow value" 5 (Maxflow.max_flow net ~src:0 ~sink:3)

let test_maxflow_min_cut () =
  let net = Maxflow.create 4 in
  Maxflow.add_edge net 0 1 1;
  Maxflow.add_edge net 1 2 1;
  Maxflow.add_edge net 2 3 1;
  let f = Maxflow.max_flow net ~src:0 ~sink:3 in
  Alcotest.(check int) "flow" 1 f;
  let side = Maxflow.min_cut_side net ~src:0 in
  Alcotest.(check bool) "src in side" true side.(0);
  Alcotest.(check bool) "sink not in side" false side.(3)

let test_edge_connectivity_pair () =
  let g = Gen.cycle 6 in
  Alcotest.(check int) "cycle pair" 2 (Maxflow.edge_connectivity_pair g 0 3);
  let g = Gen.clique 5 in
  Alcotest.(check int) "clique pair" 4 (Maxflow.edge_connectivity_pair g 0 3)

let test_vertex_connectivity_pair () =
  let g = Gen.cycle 6 in
  Alcotest.(check int) "cycle vpair" 2 (Maxflow.vertex_connectivity_pair g 0 3);
  let g = Gen.hypercube 3 in
  Alcotest.(check int) "cube vpair" 3 (Maxflow.vertex_connectivity_pair g 0 7)

let check_paths_internally_disjoint u v paths =
  (* internal vertices pairwise disjoint, endpoints correct *)
  let internals = List.map (fun p -> List.filter (fun x -> x <> u && x <> v) p) paths in
  let all = List.concat internals in
  let dedup = List.sort_uniq compare all in
  List.length all = List.length dedup
  && List.for_all
       (fun p -> List.hd p = u && List.nth p (List.length p - 1) = v)
       paths

let test_vertex_disjoint_paths () =
  let g = Gen.hypercube 3 in
  let paths = Maxflow.vertex_disjoint_paths g 0 7 in
  Alcotest.(check int) "three paths" 3 (List.length paths);
  Alcotest.(check bool) "disjoint" true
    (check_paths_internally_disjoint 0 7 paths);
  List.iter
    (fun p ->
      let rec edges_ok = function
        | a :: (b :: _ as rest) -> Graph.mem_edge g a b && edges_ok rest
        | _ -> true
      in
      Alcotest.(check bool) "path uses real edges" true (edges_ok p))
    paths

let prop_flow_equals_menger =
  QCheck.Test.make
    ~name:"vertex flow value = number of extracted disjoint paths" ~count:30
    QCheck.(int_range 4 24)
    (fun n ->
      let g = Gen.random_k_connected (rng ()) ~n ~k:(min 3 (n - 1)) ~extra:n in
      (* pick a non-adjacent pair if one exists *)
      let pair = ref None in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if !pair = None && not (Graph.mem_edge g u v) then pair := Some (u, v)
        done
      done;
      match !pair with
      | None -> true
      | Some (u, v) ->
        let f = Maxflow.vertex_connectivity_pair g u v in
        let paths = Maxflow.vertex_disjoint_paths g u v in
        f = List.length paths && check_paths_internally_disjoint u v paths)

(* ------------------------------------------------------------------ *)
(* Exact connectivity *)

let test_edge_connectivity_families () =
  Alcotest.(check int) "path" 1 (Connectivity.edge_connectivity (Gen.path 6));
  Alcotest.(check int) "cycle" 2 (Connectivity.edge_connectivity (Gen.cycle 6));
  Alcotest.(check int) "clique" 5
    (Connectivity.edge_connectivity (Gen.clique 6));
  Alcotest.(check int) "cube" 3
    (Connectivity.edge_connectivity (Gen.hypercube 3));
  Alcotest.(check int) "bridged" 3
    (Connectivity.edge_connectivity (Gen.two_cliques_bridged ~size:5 ~bridges:3));
  Alcotest.(check int) "disconnected" 0
    (Connectivity.edge_connectivity (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]))

let test_vertex_connectivity_families () =
  Alcotest.(check int) "path" 1
    (Connectivity.vertex_connectivity (Gen.path 6));
  Alcotest.(check int) "cycle" 2
    (Connectivity.vertex_connectivity (Gen.cycle 6));
  Alcotest.(check int) "clique" 5
    (Connectivity.vertex_connectivity (Gen.clique 6));
  Alcotest.(check int) "cube" 3
    (Connectivity.vertex_connectivity (Gen.hypercube 3));
  Alcotest.(check int) "complete bipartite" 3
    (Connectivity.vertex_connectivity (Gen.complete_bipartite 3 5));
  Alcotest.(check int) "clique path" 4
    (Connectivity.vertex_connectivity (Gen.clique_path ~k:4 ~len:4))

let test_min_vertex_cut () =
  let g = Gen.two_cliques_bridged ~size:5 ~bridges:2 in
  (* vertex connectivity is 2: removing the two bridge endpoints on one
     side disconnects *)
  match Connectivity.min_vertex_cut g with
  | None -> Alcotest.fail "expected a cut"
  | Some cut ->
    Alcotest.(check int) "cut size" 2 (List.length cut);
    let in_cut = fun v -> List.mem v cut in
    let sub, _ = Graph.induced g (fun v -> not (in_cut v)) in
    Alcotest.(check bool) "removal disconnects" false
      (Traversal.is_connected sub)

let test_all_min_vertex_cuts () =
  (* cycle of 5: every non-adjacent pair is a minimum cut: 5 cuts *)
  let cuts = Connectivity.all_min_vertex_cuts (Gen.cycle 5) in
  Alcotest.(check int) "cycle cuts" 5 (List.length cuts);
  List.iter
    (fun cut -> Alcotest.(check int) "cut size 2" 2 (List.length cut))
    cuts;
  (* clique path k=3 len=3: each junction matching is a cut *)
  let g = Gen.clique_path ~k:3 ~len:3 in
  let cuts = Connectivity.all_min_vertex_cuts g in
  Alcotest.(check bool) "several minimum cuts" true (List.length cuts >= 2);
  (* every enumerated cut really separates *)
  List.iter
    (fun cut ->
      let sub, _ = Graph.induced g (fun v -> not (List.mem v cut)) in
      Alcotest.(check bool) "separates" false (Traversal.is_connected sub))
    cuts;
  Alcotest.(check (list (list int))) "complete graph: none" []
    (Connectivity.all_min_vertex_cuts (Gen.clique 6))

let test_is_k_vertex_connected () =
  let g = Gen.hypercube 4 in
  Alcotest.(check bool) "4-cube is 4-connected" true
    (Connectivity.is_k_vertex_connected g 4);
  Alcotest.(check bool) "4-cube is not 5-connected" false
    (Connectivity.is_k_vertex_connected g 5)

let prop_harary_connectivity =
  QCheck.Test.make ~name:"harary graph has connectivity exactly k" ~count:30
    QCheck.(pair (int_range 2 6) (int_range 8 20))
    (fun (k, n) ->
      QCheck.assume (k < n);
      let g = Gen.harary ~k ~n in
      Connectivity.vertex_connectivity g = k
      && Connectivity.edge_connectivity g = k)

let prop_vertex_le_edge_le_mindeg =
  QCheck.Test.make ~name:"k <= lambda <= min degree (Whitney)" ~count:50
    QCheck.(pair (int_range 4 20) (int_range 0 30))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let k = Connectivity.vertex_connectivity g in
      let lambda = Connectivity.edge_connectivity g in
      k <= lambda && lambda <= Graph.min_degree g)

let prop_menger_count =
  QCheck.Test.make
    ~name:"Menger: #disjoint paths >= vertex connectivity (non-adjacent pair)"
    ~count:20
    QCheck.(int_range 6 16)
    (fun n ->
      let g = Gen.harary ~k:3 ~n in
      let k = Connectivity.vertex_connectivity g in
      let pair = ref None in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if !pair = None && not (Graph.mem_edge g u v) then pair := Some (u, v)
        done
      done;
      match !pair with
      | None -> true
      | Some (u, v) ->
        List.length (Connectivity.menger_vertex_paths g u v) >= k)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_gen_shapes () =
  Alcotest.(check int) "clique m" 10 (Graph.m (Gen.clique 5));
  Alcotest.(check int) "cycle m" 7 (Graph.m (Gen.cycle 7));
  Alcotest.(check int) "grid n" 12 (Graph.n (Gen.grid 3 4));
  Alcotest.(check int) "hypercube m" 32 (Graph.m (Gen.hypercube 4));
  Alcotest.(check int) "bipartite m" 12 (Graph.m (Gen.complete_bipartite 3 4));
  Alcotest.(check int) "torus 4-regular" (2 * 9) (Graph.m (Gen.torus 3 3))

let test_harary_odd_odd () =
  (* the trickiest Harary case: odd k, odd n *)
  let g = Gen.harary ~k:3 ~n:9 in
  Alcotest.(check int) "connectivity" 3 (Connectivity.vertex_connectivity g)

let test_star_of_cliques () =
  let g = Gen.star_of_cliques ~k:4 ~extra:10 in
  Alcotest.(check int) "n" 15 (Graph.n g);
  Alcotest.(check int) "hub degree" 4 (Graph.degree g 0);
  (* every leaf is at distance 2 from the hub *)
  let dist = Traversal.bfs g 0 in
  for v = 5 to 14 do
    Alcotest.(check int) "leaf at distance 2" 2 dist.(v)
  done

let test_cds_counterexample () =
  let g = Gen.cds_vs_independent_trees ~t:5 in
  Alcotest.(check int) "vertex connectivity 3" 3
    (Connectivity.vertex_connectivity g)

(* Footnote 3's separating claim, checked exhaustively. In this family a
   CDS must contain, besides clique vertices, every triple-node whose
   three clique neighbors it misses — and such forced triple-nodes are
   isolated in the induced subgraph (triple-nodes are pairwise
   non-adjacent and only touch their own clique vertices). Hence each of
   two disjoint CDSs needs >= t-2 clique vertices, so two of them exist
   iff 2(t-2) <= t, i.e. t <= 4. We therefore enumerate the clique-side
   choices (3^t options) and complete each side with its forced
   triple-nodes, validating with the library predicates. *)
let two_disjoint_cds_exist t =
  let g = Gen.cds_vs_independent_trees ~t in
  let n = Graph.n g in
  let assignment = Array.make t 0 in
  let found = ref false in
  let completed side =
    (* side's clique choice, plus every triple-node it fails to touch *)
    let member = Array.make n false in
    for c = 0 to t - 1 do
      if assignment.(c) = side then member.(c) <- true
    done;
    for y = t to n - 1 do
      let touched =
        Array.exists (fun c -> c < t && member.(c)) (Graph.neighbors g y)
      in
      if not touched then member.(y) <- true
    done;
    member
  in
  let rec enumerate v =
    if !found then ()
    else if v = t then begin
      let a = completed 1 and b = completed 2 in
      let disjoint =
        Array.for_all (fun ok -> ok)
          (Array.init n (fun x -> not (a.(x) && b.(x))))
      in
      if
        disjoint
        && Domination.is_connected_dominating g (fun x -> a.(x))
        && Domination.is_connected_dominating g (fun x -> b.(x))
      then found := true
    end
    else
      for c = 0 to 2 do
        assignment.(v) <- c;
        enumerate (v + 1)
      done
  in
  enumerate 0;
  !found

let test_no_two_disjoint_cds () =
  Alcotest.(check bool) "t=4 is the threshold: two disjoint CDSs exist" true
    (two_disjoint_cds_exist 4);
  Alcotest.(check bool) "t=5: no two disjoint CDSs (footnote 3)" false
    (two_disjoint_cds_exist 5);
  Alcotest.(check bool) "t=6: no two disjoint CDSs" false
    (two_disjoint_cds_exist 6)

let test_sparsified_lambda () =
  List.iter
    (fun (g, expect) ->
      Alcotest.(check int) "sparsified = exact" expect
        (Connectivity.edge_connectivity_sparsified g))
    [
      (Gen.harary ~k:6 ~n:24, 6);
      (Gen.clique 12, 11);
      (Gen.two_cliques_bridged ~size:8 ~bridges:3, 3);
      (Gen.path 8, 1);
    ]

let test_random_regular () =
  let g = Gen.random_regular (rng ()) ~n:24 ~d:4 in
  for v = 0 to 23 do
    Alcotest.(check int) "4-regular" 4 (Graph.degree g v)
  done;
  Alcotest.(check int) "m = nd/2" 48 (Graph.m g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let prop_random_regular_degrees =
  QCheck.Test.make ~name:"configuration model always yields d-regular"
    ~count:20
    QCheck.(pair (int_range 6 20) (int_range 2 4))
    (fun (half_n, d) ->
      let n = 2 * half_n in
      QCheck.assume (d < n);
      let g = Gen.random_regular (rng ()) ~n ~d in
      let ok = ref true in
      Graph.iter_vertices (fun v -> if Graph.degree g v <> d then ok := false) g;
      !ok)

let test_random_tree_is_tree () =
  let g = Gen.random_tree (rng ()) ~n:40 in
  Alcotest.(check int) "m = n - 1" 39 (Graph.m g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let prop_random_k_connected =
  QCheck.Test.make ~name:"random_k_connected has connectivity >= k" ~count:20
    QCheck.(pair (int_range 2 5) (int_range 10 20))
    (fun (k, n) ->
      QCheck.assume (k < n);
      let g = Gen.random_k_connected (rng ()) ~n ~k ~extra:5 in
      Connectivity.is_k_vertex_connected g k)

(* ------------------------------------------------------------------ *)
(* Domination *)

let test_domination_predicates () =
  let g = Gen.star_of_cliques ~k:3 ~extra:6 in
  (* clique vertices 1..3 dominate: hub adjacent, leaves attached *)
  let member v = v >= 1 && v <= 3 in
  Alcotest.(check bool) "clique dominates" true (Domination.is_dominating g member);
  Alcotest.(check bool) "clique is CDS" true
    (Domination.is_connected_dominating g member);
  Alcotest.(check bool) "hub alone does not dominate" false
    (Domination.is_dominating g (fun v -> v = 0));
  Alcotest.(check (list int)) "undominated" []
    (Domination.undominated g member)

let test_dominating_tree_check () =
  let g = Gen.cycle 5 in
  Alcotest.(check bool) "path in cycle dominates" true
    (Domination.is_dominating_tree g [ 0; 1; 2 ] [ (0, 1); (1, 2) ]);
  Alcotest.(check bool) "cycle is not a tree" false
    (Domination.is_dominating_tree g [ 0; 1; 2; 3; 4 ]
       [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]);
  Alcotest.(check bool) "non-dominating rejected" false
    (Domination.is_dominating_tree (Gen.path 7) [ 0; 1 ] [ (0, 1) ])

let test_greedy_cds () =
  let g = Gen.grid 4 5 in
  let cds = Domination.greedy_cds g in
  let member v = List.mem v cds in
  Alcotest.(check bool) "greedy result is a CDS" true
    (Domination.is_connected_dominating g member)

let test_greedy_cds_within () =
  let g = Gen.harary ~k:16 ~n:32 in
  (* even vertices only: dense enough to dominate and stitch *)
  match Domination.greedy_cds_within g ~allowed:(fun v -> v mod 2 = 0) with
  | None -> Alcotest.fail "expected a restricted CDS"
  | Some members ->
    List.iter
      (fun v -> Alcotest.(check int) "members allowed" 0 (v mod 2))
      members;
    Alcotest.(check bool) "dominates the whole graph" true
      (Domination.is_connected_dominating g (fun v -> List.mem v members))

let test_greedy_cds_within_infeasible () =
  let g = Gen.path 9 in
  (* allowed = {0}: cannot dominate the far end *)
  Alcotest.(check bool) "infeasible returns None" true
    (Domination.greedy_cds_within g ~allowed:(fun v -> v = 0) = None)

let prop_greedy_cds_within_sound =
  QCheck.Test.make
    ~name:"restricted CDS, when found, dominates and is connected" ~count:25
    QCheck.(pair (int_range 8 24) (int_range 2 4))
    (fun (n, modulus) ->
      let g = Gen.harary ~k:(min (n - 1) 8) ~n in
      let allowed v = v mod modulus <> 1 in
      match Domination.greedy_cds_within g ~allowed with
      | None -> true
      | Some members ->
        List.for_all allowed members
        && Domination.is_connected_dominating g (fun v -> List.mem v members))

let test_minimum_cds_exact () =
  (* star: center alone is the minimum CDS *)
  Alcotest.(check int) "star" 1
    (Domination.minimum_cds_size (Gen.complete_bipartite 1 6));
  (* path of 5: the 3 inner vertices *)
  Alcotest.(check int) "path" 3 (Domination.minimum_cds_size (Gen.path 5));
  (* cycle of 6: 4 consecutive vertices needed *)
  Alcotest.(check int) "cycle" 4 (Domination.minimum_cds_size (Gen.cycle 6));
  Alcotest.(check int) "clique" 1 (Domination.minimum_cds_size (Gen.clique 5))

let prop_greedy_vs_optimum =
  QCheck.Test.make
    ~name:"greedy CDS is within a log-factor of the optimum" ~count:15
    QCheck.(pair (int_range 4 12) (int_range 0 12))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let greedy = List.length (Domination.greedy_cds g) in
      let opt = Domination.minimum_cds_size g in
      greedy >= opt && float_of_int greedy <= 4.0 *. log (float_of_int (n + 2)) *. float_of_int opt)

let prop_greedy_cds_valid =
  QCheck.Test.make ~name:"greedy CDS is always a valid CDS" ~count:30
    QCheck.(pair (int_range 3 25) (int_range 0 30))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let cds = Domination.greedy_cds g in
      Domination.is_connected_dominating g (fun v -> List.mem v cds))

(* ------------------------------------------------------------------ *)
(* Biconnectivity *)

let test_articulation_basic () =
  (* two triangles sharing vertex 2 *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ] in
  Alcotest.(check (list int)) "cut vertex" [ 2 ]
    (Biconnectivity.articulation_points g);
  Alcotest.(check (list (pair int int))) "no bridges" []
    (Biconnectivity.bridges g);
  Alcotest.(check int) "two blocks" 2
    (List.length (Biconnectivity.biconnected_components g))

let test_bridges_path () =
  let g = Gen.path 5 in
  Alcotest.(check int) "all edges are bridges" 4
    (List.length (Biconnectivity.bridges g));
  Alcotest.(check (list int)) "inner vertices cut" [ 1; 2; 3 ]
    (Biconnectivity.articulation_points g)

let test_biconnected_families () =
  Alcotest.(check bool) "cycle" true (Biconnectivity.is_biconnected (Gen.cycle 6));
  Alcotest.(check bool) "clique" true (Biconnectivity.is_biconnected (Gen.clique 5));
  Alcotest.(check bool) "path" false (Biconnectivity.is_biconnected (Gen.path 5));
  Alcotest.(check bool) "tiny" false (Biconnectivity.is_biconnected (Gen.path 2))

let prop_articulation_iff_k1 =
  QCheck.Test.make
    ~name:"articulation point exists iff vertex connectivity = 1" ~count:40
    QCheck.(pair (int_range 4 20) (int_range 0 25))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let has_cut_vertex = Biconnectivity.articulation_points g <> [] in
      let k = Connectivity.vertex_connectivity g in
      (k = 1) = has_cut_vertex || n <= 2)

let prop_bridge_iff_lambda1 =
  QCheck.Test.make ~name:"bridge exists iff edge connectivity = 1" ~count:40
    QCheck.(pair (int_range 4 20) (int_range 0 25))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      (Connectivity.edge_connectivity g = 1) = (Biconnectivity.bridges g <> []))

let prop_blocks_partition_edges =
  QCheck.Test.make
    ~name:"biconnected components partition the edge set" ~count:40
    QCheck.(pair (int_range 3 20) (int_range 0 25))
    (fun (n, extra) ->
      let g = Gen.random_connected (rng ()) ~n ~extra in
      let blocks = Biconnectivity.biconnected_components g in
      let all = List.concat blocks |> List.sort compare in
      let expected =
        Graph.fold_edges (fun acc u v -> (u, v) :: acc) [] g |> List.sort compare
      in
      all = expected)

(* ------------------------------------------------------------------ *)
(* Sparse certificates *)

let test_certificate_forests_disjoint () =
  let g = Gen.clique 10 in
  let forests = Certificate.forest_decomposition g ~k:4 in
  Alcotest.(check int) "four forests" 4 (List.length forests);
  let seen = Hashtbl.create 64 in
  List.iter
    (fun f ->
      List.iter
        (fun e ->
          Alcotest.(check bool) "edge used once" false (Hashtbl.mem seen e);
          Hashtbl.replace seen e ())
        f)
    forests;
  (* first forest of a connected graph is a spanning tree *)
  Alcotest.(check int) "first forest spans" 9
    (List.length (List.hd forests))

let test_certificate_size_bound () =
  let g = Gen.clique 12 in
  let cert = Certificate.sparse_certificate g ~k:3 in
  Alcotest.(check bool) "at most k(n-1) edges" true
    (Graph.m cert <= 3 * 11)

let test_certificate_preserves_lambda () =
  List.iter
    (fun (k, lambda) ->
      let g = Gen.harary ~k:lambda ~n:24 in
      Alcotest.(check bool)
        (Printf.sprintf "certifies k=%d lambda=%d" k lambda)
        true
        (Certificate.certifies_edge_connectivity g ~k))
    [ (2, 4); (4, 4); (6, 4); (3, 6); (8, 6) ]

let prop_certificate_edge_cuts =
  QCheck.Test.make
    ~name:"certificate preserves min(lambda, k) on random graphs" ~count:25
    QCheck.(pair (int_range 6 20) (int_range 1 5))
    (fun (n, k) ->
      let g = Gen.random_connected (rng ()) ~n ~extra:(2 * n) in
      Certificate.certifies_edge_connectivity g ~k)

(* ------------------------------------------------------------------ *)
(* Sampling *)

let test_edge_partition_covers () =
  let g = Gen.clique 8 in
  let parts = Sampling.edge_partition (rng ()) g ~eta:3 in
  Alcotest.(check int) "three parts" 3 (Array.length parts);
  let total = Array.fold_left (fun acc h -> acc + Graph.m h) 0 parts in
  Alcotest.(check int) "edges conserved" (Graph.m g) total;
  Array.iter
    (fun h -> Alcotest.(check int) "same vertex set" 8 (Graph.n h))
    parts

let test_suggested_eta () =
  Alcotest.(check int) "small lambda gives 1" 1
    (Sampling.suggested_eta ~lambda:4 ~n:100 ~eps:0.5);
  let eta = Sampling.suggested_eta ~lambda:4000 ~n:100 ~eps:0.5 in
  Alcotest.(check bool) "large lambda gives > 1" true (eta > 1)

let prop_partition_conserves_edges =
  QCheck.Test.make ~name:"edge partition conserves every edge exactly once"
    ~count:30
    QCheck.(pair (int_range 4 20) (int_range 1 6))
    (fun (n, eta) ->
      let g = Gen.clique n in
      let parts = Sampling.edge_partition (rng ()) g ~eta in
      let seen = Hashtbl.create 64 in
      Array.iter
        (fun h -> Graph.iter_edges (fun u v -> Hashtbl.add seen (u, v) ()) h)
        parts;
      Hashtbl.length seen = Graph.m g
      && Graph.fold_edges (fun acc u v -> acc && Hashtbl.mem seen (u, v)) true g)

(* ------------------------------------------------------------------ *)
(* IO *)

let test_io_roundtrip () =
  let g = Gen.random_connected (rng ()) ~n:20 ~extra:15 in
  let path = Filename.temp_file "graph" ".txt" in
  Io.save path g;
  let g2 = Io.load path in
  Sys.remove path;
  Alcotest.(check int) "n preserved" (Graph.n g) (Graph.n g2);
  Alcotest.(check int) "m preserved" (Graph.m g) (Graph.m g2);
  Graph.iter_edges
    (fun u v ->
      Alcotest.(check bool) "edge preserved" true (Graph.mem_edge g2 u v))
    g

let test_io_header_isolated () =
  (* "# n" header keeps trailing isolated vertices *)
  let path = Filename.temp_file "graph" ".txt" in
  let oc = open_out path in
  output_string oc "# n 5\n0 1\n";
  close_out oc;
  let g = Io.load path in
  Sys.remove path;
  Alcotest.(check int) "declared n" 5 (Graph.n g);
  Alcotest.(check int) "one edge" 1 (Graph.m g)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "graphs"
    [
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "groups" `Quick test_uf_groups;
          Alcotest.test_case "copy" `Quick test_uf_copy_independent;
        ] );
      qsuite "union_find.props" [ prop_uf_transitive; prop_uf_count ];
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "rejects" `Quick test_graph_rejects;
          Alcotest.test_case "induced" `Quick test_graph_induced;
          Alcotest.test_case "edge_index" `Quick test_graph_edge_index;
          Alcotest.test_case "spanning_subgraph" `Quick test_spanning_subgraph;
        ] );
      qsuite "graph.csr-vs-model"
        [
          prop_csr_matches_model_queries;
          prop_csr_slots_consistent;
          prop_induced_matches_model;
          prop_spanning_subgraph_matches_model;
        ];
      ( "traversal",
        [
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "diameter 2approx" `Quick test_diameter_2approx;
        ] );
      qsuite "traversal.props" [ prop_diameter_2approx ];
      ( "mst",
        [
          Alcotest.test_case "kruskal" `Quick test_kruskal_simple;
          Alcotest.test_case "prim=kruskal" `Quick test_prim_matches_kruskal;
          Alcotest.test_case "is_spanning_tree" `Quick test_is_spanning_tree;
        ] );
      qsuite "mst.props" [ prop_mst_weight_invariant ];
      ( "maxflow",
        [
          Alcotest.test_case "simple" `Quick test_maxflow_simple;
          Alcotest.test_case "min cut" `Quick test_maxflow_min_cut;
          Alcotest.test_case "edge pair" `Quick test_edge_connectivity_pair;
          Alcotest.test_case "vertex pair" `Quick test_vertex_connectivity_pair;
          Alcotest.test_case "path extraction" `Quick test_vertex_disjoint_paths;
        ] );
      qsuite "maxflow.props" [ prop_flow_equals_menger ];
      ( "connectivity",
        [
          Alcotest.test_case "edge families" `Quick
            test_edge_connectivity_families;
          Alcotest.test_case "vertex families" `Quick
            test_vertex_connectivity_families;
          Alcotest.test_case "min vertex cut" `Quick test_min_vertex_cut;
          Alcotest.test_case "sparsified lambda" `Quick test_sparsified_lambda;
          Alcotest.test_case "all min vertex cuts" `Quick
            test_all_min_vertex_cuts;
          Alcotest.test_case "is_k_connected" `Quick test_is_k_vertex_connected;
        ] );
      qsuite "connectivity.props"
        [ prop_harary_connectivity; prop_vertex_le_edge_le_mindeg;
          prop_menger_count ];
      ( "gen",
        [
          Alcotest.test_case "shapes" `Quick test_gen_shapes;
          Alcotest.test_case "harary odd/odd" `Quick test_harary_odd_odd;
          Alcotest.test_case "star of cliques" `Quick test_star_of_cliques;
          Alcotest.test_case "cds counterexample" `Quick test_cds_counterexample;
          Alcotest.test_case "footnote 3 brute force" `Quick
            test_no_two_disjoint_cds;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "random tree" `Quick test_random_tree_is_tree;
        ] );
      qsuite "gen.props"
        [ prop_random_k_connected; prop_random_regular_degrees ];
      ( "domination",
        [
          Alcotest.test_case "predicates" `Quick test_domination_predicates;
          Alcotest.test_case "dominating tree" `Quick test_dominating_tree_check;
          Alcotest.test_case "greedy cds" `Quick test_greedy_cds;
          Alcotest.test_case "restricted cds" `Quick test_greedy_cds_within;
          Alcotest.test_case "restricted infeasible" `Quick
            test_greedy_cds_within_infeasible;
          Alcotest.test_case "exact minimum CDS" `Quick test_minimum_cds_exact;
        ] );
      qsuite "domination.props"
        [ prop_greedy_cds_valid; prop_greedy_cds_within_sound;
          prop_greedy_vs_optimum ];
      ( "biconnectivity",
        [
          Alcotest.test_case "articulation" `Quick test_articulation_basic;
          Alcotest.test_case "bridges" `Quick test_bridges_path;
          Alcotest.test_case "families" `Quick test_biconnected_families;
        ] );
      qsuite "biconnectivity.props"
        [ prop_articulation_iff_k1; prop_bridge_iff_lambda1;
          prop_blocks_partition_edges ];
      ( "certificate",
        [
          Alcotest.test_case "forests disjoint" `Quick
            test_certificate_forests_disjoint;
          Alcotest.test_case "size bound" `Quick test_certificate_size_bound;
          Alcotest.test_case "preserves lambda" `Quick
            test_certificate_preserves_lambda;
        ] );
      qsuite "certificate.props" [ prop_certificate_edge_cuts ];
      ( "sampling",
        [
          Alcotest.test_case "partition covers" `Quick test_edge_partition_covers;
          Alcotest.test_case "suggested eta" `Quick test_suggested_eta;
        ] );
      qsuite "sampling.props" [ prop_partition_conserves_edges ];
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "header" `Quick test_io_header_isolated;
        ] );
    ]
