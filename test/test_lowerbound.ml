(* Tests for the Appendix G lower-bound machinery: disjointness
   instances, the G(X,Y) family and its cut dichotomy (Lemma G.4), the
   Alice/Bob side structure, and the reduction arithmetic. *)

open Lowerbound

let rng () = Random.State.make [| 0xFACE |]

(* ------------------------------------------------------------------ *)

let test_disjoint_instances () =
  for seed = 1 to 10 do
    let r = Random.State.make [| seed |] in
    let inst = Disjointness.random_disjoint r ~h:12 ~density:0.7 in
    Alcotest.(check bool) "valid" true (Disjointness.is_valid inst);
    Alcotest.(check (list int)) "empty intersection" []
      (Disjointness.intersection inst)
  done

let test_intersecting_instances () =
  for seed = 1 to 10 do
    let r = Random.State.make [| seed |] in
    let inst = Disjointness.random_intersecting r ~h:12 ~density:0.7 in
    Alcotest.(check bool) "valid" true (Disjointness.is_valid inst);
    Alcotest.(check int) "single intersection" 1
      (List.length (Disjointness.intersection inst))
  done

(* ------------------------------------------------------------------ *)

let build_pair ?(h = 5) ?(ell = 2) ?(w = 6) () =
  let r = rng () in
  let d = Disjointness.random_disjoint r ~h ~density:0.6 in
  let i = Disjointness.random_intersecting r ~h ~density:0.6 in
  (Construction.build d ~ell ~w, Construction.build i ~ell ~w)

let test_construction_sizes () =
  let cd, ci = build_pair () in
  let n_heavy = 6 * 2 * 2 * 6 in
  (* (h+1) paths x 2 ell positions x w *)
  let nd = Graphs.Graph.n cd.Construction.graph in
  let ni = Graphs.Graph.n ci.Construction.graph in
  Alcotest.(check bool) "heavy block dominates size" true
    (nd >= n_heavy + 2 && ni >= n_heavy + 2)

let test_cut_dichotomy_disjoint () =
  let cd, _ = build_pair () in
  let k, cut = Construction.cut_dichotomy cd in
  Alcotest.(check bool) "k >= w on disjoint" true (k >= cd.Construction.w);
  Alcotest.(check bool) "no small cut" true (cut = None)

let test_cut_dichotomy_intersecting () =
  let _, ci = build_pair () in
  let k, cut = Construction.cut_dichotomy ci in
  Alcotest.(check int) "k = 4" 4 k;
  match cut with
  | None -> Alcotest.fail "expected the {a,b,u_z,v_z} cut"
  | Some ids ->
    Alcotest.(check int) "four nodes" 4 (List.length ids);
    (* removing them disconnects *)
    let g = ci.Construction.graph in
    let sub, _ =
      Graphs.Graph.induced g (fun v -> not (List.mem v ids))
    in
    Alcotest.(check bool) "removal disconnects" false
      (Graphs.Traversal.is_connected sub)

let test_diameter_three () =
  let cd, ci = build_pair () in
  Alcotest.(check bool) "disjoint diam <= 3" true (Construction.diameter_ok cd);
  Alcotest.(check bool) "intersecting diam <= 3" true
    (Construction.diameter_ok ci)

let test_sides_cover_and_shrink () =
  let cd, _ = build_pair ~ell:3 () in
  let n = Graphs.Graph.n cd.Construction.graph in
  (* at r = 0, every node is on at least one side; the overlap is the
     middle band of heavy nodes *)
  for v = 0 to n - 1 do
    Alcotest.(check bool) "covered at r=0" true
      (Construction.alice_side cd 0 v || Construction.bob_side cd 0 v)
  done;
  (* Alice's side shrinks with r *)
  let count r =
    let c = ref 0 in
    for v = 0 to n - 1 do
      if Construction.alice_side cd r v then incr c
    done;
    !c
  in
  Alcotest.(check bool) "monotone shrink" true (count 1 <= count 0)

let test_midline_separates_hubs () =
  let cd, _ = build_pair () in
  let g = cd.Construction.graph in
  let n = Graphs.Graph.n g in
  let a = ref (-1) and b = ref (-1) in
  Array.iteri
    (fun v role ->
      match role with
      | Construction.Hub_a -> a := v
      | Construction.Hub_b -> b := v
      | _ -> ())
    cd.Construction.roles;
  Alcotest.(check bool) "a on Alice side" true (Construction.midline cd !a);
  Alcotest.(check bool) "b on Bob side" false (Construction.midline cd !b);
  ignore n

(* ------------------------------------------------------------------ *)

let test_reduction_arithmetic () =
  let b = Simulation.bits_per_message ~n:1000 in
  Alcotest.(check bool) "B = O(log n) bits" true (b >= 10 && b <= 1000);
  Alcotest.(check int) "2BT cost" (2 * b * 7)
    (Simulation.two_party_cost ~rounds:7 ~n:1000);
  let lb_small = Simulation.implied_round_lower_bound ~h:100 ~n:1000 in
  let lb_large = Simulation.implied_round_lower_bound ~h:1000 ~n:1000 in
  Alcotest.(check bool) "bound grows linearly in h" true
    (lb_large > 9. *. lb_small)

let test_distinguisher_runs () =
  (* small instance: the distributed vc-approx must terminate, produce an
     estimate, and show cross-boundary traffic *)
  let r = rng () in
  let inst = Disjointness.random_intersecting r ~h:3 ~density:0.7 in
  let c = Construction.build inst ~ell:1 ~w:4 in
  let rep = Simulation.distinguish_via_packing ~seed:3 c in
  Alcotest.(check bool) "rounds measured" true (rep.Simulation.measured_rounds > 0);
  Alcotest.(check bool) "boundary bits measured" true
    (rep.Simulation.boundary_bits > 0);
  Alcotest.(check bool) "truth recorded" true rep.Simulation.truth_small_cut;
  Alcotest.(check bool) "rounds respect the implied bound" true
    (float_of_int rep.Simulation.measured_rounds
    >= rep.Simulation.implied_round_lower_bound)

(* Lemma G.5, literally: the split Alice/Bob simulation reproduces the
   global run for every T <= ell, exchanging at most 2BT bits. *)
let test_two_party_replay_exact () =
  let r = rng () in
  let inst = Disjointness.random_intersecting r ~h:4 ~density:0.5 in
  let c = Construction.build inst ~ell:3 ~w:4 in
  for rounds = 1 to 3 do
    let rep =
      Simulation.two_party_replay c Simulation.flood_min_protocol ~rounds
        ~equal:( = )
    in
    Alcotest.(check bool)
      (Printf.sprintf "split run matches global run (T=%d)" rounds)
      true rep.Simulation.states_match;
    Alcotest.(check bool) "exchange within 2BT" true
      (rep.Simulation.bits_exchanged <= rep.Simulation.lemma_bound_bits)
  done

let test_two_party_replay_rejects_long () =
  let r = rng () in
  let inst = Disjointness.random_disjoint r ~h:3 ~density:0.5 in
  let c = Construction.build inst ~ell:2 ~w:3 in
  Alcotest.check_raises "T > ell rejected"
    (Invalid_argument "Simulation.two_party_replay: rounds must be <= ell")
    (fun () ->
      ignore
        (Simulation.two_party_replay c Simulation.flood_min_protocol
           ~rounds:3 ~equal:( = )))

let prop_two_party_replay =
  QCheck.Test.make
    ~name:"Lemma G.5 holds across random instances and horizons" ~count:10
    QCheck.(pair (int_range 3 6) (int_range 1 3))
    (fun (h, rounds) ->
      let r = rng () in
      let inst = Disjointness.random_intersecting r ~h ~density:0.5 in
      let c = Construction.build inst ~ell:3 ~w:4 in
      let rep =
        Simulation.two_party_replay c Simulation.flood_min_protocol ~rounds
          ~equal:( = )
      in
      rep.Simulation.states_match
      && rep.Simulation.bits_exchanged <= rep.Simulation.lemma_bound_bits)

let prop_dichotomy =
  QCheck.Test.make
    ~name:"cut dichotomy holds across random instances (Lemma G.4)" ~count:6
    QCheck.(int_range 3 6)
    (fun h ->
      let r = rng () in
      let d = Disjointness.random_disjoint r ~h ~density:0.5 in
      let i = Disjointness.random_intersecting r ~h ~density:0.5 in
      let cd = Construction.build d ~ell:1 ~w:5 in
      let ci = Construction.build i ~ell:1 ~w:5 in
      let kd, _ = Construction.cut_dichotomy cd in
      let ki, cut = Construction.cut_dichotomy ci in
      kd >= 5 && ki = 4 && cut <> None)

let () =
  Alcotest.run "lowerbound"
    [
      ( "disjointness",
        [
          Alcotest.test_case "disjoint" `Quick test_disjoint_instances;
          Alcotest.test_case "intersecting" `Quick test_intersecting_instances;
        ] );
      ( "construction",
        [
          Alcotest.test_case "sizes" `Quick test_construction_sizes;
          Alcotest.test_case "dichotomy disjoint" `Quick
            test_cut_dichotomy_disjoint;
          Alcotest.test_case "dichotomy intersecting" `Quick
            test_cut_dichotomy_intersecting;
          Alcotest.test_case "diameter 3" `Quick test_diameter_three;
          Alcotest.test_case "sides" `Quick test_sides_cover_and_shrink;
          Alcotest.test_case "midline" `Quick test_midline_separates_hubs;
        ] );
      ( "construction.props",
        List.map QCheck_alcotest.to_alcotest [ prop_dichotomy ] );
      ( "simulation",
        [
          Alcotest.test_case "arithmetic" `Quick test_reduction_arithmetic;
          Alcotest.test_case "distinguisher" `Quick test_distinguisher_runs;
          Alcotest.test_case "Lemma G.5 replay" `Quick
            test_two_party_replay_exact;
          Alcotest.test_case "replay horizon" `Quick
            test_two_party_replay_rejects_long;
        ] );
      ( "simulation.props",
        List.map QCheck_alcotest.to_alcotest [ prop_two_party_replay ] );
    ]
