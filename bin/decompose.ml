(* Command-line driver for the connectivity decompositions.

   Graphs come either from a generator spec (--gen "harary:k=8,n=64") or
   from an edge-list file (--file graph.txt: one "u v" pair per line,
   vertices 0-based; `--file -` reads stdin).

     decompose vertex --gen harary:k=8,n=64
     decompose edge   --file my_graph.txt
     decompose approx-vc --gen hypercube:d=5
     decompose gossip --gen harary:k=32,n=64
     decompose test-packing --gen clique_path:k=6,len=4 *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Graph sources — parsing/generation lives in Graphs.Source so it is
   unit-testable. Every subcommand builds its graph exactly once, before
   any retry/replay machinery runs; test_decompose pins this down by
   counting Source.load constructions against Reliable attempt counts. *)

let load ?domains ~gen ~file () = Graphs.Source.load ?domains ~gen ~file ()

let gen_arg =
  Arg.(value & opt (some string) None & info [ "gen" ] ~docv:"SPEC"
         ~doc:"Generator spec, e.g. harary:k=8,n=64 | hypercube:d=5 | \
               clique_path:k=6,len=8 | random:n=64,k=4,extra=40.")

let file_arg =
  Arg.(value & opt (some string) None & info [ "file" ] ~docv:"PATH"
         ~doc:"Edge-list file, one 'u v' per line ('-' = stdin).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D"
         ~doc:"Shard every CONGEST round across D domains (OCaml 5 \
               parallelism). Output is byte-identical for every D — same \
               telemetry, same per-round digests — so this is purely a \
               wall-clock knob; see DESIGN.md §15. Default 1 (sequential).")

(* ------------------------------------------------------------------ *)
(* Determinism sanitizer plumbing (--check) *)

let check_arg =
  Arg.(value & flag & info [ "check" ]
         ~doc:"Run the distributed protocol twice from the same seed and \
               fail (exit 3, replay divergence) unless telemetry — rounds, \
               words, loads, per-round traffic digests — is bit-identical. \
               Requires $(b,--distributed).")

(* Under --check, run [f] through Net.replay_check and report; otherwise
   run it once. Either way the caller gets [f]'s result. *)
let run_checked ~check net f =
  if not check then f net
  else begin
    let out = ref None in
    let report = Congest.Net.replay_check net (fun net -> out := Some (f net)) in
    (match report.Congest.Net.r_divergence with
    | None ->
      Format.printf "replay check: deterministic (%a)@."
        Congest.Net.pp_telemetry report.Congest.Net.r_second
    | Some d ->
      Format.eprintf "replay check: seed-determinism violated: %s@." d;
      exit Exit_codes.replay_divergence);
    match !out with Some r -> r | None -> assert false
  end

let require_distributed ~check ~distributed =
  if check && not distributed then
    failwith "--check replays the CONGEST run; it requires --distributed"

(* ------------------------------------------------------------------ *)
(* Subcommands *)

let vertex_cmd =
  let run gen file seed domains distributed check dot =
    require_distributed ~check ~distributed;
    let g = load ?domains ~gen ~file () in
    let k = Graphs.Connectivity.vertex_connectivity g in
    Format.printf "n=%d m=%d vertex connectivity=%d@." (Graphs.Graph.n g)
      (Graphs.Graph.m g) k;
    let res =
      if distributed then begin
        let net = Congest.Net.create Congest.Model.V_congest g in
        let r =
          run_checked ~check net (fun net ->
              Domtree.Dist_packing.pack ~seed net ~k:(max 1 k))
        in
        Format.printf "distributed run: %d rounds, %d messages@."
          (Congest.Net.rounds net)
          (Congest.Net.messages_sent net);
        r
      end
      else Domtree.Cds_packing.pack ~seed g ~k:(max 1 k)
    in
    let p = Domtree.Tree_extract.of_cds_packing res in
    Format.printf "dominating trees: %d, packing size %.3f, max load %.3f@."
      (Domtree.Packing.count p) (Domtree.Packing.size p)
      (Domtree.Packing.max_node_load p);
    List.iter
      (fun tr ->
        Format.printf "  tree %d: %d vertices, diameter %d@."
          tr.Domtree.Packing.cls
          (Array.length tr.Domtree.Packing.vertices)
          (Domtree.Packing.tree_diameter p tr))
      p.Domtree.Packing.trees;
    (match dot with
    | Some path ->
      let oc = open_out path in
      let ppf = Format.formatter_of_out_channel oc in
      (match p.Domtree.Packing.trees with
      | tr :: _ ->
        let members = Array.to_list tr.Domtree.Packing.vertices in
        Graphs.Graph.pp_dot ~highlight:(fun v -> List.mem v members) ppf g;
        Format.pp_print_flush ppf ();
        Format.printf "first tree written to %s (members highlighted)@." path
      | [] -> ());
      close_out oc
    | None -> ());
    match Domtree.Packing.verify p with
    | [] -> Format.printf "verification: OK@."
    | vs ->
      List.iter
        (Format.printf "violation: %a@." Domtree.Packing.pp_violation)
        vs;
      exit Exit_codes.failure
  in
  let dist_arg =
    Arg.(value & flag & info [ "distributed" ]
           ~doc:"Run the V-CONGEST distributed algorithm (Theorem 1.1).")
  in
  let dot_arg =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PATH"
           ~doc:"Write Graphviz source for the first tree to PATH.")
  in
  Cmd.v
    (Cmd.info "vertex" ~doc:"Vertex-connectivity decomposition (dominating trees)")
    Term.(const run $ gen_arg $ file_arg $ seed_arg $ domains_arg $ dist_arg
          $ check_arg $ dot_arg)

let edge_cmd =
  let run gen file seed domains distributed check =
    require_distributed ~check ~distributed;
    let g = load ?domains ~gen ~file () in
    let lambda = Graphs.Connectivity.edge_connectivity g in
    Format.printf "n=%d m=%d edge connectivity=%d@." (Graphs.Graph.n g)
      (Graphs.Graph.m g) lambda;
    let p =
      if distributed then begin
        let net = Congest.Net.create Congest.Model.E_congest g in
        let r =
          run_checked ~check net (fun net ->
              Spantree.Dist_packing.run_sampled ~seed net
                ~lambda:(max 1 lambda))
        in
        Format.printf "distributed run: %d rounds (pipelined estimate %d)@."
          r.Spantree.Dist_packing.measured_rounds
          r.Spantree.Dist_packing.parallel_rounds;
        r.Spantree.Dist_packing.packing
      end
      else
        (Spantree.Sampling_pack.run ~seed g ~lambda:(max 1 lambda))
          .Spantree.Sampling_pack.packing
    in
    Format.printf
      "spanning trees: %d, packing size %.3f (target %d), max edge load %.3f@."
      (Spantree.Spacking.count p) (Spantree.Spacking.size p)
      (Spantree.Lagrangian.target ~lambda:(max 1 lambda))
      (Spantree.Spacking.max_edge_load p);
    match Spantree.Spacking.verify ~tolerance:1e-6 p with
    | [] -> Format.printf "verification: OK@."
    | vs ->
      List.iter
        (Format.printf "violation: %a@." Spantree.Spacking.pp_violation)
        vs;
      exit Exit_codes.failure
  in
  let dist_arg =
    Arg.(value & flag & info [ "distributed" ]
           ~doc:"Run the E-CONGEST distributed algorithm (Theorem 1.3).")
  in
  Cmd.v
    (Cmd.info "edge" ~doc:"Edge-connectivity decomposition (spanning trees)")
    Term.(const run $ gen_arg $ file_arg $ seed_arg $ domains_arg $ dist_arg
          $ check_arg)

let approx_vc_cmd =
  let run gen file seed domains distributed check =
    require_distributed ~check ~distributed;
    let g = load ?domains ~gen ~file () in
    let r =
      if distributed then begin
        let net = Congest.Net.create Congest.Model.V_congest g in
        let r =
          run_checked ~check net (fun net -> Domtree.Vc_approx.distributed ~seed net)
        in
        Format.printf "distributed run: %d rounds@." (Congest.Net.rounds net);
        r
      end
      else Domtree.Vc_approx.centralized ~seed g
    in
    Format.printf "estimate k-hat = %d (accepted guess %d after %d attempts)@."
      r.Domtree.Vc_approx.estimate r.Domtree.Vc_approx.accepted_guess
      r.Domtree.Vc_approx.attempts;
    let truth = Graphs.Connectivity.vertex_connectivity g in
    Format.printf "exact k = %d; ratio %.2f@." truth
      (Domtree.Vc_approx.approximation_ratio ~truth r)
  in
  let dist_arg =
    Arg.(value & flag & info [ "distributed" ] ~doc:"V-CONGEST variant.")
  in
  Cmd.v
    (Cmd.info "approx-vc"
       ~doc:"O(log n)-approximate vertex connectivity (Corollary 1.7)")
    Term.(const run $ gen_arg $ file_arg $ seed_arg $ domains_arg $ dist_arg
          $ check_arg)

(* ------------------------------------------------------------------ *)
(* Fault-injection arguments, validated at parse time: a bad value is a
   usage error with a clear message, not a crash mid-run *)

let probability_conv =
  let parse s =
    match float_of_string_opt s with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | Some p ->
      Error (`Msg (Printf.sprintf "probability %g is outside [0,1]" p))
    | None -> Error (`Msg (Printf.sprintf "expected a probability, got %S" s))
  in
  Arg.conv ~docv:"P" (parse, Format.pp_print_float)

let nonneg_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some b when b >= 0 -> Ok b
    | Some b -> Error (`Msg (Printf.sprintf "%d is negative" b))
    | None ->
      Error (`Msg (Printf.sprintf "expected a non-negative integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let fail_p_arg =
  Arg.(value & opt probability_conv 0. & info [ "fail-p" ] ~docv:"P"
         ~doc:"Per-message Bernoulli drop probability (in [0,1]).")

let crash_arg =
  Arg.(value & opt_all string [] & info [ "crash" ] ~docv:"ROUND:NODE"
         ~doc:"Fail-stop crash of NODE at ROUND (repeatable).")

let kill_arg =
  Arg.(value & opt nonneg_int_conv 0 & info [ "kill-budget" ] ~docv:"B"
         ~doc:"Adaptive adversary kills the B most-loaded edges (B >= 0).")

let storm_arg =
  Arg.(value & opt (some string) None & info [ "storm" ] ~docv:"FROM:PER:LEN"
         ~doc:"Crash storm: from round FROM, PER random crashes per round \
               for LEN rounds.")

let parse_crash spec =
  (* "round:node" *)
  match String.split_on_char ':' spec with
  | [ r; v ] -> (int_of_string (String.trim r), int_of_string (String.trim v))
  | _ -> failwith ("bad --crash spec (want ROUND:NODE): " ^ spec)

let parse_storm ~n spec =
  match
    String.split_on_char ':' spec |> List.map (fun s -> int_of_string (String.trim s))
  with
  | [ from_round; per_round; storm_rounds ]
    when from_round >= 0 && per_round >= 0 && storm_rounds >= 0 ->
    Congest.Faults.Crash_storm { from_round; per_round; storm_rounds; universe = n }
  | _ -> failwith ("bad --storm spec (want FROM:PER:LEN, all >= 0): " ^ spec)

let fault_specs ?storm ?n ~fail_p ~crashes ~kill_budget () =
  List.concat
    [
      (if fail_p > 0. then [ Congest.Faults.Drop_bernoulli fail_p ] else []);
      (match crashes with
      | [] -> []
      | l -> [ Congest.Faults.Crash_at (List.map parse_crash l) ]);
      (if kill_budget > 0 then
         [
           Congest.Faults.Greedy_edge_kill
             { budget = kill_budget; period = 4; from_round = 6 };
         ]
       else []);
      (match (storm, n) with
      | Some spec, Some n -> [ parse_storm ~n spec ]
      | Some _, None -> assert false
      | None, _ -> []);
    ]

let gossip_cmd =
  let run gen file seed domains per_node fail_p crashes kill_budget =
    let g = load ?domains ~gen ~file () in
    let k = Graphs.Connectivity.vertex_connectivity g in
    let res =
      Domtree.Cds_packing.run ~seed g
        ~classes:(max 1 (2 * k / 3))
        ~layers:2
    in
    let p = Domtree.Tree_extract.of_cds_packing res in
    let specs = fault_specs ~fail_p ~crashes ~kill_budget () in
    if specs = [] then begin
      let net = Congest.Net.create Congest.Model.V_congest g in
      let rep = Routing.Gossip.all_to_all ~seed ~per_node net p ~k in
      let r = rep.Routing.Gossip.result in
      Format.printf
        "gossip: %d messages in %d rounds (%.2f/round); reference bound %.1f@."
        r.Routing.Broadcast.messages r.Routing.Broadcast.rounds
        r.Routing.Broadcast.throughput rep.Routing.Gossip.bound;
      let net2 = Congest.Net.create Congest.Model.V_congest g in
      let naive = Routing.Gossip.all_to_all_naive ~per_node net2 in
      Format.printf "single-tree baseline: %d rounds (%.2f/round)@."
        naive.Routing.Broadcast.rounds naive.Routing.Broadcast.throughput
    end
    else begin
      let pp label (r : Routing.Broadcast.ft_result) faults =
        Format.printf
          "%s: %d/%d messages delivered in %d rounds (%.3f/round), coverage \
           %.3f, %d survivors, %d dead trees@.  %a@."
          label r.Routing.Broadcast.ft_delivered
          r.Routing.Broadcast.ft_messages r.Routing.Broadcast.ft_rounds
          r.Routing.Broadcast.ft_throughput r.Routing.Broadcast.ft_coverage
          r.Routing.Broadcast.ft_survivors r.Routing.Broadcast.ft_dead_trees
          Congest.Faults.pp_summary faults
      in
      let net = Congest.Net.create Congest.Model.V_congest g in
      let faults = Congest.Faults.create ~seed specs in
      let r = Routing.Gossip.all_to_all_ft ~seed ~per_node net faults p in
      pp "gossip under faults (packing)" r faults;
      let net2 = Congest.Net.create Congest.Model.V_congest g in
      let faults2 = Congest.Faults.create ~seed specs in
      let rn = Routing.Gossip.all_to_all_naive_ft ~per_node net2 faults2 in
      pp "single-tree baseline" rn faults2
    end
  in
  let per_node_arg =
    Arg.(value & opt int 1 & info [ "per-node" ] ~doc:"Messages per node.")
  in
  Cmd.v
    (Cmd.info "gossip" ~doc:"All-to-all broadcast via the decomposition (App. A)")
    Term.(const run $ gen_arg $ file_arg $ seed_arg $ domains_arg $ per_node_arg
          $ fail_p_arg $ crash_arg $ kill_arg)

let verified_cmd =
  let run gen file seed domains distributed check max_retries policy fail_p
      crashes kill_budget storm =
    require_distributed ~check ~distributed;
    (* the graph is built exactly once, here — the verify-and-retry
       pipeline below reuses [g] across every attempt and replay *)
    let g = load ?domains ~gen ~file () in
    let n = Graphs.Graph.n g in
    let k = max 1 (Graphs.Connectivity.vertex_connectivity g) in
    let specs = fault_specs ?storm ~n ~fail_p ~crashes ~kill_budget () in
    if specs <> [] && not distributed then
      failwith "fault injection targets the CONGEST runtime; it requires \
                --distributed";
    let live = ref (fun _ -> true) in
    let r =
      if distributed then begin
        let net = Congest.Net.create Congest.Model.V_congest g in
        (if specs <> [] then begin
           let faults = Congest.Faults.create ~seed specs in
           Congest.Faults.install net faults;
           live := Congest.Faults.alive faults
         end);
        let r =
          run_checked ~check net (fun net ->
              Domtree.Reliable.pack_verified_distributed ~seed ~max_retries
                ~policy net ~k)
        in
        Format.printf
          "rounds charged (packing + tester + repair + backoff): %d@."
          r.Domtree.Reliable.rounds_charged;
        r
      end
      else Domtree.Reliable.pack_verified ~seed ~max_retries ~policy g ~k
    in
    List.iteri
      (fun i (a : Domtree.Reliable.attempt) ->
        Format.printf "attempt %d (seed %d): pass=%b domination=%b \
                       connectivity=%b repaired=%b rounds=%d@."
          i a.Domtree.Reliable.attempt_seed a.outcome.Domtree.Tester.pass
          a.outcome.Domtree.Tester.domination_ok
          a.outcome.Domtree.Tester.connectivity_ok
          a.Domtree.Reliable.repaired a.Domtree.Reliable.attempt_rounds)
      r.Domtree.Reliable.attempts;
    (match r.Domtree.Reliable.repair with
    | Some rep -> Format.printf "repair: %a@." Domtree.Repair.pp rep
    | None -> ());
    let cert = r.Domtree.Reliable.certificate in
    Format.printf "certificate: %a@." Domtree.Certificate.pp cert;
    (match
       Domtree.Certificate.check ~seed:(seed + 1) ~live:!live g
         ~memberships:(fun v -> r.Domtree.Reliable.memberships.(v))
         cert
     with
    | Ok () -> Format.printf "certificate check: OK@."
    | Error errs ->
      List.iter (Format.eprintf "certificate check: %s@.") errs;
      exit Exit_codes.failure);
    if not r.Domtree.Reliable.verified then begin
      Format.printf "FAILED: no verified decomposition in %d attempts@."
        (List.length r.Domtree.Reliable.attempts);
      exit Exit_codes.failure
    end;
    (match r.Domtree.Reliable.repair with
    | None ->
      let p = Domtree.Tree_extract.of_cds_packing r.Domtree.Reliable.packing in
      Format.printf
        "verified decomposition after %d retries: %d trees, size %.3f@."
        r.Domtree.Reliable.retries (Domtree.Packing.count p)
        (Domtree.Packing.size p)
    | Some _ ->
      Format.printf
        "verified decomposition after %d retries: %d/%d classes retained \
         (repaired)@."
        r.Domtree.Reliable.retries r.Domtree.Reliable.classes_retained
        cert.Domtree.Certificate.c_classes_requested);
    if r.Domtree.Reliable.degraded then begin
      (* distinct exit status: the output is certified correct but holds
         fewer classes than requested — graceful degradation, not
         success and not failure *)
      Format.printf "DEGRADED: %d of %d requested classes retained@."
        r.Domtree.Reliable.classes_retained
        cert.Domtree.Certificate.c_classes_requested;
      exit Exit_codes.degraded
    end
  in
  let dist_arg =
    Arg.(value & flag & info [ "distributed" ]
           ~doc:"Run packing and tester on the V-CONGEST runtime.")
  in
  let retries_arg =
    Arg.(value & opt int Domtree.Reliable.default_max_retries
         & info [ "max-retries" ] ~doc:"Retry budget after the first attempt.")
  in
  let policy_arg =
    Arg.(value
         & opt (enum [ ("retry", `Retry); ("repair", `Repair) ]) `Retry
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Recovery policy on a failed verification: $(b,retry) \
                   re-runs from a fresh seed; $(b,repair) splices broken \
                   classes locally, drops what it cannot fix, and certifies \
                   the survivors (exit 4 if degraded).")
  in
  Cmd.v
    (Cmd.info "verified"
       ~doc:"Decompose under the verify-and-recover pipeline (Appendix E \
             guard); exit 4 = verified but degraded")
    Term.(const run $ gen_arg $ file_arg $ seed_arg $ domains_arg $ dist_arg
          $ check_arg $ retries_arg $ policy_arg $ fail_p_arg $ crash_arg
          $ kill_arg $ storm_arg)

let test_packing_cmd =
  let run gen file seed =
    let g = load ~gen ~file () in
    let k = max 1 (Graphs.Connectivity.vertex_connectivity g) in
    let res = Domtree.Cds_packing.pack ~seed g ~k in
    let per_real = Domtree.Cds_packing.real_classes res in
    let outcome =
      Domtree.Tester.run_centralized ~seed g
        ~memberships:(fun r -> per_real.(r))
        ~classes:res.Domtree.Cds_packing.classes
        ~detection_rounds:
          (Domtree.Tester.default_detection_rounds ~n:(Graphs.Graph.n g))
    in
    Format.printf "tester: pass=%b domination=%b connectivity=%b@."
      outcome.Domtree.Tester.pass outcome.Domtree.Tester.domination_ok
      outcome.Domtree.Tester.connectivity_ok;
    if not outcome.Domtree.Tester.pass then exit Exit_codes.failure
  in
  Cmd.v
    (Cmd.info "test-packing"
       ~doc:"Pack, then run the randomized Appendix E partition tester")
    Term.(const run $ gen_arg $ file_arg $ seed_arg)

let exact_cmd =
  let run gen file =
    let g = load ~gen ~file () in
    Format.printf "n=%d m=%d min degree=%d@." (Graphs.Graph.n g)
      (Graphs.Graph.m g) (Graphs.Graph.min_degree g);
    let lambda = Graphs.Connectivity.edge_connectivity g in
    let k = Graphs.Connectivity.vertex_connectivity g in
    Format.printf "edge connectivity lambda = %d@." lambda;
    Format.printf "vertex connectivity k = %d@." k;
    (match Graphs.Connectivity.min_vertex_cut g with
    | Some cut ->
      Format.printf "a minimum vertex cut: {%s}@."
        (String.concat ", " (List.map string_of_int cut))
    | None -> ());
    let bridges = Graphs.Biconnectivity.bridges g in
    if bridges <> [] then
      Format.printf "bridges: %s@."
        (String.concat ", "
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) bridges));
    let cuts = Graphs.Biconnectivity.articulation_points g in
    if cuts <> [] then
      Format.printf "articulation points: %s@."
        (String.concat ", " (List.map string_of_int cuts))
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Exact connectivity values and cut witnesses")
    Term.(const run $ gen_arg $ file_arg)

(* ------------------------------------------------------------------ *)
(* The decomposition service (DESIGN.md §11): `serve` runs the daemon,
   `serve-call` is the blocking client used interactively and by CI *)

module Sp = Serve.Protocol

let socket_arg =
  Arg.(value & opt string "decompose.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix domain socket path of the daemon.")

let serve_cmd =
  let run socket queue deadline_ms rounds_per_ms ms_per_attempt max_n cache_dir
      chaos_fail_p chaos_storm state_dir snapshot_every idle_timeout_ms
      metrics_file metrics_every_ms supervise max_crashes =
    let cfg =
      {
        (Serve.Server.default_config ~socket_path:socket) with
        Serve.Server.queue_capacity = queue;
        disk_cache_dir = cache_dir;
        state_dir;
        snapshot_every;
        idle_timeout_ms;
        metrics_file;
        metrics_every_ms;
        worker =
          {
            Serve.Worker.default_config with
            Serve.Worker.default_deadline_ms = deadline_ms;
            rounds_per_ms;
            ms_per_attempt;
            max_n;
            chaos_fail_p;
            chaos_storm = Option.value ~default:"" chaos_storm;
          };
      }
    in
    let serve () =
      Serve.Server.run
        ~on_ready:(fun () ->
          Format.printf "serving on %s (queue %d, default deadline %d ms%s%s)@."
            socket queue deadline_ms
            (match state_dir with
            | Some d -> ", journal in " ^ d
            | None -> "")
            (if chaos_fail_p > 0. || chaos_storm <> None then ", chaos mode"
             else ""))
        cfg
    in
    if not supervise then begin
      serve ();
      Format.printf "drained; exiting@."
    end
    else begin
      (* supervised mode: the daemon runs in a forked child; readiness
         is a successful Health round trip over the socket *)
      let probe () =
        match Serve.Server.Client.connect ~timeout_s:1. socket with
        | cl ->
          let ok =
            match Serve.Server.Client.request cl Sp.Health with
            | Ok (Sp.Health_report _) -> true
            | _ -> false
          in
          Serve.Server.Client.close cl;
          ok
        | exception (Unix.Unix_error _ | Sys_error _) -> false
      in
      let outcome =
        Serve.Supervisor.supervise
          { Serve.Supervisor.default_config with max_crashes }
          ~on_event:(fun e ->
            Format.printf "supervisor: %a@." Serve.Supervisor.pp_event e;
            Format.pp_print_flush Format.std_formatter ())
          ~spawn:serve ~probe
      in
      match outcome with
      | Serve.Supervisor.Clean_exit { restarts } ->
        Format.printf "supervisor: daemon drained (restarts=%d); exiting@."
          restarts
      | Serve.Supervisor.Crash_loop { crashes } ->
        Format.eprintf
          "supervisor: giving up after %d crashes in the window@." crashes;
        exit Exit_codes.crash_loop
    end
  in
  let queue_arg =
    Arg.(value & opt nonneg_int_conv 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Bounded request-queue capacity; a full queue sheds with \
                 an Overloaded reply (exit 5 on the client).")
  in
  let deadline_arg =
    Arg.(value & opt nonneg_int_conv 2000 & info [ "deadline-ms" ]
           ~doc:"Default per-request deadline when the client sends 0.")
  in
  let rpm_arg =
    Arg.(value & opt nonneg_int_conv 500 & info [ "rounds-per-ms" ]
           ~doc:"Deadline-to-budget mapping: CONGEST rounds charged per \
                 deadline millisecond for distributed requests.")
  in
  let mpa_arg =
    Arg.(value & opt nonneg_int_conv 250 & info [ "ms-per-attempt" ]
           ~doc:"Deadline-to-budget mapping: milliseconds per centralized \
                 retry attempt.")
  in
  let max_n_arg =
    Arg.(value & opt nonneg_int_conv (1 lsl 20) & info [ "max-n" ]
           ~doc:"Admission control: largest graph (vertices) served.")
  in
  let cache_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist last-good certificates to this directory so \
                 degraded responses survive restarts.")
  in
  let chaos_p_arg =
    Arg.(value & opt probability_conv 0. & info [ "chaos-fail-p" ] ~docv:"P"
           ~doc:"Chaos mode: Bernoulli message drops injected into every \
                 distributed request served.")
  in
  let chaos_storm_arg =
    Arg.(value & opt (some string) None & info [ "chaos-storm" ]
           ~docv:"FROM:PER:LEN"
           ~doc:"Chaos mode: crash storm injected into every distributed \
                 request served.")
  in
  let state_dir_arg =
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"Crash-only state: journal every uploaded graph and \
                 certificate promotion here and replay it on startup, so \
                 a kill -9 loses nothing durable.")
  in
  let snapshot_every_arg =
    Arg.(value & opt nonneg_int_conv 512 & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Journal records between snapshot compactions; 0 disables \
                 snapshots (the journal only grows).")
  in
  let idle_timeout_arg =
    Arg.(value & opt nonneg_int_conv 10_000 & info [ "idle-timeout-ms" ]
           ~doc:"Slow-client guard: drop a connection whose partial frame \
                 makes no byte progress for this long.")
  in
  let metrics_file_arg =
    Arg.(value & opt (some string) None & info [ "metrics-file" ] ~docv:"PATH"
           ~doc:"Dump the metrics snapshot here as JSON (atomic rename) \
                 every --metrics-every-ms and once on shutdown.")
  in
  let metrics_every_arg =
    Arg.(value & opt nonneg_int_conv 1_000 & info [ "metrics-every-ms" ]
           ~doc:"Period of the --metrics-file dump.")
  in
  let supervise_arg =
    Arg.(value & flag & info [ "supervise" ]
           ~doc:"Run the daemon as a supervised child process: restart on \
                 crash with exponential backoff, gate traffic on a \
                 readiness probe, give up (exit 6) on a crash loop.")
  in
  let max_crashes_arg =
    Arg.(value & opt nonneg_int_conv 5 & info [ "max-crashes" ] ~docv:"N"
           ~doc:"Supervised mode: crashes tolerated per 60s window before \
                 the circuit breaker opens.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the decomposition daemon (Unix socket, framed binary \
             protocol); serves until a drain request completes")
    Term.(const run $ socket_arg $ queue_arg $ deadline_arg $ rpm_arg $ mpa_arg
          $ max_n_arg $ cache_arg $ chaos_p_arg $ chaos_storm_arg
          $ state_dir_arg $ snapshot_every_arg $ idle_timeout_arg
          $ metrics_file_arg $ metrics_every_arg $ supervise_arg
          $ max_crashes_arg)

(* serve-call --health, humanized: grouped key=value lines so operators
   can read it and scripts can keep grepping the same tokens the
   one-line rendering used (CI asserts on "replayed=N"). *)
let pp_health ppf (h : Sp.health_resp) =
  Format.fprintf ppf
    "health@,\
     \  uptime=%dms@,\
     \  served=%d fresh=%d stale=%d@,\
     \  shed=%d errors=%d@,\
     \  queue=%d/%d draining=%b@,\
     \  cached_certs=%d replayed=%d@,\
     \  journal_bytes=%d journal_segments=%d"
    h.Sp.h_uptime_ms h.Sp.h_served h.Sp.h_fresh h.Sp.h_stale h.Sp.h_shed
    h.Sp.h_errors h.Sp.h_queue_depth h.Sp.h_queue_capacity h.Sp.h_draining
    h.Sp.h_cached_certs h.Sp.h_replayed h.Sp.h_journal_bytes
    h.Sp.h_journal_segments

let serve_call_cmd =
  let run socket health stats drain crash_test certificate verify gen seed k
      policy distributed deadline_ms fail_p storm =
    let req =
      if health then Sp.Health
      else if stats then Sp.Stats
      else if drain then Sp.Drain
      else if crash_test then Sp.Crash_test
      else
        match gen with
        | None ->
          failwith
            "serve-call needs --gen (or one of \
             --health/--stats/--drain/--crash-test)"
        | Some gen ->
          if certificate then Sp.Certificate { gen }
          else begin
            let d =
              {
                Sp.gen;
                seed;
                k;
                policy;
                distributed;
                deadline_ms;
                fail_p;
                storm = Option.value ~default:"" storm;
              }
            in
            if verify then Sp.Verify d else Sp.Decompose d
          end
    in
    let cl = Serve.Server.Client.connect socket in
    let res = Serve.Server.Client.request cl req in
    Serve.Server.Client.close cl;
    match res with
    | Error m ->
      Format.eprintf "serve-call: transport error: %s@." m;
      exit Exit_codes.failure
    | Ok resp ->
      (match resp with
      | Sp.Health_report h -> Format.printf "@[<v>%a@]@." pp_health h
      | Sp.Stats_report s ->
        (* Prometheus text exposition: exactly what a scrape endpoint
           would serve, pipeable into promtool. Quantile estimates ride
           along as comment lines for the human reading the terminal. *)
        Format.printf "# uptime_ms %d@.%s" s.Sp.s_uptime_ms
          (Obs.Export.prometheus s.Sp.s_metrics);
        List.iter
          (fun (name, h) ->
            if h.Obs.Metrics.h_count > 0 then
              Format.printf "# quantiles %s count=%d p50=%d p99=%d@." name
                h.Obs.Metrics.h_count
                (Obs.Metrics.quantile h 0.50)
                (Obs.Metrics.quantile h 0.99))
          s.Sp.s_metrics.Obs.Metrics.s_hists
      | resp -> Format.printf "%a@." Sp.pp_response resp);
      let code =
        match resp with
        | Sp.Result r ->
          if r.Sp.stale || r.Sp.degraded then Exit_codes.degraded
          else if r.Sp.verified then Exit_codes.ok
          else Exit_codes.failure
        | Sp.Cert c ->
          if c.Sp.c_stale then Exit_codes.degraded else Exit_codes.ok
        | Sp.Health_report _ | Sp.Drained _ | Sp.Stats_report _ ->
          Exit_codes.ok
        | Sp.Error (Sp.Overloaded, _) -> Exit_codes.overloaded
        | Sp.Error (Sp.Bad_request, _) -> Exit_codes.usage
        | Sp.Error _ -> Exit_codes.failure
      in
      if code <> Exit_codes.ok then exit code
  in
  let health_arg =
    Arg.(value & flag & info [ "health" ] ~doc:"Liveness probe; answers \
                                               even under a full queue.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Fetch the metrics snapshot and print it in Prometheus \
                 text exposition format.")
  in
  let drain_arg =
    Arg.(value & flag & info [ "drain" ]
           ~doc:"Stop admission, let the queue empty, shut the daemon down.")
  in
  let crash_arg' =
    Arg.(value & flag & info [ "crash-test" ]
           ~doc:"Test hook: make the worker raise mid-request; the daemon \
                 must answer Internal_error and survive.")
  in
  let cert_arg =
    Arg.(value & flag & info [ "certificate" ]
           ~doc:"Fetch the last cached certificate for --gen (no \
                 recompute).")
  in
  let verify_flag =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Decompose, then independently re-check the certificate.")
  in
  let k_arg =
    Arg.(value & opt nonneg_int_conv 0 & info [ "k" ]
           ~doc:"Connectivity classes to request; 0 lets the daemon \
                 estimate (Corollary 1.7).")
  in
  let policy_arg =
    Arg.(value
         & opt (enum [ ("retry", `Retry); ("repair", `Repair) ]) `Retry
         & info [ "policy" ] ~docv:"POLICY" ~doc:"Recovery policy.")
  in
  let dist_arg =
    Arg.(value & flag & info [ "distributed" ]
           ~doc:"Run on the V-CONGEST runtime (required for fault \
                 injection).")
  in
  let deadline_arg =
    Arg.(value & opt nonneg_int_conv 0 & info [ "deadline-ms" ]
           ~doc:"Per-request deadline; 0 = the daemon's default.")
  in
  Cmd.v
    (Cmd.info "serve-call"
       ~doc:"Send one request to a running daemon and print the reply; \
             exit codes: 0 ok, 1 failure, 2 bad request, 4 \
             degraded/stale, 5 overloaded")
    Term.(const run $ socket_arg $ health_arg $ stats_arg $ drain_arg
          $ crash_arg' $ cert_arg $ verify_flag $ gen_arg $ seed_arg $ k_arg
          $ policy_arg $ dist_arg $ deadline_arg $ fail_p_arg $ storm_arg)

let () =
  let doc = "distributed connectivity decomposition (PODC'14), executable" in
  let info = Cmd.info "decompose" ~version:"1.0.0" ~doc in
  let status =
    (* ~catch:false so model-level failures reach our handlers below
       instead of cmdliner's generic "internal error" report *)
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [
             vertex_cmd; edge_cmd; approx_vc_cmd; gossip_cmd; verified_cmd;
             test_packing_cmd; exact_cmd; serve_cmd; serve_call_cmd;
           ])
    with
    | Congest.Net.Protocol_violation v ->
      (* a CONGEST-model violation is an algorithm bug, not a crash:
         report the offending round/node/edge instead of a backtrace *)
      Format.eprintf "decompose: protocol violation: %a@."
        Congest.Net.pp_violation v;
      Exit_codes.usage
    | Failure msg | Invalid_argument msg ->
      Format.eprintf "decompose: %s@." msg;
      Exit_codes.usage
    | Unix.Unix_error (err, syscall, arg) ->
      (* serve/serve-call socket trouble (daemon not running, stale
         path, permissions): one readable line, not a backtrace *)
      (* lint: allow nondet-clock — renders an errno for the
         diagnostic; no clock or environment is read *)
      let reason = Unix.error_message err in
      Format.eprintf "decompose: %s%s: %s@." syscall
        (if arg = "" then "" else " " ^ arg)
        reason;
      Exit_codes.failure
  in
  exit status
