(* The CLI's one authoritative exit-code table. Every subcommand exits
   through these names — `exit 4` as a scattered magic number is how the
   degraded status drifted between subcommands and docs before this
   module existed.

     0  ok                 success; output verified where applicable
     1  failure            verification failed / violations found /
                           request-level service error
     2  usage              bad invocation, malformed input, model error
     3  replay_divergence  --check found seed-determinism broken
     4  degraded           verified but degraded: fewer classes than
                           requested, or a stale cached certificate
     5  overloaded         the serve daemon shed the request
     6  crash_loop         the supervisor's circuit breaker opened:
                           restarting stopped helping *)

let ok = 0
let failure = 1
let usage = 2
let replay_divergence = 3
let degraded = 4
let overloaded = 5
let crash_loop = 6

let describe = function
  | 0 -> "ok"
  | 1 -> "failure (verification failed or service error)"
  | 2 -> "usage or model error"
  | 3 -> "replay divergence (determinism violated)"
  | 4 -> "verified but degraded (or stale certificate served)"
  | 5 -> "overloaded (request shed by the daemon)"
  | 6 -> "crash loop (supervisor circuit breaker opened)"
  | c -> Printf.sprintf "unknown exit code %d" c
