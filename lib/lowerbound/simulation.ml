module Net = Congest.Net

type report = {
  h : int;
  n : int;
  bandwidth_bits : int;
  implied_round_lower_bound : float;
  measured_rounds : int;
  boundary_bits : int;
  estimate : int;
  truth_small_cut : bool;
}

let bits_per_word ~n =
  4 * int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.))

let bits_per_message ~n = Congest.Model.words_budget ~n * bits_per_word ~n

let two_party_cost ~rounds ~n = 2 * bits_per_message ~n * rounds

let implied_round_lower_bound ~h ~n =
  float_of_int h /. float_of_int (4 * bits_per_message ~n)

let distinguish_via_packing ?(seed = 42) (c : Construction.t) =
  let g = c.Construction.graph in
  let n = Graphs.Graph.n g in
  let net = Net.create Congest.Model.V_congest g in
  Net.set_boundary net (Construction.midline c);
  let result = Domtree.Vc_approx.distributed ~seed net in
  let rounds = Net.rounds net in
  let h = c.Construction.instance.Disjointness.h in
  {
    h;
    n;
    bandwidth_bits = bits_per_message ~n;
    implied_round_lower_bound = implied_round_lower_bound ~h ~n;
    measured_rounds = rounds;
    boundary_bits = Net.boundary_words net * bits_per_word ~n;
    estimate = result.Domtree.Vc_approx.estimate;
    truth_small_cut = Disjointness.intersection c.Construction.instance <> [];
  }

type 'state protocol = {
  init : int -> 'state;
  emit : int -> 'state -> Congest.Net.msg option;
  absorb : int -> 'state -> (int * Congest.Net.msg) list -> 'state;
}

type replay = {
  rounds_simulated : int;
  bits_exchanged : int;
  lemma_bound_bits : int;
  states_match : bool;
}

let flood_min_protocol =
  {
    init = (fun v -> v);
    emit = (fun _ state -> Some [| state |]);
    absorb =
      (fun _ state inbox ->
        List.fold_left (fun acc (_, m) -> min acc m.(0)) state inbox);
  }

(* Per round, every node first broadcasts from its current state, then
   absorbs its inbox. The global run records every broadcast so the split
   run can splice in exactly the hub messages the other player ships. *)
let two_party_replay (c : Construction.t) proto ~rounds ~equal =
  let g = c.Construction.graph in
  let n = Graphs.Graph.n g in
  if rounds > c.Construction.ell then
    invalid_arg "Simulation.two_party_replay: rounds must be <= ell";
  let hubs =
    let a = ref (-1) and b = ref (-1) in
    Array.iteri
      (fun v role ->
        match role with
        | Construction.Hub_a -> a := v
        | Construction.Hub_b -> b := v
        | _ -> ())
      c.Construction.roles;
    (!a, !b)
  in
  let hub_a, hub_b = hubs in
  (* ------- global run (ground truth), recording every broadcast ------- *)
  let state = Array.init n proto.init in
  let broadcasts = Array.make_matrix rounds n None in
  for r = 0 to rounds - 1 do
    for v = 0 to n - 1 do
      broadcasts.(r).(v) <- proto.emit v state.(v)
    done;
    let new_state = Array.copy state in
    for v = 0 to n - 1 do
      let inbox =
        Array.fold_left
          (fun acc u ->
            match broadcasts.(r).(u) with
            | Some m -> (u, m) :: acc
            | None -> acc)
          []
          (Graphs.Graph.neighbors g v)
      in
      new_state.(v) <- proto.absorb v state.(v) (List.rev inbox)
    done;
    Array.blit new_state 0 state 0 n
  done;
  let global_final = state in
  (* ------- split run: Alice & Bob, exchanging only hub messages ------- *)
  let run_side ~mine ~other_hub =
    (* [mine r v]: does this player simulate v at round r entry?
       The player's knowledge: states of its nodes; each round it needs
       the broadcasts of all neighbors of its (next-round) set — all of
       which it simulates itself, except the other player's hub. *)
    let st = Array.init n proto.init in
    let bits = ref 0 in
    for r = 0 to rounds - 1 do
      let outgoing =
        Array.init n (fun v ->
            if mine r v then proto.emit v st.(v) else None)
      in
      (* splice in the other hub's broadcast, shipped across the table *)
      (match broadcasts.(r).(other_hub) with
      | Some m ->
        bits := !bits + (Array.length m * bits_per_word ~n);
        outgoing.(other_hub) <- Some m
      | None -> ());
      for v = 0 to n - 1 do
        if mine (r + 1) v then begin
          let inbox =
            Array.fold_left
              (fun acc u ->
                match outgoing.(u) with
                | Some m -> (u, m) :: acc
                | None -> acc)
              []
              (Graphs.Graph.neighbors g v)
          in
          st.(v) <- proto.absorb v st.(v) (List.rev inbox)
        end
      done
    done;
    (st, !bits)
  in
  let alice_final, alice_bits =
    run_side ~mine:(fun r v -> Construction.alice_side c r v) ~other_hub:hub_b
  in
  let bob_final, bob_bits =
    run_side ~mine:(fun r v -> Construction.bob_side c r v) ~other_hub:hub_a
  in
  (* every node still simulated at round T by one of the players must
     match the global run *)
  let states_match = ref true in
  for v = 0 to n - 1 do
    let r = rounds in
    if Construction.alice_side c r v then begin
      if not (equal alice_final.(v) global_final.(v)) then states_match := false
    end
    else if Construction.bob_side c r v then
      if not (equal bob_final.(v) global_final.(v)) then states_match := false
  done;
  {
    rounds_simulated = rounds;
    bits_exchanged = alice_bits + bob_bits;
    lemma_bound_bits = two_party_cost ~rounds ~n;
    states_match = !states_match;
  }
