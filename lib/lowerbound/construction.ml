module Graph = Graphs.Graph

type node_role =
  | Heavy of int * int * int
  | Hub_a
  | Hub_b
  | Sel_x of int
  | Sel_y of int

type t = {
  graph : Graph.t;
  instance : Disjointness.t;
  ell : int;
  w : int;
  roles : node_role array;
}

let build (inst : Disjointness.t) ~ell ~w =
  if ell < 1 || w < 1 then invalid_arg "Construction.build: ell, w >= 1";
  let h = inst.Disjointness.h in
  let paths = h + 1 in
  let heavy_total = paths * 2 * ell * w in
  (* id layout: heavy blocks first, then a, b, then u_x, v_y *)
  let heavy_base p q = (((p * 2 * ell) + (q - 1)) * w) in
  let a_id = heavy_total in
  let b_id = heavy_total + 1 in
  let xs = Array.of_list inst.Disjointness.x in
  let ys = Array.of_list inst.Disjointness.y in
  let ux_id =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i x -> Hashtbl.replace tbl x (heavy_total + 2 + i)) xs;
    tbl
  in
  let vy_id =
    let tbl = Hashtbl.create 8 in
    Array.iteri
      (fun i y -> Hashtbl.replace tbl y (heavy_total + 2 + Array.length xs + i))
      ys;
    tbl
  in
  let n = heavy_total + 2 + Array.length xs + Array.length ys in
  let edges = ref [] in
  let add u v = edges := (u, v) :: !edges in
  (* heavy node as clique; heavy-heavy edge as complete bipartite *)
  let clique p q =
    for i = 0 to w - 1 do
      for j = i + 1 to w - 1 do
        add (heavy_base p q + i) (heavy_base p q + j)
      done
    done
  in
  let join_heavy (p1, q1) (p2, q2) =
    for i = 0 to w - 1 do
      for j = 0 to w - 1 do
        add (heavy_base p1 q1 + i) (heavy_base p2 q2 + j)
      done
    done
  in
  let join_light_heavy light (p, q) =
    for i = 0 to w - 1 do
      add light (heavy_base p q + i)
    done
  in
  for p = 0 to paths - 1 do
    for q = 1 to 2 * ell do
      clique p q;
      if q < 2 * ell then join_heavy (p, q) (p, q + 1)
    done
  done;
  (* left end attachments *)
  for x = 1 to h do
    if List.mem x inst.Disjointness.x then begin
      let u = Hashtbl.find ux_id x in
      join_light_heavy u (0, 1);
      join_light_heavy u (x, 1)
    end
    else join_heavy (0, 1) (x, 1)
  done;
  (* right end attachments *)
  for y = 1 to h do
    if List.mem y inst.Disjointness.y then begin
      let v = Hashtbl.find vy_id y in
      join_light_heavy v (0, 2 * ell);
      join_light_heavy v (y, 2 * ell)
    end
    else join_heavy (0, 2 * ell) (y, 2 * ell)
  done;
  (* hubs *)
  add a_id b_id;
  (* lint: allow hashtbl-order — edge multiset only; Graph.of_edges
     canonicalizes edge and adjacency order *)
  Hashtbl.iter (fun _ u -> add a_id u) ux_id;
  (* lint: allow hashtbl-order — edge multiset only, as above *)
  Hashtbl.iter (fun _ v -> add b_id v) vy_id;
  for p = 0 to paths - 1 do
    for q = 1 to 2 * ell do
      let hub = if q <= ell then a_id else b_id in
      join_light_heavy hub (p, q)
    done
  done;
  let roles = Array.make n Hub_a in
  for p = 0 to paths - 1 do
    for q = 1 to 2 * ell do
      for i = 0 to w - 1 do
        roles.(heavy_base p q + i) <- Heavy (p, q, i)
      done
    done
  done;
  roles.(a_id) <- Hub_a;
  roles.(b_id) <- Hub_b;
  (* lint: allow hashtbl-order — one write per distinct index, order-free *)
  Hashtbl.iter (fun x id -> roles.(id) <- Sel_x x) ux_id;
  (* lint: allow hashtbl-order — one write per distinct index, order-free *)
  Hashtbl.iter (fun y id -> roles.(id) <- Sel_y y) vy_id;
  {
    graph = Graph.of_edges ~n !edges;
    instance = inst;
    ell;
    w;
    roles;
  }

(* V'_A(r): a, the u_x, and heavy nodes with q < 2ℓ - r;
   V'_B(r): b, the v_y, and heavy nodes with q > r + 1. *)
let alice_side t r node =
  match t.roles.(node) with
  | Hub_a | Sel_x _ -> true
  | Heavy (_, q, _) -> q < (2 * t.ell) - r
  | Hub_b | Sel_y _ -> false

let bob_side t r node =
  match t.roles.(node) with
  | Hub_b | Sel_y _ -> true
  | Heavy (_, q, _) -> q > r + 1
  | Hub_a | Sel_x _ -> false

let midline t node =
  match t.roles.(node) with
  | Hub_a | Sel_x _ -> true
  | Heavy (_, q, _) -> q <= t.ell
  | Hub_b | Sel_y _ -> false

let cut_dichotomy t =
  let k = Graphs.Connectivity.vertex_connectivity t.graph in
  match Disjointness.intersection t.instance with
  | [ z ] ->
    let ids = ref [] in
    Array.iteri
      (fun id role ->
        match role with
        | Hub_a | Hub_b -> ids := id :: !ids
        | Sel_x x when x = z -> ids := id :: !ids
        | Sel_y y when y = z -> ids := id :: !ids
        | _ -> ())
      t.roles;
    (k, Some (List.sort compare !ids))
  | _ -> (k, None)

let diameter_ok t = Graphs.Traversal.diameter t.graph <= 3
