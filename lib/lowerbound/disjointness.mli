(** Two-party set-disjointness instances over the universe [1..h] with
    the promise |X ∩ Y| <= 1 (the problem whose Ω(h) randomized
    communication lower bound [Razborov '92] drives Theorem G.2). *)

type t = {
  h : int;
  x : int list;  (** Alice's set, sorted *)
  y : int list;  (** Bob's set, sorted *)
}

(** The promise holds and elements are in range. *)
val is_valid : t -> bool

val intersection : t -> int list

(** [random_disjoint rng ~h ~density] samples disjoint X, Y: each
    element goes to X, to Y, or to neither. *)
val random_disjoint : Random.State.t -> h:int -> density:float -> t

(** [random_intersecting rng ~h ~density] additionally plants exactly
    one common element. *)
val random_intersecting : Random.State.t -> h:int -> density:float -> t
