(** The Appendix G lower-bound graph family (Fig. 3).

    The weighted graph H(X,Y) has h+1 paths of 2ℓ heavy (weight-w)
    nodes; the left/right ends of path 0 are connected to the ends of
    path x directly when x ∉ X (resp. y ∉ Y) and through a light node
    u_x (resp. v_y) when x ∈ X (resp. y ∈ Y); two hub nodes a, b give
    diameter 3. The unweighted G(X,Y) replaces heavy nodes by
    w-cliques and edges by complete bipartite graphs.

    Lemma G.4 (realized by {!cut_dichotomy}): if X ∩ Y = ∅ every vertex
    cut has size >= w; if X ∩ Y = \{z\} the minimum cut is exactly
    \{a, b, u_z, v_z\} of size 4. *)

type node_role =
  | Heavy of int * int * int  (** (path p, position q, clique index) *)
  | Hub_a
  | Hub_b
  | Sel_x of int  (** u_x *)
  | Sel_y of int  (** v_y *)

type t = {
  graph : Graphs.Graph.t;
  instance : Disjointness.t;
  ell : int;  (** half path length ℓ *)
  w : int;  (** heavy-node weight / clique size *)
  roles : node_role array;  (** node id -> role *)
}

(** [build inst ~ell ~w] constructs G(X,Y). *)
val build : Disjointness.t -> ell:int -> w:int -> t

(** [alice_side t r] / [bob_side t r]: the V'_A(r) / V'_B(r) node sets of
    Lemma G.6 as membership predicates (meaningful for 0 <= r <= ℓ). *)
val alice_side : t -> int -> int -> bool

val bob_side : t -> int -> int -> bool

(** The node partition used for boundary accounting: Alice's half
    (V'_A(0)), everything else Bob's. *)
val midline : t -> int -> bool

(** Structural checks of Lemmas G.3/G.4 (exact, so small instances only):
    returns [(vertex_connectivity, expected_small_cut)] where
    [expected_small_cut] = [Some [a;b;u_z;v_z]] on intersecting
    instances. *)
val cut_dichotomy : t -> int * int list option

(** Diameter <= 3 (Lemma G.4 last part). *)
val diameter_ok : t -> bool
