type t = {
  h : int;
  x : int list;
  y : int list;
}

let is_valid t =
  let ok_range l = List.for_all (fun e -> e >= 1 && e <= t.h) l in
  let inter = List.filter (fun e -> List.mem e t.y) t.x in
  ok_range t.x && ok_range t.y
  && List.length inter <= 1
  && t.x = List.sort_uniq compare t.x
  && t.y = List.sort_uniq compare t.y

let intersection t = List.filter (fun e -> List.mem e t.y) t.x

let random_disjoint rng ~h ~density =
  let x = ref [] and y = ref [] in
  for e = h downto 1 do
    let r = Random.State.float rng 1.0 in
    if r < density /. 2. then x := e :: !x
    else if r < density then y := e :: !y
  done;
  { h; x = !x; y = !y }

let random_intersecting rng ~h ~density =
  (* the base sets are disjoint, so planting one common element z yields
     an intersection of exactly {z} *)
  let base = random_disjoint rng ~h ~density in
  let z = 1 + Random.State.int rng h in
  {
    base with
    x = List.sort_uniq compare (z :: base.x);
    y = List.sort_uniq compare (z :: base.y);
  }
