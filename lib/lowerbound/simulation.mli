(** The Appendix G reduction, executable (Lemma G.5/G.6, Theorem G.2).

    Lemma G.6: a T-round protocol on G(X,Y) in which the hubs a and b
    broadcast at most B bits per round can be simulated by Alice
    (holding V'_A(0)) and Bob (holding V'_B(0)) exchanging 2·B·T bits —
    per round, Alice only needs b's broadcast and Bob only a's, because
    every other crossing message is between heavy nodes both players can
    still simulate (the simulated node sets shrink by one path position
    per round, which is why T <= ℓ is required).

    Razborov: deciding |X ∩ Y| = 0 vs 1 needs Ω(h) bits, so
    T = Ω(h / B): with n = Θ(h·ℓ·αk) and ℓ = h / log n this is the
    Ω~(√(n/(αk))) round bound of Theorem G.2. *)

type report = {
  h : int;
  n : int;
  bandwidth_bits : int;  (** B: bits per hub broadcast per round *)
  implied_round_lower_bound : float;  (** h / (4·B) *)
  measured_rounds : int;  (** rounds of the distinguishing run *)
  boundary_bits : int;  (** bits that crossed the Alice/Bob midline *)
  estimate : int;  (** the connectivity estimate the protocol produced *)
  truth_small_cut : bool;  (** instance was intersecting (k = 4) *)
}

(** [bits_per_message ~n] — the O(log n) message size in bits (4⌈log₂n⌉
    per word times the word budget). *)
val bits_per_message : n:int -> int

(** [two_party_cost ~rounds ~n] = 2·B·T, the Lemma G.6 simulation cost in
    bits. *)
val two_party_cost : rounds:int -> n:int -> int

(** [implied_round_lower_bound ~h ~n] = h / (4·B): the Theorem G.2 round
    bound for this instance size (constant 1/4 standing in for the
    Razborov constant). *)
val implied_round_lower_bound : h:int -> n:int -> float

(** [distinguish_via_packing ?seed construction] runs the distributed
    vertex-connectivity approximation (Corollary 1.7) on G(X,Y) with
    midline boundary accounting, and reports the measured quantities
    next to the implied lower bound. *)
val distinguish_via_packing : ?seed:int -> Construction.t -> report

(** {1 Lemma G.5/G.6, literally executed}

    A {e local protocol} is a per-node synchronous state machine: each
    round every node turns its state and inbox into a new state and an
    optional broadcast. The two-party simulation runs it twice — once
    globally, once split between Alice (simulating V'_A(r) at round r)
    and Bob (V'_B(r)) where the only information crossing the table is
    what the hubs a and b broadcast (at most B bits each per round) —
    and checks the split run reproduces the global run exactly. *)

type 'state protocol = {
  init : int -> 'state;  (** node id -> initial state *)
  emit : int -> 'state -> Congest.Net.msg option;
      (** what the node broadcasts this round *)
  absorb : int -> 'state -> (int * Congest.Net.msg) list -> 'state;
      (** state update from the received inbox *)
}

type replay = {
  rounds_simulated : int;
  bits_exchanged : int;  (** words x word-bits actually sent between the players *)
  lemma_bound_bits : int;  (** 2·B·T *)
  states_match : bool;  (** split run == global run on every simulated node *)
}

(** [two_party_replay construction protocol ~rounds ~equal] runs
    [protocol] for [rounds <= ell] rounds both ways. [equal] compares
    states. The Alice/Bob exchange is exactly the hubs' broadcasts. *)
val two_party_replay :
  Construction.t -> 'state protocol -> rounds:int ->
  equal:('state -> 'state -> bool) -> replay

(** [flood_min_protocol] — the simple protocol used by the experiment:
    every node floods the minimum id it has heard. *)
val flood_min_protocol : int protocol
