(** The general-λ fractional spanning-tree packing (§5.2): random edge
    partition into η ≈ λ/Θ(log n) subgraphs (Karger sampling keeps each
    subgraph's connectivity near λ/η w.h.p.), independent §5.1 packings
    inside each subgraph, and the union of the results. Edge-disjointness
    of the parts makes the union automatically feasible. *)

type result = {
  packing : Spacking.t;  (** union packing on the original graph *)
  eta : int;  (** number of subgraphs used *)
  part_lambdas : int list;  (** per-part edge connectivity *)
  parts_used : int;  (** parts that were connected and got packed *)
}

(** [run ?seed ?eps g ~lambda] packs connected [g] with edge connectivity
    (estimate) [lambda]. For λ below the sampling threshold this
    degenerates to a single §5.1 run (η = 1). *)
val run : ?seed:int -> ?eps:float -> Graphs.Graph.t -> lambda:int -> result

(** [run_auto ?seed ?eps g] first computes a λ estimate (exact
    Stoer–Wagner here, standing in for the Ghaffari–Kuhn 3-approximation
    the paper invokes) and then runs [run]. *)
val run_auto : ?seed:int -> ?eps:float -> Graphs.Graph.t -> result
