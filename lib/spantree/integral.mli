(** Integral spanning-tree packings.

    - [peel]: greedily extract edge-disjoint spanning trees (each a BFS
      tree of the remaining edges) until the residual graph disconnects.
      A graph with edge connectivity λ yields at least ⌈λ/2⌉ trees? No —
      greedy peeling guarantees only λ/O(log n) in general, which is
      exactly the "considerably simpler variant" bound Ω(λ/log n) the
      paper states; Tutte/Nash-Williams' ⌈(λ-1)/2⌉ needs matroid
      machinery that the fractional route sidesteps.
    - [sampled_peel]: §5.2-style — partition edges into η ≈ λ/Θ(log n)
      parts and peel each part, giving Ω(λ/log n) trees w.h.p. *)

(** [peel g] is a list of edge-disjoint spanning trees of [g] (each an
    edge list), greedily extracted. Empty if [g] is disconnected. *)
val peel : Graphs.Graph.t -> (int * int) list list

(** [sampled_peel ?seed ?eps g ~lambda] peels inside Karger parts. *)
val sampled_peel :
  ?seed:int -> ?eps:float -> Graphs.Graph.t -> lambda:int -> (int * int) list list

(** [to_packing g trees] wraps integral trees as a weight-1 packing
    (valid because the trees are edge-disjoint). *)
val to_packing : Graphs.Graph.t -> (int * int) list list -> Spacking.t
