(** The "considerably simpler variant" of Theorem 1.3 (§1.2): an
    {e integral} spanning-tree packing of size Ω(λ/log n) in
    O~(D + √(nλ)) rounds — Karger-partition the edges into
    η = Θ(λ/log n) subgraphs (each still connected w.h.p.), and compute
    one spanning tree per subgraph with the distributed MST. The trees
    are edge-disjoint by construction. *)

type result = {
  trees : (int * int) list list;  (** edge-disjoint spanning trees *)
  eta : int;
  rounds : int;
  parts_connected : int;  (** subgraphs that yielded a spanning tree *)
}

(** [run ?seed ?eps net ~lambda] — λ (or an estimate) chooses η. *)
val run : ?seed:int -> ?eps:float -> Congest.Net.t -> lambda:int -> result
