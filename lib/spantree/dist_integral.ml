module Graph = Graphs.Graph
module Net = Congest.Net

type result = {
  trees : (int * int) list list;
  eta : int;
  rounds : int;
  parts_connected : int;
}

let run ?(seed = 42) ?(eps = 0.3) net ~lambda =
  let g = Net.graph net in
  let n = Graph.n g in
  let eta = max 1 (Graphs.Sampling.suggested_eta ~lambda ~n ~eps) in
  let rng = Random.State.make [| seed; n; lambda; 31 |] in
  let parts = Graphs.Sampling.edge_partition rng g ~eta in
  let start = Net.checkpoint net in
  let trees = ref [] in
  let parts_connected = ref 0 in
  Array.iter
    (fun part ->
      let edge_in u v = Graph.mem_edge part u v in
      let forest =
        Congest.Dist_mst.minimum_spanning_forest_on net
          ~active:(fun _ -> true)
          ~edge_active:edge_in
          ~weight:(fun _ _ -> 1)
      in
      if List.length forest = n - 1 then begin
        incr parts_connected;
        trees := forest :: !trees
      end)
    parts;
  {
    trees = List.rev !trees;
    eta;
    rounds = Net.rounds_since net start;
    parts_connected = !parts_connected;
  }
