module Graph = Graphs.Graph

type wtree = {
  edges : (int * int) list;
  weight : float;
}

type t = {
  graph : Graph.t;
  trees : wtree list;
}

let size p = List.fold_left (fun acc tr -> acc +. tr.weight) 0. p.trees
let count p = List.length p.trees

let edge_loads p =
  let loads = Array.make (Graph.m p.graph) 0. in
  List.iter
    (fun tr ->
      List.iter
        (fun (u, v) ->
          match Graph.edge_index p.graph u v with
          | i -> loads.(i) <- loads.(i) +. tr.weight
          | exception Not_found -> ())
        tr.edges)
    p.trees;
  loads

let edge_load p u v =
  List.fold_left
    (fun acc tr ->
      if List.exists (fun (a, b) -> (a, b) = (min u v, max u v)) tr.edges then
        acc +. tr.weight
      else acc)
    0. p.trees

let max_edge_load p = Array.fold_left Float.max 0. (edge_loads p)

let max_edge_multiplicity p =
  let counts = Array.make (max 1 (Graph.m p.graph)) 0 in
  List.iter
    (fun tr ->
      List.iter
        (fun (u, v) ->
          match Graph.edge_index p.graph u v with
          | i -> counts.(i) <- counts.(i) + 1
          | exception Not_found -> ())
        tr.edges)
    p.trees;
  Array.fold_left max 0 counts

type violation =
  | Not_spanning of int
  | Edge_outside_graph of int
  | Overloaded_edge of (int * int) * float
  | Bad_weight of int

let pp_violation ppf = function
  | Not_spanning i -> Format.fprintf ppf "tree %d: not a spanning tree" i
  | Edge_outside_graph i -> Format.fprintf ppf "tree %d: edge outside graph" i
  | Overloaded_edge ((u, v), l) ->
    Format.fprintf ppf "edge (%d,%d): load %.4f > 1" u v l
  | Bad_weight i -> Format.fprintf ppf "tree %d: weight outside [0,1]" i

let verify ?(tolerance = 1e-9) p =
  let g = p.graph in
  let n = Graph.n g in
  let violations = ref [] in
  List.iteri
    (fun idx tr ->
      if tr.weight < -.tolerance || tr.weight > 1. +. tolerance then
        violations := Bad_weight idx :: !violations;
      if not (List.for_all (fun (u, v) -> Graph.mem_edge g u v) tr.edges) then
        violations := Edge_outside_graph idx :: !violations;
      if not (Graphs.Mst.is_spanning_tree ~n tr.edges) then
        violations := Not_spanning idx :: !violations)
    p.trees;
  let loads = edge_loads p in
  Array.iteri
    (fun i l ->
      if l > 1. +. tolerance then
        violations := Overloaded_edge ((Graph.edges g).(i), l) :: !violations)
    loads;
  List.rev !violations

let is_valid ?tolerance p = verify ?tolerance p = []

let scale p factor =
  {
    p with
    trees = List.map (fun tr -> { tr with weight = tr.weight *. factor }) p.trees;
  }

let normalize_to_unit_load p =
  let l = max_edge_load p in
  if l <= 0. then p else scale p (1. /. l)
