(** Edge-connectivity estimation from a spanning-tree packing: a packing
    of size s certifies λ >= ⌊s⌋ + 1 - ish lower bounds and the
    Tutte/Nash-Williams bound says s can reach ⌈(λ-1)/2⌉, so
    λ̂ = 2s + 1 is a constant-factor estimate (the §5 counterpart of
    Corollary 1.7; the exact Stoer–Wagner value serves as ground
    truth). *)

type result = {
  estimate : int;  (** λ̂ = round(2·size + 1) *)
  packing_size : float;
  truth : int;  (** exact Stoer–Wagner edge connectivity *)
}

(** [centralized ?seed g] — §5.2 packing, then estimate. *)
val centralized : ?seed:int -> Graphs.Graph.t -> result

(** [estimate_of_size s] = round(2s + 1). *)
val estimate_of_size : float -> int
