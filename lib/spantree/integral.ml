module Graph = Graphs.Graph

(* A degree-balanced spanning tree: repeatedly add the component-joining
   edge whose endpoints carry the fewest tree edges so far. Keeping tree
   degrees low means no vertex loses its whole residual neighborhood to
   one peel (a BFS tree would isolate its root immediately). O(nm). *)
let spanning_tree_if_connected g =
  if Graph.n g = 0 || not (Graphs.Traversal.is_connected g) then None
  else begin
    let n = Graph.n g in
    let uf = Graphs.Union_find.create n in
    let tdeg = Array.make n 0 in
    let chosen = ref [] in
    for _pick = 1 to n - 1 do
      let best = ref None in
      Graph.iter_edges
        (fun u v ->
          if not (Graphs.Union_find.same uf u v) then begin
            let key = (max tdeg.(u) tdeg.(v), tdeg.(u) + tdeg.(v), u, v) in
            match !best with
            | Some (k, _, _) when k <= key -> ()
            | _ -> best := Some (key, u, v)
          end)
        g;
      match !best with
      | Some (_, u, v) ->
        ignore (Graphs.Union_find.union uf u v);
        tdeg.(u) <- tdeg.(u) + 1;
        tdeg.(v) <- tdeg.(v) + 1;
        chosen := (min u v, max u v) :: !chosen
      | None -> ()
    done;
    Some (List.sort compare !chosen)
  end

let peel g0 =
  let rec go g acc =
    match spanning_tree_if_connected g with
    | None -> List.rev acc
    | Some tree ->
      let in_tree = Hashtbl.create 64 in
      List.iter (fun e -> Hashtbl.replace in_tree e ()) tree;
      let g' =
        Graph.spanning_subgraph g (fun u v ->
            not (Hashtbl.mem in_tree (min u v, max u v)))
      in
      go g' (tree :: acc)
  in
  go g0 []

let sampled_peel ?(seed = 42) ?(eps = 0.15) g ~lambda =
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; lambda; 5 |] in
  let eta = Graphs.Sampling.suggested_eta ~lambda ~n ~eps in
  if eta <= 1 then peel g
  else begin
    let parts = Graphs.Sampling.edge_partition rng g ~eta in
    Array.fold_left (fun acc h -> acc @ peel h) [] parts
  end

let to_packing g trees =
  {
    Spacking.graph = g;
    trees = List.map (fun es -> { Spacking.edges = es; weight = 1. }) trees;
  }
