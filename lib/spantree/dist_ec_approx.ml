module Graph = Graphs.Graph
module Net = Congest.Net

type result = {
  estimate : int;
  guesses_tried : int;
  rounds : int;
}

(* Deterministic per-edge coin: both endpoints compute the same value
   from (min u v, max u v, seed, trial) — shared randomness without
   communication. A small 64-bit mix suffices here. *)
let edge_coin ~seed ~trial u v =
  let a = min u v and b = max u v in
  let h = ref (seed * 0x9E3779B1) in
  let mix x = h := (!h lxor (x + 0x7F4A7C15 + (!h lsl 6) + (!h lsr 2))) land max_int in
  mix a;
  mix b;
  mix trial;
  float_of_int (!h land 0xFFFFFF) /. float_of_int 0x1000000

let connected_under_sampling net ~p ~seed ~trial =
  let keep u v = edge_coin ~seed ~trial u v < p in
  let labels =
    Congest.Components.identify net
      ~active:(fun _ -> true)
      ~edge_active:(fun u v -> keep u v)
  in
  Array.for_all (fun l -> l = labels.(0)) labels

let run ?(seed = 42) ?(trials = 3) net =
  let g = Net.graph net in
  let n = Graph.n g in
  let start = Net.checkpoint net in
  let c_log_n = 2.0 *. log (float_of_int (max 2 n)) in
  (* doubling search downward: the largest guess whose samples all stay
     connected. Guess = min degree is an upper bound on lambda, learned
     with one flood (min over the network of each node's degree would be
     a lower bound on max guess; we just start at min degree). *)
  let min_deg = Graph.min_degree g in
  let rec search guess tried =
    if guess <= 1 then (1, tried)
    else begin
      let p = Float.min 1.0 (c_log_n /. float_of_int guess) in
      let ok = ref true in
      for trial = 1 to trials do
        if !ok then
          ok := connected_under_sampling net ~p ~seed ~trial
      done;
      if !ok then (guess, tried + 1) else search (guess / 2) (tried + 1)
    end
  in
  let estimate, guesses_tried = search (max 1 min_deg) 0 in
  { estimate; guesses_tried; rounds = Net.rounds_since net start }
