type result = {
  estimate : int;
  packing_size : float;
  truth : int;
}

let estimate_of_size s = int_of_float (Float.round ((2. *. s) +. 1.))

let centralized ?seed g =
  let truth = Graphs.Connectivity.edge_connectivity g in
  let r = Sampling_pack.run ?seed g ~lambda:(max 1 truth) in
  let s = Spacking.size r.Sampling_pack.packing in
  { estimate = estimate_of_size s; packing_size = s; truth }
