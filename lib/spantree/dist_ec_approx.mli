(** Distributed edge-connectivity estimation by sampling — the stand-in
    for the Ghaffari–Kuhn min-cut 3-approximation [21] that §5.2 invokes
    to pick η.

    Karger's theorem: sampling each edge with probability p keeps the
    graph connected w.h.p. when p·λ ≳ log n, and disconnects it w.h.p.
    when p·λ ≪ log n. So a doubling search over guesses λ̃, testing per
    guess whether a few p = Θ(log n/λ̃)-samples stay connected
    (distributed component identification), brackets λ within an O(1)
    factor w.h.p. — entirely with CONGEST-implementable steps.

    Edge sampling uses a deterministic hash of (edge, seed, trial), the
    shared-randomness idiom: both endpoints evaluate the same coin
    locally, no message needed. *)

type result = {
  estimate : int;  (** λ̃ *)
  guesses_tried : int;
  rounds : int;  (** rounds consumed on the runtime *)
}

(** [run ?seed ?trials net] estimates λ of the (connected) network.
    [trials] (default 3) samples per guess; all must stay connected to
    accept a guess. *)
val run : ?seed:int -> ?trials:int -> Congest.Net.t -> result
