(** The §5.1 fractional spanning-tree packing for λ = O(log n): the
    Lagrangian-relaxation / multiplicative-weights iteration.

    A collection of weighted trees with total weight 1 is maintained.
    Per iteration: edge loads x_e, normalized loads z_e = x_e·⌈(λ-1)/2⌉,
    costs c_e = exp(α z_e) with α = Θ(log n); the MST under c is either
    the certificate to stop (Cost(MST) > (1-ε)·Σ c_e x_e, Lemma F.1:
    max z_e ≤ 1+6ε) or is blended in with weight β = Θ(1/(α log n)).
    Lemma F.2 caps the iterations at Θ(log³ n).

    The final collection, scaled by ⌈(λ-1)/2⌉ and normalized to unit
    edge load, is a fractional spanning-tree packing of size
    ⌈(λ-1)/2⌉·(1-O(ε)) — Theorem 1.3's guarantee. *)

type trace = {
  iterations : int;
  stopped_by_rule : bool;  (** the Lemma F.1 certificate fired *)
  max_z_history : float list;  (** max_e z_e after each iteration *)
}

type result = {
  packing : Spacking.t;  (** normalized: unit max edge load *)
  collection : Spacking.t;  (** the raw weight-1 collection *)
  trace : trace;
}

(** [run ?eps ?max_iterations ?capacity g ~lambda] packs connected [g]
    whose edge connectivity (or a lower-bound estimate of it) is
    [lambda >= 1]. [eps] defaults to 0.15; iterations default to
    Θ(log³ n). [capacity] (default all-1) generalizes to capacitated
    edges — the Barahona-style weighted packing: per-edge load must stay
    within [capacity u v], and the normalized load z_e divides by it. *)
val run :
  ?eps:float -> ?max_iterations:int -> ?capacity:(int -> int -> float) ->
  Graphs.Graph.t -> lambda:int -> result

(** The paper's target ⌈(λ-1)/2⌉ (at least 1 so a single spanning tree
    is always achievable on a connected graph). *)
val target : lambda:int -> int

(** Default iteration cap Θ(log³ n). *)
val default_iterations : n:int -> int
