(** Distributed fractional spanning-tree packing (Theorem 1.3) on the
    E-CONGEST runtime.

    Each §5.1 iteration runs the distributed MST of {!Congest.Dist_mst}
    with edge weights z_e rounded to multiples of 1/n (the footnote-6
    encoding), then the leader decides continuation via a convergecast /
    broadcast over the BFS tree (charged as rounds on the runtime).

    For general λ ([run_sampled], §5.2): edges are Karger-partitioned
    into η subgraphs, each packed the same way. Because the parts are
    edge-disjoint, their per-iteration MSTs exchange messages over
    disjoint edges and can be pipelined over one shared BFS tree (Lemma
    5.1); the runtime executes them sequentially and additionally
    reports the pipelined round estimate [parallel_rounds] =
    Σ_iterations (max over parts + coordination). *)

type result = {
  packing : Spacking.t;
  iterations : int;  (** total §5.1 iterations across parts *)
  measured_rounds : int;  (** rounds actually consumed on the runtime *)
  parallel_rounds : int;  (** Lemma 5.1 pipelined estimate *)
  eta : int;
}

(** [run ?eps ?max_iterations ?mst net ~lambda] — single-subgraph case
    (λ = O(log n) regime). [mst] selects the distributed MST black box:
    [`Flooding] (default; GHS/Borůvka with intra-fragment flooding) or
    [`Pipelined] (the Kutten–Peleg O~(D+√n)-shaped variant the paper
    cites as [37]). *)
val run :
  ?eps:float -> ?max_iterations:int -> ?mst:[ `Flooding | `Pipelined ] ->
  Congest.Net.t -> lambda:int -> result

(** [run_sampled ?seed ?eps net ~lambda] — the general case. *)
val run_sampled : ?seed:int -> ?eps:float -> Congest.Net.t -> lambda:int -> result

(** [run_auto ?seed ?eps net] first estimates λ with the distributed
    sampling search ({!Dist_ec_approx}, the paper's [21] step), then
    runs [run_sampled]; all rounds accumulate on [net]. *)
val run_auto : ?seed:int -> ?eps:float -> Congest.Net.t -> result
