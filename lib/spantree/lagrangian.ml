module Graph = Graphs.Graph

type trace = {
  iterations : int;
  stopped_by_rule : bool;
  max_z_history : float list;
}

type result = {
  packing : Spacking.t;
  collection : Spacking.t;
  trace : trace;
}

let target ~lambda = max 1 ((lambda - 1 + 1) / 2)

let default_iterations ~n =
  let lg = log (float_of_int (max 2 n)) /. log 2. in
  max 32 (int_of_float (ceil (lg ** 3.)))

let run ?(eps = 0.15) ?max_iterations ?capacity g ~lambda =
  if not (Graphs.Traversal.is_connected g) then
    invalid_arg "Lagrangian.run: disconnected graph";
  let n = Graph.n g in
  let m = Graph.m g in
  let cap =
    match capacity with
    | None -> Array.make m 1.
    | Some f ->
      Array.map
        (fun (u, v) ->
          let c = f u v in
          if c <= 0. then invalid_arg "Lagrangian.run: capacity <= 0";
          c)
        (Graph.edges g)
  in
  let tgt = float_of_int (target ~lambda) in
  let alpha = Float.max 2. (log (float_of_int (max 2 n))) in
  let beta = 1. /. (alpha *. Float.max 2. (log (float_of_int (max 2 n)))) in
  let max_iterations =
    match max_iterations with Some i -> i | None -> default_iterations ~n
  in
  (* collection state: list of (edge list, weight ref); loads maintained
     incrementally over the canonical edge index *)
  let loads = Array.make m 0. in
  let trees = ref [] in
  let add_tree edges weight =
    (* decay existing weights, then append *)
    trees := List.map (fun (es, w) -> (es, w *. (1. -. weight))) !trees;
    Array.iteri (fun i x -> loads.(i) <- x *. (1. -. weight)) loads;
    List.iter
      (fun (u, v) ->
        let i = Graph.edge_index g u v in
        loads.(i) <- loads.(i) +. weight)
      edges;
    trees := (edges, weight) :: !trees
  in
  (* initial arbitrary tree with weight 1: BFS tree of the graph *)
  let initial =
    let _, parent = Graphs.Traversal.bfs_tree g 0 in
    let acc = ref [] in
    Array.iteri
      (fun v p -> if p >= 0 && p <> v then acc := (min v p, max v p) :: !acc)
      parent;
    List.sort compare !acc
  in
  add_tree initial 1.;
  let z_of i = loads.(i) *. tgt /. cap.(i) in
  let max_z () =
    let best = ref 0. in
    for i = 0 to m - 1 do
      if z_of i > !best then best := z_of i
    done;
    !best
  in
  let history = ref [] in
  let stopped = ref false in
  let iterations = ref 0 in
  while (not !stopped) && !iterations < max_iterations do
    incr iterations;
    let zmax = max_z () in
    (* costs in shifted log-space to avoid overflow: ĉ_e = exp(α(z_e -
       zmax)); the stop rule is scale-invariant *)
    let cost i = exp (alpha *. (z_of i -. zmax)) in
    let weight u v = cost (Graph.edge_index g u v) in
    let mst = Graphs.Mst.minimum_spanning_tree g ~weight in
    let mst_cost =
      List.fold_left (fun acc (u, v) -> acc +. weight u v) 0. mst
    in
    (* Σ_e c_e x_e, in the same shifted scale as mst_cost *)
    let sum_cx =
      let acc = ref 0. in
      for i = 0 to m - 1 do
        acc := !acc +. (cost i *. loads.(i))
      done;
      !acc
    in
    if mst_cost > (1. -. eps) *. sum_cx then stopped := true
    else add_tree mst beta;
    history := max_z () :: !history
  done;
  let collection =
    {
      Spacking.graph = g;
      trees =
        List.rev_map
          (fun (es, w) -> { Spacking.edges = es; weight = w })
          !trees;
    }
  in
  let scaled = Spacking.scale collection tgt in
  (* normalize so the worst load-to-capacity ratio is 1 *)
  let max_ratio =
    let loads' = Array.make m 0. in
    List.iter
      (fun tr ->
        List.iter
          (fun (u, v) ->
            let i = Graph.edge_index g u v in
            loads'.(i) <- loads'.(i) +. tr.Spacking.weight)
          tr.Spacking.edges)
      scaled.Spacking.trees;
    let best = ref 0. in
    for i = 0 to m - 1 do
      let r = loads'.(i) /. cap.(i) in
      if r > !best then best := r
    done;
    !best
  in
  let packing =
    if max_ratio <= 0. then scaled else Spacking.scale scaled (1. /. max_ratio)
  in
  {
    packing;
    collection;
    trace =
      {
        iterations = !iterations;
        stopped_by_rule = !stopped;
        max_z_history = List.rev !history;
      };
  }
