module Graph = Graphs.Graph

type result = {
  packing : Spacking.t;
  eta : int;
  part_lambdas : int list;
  parts_used : int;
}

let run ?(seed = 42) ?(eps = 0.15) g ~lambda =
  if not (Graphs.Traversal.is_connected g) then
    invalid_arg "Sampling_pack.run: disconnected graph";
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; lambda |] in
  let eta = Graphs.Sampling.suggested_eta ~lambda ~n ~eps in
  if eta <= 1 then begin
    let r = Lagrangian.run ~eps g ~lambda in
    {
      packing = r.Lagrangian.packing;
      eta = 1;
      part_lambdas = [ lambda ];
      parts_used = 1;
    }
  end
  else begin
    let parts = Graphs.Sampling.edge_partition rng g ~eta in
    let part_lambdas = ref [] in
    let parts_used = ref 0 in
    let all_trees = ref [] in
    Array.iter
      (fun h ->
        let lam_h =
          if Graphs.Traversal.is_connected h then
            Graphs.Connectivity.edge_connectivity h
          else 0
        in
        part_lambdas := lam_h :: !part_lambdas;
        if lam_h >= 1 then begin
          incr parts_used;
          let r = Lagrangian.run ~eps h ~lambda:lam_h in
          (* trees of the part are spanning trees of the full vertex set
             too (parts share the vertex set); loads stay feasible since
             parts are edge-disjoint *)
          all_trees :=
            r.Lagrangian.packing.Spacking.trees @ !all_trees
        end)
      parts;
    {
      packing = { Spacking.graph = g; trees = !all_trees };
      eta;
      part_lambdas = List.rev !part_lambdas;
      parts_used = !parts_used;
    }
  end

let run_auto ?seed ?eps g =
  let lambda = Graphs.Connectivity.edge_connectivity g in
  run ?seed ?eps g ~lambda:(max 1 lambda)
