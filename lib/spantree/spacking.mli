(** Fractional spanning-tree packings (§2): weighted spanning trees with
    per-edge total weight at most 1, plus the validity checker. *)

type wtree = {
  edges : (int * int) list;  (** tree edges, (u,v), u < v *)
  weight : float;
}

type t = {
  graph : Graphs.Graph.t;
  trees : wtree list;
}

(** Packing size Σ w_τ. *)
val size : t -> float

val count : t -> int

(** [edge_load p u v] is the summed weight of trees using edge [{u,v}]. *)
val edge_load : t -> int -> int -> float

(** Maximum edge load over all graph edges. *)
val max_edge_load : t -> float

(** [max_edge_multiplicity p] is the maximum number of distinct trees
    sharing one edge (Theorem 1.3's O(log³ n) bound). *)
val max_edge_multiplicity : t -> int

type violation =
  | Not_spanning of int  (** tree index *)
  | Edge_outside_graph of int
  | Overloaded_edge of (int * int) * float
  | Bad_weight of int

val pp_violation : Format.formatter -> violation -> unit

(** [verify ?tolerance p] lists violations; [tolerance] (default 1e-9)
    loosens the load-1 cap for floating-point slack. *)
val verify : ?tolerance:float -> t -> violation list

val is_valid : ?tolerance:float -> t -> bool

(** [scale p factor] multiplies every weight. *)
val scale : t -> float -> t

(** [normalize_to_unit_load p] rescales so the maximum edge load is
    exactly 1 (no-op for an empty or load-free packing) — the final step
    turning the §5.1 collection into a packing of size
    ⌈(λ-1)/2⌉(1-O(ε)). *)
val normalize_to_unit_load : t -> t
