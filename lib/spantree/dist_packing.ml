module Graph = Graphs.Graph
module Net = Congest.Net

type result = {
  packing : Spacking.t;
  iterations : int;
  measured_rounds : int;
  parallel_rounds : int;
  eta : int;
}

(* One §5.1 loop over the marked subgraph. Returns the weighted trees and
   the per-iteration round costs (for the Lemma 5.1 pipelining account).
   The continuation decision is the leader's: we charge one convergecast
   and one broadcast over the BFS tree per iteration. *)
let run_single ?(mst = `Flooding) net tree0 ~edge_in ~lambda ~eps
    ~max_iterations =
  let g = Net.graph net in
  let n = Graph.n g in
  let m = Graph.m g in
  let tgt = float_of_int (Lagrangian.target ~lambda) in
  let alpha = Float.max 2. (log (float_of_int (max 2 n))) in
  let beta = 1. /. (alpha *. Float.max 2. (log (float_of_int (max 2 n)))) in
  let coordination = (2 * tree0.Congest.Primitives.height) + 2 in
  let loads = Array.make m 0. in
  let trees = ref [] in
  let add_tree edges weight =
    trees := List.map (fun (es, w) -> (es, w *. (1. -. weight))) !trees;
    Array.iteri (fun i x -> loads.(i) <- x *. (1. -. weight)) loads;
    List.iter
      (fun (u, v) ->
        let i = Graph.edge_index g u v in
        loads.(i) <- loads.(i) +. weight)
      edges;
    trees := (edges, weight) :: !trees
  in
  (* initial tree: distributed MST with unit weights on the subgraph *)
  let per_iteration_rounds = ref [] in
  let cp = ref (Net.checkpoint net) in
  let note_iteration () =
    per_iteration_rounds :=
      (Net.rounds_since net !cp + coordination) :: !per_iteration_rounds;
    Net.silent_rounds net coordination;
    cp := Net.checkpoint net
  in
  let solve_mst weight =
    match mst with
    | `Flooding ->
      Congest.Dist_mst.minimum_spanning_forest_on net
        ~active:(fun _ -> true) ~edge_active:edge_in ~weight
    | `Pipelined ->
      (* the Kutten-Peleg variant works on the full graph; restrict by
         pricing excluded edges out of every tree *)
      let big = Congest.Model.max_word ~n / 2 in
      let w u v = if edge_in u v then weight u v else big in
      Congest.Dist_mst.minimum_spanning_forest_hybrid net ~weight:w
      |> List.filter (fun (u, v) -> edge_in u v)
  in
  let initial = solve_mst (fun _ _ -> 1) in
  note_iteration ();
  if List.length initial <> n - 1 then (* disconnected subgraph: no packing *)
    ([], List.rev !per_iteration_rounds)
  else begin
    add_tree initial 1.;
    let z_of i = loads.(i) *. tgt in
    let stopped = ref false in
    let iterations = ref 0 in
    while (not !stopped) && !iterations < max_iterations do
      incr iterations;
      (* z rounded to multiples of 1/n, sent as integers (footnote 6) *)
      let zmax =
        let best = ref 0. in
        for i = 0 to m - 1 do
          if z_of i > !best then best := z_of i
        done;
        !best
      in
      let int_weight u v =
        int_of_float (Float.round (z_of (Graph.edge_index g u v) *. float_of_int n))
      in
      let mst = solve_mst int_weight in
      (* leader decision (convergecast + broadcast, charged above) *)
      let cost i = exp (alpha *. (z_of i -. zmax)) in
      let mst_cost =
        List.fold_left
          (fun acc (u, v) -> acc +. cost (Graph.edge_index g u v))
          0. mst
      in
      let sum_cx =
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. (cost i *. loads.(i))
        done;
        !acc
      in
      note_iteration ();
      if mst_cost > (1. -. eps) *. sum_cx then stopped := true
      else add_tree mst beta
    done;
    let wtrees =
      List.rev_map (fun (es, w) -> { Spacking.edges = es; weight = w }) !trees
    in
    (wtrees, List.rev !per_iteration_rounds)
  end

let finish g parts_results eta =
  let all_rounds = List.map snd parts_results in
  let all_trees = List.concat_map fst parts_results in
  let iterations =
    List.fold_left (fun acc rs -> acc + List.length rs) 0 all_rounds
  in
  (* pipelined estimate: iterate in lockstep, paying the max over parts *)
  let parallel_rounds =
    let rec lockstep lists acc =
      let heads = List.filter_map (function [] -> None | h :: _ -> Some h) lists in
      if heads = [] then acc
      else
        lockstep
          (List.map (function [] -> [] | _ :: t -> t) lists)
          (acc + List.fold_left max 0 heads)
    in
    lockstep all_rounds 0
  in
  (all_trees, iterations, parallel_rounds, eta, g)

let run ?(eps = 0.15) ?max_iterations ?mst net ~lambda =
  let g = Net.graph net in
  let max_iterations =
    match max_iterations with
    | Some i -> i
    | None -> Lagrangian.default_iterations ~n:(Graph.n g)
  in
  let tree0 = Congest.Primitives.bfs_tree net ~root:0 in
  let start = Net.checkpoint net in
  let r =
    run_single ?mst net tree0 ~edge_in:(fun _ _ -> true) ~lambda ~eps
      ~max_iterations
  in
  let all_trees, iterations, parallel_rounds, eta, g = finish g [ r ] 1 in
  let collection = { Spacking.graph = g; trees = all_trees } in
  let scaled = Spacking.scale collection (float_of_int (Lagrangian.target ~lambda)) in
  {
    packing = Spacking.normalize_to_unit_load scaled;
    iterations;
    measured_rounds = Net.rounds_since net start;
    parallel_rounds;
    eta;
  }

let run_sampled ?(seed = 42) ?(eps = 0.15) net ~lambda =
  let g = Net.graph net in
  let n = Graph.n g in
  let eta = Graphs.Sampling.suggested_eta ~lambda ~n ~eps in
  if eta <= 1 then run ~eps net ~lambda
  else begin
    let rng = Random.State.make [| seed; n; lambda; 9 |] in
    let parts = Graphs.Sampling.edge_partition rng g ~eta in
    let tree0 = Congest.Primitives.bfs_tree net ~root:0 in
    let start = Net.checkpoint net in
    let max_iterations = Lagrangian.default_iterations ~n in
    let results =
      Array.to_list parts
      |> List.map (fun part ->
             let edge_in u v = Graph.mem_edge part u v in
             let lam_part =
               if Graphs.Traversal.is_connected part then
                 max 1 (Graphs.Connectivity.edge_connectivity part)
               else 1
             in
             let trees, rounds =
               run_single net tree0 ~edge_in ~lambda:lam_part ~eps
                 ~max_iterations
             in
             (* scale each part's collection by its own target and
                normalize within the part (parts are edge-disjoint) *)
             let collection = { Spacking.graph = g; trees } in
             let scaled =
               Spacking.scale collection
                 (float_of_int (Lagrangian.target ~lambda:lam_part))
             in
             let normalized = Spacking.normalize_to_unit_load scaled in
             (normalized.Spacking.trees, rounds))
    in
    let all_trees, iterations, parallel_rounds, eta, g = finish g results eta in
    {
      packing = { Spacking.graph = g; trees = all_trees };
      iterations;
      measured_rounds = Net.rounds_since net start;
      parallel_rounds;
      eta;
    }
  end

let run_auto ?(seed = 42) ?eps net =
  let lambda = (Dist_ec_approx.run ~seed net).Dist_ec_approx.estimate in
  run_sampled ~seed ?eps net ~lambda
