type 'a t = {
  net : Net.t;
  view : 'a option array array; (* view.(v).(u): v's copy of u's value *)
  read_log : bool array array; (* read_log.(v).(u): v read entry u *)
  checked : bool;
}

let create ?(checked = true) net ~init =
  let n = Net.n net in
  let view = Array.make_matrix n n None in
  for v = 0 to n - 1 do
    view.(v).(v) <- Some (init v)
  done;
  { net; view; read_log = Array.make_matrix n n false; checked }

let checked t = t.checked

let violate t ~reader ~about =
  raise
    (Net.Protocol_violation
       {
         Net.v_round = Net.rounds t.net;
         v_node = Some reader;
         v_edge = None;
         v_budget = None;
         v_detail =
           Printf.sprintf
             "locality: node %d read knowledge about node %d it never \
              received" reader about;
       })

let read_opt t ~reader ~about =
  t.read_log.(reader).(about) <- true;
  t.view.(reader).(about)

let read t ~reader ~about =
  match read_opt t ~reader ~about with
  | Some v -> v
  | None ->
    if t.checked then violate t ~reader ~about
    else invalid_arg "Knowledge.read: entry never learned (unchecked mode)"

let knows t ~reader ~about = t.view.(reader).(about) <> None
let set_own t ~node v = t.view.(node).(node) <- Some v
let learn t ~reader ~about v = t.view.(reader).(about) <- Some v

let exchange t ~encode ~decode =
  let inboxes =
    Net.broadcast_round t.net (fun v ->
        match t.view.(v).(v) with Some x -> Some (encode x) | None -> None)
  in
  Array.iteri
    (fun v msgs ->
      List.iter (fun (u, m) -> learn t ~reader:v ~about:u (decode m)) msgs)
    inboxes

let indices_where row =
  let acc = ref [] in
  for u = Array.length row - 1 downto 0 do
    if row.(u) then acc := u :: !acc
  done;
  !acc

let reads_of t reader = indices_where t.read_log.(reader)

let known_to t reader =
  indices_where (Array.map (fun e -> e <> None) t.view.(reader))
