module Graph = Graphs.Graph

type tree = {
  root : int;
  parent : int array;
  depth : int array;
  height : int;
}

let bfs_tree net ~root =
  let n = Net.n net in
  let parent = Array.make n (-1) in
  let depth = Array.make n (-1) in
  parent.(root) <- root;
  depth.(root) <- 0;
  let frontier = ref [ root ] in
  let level = ref 0 in
  while !frontier <> [] do
    let is_frontier = Array.make n false in
    List.iter (fun u -> is_frontier.(u) <- true) !frontier;
    let inboxes =
      Net.broadcast_round net (fun u ->
          if is_frontier.(u) then Some [| !level |] else None)
    in
    incr level;
    let next = ref [] in
    for v = 0 to n - 1 do
      if depth.(v) < 0 then
        match inboxes.(v) with
        | [] -> ()
        | (sender, _) :: _ ->
          parent.(v) <- sender;
          depth.(v) <- !level;
          next := v :: !next
    done;
    frontier := !next
  done;
  let height = Array.fold_left max 0 depth in
  { root; parent; depth; height }

let flood_min net ~value ~rounds =
  let n = Net.n net in
  let current = Array.init n value in
  for _ = 1 to rounds do
    let inboxes = Net.broadcast_round net (fun u -> Some [| current.(u) |]) in
    for v = 0 to n - 1 do
      List.iter
        (fun (_, m) -> if m.(0) < current.(v) then current.(v) <- m.(0))
        inboxes.(v)
    done
  done;
  current

(* Same protocol, run through the locality sanitizer: each node's
   current minimum is carried as a (witness, value) pair, so every
   knowledge entry a node folds over is one it provably received. Two
   words per message instead of one; identical fixpoint. *)
let flood_min_checked net ~value ~rounds =
  let n = Net.n net in
  let k = Knowledge.create net ~init:(fun v -> (v, value v)) in
  let best v =
    (* fold only over learned entries; every read is checked + logged *)
    List.fold_left
      (fun ((_, bx) as b) u ->
        let (_, x) as cand = Knowledge.read k ~reader:v ~about:u in
        if x < bx then cand else b)
      (Knowledge.read k ~reader:v ~about:v)
      (List.filter (fun u -> u <> v) (Knowledge.known_to k v))
  in
  for _ = 1 to rounds do
    let inboxes =
      Net.broadcast_round net (fun v ->
          let w, x = best v in
          Some [| w; x |])
    in
    for v = 0 to n - 1 do
      List.iter
        (fun (u, m) -> Knowledge.learn k ~reader:v ~about:u (m.(0), m.(1)))
        inboxes.(v);
      Knowledge.set_own k ~node:v (best v)
    done
  done;
  Array.init n (fun v -> snd (Knowledge.read k ~reader:v ~about:v))

(* Convergecast scheduled by depth: nodes at depth d broadcast their
   aggregate at round (height - d + 1); parents fold children values. *)
let converge net tree ~combine ~value =
  let n = Net.n net in
  let acc = Array.init n value in
  for lvl = tree.height downto 1 do
    let inboxes =
      Net.broadcast_round net (fun u ->
          if tree.depth.(u) = lvl then Some [| acc.(u) |] else None)
    in
    for v = 0 to n - 1 do
      List.iter
        (fun (sender, m) ->
          if tree.parent.(sender) = v then acc.(v) <- combine acc.(v) m.(0))
        inboxes.(v)
    done
  done;
  acc.(tree.root)

let converge_sum net tree value = converge net tree ~combine:( + ) ~value

let converge_min net tree value = converge net tree ~combine:min ~value

let broadcast_int net tree x =
  let n = Net.n net in
  let received = Array.make n None in
  received.(tree.root) <- Some x;
  for lvl = 0 to tree.height - 1 do
    let inboxes =
      Net.broadcast_round net (fun u ->
          if tree.depth.(u) = lvl then
            match received.(u) with Some v -> Some [| v |] | None -> None
          else None)
    in
    for v = 0 to n - 1 do
      if received.(v) = None && tree.depth.(v) = lvl + 1 then
        match inboxes.(v) with
        | (_, m) :: _ -> received.(v) <- Some m.(0)
        | [] -> ()
    done
  done;
  Array.map (function Some v -> v | None -> x) received

let preprocess net =
  let n = Net.n net in
  (* Leader election: flood min id. We do not yet know D, so flood with a
     doubling horizon: 2, 4, 8 ... rounds until a full extra sweep changes
     nothing anywhere. Round cost is within a constant factor of D. *)
  let current = Array.init n (fun u -> u) in
  let changed = ref true in
  while !changed do
    changed := false;
    let inboxes = Net.broadcast_round net (fun u -> Some [| current.(u) |]) in
    for v = 0 to n - 1 do
      List.iter
        (fun (_, m) ->
          if m.(0) < current.(v) then begin
            current.(v) <- m.(0);
            changed := true
          end)
        inboxes.(v)
    done
  done;
  let leader = current.(0) in
  let tree = bfs_tree net ~root:leader in
  let count = converge_sum net tree (fun _ -> 1) in
  assert (count = n);
  (* 2-approximation of the diameter: D <= 2 * ecc(leader) = 2 * height. *)
  let d_bound = max 1 (2 * tree.height) in
  let _ = broadcast_int net tree d_bound in
  (tree, count, d_bound)

let pipelined_upcast net tree ~items ~filter =
  let n = Net.n net in
  let queues = Array.make n [] in
  for u = 0 to n - 1 do
    (* locally originating items also pass the local filter *)
    queues.(u) <- List.filter (fun it -> filter u it) (items u)
  done;
  let root_received = ref [] in
  let pending () = Array.exists (fun q -> q <> []) queues in
  while pending () do
    let heads = Array.make n None in
    for u = 0 to n - 1 do
      match queues.(u) with
      | it :: rest when u <> tree.root ->
        heads.(u) <- Some it;
        queues.(u) <- rest
      | it :: rest when u = tree.root ->
        (* root consumes its own queue without sending *)
        ignore it;
        ignore rest
      | _ -> ()
    done;
    (* the root absorbs its queued items directly *)
    List.iter (fun it -> root_received := it :: !root_received)
      (List.rev queues.(tree.root));
    queues.(tree.root) <- [];
    let inboxes =
      Net.broadcast_round net (fun u ->
          match heads.(u) with Some it -> Some it | None -> None)
    in
    for v = 0 to n - 1 do
      List.iter
        (fun (sender, m) ->
          if tree.parent.(sender) = v then
            if filter v m then
              if v = tree.root then root_received := m :: !root_received
              else queues.(v) <- queues.(v) @ [ m ])
        inboxes.(v)
    done
  done;
  List.rev !root_received

let pipelined_downcast net tree items =
  let arr = Array.of_list items in
  let count = Array.length arr in
  if count > 0 then begin
    let n = Net.n net in
    (* item i is broadcast by depth-d nodes at round i + d (0-indexed);
       total rounds = count + height *)
    for r = 0 to count + tree.height - 1 do
      let _ =
        Net.broadcast_round net (fun u ->
            let d = tree.depth.(u) in
            let i = r - d in
            if d >= 0 && i >= 0 && i < count then Some arr.(i) else None)
      in
      ignore r
    done;
    ignore n
  end

(* Pipelined keyed aggregation. Per node: a sorted stream of own values,
   plus one incoming stream per child; the node may emit the aggregate
   for the smallest unemitted key once every child stream has advanced
   past it (children emit in increasing key order, so "advanced past"
   means delivered a larger key or closed). A closed stream is signaled
   with an end-marker item. *)
let pipelined_converge net tree ~values ~better =
  let n = Net.n net in
  let end_key = max_int in
  (* children lists *)
  let children = Array.make n [] in
  Array.iteri
    (fun v p ->
      if p >= 0 && p <> v then children.(p) <- v :: children.(p))
    tree.parent;
  (* per node: own pending values sorted by key *)
  let own =
    Array.init n (fun u ->
        ref (List.sort (fun (a, _) (b, _) -> Int.compare a b) (values u)))
  in
  (* per node: best payload per key merged so far, and per-child stream
     progress (the largest key fully delivered by that child) *)
  let collected = Array.init n (fun _ -> Hashtbl.create 8) in
  let progress = Array.init n (fun _ -> Hashtbl.create 4) in
  Array.iteri
    (fun u cs -> List.iter (fun c -> Hashtbl.replace progress.(u) c (-1)) cs)
    children;
  let merge u key payload =
    match Hashtbl.find_opt collected.(u) key with
    | Some cur -> if better payload cur then Hashtbl.replace collected.(u) key payload
    | None -> Hashtbl.replace collected.(u) key payload
  in
  let emitted_up_to = Array.make n (-1) in
  let closed = Array.make n false in
  (* a node's next emittable key: the smallest key (own or collected)
     above emitted_up_to that all children have advanced past *)
  let next_key u =
    let candidate = ref end_key in
    List.iter
      (fun (k, _) -> if k > emitted_up_to.(u) && k < !candidate then candidate := k)
      !(own.(u));
    (* lint: allow hashtbl-order — commutative min over keys *)
    Hashtbl.iter
      (fun k _ -> if k > emitted_up_to.(u) && k < !candidate then candidate := k)
      collected.(u);
    !candidate
  in
  let children_ready u key =
    List.for_all
      (fun c -> match Hashtbl.find_opt progress.(u) c with
        | Some p -> p >= key
        | None -> true)
      children.(u)
  in
  let all_children_closed u =
    List.for_all
      (fun c ->
        match Hashtbl.find_opt progress.(u) c with
        | Some p -> p = end_key
        | None -> false)
      children.(u)
  in
  let root_result = ref [] in
  let guard = ref 0 in
  let budget = 4 * (tree.height + n + 5) * (1 + n) in
  while (not closed.(tree.root)) && !guard < budget do
    incr guard;
    (* decide what each node emits this round *)
    let outgoing = Array.make n None in
    for u = 0 to n - 1 do
      if not closed.(u) then begin
        (* fold own values into collected up to any key (they are local) *)
        List.iter (fun (k, p) -> merge u k p) !(own.(u));
        own.(u) := [];
        let k = next_key u in
        if k < end_key && children_ready u k then begin
          let payload = Hashtbl.find collected.(u) k in
          emitted_up_to.(u) <- k;
          if u = tree.root then root_result := (k, payload) :: !root_result
          else outgoing.(u) <- Some (k, payload)
        end
        else if k = end_key && all_children_closed u then begin
          closed.(u) <- true;
          if u <> tree.root then outgoing.(u) <- Some (end_key, [||])
        end
      end
    done;
    let inboxes =
      Net.broadcast_round net (fun u ->
          match outgoing.(u) with
          | Some (k, payload) ->
            let tag = if k = end_key then 1 else 0 in
            (* lint: allow msg-budget — relayed verbatim, never concatenated:
               width is 2 + the caller's per-key payload, which the caller
               keeps within Model.words_budget (Net rejects it at runtime
               otherwise); the pipeline only picks [better], never appends *)
            Some (Array.append [| tag; (if k = end_key then 0 else k) |] payload)
          | None -> None)
    in
    for v = 0 to n - 1 do
      List.iter
        (fun (sender, m) ->
          if tree.parent.(sender) = v then begin
            if m.(0) = 1 then Hashtbl.replace progress.(v) sender end_key
            else begin
              let k = m.(1) in
              let payload = Array.sub m 2 (Array.length m - 2) in
              merge v k payload;
              Hashtbl.replace progress.(v) sender k
            end
          end)
        inboxes.(v)
    done
  done;
  if not closed.(tree.root) then
    failwith "Primitives.pipelined_converge: did not terminate";
  List.rev !root_result
