(** Standard CONGEST building blocks: BFS trees, aggregation, pipelined
    upcast/downcast (the Kutten–Peleg-style primitives of Appendix B/F).

    All functions advance the network clock by exactly the number of
    rounds the message-passing protocol needs (plus documented
    termination-detection surcharges). *)

type tree = {
  root : int;
  parent : int array; (* parent.(root) = root; -1 for non-members *)
  depth : int array; (* -1 for non-members *)
  height : int; (* max depth *)
}

(** [bfs_tree net ~root] floods a BFS tree from [root]; takes
    eccentricity(root) + 1 rounds. *)
val bfs_tree : Net.t -> root:int -> tree

(** [flood_min net ~value ~rounds] floods per-node values, each node
    repeatedly broadcasting the smallest value heard; after [rounds]
    rounds returns each node's current minimum. With [rounds >=]
    diameter this is the global minimum everywhere. *)
val flood_min : Net.t -> value:(int -> int) -> rounds:int -> int array

(** [flood_min_checked] computes the same fixpoint as {!flood_min}, but
    routes every per-node state access through the {!Knowledge} locality
    sanitizer: values travel as (witness, value) pairs (two words per
    message instead of one) and a node can only fold over entries it
    provably received — a read outside that set raises
    [Net.Protocol_violation]. Reference implementation for writing
    checked protocols. *)
val flood_min_checked : Net.t -> value:(int -> int) -> rounds:int -> int array

(** [preprocess net] runs the standard O(D) setup the paper assumes
    (§2): elect the minimum id as leader, build its BFS tree, and learn
    [n] and a 2-approximation of the diameter. *)
val preprocess : Net.t -> tree * int * int
(** Returns [(bfs_tree_of_leader, n, diameter_upper_bound)] with
    [diameter <= diameter_upper_bound <= 2 * diameter]. *)

(** [converge_sum net tree value] sums per-node values at the root
    (height rounds; partial sums must fit in a word). Every node learns
    nothing; only the root's total is returned. *)
val converge_sum : Net.t -> tree -> (int -> int) -> int

(** [converge_min net tree value] is the minimum variant; [max_int]
    values are treated as "no value". *)
val converge_min : Net.t -> tree -> (int -> int) -> int

(** [broadcast_int net tree x] sends one word from the root to everyone
    (height rounds); returns the per-node received value (all [x]). *)
val broadcast_int : Net.t -> tree -> int -> int array

(** [pipelined_upcast net tree ~items ~filter] sends every node's list of
    fixed-width items toward the root, one item per node per round.
    At each intermediate node [v] (and at the root), arriving or locally
    originating items pass through [filter v item]; only accepted items
    are forwarded (the Kutten–Peleg forest-filtering upcast). Returns
    the items accepted at the root, in arrival order. Rounds: at most
    height + (number of items any single node forwards). *)
val pipelined_upcast :
  Net.t -> tree -> items:(int -> Net.msg list) -> filter:(int -> Net.msg -> bool)
  -> Net.msg list

(** [pipelined_downcast net tree items] floods a list of items from the
    root to all nodes, pipelined one item per round per level; takes
    height + length(items) rounds. Returns nothing (all nodes see all
    items by construction). *)
val pipelined_downcast : Net.t -> tree -> Net.msg list -> unit

(** [pipelined_converge net tree ~values ~better] is the Kutten–Peleg
    aggregated upcast: every node holds keyed values ([values u] lists
    [(key, payload)] pairs); the root ends up with, for every key, the
    [better]-minimal payload over the whole tree. Streams travel in
    increasing key order, one item per node per round, each node merging
    its children's streams with its own values and emitting key [j] only
    once everything at key <= j has arrived — so the whole exchange
    costs height + (number of distinct keys) rounds instead of
    height × keys. Returns the root's [(key, payload)] list in
    increasing key order. [better a b] holds when payload [a] beats [b];
    payloads are small msg word-lists. *)
val pipelined_converge :
  Net.t -> tree -> values:(int -> (int * Net.msg) list) ->
  better:(Net.msg -> Net.msg -> bool) -> (int * Net.msg) list
