type event =
  | Crash of { round : int; node : int }
  | Drop of { round : int; src : int; dst : int; words : int }
  | Edge_kill of { round : int; u : int; v : int }

let pp_event ppf = function
  | Crash { round; node } ->
    Format.fprintf ppf "round %d: node %d crashed" round node
  | Drop { round; src; dst; words } ->
    Format.fprintf ppf "round %d: dropped %d words on (%d,%d)" round words src
      dst
  | Edge_kill { round; u; v } ->
    Format.fprintf ppf "round %d: edge (%d,%d) killed" round u v

type spec =
  | Crash_at of (int * int) list
  | Drop_bernoulli of float
  | Kill_edges_at of (int * (int * int)) list
  | Greedy_edge_kill of { budget : int; period : int; from_round : int }
  | Crash_storm of {
      from_round : int;
      per_round : int;
      storm_rounds : int;
      universe : int;
    }

type t = {
  seed : int;
  mutable rng : Random.State.t;
  p_drop : float;
  crash_sched : (int * int) list; (* sorted by round *)
  kill_sched : (int * (int * int)) list; (* sorted by round *)
  greedy : (int * int * int) option; (* budget, period, from_round *)
  storm : (int * int * int * int) option;
      (* from_round, per_round, storm_rounds, universe *)
  mutable greedy_left : int;
  mutable round : int;
  crashed : (int, unit) Hashtbl.t;
  killed : (int * int, unit) Hashtbl.t;
  traffic : (int * int, int) Hashtbl.t; (* cumulative words per edge *)
  mutable pending_crash : (int * int) list;
  mutable pending_kill : (int * (int * int)) list;
  mutable events : event list; (* reverse chronological *)
  mutable drops : int;
  mutable words_lost : int;
}

let norm (u, v) = (min u v, max u v)

(* Schedules and reports hold int pairs; order them without caml_compare.
   Ordering matches polymorphic compare on (int * int). *)
let compare_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let create ?(seed = 42) specs =
  let p_drop =
    List.fold_left
      (fun acc -> function
        | Drop_bernoulli p ->
          if p < 0. || p > 1. then
            invalid_arg "Faults.create: drop probability outside [0,1]";
          1. -. ((1. -. acc) *. (1. -. p))
        | _ -> acc)
      0. specs
  in
  let crash_sched =
    List.concat_map (function Crash_at l -> l | _ -> []) specs
    |> List.sort compare_pair
  in
  let kill_sched =
    List.concat_map (function Kill_edges_at l -> l | _ -> []) specs
    |> List.map (fun (r, e) -> (r, norm e))
    |> List.sort (fun (r1, e1) (r2, e2) ->
           match Int.compare r1 r2 with 0 -> compare_pair e1 e2 | c -> c)
  in
  let greedy =
    List.fold_left
      (fun acc -> function
        | Greedy_edge_kill { budget; period; from_round } ->
          Some (budget, max 1 period, from_round)
        | _ -> acc)
      None specs
  in
  let storm =
    List.fold_left
      (fun acc -> function
        | Crash_storm { from_round; per_round; storm_rounds; universe } ->
          if per_round < 0 then
            invalid_arg "Faults.create: negative storm intensity";
          if storm_rounds < 0 then
            invalid_arg "Faults.create: negative storm duration";
          if universe < 1 then
            invalid_arg "Faults.create: storm universe must be positive";
          Some (from_round, per_round, storm_rounds, universe)
        | _ -> acc)
      None specs
  in
  {
    seed;
    rng = Random.State.make [| seed; 0x0FA17 |];
    p_drop;
    crash_sched;
    kill_sched;
    greedy;
    storm;
    greedy_left = (match greedy with Some (b, _, _) -> b | None -> 0);
    round = 0;
    crashed = Hashtbl.create 8;
    killed = Hashtbl.create 8;
    traffic = Hashtbl.create 64;
    pending_crash = crash_sched;
    pending_kill = kill_sched;
    events = [];
    drops = 0;
    words_lost = 0;
  }

let none () = create []

(* Rewind the adversary to its creation state: reseed the drop RNG,
   revive crashed nodes and killed edges, restore the greedy budget, and
   clear the observed-traffic table and telemetry. With [reset] between
   two runs of the same protocol from the same seed, the adversary
   re-makes exactly the same decisions — the contract Net.replay_check
   relies on. *)
let reset t =
  t.rng <- Random.State.make [| t.seed; 0x0FA17 |];
  t.greedy_left <- (match t.greedy with Some (b, _, _) -> b | None -> 0);
  t.round <- 0;
  Hashtbl.reset t.crashed;
  Hashtbl.reset t.killed;
  Hashtbl.reset t.traffic;
  t.pending_crash <- t.crash_sched;
  t.pending_kill <- t.kill_sched;
  t.events <- [];
  t.drops <- 0;
  t.words_lost <- 0

let is_null t =
  t.p_drop = 0. && t.crash_sched = [] && t.kill_sched = [] && t.greedy = None

let record t ev = t.events <- ev :: t.events

let crash t ~round node =
  if not (Hashtbl.mem t.crashed node) then begin
    Hashtbl.replace t.crashed node ();
    record t (Crash { round; node })
  end

let kill_edge t ~round e =
  let e = norm e in
  if not (Hashtbl.mem t.killed e) then begin
    Hashtbl.replace t.killed e ();
    record t (Edge_kill { round; u = fst e; v = snd e })
  end

let hottest_live_edge t =
  (* lint: allow hashtbl-order — commutative max with a total-order
     tie-break on the edge id, so the winner is iteration-order-free *)
  Hashtbl.fold
    (fun e w best ->
      if Hashtbl.mem t.killed e then best
      else
        match best with
        | None -> Some (e, w)
        | Some (be, bw) ->
          (* deterministic tie-break on the smaller edge id *)
          if w > bw || (w = bw && e < be) then Some (e, w) else best)
    t.traffic None

let on_round_start t r =
  t.round <- r;
  let rec fire_crashes = function
    | (rc, node) :: rest when rc <= r ->
      crash t ~round:r node;
      fire_crashes rest
    | rest -> rest
  in
  t.pending_crash <- fire_crashes t.pending_crash;
  let rec fire_kills = function
    | (rc, e) :: rest when rc <= r ->
      kill_edge t ~round:r e;
      fire_kills rest
    | rest -> rest
  in
  t.pending_kill <- fire_kills t.pending_kill;
  (match t.storm with
  | Some (from_round, per_round, storm_rounds, universe)
    when r >= from_round && r < from_round + storm_rounds ->
    (* [per_round] seeded draws over the universe; redrawing an already
       crashed victim is a no-op, so a storm round crashes at most
       [per_round] fresh nodes *)
    for _ = 1 to per_round do
      crash t ~round:r (Random.State.int t.rng universe)
    done
  | _ -> ());
  match t.greedy with
  | Some (_, period, from_round)
    when r >= from_round
         && (r - from_round) mod period = 0
         && t.greedy_left > 0 -> (
    match hottest_live_edge t with
    | Some (e, _) ->
      t.greedy_left <- t.greedy_left - 1;
      kill_edge t ~round:r e
    | None -> ())
  | _ -> ()

let node_alive t u = not (Hashtbl.mem t.crashed u)

let lose t ~src ~dst ~words ~noted =
  t.drops <- t.drops + 1;
  t.words_lost <- t.words_lost + words;
  if noted then record t (Drop { round = t.round; src; dst; words })

let deliver t ~src ~dst (m : Net.msg) =
  let words = Array.length m in
  let e = norm (src, dst) in
  (* the greedy killer targets the busiest edge it has observed *)
  if t.greedy <> None then
    Hashtbl.replace t.traffic e
      (words + Option.value ~default:0 (Hashtbl.find_opt t.traffic e));
  if Hashtbl.mem t.crashed dst then begin
    (* inbox of a crashed node is silenced: counted, not event-logged *)
    lose t ~src ~dst ~words ~noted:false;
    false
  end
  else if Hashtbl.mem t.killed e then begin
    lose t ~src ~dst ~words ~noted:true;
    false
  end
  else if t.p_drop > 0. && Random.State.float t.rng 1. < t.p_drop then begin
    lose t ~src ~dst ~words ~noted:true;
    false
  end
  else true

(* Refill [dst] with [src]'s bindings. Insertion order does not affect
   Hashtbl lookup/membership semantics, and every consumer of these
   tables canonicalizes (sorts) on read. *)
let refill dst src =
  Hashtbl.reset dst;
  (* lint: allow hashtbl-order — refill of a set-like table; consumers
     sort on read, so insertion order is unobservable *)
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

(* Deep snapshot of the adversary's full state; the returned thunk
   restores it. A restored adversary re-makes exactly the decisions it
   made after the snapshot (same RNG state, same pending schedules, same
   greedy budget), which is what lets Net.rollback discard a poisoned
   region and re-execute it deterministically. *)
let save t =
  let rng = Random.State.copy t.rng in
  let greedy_left = t.greedy_left in
  let round = t.round in
  let crashed = Hashtbl.copy t.crashed in
  let killed = Hashtbl.copy t.killed in
  let traffic = Hashtbl.copy t.traffic in
  let pending_crash = t.pending_crash in
  let pending_kill = t.pending_kill in
  let events = t.events in
  let drops = t.drops in
  let words_lost = t.words_lost in
  fun () ->
    t.rng <- Random.State.copy rng;
    t.greedy_left <- greedy_left;
    t.round <- round;
    refill t.crashed crashed;
    refill t.killed killed;
    refill t.traffic traffic;
    t.pending_crash <- pending_crash;
    t.pending_kill <- pending_kill;
    t.events <- events;
    t.drops <- drops;
    t.words_lost <- words_lost

let hook t =
  {
    Net.on_round_start = on_round_start t;
    node_alive = node_alive t;
    deliver = (fun ~src ~dst m -> deliver t ~src ~dst m);
    reset = (fun () -> reset t);
    save = (fun () -> save t);
  }

let install net t = Net.install_faults net (hook t)
let uninstall net = Net.clear_faults net

let alive t u = node_alive t u
let crashed t u = Hashtbl.mem t.crashed u

let crashed_nodes t =
  Hashtbl.fold (fun u () acc -> u :: acc) t.crashed [] |> List.sort Int.compare

let killed_edges t =
  Hashtbl.fold (fun e () acc -> e :: acc) t.killed [] |> List.sort compare_pair

let edge_killed t (u, v) = Hashtbl.mem t.killed (norm (u, v))
let events t = List.rev t.events
let drops t = t.drops
let words_lost t = t.words_lost
let crashes t = Hashtbl.length t.crashed
let edges_killed t = Hashtbl.length t.killed
let drop_probability t = t.p_drop

let pp_summary ppf t =
  Format.fprintf ppf
    "faults: %d crash(es), %d edge kill(s), %d drop(s), %d words lost"
    (crashes t) (edges_killed t) (drops t) (words_lost t)
