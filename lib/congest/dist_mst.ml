module Graph = Graphs.Graph

let no_edge = (max_int, max_int, max_int)
let is_no_edge w a b = w = max_int && a = max_int && b = max_int

(* Forest edges are canonical (min, max) int pairs; compare them without
   caml_compare. Ordering matches polymorphic compare on (int * int). *)
let compare_edge (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

(* Flood minimum (w, a, b) triples inside fragments (over forest edges)
   until stable; one round past stabilization, as in Components. *)
let flood_triples net ~active ~in_fragment ~init =
  let n = Net.n net in
  let best = Array.init n init in
  let changed = ref true in
  while !changed do
    changed := false;
    let inboxes =
      Net.broadcast_round net (fun u ->
          if active u then
            let w, a, b = best.(u) in
            if is_no_edge w a b then None else Some [| w; a; b |]
          else None)
    in
    for v = 0 to n - 1 do
      if active v then
        List.iter
          (fun (sender, m) ->
            if in_fragment sender v then begin
              let t = (m.(0), m.(1), m.(2)) in
              if t < best.(v) then begin
                best.(v) <- t;
                changed := true
              end
            end)
          inboxes.(v)
    done
  done;
  best

let minimum_spanning_forest_on net ~active ~edge_active ~weight =
  let n = Net.n net in
  let forest = Hashtbl.create 64 in
  let forest_mem u v =
    Hashtbl.mem forest (min u v, max u v)
  in
  let forest_add u v = Hashtbl.replace forest (min u v, max u v) () in
  let continue = ref true in
  while !continue do
    (* 1. fragment labels over the current forest *)
    let labels = Components.identify net ~active ~edge_active:forest_mem in
    (* 2. all nodes announce labels so neighbors can spot outgoing edges *)
    let inboxes =
      Net.broadcast_round net (fun u ->
          if active u then Some [| labels.(u) |] else None)
    in
    let neighbor_label = Array.make n [] in
    for v = 0 to n - 1 do
      neighbor_label.(v) <-
        List.map (fun (sender, m) -> (sender, m.(0))) inboxes.(v)
    done;
    (* 3. local best outgoing edge per node *)
    let local_best u =
      if not (active u) then no_edge
      else
        List.fold_left
          (fun acc (v, lv) ->
            if lv >= 0 && lv <> labels.(u) && edge_active u v && edge_active v u
            then begin
              let cand = (weight u v, min u v, max u v) in
              if cand < acc then cand else acc
            end
            else acc)
          no_edge neighbor_label.(u)
    in
    (* 4. fragment-wide minimum by intra-fragment flooding *)
    let best =
      flood_triples net ~active ~in_fragment:forest_mem ~init:local_best
    in
    (* 5. an endpoint whose local candidate equals its fragment's best
          declares the merge; the other endpoint hears the declaration *)
    let declares u =
      active u && best.(u) <> no_edge && local_best u = best.(u)
    in
    let inboxes =
      Net.broadcast_round net (fun u ->
          if declares u then
            let w, a, b = best.(u) in
            Some [| w; a; b |]
          else None)
    in
    let merged = ref false in
    for v = 0 to n - 1 do
      if declares v then begin
        let _, a, b = best.(v) in
        if v = a || v = b then begin
          if not (forest_mem a b) then merged := true;
          forest_add a b
        end
      end;
      List.iter
        (fun (_, m) ->
          let a = m.(1) and b = m.(2) in
          if v = a || v = b then begin
            if not (forest_mem a b) then merged := true;
            forest_add a b
          end)
        inboxes.(v)
    done;
    (* termination: no fragment found an outgoing edge *)
    if not !merged then continue := false
  done;
  Hashtbl.fold (fun (u, v) () acc -> (u, v) :: acc) forest []
  |> List.sort compare_edge

let minimum_spanning_forest net ~weight =
  minimum_spanning_forest_on net
    ~active:(fun _ -> true)
    ~edge_active:(fun _ _ -> true)
    ~weight

(* Kutten-Peleg-shaped variant (controlled GHS): Boruvka phases run in
   cheap LOCAL mode (intra-fragment flooding, fully parallel across
   fragments) while fragment diameters stay below the cap; once a flood
   fails to stabilize within the cap — fragments now have >= cap nodes,
   so at most n/cap of them remain — the algorithm switches to GLOBAL
   mode: fragment labels via the hybrid component identification and
   per-fragment minima via one pipelined keyed convergecast over the
   global BFS tree (height + #fragments rounds per phase). A one-bit
   "did the flood stabilize" convergecast is charged per local phase. *)
let minimum_spanning_forest_hybrid ?cap net ~weight =
  let n = Net.n net in
  let cap =
    match cap with
    | Some c -> c
    | None -> int_of_float (ceil (sqrt (float_of_int (max 1 n))))
  in
  let tree = Primitives.bfs_tree net ~root:0 in
  let forest = Hashtbl.create 64 in
  let forest_mem u v = Hashtbl.mem forest (min u v, max u v) in
  let forest_add u v = Hashtbl.replace forest (min u v, max u v) () in
  let continue = ref true in
  let global_mode = ref false in
  let phase = ref 0 in

  (* capped min-id flood over forest edges; returns (labels, stable) *)
  let capped_labels () =
    let best = Array.init n (fun u -> u) in
    for _ = 1 to cap do
      let inboxes =
        Net.broadcast_round net (fun u -> Some [| best.(u) |])
      in
      for v = 0 to n - 1 do
        List.iter
          (fun (sender, m) ->
            if forest_mem sender v && m.(0) < best.(v) then best.(v) <- m.(0))
          inboxes.(v)
      done
    done;
    (* stability: would one more sweep change anything? (the real protocol
       learns this with a one-bit convergecast, charged below) *)
    let stable = ref true in
    for v = 0 to n - 1 do
      Array.iter
        (fun u ->
          if forest_mem u v && best.(u) < best.(v) then stable := false)
        (Graph.neighbors (Net.graph net) v)
    done;
    Net.silent_rounds net ((2 * tree.height) + 1);
    (best, !stable)
  in

  while !continue do
    incr phase;
    if not !global_mode then begin
      (* LOCAL phase *)
      let labels, stable = capped_labels () in
      if not stable then global_mode := true
      else begin
        let inboxes =
          Net.broadcast_round net (fun u -> Some [| labels.(u) |])
        in
        (* drain the inbox arena now: [local_best] is consulted again
           (via [declares]) after [flood_triples] and the declaration
           round have both overwritten it *)
        let neighbor_label =
          Array.init n (fun u ->
              List.map (fun (s, (m : Net.msg)) -> (s, m.(0))) inboxes.(u))
        in
        let local_best u =
          List.fold_left
            (fun acc (v, lv) ->
              if lv <> labels.(u) then begin
                let cand = (weight u v, min u v, max u v) in
                match acc with Some b when b <= cand -> acc | _ -> Some cand
              end
              else acc)
            None neighbor_label.(u)
        in
        let init u =
          match local_best u with Some t -> t | None -> no_edge
        in
        let best =
          flood_triples net ~active:(fun _ -> true) ~in_fragment:forest_mem
            ~init
        in
        (* declaring endpoints add their fragment's winning edge *)
        let declares u = best.(u) <> no_edge && init u = best.(u) in
        let inboxes2 =
          Net.broadcast_round net (fun u ->
              if declares u then
                let w, a, b = best.(u) in
                Some [| w; a; b |]
              else None)
        in
        let merged = ref false in
        for v = 0 to n - 1 do
          if declares v then begin
            let _, a, b = best.(v) in
            if v = a || v = b then begin
              if not (forest_mem a b) then merged := true;
              forest_add a b
            end
          end;
          List.iter
            (fun (_, (m : Net.msg)) ->
              let a = m.(1) and b = m.(2) in
              if v = a || v = b then begin
                if not (forest_mem a b) then merged := true;
                forest_add a b
              end)
            inboxes2.(v)
        done;
        if not !merged then continue := false
      end
    end
    else begin
      (* GLOBAL phase *)
      let labels =
        Components.identify_hybrid ~cap ~seed:!phase net
          ~active:(fun _ -> true) ~edge_active:forest_mem
      in
      let inboxes =
        Net.broadcast_round net (fun u -> Some [| labels.(u) |])
      in
      let local_best = Array.make n None in
      for u = 0 to n - 1 do
        List.iter
          (fun (v, (m : Net.msg)) ->
            if m.(0) <> labels.(u) then begin
              let cand = (weight u v, min u v, max u v) in
              match local_best.(u) with
              | Some best when best <= cand -> ()
              | _ -> local_best.(u) <- Some cand
            end)
          inboxes.(u)
      done;
      let values u =
        match local_best.(u) with
        | Some (w, a, b) -> [ (labels.(u), [| w; a; b |]) ]
        | None -> []
      in
      let better (x : Net.msg) (y : Net.msg) =
        if x.(0) <> y.(0) then x.(0) < y.(0)
        else if x.(1) <> y.(1) then x.(1) < y.(1)
        else x.(2) < y.(2)
      in
      let winners = Primitives.pipelined_converge net tree ~values ~better in
      let edges =
        List.map (fun (_, m) -> (m.(1), m.(2))) winners
        |> List.sort_uniq compare_edge
      in
      if edges = [] then continue := false
      else begin
        Primitives.pipelined_downcast net tree
          (List.map (fun (a, b) -> [| a; b |]) edges);
        List.iter (fun (a, b) -> forest_add a b) edges
      end
    end
  done;
  Hashtbl.fold (fun (u, v) () acc -> (u, v) :: acc) forest []
  |> List.sort compare_edge
