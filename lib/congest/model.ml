type t =
  | V_congest
  | E_congest

let to_string = function
  | V_congest -> "V-CONGEST"
  | E_congest -> "E-CONGEST"

let pp ppf m = Format.pp_print_string ppf (to_string m)

let words_budget ~n:_ = 8

let max_word ~n =
  let n = max n 2 in
  if n >= 1 lsl 15 then max_int
  else max 65536 (n * n * n * n)
