(** Locality sanitizer: checked per-node knowledge for CONGEST protocols.

    The runtime enforces bandwidth, but the locality discipline — what a
    node sends may depend only on its own state and messages it has
    received — is a convention the simulator cannot see (net.mli). A
    [Knowledge.t] makes it checkable: it holds, for every node [v], a
    view of every node [u]'s value, and only hands an entry out through
    {!read}, which verifies that [v] actually {e learned} it — at
    creation ([u = v]) or via {!learn}, which callers invoke exactly for
    traffic the network delivered. In checked mode (the default) a read
    of an unlearned entry raises [Net.Protocol_violation] carrying the
    round and both nodes: the shared-memory shortcut a simulated
    protocol must never take, caught at the moment it is taken.

    The handle also records every (reader, about) pair ({!reads_of}), so
    tests can assert that a round function touched only the indices its
    message history justifies. *)

type 'a t

(** [create ?checked net ~init] gives node [v] exactly its own entry
    [init v]. [checked] defaults to [true]; [false] keeps the recording
    but never raises (for measuring an existing protocol's footprint
    before enforcing it). *)
val create : ?checked:bool -> Net.t -> init:(int -> 'a) -> 'a t

val checked : 'a t -> bool

(** [read t ~reader ~about] is [reader]'s view of [about]'s value.
    @raise Net.Protocol_violation in checked mode when [reader] never
    learned an entry for [about]. *)
val read : 'a t -> reader:int -> about:int -> 'a

(** [read_opt] is [read] returning [None] instead of raising; the read
    is still recorded. *)
val read_opt : 'a t -> reader:int -> about:int -> 'a option

val knows : 'a t -> reader:int -> about:int -> bool

(** [set_own t ~node v] updates [node]'s own entry — always legal. *)
val set_own : 'a t -> node:int -> 'a -> unit

(** [learn t ~reader ~about v] records that [reader] received [about]'s
    value [v] (call it when the network delivers the carrying message). *)
val learn : 'a t -> reader:int -> about:int -> 'a -> unit

(** [exchange t ~encode ~decode] performs one [Net.broadcast_round] in
    which every node broadcasts its own entry; every delivered message
    is learned. One checked-locality building block: after [r] calls,
    node [v] legitimately knows exactly its [<= r]-hop-in neighborhood
    (minus faulted traffic). *)
val exchange : 'a t -> encode:('a -> Net.msg) -> decode:(Net.msg -> 'a) -> unit

(** Indices [reader] has read so far, ascending. *)
val reads_of : 'a t -> int -> int list

(** Indices [reader] has learned (its own included), ascending. *)
val known_to : 'a t -> int -> int list
