(** Distributed minimum spanning forest (GHS/Borůvka style), the MST
    black box the paper invokes from Kutten–Peleg [37].

    Each phase: identify fragments of the current forest, elect each
    fragment's minimum-weight outgoing edge by intra-fragment flooding,
    and merge. O(log n) phases; round cost per phase proportional to the
    current fragment diameter (measured and reported by the runtime). *)

(** [minimum_spanning_forest net ~weight] returns the forest edges as
    [(u, v)] pairs with [u < v]. [weight u v] must be a symmetric
    non-negative integer fitting in a word; ties are broken by endpoint
    ids, so the forest is unique and deterministic. *)
val minimum_spanning_forest :
  Net.t -> weight:(int -> int -> int) -> (int * int) list

(** [minimum_spanning_forest_on net ~active ~edge_active ~weight]
    restricts the computation to a marked subgraph (used by §5.2 to pack
    all the sampled subgraphs in parallel, and by the CDS→tree
    extraction on the virtual graph). *)
val minimum_spanning_forest_on :
  Net.t ->
  active:(int -> bool) ->
  edge_active:(int -> int -> bool) ->
  weight:(int -> int -> int) ->
  (int * int) list

(** [minimum_spanning_forest_hybrid ?cap net ~weight] is the Kutten–Peleg
    style O~(D+√n)-shaped variant: per Borůvka phase, fragment labels
    come from {!Components.identify_hybrid} and the per-fragment
    minimum outgoing edges are elected by one {e pipelined keyed
    convergecast} over the global BFS tree (height + #fragments rounds)
    followed by a pipelined downcast of the winners — instead of
    intra-fragment flooding whose cost tracks fragment diameters.
    Produces exactly the same forest as [minimum_spanning_forest]. *)
val minimum_spanning_forest_hybrid :
  ?cap:int -> Net.t -> weight:(int -> int -> int) -> (int * int) list
