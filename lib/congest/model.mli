(** The paper's two synchronous message-passing models (§1.2).

    - [V_congest]: per round, each node sends one O(log n)-bit message to
      {e all} of its neighbors (congestion lives in the vertices).
    - [E_congest]: per round, one O(log n)-bit message can be sent in
      each direction of each edge (the classical CONGEST model).

    V-CONGEST is a restriction of E-CONGEST: any V-CONGEST algorithm
    runs unchanged in E-CONGEST. *)

type t =
  | V_congest
  | E_congest

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [words_budget ~n] is the per-message budget in "words", where a word
    is an integer of O(log n) bits (the paper's messages are O(log n)
    bits total; we allow a small constant number of words, matching the
    usual constant-factor slack of the model). *)
val words_budget : n:int -> int

(** [max_word ~n] bounds the magnitude a single word may carry: ids are
    4·log₂ n-bit random strings in the paper, so values up to n⁴ are
    legal (with a small floor for tiny graphs). *)
val max_word : n:int -> int
