module Graph = Graphs.Graph

(* Min-pair flooding restricted to the marked subgraph. Each round every
   active node broadcasts its current best (value, id); neighbors joined
   by an active edge adopt smaller pairs. Stops one round after global
   stabilization (the simulator detects quiescence; a real execution
   would detect it with a constant-factor doubling horizon). *)
let flood_pairs net ~active ~edge_active ~init =
  let n = Net.n net in
  let best = Array.init n init in
  let changed = ref true in
  while !changed do
    changed := false;
    let inboxes =
      Net.broadcast_round net (fun u ->
          if active u then
            let value, id = best.(u) in
            Some [| value; id |]
          else None)
    in
    for v = 0 to n - 1 do
      if active v then
        List.iter
          (fun (sender, m) ->
            if edge_active sender v && edge_active v sender then begin
              let pair = (m.(0), m.(1)) in
              if pair < best.(v) then begin
                best.(v) <- pair;
                changed := true
              end
            end)
          inboxes.(v)
    done
  done;
  best

let identify net ~active ~edge_active =
  let best = flood_pairs net ~active ~edge_active ~init:(fun u -> (u, u)) in
  Array.mapi (fun v (_, id) -> if active v then id else -1) best

let identify_min_value net ~active ~edge_active ~value =
  let best =
    flood_pairs net ~active ~edge_active ~init:(fun u -> (value u, u))
  in
  let values = Array.mapi (fun v (x, _) -> if active v then x else -1) best in
  let ids = Array.mapi (fun v (_, id) -> if active v then id else -1) best in
  (values, ids)

(* Capped flooding of (random rank, id) pairs for exactly [cap] rounds.
   Every node adopts the id of the smallest rank within its cap-radius
   ball; with random ranks (the paper's §2 random-id assumption) the
   expected number of distinct ball minima is O~(n / cap) even on paths,
   where sequential ids would give Θ(n) fragments. Fragment label regions
   need not be connected, but any two labels joined by a subgraph edge
   belong to one true component, so contracting labels preserves the
   component structure and the global merge below is exact. *)
let capped_flood net ~active ~edge_active ~cap ~seed =
  let n = Net.n net in
  let rng = Random.State.make [| seed; n; cap |] in
  let rank = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = rank.(i) in
    rank.(i) <- rank.(j);
    rank.(j) <- tmp
  done;
  let best = Array.init n (fun u -> (rank.(u), u)) in
  for _ = 1 to cap do
    let inboxes =
      Net.broadcast_round net (fun u ->
          if active u then
            let r, id = best.(u) in
            Some [| r; id |]
          else None)
    in
    for v = 0 to n - 1 do
      if active v then
        List.iter
          (fun (sender, m) ->
            if edge_active sender v && edge_active v sender then begin
              let pair = (m.(0), m.(1)) in
              if pair < best.(v) then best.(v) <- pair
            end)
          inboxes.(v)
    done
  done;
  Array.mapi (fun v (_, id) -> if active v then id else -1) best

let identify_hybrid ?cap ?(seed = 1) net ~active ~edge_active =
  let n = Net.n net in
  let cap =
    match cap with
    | Some c -> c
    | None -> int_of_float (ceil (sqrt (float_of_int (max 1 n))))
  in
  (* phase 1: fragments by capped flooding of random ranks *)
  let frag = capped_flood net ~active ~edge_active ~cap ~seed in
  (* one round: everyone announces its fragment label so crossing edges
     can be seen locally *)
  let inboxes =
    Net.broadcast_round net (fun u ->
        if active u then Some [| frag.(u) |] else None)
  in
  let crossing = Array.make n [] in
  for v = 0 to n - 1 do
    if active v then
      List.iter
        (fun (sender, m) ->
          if
            edge_active sender v && edge_active v sender
            && m.(0) >= 0 && m.(0) <> frag.(v)
          then begin
            let pair = (min m.(0) frag.(v), max m.(0) frag.(v)) in
            if not (List.mem pair crossing.(v)) then
              crossing.(v) <- pair :: crossing.(v)
          end)
        inboxes.(v)
  done;
  (* phase 2: Kutten-Peleg pipelined upcast of the fragment graph through
     per-node spanning-forest filters *)
  let tree = Primitives.bfs_tree net ~root:0 in
  let filters = Array.init n (fun _ -> Graphs.Union_find.create n) in
  let surviving =
    Primitives.pipelined_upcast net tree
      ~items:(fun u -> List.map (fun (a, b) -> [| a; b |]) crossing.(u))
      ~filter:(fun v m -> Graphs.Union_find.union filters.(v) m.(0) m.(1))
  in
  (* the root solves the fragment components *)
  let root_uf = Graphs.Union_find.create n in
  List.iter (fun m -> ignore (Graphs.Union_find.union root_uf m.(0) m.(1)))
    surviving;
  let involved = Hashtbl.create 64 in
  List.iter
    (fun m ->
      Hashtbl.replace involved m.(0) ();
      Hashtbl.replace involved m.(1) ())
    surviving;
  (* final label of an involved fragment = min fragment label of its class *)
  let class_min = Hashtbl.create 64 in
  (* lint: allow hashtbl-order — commutative min per class, order-free *)
  Hashtbl.iter
    (fun l () ->
      let r = Graphs.Union_find.find root_uf l in
      match Hashtbl.find_opt class_min r with
      | Some m when m <= l -> ()
      | _ -> Hashtbl.replace class_min r l)
    involved;
  let mapping =
    Hashtbl.fold
      (fun l () acc ->
        let final = Hashtbl.find class_min (Graphs.Union_find.find root_uf l) in
        [| l; final |] :: acc)
      involved []
    |> List.sort (fun (a : Net.msg) b ->
           match Int.compare a.(0) b.(0) with
           | 0 -> Int.compare a.(1) b.(1)
           | c -> c)
  in
  (* phase 3: pipelined downcast of the mapping; fragments not involved in
     any crossing edge already carry their component's minimum *)
  Primitives.pipelined_downcast net tree mapping;
  let remap = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace remap m.(0) m.(1)) mapping;
  Array.map
    (fun l ->
      if l < 0 then -1
      else match Hashtbl.find_opt remap l with Some f -> f | None -> l)
    frag
