(* Persistent domain team: see team.mli for the contract.

   Synchronization is one mutex + two condition variables. Workers park
   in [Condition.wait] between rounds (no spinning — a sharded net on a
   host with fewer cores than shards must degrade, not melt) and wake
   when [run] publishes a new shard cursor. All cursor/bookkeeping
   writes happen with the mutex held, which is also what gives the
   caller its happens-before edge over every shard body's writes. *)

type t = {
  width : int;
  mu : Mutex.t;
  work : Condition.t;  (* workers: new shards published, or stop *)
  finished : Condition.t;  (* caller: all shards of this run done *)
  mutable stop : bool;
  mutable fn : int -> unit;  (* current shard body *)
  mutable next_shard : int;  (* claim cursor *)
  mutable total_shards : int;
  mutable active : int;  (* claimed but unfinished shards *)
  mutable failures : (int * exn) list;  (* (shard, exn), unordered *)
  mutable workers : unit Domain.t list;
  mutable joined : bool;
}

let width t = t.width
let nop (_ : int) = ()

(* Claim and execute shards until the cursor is exhausted. Called with
   [mu] held; returns with [mu] held. Runs on workers and on the caller
   (which joins in after [?main]) alike. *)
let rec drain t =
  if t.next_shard < t.total_shards then begin
    let k = t.next_shard in
    (* cursor and failure bookkeeping happen with [mu] held (the Mutex
       is the happens-before edge). Which domain claims which shard k
       is scheduling-dependent, but shard bodies write only
       shard-k-owned slots and the caller merges per-shard results in
       shard-index order — the shard-merge determinism boundary
       (DESIGN.md §15) that keeps results independent of scheduling. *)
    t.next_shard <- k + 1;
    t.active <- t.active + 1;
    Mutex.unlock t.mu;
    let failure = match t.fn k with () -> None | exception e -> Some (k, e) in
    Mutex.lock t.mu;
    (match failure with Some f -> t.failures <- f :: t.failures | None -> ());
    t.active <- t.active - 1;
    if t.next_shard >= t.total_shards && t.active = 0 then
      Condition.broadcast t.finished;
    drain t
  end

let worker t =
  Par.with_worker @@ fun () ->
  Mutex.lock t.mu;
  let rec loop () =
    if t.stop then Mutex.unlock t.mu
    else if t.next_shard < t.total_shards then begin
      drain t;
      loop ()
    end
    else begin
      Condition.wait t.work t.mu;
      loop ()
    end
  in
  loop ()

(* Process-lifetime registry of teams, so [at_exit] can join any worker
   domains the program forgot to shut down — a domain left running at
   exit is a runtime error, and parked workers hold no state worth
   keeping.
   lint: allow global-mutable-state — exit-time cleanup registry only:
   appended on team creation, drained at exit; never read by protocol
   code, so it cannot carry state between nodes or rounds. *)
let live : t list Atomic.t = Atomic.make []

let rec register t =
  let cur = Atomic.get live in
  if not (Atomic.compare_and_set live cur (t :: cur)) then register t

let shutdown t =
  if not t.joined then begin
    t.joined <- true;
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let shutdown_all () = List.iter shutdown (Atomic.exchange live [])

let () = at_exit shutdown_all

let create ~width =
  let width = max 1 width in
  let t =
    {
      width;
      mu = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      stop = false;
      fn = nop;
      next_shard = 0;
      total_shards = 0;
      active = 0;
      failures = [];
      workers = [];
      joined = width <= 1;
    }
  in
  if width > 1 then begin
    (* lint: allow domain-spawn — the sharded round engine's one spawn
       site (persistent team, spawned once per net, parked between
       rounds). Everything the spawned workers touch is behind the
       shard-merge determinism boundary: shard bodies write only
       shard-owned slots, merges happen in shard-index order on the
       caller, so domains=N stays byte-identical to domains=1. *)
    t.workers <-
      List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    register t
  end;
  t

let run t ?main ~shards fn =
  if shards < 0 then invalid_arg "Congest.Team.run: negative shard count";
  if t.joined && t.width > 1 then
    invalid_arg "Congest.Team.run: team is shut down";
  if t.width = 1 then begin
    (match main with Some f -> f () | None -> ());
    for k = 0 to shards - 1 do
      fn k
    done
  end
  else begin
    Mutex.lock t.mu;
    t.fn <- fn;
    t.failures <- [];
    t.total_shards <- shards;
    t.next_shard <- 0;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    (match main with Some f -> f () | None -> ());
    Mutex.lock t.mu;
    drain t;
    while not (t.next_shard >= t.total_shards && t.active = 0) do
      Condition.wait t.finished t.mu
    done;
    let failures = t.failures in
    t.fn <- nop;
    Mutex.unlock t.mu;
    match List.sort (fun (a, _) (b, _) -> Int.compare a b) failures with
    | [] -> ()
    | (_, e) :: _ -> raise e
  end
