(** Synchronous message-passing runtime with bandwidth enforcement and
    congestion accounting.

    Algorithms advance the network one synchronous round at a time via
    [broadcast_round] (the V-CONGEST primitive: one message per node,
    delivered to all neighbors) or [edge_round] (the E-CONGEST
    primitive: one message per edge direction). The runtime

    - rejects messages exceeding the model's word budget or word width,
    - rejects [edge_round] under V-CONGEST,
    - counts rounds, messages and words,
    - tracks per-node and per-edge received-word loads (congestion).

    Protocol code must follow the locality discipline: what a node sends
    in round [r] may depend only on its id, its neighbors' ids, protocol
    inputs local to it, and messages received in rounds < r. The runtime
    cannot check this, but every algorithm in this repository is written
    against per-node knowledge arrays to respect it. *)

type msg = int array

type t

(** [create ?words_budget model g] wraps graph [g]. *)
val create : ?words_budget:int -> Model.t -> Graphs.Graph.t -> t

val graph : t -> Graphs.Graph.t
val model : t -> Model.t
val n : t -> int

(** {1 Rounds} *)

(** [broadcast_round net send] performs one round in which node [u]
    locally broadcasts [send u] (or stays silent on [None]).
    [inboxes.(v)] lists [(sender, message)] in increasing sender order.
    Legal in both models. *)
val broadcast_round : t -> (int -> msg option) -> (int * msg) list array

(** [edge_round net send] performs one round in which node [u] sends
    [send u], a list of [(neighbor, message)] pairs, at most one message
    per incident edge.
    @raise Invalid_argument under [V_congest] or on duplicate targets. *)
val edge_round : t -> (int -> (int * msg) list) -> (int * msg) list array

(** [silent_rounds net k] advances the clock by [k] message-free rounds
    (used when a protocol idles, e.g. waiting for a known bound). *)
val silent_rounds : t -> int -> unit

(** {1 Accounting} *)

val rounds : t -> int
val messages_sent : t -> int
val words_sent : t -> int

(** Maximum words received by any single node during any single round. *)
val max_node_load : t -> int

(** Maximum words that crossed any single edge (both directions summed)
    during any single round. *)
val max_edge_load : t -> int

(** [reset_stats net] zeroes all counters (the clock too). *)
val reset_stats : t -> unit

(** {1 Two-party simulation accounting (Appendix G)}

    When a boundary predicate is set (Alice's side vs Bob's side), the
    runtime counts every word carried by a message crossing the boundary
    — the communication a two-party simulation of the protocol needs
    (Lemma G.6 charges 2BT; the cross-boundary traffic of the actual run
    is what the simulating players must forward). *)

val set_boundary : t -> (int -> bool) -> unit
val clear_boundary : t -> unit
val boundary_words : t -> int

(** [checkpoint net] snapshots the counters; [rounds_since net cp] is the
    rounds elapsed since. *)
type checkpoint

val checkpoint : t -> checkpoint
val rounds_since : t -> checkpoint -> int
