(** Synchronous message-passing runtime with bandwidth enforcement,
    congestion accounting, and optional fault injection.

    Algorithms advance the network one synchronous round at a time via
    [broadcast_round] (the V-CONGEST primitive: one message per node,
    delivered to all neighbors) or [edge_round] (the E-CONGEST
    primitive: one message per edge direction). The runtime

    - rejects messages exceeding the model's word budget or word width,
    - rejects [edge_round] under V-CONGEST,
    - counts rounds, messages and words,
    - tracks per-node and per-edge received-word loads (congestion),
    - consults an optional fault hook ({!install_faults}) that can
      silence crashed nodes and destroy messages in flight.

    Protocol code must follow the locality discipline: what a node sends
    in round [r] may depend only on its id, its neighbors' ids, protocol
    inputs local to it, and messages received in rounds < r. The runtime
    cannot check this, but every algorithm in this repository is written
    against per-node knowledge arrays to respect it. *)

type msg = int array

(** {1 Protocol violations}

    Illegal protocol behaviour — oversized or over-wide messages,
    [edge_round] under V-CONGEST, messages along non-edges, two messages
    on one edge direction — raises [Protocol_violation] carrying the
    round, the offending node and/or edge when known, and the violated
    budget. *)

type violation = {
  v_round : int;  (** rounds completed when the violation occurred *)
  v_node : int option;  (** offending sender, when known *)
  v_edge : (int * int) option;  (** offending edge, when known *)
  v_budget : int option;  (** the violated budget/bound, when one exists *)
  v_detail : string;
}

exception Protocol_violation of violation

val pp_violation : Format.formatter -> violation -> unit

type t

(** [create ?words_budget ?domains model g] wraps graph [g].

    [domains] (default {!Par.net_domains}, itself 1 unless the CLI's
    [--domains] raised it) sizes the net's round engine: with
    [domains > 1] a persistent {!Team} of worker domains is spawned once
    and every fault-free, boundary-free round is sharded across it —
    nodes are partitioned into degree-weighted contiguous shards,
    per-shard scratch results are merged in shard-index order, and the
    order-sensitive digest fold runs sequentially on the calling domain
    (overlapped with inbox assembly). The merge discipline makes every
    observable — inboxes, telemetry, round digests, {!replay_check}
    verdicts — byte-identical across domain counts: [domains = n]
    produces exactly the output of [domains = 1].

    Rounds with a fault hook or boundary predicate installed always run
    the sequential engine (both are stateful sequential oracles whose
    consultation order is part of the certified semantics). A net
    created inside an [Exec.Pool] worker or another net's shard clamps
    to [domains = 1] — outer parallelism wins; see DESIGN.md §15. *)
val create : ?words_budget:int -> ?domains:int -> Model.t -> Graphs.Graph.t -> t

val graph : t -> Graphs.Graph.t
val model : t -> Model.t
val n : t -> int

(** Effective domain count of the round engine ([1] = sequential). May
    be less than the [?domains] requested: clamped by node count and by
    the nested-parallelism guard. *)
val domains : t -> int

(** [shutdown net] joins the net's worker domains, if any; the net stays
    usable and all subsequent rounds run sequentially. Idempotent.
    Without it, teams are joined by an [at_exit] hook — call it eagerly
    when creating many sharded nets in one process. *)
val shutdown : t -> unit

(** {1 Fault injection}

    A fault hook lets an adversary (see {!Faults}) interpose on every
    round without any change to algorithm code:

    - [on_round_start r] is called once per round, before any message
      moves, with [r] = the number of completed rounds (so the first
      round is 0);
    - a node [u] with [node_alive u = false] is {e crashed}: its send
      function is not invoked and nothing is delivered to it (the
      [deliver] hook is expected to refuse its inbound traffic);
    - [deliver ~src ~dst m] decides the fate of each individual message
      from a live sender: [false] destroys it in flight;
    - [reset ()] must rewind the adversary to its creation state
      (revive nodes and edges, reseed internal randomness, clear
      telemetry) so a replayed protocol faces identical faults; it is
      invoked by {!replay_reset} / {!replay_check}, never by ordinary
      rounds.

    Destroyed traffic is {e not} counted in [messages_sent]/[words_sent]
    or the load maxima; it is tallied in {!messages_lost} and
    {!words_lost}. With no hook installed (or the null adversary) the
    runtime behaves bit-identically to the fault-free semantics. *)

type fault_hook = {
  on_round_start : int -> unit;
  node_alive : int -> bool;
  deliver : src:int -> dst:int -> msg -> bool;
  reset : unit -> unit;
  save : unit -> unit -> unit;
      (** [save ()] snapshots the adversary's full internal state (RNG,
          crashed nodes, killed edges, pending schedules, telemetry) and
          returns a thunk restoring it — the adversary half of a
          {!barrier}. A restored adversary replays the exact fault
          decisions it made after the snapshot, which is what makes
          {!rollback} + re-execution deterministic. *)
}

val install_faults : t -> fault_hook -> unit
val clear_faults : t -> unit
val has_faults : t -> bool

(** [node_alive net u] consults the installed fault hook ([true] when
    none is installed) — how live-aware protocol layers (repair, the
    live tester) learn which nodes the adversary has crashed without
    threading the adversary itself. *)
val node_alive : t -> int -> bool

(** {1 Rounds} *)

(** [broadcast_round net send] performs one round in which node [u]
    locally broadcasts [send u] (or stays silent on [None]).
    [inboxes.(v)] lists [(sender, message)] in increasing sender order.
    Legal in both models.

    The returned array is a per-net scratch arena, refilled on every
    round: its contents are valid only until the next
    [broadcast_round]/[edge_round] on the same net. Drain it (or copy
    it) before driving another round.
    @raise Protocol_violation on oversized or over-wide messages. *)
val broadcast_round : t -> (int -> msg option) -> (int * msg) list array

(** [edge_round net send] performs one round in which node [u] sends
    [send u], a list of [(neighbor, message)] pairs, at most one message
    per incident edge. The returned array is the same per-net scratch
    arena as {!broadcast_round}'s — valid only until the next round.
    @raise Protocol_violation under [V_congest], on non-edges, or on
    duplicate targets. *)
val edge_round : t -> (int -> (int * msg) list) -> (int * msg) list array

(** [silent_rounds net k] advances the clock by [k] message-free rounds
    (used when a protocol idles, e.g. waiting for a known bound, or for
    the round-charged backoff of a retry policy). *)
val silent_rounds : t -> int -> unit

(** {1 Accounting} *)

val rounds : t -> int
val messages_sent : t -> int
val words_sent : t -> int

(** Messages / words destroyed by the installed fault hook (crashed
    receivers and in-flight drops). Zero when no faults are installed. *)
val messages_lost : t -> int

val words_lost : t -> int

(** Maximum words received by any single node during any single round. *)
val max_node_load : t -> int

(** Maximum words that crossed any single edge (both directions summed)
    during any single round. *)
val max_edge_load : t -> int

(** [reset_stats net] zeroes every counter: the clock ([rounds]),
    [messages_sent], [words_sent], [messages_lost], [words_lost], the
    load maxima, [boundary_words], and the per-round digest trace.

    Counter-reset contract: {e configuration} survives a reset — the
    boundary predicate stays set and an installed fault hook stays
    installed (with whatever internal state it has accumulated; crashed
    nodes stay crashed). Checkpoints taken before a reset are
    invalidated. Use {!replay_reset} when accumulated fault state must
    {e not} survive. *)
val reset_stats : t -> unit

(** {1 Two-party simulation accounting (Appendix G)}

    When a boundary predicate is set (Alice's side vs Bob's side), the
    runtime counts every word carried by a message crossing the boundary
    — the communication a two-party simulation of the protocol needs
    (Lemma G.6 charges 2BT; the cross-boundary traffic of the actual run
    is what the simulating players must forward). *)

val set_boundary : t -> (int -> bool) -> unit
val clear_boundary : t -> unit
val boundary_words : t -> int

(** {1 Observability}

    A pre-registered bundle of [Obs] instruments the round engine feeds
    per-round deltas into: [congest_rounds_total], [..._messages_total],
    [..._words_total], [..._words_lost_total], and
    [congest_budget_words_total] (messages × words budget — the capacity
    offered, so words/budget_words is budget utilization), plus an
    optional per-round ["congest.round"] span.

    Metrics are strictly out-of-band: attaching obs never touches the
    telemetry counters or round digests, so {!replay_check} verdicts are
    identical with and without it. With no obs attached the round loops
    pay one [None] branch per round. *)

type obs

(** [make_obs metrics] registers the congest instruments in [metrics]
    (idempotent — the same registry hands back the same counters, so one
    bundle can serve many nets). [spans] defaults to disabled. *)
val make_obs : ?spans:Obs.Span.t -> Obs.Metrics.t -> obs

val attach_obs : t -> obs -> unit
val detach_obs : t -> unit

(** [checkpoint net] snapshots the counters; [rounds_since net cp] is the
    rounds elapsed since. *)
type checkpoint

val checkpoint : t -> checkpoint
val rounds_since : t -> checkpoint -> int

(** {1 Barriers and rollback}

    A {!barrier} is a full-state snapshot — every counter, the round
    digest trace, and (via the fault hook's [save]) the adversary's
    internal state. {!rollback} rewinds the network to the barrier, so a
    {e poisoned} region (rounds corrupted by faults mid-protocol) can be
    discarded and re-executed deterministically: the restored adversary
    re-makes identical decisions, so re-running the identical protocol
    region reproduces the identical telemetry ({!replay_check}'s
    contract, applied to a region instead of a whole run).

    Rollback erases the discarded rounds from the clock; honest
    accounting of the work a recovery {e actually} performed is the
    caller's job (see [Domtree.Reliable]'s [rounds_charged], which adds
    {!discarded_since} back in before rolling back). Node states are
    owned by protocol code (per-node knowledge arrays), so protocol
    layers snapshot their own arrays alongside the barrier. *)

type barrier

val barrier : t -> barrier

(** [rollback net b] rewinds counters, digests, and adversary state to
    [b]. Barriers don't expire, but rolling back to [b] after a
    [reset_stats]/[replay_reset] (which zero the clock) would resurrect
    pre-reset telemetry — take barriers inside one run only. *)
val rollback : t -> barrier -> unit

(** Rounds elapsed since the barrier — the amount a [rollback] would
    discard. *)
val discarded_since : t -> barrier -> int

(** {1 Determinism sanitizer}

    Every round the runtime folds the traffic it moves — delivered
    {e and} destroyed, with sender, receiver and payload — into a
    per-round digest, so two executions have equal telemetry iff they
    are message-for-message identical. [replay_check] runs a protocol
    twice on one network and diffs the two telemetries: a protocol that
    consults any randomness outside its threaded seed (global [Random],
    hash-order iteration, wall clock) diverges and is reported. *)

type telemetry = {
  t_rounds : int;
  t_messages : int;
  t_words : int;
  t_messages_lost : int;
  t_words_lost : int;
  t_max_node_load : int;
  t_max_edge_load : int;
  t_boundary_words : int;
  t_digests : int array;
      (** one digest per message round ([broadcast_round]/[edge_round]),
          chronological; [silent_rounds] contributes none *)
}

val telemetry : t -> telemetry

(** Single digest summarizing a whole run (clock + every round digest). *)
val run_digest : telemetry -> int

val pp_telemetry : Format.formatter -> telemetry -> unit

(** Field-by-field differences, human-readable; [[]] iff equal. *)
val diff_telemetry : telemetry -> telemetry -> string list

(** [replay_reset net] is {!reset_stats} {e plus} a rewind of the
    installed fault hook to its creation state (nodes revived, edges
    restored, adversary RNG reseeded, fault telemetry cleared) — the
    reset that makes one [t] reusable across replays. The boundary
    predicate and the hook installation itself survive, as with
    [reset_stats]. *)
val replay_reset : t -> unit

type replay_report = {
  r_first : telemetry;
  r_second : telemetry;
  r_divergence : string option;
      (** [None] = bit-identical telemetry; [Some d] describes the first
          differing counters/rounds *)
}

val deterministic : replay_report -> bool

(** [replay_check net protocol] calls [protocol net] twice, each from a
    {!replay_reset} network, and diffs the telemetry. The network is
    left in the second run's final state, so callers can keep reporting
    from it. [protocol] must re-derive all randomness from its own
    captured seed for the check to pass — which is exactly what it
    verifies. *)
val replay_check : t -> (t -> unit) -> replay_report
