module Graph = Graphs.Graph

type msg = int array

type violation = {
  v_round : int;
  v_node : int option;
  v_edge : (int * int) option;
  v_budget : int option;
  v_detail : string;
}

exception Protocol_violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "round %d" v.v_round;
  (match v.v_node with
  | Some u -> Format.fprintf ppf ", node %d" u
  | None -> ());
  (match v.v_edge with
  | Some (u, w) -> Format.fprintf ppf ", edge (%d,%d)" u w
  | None -> ());
  (match v.v_budget with
  | Some b -> Format.fprintf ppf ", budget %d" b
  | None -> ());
  Format.fprintf ppf ": %s" v.v_detail

let () =
  Printexc.register_printer (function
    | Protocol_violation v ->
      Some (Format.asprintf "Congest.Net.Protocol_violation (%a)" pp_violation v)
    | _ -> None)

type fault_hook = {
  on_round_start : int -> unit;
  node_alive : int -> bool;
  deliver : src:int -> dst:int -> msg -> bool;
  reset : unit -> unit;
  save : unit -> unit -> unit;
      (* snapshot adversary state; the returned thunk restores it *)
}

(* Pre-registered instrument bundle: lookups (which take the registry
   mutex) happen once in [make_obs]; the per-round path only touches
   atomics. Metrics feed from the same counters the replay digests
   certify but are written out-of-band — attaching or detaching obs
   cannot change [round_digest] or any telemetry field, so
   [replay_check] is oblivious to it by construction. *)
type obs = {
  o_rounds : Obs.Metrics.counter;
  o_messages : Obs.Metrics.counter;
  o_words : Obs.Metrics.counter;
  o_words_lost : Obs.Metrics.counter;
  o_budget_words : Obs.Metrics.counter;
      (* capacity actually offered to the traffic sent: messages ×
         words_budget, so words/budget_words is budget utilization *)
  o_spans : Obs.Span.t;
}

(* Per-round per-edge received-word loads. Each direction carries at
   most [words_budget] words per round, so a whole edge carries at most
   [2 * words_budget]: when that fits a byte (every default — the
   budget is the O(log n)-word constant 8), loads pack into a Bytes of
   one byte per edge instead of a word per edge, an 8x density win that
   keeps the per-edge bookkeeping cache-resident at m ~ 4M. *)
type edge_loads = Packed of Bytes.t | Wide of int array

(* Per-net sharding state: a persistent domain team plus the per-shard
   scratch the two round engines hand out. Present iff the net was
   created with [domains > 1].

   Shard-merge determinism (DESIGN.md §15): shard k owns the contiguous
   vertex range [st_bounds.(k), st_bounds.(k+1)) — as senders in phase
   1, as receivers in phase 2 — and writes only slots indexed by its
   own vertices or by k itself. Every cross-shard quantity is merged on
   the calling domain in shard-index order after the team barrier, and
   the order-sensitive FNV digest fold is not sharded at all: it runs
   sequentially on the calling domain, overlapped with phase 2. *)
type shard_state = {
  st_team : Team.t;
  st_width : int;
  st_bounds : int array;  (* width+1 partition bounds over [0, n] *)
  st_sent : msg option array;  (* broadcast phase 1: per-sender message *)
  st_fail_u : int array;  (* per shard: sender of first violation, -1 *)
  st_fail : exn array;  (* per shard: that violation (dummy Not_found) *)
  st_edge_max : int array;  (* per shard: this round's max edge load *)
  (* per-shard metrics registries; phase 2 counts deliveries into them
     and round end merges the snapshots in shard order — the exactness
     of congest_*_total under sharding rides on [Obs.Metrics.merge]
     being associative *)
  st_metrics : Obs.Metrics.t array;
  st_msg_c : Obs.Metrics.counter array;
  st_word_c : Obs.Metrics.counter array;
  mutable st_prev_messages : int;  (* merged counter values, last merge *)
  mutable st_prev_words : int;
  (* E-CONGEST arenas, sized 2m lazily on the first sharded edge_round *)
  mutable st_edge_ready : bool;
  mutable st_outs : (int * msg) list array;  (* phase 1: per-sender outs *)
  mutable st_out_msg : msg array;  (* sender-slot -> message this round *)
  mutable st_out_stamp : int array;  (* sender-slot -> st_tag when sent *)
  mutable st_mirror : int array;  (* slot (u lists v) -> slot (v lists u) *)
  mutable st_tag : int;  (* one fresh stamp per sharded edge round *)
}

type t = {
  graph : Graph.t;
  (* CSR views of [graph], captured once: the round loops walk adjacency
     slots directly, and [csr_ids.(s)] hands each message its edge index
     without the per-message binary search the seed implementation paid
     in [account]. *)
  csr_off : int array;
  csr_adj : int array;
  csr_ids : int array;
  model : Model.t;
  words_budget : int;
  max_word : int;
  mutable rounds : int;
  mutable messages : int;
  mutable words : int;
  mutable messages_lost : int;
  mutable words_lost : int;
  mutable max_node_load : int;
  mutable max_edge_load : int;
  node_load : int array; (* scratch: words received this round *)
  edge_load : edge_loads; (* scratch: words over each edge this round *)
  inboxes : (int * msg) list array;
      (* scratch arena returned by broadcast_round/edge_round; refilled
         at the start of every round, so its contents are valid only
         until the next round on the same net *)
  stamp : int array; (* scratch: duplicate-edge-direction check *)
  mutable stamp_token : int;
      (* one fresh token per sender per round; [stamp.(v) = token] iff
         this sender already loaded edge direction (u,v) this round —
         the per-node Hashtbl of the seed implementation, flattened *)
  mutable boundary : (int -> bool) option;
      (* Alice/Bob side predicate for two-party simulation accounting *)
  mutable boundary_words : int;
  mutable faults : fault_hook option;
  mutable round_digest : int;
      (* running hash of this round's delivered and destroyed traffic *)
  mutable digests_rev : int list; (* one digest per message round *)
  mutable shard : shard_state option;
  mutable obs : obs option;
  (* counter values as of the previous end_round, so obs counters get
     per-round deltas and survive [reset_stats] without double-counting *)
  mutable obs_prev_messages : int;
  mutable obs_prev_words : int;
  mutable obs_prev_words_lost : int;
  mutable obs_round_tok : Obs.Span.token option;
}

let make_shard_state g width =
  let n = Graph.n g in
  let off = Graph.csr_offsets g in
  let slots = Array.length (Graph.csr_neighbors g) in
  (* degree-weighted contiguous partition: shard k starts at the first
     vertex whose adjacency begins at or after slot k/width of 2m, so
     shards carry comparable edge work even on skewed degree profiles
     (lollipop: the clique core spreads across shards) *)
  let bounds = Array.make (width + 1) 0 in
  bounds.(width) <- n;
  let v = ref 0 in
  for k = 1 to width - 1 do
    let target = slots * k / width in
    while !v < n && off.(!v) < target do
      incr v
    done;
    bounds.(k) <- !v
  done;
  let metrics = Array.init width (fun _ -> Obs.Metrics.create ()) in
  {
    st_team = Team.create ~width;
    st_width = width;
    st_bounds = bounds;
    st_sent = Array.make n None;
    st_fail_u = Array.make width (-1);
    st_fail = Array.make width Not_found;
    st_edge_max = Array.make width 0;
    st_metrics = metrics;
    st_msg_c =
      Array.map (fun r -> Obs.Metrics.counter r "congest_messages_total") metrics;
    st_word_c =
      Array.map (fun r -> Obs.Metrics.counter r "congest_words_total") metrics;
    st_prev_messages = 0;
    st_prev_words = 0;
    st_edge_ready = false;
    st_outs = [||];
    st_out_msg = [||];
    st_out_stamp = [||];
    st_mirror = [||];
    st_tag = 0;
  }

let create ?words_budget ?domains model g =
  let n = Graph.n g in
  let budget =
    match words_budget with Some b -> b | None -> Model.words_budget ~n
  in
  let requested =
    match domains with Some d -> d | None -> Par.net_domains ()
  in
  (* nested-parallelism guard: inside an Exec.Pool worker (or another
     net's shard) a sharded net would oversubscribe the machine — the
     composition runs one whole simulation per domain instead *)
  let width =
    if Par.in_worker () then 1 else max 1 (min requested (max 1 n))
  in
  {
    graph = g;
    csr_off = Graph.csr_offsets g;
    csr_adj = Graph.csr_neighbors g;
    csr_ids = Graph.csr_edge_ids g;
    model;
    words_budget = budget;
    max_word = Model.max_word ~n;
    rounds = 0;
    messages = 0;
    words = 0;
    messages_lost = 0;
    words_lost = 0;
    max_node_load = 0;
    max_edge_load = 0;
    node_load = Array.make n 0;
    edge_load =
      (if 2 * budget <= 255 then Packed (Bytes.make (Graph.m g) '\000')
       else Wide (Array.make (Graph.m g) 0));
    inboxes = Array.make n [];
    stamp = Array.make n 0;
    stamp_token = 0;
    boundary = None;
    boundary_words = 0;
    faults = None;
    round_digest = 0;
    digests_rev = [];
    shard = (if width > 1 then Some (make_shard_state g width) else None);
    obs = None;
    obs_prev_messages = 0;
    obs_prev_words = 0;
    obs_prev_words_lost = 0;
    obs_round_tok = None;
  }

let domains net =
  match net.shard with Some st -> st.st_width | None -> 1

let shutdown net =
  match net.shard with
  | Some st ->
    net.shard <- None;
    Team.shutdown st.st_team
  | None -> ()

let make_obs ?(spans = Obs.Span.disabled) metrics =
  {
    o_rounds = Obs.Metrics.counter metrics "congest_rounds_total";
    o_messages = Obs.Metrics.counter metrics "congest_messages_total";
    o_words = Obs.Metrics.counter metrics "congest_words_total";
    o_words_lost = Obs.Metrics.counter metrics "congest_words_lost_total";
    o_budget_words = Obs.Metrics.counter metrics "congest_budget_words_total";
    o_spans = spans;
  }

let attach_obs net o =
  net.obs <- Some o;
  net.obs_prev_messages <- net.messages;
  net.obs_prev_words <- net.words;
  net.obs_prev_words_lost <- net.words_lost

let detach_obs net =
  net.obs <- None;
  net.obs_round_tok <- None

let graph net = net.graph
let model net = net.model
let n net = Graph.n net.graph

let violate ?node ?edge ?budget net detail =
  raise
    (Protocol_violation
       {
         v_round = net.rounds;
         v_node = node;
         v_edge = edge;
         v_budget = budget;
         v_detail = detail;
       })

let check_msg ?node net m =
  if Array.length m > net.words_budget then
    violate ?node net ~budget:net.words_budget
      (Printf.sprintf "message of %d words exceeds budget" (Array.length m));
  Array.iter
    (fun w ->
      if abs w > net.max_word then
        violate ?node net ~budget:net.max_word
          (Printf.sprintf "word %d exceeds O(log n) width bound" w))
    m

let install_faults net hook = net.faults <- Some hook
let clear_faults net = net.faults <- None
let has_faults net = net.faults <> None

(* [fill] is false on sharded rounds: phase 2 stores (rather than
   accumulates) every node's load and inbox, and the per-edge array is
   bypassed entirely in favor of per-shard running maxima. *)
let begin_round ?(fill = true) net =
  if fill then begin
    Array.fill net.node_load 0 (Array.length net.node_load) 0;
    match net.edge_load with
    | Packed b -> Bytes.fill b 0 (Bytes.length b) '\000'
    | Wide a -> Array.fill a 0 (Array.length a) 0
  end;
  net.round_digest <- 0;
  (match net.obs with
  | None -> ()
  | Some o ->
    if Obs.Span.is_enabled o.o_spans then
      net.obs_round_tok <- Some (Obs.Span.start o.o_spans "congest.round"));
  match net.faults with
  | Some h -> h.on_round_start net.rounds
  | None -> ()

let end_round ?(edge_scan = true) net =
  net.rounds <- net.rounds + 1;
  net.digests_rev <- net.round_digest :: net.digests_rev;
  Array.iter (fun l -> if l > net.max_node_load then net.max_node_load <- l)
    net.node_load;
  if edge_scan then begin
    match net.edge_load with
    | Packed b ->
      for i = 0 to Bytes.length b - 1 do
        let l = Bytes.get_uint8 b i in
        if l > net.max_edge_load then net.max_edge_load <- l
      done
    | Wide a ->
      Array.iter
        (fun l -> if l > net.max_edge_load then net.max_edge_load <- l)
        a
  end;
  match net.obs with
  | None -> ()
  | Some o ->
    let dm = net.messages - net.obs_prev_messages in
    Obs.Metrics.incr o.o_rounds;
    Obs.Metrics.add o.o_messages dm;
    Obs.Metrics.add o.o_words (net.words - net.obs_prev_words);
    Obs.Metrics.add o.o_words_lost (net.words_lost - net.obs_prev_words_lost);
    Obs.Metrics.add o.o_budget_words (dm * net.words_budget);
    net.obs_prev_messages <- net.messages;
    net.obs_prev_words <- net.words;
    net.obs_prev_words_lost <- net.words_lost;
    (match net.obs_round_tok with
    | Some tok ->
      net.obs_round_tok <- None;
      Obs.Span.finish o.o_spans tok
    | None -> ())

(* FNV-style mix; folded over (src, dst, payload) of every message the
   round moves — delivered or destroyed — so two executions agree on a
   round's digest iff they moved bit-identical traffic with an identical
   fault outcome. *)
let mix h x = ((h lxor x) * 0x01000193) land 0x3FFFFFFFFFFFFFF

let digest_msg net ~tag ~src ~dst m =
  let h = mix (mix (mix net.round_digest tag) src) dst in
  net.round_digest <- Array.fold_left mix h m

let alive net u =
  match net.faults with None -> true | Some h -> h.node_alive u

let delivered net ~src ~dst m =
  match net.faults with
  | None -> true
  | Some h -> h.deliver ~src ~dst m

(* [ei] is the message's edge index, read off the CSR slot table by the
   round loops — the seed implementation recomputed it here with an
   O(log m) polymorphic binary search per message. *)
let account net ~src ~dst ~ei m =
  let len = Array.length m in
  digest_msg net ~tag:1 ~src ~dst m;
  net.messages <- net.messages + 1;
  net.words <- net.words + len;
  net.node_load.(dst) <- net.node_load.(dst) + len;
  (match net.boundary with
  | Some side -> if side src <> side dst then
      net.boundary_words <- net.boundary_words + len
  | None -> ());
  match net.edge_load with
  | Packed b -> Bytes.set_uint8 b ei (Bytes.get_uint8 b ei + len)
  | Wide a -> a.(ei) <- a.(ei) + len

let lose net ~src ~dst m =
  digest_msg net ~tag:2 ~src ~dst m;
  net.messages_lost <- net.messages_lost + 1;
  net.words_lost <- net.words_lost + Array.length m

(* Both round engines reuse [net.inboxes] as the result arena: refilled
   with [] here, cons'd into during the sweep, returned to the caller.
   Valid until the next round on the same net (documented in the .mli);
   every protocol layer drains its inboxes before the next round.

   Iteration order — senders [nn-1 downto 0], each sender's neighbors
   ascending — is the seed implementation's order exactly: it is what
   makes inboxes list senders increasing, and what the round digests
   (folded per message, in delivery order) certify byte-for-byte. *)
let fresh_inboxes net =
  let inboxes = net.inboxes in
  Array.fill inboxes 0 (Array.length inboxes) [];
  inboxes

(* The sharded engines take over only when no fault hook and no boundary
   predicate is installed: both are stateful sequential oracles
   (adversary RNG, cross-cut accounting) whose consultation order is
   part of the certified semantics, so rounds under them run the
   sequential engine — on every width, which keeps domains=N trivially
   byte-identical to domains=1 there too. *)
let shard_ready net =
  match net.shard with
  | Some _ when net.faults = None && net.boundary = None -> net.shard
  | _ -> None

(* Re-raise the recorded violation of the highest offending sender —
   exactly the one the sequential engine (senders swept descending)
   would have raised first. *)
let reraise_shard_failure st =
  let width = st.st_width in
  let worst = ref (-1) and worst_k = ref (-1) in
  for k = 0 to width - 1 do
    if st.st_fail_u.(k) > !worst then begin
      worst := st.st_fail_u.(k);
      worst_k := k
    end
  done;
  if !worst >= 0 then raise st.st_fail.(!worst_k)

(* Merge the per-shard delivery counters into the net totals, in shard
   order, through [Obs.Metrics.merge] — the associative merge is what
   keeps messages/words exact (and the obs feed in [end_round] then
   sees ordinary deltas, identical to the sequential engine's). *)
let merge_shard_counters net st =
  let merged =
    Array.fold_left
      (fun acc reg -> Obs.Metrics.merge acc (Obs.Metrics.snapshot reg))
      Obs.Metrics.empty st.st_metrics
  in
  let total name =
    match Obs.Metrics.find_counter merged name with Some v -> v | None -> 0
  in
  let tm = total "congest_messages_total" in
  let tw = total "congest_words_total" in
  net.messages <- net.messages + tm - st.st_prev_messages;
  net.words <- net.words + tw - st.st_prev_words;
  st.st_prev_messages <- tm;
  st.st_prev_words <- tw;
  for k = 0 to st.st_width - 1 do
    if st.st_edge_max.(k) > net.max_edge_load then
      net.max_edge_load <- st.st_edge_max.(k)
  done

(* One sharded V-CONGEST round. Three phases against the shard-merge
   determinism boundary:

   1. (parallel) shard k sweeps its senders descending, validates each
      message and stores it in [st_sent] — per-sender slots, disjoint
      across shards. First violation is recorded per shard, and the
      highest-sender one is re-raised after the barrier: the same
      exception the sequential sweep raises, before any accounting.
   2. (parallel) shard k sweeps its receivers, assembling each inbox by
      walking the CSR slice descending (cons yields the ascending
      sender order the sequential engine produces), storing per-node
      loads, counting deliveries into its own metrics registry, and
      tracking the max load over the edges it owns (min endpoint).
   3. (sequential, overlapped with 2) the calling domain replays the
      sends in exactly the sequential order — senders descending,
      neighbors ascending — through the order-sensitive FNV digest
      fold. The fold reads only [st_sent], so it commutes with 2.

   The merge (shard order, [merge_shard_counters]) then reproduces the
   sequential counters exactly; no shard result depends on which domain
   ran which shard. *)
let broadcast_round_sharded net st send =
  begin_round ~fill:false net;
  let nn = n net in
  let off = net.csr_off and adj = net.csr_adj in
  let inboxes = net.inboxes in
  let node_load = net.node_load in
  let bounds = st.st_bounds in
  let sent = st.st_sent in
  let fail_u = st.st_fail_u and fail = st.st_fail in
  let edge_max = st.st_edge_max in
  let msg_c = st.st_msg_c and word_c = st.st_word_c in
  let phase_send k =
    fail_u.(k) <- -1;
    let lo = bounds.(k) and hi = bounds.(k + 1) in
    let u = ref (hi - 1) in
    let stopped = ref false in
    while (not !stopped) && !u >= lo do
      let uu = !u in
      (try
         match send uu with
         | None -> sent.(uu) <- None
         | Some m ->
           check_msg ~node:uu net m;
           sent.(uu) <- Some m
       with e ->
         fail_u.(k) <- uu;
         fail.(k) <- e;
         sent.(uu) <- None;
         stopped := true);
      decr u
    done
  in
  let phase_receive k =
    let lo = bounds.(k) and hi = bounds.(k + 1) in
    let msgs = ref 0 and words = ref 0 and emax = ref 0 in
    for v = lo to hi - 1 do
      let len_v =
        match sent.(v) with Some m -> Array.length m | None -> 0
      in
      let acc = ref [] and w_in = ref 0 and c_in = ref 0 in
      for s = off.(v + 1) - 1 downto off.(v) do
        let u = adj.(s) in
        (match sent.(u) with
        | Some m ->
          let len = Array.length m in
          acc := (u, m) :: !acc;
          incr c_in;
          w_in := !w_in + len;
          if u > v then begin
            let tot = len + len_v in
            if tot > !emax then emax := tot
          end
        | None -> if u > v && len_v > !emax then emax := len_v)
      done;
      inboxes.(v) <- !acc;
      node_load.(v) <- !w_in;
      msgs := !msgs + !c_in;
      words := !words + !w_in
    done;
    edge_max.(k) <- !emax;
    Obs.Metrics.add msg_c.(k) !msgs;
    Obs.Metrics.add word_c.(k) !words
  in
  let digest () =
    for u = nn - 1 downto 0 do
      match sent.(u) with
      | None -> ()
      | Some m ->
        for s = off.(u) to off.(u + 1) - 1 do
          digest_msg net ~tag:1 ~src:u ~dst:adj.(s) m
        done
    done
  in
  Team.run st.st_team ~shards:st.st_width phase_send;
  reraise_shard_failure st;
  Team.run st.st_team ~main:digest ~shards:st.st_width phase_receive;
  merge_shard_counters net st;
  end_round ~edge_scan:false net;
  inboxes

let broadcast_round_seq net send =
  begin_round net;
  let nn = n net in
  let inboxes = fresh_inboxes net in
  let off = net.csr_off and adj = net.csr_adj and ids = net.csr_ids in
  (match net.faults with
  | None ->
    (* fault-free fast path: no liveness or delivery consultation *)
    for u = nn - 1 downto 0 do
      match send u with
      | None -> ()
      | Some m ->
        check_msg ~node:u net m;
        for s = off.(u) to off.(u + 1) - 1 do
          let v = adj.(s) in
          account net ~src:u ~dst:v ~ei:ids.(s) m;
          inboxes.(v) <- (u, m) :: inboxes.(v)
        done
    done
  | Some h ->
    for u = nn - 1 downto 0 do
      if h.node_alive u then
        match send u with
        | None -> ()
        | Some m ->
          check_msg ~node:u net m;
          for s = off.(u) to off.(u + 1) - 1 do
            let v = adj.(s) in
            if h.deliver ~src:u ~dst:v m then begin
              account net ~src:u ~dst:v ~ei:ids.(s) m;
              inboxes.(v) <- (u, m) :: inboxes.(v)
            end
            else lose net ~src:u ~dst:v m
          done
    done);
  end_round net;
  inboxes

let broadcast_round net send =
  match shard_ready net with
  | Some st -> broadcast_round_sharded net st send
  | None -> broadcast_round_seq net send

(* binary search for [v] in [u]'s sorted CSR slice; -1 when absent *)
let slot_in off adj u v =
  let lo = ref off.(u) and hi = ref off.(u + 1) in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w = adj.(mid) in
    if w = v then found := mid else if w < v then lo := mid + 1 else hi := mid
  done;
  !found

let ensure_edge_arenas net st =
  if not st.st_edge_ready then begin
    let slots = Array.length net.csr_adj in
    let ids = net.csr_ids in
    let mirror = Array.make slots 0 in
    (* the two slots of each undirected edge point at each other *)
    let first = Array.make (Graph.m net.graph) (-1) in
    for s = 0 to slots - 1 do
      let ei = ids.(s) in
      if first.(ei) < 0 then first.(ei) <- s
      else begin
        mirror.(s) <- first.(ei);
        mirror.(first.(ei)) <- s
      end
    done;
    st.st_outs <- Array.make (n net) [];
    st.st_out_msg <- Array.make slots [||];
    st.st_out_stamp <- Array.make slots 0;
    st.st_mirror <- mirror;
    st.st_edge_ready <- true
  end

(* One sharded E-CONGEST round; same three phases as the broadcast
   engine, with the per-direction traffic staged in sender-slot arenas:
   sender u's message to v lives at u's CSR slot for v, stamped with
   this round's tag, so phase 2 reads direction (u -> v) through
   [st_mirror] and the duplicate-direction check is one stamp probe. *)
let edge_round_sharded net st send =
  ensure_edge_arenas net st;
  begin_round ~fill:false net;
  let nn = n net in
  let off = net.csr_off and adj = net.csr_adj in
  let inboxes = net.inboxes in
  let node_load = net.node_load in
  let bounds = st.st_bounds in
  let outs_arr = st.st_outs in
  let out_msg = st.st_out_msg and out_stamp = st.st_out_stamp in
  let mirror = st.st_mirror in
  let fail_u = st.st_fail_u and fail = st.st_fail in
  let edge_max = st.st_edge_max in
  let msg_c = st.st_msg_c and word_c = st.st_word_c in
  st.st_tag <- st.st_tag + 1;
  let tag = st.st_tag in
  let phase_send k =
    fail_u.(k) <- -1;
    let lo = bounds.(k) and hi = bounds.(k + 1) in
    let u = ref (hi - 1) in
    let stopped = ref false in
    while (not !stopped) && !u >= lo do
      let uu = !u in
      (try
         let outs = send uu in
         outs_arr.(uu) <- outs;
         List.iter
           (fun (v, m) ->
             let s = slot_in off adj uu v in
             if s < 0 then
               violate net ~node:uu ~edge:(uu, v)
                 "edge_round: message along a non-edge";
             if out_stamp.(s) = tag then
               violate net ~node:uu ~edge:(uu, v)
                 "edge_round: two messages on one edge direction";
             out_stamp.(s) <- tag;
             check_msg ~node:uu net m;
             out_msg.(s) <- m)
           outs
       with e ->
         fail_u.(k) <- uu;
         fail.(k) <- e;
         outs_arr.(uu) <- [];
         stopped := true);
      decr u
    done
  in
  let phase_receive k =
    let lo = bounds.(k) and hi = bounds.(k + 1) in
    let msgs = ref 0 and words = ref 0 and emax = ref 0 in
    for v = lo to hi - 1 do
      let acc = ref [] and w_in = ref 0 and c_in = ref 0 in
      for s' = off.(v + 1) - 1 downto off.(v) do
        let u = adj.(s') in
        let s = mirror.(s') in
        if out_stamp.(s) = tag then begin
          let m = out_msg.(s) in
          acc := (u, m) :: !acc;
          incr c_in;
          w_in := !w_in + Array.length m
        end;
        if u > v then begin
          let tot =
            (if out_stamp.(s) = tag then Array.length out_msg.(s) else 0)
            + (if out_stamp.(s') = tag then Array.length out_msg.(s') else 0)
          in
          if tot > !emax then emax := tot
        end
      done;
      inboxes.(v) <- !acc;
      node_load.(v) <- !w_in;
      msgs := !msgs + !c_in;
      words := !words + !w_in
    done;
    edge_max.(k) <- !emax;
    Obs.Metrics.add msg_c.(k) !msgs;
    Obs.Metrics.add word_c.(k) !words
  in
  let digest () =
    for u = nn - 1 downto 0 do
      List.iter
        (fun (v, m) -> digest_msg net ~tag:1 ~src:u ~dst:v m)
        outs_arr.(u)
    done
  in
  Team.run st.st_team ~shards:st.st_width phase_send;
  reraise_shard_failure st;
  Team.run st.st_team ~main:digest ~shards:st.st_width phase_receive;
  merge_shard_counters net st;
  end_round ~edge_scan:false net;
  inboxes

let edge_round_seq net send =
  begin_round net;
  let nn = n net in
  let inboxes = fresh_inboxes net in
  let stamp = net.stamp in
  for u = nn - 1 downto 0 do
    if alive net u then begin
      let outs = send u in
      net.stamp_token <- net.stamp_token + 1;
      let token = net.stamp_token in
      List.iter
        (fun (v, m) ->
          (* one edge_index search yields both the non-edge check and
             the edge id the seed recomputed later in [account] *)
          let ei =
            match Graph.edge_index net.graph u v with
            | ei -> ei
            | exception Not_found ->
              violate net ~node:u ~edge:(u, v)
                "edge_round: message along a non-edge"
          in
          if stamp.(v) = token then
            violate net ~node:u ~edge:(u, v)
              "edge_round: two messages on one edge direction";
          stamp.(v) <- token;
          check_msg ~node:u net m;
          if delivered net ~src:u ~dst:v m then begin
            account net ~src:u ~dst:v ~ei m;
            inboxes.(v) <- (u, m) :: inboxes.(v)
          end
          else lose net ~src:u ~dst:v m)
        outs
    end
  done;
  end_round net;
  inboxes

let edge_round net send =
  if net.model = Model.V_congest then
    violate net "edge_round: per-edge messages illegal in V-CONGEST";
  match shard_ready net with
  | Some st -> edge_round_sharded net st send
  | None -> edge_round_seq net send

let silent_rounds net k =
  if k < 0 then invalid_arg "Congest.silent_rounds: negative";
  net.rounds <- net.rounds + k

let rounds net = net.rounds
let messages_sent net = net.messages
let words_sent net = net.words
let messages_lost net = net.messages_lost
let words_lost net = net.words_lost
let max_node_load net = net.max_node_load
let max_edge_load net = net.max_edge_load

let reset_stats net =
  net.rounds <- 0;
  net.messages <- 0;
  net.words <- 0;
  net.messages_lost <- 0;
  net.words_lost <- 0;
  net.max_node_load <- 0;
  net.max_edge_load <- 0;
  net.boundary_words <- 0;
  net.round_digest <- 0;
  net.digests_rev <- [];
  (* obs counters are cumulative across resets: re-base the deltas.
     The per-shard registries are likewise cumulative (their counters
     never rewind), so their [st_prev_*] bases are left alone — the
     next sharded round still merges an exact per-round delta. *)
  net.obs_prev_messages <- 0;
  net.obs_prev_words <- 0;
  net.obs_prev_words_lost <- 0

let set_boundary net side = net.boundary <- Some side
let clear_boundary net = net.boundary <- None
let boundary_words net = net.boundary_words

type checkpoint = int

let checkpoint net = net.rounds
let rounds_since net cp = net.rounds - cp

let node_alive net u = alive net u

(* ------------------------------------------------------------------ *)
(* Barriers: full-state snapshots for deterministic rollback *)

type barrier = {
  b_rounds : int;
  b_messages : int;
  b_words : int;
  b_messages_lost : int;
  b_words_lost : int;
  b_max_node_load : int;
  b_max_edge_load : int;
  b_boundary_words : int;
  b_round_digest : int;
  b_digests_rev : int list;
  b_restore_faults : (unit -> unit) option;
}

let barrier net =
  {
    b_rounds = net.rounds;
    b_messages = net.messages;
    b_words = net.words;
    b_messages_lost = net.messages_lost;
    b_words_lost = net.words_lost;
    b_max_node_load = net.max_node_load;
    b_max_edge_load = net.max_edge_load;
    b_boundary_words = net.boundary_words;
    b_round_digest = net.round_digest;
    b_digests_rev = net.digests_rev;
    b_restore_faults = Option.map (fun h -> h.save ()) net.faults;
  }

let rollback net b =
  net.rounds <- b.b_rounds;
  net.messages <- b.b_messages;
  net.words <- b.b_words;
  net.messages_lost <- b.b_messages_lost;
  net.words_lost <- b.b_words_lost;
  net.max_node_load <- b.b_max_node_load;
  net.max_edge_load <- b.b_max_edge_load;
  net.boundary_words <- b.b_boundary_words;
  net.round_digest <- b.b_round_digest;
  net.digests_rev <- b.b_digests_rev;
  match b.b_restore_faults with Some restore -> restore () | None -> ()

let discarded_since net b = net.rounds - b.b_rounds

(* ------------------------------------------------------------------ *)
(* Determinism sanitizer *)

type telemetry = {
  t_rounds : int;
  t_messages : int;
  t_words : int;
  t_messages_lost : int;
  t_words_lost : int;
  t_max_node_load : int;
  t_max_edge_load : int;
  t_boundary_words : int;
  t_digests : int array; (* per message round, chronological *)
}

let telemetry net =
  {
    t_rounds = net.rounds;
    t_messages = net.messages;
    t_words = net.words;
    t_messages_lost = net.messages_lost;
    t_words_lost = net.words_lost;
    t_max_node_load = net.max_node_load;
    t_max_edge_load = net.max_edge_load;
    t_boundary_words = net.boundary_words;
    t_digests = Array.of_list (List.rev net.digests_rev);
  }

let run_digest t = Array.fold_left mix (mix 0 t.t_rounds) t.t_digests

let pp_telemetry ppf t =
  Format.fprintf ppf
    "%d rounds (%d message rounds), %d messages, %d words, %d/%d lost, \
     loads %d/%d, digest %x"
    t.t_rounds (Array.length t.t_digests) t.t_messages t.t_words
    t.t_messages_lost t.t_words_lost t.t_max_node_load t.t_max_edge_load
    (run_digest t)

let diff_telemetry a b =
  let d = ref [] in
  let cmp name proj =
    if proj a <> proj b then
      d := Printf.sprintf "%s: %d vs %d" name (proj a) (proj b) :: !d
  in
  cmp "rounds" (fun t -> t.t_rounds);
  cmp "messages" (fun t -> t.t_messages);
  cmp "words" (fun t -> t.t_words);
  cmp "messages_lost" (fun t -> t.t_messages_lost);
  cmp "words_lost" (fun t -> t.t_words_lost);
  cmp "max_node_load" (fun t -> t.t_max_node_load);
  cmp "max_edge_load" (fun t -> t.t_max_edge_load);
  cmp "boundary_words" (fun t -> t.t_boundary_words);
  (if Array.length a.t_digests <> Array.length b.t_digests then
     d :=
       Printf.sprintf "message rounds: %d vs %d" (Array.length a.t_digests)
         (Array.length b.t_digests)
       :: !d
   else
     match
       Array.to_seq a.t_digests
       |> Seq.zip (Array.to_seq b.t_digests)
       |> Seq.mapi (fun i (x, y) -> (i, x, y))
       |> Seq.find (fun (_, x, y) -> x <> y)
     with
     | Some (i, y, x) ->
       d := Printf.sprintf "round %d digest: %x vs %x" i x y :: !d
     | None -> ());
  List.rev !d

let replay_reset net =
  reset_stats net;
  match net.faults with Some h -> h.reset () | None -> ()

type replay_report = {
  r_first : telemetry;
  r_second : telemetry;
  r_divergence : string option;
}

let deterministic r = r.r_divergence = None

let replay_check net protocol =
  replay_reset net;
  protocol net;
  let first = telemetry net in
  replay_reset net;
  protocol net;
  let second = telemetry net in
  let divergence =
    match diff_telemetry first second with
    | [] -> None
    | ds -> Some (String.concat "; " ds)
  in
  { r_first = first; r_second = second; r_divergence = divergence }
