(** Distributed connected-component identification on a marked subgraph —
    the Theorem B.2 interface of the paper (after Thurimella / Kutten–
    Peleg).

    Two implementations of the O(min\{D', D+√n log* n\}) bound:

    - [identify] is min-label flooding restricted to subgraph edges,
      taking (max strong component diameter + O(1)) rounds — the [D']
      branch, which the dominating-tree packing relies on (class
      components have strong diameter O(n log n / k), Lemma 4.6);
    - [identify_hybrid] is the Kutten–Peleg-style [D + √n] branch:
      flooding capped at ~√n rounds forms fragments, then the fragment
      adjacencies are upcast over a global BFS tree through per-node
      spanning-forest filters (at most #fragments−1 edges survive at
      any node), the root solves the fragment components, and the
      label mapping is downcast pipelined. *)

(** [identify net ~active ~edge_active] labels every active node with the
    minimum id of its component in the subgraph of active nodes and
    edges [e] with [edge_active u v = true] (only queried on edges whose
    two endpoints are active; must be symmetric). Inactive nodes get
    label [-1]. *)
val identify :
  Net.t -> active:(int -> bool) -> edge_active:(int -> int -> bool) -> int array

(** [identify_min_value net ~active ~edge_active ~value] is Theorem B.2
    proper: every active node learns the minimum [(value, id)] pair over
    its component; returns [(min_values, min_ids)]. *)
val identify_min_value :
  Net.t ->
  active:(int -> bool) ->
  edge_active:(int -> int -> bool) ->
  value:(int -> int) ->
  int array * int array

(** [identify_hybrid ?cap ?seed net ~active ~edge_active] computes a
    {e consistent} labeling (same label iff same component; the label is
    the id of the minimum-random-rank node, per §2's random-id
    assumption, not necessarily the minimum id) in
    O(cap + D + #fragments) rounds, [cap] defaulting to ⌈√n⌉. On
    subgraphs with large strong diameter (long paths) this is
    asymptotically faster than flooding. *)
val identify_hybrid :
  ?cap:int ->
  ?seed:int ->
  Net.t ->
  active:(int -> bool) ->
  edge_active:(int -> int -> bool) ->
  int array
