(** Persistent domain team for the sharded round engine.

    A [Net] with [domains > 1] keeps one team for its whole lifetime:
    the worker domains are spawned once and reused by every round, so
    the per-round cost is two condition-variable handshakes, not a
    [Domain.spawn]. Between rounds the workers park on a condition
    variable — never spin — so an idle sharded net costs nothing and
    oversubscribed hosts (more shards than cores) degrade gracefully.

    Determinism contract (the shard-merge boundary, DESIGN.md §15):
    [run] hands out shard indices [0 .. shards-1] from a shared cursor,
    so {e which} domain executes {e which} shard is scheduling-
    dependent — but shard bodies may only write slots owned by their
    shard index (disjoint array ranges, per-shard accumulator cells,
    [Atomic]s), and the caller folds per-shard results in shard-index
    order after [run] returns. Under that discipline the merged outcome
    is a pure function of the inputs, independent of domain count and
    scheduling. *)

type t

val create : width:int -> t
(** [create ~width] spawns [width - 1] worker domains (the calling
    domain is the [width]-th executor). [width <= 1] spawns nothing and
    makes [run] purely sequential. Workers are marked with
    [Par.with_worker], so nets or pools created inside shard bodies
    degrade to sequential instead of oversubscribing. *)

val width : t -> int

val run : t -> ?main:(unit -> unit) -> shards:int -> (int -> unit) -> unit
(** [run t ?main ~shards fn] executes [fn k] once for every
    [k in 0 .. shards-1] across the team, and [main ()] (default nothing)
    exactly once on the calling domain, concurrently with the shard
    work — the slot used for sequential per-round work (the FNV digest
    fold) that must not interleave with anything. Returns when all of
    it has finished: every write made by a shard body
    happens-before the return (mutex handshake). If shard bodies raise,
    the exception of the lowest shard index is re-raised here — but the
    round engines record violations per shard and merge them
    themselves, so in [Net] this path means a bug, not a protocol
    violation. Not reentrant: one [run] per team at a time; shard
    bodies must not call [run] on their own team. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Forgetting to call it
    leaks parked domains until process exit, where an [at_exit] hook
    joins every remaining team ([Domain]s left unjoined at exit are a
    runtime error). Must not be called while a [run] is in flight. *)
