(** Deterministic, seeded fault adversary for the CONGEST runtime.

    The paper's decomposition is a redundancy guarantee — Ω(k/log n)
    vertex-disjoint connected dominating sets survive node and edge
    failures (Theorem 1.1, Corollary A.1). This module makes failure a
    first-class, reproducible input: an adversary composes failure
    {!spec}s and installs as a {!Congest.Net.fault_hook}, so every
    algorithm in the repository runs {e unmodified} under faults.

    Semantics (all deterministic for a fixed seed):

    - {b fail-stop crashes}: a node scheduled to crash at round [r] is
      silenced from round [r] onward (0-based round index, as reported
      to [on_round_start]) — it sends nothing and its inbox receives
      nothing, forever;
    - {b Bernoulli drops}: each delivered message is independently
      destroyed with probability [p] (several [Drop_bernoulli] specs
      compose as independent layers);
    - {b scheduled edge kills}: an edge killed at round [r] destroys
      every message crossing it (both directions) from round [r] on;
    - {b greedy edge kills}: an adaptive adversary with a kill budget
      that, every [period] rounds, kills the edge over which it has
      observed the most cumulative words — the worst-case-flavored
      adversary of the Daga et al. / expander-routing line of work.

    Telemetry records every fault as an {!event} (which round, which
    node/edge, words lost), plus running counters. *)

type event =
  | Crash of { round : int; node : int }
  | Drop of { round : int; src : int; dst : int; words : int }
  | Edge_kill of { round : int; u : int; v : int }

val pp_event : Format.formatter -> event -> unit

type spec =
  | Crash_at of (int * int) list  (** [(round, node)] fail-stop schedule *)
  | Drop_bernoulli of float  (** per-message drop probability *)
  | Kill_edges_at of (int * (int * int)) list  (** [(round, (u,v))] *)
  | Greedy_edge_kill of { budget : int; period : int; from_round : int }
      (** adaptively kill the most-loaded observed edge, every [period]
          rounds starting at [from_round], at most [budget] times *)
  | Crash_storm of {
      from_round : int;
      per_round : int;
      storm_rounds : int;
      universe : int;
    }
      (** a burst of random fail-stop crashes: for [storm_rounds] rounds
          starting at [from_round], draw [per_round] victims per round
          from [\[0, universe)] with the adversary's seeded RNG
          (redrawing an already-dead victim is a no-op, so each storm
          round kills at most [per_round] fresh nodes). The chaos
          harness's workhorse. *)

type t

(** [create ?seed specs] builds the composed adversary.
    @raise Invalid_argument on a drop probability outside [0,1]. *)
val create : ?seed:int -> spec list -> t

(** The null adversary: no faults; installing it leaves every execution
    bit-identical to the fault-free runtime. *)
val none : unit -> t

val is_null : t -> bool

(** [install net t] attaches the adversary to [net]; [uninstall net]
    detaches whatever hook is installed. An adversary keeps its state
    (crashed nodes, killed edges, telemetry) across installs. *)
val install : Net.t -> t -> unit

val uninstall : Net.t -> unit

(** [reset t] rewinds the adversary to its creation state: crashed nodes
    revive, killed edges restore, the greedy budget and drop RNG reseed,
    and telemetry clears. [Net.replay_reset] calls this through the
    installed hook so one adversary replays identically. *)
val reset : t -> unit

(** [save t] deep-snapshots the adversary (RNG, crashed/killed sets,
    pending schedules, budgets, telemetry); the returned thunk restores
    that state and may be invoked any number of times. This is the
    adversary half of {!Net.barrier}: restore + identical re-execution
    re-makes identical fault decisions. *)
val save : t -> unit -> unit

(** The raw hook, for callers managing installation themselves. *)
val hook : t -> Net.fault_hook

(** {1 Queries} *)

val alive : t -> int -> bool
val crashed : t -> int -> bool
val crashed_nodes : t -> int list
val killed_edges : t -> (int * int) list
val edge_killed : t -> int * int -> bool
val drop_probability : t -> float

(** {1 Telemetry} *)

(** Chronological fault log. Messages destroyed because their receiver
    crashed are tallied in the counters but not event-logged (one crash
    event stands for the whole silence). *)
val events : t -> event list

val drops : t -> int
val words_lost : t -> int
val crashes : t -> int
val edges_killed : t -> int
val pp_summary : Format.formatter -> t -> unit
