let worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_key

let with_worker f =
  let prev = Domain.DLS.get worker_key in
  Domain.DLS.set worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set worker_key prev) f

(* lint: allow global-mutable-state — process-wide parallelism policy
   knob, set once at CLI startup before any protocol runs; it sizes
   domain teams and is never read by node closures, so it cannot carry
   state between nodes. Atomic for cross-domain publication order. *)
let default_net_domains = Atomic.make 1
let set_net_domains d = Atomic.set default_net_domains (max 1 d)
let net_domains () = Atomic.get default_net_domains
