(** Process-wide parallelism policy.

    Two independent subsystems of this repository spawn domains: the
    experiment pool ([Exec.Pool], one whole simulation per domain) and
    the sharded round engine ([Congest.Net] with [domains > 1], many
    domains inside one simulation). Composing them naively
    oversubscribes the machine: a pool running [-j 4] jobs, each of
    which creates a 4-domain net, asks for 16 runnable domains.

    This module is the tiny shared base both consult:

    - a domain-local flag marking "this domain is already a parallel
      worker", set by whichever subsystem owns the domain, so nested
      layers can degrade to sequential instead of multiplying; and
    - the process-wide default width for new sharded nets, threaded
      from the CLI ([--domains]) through [Graphs.Source.load] so the
      many [Net.create] call sites pick it up without each growing a
      parameter.

    It has no dependencies so every library can use it. *)

val in_worker : unit -> bool
(** [in_worker ()] is [true] when the calling domain is a worker owned
    by an enclosing parallel subsystem (an [Exec.Pool] worker running
    with pool parallelism, or a [Congest.Team] shard worker). New
    parallel layers must check this and fall back to width 1. *)

val with_worker : (unit -> 'a) -> 'a
(** [with_worker f] runs [f] with [in_worker () = true], restoring the
    previous flag on exit (including exceptional exit). *)

val set_net_domains : int -> unit
(** [set_net_domains d] sets the process default width for subsequently
    created nets to [max 1 d]. Called once at startup from the CLI; the
    perf sweep overrides per-net instead via [Net.create ?domains]. *)

val net_domains : unit -> int
(** Current process default width for new nets. Initially [1]: sharding
    is strictly opt-in, and [domains = 1] is the reference sequential
    engine every other width must match byte-for-byte. *)
