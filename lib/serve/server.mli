(** The decomposition daemon: a Unix-domain-socket server over
    {!Framing} frames of {!Protocol} requests.

    Single-domain event loop ([Unix.select]): readable connections are
    drained into per-connection buffers, complete frames are decoded
    and admitted to the bounded {!Queue} (full queue ⇒ immediate
    [Overloaded] reply — load shedding, not collapse), then the queue
    is drained through {!Worker.handle} and replies are written back.

    Failure containment boundaries:
    - a malformed {e frame} (bad version, oversized, CRC mismatch) gets
      one [Bad_request] error frame and that connection is closed — a
      byte stream that failed its CRC cannot be resynchronized;
    - a malformed {e payload} in a valid frame gets [Bad_request] and
      the connection lives on;
    - a crash inside a request is the {!Worker}'s problem and comes
      back as an [Internal_error] frame; the loop never sees it.

    [Health], [Stats] and [Drain] are control operations handled in the
    loop itself: health and stats answer immediately even under full
    queues (health is the liveness probe; stats is the metrics scrape),
    drain stops admission, lets the queue empty, answers [Drained], and
    makes {!run} return cleanly.

    Observability: the loop owns one {!Obs.Metrics} registry, threaded
    through the worker, its {!Exec.Pool} containment runs, the
    {!Exec.Cache} certificate store, and every per-request
    {!Congest.Net} — see DESIGN.md §14 for the instrument inventory. *)

type config = {
  socket_path : string;
  queue_capacity : int;
  max_frame : int;
  accept_backlog : int;
  worker : Worker.config;
  disk_cache_dir : string option;
      (** persist last-good certificates here ({!Exec.Cache}); [None] =
          in-memory only *)
  state_dir : string option;
      (** crash-only state: open a {!Journal} here, replay it into warm
          worker state at boot, journal every durable fact while
          serving; [None] = nothing survives a kill -9 *)
  snapshot_every : int;
      (** journal records between snapshot compactions *)
  idle_timeout_ms : int;
      (** slowloris guard: a connection holding a partial frame with no
          byte progress for this long is answered one [Bad_request] and
          closed (idle connections with empty buffers are unaffected) *)
  metrics_file : string option;
      (** periodically dump the metrics snapshot here as JSON
          ({!Obs.Export.json}, written atomically via
          {!Exec.Artifact.write}), plus once on shutdown; [None] = no
          dump. The [Stats] request serves the same snapshot live. *)
  metrics_every_ms : int;  (** dump period (default 1000) *)
}

val default_config : socket_path:string -> config

(** How the accept loop treats [Unix.accept] failures: [`Pause] (fd
    exhaustion — take the listener out of [select] with exponential
    backoff; clients queue in the kernel backlog), [`Retry] (transient
    noise such as [EINTR]/[ECONNABORTED] — drop the attempt, stay hot).
    Pure; exposed for the regression test. *)
val accept_error_action : Unix.error -> [ `Pause | `Retry ]

(** [run ?on_ready cfg] binds [cfg.socket_path] (unlinking any stale
    socket first), calls [on_ready] once accepting, and serves until a
    [Drain] request completes. The socket file is removed on exit. *)
val run : ?on_ready:(unit -> unit) -> config -> unit

(** Blocking client, used by the CLI, the load generator, and tests. *)
module Client : sig
  type t

  (** [connect ?timeout_s path] — [timeout_s] arms a receive deadline
      ([SO_RCVTIMEO]); {!recv} then returns [Error "receive timeout"]
      instead of blocking forever on a dead or stalled daemon. *)
  val connect : ?timeout_s:float -> string -> t

  (** One synchronous round trip. *)
  val request : t -> Protocol.request -> (Protocol.response, string) result

  (** Fire-and-forget encoded request — for pipelining; collect with
      {!recv}. *)
  val send : t -> Protocol.request -> unit

  (** Write raw bytes with no framing — for malformed-stream tests. *)
  val send_raw : t -> string -> unit

  val recv : t -> (Protocol.response, string) result
  val close : t -> unit
end
