module P = Protocol

type config = {
  socket_path : string;
  queue_capacity : int;
  max_frame : int;
  accept_backlog : int;
  worker : Worker.config;
  disk_cache_dir : string option;
  state_dir : string option;
  snapshot_every : int;
  idle_timeout_ms : int;
  metrics_file : string option;
  metrics_every_ms : int;
}

let default_config ~socket_path =
  {
    socket_path;
    queue_capacity = 64;
    max_frame = Framing.default_max_len;
    accept_backlog = 64;
    worker = Worker.default_config;
    disk_cache_dir = None;
    state_dir = None;
    snapshot_every = Journal.default_snapshot_every;
    idle_timeout_ms = 10_000;
    metrics_file = None;
    metrics_every_ms = 1_000;
  }

(* ------------------------------------------------------------------ *)
(* Connections *)

type conn = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable len : int;
  mutable alive : bool;
  mutable last_progress_ms : float;
      (** last time bytes arrived — the slowloris clock *)
}

let new_conn fd =
  {
    fd;
    buf = Bytes.create 4096;
    len = 0;
    alive = true;
    last_progress_ms = Worker.now_ms ();
  }

let conn_close c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* A reply failure (peer went away mid-write) closes that connection
   and nothing else. *)
let reply c resp =
  if c.alive then
    try Framing.write_frame c.fd (P.encode_response resp)
    with Unix.Unix_error _ | Sys_error _ -> conn_close c

type pending = { p_conn : conn; p_req : P.request; p_enqueued_ms : float }

type stats = {
  mutable served : int;
  mutable fresh : int;
  mutable stale : int;
  mutable shed : int;
  mutable errors : int;
}

(* The daemon's own instruments, registered once at boot. Per-opcode
   latency is observed only for queued work requests; control ops
   (Health/Drain/Stats) answer inline in the loop and are not timed. *)
type sobs = {
  so_requests : Obs.Metrics.counter;
  so_shed : Obs.Metrics.counter;
  so_errors : Obs.Metrics.counter;
  so_queue_depth : Obs.Metrics.gauge;
  so_journal_appends : Obs.Metrics.counter;
  so_fsync_us : Obs.Metrics.histogram;
  so_journal_bytes : Obs.Metrics.gauge;
  so_journal_segments : Obs.Metrics.gauge;
  so_replayed : Obs.Metrics.gauge;
  so_lat_decompose : Obs.Metrics.histogram;
  so_lat_verify : Obs.Metrics.histogram;
  so_lat_certificate : Obs.Metrics.histogram;
  so_lat_crash_test : Obs.Metrics.histogram;
}

let latency_name op = Obs.Metrics.labeled "serve_latency_us" [ ("op", op) ]

let make_sobs m =
  {
    so_requests = Obs.Metrics.counter m "serve_requests_total";
    so_shed = Obs.Metrics.counter m "serve_shed_total";
    so_errors = Obs.Metrics.counter m "serve_errors_total";
    so_queue_depth = Obs.Metrics.gauge m "serve_queue_depth";
    so_journal_appends = Obs.Metrics.counter m "serve_journal_appends_total";
    so_fsync_us = Obs.Metrics.histogram m "serve_journal_fsync_us";
    so_journal_bytes = Obs.Metrics.gauge m "serve_journal_bytes";
    so_journal_segments = Obs.Metrics.gauge m "serve_journal_segments";
    so_replayed = Obs.Metrics.gauge m "serve_replayed";
    so_lat_decompose = Obs.Metrics.histogram m (latency_name "decompose");
    so_lat_verify = Obs.Metrics.histogram m (latency_name "verify");
    so_lat_certificate = Obs.Metrics.histogram m (latency_name "certificate");
    so_lat_crash_test = Obs.Metrics.histogram m (latency_name "crash_test");
  }

let latency_hist o = function
  | P.Decompose _ -> Some o.so_lat_decompose
  | P.Verify _ -> Some o.so_lat_verify
  | P.Certificate _ -> Some o.so_lat_certificate
  | P.Crash_test -> Some o.so_lat_crash_test
  | P.Health | P.Drain | P.Stats -> None

type state = {
  cfg : config;
  worker : Worker.t;
  queue : pending Queue.t;
  stats : stats;
  metrics : Obs.Metrics.t;
  sobs : sobs;
  mutable last_dump_ms : float;
  started_ms : float;
  journal : Journal.t option;
  mutable conns : conn list;
  mutable draining : bool;
  mutable drain_conn : conn option;
  (* accept-path fd-exhaustion backoff: while paused the listener is
     left out of select, so pending connections sit in the kernel
     backlog instead of spinning the loop on EMFILE *)
  mutable accept_pause_until_ms : float;
  mutable accept_backoff_ms : float;
}

let accept_backoff0_ms = 50.
let accept_backoff_max_ms = 2_000.

(* Classifying accept(2) failures. [`Pause]: the process is out of fds
   (or the system is) — accepting again immediately would fail again,
   so shed by pausing the listener with exponential backoff. [`Retry]:
   transient per-connection noise (EINTR, ECONNABORTED, ...) — drop
   this attempt and keep the loop hot. Pure, exposed for tests. *)
let accept_error_action = function
  | Unix.EMFILE | Unix.ENFILE -> `Pause
  | _ -> `Retry

(* Journal writes must never take the daemon down: a full disk degrades
   durability, not availability. *)
let journal_try f = try f () with Sys_error _ | Unix.Unix_error _ -> ()

let health st =
  P.Health_report
    {
      P.h_uptime_ms = int_of_float (Worker.now_ms () -. st.started_ms);
      h_served = st.stats.served;
      h_fresh = st.stats.fresh;
      h_stale = st.stats.stale;
      h_shed = st.stats.shed;
      h_errors = st.stats.errors;
      h_queue_depth = Queue.depth st.queue;
      h_queue_capacity = Queue.capacity st.queue;
      h_draining = st.draining;
      h_cached_certs = Degrade.count (Worker.store st.worker);
      h_replayed = Worker.replayed st.worker;
      h_journal_bytes =
        (match st.journal with Some j -> Journal.size_bytes j | None -> 0);
      h_journal_segments =
        (match st.journal with Some j -> Journal.segment_count j | None -> 0);
    }

let stats_report st =
  P.Stats_report
    {
      P.s_uptime_ms = int_of_float (Worker.now_ms () -. st.started_ms);
      s_metrics = Obs.Metrics.snapshot st.metrics;
    }

let count_error st =
  st.stats.errors <- st.stats.errors + 1;
  Obs.Metrics.incr st.sobs.so_errors

let account st resp =
  st.stats.served <- st.stats.served + 1;
  Obs.Metrics.incr st.sobs.so_requests;
  match resp with
  | P.Result { P.stale = false; _ } -> st.stats.fresh <- st.stats.fresh + 1
  | P.Result { P.stale = true; _ } | P.Cert { P.c_stale = true; _ } ->
    st.stats.stale <- st.stats.stale + 1
  | P.Cert _ -> st.stats.fresh <- st.stats.fresh + 1
  | P.Error _ -> count_error st
  | P.Health_report _ | P.Drained _ | P.Stats_report _ -> ()

(* Admission: control ops answer in the loop; work requests face the
   bounded queue and are shed with an explicit Overloaded the moment it
   is full. *)
let admit st c req =
  match req with
  | P.Health -> reply c (health st)
  | P.Stats -> reply c (stats_report st)
  | P.Drain ->
    st.draining <- true;
    st.drain_conn <- Some c
  | req ->
    if st.draining then reply c (P.Error (P.Shutting_down, "daemon draining"))
    else if
      Queue.push st.queue
        { p_conn = c; p_req = req; p_enqueued_ms = Worker.now_ms () }
    then begin
      (* admitted: journal the acceptance. Batched — synced once per
         loop iteration, not per record (requests are idempotent
         queries; the replay only counts them) *)
      match st.journal with
      | Some j ->
        journal_try (fun () ->
            Journal.append j (Journal.Accept { req = P.encode_request req });
            Obs.Metrics.incr st.sobs.so_journal_appends)
      | None -> ()
    end
    else begin
      st.stats.shed <- st.stats.shed + 1;
      st.stats.served <- st.stats.served + 1;
      Obs.Metrics.incr st.sobs.so_shed;
      Obs.Metrics.incr st.sobs.so_requests;
      reply c
        (P.Error
           ( P.Overloaded,
             Printf.sprintf "queue full (%d); request shed"
               (Queue.capacity st.queue) ))
    end

(* Feed newly read bytes through the incremental frame decoder. *)
let drain_frames st c =
  let continue = ref true in
  while !continue && c.alive do
    match Framing.try_decode ~max_len:st.cfg.max_frame c.buf ~len:c.len with
    | `Need_more -> continue := false
    | `Error m ->
      (* the stream cannot be resynchronized after a framing error:
         answer once, then drop the connection *)
      reply c (P.Error (P.Bad_request, "frame: " ^ m));
      count_error st;
      conn_close c
    | `Frame (payload, consumed) -> (
      Bytes.blit c.buf consumed c.buf 0 (c.len - consumed);
      c.len <- c.len - consumed;
      match P.decode_request payload with
      | Error m ->
        count_error st;
        reply c (P.Error (P.Bad_request, "request: " ^ m))
      | Ok req -> admit st c req)
  done

let read_conn st c =
  if Bytes.length c.buf - c.len < 4096 then begin
    let bigger = Bytes.create (2 * Bytes.length c.buf) in
    Bytes.blit c.buf 0 bigger 0 c.len;
    c.buf <- bigger
  end;
  match Unix.read c.fd c.buf c.len (Bytes.length c.buf - c.len) with
  | 0 -> conn_close c
  | r ->
    c.len <- c.len + r;
    c.last_progress_ms <- Worker.now_ms ();
    drain_frames st c
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    conn_close c

(* Slowloris guard: a connection holding a half-written frame that has
   made no byte progress past the idle deadline gets one structured
   error and is dropped — its buffer must not be pinned forever. An
   idle connection with an {e empty} buffer is a legitimate keep-alive
   client between requests and is left alone. *)
let reap_stalled st ~now_ms =
  let limit = float_of_int st.cfg.idle_timeout_ms in
  List.iter
    (fun c ->
      if c.alive && c.len > 0 && now_ms -. c.last_progress_ms > limit then begin
        reply c
          (P.Error
             ( P.Bad_request,
               Printf.sprintf "frame stalled: no bytes for %d ms"
                 st.cfg.idle_timeout_ms ));
        count_error st;
        conn_close c
      end)
    st.conns

let process_queue st =
  let continue = ref true in
  while !continue do
    match Queue.pop st.queue with
    | None -> continue := false
    | Some { p_conn; p_req; p_enqueued_ms } ->
      if p_conn.alive then begin
        let resp = Worker.handle st.worker ~enqueued_at_ms:p_enqueued_ms p_req in
        account st resp;
        reply p_conn resp;
        match latency_hist st.sobs p_req with
        | Some h ->
          (* queue wait + compute + reply write, in µs *)
          Obs.Metrics.observe h
            (int_of_float ((Worker.now_ms () -. p_enqueued_ms) *. 1000.))
        | None -> ()
      end
  done

let run ?(on_ready = fun () -> ()) cfg =
  (* crash-only boot order (DESIGN.md §13): open + replay the journal,
     build the worker, fold the replay into warm state, and only then
     install the live journal sink — installing it earlier would
     re-journal every replayed fact on each restart. *)
  let journal, replay =
    match cfg.state_dir with
    | None -> (None, Journal.empty_replay)
    | Some dir ->
      let j, r = Journal.open_dir dir in
      (Some j, r)
  in
  let metrics = Obs.Metrics.create () in
  let sobs = make_sobs metrics in
  let worker =
    let disk_cache =
      Option.map (fun dir -> Exec.Cache.open_dir ~metrics dir)
        cfg.disk_cache_dir
    in
    Worker.create ?disk_cache ~metrics cfg.worker
  in
  Worker.warm worker replay;
  (match journal with
  | None -> ()
  | Some j ->
    Worker.set_journal worker (fun r ->
        (* Graph and Promote records are synced immediately: they are
           durable before the reply built on them reaches the client *)
        journal_try (fun () ->
            Journal.append j r;
            Obs.Metrics.incr sobs.so_journal_appends;
            let t0 = Worker.now_ms () in
            Journal.sync j;
            Obs.Metrics.observe sobs.so_fsync_us
              (int_of_float ((Worker.now_ms () -. t0) *. 1000.)))));
  let st =
    {
      cfg;
      worker;
      queue = Queue.create ~capacity:cfg.queue_capacity;
      stats = { served = 0; fresh = 0; stale = 0; shed = 0; errors = 0 };
      metrics;
      sobs;
      last_dump_ms = Worker.now_ms ();
      started_ms = Worker.now_ms ();
      journal;
      conns = [];
      draining = false;
      drain_conn = None;
      accept_pause_until_ms = 0.;
      accept_backoff_ms = accept_backoff0_ms;
    }
  in
  Obs.Metrics.set sobs.so_replayed (Worker.replayed worker);
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      List.iter conn_close st.conns;
      (match journal with
      | Some j -> journal_try (fun () -> Journal.close j)
      | None -> ());
      (* final dump so a short-lived or drained daemon still leaves a
         complete metrics file behind *)
      (match cfg.metrics_file with
      | Some path -> (
        try
          Exec.Artifact.write ~path
            (Obs.Export.json (Obs.Metrics.snapshot st.metrics))
        with Sys_error _ | Unix.Unix_error _ -> ())
      | None -> ());
      try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen listener cfg.accept_backlog;
      on_ready ();
      let running = ref true in
      while !running do
        st.conns <- List.filter (fun c -> c.alive) st.conns;
        let now = Worker.now_ms () in
        let accepting =
          (not st.draining) && now >= st.accept_pause_until_ms
        in
        let read_fds =
          (if accepting then [ listener ] else [])
          @ List.map (fun c -> c.fd) st.conns
        in
        let readable, _, _ =
          try Unix.select read_fds [] [] 0.05
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            if fd = listener then begin
              match Unix.accept listener with
              | client, _ ->
                st.accept_backoff_ms <- accept_backoff0_ms;
                st.conns <- new_conn client :: st.conns
              | exception Unix.Unix_error (e, _, _) -> (
                match accept_error_action e with
                | `Retry -> ()
                | `Pause ->
                  (* out of fds: leave the listener out of select until
                     the pause expires; pending clients wait in the
                     kernel backlog *)
                  st.accept_pause_until_ms <-
                    Worker.now_ms () +. st.accept_backoff_ms;
                  st.accept_backoff_ms <-
                    Float.min (2. *. st.accept_backoff_ms)
                      accept_backoff_max_ms)
            end
            else
              match List.find_opt (fun c -> c.fd = fd) st.conns with
              | Some c -> read_conn st c
              | None -> ())
          readable;
        reap_stalled st ~now_ms:(Worker.now_ms ());
        Obs.Metrics.set st.sobs.so_queue_depth (Queue.depth st.queue);
        process_queue st;
        (match st.journal with
        | Some j ->
          journal_try (fun () ->
              (* time only dirty syncs: a clean sync is a no-op and its
                 ~0µs samples would drown the real fsync latencies *)
              if Journal.is_dirty j then begin
                let t0 = Worker.now_ms () in
                Journal.sync j;
                Obs.Metrics.observe st.sobs.so_fsync_us
                  (int_of_float ((Worker.now_ms () -. t0) *. 1000.))
              end;
              (* snapshot_every = 0 means "snapshots disabled" — without
                 the guard, 0 appended >= 0 would trigger a full
                 snapshot + segment rotation every ~50ms loop tick *)
              if
                cfg.snapshot_every > 0
                && Journal.appended_since_snapshot j >= cfg.snapshot_every
              then Journal.snapshot j (Worker.journal_state worker);
              Obs.Metrics.set st.sobs.so_journal_bytes (Journal.size_bytes j);
              Obs.Metrics.set st.sobs.so_journal_segments
                (Journal.segment_count j))
        | None -> ());
        (match cfg.metrics_file with
        | Some path ->
          let now_dump = Worker.now_ms () in
          if
            now_dump -. st.last_dump_ms
            >= float_of_int (max 1 cfg.metrics_every_ms)
          then begin
            st.last_dump_ms <- now_dump;
            try
              Exec.Artifact.write ~path
                (Obs.Export.json (Obs.Metrics.snapshot st.metrics))
            with Sys_error _ | Unix.Unix_error _ -> ()
          end
        | None -> ());
        if st.draining && Queue.is_empty st.queue then begin
          (match st.drain_conn with
          | Some c ->
            reply c (P.Drained { served = st.stats.served });
            conn_close c
          | None -> ());
          running := false
        end
      done)

(* ------------------------------------------------------------------ *)
(* Client *)

module Client = struct
  (* The receive buffer persists across [recv] calls: one kernel read
     can return several pipelined reply frames, and bytes past the
     first frame must survive until the next [recv] — a fresh buffer
     per call would silently drop them. *)
  type t = { fd : Unix.file_descr; mutable rbuf : Bytes.t; mutable rlen : int }

  let connect ?timeout_s path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    (match timeout_s with
    | Some t -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO t
    | None -> ());
    { fd; rbuf = Bytes.create 4096; rlen = 0 }

  let send t req = Framing.write_frame t.fd (P.encode_request req)

  let send_raw t bytes =
    let b = Bytes.of_string bytes in
    ignore (Unix.write t.fd b 0 (Bytes.length b))

  let recv t =
    let rec go () =
      match Framing.try_decode t.rbuf ~len:t.rlen with
      | `Frame (payload, consumed) ->
        Bytes.blit t.rbuf consumed t.rbuf 0 (t.rlen - consumed);
        t.rlen <- t.rlen - consumed;
        P.decode_response payload
      | `Error m -> Error m
      | `Need_more ->
        if Bytes.length t.rbuf - t.rlen < 4096 then begin
          let bigger = Bytes.create (2 * Bytes.length t.rbuf) in
          Bytes.blit t.rbuf 0 bigger 0 t.rlen;
          t.rbuf <- bigger
        end;
        let r =
          try Unix.read t.fd t.rbuf t.rlen (Bytes.length t.rbuf - t.rlen) with
          | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> -1
        in
        if r < 0 then Error "receive timeout"
        else if r = 0 then Error "connection closed"
        else begin
          t.rlen <- t.rlen + r;
          go ()
        end
    in
    go ()

  let request t req =
    send t req;
    recv t

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
