(** Length-prefixed binary framing with a version byte and a per-frame
    CRC.

    Frame layout (all integers big-endian):

    {v
      +---------+-----------+------------------+--------------+
      | version | length u32| payload (length) | crc32 u32    |
      |   u8    |           |                  | (of payload) |
      +---------+-----------+------------------+--------------+
    v}

    The decoder is incremental — it is fed a connection's receive
    buffer and either produces one complete frame (plus how many bytes
    it consumed), asks for more bytes, or reports a malformation. A
    malformed stream (wrong version, oversized length, CRC mismatch)
    cannot be resynchronized, so the daemon answers one structured
    error frame and closes that connection; other connections are
    unaffected. *)

(** Protocol version carried by every frame. *)
val version : int

(** Default cap on a frame's payload size (4 MiB). A forged length
    field beyond the cap is rejected before any allocation. *)
val default_max_len : int

(** Bytes of framing overhead around a payload (version + length +
    CRC). *)
val overhead : int

(** CRC-32 (IEEE 802.3, reflected, as in zlib) of a string — exposed
    for tests; [crc32 "123456789" = 0xCBF43926]. *)
val crc32 : string -> int

(** [encode payload] wraps [payload] in a complete frame. *)
val encode : string -> string

(** [try_decode ?max_len ?pos buf ~len] inspects bytes [pos..len-1] of
    [buf] ([pos] defaults to [0]): [`Frame (payload, consumed)] on a
    complete, CRC-valid frame starting at [pos]; [`Need_more] when the
    buffer holds a valid prefix; [`Error _] when the stream is
    malformed beyond recovery. [pos] lets a reader walk a whole file of
    concatenated frames — the {!Journal} replays its segments this way
    — without shifting the buffer after every frame. *)
val try_decode :
  ?max_len:int ->
  ?pos:int ->
  bytes ->
  len:int ->
  [ `Frame of string * int | `Need_more | `Error of string ]

(** [write_frame fd payload] writes one complete frame (blocking).
    There is deliberately no blocking [read_frame] dual: a single
    kernel read may return several pipelined frames, so every reader —
    server and client alike — must keep a persistent buffer and drain
    it through {!try_decode}, or bytes past the first frame would be
    silently dropped. *)
val write_frame : Unix.file_descr -> string -> unit
