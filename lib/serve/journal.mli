(** Write-ahead log behind the daemon's crash-only discipline
    (DESIGN.md §13).

    Every fact the daemon must survive a kill -9 with — a graph
    resolved for a client, a request admitted to the queue, a
    degrade-store promotion — is appended to the live segment as one
    {!Framing} frame (version byte, u32 length, CRC-32) before the
    corresponding promise is made to the client. On restart,
    {!open_dir} replays the snapshot plus surviving segments; a torn
    tail is truncated at the last valid CRC and never trusted.

    On-disk layout under the state directory:

    {v
      snapshot.bin        Meta{gen} frame + compacted Graph/Promote
                          frames (written to snapshot.tmp, fsync'd,
                          renamed — atomic or absent)
      journal-<gen>.wal   the live append-only segment
    v}

    All writes happen on the server's single domain; the journal is
    not thread-safe and does not need to be. *)

type record =
  | Meta of { gen : int }
      (** snapshot header naming the generation it compacted up to;
          never appended to a segment *)
  | Graph of { spec : string }
      (** a canonical generator spec first resolved for a client *)
  | Accept of { req : string }
      (** an admitted request, wire-encoded — replayed only as a count
          (requests are idempotent queries, not state mutations) *)
  | Promote of { digest : string; cert : Domtree.Certificate.t }
      (** a degrade-store promotion: [cert] became the last-good
          certificate for the graph named by [digest] *)

(** The folded result of replaying snapshot + segments. *)
type replay = {
  r_graphs : string list;  (** first-seen order, deduplicated *)
  r_certs : (string * Domtree.Certificate.t) list;
      (** strongest certificate per digest (by
          {!Domtree.Certificate.retained_count}, later wins ties) — the
          same monotone discipline as {!Degrade.record} *)
  r_accepted : int;  (** Accept records seen *)
  r_records : int;  (** total non-Meta records folded *)
  r_torn_bytes : int;  (** bytes discarded past the last valid CRC *)
  r_corrupt_frames : int;
      (** 1 if a scan stopped on a corrupt (vs merely torn) frame *)
  r_snapshot_gen : int;  (** generation the snapshot compacted up to *)
}

val empty_replay : replay

type t

(** Suggested records-between-snapshots for callers that rotate via
    {!appended_since_snapshot}. *)
val default_snapshot_every : int

(** [open_dir dir] creates [dir] if needed, replays its snapshot and
    segments, physically truncates the live segment's torn tail so the
    next append extends a valid frame stream, and opens the live
    segment for appending. *)
val open_dir : string -> t * replay

(** [append t r] buffers one record. Not durable until {!sync}. *)
val append : t -> record -> unit

(** [sync t] flushes and fsyncs the live segment. Records appended
    before a completed [sync] survive any subsequent crash. *)
val sync : t -> unit

(** Records appended since the last {!snapshot} (or since open). *)
val appended_since_snapshot : t -> int

(** [true] iff appends since the last {!sync} make the next sync a real
    flush+fsync (lets callers time only the syncs that touch disk). *)
val is_dirty : t -> bool

(** On-disk footprint in bytes: snapshot plus segments, the live
    segment counted at its append position (buffered writes included) —
    what [Health]'s [h_journal_bytes] reports so operators and the
    supervisor's health gate can watch journal growth. *)
val size_bytes : t -> int

(** Number of WAL segments currently on disk (sealed + live); stays at
    1 when compaction keeps up. *)
val segment_count : t -> int

(** [snapshot t records] atomically replaces the snapshot with
    [records] (fsync-then-rename), rotates to a fresh live segment at
    the next generation, and deletes the compacted segments. [records]
    should be the caller's full authoritative state (it replaces, not
    extends, the previous snapshot). *)
val snapshot : t -> record list -> unit

val close : t -> unit

(** {2 Pure codec — exposed for tests and the chaos harness} *)

val encode_record : record -> string
val decode_record : string -> (record, string) result

(** [replay_records rs] folds a record list exactly as {!open_dir}
    folds the on-disk stream — the reference semantics for the
    randomized kill-point property tests. *)
val replay_records : record list -> replay
