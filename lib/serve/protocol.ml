type policy = [ `Retry | `Repair ]

type decompose_req = {
  gen : string;
  seed : int;
  k : int;
  policy : policy;
  distributed : bool;
  deadline_ms : int;
  fail_p : float;
  storm : string;
}

let default_decompose ~gen =
  {
    gen;
    seed = 42;
    k = 0;
    policy = `Retry;
    distributed = false;
    deadline_ms = 0;
    fail_p = 0.;
    storm = "";
  }

type request =
  | Decompose of decompose_req
  | Verify of decompose_req
  | Certificate of { gen : string }
  | Health
  | Drain
  | Crash_test
  | Stats

type decompose_resp = {
  digest : string;
  verified : bool;
  degraded : bool;
  stale : bool;
  budget_exhausted : bool;
  classes_requested : int;
  classes_retained : int;
  rounds_charged : int;
  attempts : int;
}

type certificate_resp = {
  c_digest : string;
  c_stale : bool;
  c_cert : Domtree.Certificate.t;
}

type health_resp = {
  h_uptime_ms : int;
  h_served : int;
  h_fresh : int;
  h_stale : int;
  h_shed : int;
  h_errors : int;
  h_queue_depth : int;
  h_queue_capacity : int;
  h_draining : bool;
  h_cached_certs : int;
  h_replayed : int;
  h_journal_bytes : int;
  h_journal_segments : int;
}

type stats_resp = { s_uptime_ms : int; s_metrics : Obs.Metrics.snapshot }

type error_kind =
  | Bad_request
  | Overloaded
  | Deadline_exceeded
  | Not_found
  | Internal_error
  | Shutting_down

type response =
  | Result of decompose_resp
  | Cert of certificate_resp
  | Health_report of health_resp
  | Drained of { served : int }
  | Stats_report of stats_resp
  | Error of error_kind * string

let error_kind_to_string = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Not_found -> "not_found"
  | Internal_error -> "internal_error"
  | Shutting_down -> "shutting_down"

(* ------------------------------------------------------------------ *)
(* Encoding primitives: big-endian fixed-width ints, length-prefixed
   strings. A reader is a cursor over an immutable string; every read
   is bounds-checked and a failure raises the private [Malformed],
   which the public decoders catch into [Error _]. *)

exception Malformed of string

let bad fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }

let need r n =
  if r.pos + n > String.length r.src then
    bad "truncated payload: need %d bytes at offset %d of %d" n r.pos
      (String.length r.src)

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_be r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_float r = Int64.float_of_bits (Int64.of_int (get_int r))

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> bad "bad bool byte %d" v

(* String payloads are also bounded individually, so a forged length
   cannot make the decoder allocate more than the frame it was given. *)
let get_str r =
  let n = get_int r in
  if n < 0 || n > String.length r.src - r.pos then
    bad "bad string length %d at offset %d" n r.pos;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_list r get =
  let n = get_int r in
  if n < 0 || n > String.length r.src - r.pos then bad "bad list length %d" n;
  List.init n (fun _ -> get r)

let finish r v =
  if r.pos <> String.length r.src then
    bad "trailing garbage: %d of %d bytes consumed" r.pos
      (String.length r.src)
  else v

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let put_int b v = Buffer.add_int64_be b (Int64.of_int v)
let put_float b v = put_int b (Int64.to_int (Int64.bits_of_float v))
let put_bool b v = put_u8 b (if v then 1 else 0)

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_list b put l =
  put_int b (List.length l);
  List.iter (put b) l

(* ------------------------------------------------------------------ *)
(* Request codec *)

let put_policy b = function `Retry -> put_u8 b 0 | `Repair -> put_u8 b 1

let get_policy r =
  match get_u8 r with
  | 0 -> `Retry
  | 1 -> `Repair
  | v -> bad "bad policy byte %d" v

let put_decompose b d =
  put_str b d.gen;
  put_int b d.seed;
  put_int b d.k;
  put_policy b d.policy;
  put_bool b d.distributed;
  put_int b d.deadline_ms;
  put_float b d.fail_p;
  put_str b d.storm

let get_decompose r =
  let gen = get_str r in
  let seed = get_int r in
  let k = get_int r in
  let policy = get_policy r in
  let distributed = get_bool r in
  let deadline_ms = get_int r in
  let fail_p = get_float r in
  let storm = get_str r in
  { gen; seed; k; policy; distributed; deadline_ms; fail_p; storm }

let encode_request req =
  let b = Buffer.create 64 in
  (match req with
  | Decompose d ->
    put_u8 b 0x01;
    put_decompose b d
  | Verify d ->
    put_u8 b 0x02;
    put_decompose b d
  | Certificate { gen } ->
    put_u8 b 0x03;
    put_str b gen
  | Health -> put_u8 b 0x04
  | Drain -> put_u8 b 0x05
  | Crash_test -> put_u8 b 0x06
  | Stats -> put_u8 b 0x07);
  Buffer.contents b

let decode_request s =
  match
    let r = reader s in
    let req =
      match get_u8 r with
      | 0x01 -> Decompose (get_decompose r)
      | 0x02 -> Verify (get_decompose r)
      | 0x03 -> Certificate { gen = get_str r }
      | 0x04 -> Health
      | 0x05 -> Drain
      | 0x06 -> Crash_test
      | 0x07 -> Stats
      | op -> bad "unknown request opcode 0x%02x" op
    in
    finish r req
  with
  | req -> Ok req
  | exception Malformed m -> Error m

(* ------------------------------------------------------------------ *)
(* Certificate codec *)

let put_witness b (w : Domtree.Certificate.witness) =
  put_int b w.Domtree.Certificate.w_class;
  put_list b put_int w.Domtree.Certificate.w_vertices;
  put_list b
    (fun b (u, v) ->
      put_int b u;
      put_int b v)
    w.Domtree.Certificate.w_edges

let get_witness r =
  let w_class = get_int r in
  let w_vertices = get_list r get_int in
  let w_edges =
    get_list r (fun r ->
        let u = get_int r in
        let v = get_int r in
        (u, v))
  in
  { Domtree.Certificate.w_class; w_vertices; w_edges }

let put_certificate b (c : Domtree.Certificate.t) =
  put_int b c.Domtree.Certificate.c_classes_requested;
  put_list b put_int c.Domtree.Certificate.c_retained;
  put_list b put_int c.Domtree.Certificate.c_dropped;
  put_list b put_witness c.Domtree.Certificate.c_witnesses;
  put_int b c.Domtree.Certificate.c_k;
  put_int b c.Domtree.Certificate.c_target;
  put_int b c.Domtree.Certificate.c_live;
  put_int b c.Domtree.Certificate.c_max_load

let get_certificate r =
  let c_classes_requested = get_int r in
  let c_retained = get_list r get_int in
  let c_dropped = get_list r get_int in
  let c_witnesses = get_list r get_witness in
  let c_k = get_int r in
  let c_target = get_int r in
  let c_live = get_int r in
  let c_max_load = get_int r in
  {
    Domtree.Certificate.c_classes_requested;
    c_retained;
    c_dropped;
    c_witnesses;
    c_k;
    c_target;
    c_live;
    c_max_load;
  }

let encode_certificate c =
  let b = Buffer.create 256 in
  put_certificate b c;
  Buffer.contents b

let decode_certificate s =
  match
    let r = reader s in
    finish r (get_certificate r)
  with
  | c -> Ok c
  | exception Malformed m -> Error m

(* ------------------------------------------------------------------ *)
(* Metrics snapshot codec. The snapshot is already canonical (names and
   bucket indices sorted), so encode/decode is the identity on the
   Obs.Metrics invariants and the roundtrip is exact. *)

let put_named put_v b (name, v) =
  put_str b name;
  put_v b v

let get_named get_v r =
  let name = get_str r in
  let v = get_v r in
  (name, v)

let put_hist b (h : Obs.Metrics.hist) =
  put_int b h.Obs.Metrics.h_count;
  put_int b h.Obs.Metrics.h_sum;
  put_list b
    (fun b (i, c) ->
      put_int b i;
      put_int b c)
    h.Obs.Metrics.h_buckets

let get_hist r =
  let h_count = get_int r in
  let h_sum = get_int r in
  let h_buckets =
    get_list r (fun r ->
        let i = get_int r in
        let c = get_int r in
        (i, c))
  in
  { Obs.Metrics.h_count; h_sum; h_buckets }

let put_snapshot b (s : Obs.Metrics.snapshot) =
  put_list b (put_named put_int) s.Obs.Metrics.s_counters;
  put_list b (put_named put_int) s.Obs.Metrics.s_gauges;
  put_list b (put_named put_hist) s.Obs.Metrics.s_hists

let get_snapshot r =
  let s_counters = get_list r (get_named get_int) in
  let s_gauges = get_list r (get_named get_int) in
  let s_hists = get_list r (get_named get_hist) in
  { Obs.Metrics.s_counters; s_gauges; s_hists }

let encode_snapshot s =
  let b = Buffer.create 256 in
  put_snapshot b s;
  Buffer.contents b

let decode_snapshot s =
  match
    let r = reader s in
    finish r (get_snapshot r)
  with
  | snap -> Ok snap
  | exception Malformed m -> Error m

(* ------------------------------------------------------------------ *)
(* Response codec *)

let put_error_kind b k =
  put_u8 b
    (match k with
    | Bad_request -> 0
    | Overloaded -> 1
    | Deadline_exceeded -> 2
    | Not_found -> 3
    | Internal_error -> 4
    | Shutting_down -> 5)

let get_error_kind r =
  match get_u8 r with
  | 0 -> Bad_request
  | 1 -> Overloaded
  | 2 -> Deadline_exceeded
  | 3 -> Not_found
  | 4 -> Internal_error
  | 5 -> Shutting_down
  | v -> bad "bad error kind %d" v

let encode_response resp =
  let b = Buffer.create 128 in
  (match resp with
  | Result d ->
    put_u8 b 0x81;
    put_str b d.digest;
    put_bool b d.verified;
    put_bool b d.degraded;
    put_bool b d.stale;
    put_bool b d.budget_exhausted;
    put_int b d.classes_requested;
    put_int b d.classes_retained;
    put_int b d.rounds_charged;
    put_int b d.attempts
  | Cert c ->
    put_u8 b 0x82;
    put_str b c.c_digest;
    put_bool b c.c_stale;
    put_certificate b c.c_cert
  | Health_report h ->
    put_u8 b 0x83;
    put_int b h.h_uptime_ms;
    put_int b h.h_served;
    put_int b h.h_fresh;
    put_int b h.h_stale;
    put_int b h.h_shed;
    put_int b h.h_errors;
    put_int b h.h_queue_depth;
    put_int b h.h_queue_capacity;
    put_bool b h.h_draining;
    put_int b h.h_cached_certs;
    put_int b h.h_replayed;
    put_int b h.h_journal_bytes;
    put_int b h.h_journal_segments
  | Drained { served } ->
    put_u8 b 0x84;
    put_int b served
  | Stats_report s ->
    put_u8 b 0x85;
    put_int b s.s_uptime_ms;
    put_snapshot b s.s_metrics
  | Error (kind, msg) ->
    put_u8 b 0xEE;
    put_error_kind b kind;
    put_str b msg);
  Buffer.contents b

let decode_response s =
  match
    let r = reader s in
    let resp =
      match get_u8 r with
      | 0x81 ->
        let digest = get_str r in
        let verified = get_bool r in
        let degraded = get_bool r in
        let stale = get_bool r in
        let budget_exhausted = get_bool r in
        let classes_requested = get_int r in
        let classes_retained = get_int r in
        let rounds_charged = get_int r in
        let attempts = get_int r in
        Result
          {
            digest;
            verified;
            degraded;
            stale;
            budget_exhausted;
            classes_requested;
            classes_retained;
            rounds_charged;
            attempts;
          }
      | 0x82 ->
        let c_digest = get_str r in
        let c_stale = get_bool r in
        let c_cert = get_certificate r in
        Cert { c_digest; c_stale; c_cert }
      | 0x83 ->
        let h_uptime_ms = get_int r in
        let h_served = get_int r in
        let h_fresh = get_int r in
        let h_stale = get_int r in
        let h_shed = get_int r in
        let h_errors = get_int r in
        let h_queue_depth = get_int r in
        let h_queue_capacity = get_int r in
        let h_draining = get_bool r in
        let h_cached_certs = get_int r in
        let h_replayed = get_int r in
        let h_journal_bytes = get_int r in
        let h_journal_segments = get_int r in
        Health_report
          {
            h_uptime_ms;
            h_served;
            h_fresh;
            h_stale;
            h_shed;
            h_errors;
            h_queue_depth;
            h_queue_capacity;
            h_draining;
            h_cached_certs;
            h_replayed;
            h_journal_bytes;
            h_journal_segments;
          }
      | 0x84 -> Drained { served = get_int r }
      | 0x85 ->
        let s_uptime_ms = get_int r in
        let s_metrics = get_snapshot r in
        Stats_report { s_uptime_ms; s_metrics }
      | 0xEE ->
        let kind = get_error_kind r in
        let msg = get_str r in
        Error (kind, msg)
      | op -> bad "unknown response opcode 0x%02x" op
    in
    finish r resp
  with
  | resp -> Ok resp
  | exception Malformed m -> Error m

let pp_response ppf = function
  | Result d ->
    Format.fprintf ppf
      "result digest=%s verified=%b degraded=%b stale=%b budget_exhausted=%b \
       classes=%d/%d rounds=%d attempts=%d"
      d.digest d.verified d.degraded d.stale d.budget_exhausted
      d.classes_retained d.classes_requested d.rounds_charged d.attempts
  | Cert c ->
    Format.fprintf ppf "certificate digest=%s stale=%b %a" c.c_digest c.c_stale
      Domtree.Certificate.pp c.c_cert
  | Health_report h ->
    Format.fprintf ppf
      "health uptime=%dms served=%d (fresh=%d stale=%d) shed=%d errors=%d \
       queue=%d/%d draining=%b cached_certs=%d replayed=%d journal=%dB/%dseg"
      h.h_uptime_ms h.h_served h.h_fresh h.h_stale h.h_shed h.h_errors
      h.h_queue_depth h.h_queue_capacity h.h_draining h.h_cached_certs
      h.h_replayed h.h_journal_bytes h.h_journal_segments
  | Drained { served } -> Format.fprintf ppf "drained served=%d" served
  | Stats_report s ->
    Format.fprintf ppf "stats uptime=%dms counters=%d gauges=%d histograms=%d"
      s.s_uptime_ms
      (List.length s.s_metrics.Obs.Metrics.s_counters)
      (List.length s.s_metrics.Obs.Metrics.s_gauges)
      (List.length s.s_metrics.Obs.Metrics.s_hists)
  | Error (kind, msg) ->
    Format.fprintf ppf "error %s: %s" (error_kind_to_string kind) msg
