type entry = { cert : Domtree.Certificate.t; fresh : bool }

type t = {
  mem : (string, entry) Hashtbl.t;
  disk : Exec.Cache.t option;
}

let create ?disk () = { mem = Hashtbl.create 64; disk }

(* The disk side rides Exec.Cache's content-addressed keys: the key is
   the Job key of a synthetic "serve.cert" job parameterized by the
   graph digest alone, so each graph has exactly one slot and a newer
   certificate atomically replaces the older one. *)
let cache_key ~digest =
  Exec.Job.key
    (Exec.Job.make ~algo:"serve.cert" ~params:[ ("digest", digest) ] ~seed:0
       (fun () -> Exec.Job.payload ""))

let lookup t ~digest =
  match Hashtbl.find_opt t.mem digest with
  | Some e -> Some e
  | None -> (
    match t.disk with
    | None -> None
    | Some cache -> (
      match Exec.Cache.find cache ~key:(cache_key ~digest) with
      | None -> None
      | Some payload -> (
        match Protocol.decode_certificate payload.Exec.Job.out with
        | Error _ -> None
        | Ok cert ->
          let e = { cert; fresh = false } in
          Hashtbl.replace t.mem digest e;
          Some e)))

(* "Last-good" is monotone: a verified-but-degraded certificate (say,
   0 classes survived a storm) must never clobber a better one already
   held for the graph — degrading to it later would under-serve. Equal
   strength re-records, refreshing [fresh]. *)
let strength cert = Domtree.Certificate.retained_count cert

let record ?(fresh = true) t ~digest cert =
  let keep =
    match lookup t ~digest with
    | Some e -> strength cert >= strength e.cert
    | None -> true
  in
  if keep then begin
    Hashtbl.replace t.mem digest { cert; fresh };
    match t.disk with
    | None -> ()
    | Some cache ->
      let payload =
        Exec.Job.payload
          ~meta:[ ("digest", digest) ]
          (Protocol.encode_certificate cert)
      in
      Exec.Cache.store cache ~key:(cache_key ~digest) payload
  end;
  keep

let count t = Hashtbl.length t.mem

let fold t f init =
  (* canonical order for journal snapshots: sorted digests (lint:
     Hashtbl iteration order is nondeterministic) *)
  Hashtbl.fold (fun digest e acc -> (digest, e) :: acc) t.mem []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.fold_left (fun acc (digest, e) -> f acc digest e) init
