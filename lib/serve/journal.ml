(* The daemon's write-ahead log (DESIGN.md §13).

   Crash-only discipline: every fact the daemon promises to remember —
   a graph first resolved for a client, a request admitted to the
   queue, a last-good certificate promotion — is appended to the live
   segment as one {!Framing} frame (version byte, u32 length, CRC-32)
   before the promise is kept. A kill -9 at any byte boundary leaves at
   worst a torn tail; replay truncates at the last valid CRC and never
   trusts a byte past it.

   Layout under the state directory:

     snapshot.bin        compacted state: a Meta{gen} frame followed by
                         Graph/Promote frames (written to a temporary,
                         fsync'd, renamed — atomic or absent)
     journal-<gen>.wal   the live segment; appended and fsync'd

   Rotation: a snapshot at generation G+1 compacts everything the
   journal knows into snapshot.bin, opens journal-<G+1>.wal, fsyncs the
   directory, and only then deletes segments <= G. A crash between any
   two of those steps recovers: an orphaned old segment whose gen is
   below the snapshot's is ignored (its records are already inside the
   snapshot), a missing new segment is created empty on open. *)

type record =
  | Meta of { gen : int }  (** snapshot header; never in a segment *)
  | Graph of { spec : string }  (** canonical generator spec resolved *)
  | Accept of { req : string }  (** an admitted request, wire-encoded *)
  | Promote of { digest : string; cert : Domtree.Certificate.t }

type replay = {
  r_graphs : string list;  (** first-seen order, deduplicated *)
  r_certs : (string * Domtree.Certificate.t) list;
      (** strongest certificate per digest, same monotone order as
          {!Degrade.record} *)
  r_accepted : int;
  r_records : int;
  r_torn_bytes : int;
  r_corrupt_frames : int;
  r_snapshot_gen : int;
}

let empty_replay =
  {
    r_graphs = [];
    r_certs = [];
    r_accepted = 0;
    r_records = 0;
    r_torn_bytes = 0;
    r_corrupt_frames = 0;
    r_snapshot_gen = 0;
  }

type t = {
  dir : string;
  mutable gen : int;
  mutable oc : out_channel;  (** live segment, append mode *)
  mutable dirty : bool;
  mutable appended : int;  (** records since the last snapshot *)
}

(* ------------------------------------------------------------------ *)
(* Record codec: one tag byte, then a body whose outer length is the
   frame's. Only Promote needs an internal length (digest vs
   certificate); the certificate itself rides Protocol's codec. *)

let encode_record r =
  let b = Buffer.create 64 in
  (match r with
  | Meta { gen } ->
    Buffer.add_char b '\x00';
    Buffer.add_int64_be b (Int64.of_int gen)
  | Graph { spec } ->
    Buffer.add_char b '\x01';
    Buffer.add_string b spec
  | Accept { req } ->
    Buffer.add_char b '\x02';
    Buffer.add_string b req
  | Promote { digest; cert } ->
    Buffer.add_char b '\x03';
    Buffer.add_int64_be b (Int64.of_int (String.length digest));
    Buffer.add_string b digest;
    Buffer.add_string b (Protocol.encode_certificate cert));
  Buffer.contents b

let decode_record s =
  let n = String.length s in
  if n = 0 then Error "empty record"
  else
    let body () = String.sub s 1 (n - 1) in
    match s.[0] with
    | '\x00' ->
      if n <> 9 then Error "bad meta record length"
      else Ok (Meta { gen = Int64.to_int (String.get_int64_be s 1) })
    | '\x01' -> Ok (Graph { spec = body () })
    | '\x02' -> Ok (Accept { req = body () })
    | '\x03' ->
      if n < 9 then Error "truncated promote record"
      else
        let dlen = Int64.to_int (String.get_int64_be s 1) in
        if dlen < 0 || dlen > n - 9 then
          Error (Printf.sprintf "bad promote digest length %d" dlen)
        else
          let digest = String.sub s 9 dlen in
          let rest = String.sub s (9 + dlen) (n - 9 - dlen) in
          (match Protocol.decode_certificate rest with
          | Ok cert -> Ok (Promote { digest; cert })
          | Error m -> Error ("promote certificate: " ^ m))
    | c -> Error (Printf.sprintf "unknown record tag 0x%02x" (Char.code c))

(* ------------------------------------------------------------------ *)
(* Filesystem plumbing *)

let snapshot_name = "snapshot.bin"
let snapshot_tmp = "snapshot.tmp"
let segment_name gen = Printf.sprintf "journal-%09d.wal" gen

let segment_gen name =
  (* "journal-<digits>.wal" *)
  let prefix = "journal-" and suffix = ".wal" in
  let np = String.length prefix and ns = String.length suffix in
  let n = String.length name in
  if
    n > np + ns
    && String.sub name 0 np = prefix
    && String.sub name (n - ns) ns = suffix
  then int_of_string_opt (String.sub name np (n - np - ns))
  else None

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Walk a buffer of concatenated frames. Returns the records in order,
   the byte offset of the last valid frame boundary, and whether the
   walk stopped on a corrupt frame (CRC/version/length failure) rather
   than a clean end or a torn tail. A corrupt frame poisons everything
   after it: frames cannot be resynchronized, so the remainder counts
   as torn. *)
let scan_buffer buf len =
  let records = ref [] in
  let pos = ref 0 in
  let corrupt = ref false in
  let continue = ref true in
  while !continue do
    match Framing.try_decode ~pos:!pos buf ~len with
    | `Need_more -> continue := false
    | `Error _ ->
      corrupt := true;
      continue := false
    | `Frame (payload, consumed) -> (
      match decode_record payload with
      | Ok r ->
        records := r :: !records;
        pos := !pos + consumed
      | Error _ ->
        (* a CRC-valid frame holding a malformed record is corruption
           all the same: stop trusting the stream here *)
        corrupt := true;
        continue := false)
  done;
  (List.rev !records, !pos, !corrupt)

let scan_file path =
  match read_file path with
  | exception Sys_error _ -> ([], 0, 0, false)
  | s ->
    let buf = Bytes.unsafe_of_string s in
    let records, valid, corrupt = scan_buffer buf (String.length s) in
    (records, valid, String.length s - valid, corrupt)

(* ------------------------------------------------------------------ *)
(* Replay folding *)

let strength = Domtree.Certificate.retained_count

type fold_state = {
  mutable graphs_rev : string list;
  seen : (string, unit) Hashtbl.t;
  certs : (string, Domtree.Certificate.t) Hashtbl.t;
  cert_order : string list ref;  (** digest first-promoted order *)
  mutable accepted : int;
  mutable records : int;
}

let fold_state () =
  {
    graphs_rev = [];
    seen = Hashtbl.create 16;
    certs = Hashtbl.create 16;
    cert_order = ref [];
    accepted = 0;
    records = 0;
  }

let fold_record st = function
  | Meta _ -> ()
  | Graph { spec } ->
    st.records <- st.records + 1;
    if not (Hashtbl.mem st.seen spec) then begin
      Hashtbl.add st.seen spec ();
      st.graphs_rev <- spec :: st.graphs_rev
    end
  | Accept _ ->
    st.records <- st.records + 1;
    st.accepted <- st.accepted + 1
  | Promote { digest; cert } ->
    st.records <- st.records + 1;
    let keep =
      match Hashtbl.find_opt st.certs digest with
      | Some held -> strength cert >= strength held
      | None ->
        st.cert_order := digest :: !(st.cert_order);
        true
    in
    if keep then Hashtbl.replace st.certs digest cert

let fold_result st ~torn ~corrupt ~snapshot_gen =
  {
    r_graphs = List.rev st.graphs_rev;
    r_certs =
      List.rev_map
        (fun digest -> (digest, Hashtbl.find st.certs digest))
        !(st.cert_order);
    r_accepted = st.accepted;
    r_records = st.records;
    r_torn_bytes = torn;
    r_corrupt_frames = (if corrupt then 1 else 0);
    r_snapshot_gen = snapshot_gen;
  }

(** [replay_records rs] folds a record list exactly as [open_dir] would
    replay it from disk — the reference semantics for the randomized
    kill-point tests. *)
let replay_records rs =
  let st = fold_state () in
  List.iter (fold_record st) rs;
  fold_result st ~torn:0 ~corrupt:false ~snapshot_gen:0

(* ------------------------------------------------------------------ *)
(* Open / append / sync / snapshot *)

let default_snapshot_every = 512

let open_dir dir =
  mkdir_p dir;
  (* a crashed snapshot writer leaves snapshot.tmp behind; nothing ever
     reads it, and the next snapshot recreates it from scratch *)
  (try Sys.remove (Filename.concat dir snapshot_tmp) with Sys_error _ -> ());
  let st = fold_state () in
  let torn = ref 0 and corrupt = ref false in
  (* 1. the snapshot, if present: its Meta header names the generation
     it compacted up to; a snapshot too corrupt to carry its header is
     ignored entirely (generation 0 = replay every segment on disk) *)
  let snapshot_gen =
    let path = Filename.concat dir snapshot_name in
    if not (Sys.file_exists path) then 0
    else begin
      let records, _, t, c = scan_file path in
      if t > 0 then torn := !torn + t;
      if c then corrupt := true;
      match records with
      | Meta { gen } :: rest ->
        List.iter (fold_record st) rest;
        gen
      | _ -> 0
    end
  in
  (* 2. segments at or past the snapshot generation, ascending; the
     newest is the live one and gets its torn tail physically cut so
     appends land on a valid frame boundary *)
  let segments =
    (match Sys.readdir dir with
    | entries -> Array.to_list entries
    | exception Sys_error _ -> [])
    |> List.filter_map (fun name ->
           match segment_gen name with
           | Some g when g >= snapshot_gen -> Some (g, name)
           | _ -> None)
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  let live_gen =
    match List.rev segments with (g, _) :: _ -> g | [] -> snapshot_gen
  in
  List.iter
    (fun (g, name) ->
      let path = Filename.concat dir name in
      let records, valid, t, c = scan_file path in
      List.iter (fold_record st) records;
      if t > 0 || c then begin
        torn := !torn + t;
        if c then corrupt := true;
        if g = live_gen then
          (* never trust bytes past the last valid CRC: cut them off so
             the next append extends a well-formed stream *)
          try Unix.truncate path valid with Unix.Unix_error _ -> ()
      end)
    segments;
  let oc =
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644
      (Filename.concat dir (segment_name live_gen))
  in
  let t = { dir; gen = live_gen; oc; dirty = false; appended = 0 } in
  (t, fold_result st ~torn:!torn ~corrupt:!corrupt ~snapshot_gen)

let append t r =
  output_string t.oc (Framing.encode (encode_record r));
  t.dirty <- true;
  t.appended <- t.appended + 1

let sync t =
  if t.dirty then begin
    flush t.oc;
    Unix.fsync (Unix.descr_of_out_channel t.oc);
    t.dirty <- false
  end

let appended_since_snapshot t = t.appended
let is_dirty t = t.dirty

(* On-disk footprint: snapshot plus every segment. The live segment is
   measured by its channel position, so buffered-but-unflushed appends
   count — health reflects what the next sync will make durable. *)
let size_bytes t =
  let live = segment_name t.gen in
  let on_disk name =
    match Unix.stat (Filename.concat t.dir name) with
    | st -> st.Unix.st_size
    | exception Unix.Unix_error _ -> 0
  in
  let dir_sum =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> 0
    | entries ->
      Array.fold_left
        (fun acc name ->
          if name = live then acc
          else if name = snapshot_name || segment_gen name <> None then
            acc + on_disk name
          else acc)
        0 entries
  in
  dir_sum + pos_out t.oc

let segment_count t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 1
  | entries ->
    Array.fold_left
      (fun acc name -> if segment_gen name <> None then acc + 1 else acc)
      0 entries

let snapshot t records =
  sync t;
  let gen' = t.gen + 1 in
  let tmp = Filename.concat t.dir snapshot_tmp in
  let oc = open_out_bin tmp in
  (try
     output_string oc (Framing.encode (encode_record (Meta { gen = gen' })));
     List.iter
       (fun r -> output_string oc (Framing.encode (encode_record r)))
       records;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* fsync-then-rename: the snapshot becomes visible only complete *)
  Sys.rename tmp (Filename.concat t.dir snapshot_name);
  fsync_dir t.dir;
  (* rotate to a fresh live segment, then drop the compacted ones *)
  close_out_noerr t.oc;
  t.oc <-
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644
      (Filename.concat t.dir (segment_name gen'));
  fsync_dir t.dir;
  let old_gen = t.gen in
  t.gen <- gen';
  t.appended <- 0;
  t.dirty <- false;
  (match Sys.readdir t.dir with
  | entries ->
    Array.iter
      (fun name ->
        match segment_gen name with
        | Some g when g <= old_gen -> (
          try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
        | _ -> ())
      entries
  | exception Sys_error _ -> ())

let close t =
  sync t;
  close_out_noerr t.oc
