(** Graceful degradation: the last-good certificate store.

    Every verified decomposition deposits its {!Domtree.Certificate}
    here, keyed by the graph's content digest. When a later request for
    the same graph blows its deadline (or its recompute fails under
    chaos), the daemon serves this last-good certificate marked
    [stale = true] instead of failing — a degraded response that is
    still a machine-checkable claim.

    The store is two-level: an in-memory map for the hot path, mirrored
    to {!Exec.Cache} (content-addressed by graph digest) so a restarted
    daemon still has every certificate its predecessors verified.
    Entries loaded back from disk are flagged [fresh = false]; only a
    certificate computed by {e this} process is ever served with
    [stale = false]. *)

type entry = {
  cert : Domtree.Certificate.t;
  fresh : bool;  (** computed by this daemon process *)
}

type t

(** [create ?disk ()] — [disk] enables cross-restart persistence. *)
val create : ?disk:Exec.Cache.t -> unit -> t

(** [record ?fresh t ~digest cert] stores [cert] as the last-good
    certificate for [digest] (in memory, and on disk when enabled).
    "Last-good" is monotone in retained classes: a certificate weaker
    than the one already held (e.g. verified-but-empty after a storm)
    is discarded rather than clobbering it; equal strength re-records.
    Returns [true] iff the certificate was kept — the caller's cue to
    journal the promotion. [fresh] (default [true]) marks the entry as
    computed by this process; journal replay warms with [~fresh:false]
    so replayed certificates are served as stale. *)
val record :
  ?fresh:bool -> t -> digest:string -> Domtree.Certificate.t -> bool

(** [lookup t ~digest] consults memory first, then the disk cache —
    a disk hit is memoized (as non-fresh) for subsequent lookups. *)
val lookup : t -> digest:string -> entry option

(** Number of digests with a last-good certificate in memory. *)
val count : t -> int

(** [fold t f init] folds over in-memory entries in sorted-digest
    order — the deterministic order journal snapshots are written in. *)
val fold : t -> ('a -> string -> entry -> 'a) -> 'a -> 'a

(** The {!Exec.Cache} key a digest's certificate is stored under —
    exposed so tests can inspect the disk side. *)
val cache_key : digest:string -> string
