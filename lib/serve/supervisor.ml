(* Process supervision for the crash-only daemon (DESIGN.md §13).

   The supervisor is deliberately dumb: fork a child, wait for its
   readiness probe, watch it, and when it dies restart it with
   exponential backoff — all actual state recovery is the child's own
   journal replay. The one piece of judgement it holds is the
   crash-loop circuit breaker: more than [max_crashes] crashes inside
   [window_s] means restarting is not going to help (corrupt state
   directory, bad binary, impossible config), and flapping forever
   would be worse than stopping, so it gives up with [Crash_loop].

   Forking is safe here because the server is single-domain by design:
   [Exec.Pool.run ~domains:1] runs inline, so the parent never holds
   live domains whose locks a fork would orphan. *)

type config = {
  max_crashes : int;
  window_s : float;
  backoff0_ms : float;
  backoff_max_ms : float;
  stable_s : float;
  ready_timeout_s : float;
  probe_interval_ms : float;
}

let default_config =
  {
    max_crashes = 5;
    window_s = 60.;
    backoff0_ms = 100.;
    backoff_max_ms = 5_000.;
    stable_s = 5.;
    ready_timeout_s = 30.;
    probe_interval_ms = 20.;
  }

type event =
  | Started of { pid : int; restarts : int }
  | Ready of { pid : int; wait_s : float }
  | Exited of { pid : int; status : Unix.process_status; uptime_s : float }
  | Backoff of { delay_ms : float }
  | Circuit_open of { crashes : int; window_s : float }

type outcome =
  | Clean_exit of { restarts : int }
  | Crash_loop of { crashes : int }

(* OCaml numbers signals internally (sigkill = -7); name the common
   ones so the log reads "signal KILL", not a negative mystery *)
let signal_name s =
  if s = Sys.sigkill then "KILL"
  else if s = Sys.sigterm then "TERM"
  else if s = Sys.sigint then "INT"
  else if s = Sys.sigsegv then "SEGV"
  else if s = Sys.sigabrt then "ABRT"
  else string_of_int s

let pp_status ppf = function
  | Unix.WEXITED c -> Format.fprintf ppf "exit %d" c
  | Unix.WSIGNALED s -> Format.fprintf ppf "signal %s" (signal_name s)
  | Unix.WSTOPPED s -> Format.fprintf ppf "stopped %s" (signal_name s)

let pp_event ppf = function
  | Started { pid; restarts } ->
    Format.fprintf ppf "started pid=%d restarts=%d" pid restarts
  | Ready { pid; wait_s } ->
    Format.fprintf ppf "ready pid=%d after %.3fs" pid wait_s
  | Exited { pid; status; uptime_s } ->
    Format.fprintf ppf "exited pid=%d (%a) uptime=%.3fs" pid pp_status status
      uptime_s
  | Backoff { delay_ms } -> Format.fprintf ppf "backoff %.0fms" delay_ms
  | Circuit_open { crashes; window_s } ->
    Format.fprintf ppf "circuit open: %d crashes in %.0fs" crashes window_s

let now_s () = Unix.gettimeofday ()

(* waitpid, riding out EINTR (we forward SIGTERM/SIGINT, so signals do
   land on the parent). *)
let rec waitpid_retry flags pid =
  try Unix.waitpid flags pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry flags pid

let clean_exit = function Unix.WEXITED 0 -> true | _ -> false

let supervise ?(on_event = fun (_ : event) -> ()) cfg ~spawn ~probe =
  let crashes = ref [] (* timestamps, newest first *) in
  let restarts = ref 0 in
  let backoff = ref cfg.backoff0_ms in
  let child = ref (-1) in
  (* forward terminal signals so "kill <supervisor>" drains the whole
     tree. [terminating] records that the operator asked for shutdown:
     the child's resulting death (typically WSIGNALED sigterm) must be
     treated as a clean exit, not a crash to restart from. *)
  let terminating = ref false in
  let forward signum =
    terminating := true;
    if !child > 0 then try Unix.kill !child signum with Unix.Unix_error _ -> ()
  in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle forward) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle forward) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
  @@ fun () ->
  let rec loop () =
    (* prune crash timestamps that fell out of the window *)
    let now = now_s () in
    crashes := List.filter (fun t -> now -. t <= cfg.window_s) !crashes;
    (* a signal that arrived during the backoff sleep must stop the
       restart ladder, not fork a fresh child into a shutdown *)
    if !terminating then Clean_exit { restarts = !restarts }
    else if List.length !crashes > cfg.max_crashes then begin
      on_event (Circuit_open { crashes = List.length !crashes;
                               window_s = cfg.window_s });
      Crash_loop { crashes = List.length !crashes }
    end
    else begin
      let started = now_s () in
      let pid = Unix.fork () in
      if pid = 0 then begin
        (* child: the parent's forward handler survives the fork (only
           exec resets dispositions) and would be a no-op here (!child
           is -1), silently discarding TERM/INT — restore the defaults
           so a forwarded signal actually takes the daemon down. Then
           run the daemon; _exit so no buffered channels or at_exit
           hooks of the parent's are replayed *)
        Sys.set_signal Sys.sigterm Sys.Signal_default;
        Sys.set_signal Sys.sigint Sys.Signal_default;
        (try spawn () with _ -> Unix._exit 1);
        Unix._exit 0
      end
      else begin
        child := pid;
        (* close the fork/child:=pid race: a signal that landed in
           between found !child = -1 and forwarded to nobody *)
        if !terminating then forward Sys.sigterm;
        on_event (Started { pid; restarts = !restarts });
        (* readiness gate: traffic is not re-admitted (probe true)
           until the child answers; a child that hangs before readiness
           is killed and counted as a crash *)
        let rec await_ready () =
          match waitpid_retry [ Unix.WNOHANG ] pid with
          | p, status when p = pid -> `Died status
          | _ ->
            if probe () then `Ready
            else if now_s () -. started > cfg.ready_timeout_s then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              let _, status = waitpid_retry [] pid in
              `Died status
            end
            else begin
              Unix.sleepf (cfg.probe_interval_ms /. 1000.);
              await_ready ()
            end
        in
        let status =
          match await_ready () with
          | `Died status -> status
          | `Ready ->
            on_event (Ready { pid; wait_s = now_s () -. started });
            let _, status = waitpid_retry [] pid in
            status
        in
        child := -1;
        let uptime = now_s () -. started in
        on_event (Exited { pid; status; uptime_s = uptime });
        (* an exit provoked by operator shutdown is clean whatever the
           status (a SIGTERM'd child reports WSIGNALED, not WEXITED 0) —
           restarting it would turn "kill <supervisor>" into a respawn *)
        if clean_exit status || !terminating then
          Clean_exit { restarts = !restarts }
        else begin
          crashes := now_s () :: !crashes;
          (* a child that survived long enough proved the state on disk
             is serviceable: reset the backoff ladder *)
          if uptime >= cfg.stable_s then backoff := cfg.backoff0_ms;
          on_event (Backoff { delay_ms = !backoff });
          Unix.sleepf (!backoff /. 1000.);
          backoff := Float.min (2. *. !backoff) cfg.backoff_max_ms;
          incr restarts;
          loop ()
        end
      end
    end
  in
  loop ()
