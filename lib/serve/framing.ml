(* v2: Stats request/response opcodes and the journal fields on
   Health_report — a v1 peer would mis-decode both, so the frame
   version gates them out. *)
let version = 2
let default_max_len = 4 * 1024 * 1024
let overhead = 1 + 4 + 4

(* CRC-32 (IEEE, reflected): the table is computed once at module init
   and never written again. *)
let crc_table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let crc32 s =
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := crc_table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let encode payload =
  let n = String.length payload in
  let b = Buffer.create (n + overhead) in
  Buffer.add_char b (Char.chr version);
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b payload;
  Buffer.add_int32_be b (Int32.of_int (crc32 payload));
  Buffer.contents b

let try_decode ?(max_len = default_max_len) ?(pos = 0) buf ~len =
  let avail = len - pos in
  if avail < 1 then `Need_more
  else begin
    let v = Char.code (Bytes.get buf pos) in
    if v <> version then
      `Error (Printf.sprintf "bad frame version %d (want %d)" v version)
    else if avail < 5 then `Need_more
    else begin
      let n = Int32.to_int (Bytes.get_int32_be buf (pos + 1)) land 0xFFFFFFFF in
      if n > max_len then
        `Error (Printf.sprintf "frame length %d exceeds cap %d" n max_len)
      else if avail < overhead + n then `Need_more
      else begin
        let payload = Bytes.sub_string buf (pos + 5) n in
        let crc =
          Int32.to_int (Bytes.get_int32_be buf (pos + 5 + n)) land 0xFFFFFFFF
        in
        if crc <> crc32 payload then `Error "frame CRC mismatch"
        else `Frame (payload, overhead + n)
      end
    end
  end

let write_frame fd payload =
  let frame = Bytes.of_string (encode payload) in
  let total = Bytes.length frame in
  let off = ref 0 in
  while !off < total do
    off := !off + Unix.write fd frame !off (total - !off)
  done

