(** Bounded FIFO request queue with explicit load shedding.

    The daemon's admission control: a request either gets a slot or is
    rejected {e immediately} with [Overloaded] — the queue never grows
    past its capacity, so overload degrades into fast, explicit sheds
    instead of unbounded memory growth and silently exploding latency.

    Single-owner: the daemon's event loop is the only reader and
    writer, so there is no locking here (and none needed). *)

type 'a t

(** [create ~capacity] — capacity must be positive. *)
val create : capacity:int -> 'a t

(** [push q x] is [true] if [x] got a slot, [false] if the queue is
    full and the request must be shed. *)
val push : 'a t -> 'a -> bool

val pop : 'a t -> 'a option
val depth : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool
