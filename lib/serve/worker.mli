(** Request execution: one request in, one structured response out —
    {e always}, whatever happens inside.

    Robustness properties, in order of the degradation ladder
    (DESIGN.md §11):

    - {b crash containment}: the compute closure runs under
      {!Exec.Pool}'s [`Failed] containment ([~domains:1], so it stays
      inline on the caller's domain); an escaping exception becomes an
      [Internal_error] frame, never a dead daemon;
    - {b transient retry}: a contained crash is retried with a
      decorrelated seed and exponential wall-clock backoff, up to
      [transient_retries] times while the deadline allows — fault
      injection makes individual attempts flaky by design;
    - {b deadlines → budgets}: a request's wall-clock deadline is
      mapped onto the computation's own cost model before it starts —
      distributed runs get [deadline_ms * rounds_per_ms] CONGEST rounds
      ({!Domtree.Reliable}'s [round_budget]), centralized runs get
      [deadline_ms / ms_per_attempt] retries;
    - {b graceful degradation}: when the deadline expires (before or
      during compute) or the recompute comes back unverified past the
      deadline, the last cached certificate for the graph digest is
      served with [stale = true] ({!Degrade}); only with nothing cached
      does the client see [Deadline_exceeded].

    Memoization: results are content-addressed by (graph digest, seed,
    k, policy, mode, fault spec) in memory, so repeated identical
    requests are O(1) — the cache that turns a decomposition service
    into something that sustains thousands of requests per second. *)

type config = {
  default_deadline_ms : int;  (** applied when a request says 0 *)
  rounds_per_ms : int;  (** deadline → distributed round budget *)
  ms_per_attempt : int;  (** deadline → centralized retry budget *)
  max_n : int;  (** admission control: largest graph served *)
  chaos_fail_p : float;
      (** daemon-wide chaos mode: Bernoulli message drops injected into
          every distributed request, composed with per-request specs *)
  chaos_storm : string;
      (** daemon-wide crash storm, "FROM:PER:LEN" ([""] = none); the
          universe is each served graph's own vertex count *)
  transient_retries : int;
  backoff_ms : float;  (** base of the exponential transient backoff *)
}

val default_config : config

type t

(** [create ?disk_cache ?metrics cfg]. With [metrics], the worker feeds
    the degradation-ladder step counters
    ([serve_degrade_steps_total{step="memo_hit"|"compute"|"retry"|
    "queue_expired"|"stale_served"}]), attaches the congest bundle
    ({!Congest.Net.make_obs}) to every per-request net, and threads the
    registry through its {!Exec.Pool} containment runs. *)
val create : ?disk_cache:Exec.Cache.t -> ?metrics:Obs.Metrics.t -> config -> t

(** The degradation store (for health reporting and tests). *)
val store : t -> Degrade.t

(** {2 Crash-only plumbing (DESIGN.md §13)}

    Boot order matters: [create] → {!warm} (fold the journal replay
    into graph/certificate state, nothing journaled) → {!set_journal}
    (install the live sink) → serve. Installing the sink first would
    re-journal every replayed fact on each restart, growing the log
    without bound. *)

(** [set_journal t sink] installs the durable-fact sink. [sink] is
    called on the server domain only (never from inside a compute
    closure) with [Journal.Graph] on each first graph resolution and
    [Journal.Promote] on each degrade-store promotion. *)
val set_journal : t -> (Journal.record -> unit) -> unit

(** [warm t replay] folds a journal replay into the worker: re-resolves
    each journaled graph spec (specs that no longer parse are skipped,
    not fatal) and records each certificate with [~fresh:false] so it
    is served as stale until this process re-verifies it. *)
val warm : t -> Journal.replay -> unit

(** Records folded into warm state by {!warm} (health reporting). *)
val replayed : t -> int

(** The worker's full durable state as snapshot records: journaled
    graph specs then promotions, both in deterministic sorted order. *)
val journal_state : t -> Journal.record list

(** [handle t ~enqueued_at_ms req] executes [req]. [enqueued_at_ms] is
    the wall-clock admission time (milliseconds, {!now_ms}) — queueing
    delay counts against the deadline. [Health] and [Drain] are control
    ops owned by the server loop; they answer [Bad_request] here. *)
val handle : t -> enqueued_at_ms:float -> Protocol.request -> Protocol.response

(** Wall-clock milliseconds (the daemon's single clock source). *)
val now_ms : unit -> float

(** Content digest of a graph's vertex count + edge set (hex). *)
val graph_digest : Graphs.Graph.t -> string
