(** Process supervision for the crash-only daemon (DESIGN.md §13).

    [supervise] forks the daemon as a child process, gates on a
    readiness probe before declaring it up, restarts it with
    exponential backoff when it dies, and opens a crash-loop circuit
    breaker — giving up — when crashes cluster faster than
    [max_crashes] per [window_s]. All state recovery is the child's own
    {!Journal} replay; the supervisor only manages the process.

    Forking is safe because the server is single-domain by design
    ({!Exec.Pool} with [~domains:1] runs inline), so the parent holds
    no live domains at fork time. *)

type config = {
  max_crashes : int;  (** crashes tolerated per window before giving up *)
  window_s : float;  (** circuit-breaker sliding window *)
  backoff0_ms : float;  (** first restart delay *)
  backoff_max_ms : float;  (** restart delay cap *)
  stable_s : float;
      (** uptime after which a child is deemed stable and the backoff
          ladder resets *)
  ready_timeout_s : float;
      (** a child not answering its probe within this long is killed
          and counted as a crash *)
  probe_interval_ms : float;
}

val default_config : config

type event =
  | Started of { pid : int; restarts : int }
  | Ready of { pid : int; wait_s : float }
  | Exited of { pid : int; status : Unix.process_status; uptime_s : float }
  | Backoff of { delay_ms : float }
  | Circuit_open of { crashes : int; window_s : float }

type outcome =
  | Clean_exit of { restarts : int }
      (** the child exited 0 (drained), or died from an operator
          SIGTERM/SIGINT forwarded by the supervisor *)
  | Crash_loop of { crashes : int }  (** circuit breaker opened *)

val pp_event : Format.formatter -> event -> unit

(** [supervise ?on_event cfg ~spawn ~probe] runs [spawn ()] in a forked
    child (exit status 0 on return, 1 on escape by exception) and
    supervises it until it exits cleanly or crash-loops. [probe] is
    polled every [probe_interval_ms] after each start; returning [true]
    means the child is serving (e.g. a successful [Health] round trip).
    SIGTERM/SIGINT received by the supervisor are forwarded to the
    live child — whose default dispositions are restored after the
    fork — and the resulting death is reported as {!Clean_exit}, never
    restarted (original handlers restored on return). *)
val supervise :
  ?on_event:(event -> unit) ->
  config ->
  spawn:(unit -> unit) ->
  probe:(unit -> bool) ->
  outcome
