module Graph = Graphs.Graph
module P = Protocol

type config = {
  default_deadline_ms : int;
  rounds_per_ms : int;
  ms_per_attempt : int;
  max_n : int;
  chaos_fail_p : float;
  chaos_storm : string;
  transient_retries : int;
  backoff_ms : float;
}

let default_config =
  {
    default_deadline_ms = 2_000;
    rounds_per_ms = 500;
    ms_per_attempt = 250;
    max_n = 1 lsl 20;
    chaos_fail_p = 0.;
    chaos_storm = "";
    transient_retries = 2;
    backoff_ms = 2.0;
  }

(* Degradation-ladder step counters, one per rung the DESIGN.md §11
   ladder can land on, plus the congest bundle attached to per-request
   nets. Registered once at create; the request path only hits
   atomics. *)
type wobs = {
  wo_memo_hits : Obs.Metrics.counter;
  wo_computes : Obs.Metrics.counter;
  wo_retries : Obs.Metrics.counter;
  wo_queue_expired : Obs.Metrics.counter;
  wo_stale_served : Obs.Metrics.counter;
  wo_net : Congest.Net.obs;
}

type t = {
  cfg : config;
  store : Degrade.t;
  (* canonical spec -> built graph + content digest *)
  graphs : (string, Graph.t * string) Hashtbl.t;
  (* graph digest -> estimated connectivity (client sent k = 0) *)
  k_est : (string, int) Hashtbl.t;
  (* full request identity -> memoized fresh response *)
  results : (string, P.response) Hashtbl.t;
  (* journal sink for durable facts (graph resolutions, promotions);
     installed by the server AFTER warm-replay so replayed state is not
     re-journaled. Called only on the server domain — compute closures
     handed to Exec.Pool never touch it. *)
  mutable journal : Journal.record -> unit;
  mutable replayed : int;  (** records folded into warm state at boot *)
  metrics : Obs.Metrics.t option;
  obs : wobs option;
}

let ladder_step metrics step =
  Obs.Metrics.counter metrics
    (Obs.Metrics.labeled "serve_degrade_steps_total" [ ("step", step) ])

let create ?disk_cache ?metrics cfg =
  {
    cfg;
    store = Degrade.create ?disk:disk_cache ();
    graphs = Hashtbl.create 16;
    k_est = Hashtbl.create 16;
    results = Hashtbl.create 256;
    journal = ignore;
    replayed = 0;
    metrics;
    obs =
      Option.map
        (fun m ->
          {
            wo_memo_hits = ladder_step m "memo_hit";
            wo_computes = ladder_step m "compute";
            wo_retries = ladder_step m "retry";
            wo_queue_expired = ladder_step m "queue_expired";
            wo_stale_served = ladder_step m "stale_served";
            wo_net = Congest.Net.make_obs m;
          })
        metrics;
  }

let obs_incr t f =
  match t.obs with None -> () | Some o -> Obs.Metrics.incr (f o)

let store t = t.store
let set_journal t sink = t.journal <- sink
let replayed t = t.replayed
let now_ms () = Unix.gettimeofday () *. 1000.

let graph_digest g =
  let b = Buffer.create 1024 in
  Buffer.add_string b (string_of_int (Graph.n g));
  Buffer.add_char b ';';
  Graph.iter_edges
    (fun u v ->
      Buffer.add_string b (string_of_int u);
      Buffer.add_char b '-';
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ',')
    g;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* [Exec.Pool]'s crash containment, inline on this domain: an exception
   escaping [f] comes back as [`Failed msg], never up the daemon's
   stack. Routing through the pool also feeds exec_jobs_total /
   exec_jobs_failed_total when the daemon carries a registry. *)
let contained t f =
  (Exec.Pool.run ~domains:1 ?metrics:t.metrics [| f |]).results.(0)

(* Spec strings canonicalized through the parser, so "a:k=1,n=2" and
   "a:n=2,k=1" share one cache line and one digest. Raises [Failure] on
   malformed specs (caught into [Bad_request] by the caller). *)
let canonical_spec spec =
  let name, params = Graphs.Source.parse_kv spec in
  let params = List.sort (fun (a, _) (b, _) -> compare a b) params in
  match params with
  | [] -> name
  | _ ->
    name ^ ":"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) params)

let resolve_graph t spec =
  let spec = canonical_spec spec in
  match Hashtbl.find_opt t.graphs spec with
  | Some gd -> gd
  | None ->
    let g = Graphs.Source.gen_graph spec in
    let gd = (g, graph_digest g) in
    Hashtbl.add t.graphs spec gd;
    (* durable before the client gets an answer built on it *)
    t.journal (Journal.Graph { spec });
    gd

(* ---- crash-only warm start: fold a journal replay into this worker's
   state before the journal sink is installed, so nothing here is
   re-journaled (the snapshot already holds it). *)
let warm t (r : Journal.replay) =
  List.iter
    (fun spec ->
      match resolve_graph t spec with
      | _ -> t.replayed <- t.replayed + 1
      | exception _ ->
        (* a journaled spec that no longer parses (e.g. generator
           removed) is dropped, not fatal: crash-only startup must not
           crash on its own history *)
        ())
    r.Journal.r_graphs;
  List.iter
    (fun (digest, cert) ->
      if Degrade.record ~fresh:false t.store ~digest cert then
        t.replayed <- t.replayed + 1)
    r.Journal.r_certs

(* The worker's full authoritative durable state, in deterministic
   order — what a journal snapshot compacts to. *)
let journal_state t =
  let specs =
    Hashtbl.fold (fun spec _ acc -> spec :: acc) t.graphs []
    |> List.sort String.compare
  in
  let graphs = List.map (fun spec -> Journal.Graph { spec }) specs in
  let certs =
    Degrade.fold t.store
      (fun acc digest (e : Degrade.entry) ->
        Journal.Promote { digest; cert = e.cert } :: acc)
      []
    |> List.rev
  in
  graphs @ certs

let resolve_k t (d : P.decompose_req) ~digest g =
  if d.k > 0 then d.k
  else
    match Hashtbl.find_opt t.k_est digest with
    | Some k -> k
    | None ->
      (* the paper's own O(log n) connectivity approximation
         (Corollary 1.7) — exact vertex connectivity is too expensive
         to run per served graph *)
      let k = max 1 (Domtree.Vc_approx.centralized ~seed:1 g).estimate in
      Hashtbl.add t.k_est digest k;
      k

let parse_storm ~n spec =
  match
    String.split_on_char ':' spec
    |> List.map (fun s -> int_of_string (String.trim s))
  with
  | [ from_round; per_round; storm_rounds ]
    when from_round >= 0 && per_round >= 0 && storm_rounds >= 0 ->
    Congest.Faults.Crash_storm
      { from_round; per_round; storm_rounds; universe = n }
  | _ | (exception _) ->
    failwith ("bad storm spec (want FROM:PER:LEN, all >= 0): " ^ spec)

(* Deadline -> budget mapping (DESIGN.md §11): the wall-clock deadline
   is converted to the computation's own cost unit before it starts. *)
let round_budget t ~deadline_ms = deadline_ms * t.cfg.rounds_per_ms

let retry_budget t ~deadline_ms =
  min Domtree.Reliable.default_max_retries
    (max 0 (deadline_ms / t.cfg.ms_per_attempt))

let memo_key ~digest ~check (d : P.decompose_req) ~budgets =
  String.concat "|"
    [
      digest;
      string_of_int d.seed;
      string_of_int d.k;
      (match d.policy with `Retry -> "retry" | `Repair -> "repair");
      string_of_bool d.distributed;
      string_of_float d.fail_p;
      d.storm;
      string_of_bool check;
      budgets;
    ]

(* The degradation ladder's last rungs: a deadline miss serves the last
   cached certificate for the digest marked stale; only with nothing
   cached does the client get an error. *)
let degrade_or t ~digest err =
  match Degrade.lookup t.store ~digest with
  | Some e ->
    obs_incr t (fun o -> o.wo_stale_served);
    P.Cert { P.c_digest = digest; c_stale = true; c_cert = e.cert }
  | None -> err

let compute_once t (d : P.decompose_req) ~check ~seed ~deadline_ms g ~digest ~k
    () =
  let policy = d.policy in
  let r, live =
    if d.distributed then begin
      let net = Congest.Net.create Congest.Model.V_congest g in
      (match t.obs with
      | Some o -> Congest.Net.attach_obs net o.wo_net
      | None -> ());
      let n = Graph.n g in
      (* daemon-wide chaos composes with per-request fault specs; storm
         universes are resolved here because they depend on the graph *)
      let drops p = if p > 0. then [ Congest.Faults.Drop_bernoulli p ] else [] in
      let storms s = if s = "" then [] else [ parse_storm ~n s ] in
      let specs =
        drops t.cfg.chaos_fail_p @ storms t.cfg.chaos_storm @ drops d.fail_p
        @ storms d.storm
      in
      let live =
        if specs = [] then fun _ -> true
        else begin
          let faults = Congest.Faults.create ~seed specs in
          Congest.Faults.install net faults;
          Congest.Faults.alive faults
        end
      in
      ( Domtree.Reliable.pack_verified_distributed ~seed ~policy
          ~round_budget:(round_budget t ~deadline_ms)
          net ~k,
        live )
    end
    else
      ( Domtree.Reliable.pack_verified ~seed
          ~max_retries:(retry_budget t ~deadline_ms)
          ~policy g ~k,
        fun _ -> true )
  in
  let checked =
    (not check)
    || Domtree.Certificate.check ~seed:(seed + 1) ~live g
         ~memberships:(fun v -> r.Domtree.Reliable.memberships.(v))
         r.Domtree.Reliable.certificate
       = Ok ()
  in
  let verified = r.Domtree.Reliable.verified && checked in
  let cert = r.Domtree.Reliable.certificate in
  ( P.Result
      {
        P.digest;
        verified;
        degraded = r.Domtree.Reliable.degraded;
        stale = false;
        budget_exhausted = r.Domtree.Reliable.budget_exhausted;
        classes_requested = cert.Domtree.Certificate.c_classes_requested;
        classes_retained = r.Domtree.Reliable.classes_retained;
        rounds_charged = r.Domtree.Reliable.rounds_charged;
        attempts = List.length r.Domtree.Reliable.attempts;
      },
    if verified then Some cert else None )

let reseed seed i = seed + (1_000_003 * (i + 1))

let exec t ~enqueued_at_ms ~check (d : P.decompose_req) =
  (* ---- validation: every malformation is a structured Bad_request *)
  if d.fail_p < 0. || d.fail_p > 1. then
    P.Error (P.Bad_request, Printf.sprintf "fail_p %g outside [0,1]" d.fail_p)
  else if (d.fail_p > 0. || d.storm <> "") && not d.distributed then
    P.Error (P.Bad_request, "fault injection requires distributed mode")
  else if
    (* malformed storm specs must bounce here, not burn transient
       retries crashing inside the compute closure *)
    d.storm <> ""
    && match parse_storm ~n:1 d.storm with _ -> false | exception Failure _ -> true
  then P.Error (P.Bad_request, "bad storm spec: " ^ d.storm)
  else if d.k < 0 then P.Error (P.Bad_request, "k must be >= 0")
  else
    match resolve_graph t d.gen with
    (* [Failure] is how Source/Gen reject bad client input (unknown
       generator, malformed parameters) — a Bad_request, not a crash *)
    | exception Failure m -> P.Error (P.Bad_request, "bad gen spec: " ^ m)
    | exception e ->
      P.Error
        (P.Internal_error, "graph construction failed: " ^ Printexc.to_string e)
    | g, digest ->
        if Graph.n g > t.cfg.max_n then
          P.Error
            ( P.Bad_request,
              Printf.sprintf "graph too large: n=%d > max %d" (Graph.n g)
                t.cfg.max_n )
        else begin
          let deadline_ms =
            if d.deadline_ms > 0 then d.deadline_ms
            else t.cfg.default_deadline_ms
          in
          let deadline_at = enqueued_at_ms +. float_of_int deadline_ms in
          let budgets =
            Printf.sprintf "rb=%d,mr=%d"
              (round_budget t ~deadline_ms)
              (retry_budget t ~deadline_ms)
          in
          let key = memo_key ~digest ~check d ~budgets in
          match Hashtbl.find_opt t.results key with
          | Some resp ->
            (* memo hit: instant, always beats a deadline *)
            obs_incr t (fun o -> o.wo_memo_hits);
            resp
          | None ->
            if now_ms () >= deadline_at then begin
              (* expired while queued: never start a compute we already
                 know is late *)
              obs_incr t (fun o -> o.wo_queue_expired);
              degrade_or t ~digest
                (P.Error
                   ( P.Deadline_exceeded,
                     Printf.sprintf "deadline (%d ms) expired in queue"
                       deadline_ms ))
            end
            else begin
              let k = resolve_k t d ~digest g in
              (* ---- contained compute with transient retry-and-backoff:
                 under fault injection an attempt can crash outright;
                 reseed and retry while the deadline allows *)
              let rec attempt i seed =
                obs_incr t (fun o -> o.wo_computes);
                match
                  contained t
                    (compute_once t d ~check ~seed ~deadline_ms g ~digest ~k)
                with
                | `Ok (resp, cert) -> (
                  (match cert with
                  | Some c ->
                    (* [contained] has returned: we are back on the
                       server domain, so journaling here is race-free *)
                    if Degrade.record t.store ~digest c then
                      t.journal (Journal.Promote { digest; cert = c })
                  | None -> ());
                  match resp with
                  | P.Result r when (not r.P.verified) && now_ms () >= deadline_at
                    ->
                    (* deadline expired mid-recompute and the recompute
                       is unverified: prefer the last-good certificate *)
                    degrade_or t ~digest resp
                  | resp ->
                    Hashtbl.replace t.results key resp;
                    resp)
                | `Failed m ->
                  let backoff = t.cfg.backoff_ms *. float_of_int (1 lsl i) in
                  if
                    i < t.cfg.transient_retries
                    && now_ms () +. backoff < deadline_at
                  then begin
                    obs_incr t (fun o -> o.wo_retries);
                    Unix.sleepf (backoff /. 1000.);
                    attempt (i + 1) (reseed d.seed i)
                  end
                  else
                    P.Error
                      ( P.Internal_error,
                        Printf.sprintf "request failed after %d attempt(s): %s"
                          (i + 1) m )
              in
              attempt 0 d.seed
            end
        end

let certificate t gen =
  match resolve_graph t gen with
  | exception Failure m -> P.Error (P.Bad_request, "bad gen spec: " ^ m)
  | exception e ->
    P.Error
      (P.Internal_error, "graph construction failed: " ^ Printexc.to_string e)
  | _, digest -> (
      match Degrade.lookup t.store ~digest with
      | Some e ->
        P.Cert { P.c_digest = digest; c_stale = not e.fresh; c_cert = e.cert }
      | None ->
        P.Error (P.Not_found, "no certificate cached for digest " ^ digest))

let handle t ~enqueued_at_ms req =
  match req with
  | P.Decompose d -> exec t ~enqueued_at_ms ~check:false d
  | P.Verify d -> exec t ~enqueued_at_ms ~check:true d
  | P.Certificate { gen } -> certificate t gen
  | P.Crash_test -> (
    match contained t (fun () -> failwith "crash-test hook") with
    | `Ok _ -> assert false
    | `Failed m -> P.Error (P.Internal_error, m))
  | P.Health | P.Drain | P.Stats ->
    P.Error (P.Bad_request, "control request outside the server loop")
