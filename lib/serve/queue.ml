(* A plain ring buffer; head/tail are monotonically increasing counters
   and the slot array is sized to capacity, so full/empty are exact and
   push is O(1) with no allocation after [create]. *)

type 'a t = {
  slots : 'a option array;
  cap : int;
  mutable head : int;  (* next slot to pop *)
  mutable tail : int;  (* next slot to fill *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Serve.Queue.create: capacity must be > 0";
  { slots = Array.make capacity None; cap = capacity; head = 0; tail = 0 }

let depth q = q.tail - q.head
let capacity q = q.cap
let is_empty q = depth q = 0

let push q x =
  if depth q >= q.cap then false
  else begin
    q.slots.(q.tail mod q.cap) <- Some x;
    q.tail <- q.tail + 1;
    true
  end

let pop q =
  if is_empty q then None
  else begin
    let i = q.head mod q.cap in
    let x = q.slots.(i) in
    q.slots.(i) <- None;
    q.head <- q.head + 1;
    x
  end
