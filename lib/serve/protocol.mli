(** Wire protocol of the decomposition service: typed requests and
    responses with a hand-rolled binary encoding.

    The encoding is deliberately {e not} [Marshal]: frames arrive from
    untrusted peers, and unmarshalling attacker-controlled bytes is
    undefined behaviour. Every payload is a tagged struct of fixed-width
    big-endian integers and length-prefixed strings; a decoder never
    reads past the payload it was given and turns every malformation
    into [Error _] — the daemon answers those with a structured
    [Bad_request] frame instead of dying.

    Integrity (CRC), length-prefixing and versioning live one layer
    below, in {!Framing}; this module only sees whole payloads. *)

type policy = [ `Retry | `Repair ]

(** Parameters of a decomposition computation. [gen] is a
    {!Graphs.Source} generator spec ("harary:k=8,n=64"). [k = 0] lets
    the daemon estimate connectivity with the paper's own O(log n)
    approximation; [k > 0] trusts the client. [deadline_ms = 0] means
    "use the daemon's default deadline". [fail_p] and [storm]
    ("FROM:PER:LEN", [""] = none) request per-request fault injection
    (chaos mode); they require [distributed]. *)
type decompose_req = {
  gen : string;
  seed : int;
  k : int;
  policy : policy;
  distributed : bool;
  deadline_ms : int;
  fail_p : float;
  storm : string;
}

val default_decompose : gen:string -> decompose_req

type request =
  | Decompose of decompose_req
  | Verify of decompose_req
      (** decompose, then independently re-check the certificate *)
  | Certificate of { gen : string }
      (** last known certificate for the graph, served from cache only *)
  | Health
  | Drain
  | Crash_test
      (** test hook: the worker raises mid-request; the daemon must
          contain it and answer [Internal_error] *)
  | Stats
      (** metrics snapshot; answered from the serve loop like [Health],
          so it stays responsive under full queues *)

type decompose_resp = {
  digest : string;  (** content digest of the graph's edge set *)
  verified : bool;
  degraded : bool;
  stale : bool;
      (** [true]: this is a cached last-good certificate served because
          the deadline expired, not a fresh computation *)
  budget_exhausted : bool;
  classes_requested : int;
  classes_retained : int;
  rounds_charged : int;
  attempts : int;
}

type certificate_resp = {
  c_digest : string;
  c_stale : bool;
      (** [false] only when the certificate was computed by this daemon
          process; [true] when replayed from the disk cache *)
  c_cert : Domtree.Certificate.t;
}

type health_resp = {
  h_uptime_ms : int;
  h_served : int;
  h_fresh : int;
  h_stale : int;
  h_shed : int;
  h_errors : int;
  h_queue_depth : int;
  h_queue_capacity : int;
  h_draining : bool;
  h_cached_certs : int;
  h_replayed : int;
      (** journal records folded into warm state at boot — [> 0] after
          a recovery, the signal the CI crash smoke asserts on *)
  h_journal_bytes : int;
      (** on-disk size of the journal directory (segments + snapshot),
          the growth the supervisor's health gate watches *)
  h_journal_segments : int;  (** sealed + active WAL segment count *)
}

(** A metrics snapshot stamped with the daemon's uptime. The snapshot
    is canonical ({!Obs.Metrics.snapshot} sorts names and buckets), so
    its codec roundtrips exactly. *)
type stats_resp = { s_uptime_ms : int; s_metrics : Obs.Metrics.snapshot }

type error_kind =
  | Bad_request
  | Overloaded  (** bounded queue full: request shed, try later *)
  | Deadline_exceeded
      (** deadline passed and no cached certificate to degrade to *)
  | Not_found
  | Internal_error
      (** the worker crashed on this request; the daemon survived *)
  | Shutting_down  (** daemon is draining; no new work accepted *)

type response =
  | Result of decompose_resp
  | Cert of certificate_resp
  | Health_report of health_resp
  | Drained of { served : int }
  | Stats_report of stats_resp
  | Error of error_kind * string

val error_kind_to_string : error_kind -> string

(** {1 Binary codecs}

    [decode_*] accept exactly one encoded value and reject trailing
    garbage; they never raise. *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** Standalone certificate codec — the {!Degrade} store persists
    certificates through {!Exec.Cache} in this format. *)
val encode_certificate : Domtree.Certificate.t -> string

val decode_certificate : string -> (Domtree.Certificate.t, string) result

(** Standalone snapshot codec — what [Stats_report] carries on the
    wire, exposed for property tests and offline dump tooling. *)
val encode_snapshot : Obs.Metrics.snapshot -> string

val decode_snapshot : string -> (Obs.Metrics.snapshot, string) result
val pp_response : Format.formatter -> response -> unit
