(** Exact edge and vertex connectivity, with cut witnesses.

    These are the centralized ground-truth baselines the paper compares
    against (Gabow / Henzinger-style exact computations are substituted
    by Stoer–Wagner and Even-style flow algorithms, which are exact and
    adequate at simulator scale). *)

(** [edge_connectivity g] is the global minimum edge-cut value λ of [g]
    (0 if disconnected, [max_int] on graphs with fewer than 2 vertices),
    by the Stoer–Wagner minimum-cut algorithm. *)
val edge_connectivity : Graph.t -> int

(** [min_edge_cut g] is [(lambda, side)] where [side] is one shore of a
    minimum edge cut. *)
val min_edge_cut : Graph.t -> int * bool array

(** [edge_connectivity_sparsified g] computes λ exactly but first
    replaces [g] by its (min-degree+1)-sparse certificate
    ({!Certificate}), which preserves λ; on dense graphs this makes the
    Stoer–Wagner pass run on O(λ·n) edges instead of m. *)
val edge_connectivity_sparsified : Graph.t -> int

(** [vertex_connectivity g] is the vertex connectivity k of [g]:
    - 0 if [g] is disconnected,
    - [n - 1] if [g] is complete,
    - otherwise the minimum vertex-cut size, via Even-style pairwise
      vertex max-flows from a minimum-degree vertex and its neighborhood. *)
val vertex_connectivity : Graph.t -> int

(** [min_vertex_cut g] is [Some cut] (a minimum vertex cut as a sorted
    vertex list) for connected non-complete [g], [None] otherwise. *)
val min_vertex_cut : Graph.t -> int list option

(** [is_k_vertex_connected g k] decides vertex connectivity >= [k]
    without computing the exact value (early exit on a small cut). *)
val is_k_vertex_connected : Graph.t -> int -> bool

(** [all_min_vertex_cuts g] enumerates every minimum vertex cut by
    subset enumeration (intended for small graphs; the §1.3.1 remark
    that a k-connected graph can have Θ(2^k (n/k)²) minimum cuts is the
    reason the paper routes flow through trees instead of cuts).
    Returns the sorted list of sorted cuts; [] when [g] is complete or
    disconnected. *)
val all_min_vertex_cuts : Graph.t -> int list list

(** [menger_vertex_paths g u v] is a maximum family of internally
    vertex-disjoint [u]-[v] paths (non-adjacent [u], [v]); Menger's
    theorem guarantees at least [vertex_connectivity g] of them. *)
val menger_vertex_paths : Graph.t -> int -> int -> int list list
