(** Graph generators: deterministic families and seeded random models.

    These produce the workloads of the experiment suite. Random
    generators take an explicit [Random.State.t] so every experiment is
    reproducible. *)

(** {1 Deterministic families} *)

val clique : int -> Graph.t
val cycle : int -> Graph.t
val path : int -> Graph.t
val grid : int -> int -> Graph.t
val torus : int -> int -> Graph.t

(** [hypercube d] is the d-dimensional hypercube on 2^d vertices
    (vertex and edge connectivity d). *)
val hypercube : int -> Graph.t

val complete_bipartite : int -> int -> Graph.t

(** [harary ~k ~n] is the Harary graph H_{k,n}: the minimum-edge graph on
    [n] vertices with vertex connectivity (and edge connectivity) exactly
    [k]. Requires [1 <= k < n]. *)
val harary : k:int -> n:int -> Graph.t

(** [clique_path ~k ~len] chains [len] cliques of size [k], consecutive
    cliques joined by a perfect matching: vertex connectivity [k] and
    diameter [Θ(len)] — the "diameter up to n/k" extremal family. *)
val clique_path : k:int -> len:int -> Graph.t

(** [lollipop ~clique ~tail] is K_clique with a [tail]-vertex path hung
    off vertex 0 — the classic diameter/conductance stress shape (dense
    core, long sparse appendix) used by the determinism sweeps. *)
val lollipop : clique:int -> tail:int -> Graph.t

(** [two_cliques_bridged ~size ~bridges] joins two [size]-cliques by
    [bridges] vertex-disjoint edges: edge connectivity [min bridges
    (size-1)]. Requires [bridges <= size]. *)
val two_cliques_bridged : size:int -> bridges:int -> Graph.t

(** [star_of_cliques ~k ~extra] is the §1.2 remark instance: a hub with
    [k] neighbors, each neighbor also adjacent to the other neighbors
    (forming a k-clique) and to [extra] pendant leaves spread evenly, so
    the hub has k neighbors and roughly [extra] nodes at distance 2. *)
val star_of_cliques : k:int -> extra:int -> Graph.t

(** [cds_vs_independent_trees ~t] is footnote 3's separating example: a
    [t]-clique plus one vertex per 3-subset of clique vertices, adjacent
    exactly to those three. Vertex connectivity 3; no 2 vertex-disjoint
    CDSs. [t >= 4]. *)
val cds_vs_independent_trees : t:int -> Graph.t

(** {1 Random models} *)

(** [erdos_renyi rng ~n ~p] samples G(n,p). One Bernoulli draw per
    vertex pair: O(n^2) — fine up to a few thousand vertices. The draw
    sequence is pinned by determinism digests; do not change it. *)
val erdos_renyi : Random.State.t -> n:int -> p:float -> Graph.t

(** [erdos_renyi_skip rng ~n ~p] samples G(n,p) by geometric gap
    skipping (Batagelj–Brandes) in O(n + m) time and RNG draws — the
    generator for the million-node perf rows. Identical distribution to
    [erdos_renyi] but a different draw sequence for the same [rng]
    seed, so the two are not interchangeable under pinned digests. *)
val erdos_renyi_skip : Random.State.t -> n:int -> p:float -> Graph.t

(** [random_k_connected rng ~n ~k ~extra] is the Harary graph H_{k,n}
    with [extra] additional uniformly-random chords: vertex connectivity
    at least (typically exactly) [k]. *)
val random_k_connected : Random.State.t -> n:int -> k:int -> extra:int -> Graph.t

(** [random_lambda_edge_connected rng ~n ~lambda ~extra] is a graph with
    edge connectivity at least [lambda] (Harary base plus chords). *)
val random_lambda_edge_connected :
  Random.State.t -> n:int -> lambda:int -> extra:int -> Graph.t

(** [random_regular rng ~n ~d] samples a simple d-regular graph by the
    configuration model with whole-sample rejection (retry until the
    pairing has no loops or parallel edges). Requires [n * d] even and
    [d < n]. Such graphs are d-connected w.h.p. for d >= 3 — the
    expander-like workloads complementing the circulant families.
    @raise Failure if no simple pairing is found after many retries. *)
val random_regular : Random.State.t -> n:int -> d:int -> Graph.t

(** [random_tree rng ~n] is a uniform random labeled tree (Prüfer-free
    attachment process: each vertex i >= 1 attaches to a uniform earlier
    vertex). *)
val random_tree : Random.State.t -> n:int -> Graph.t

(** [random_connected rng ~n ~extra] is [random_tree] plus [extra] random
    chords. *)
val random_connected : Random.State.t -> n:int -> extra:int -> Graph.t
