(** Random sampling utilities used by the decompositions.

    - Karger's random edge partition (§5.2): placing each edge in one of
      η subgraphs keeps each subgraph's edge connectivity near λ/η w.h.p.
      when λ/η = Ω(log n / ε²).
    - Random vertex sampling (the κ of [CGK, SODA'14]) used by the
      integral dominating-tree packing variant. *)

(** [edge_partition rng g ~eta] splits the edges of [g] uniformly into
    [eta] spanning subgraphs (all on the same vertex set). Every edge of
    [g] appears in exactly one subgraph. *)
val edge_partition : Random.State.t -> Graph.t -> eta:int -> Graph.t array

(** [suggested_eta ~lambda ~n ~eps] is the η of §5.2: the largest η ≥ 1
    with λ/η >= 20 ln n / ε² (so each part keeps Θ(log n/ε²)
    connectivity); 1 when λ is already that small. *)
val suggested_eta : lambda:int -> n:int -> eps:float -> int

(** [vertex_sample rng g ~p] marks each vertex independently with
    probability [p]; returns the membership array. *)
val vertex_sample : Random.State.t -> Graph.t -> p:float -> bool array

(** [sampled_connectivity rng g ~trials] estimates κ: the minimum, over
    [trials] half-density vertex samples, of the vertex connectivity of
    the subgraph induced by sampled vertices (0 if a sample is
    disconnected or empty). Small graphs only. *)
val sampled_connectivity : Random.State.t -> Graph.t -> trials:int -> int
