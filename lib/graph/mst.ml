type edge = { u : int; v : int; w : float }

let kruskal ~n edges =
  let arr = Array.of_list edges in
  let order = Array.init (Array.length arr) (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Float.compare arr.(i).w arr.(j).w in
      if c <> 0 then c else Int.compare i j)
    order;
  let uf = Union_find.create n in
  let chosen = ref [] in
  Array.iter
    (fun i ->
      let e = arr.(i) in
      if Union_find.union uf e.u e.v then chosen := e :: !chosen)
    order;
  List.rev !chosen

let prim g ~weight =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let key = Array.make n infinity in
  let in_tree = Array.make n false in
  (* Simple O(n^2 + m) Prim: adequate for the simulator-scale graphs used
     throughout; avoids a heap dependency. *)
  let pick () =
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not in_tree.(v)) && parent.(v) >= 0
         && (!best < 0 || key.(v) < key.(!best))
      then best := v
    done;
    !best
  in
  for root = 0 to n - 1 do
    if not in_tree.(root) then begin
      parent.(root) <- root;
      key.(root) <- 0.;
      let continue = ref true in
      (* grow this component until no fringe vertex remains *)
      while !continue do
        let u = if in_tree.(root) then pick () else root in
        if u < 0 then continue := false
        else begin
          in_tree.(u) <- true;
          Array.iter
            (fun v ->
              if not in_tree.(v) then begin
                let w = weight u v in
                if parent.(v) < 0 || w < key.(v) then begin
                  key.(v) <- w;
                  parent.(v) <- u
                end
              end)
            (Graph.neighbors g u)
        end
      done
    end
  done;
  parent

let tree_edges_of_parents parent =
  let acc = ref [] in
  Array.iteri (fun v p -> if p <> v && p >= 0 then acc := (v, p) :: !acc) parent;
  List.rev !acc

let total_weight edges = List.fold_left (fun acc e -> acc +. e.w) 0. edges

let minimum_spanning_tree g ~weight =
  if not (Traversal.is_connected g) then
    invalid_arg "Mst.minimum_spanning_tree: disconnected graph";
  let parent = prim g ~weight in
  tree_edges_of_parents parent
  |> List.map (fun (a, b) -> if a < b then (a, b) else (b, a))
  |> List.sort (fun (a1, b1) (a2, b2) ->
         match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)

let spanning_tree_cost g ~weight =
  minimum_spanning_tree g ~weight
  |> List.fold_left (fun acc (u, v) -> acc +. weight u v) 0.

let is_spanning_tree ~n edges =
  List.length edges = n - 1
  &&
  let uf = Union_find.create n in
  List.for_all (fun (u, v) -> Union_find.union uf u v) edges
  && Union_find.count uf = 1
