let read_edge_list ic =
  let edges = ref [] in
  let max_v = ref (-1) in
  let declared_n = ref None in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" then ()
       else if line.[0] = '#' then begin
         (* optional "# n <count>" header *)
         try Scanf.sscanf line "# n %d" (fun n -> declared_n := Some n)
         with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
       end
       else
         match
           Scanf.sscanf line "%d %d" (fun u v -> (u, v))
         with
         | u, v ->
           edges := (u, v) :: !edges;
           max_v := max !max_v (max u v)
         | exception (Scanf.Scan_failure _ | Failure _) ->
           failwith (Printf.sprintf "Io.read_edge_list: bad line %S" line)
     done
   with End_of_file -> ());
  let n =
    match !declared_n with
    | Some n -> max n (!max_v + 1)
    | None -> !max_v + 1
  in
  Graph.of_edges ~n !edges

let load path =
  if path = "-" then read_edge_list stdin
  else begin
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_edge_list ic)
  end

let write_edge_list oc g =
  Printf.fprintf oc "# n %d\n" (Graph.n g);
  Graph.iter_edges (fun u v -> Printf.fprintf oc "%d %d\n" u v) g

let save path g =
  if path = "-" then write_edge_list stdout g
  else begin
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        write_edge_list oc g)
  end
