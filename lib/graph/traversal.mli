(** Breadth-first / depth-first traversals and derived metrics. *)

(** [bfs g src] is the array of hop distances from [src]; unreachable
    vertices get [-1]. *)
val bfs : Graph.t -> int -> int array

(** [bfs_tree g src] is [(dist, parent)] where [parent.(src) = src] and
    [parent.(v) = -1] for unreachable [v]. *)
val bfs_tree : Graph.t -> int -> int array * int array

(** [components g] is [(count, label)] where [label.(v)] is the component
    id of [v], ids in [0 .. count-1], numbered by smallest contained
    vertex order. *)
val components : Graph.t -> int * int array

(** [is_connected g] holds iff [g] has at most one component (vertexless
    and single-vertex graphs are connected). *)
val is_connected : Graph.t -> bool

(** [component_of g ~src] is the list of vertices reachable from [src]. *)
val component_of : Graph.t -> src:int -> int list

(** [eccentricity g u] is the maximum finite BFS distance from [u].
    @raise Invalid_argument if [g] is disconnected. *)
val eccentricity : Graph.t -> int -> int

(** Exact diameter by all-pairs BFS. O(nm).
    @raise Invalid_argument if [g] is disconnected or empty. *)
val diameter : Graph.t -> int

(** Two-BFS diameter estimate [d] with [d <= diameter <= 2 d]; the
    standard double-sweep used by the paper's preprocessing ("nodes can
    learn ... a 2-approximation of the diameter"). *)
val diameter_2approx : Graph.t -> int

(** [distances_within g pred src] is single-source BFS restricted to
    vertices satisfying [pred]. *)
val distances_within : Graph.t -> (int -> bool) -> int -> int array
