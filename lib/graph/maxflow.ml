type arc = { dst : int; mutable cap : int; init : int; rev : int }

type t = {
  n : int;
  mutable arcs : arc array array;
  mutable pending : (int * int * int) list;
  mutable frozen : bool;
}

let create n =
  if n < 0 then invalid_arg "Maxflow.create: negative size";
  { n; arcs = [||]; pending = []; frozen = false }

let add_edge net u v cap =
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if u < 0 || v < 0 || u >= net.n || v >= net.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  if net.frozen then invalid_arg "Maxflow.add_edge: network already solved";
  net.pending <- (u, v, cap) :: net.pending

let freeze net =
  if not net.frozen then begin
    let deg = Array.make net.n 0 in
    let pend = List.rev net.pending in
    List.iter
      (fun (u, v, _) ->
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1)
      pend;
    let dummy = { dst = 0; cap = 0; init = 0; rev = 0 } in
    let arcs = Array.init net.n (fun u -> Array.make deg.(u) dummy) in
    let fill = Array.make net.n 0 in
    List.iter
      (fun (u, v, cap) ->
        let iu = fill.(u) and iv = fill.(v) in
        arcs.(u).(iu) <- { dst = v; cap; init = cap; rev = iv };
        arcs.(v).(iv) <- { dst = u; cap = 0; init = 0; rev = iu };
        fill.(u) <- iu + 1;
        fill.(v) <- iv + 1)
      pend;
    net.arcs <- arcs;
    net.frozen <- true
  end

let bfs_levels net ~src ~sink =
  let level = Array.make net.n (-1) in
  let queue = Queue.create () in
  level.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun a ->
        if a.cap > 0 && level.(a.dst) < 0 then begin
          level.(a.dst) <- level.(u) + 1;
          Queue.add a.dst queue
        end)
      net.arcs.(u)
  done;
  if level.(sink) < 0 then None else Some level

let rec dfs_push net level iter ~sink u pushed =
  if u = sink then pushed
  else begin
    let result = ref 0 in
    let arcs = net.arcs.(u) in
    let len = Array.length arcs in
    while !result = 0 && iter.(u) < len do
      let a = arcs.(iter.(u)) in
      if a.cap > 0 && level.(a.dst) = level.(u) + 1 then begin
        let d = dfs_push net level iter ~sink a.dst (min pushed a.cap) in
        if d > 0 then begin
          a.cap <- a.cap - d;
          let back = net.arcs.(a.dst).(a.rev) in
          back.cap <- back.cap + d;
          result := d
        end
        else iter.(u) <- iter.(u) + 1
      end
      else iter.(u) <- iter.(u) + 1
    done;
    !result
  end

let max_flow net ~src ~sink =
  if src = sink then invalid_arg "Maxflow.max_flow: src = sink";
  freeze net;
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    match bfs_levels net ~src ~sink with
    | None -> continue := false
    | Some level ->
      let iter = Array.make net.n 0 in
      let flowing = ref true in
      while !flowing do
        let d = dfs_push net level iter ~sink src max_int in
        if d = 0 then flowing := false else total := !total + d
      done
  done;
  !total

let min_cut_side net ~src =
  freeze net;
  let seen = Array.make net.n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun a ->
        if a.cap > 0 && not seen.(a.dst) then begin
          seen.(a.dst) <- true;
          Queue.add a.dst queue
        end)
      net.arcs.(u)
  done;
  seen

let edge_connectivity_pair g u v =
  let net = create (Graph.n g) in
  Graph.iter_edges
    (fun a b ->
      add_edge net a b 1;
      add_edge net b a 1)
    g;
  max_flow net ~src:u ~sink:v

(* Vertex splitting: node x becomes x_in = 2x, x_out = 2x + 1 with a unit
   arc x_in -> x_out (high-capacity for the terminals); edge {a,b} becomes
   a_out -> b_in and b_out -> a_in of high capacity. *)
let split_network g u v =
  let n = Graph.n g in
  let inf = (Graph.m g * 2) + n + 1 in
  let net = create (2 * n) in
  for x = 0 to n - 1 do
    let cap = if x = u || x = v then inf else 1 in
    add_edge net (2 * x) ((2 * x) + 1) cap
  done;
  Graph.iter_edges
    (fun a b ->
      add_edge net ((2 * a) + 1) (2 * b) inf;
      add_edge net ((2 * b) + 1) (2 * a) inf)
    g;
  net

let vertex_connectivity_pair g u v =
  if u = v then invalid_arg "Maxflow.vertex_connectivity_pair: u = v";
  if Graph.mem_edge g u v then
    invalid_arg "Maxflow.vertex_connectivity_pair: adjacent vertices";
  let net = split_network g u v in
  max_flow net ~src:((2 * u) + 1) ~sink:(2 * v)

(* Flow decomposition into unit paths. An arc carries [init - cap] units
   (positive values only; reverse arcs have init = 0 and never qualify
   unless the paired arc was cancelled below zero, which cannot happen).
   Each extraction finds a src->sink path through positive-flow arcs with
   a per-walk visited set (cycles in the flow are skipped, not traversed),
   then cancels one unit along it. *)
let decompose_paths net ~src ~sink ~node_of =
  freeze net;
  let flow_on a = a.init - a.cap in
  let cancel_unit u i =
    let a = net.arcs.(u).(i) in
    let back = net.arcs.(a.dst).(a.rev) in
    a.cap <- a.cap + 1;
    back.cap <- back.cap - 1
  in
  let rec dfs visited u =
    if u = sink then Some []
    else begin
      visited.(u) <- true;
      let arcs = net.arcs.(u) in
      let found = ref None in
      let i = ref 0 in
      while !found = None && !i < Array.length arcs do
        let a = arcs.(!i) in
        if flow_on a > 0 && not visited.(a.dst) then begin
          match dfs visited a.dst with
          | Some rest -> found := Some ((u, !i) :: rest)
          | None -> ()
        end;
        incr i
      done;
      !found
    end
  in
  let paths = ref [] in
  let continue = ref true in
  while !continue do
    let visited = Array.make net.n false in
    match dfs visited src with
    | None -> continue := false
    | Some steps ->
      List.iter (fun (u, i) -> cancel_unit u i) steps;
      let vertices = List.map (fun (u, _) -> node_of u) steps @ [ node_of sink ] in
      let dedup =
        List.fold_left
          (fun acc x -> match acc with y :: _ when y = x -> acc | _ -> x :: acc)
          [] vertices
        |> List.rev
      in
      paths := dedup :: !paths
  done;
  List.rev !paths

let disjoint_paths g u v =
  let net = create (Graph.n g) in
  Graph.iter_edges
    (fun a b ->
      add_edge net a b 1;
      add_edge net b a 1)
    g;
  let _ = max_flow net ~src:u ~sink:v in
  decompose_paths net ~src:u ~sink:v ~node_of:(fun x -> x)

let vertex_disjoint_paths g u v =
  if u = v then invalid_arg "Maxflow.vertex_disjoint_paths: u = v";
  if Graph.mem_edge g u v then
    invalid_arg "Maxflow.vertex_disjoint_paths: adjacent vertices";
  let net = split_network g u v in
  let _ = max_flow net ~src:((2 * u) + 1) ~sink:(2 * v) in
  decompose_paths net ~src:((2 * u) + 1) ~sink:(2 * v) ~node_of:(fun x -> x / 2)
