let forest_decomposition g ~k =
  if k < 1 then invalid_arg "Certificate.forest_decomposition: k < 1";
  let n = Graph.n g in
  let used = Hashtbl.create (Graph.m g) in
  let forests = ref [] in
  for _ = 1 to k do
    let uf = Union_find.create n in
    let forest = ref [] in
    Graph.iter_edges
      (fun u v ->
        if (not (Hashtbl.mem used (u, v))) && Union_find.union uf u v then begin
          Hashtbl.replace used (u, v) ();
          forest := (u, v) :: !forest
        end)
      g;
    forests := List.rev !forest :: !forests
  done;
  List.rev !forests

let sparse_certificate g ~k =
  let forests = forest_decomposition g ~k in
  Graph.of_edges ~n:(Graph.n g) (List.concat forests)

let certifies_edge_connectivity g ~k =
  let cert = sparse_certificate g ~k in
  let lambda g' =
    if Graph.n g' < 2 then max_int
    else if not (Traversal.is_connected g') then 0
    else begin
      (* local, minimal Stoer-Wagner via Connectivity would create a
         dependency cycle in this file's doc narrative; Connectivity is a
         later module, so compute via pairwise flows from vertex 0 *)
      let best = ref max_int in
      for v = 1 to Graph.n g' - 1 do
        let f = Maxflow.edge_connectivity_pair g' 0 v in
        if f < !best then best := f
      done;
      !best
    end
  in
  min (lambda g) k = min (lambda cert) k
