(** Dinic's maximum-flow algorithm on integer capacities.

    A network is built imperatively ([add_edge]) and then solved
    ([max_flow]). Residual state persists, so [min_cut_side] reflects the
    last solve. *)

type t

(** [create n] is an empty flow network on nodes [0 .. n-1]. *)
val create : int -> t

(** [add_edge net u v cap] adds a directed arc of capacity [cap >= 0]
    (a residual reverse arc of capacity 0 is added automatically). *)
val add_edge : t -> int -> int -> int -> unit

(** [max_flow net ~src ~sink] computes the maximum flow value.
    @raise Invalid_argument if [src = sink]. *)
val max_flow : t -> src:int -> sink:int -> int

(** [min_cut_side net ~src] is the set (as a boolean array) of nodes
    reachable from [src] in the residual graph of the last [max_flow]
    call; this is the source side of a minimum cut. *)
val min_cut_side : t -> src:int -> bool array

(** {1 Connectivity-oriented helpers} *)

(** [edge_connectivity_pair g u v] is the maximum number of edge-disjoint
    [u]-[v] paths in undirected [g] (each undirected edge modeled as two
    opposite unit arcs). *)
val edge_connectivity_pair : Graph.t -> int -> int -> int

(** [vertex_connectivity_pair g u v] is the maximum number of internally
    vertex-disjoint [u]-[v] paths between distinct non-adjacent vertices,
    via the standard vertex-splitting transform.
    @raise Invalid_argument if [u = v] or if [u] and [v] are adjacent. *)
val vertex_connectivity_pair : Graph.t -> int -> int -> int

(** [disjoint_paths g u v] extracts a maximum family of edge-disjoint
    [u]-[v] paths (each path as the vertex list from [u] to [v]) by flow
    decomposition. *)
val disjoint_paths : Graph.t -> int -> int -> int list list

(** [vertex_disjoint_paths g u v] extracts a maximum family of internally
    vertex-disjoint [u]-[v] paths between non-adjacent [u], [v]. *)
val vertex_disjoint_paths : Graph.t -> int -> int -> int list list
