(** Plain-text graph I/O.

    The edge-list format: one [u v] pair per line, 0-based vertex ids;
    blank lines and [#]-comments ignored. The vertex count is
    [1 + max id] unless a [# n <count>] header names a larger one
    (allowing isolated trailing vertices). *)

(** [read_edge_list ic] parses a channel.
    @raise Failure on malformed lines. *)
val read_edge_list : in_channel -> Graph.t

(** [load path] reads a file ([-] = stdin). *)
val load : string -> Graph.t

(** [write_edge_list oc g] writes the canonical edge list with a
    [# n <count>] header. *)
val write_edge_list : out_channel -> Graph.t -> unit

(** [save path g] writes a file ([-] = stdout). *)
val save : string -> Graph.t -> unit
