let clique n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.of_edges ~n !es

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let grid rows cols =
  let id r c = (r * cols) + c in
  let es = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then es := (id r c, id r (c + 1)) :: !es;
      if r + 1 < rows then es := (id r c, id (r + 1) c) :: !es
    done
  done;
  Graph.of_edges ~n:(rows * cols) !es

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen.torus: need sides >= 3";
  let id r c = (r * cols) + c in
  let es = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      es := (id r c, id r ((c + 1) mod cols)) :: !es;
      es := (id r c, id ((r + 1) mod rows) c) :: !es
    done
  done;
  Graph.of_edges ~n:(rows * cols) !es

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Gen.hypercube: dimension out of range";
  let n = 1 lsl d in
  let es = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to d - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then es := (u, v) :: !es
    done
  done;
  Graph.of_edges ~n !es

let complete_bipartite a b =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.of_edges ~n:(a + b) !es

let harary ~k ~n =
  if k < 1 || k >= n then invalid_arg "Gen.harary: need 1 <= k < n";
  let es = ref [] in
  let add u v = if u <> v then es := (u mod n, v mod n) :: !es in
  let r = k / 2 in
  for i = 0 to n - 1 do
    for off = 1 to r do
      add i (i + off)
    done
  done;
  if k land 1 = 1 then
    if n land 1 = 0 then
      for i = 0 to (n / 2) - 1 do
        add i (i + (n / 2))
      done
    else begin
      (* odd k, odd n: join i to i + (n+1)/2 for i in [0, (n-1)/2] *)
      for i = 0 to (n - 1) / 2 do
        add i (i + ((n + 1) / 2))
      done
    end;
  Graph.of_edges ~n !es

let clique_path ~k ~len =
  if k < 1 || len < 1 then invalid_arg "Gen.clique_path";
  let n = k * len in
  let id block j = (block * k) + j in
  let es = ref [] in
  for block = 0 to len - 1 do
    for a = 0 to k - 1 do
      for b = a + 1 to k - 1 do
        es := (id block a, id block b) :: !es
      done;
      if block + 1 < len then es := (id block a, id (block + 1) a) :: !es
    done
  done;
  Graph.of_edges ~n !es

let lollipop ~clique:k ~tail =
  if k < 2 || tail < 1 then invalid_arg "Gen.lollipop";
  let n = k + tail in
  let es = ref [] in
  for u = 0 to k - 1 do
    for v = u + 1 to k - 1 do
      es := (u, v) :: !es
    done
  done;
  for i = 0 to tail - 1 do
    let v = k + i in
    es := ((if i = 0 then 0 else v - 1), v) :: !es
  done;
  Graph.of_edges ~n !es

let two_cliques_bridged ~size ~bridges =
  if bridges > size then invalid_arg "Gen.two_cliques_bridged: bridges > size";
  let es = ref [] in
  for u = 0 to size - 1 do
    for v = u + 1 to size - 1 do
      es := (u, v) :: !es;
      es := (size + u, size + v) :: !es
    done
  done;
  for b = 0 to bridges - 1 do
    es := (b, size + b) :: !es
  done;
  Graph.of_edges ~n:(2 * size) !es

let star_of_cliques ~k ~extra =
  if k < 1 then invalid_arg "Gen.star_of_cliques";
  (* hub = 0, clique = 1..k, leaves = k+1 .. k+extra attached round-robin *)
  let n = 1 + k + extra in
  let es = ref [] in
  for i = 1 to k do
    es := (0, i) :: !es;
    for j = i + 1 to k do
      es := (i, j) :: !es
    done
  done;
  for l = 0 to extra - 1 do
    es := (1 + (l mod k), k + 1 + l) :: !es
  done;
  Graph.of_edges ~n !es

let cds_vs_independent_trees ~t =
  if t < 4 then invalid_arg "Gen.cds_vs_independent_trees: need t >= 4";
  let es = ref [] in
  for u = 0 to t - 1 do
    for v = u + 1 to t - 1 do
      es := (u, v) :: !es
    done
  done;
  let next = ref t in
  let triples = ref [] in
  for a = 0 to t - 1 do
    for b = a + 1 to t - 1 do
      for c = b + 1 to t - 1 do
        triples := (a, b, c) :: !triples
      done
    done
  done;
  List.iter
    (fun (a, b, c) ->
      let v = !next in
      incr next;
      es := (v, a) :: (v, b) :: (v, c) :: !es)
    (List.rev !triples);
  Graph.of_edges ~n:!next !es

let erdos_renyi rng ~n ~p =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then es := (u, v) :: !es
    done
  done;
  Graph.of_edges ~n !es

(* G(n,p) by geometric skipping (Batagelj–Brandes): instead of one
   Bernoulli draw per pair, draw the gap to the next present pair as a
   geometric variate and jump straight to it — O(n + m) work and RNG
   draws, which is what makes n = 2^20 rows feasible (the classic
   [erdos_renyi] is O(n^2) and its exact draw sequence is pinned by
   determinism digests, so it stays as is). Pairs are visited in the
   canonical lex order, so the resulting graph is identical in
   distribution but NOT draw-for-draw compatible with [erdos_renyi]. *)
let erdos_renyi_skip rng ~n ~p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Gen.erdos_renyi_skip: p out of [0,1]";
  if p = 0. then Graph.of_endpoints ~n [||] [||]
  else if p = 1. then clique n
  else begin
    let lq = log1p (-.p) in
    let cap = ref 1024 in
    let us = ref (Array.make !cap 0) and vs = ref (Array.make !cap 0) in
    let len = ref 0 in
    let push u v =
      if !len = !cap then begin
        let cap' = 2 * !cap in
        let us' = Array.make cap' 0 and vs' = Array.make cap' 0 in
        Array.blit !us 0 us' 0 !len;
        Array.blit !vs 0 vs' 0 !len;
        us := us';
        vs := vs';
        cap := cap'
      end;
      !us.(!len) <- u;
      !vs.(!len) <- v;
      incr len
    in
    (* enumerate pairs (w, u) with w < u in lex-by-u order, jumping a
       1 + Geometric(p) gap between successive present pairs *)
    let u = ref 1 and w = ref (-1) in
    while !u < n do
      let r = Random.State.float rng 1.0 in
      let gap = int_of_float (log1p (-.r) /. lq) in
      w := !w + 1 + gap;
      while !w >= !u && !u < n do
        w := !w - !u;
        incr u
      done;
      if !u < n then push !w !u
    done;
    Graph.of_endpoints ~n (Array.sub !us 0 !len) (Array.sub !vs 0 !len)
  end

let add_random_chords rng g extra =
  let n = Graph.n g in
  let es = ref [] in
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra && !attempts < 100 * (extra + 1) do
    incr attempts;
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      es := (u, v) :: !es;
      incr added
    end
  done;
  Graph.union_edges g !es

let random_k_connected rng ~n ~k ~extra =
  add_random_chords rng (harary ~k ~n) extra

let random_lambda_edge_connected rng ~n ~lambda ~extra =
  add_random_chords rng (harary ~k:lambda ~n) extra

let random_regular rng ~n ~d =
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n*d must be even";
  if d < 0 || d >= n then invalid_arg "Gen.random_regular: need 0 <= d < n";
  let stubs = Array.make (n * d) 0 in
  for v = 0 to n - 1 do
    for j = 0 to d - 1 do
      stubs.((v * d) + j) <- v
    done
  done;
  let attempt () =
    (* Fisher-Yates shuffle of the stubs, then pair consecutive ones *)
    for i = Array.length stubs - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- tmp
    done;
    let seen = Hashtbl.create (n * d) in
    let edges = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < Array.length stubs do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let e = (min u v, max u v) in
      if u = v || Hashtbl.mem seen e then ok := false
      else begin
        Hashtbl.replace seen e ();
        edges := e :: !edges
      end;
      i := !i + 2
    done;
    if !ok then Some !edges else None
  in
  let rec retry budget =
    if budget = 0 then
      failwith "Gen.random_regular: no simple pairing found"
    else match attempt () with Some es -> es | None -> retry (budget - 1)
  in
  Graph.of_edges ~n (retry 2000)

let random_tree rng ~n =
  let es = ref [] in
  for v = 1 to n - 1 do
    es := (v, Random.State.int rng v) :: !es
  done;
  Graph.of_edges ~n !es

let random_connected rng ~n ~extra =
  add_random_chords rng (random_tree rng ~n) extra
