(** Sparse connectivity certificates (Nagamochi–Ibaraki / Thurimella
    [49]): a subgraph with at most k·(n−1) edges preserving all cuts up
    to value k.

    [forest_decomposition g ~k] computes F₁, …, F_k by scan-first
    search: F_i is a spanning forest of G \ (F₁ ∪ … ∪ F_{i−1}). Their
    union is a k-certificate for edge connectivity:
    - every edge cut of value ≤ k in G keeps its value, so
      min(λ(G), k) = min(λ(certificate), k);
    - in particular the certificate stays λ-edge-connected whenever
      λ(G) ≥ λ and λ ≤ k.
    (The Nagamochi–Ibaraki scan-first-search ordering would additionally
    preserve vertex connectivity; the arbitrary-order forests here
    certify edge cuts only.)

    These certificates are what make the distributed component/MST
    machinery of [49] sublinear; here they serve as a substrate and as a
    preprocessing accelerator for the exact connectivity baselines. *)

(** [forest_decomposition g ~k] is the list of the k forests, each a
    canonical edge list. Forests are edge-disjoint; the i-th is a
    spanning forest of what the earlier ones left. *)
val forest_decomposition : Graph.t -> k:int -> (int * int) list list

(** [sparse_certificate g ~k] is the union subgraph (≤ k(n−1) edges). *)
val sparse_certificate : Graph.t -> k:int -> Graph.t

(** [certifies_edge_connectivity g ~k] checks the defining property on
    [g] (exact; intended for tests / small graphs): min(λ(G), k) =
    min(λ(cert), k). *)
val certifies_edge_connectivity : Graph.t -> k:int -> bool
