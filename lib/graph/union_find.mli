(** Disjoint-set forest with path compression and union by rank.

    Elements are integers [0 .. n-1]. All operations are effectively
    constant amortized time. *)

type t

(** [create n] is a fresh structure with [n] singleton sets. *)
val create : int -> t

(** [size uf] is the number of elements (not sets). *)
val size : t -> int

(** [find uf x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union uf x y] merges the sets of [x] and [y]. Returns [true] if the
    sets were distinct (a merge happened), [false] otherwise. *)
val union : t -> int -> int -> bool

(** [same uf x y] tests whether [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** [count uf] is the current number of disjoint sets. *)
val count : t -> int

(** [set_size uf x] is the number of elements in [x]'s set. *)
val set_size : t -> int -> int

(** [groups uf] lists the sets as (representative, members) pairs.
    Members appear in increasing order; O(n) time. *)
val groups : t -> (int * int list) list

(** [copy uf] is an independent copy. *)
val copy : t -> t
