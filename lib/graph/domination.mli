(** Dominating sets, connected dominating sets and related predicates. *)

(** [is_dominating g member] holds iff every vertex of [g] is in the set
    or has a neighbor in it. *)
val is_dominating : Graph.t -> (int -> bool) -> bool

(** [is_connected_dominating g member] holds iff the set is dominating
    and induces a connected non-empty subgraph. *)
val is_connected_dominating : Graph.t -> (int -> bool) -> bool

(** [is_dominating_tree g vs es] checks that the subgraph [(vs, es)] is a
    tree, uses only edges of [g] between listed vertices, and [vs]
    dominates [g]. *)
val is_dominating_tree : Graph.t -> int list -> (int * int) list -> bool

(** [undominated g member] lists the vertices violating domination. *)
val undominated : Graph.t -> (int -> bool) -> int list

(** [greedy_cds g] is a (suboptimal, baseline) connected dominating set:
    greedy max-coverage seeding followed by BFS-path stitching.
    @raise Invalid_argument on a disconnected graph. *)
val greedy_cds : Graph.t -> int list

(** [minimum_cds_size g] is the exact minimum CDS size by subset
    enumeration (exponential; intended for tiny test graphs, n <= ~20).
    @raise Invalid_argument on disconnected or empty graphs. *)
val minimum_cds_size : Graph.t -> int

(** [greedy_cds_within g ~allowed] is a connected dominating set of the
    whole graph [g] whose members are restricted to the [allowed]
    vertices: the set dominates every vertex of [g] and induces a
    connected subgraph of [g]. Returns [None] when no such set exists
    within [allowed] (some vertex has no allowed closed neighbor, or
    the allowed seeds cannot be stitched inside [allowed]). Used by the
    random-layering integral dominating-tree packing. *)
val greedy_cds_within : Graph.t -> allowed:(int -> bool) -> int list option
