type t = {
  parent : int array;
  rank : int array;
  sizes : int array;
  mutable count : int;
}

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    sizes = Array.make n 1;
    count = n;
  }

let size uf = Array.length uf.parent

let rec find uf x =
  let p = uf.parent.(x) in
  if p = x then x
  else begin
    let root = find uf p in
    uf.parent.(x) <- root;
    root
  end

let union uf x y =
  let rx = find uf x and ry = find uf y in
  if rx = ry then false
  else begin
    let rx, ry =
      if uf.rank.(rx) < uf.rank.(ry) then ry, rx else rx, ry
    in
    uf.parent.(ry) <- rx;
    uf.sizes.(rx) <- uf.sizes.(rx) + uf.sizes.(ry);
    if uf.rank.(rx) = uf.rank.(ry) then uf.rank.(rx) <- uf.rank.(rx) + 1;
    uf.count <- uf.count - 1;
    true
  end

let same uf x y = find uf x = find uf y

let count uf = uf.count

let set_size uf x = uf.sizes.(find uf x)

let groups uf =
  let n = size uf in
  let tbl = Hashtbl.create 16 in
  for x = n - 1 downto 0 do
    let r = find uf x in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (x :: members)
  done;
  Hashtbl.fold (fun r members acc -> (r, members) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let copy uf =
  {
    parent = Array.copy uf.parent;
    rank = Array.copy uf.rank;
    sizes = Array.copy uf.sizes;
    count = uf.count;
  }
