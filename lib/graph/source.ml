let parse_kv spec =
  (* "name:k=8,n=64" -> (name, assoc) *)
  match String.split_on_char ':' spec with
  | [ name ] -> (name, [])
  | [ name; args ] ->
    let kvs =
      String.split_on_char ',' args
      |> List.map (fun kv ->
             match String.split_on_char '=' kv with
             | [ k; v ] -> (
               let k = String.trim k and v = String.trim v in
               match int_of_string_opt v with
               | Some i -> (k, i)
               | None ->
                 failwith
                   (Printf.sprintf "generator argument %s=%s: expected an integer"
                      k v))
             | _ -> failwith ("bad generator argument: " ^ kv))
    in
    (name, kvs)
  | _ -> failwith ("bad generator spec: " ^ spec)

let gen_graph spec =
  let name, kvs = parse_kv spec in
  let get key ~default =
    match List.assoc_opt key kvs with Some v -> v | None -> default
  in
  let rng = Random.State.make [| get "seed" ~default:42 |] in
  match name with
  | "harary" -> Gen.harary ~k:(get "k" ~default:4) ~n:(get "n" ~default:32)
  | "hypercube" -> Gen.hypercube (get "d" ~default:4)
  | "clique" -> Gen.clique (get "n" ~default:8)
  | "cycle" -> Gen.cycle (get "n" ~default:16)
  | "grid" -> Gen.grid (get "rows" ~default:6) (get "cols" ~default:6)
  | "torus" -> Gen.torus (get "rows" ~default:6) (get "cols" ~default:6)
  | "clique_path" ->
    Gen.clique_path ~k:(get "k" ~default:4) ~len:(get "len" ~default:8)
  | "lollipop" ->
    Gen.lollipop ~clique:(get "m" ~default:8) ~tail:(get "tail" ~default:8)
  | "random" ->
    Gen.random_k_connected rng ~n:(get "n" ~default:32)
      ~k:(get "k" ~default:4)
      ~extra:(get "extra" ~default:32)
  | "er" ->
    (* G(n, p) with p = deg/n — arguments are integers throughout, so
       the expected average degree is the knob, not p itself *)
    let n = get "n" ~default:64 in
    Gen.erdos_renyi rng ~n
      ~p:(float_of_int (get "deg" ~default:8) /. float_of_int (max 1 n))
  | other -> failwith ("unknown generator: " ^ other)

let load ?(on_load = fun () -> ()) ?domains ~gen ~file () =
  (match domains with
  | Some d when d < 1 -> failwith "--domains must be at least 1"
  | Some d -> Par.set_net_domains d
  | None -> ());
  let g =
    match (gen, file) with
    | Some spec, None -> gen_graph spec
    | None, Some path -> Io.load path
    | _ -> failwith "exactly one of --gen or --file is required"
  in
  on_load ();
  g
