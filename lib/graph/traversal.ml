let bfs g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let bfs_tree g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  parent.(src) <- src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  (dist, parent)

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for src = 0 to n - 1 do
    if label.(src) < 0 then begin
      label.(src) <- !count;
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Array.iter
          (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- !count;
              Queue.add v queue
            end)
          (Graph.neighbors g u)
      done;
      incr count
    end
  done;
  (!count, label)

let is_connected g =
  let count, _ = components g in
  count <= 1

let component_of g ~src =
  let dist = bfs g src in
  let acc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if dist.(v) >= 0 then acc := v :: !acc
  done;
  !acc

let eccentricity g u =
  let dist = bfs g u in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Traversal.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let diameter g =
  if Graph.n g = 0 then invalid_arg "Traversal.diameter: empty graph";
  let best = ref 0 in
  for u = 0 to Graph.n g - 1 do
    best := max !best (eccentricity g u)
  done;
  !best

let diameter_2approx g =
  if Graph.n g = 0 then invalid_arg "Traversal.diameter_2approx: empty graph";
  let dist0 = bfs g 0 in
  let far = ref 0 in
  Array.iteri
    (fun v d ->
      if d < 0 then invalid_arg "Traversal.diameter_2approx: disconnected graph";
      if d > dist0.(!far) then far := v)
    dist0;
  eccentricity g !far

let distances_within g pred src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  if not (pred src) then dist
  else begin
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          if pred v && dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v queue
          end)
        (Graph.neighbors g u)
    done;
    dist
  end
