(* CSR (compressed sparse row) graph core.

   The adjacency of all n vertices lives in one flat [adj : int array]
   of length 2m, sliced by [off : int array] of length n+1: vertex [u]'s
   neighbors are [adj.(off.(u)) .. adj.(off.(u+1) - 1)], sorted
   ascending. A parallel [slot_edge : int array] maps every adjacency
   slot to the index of its undirected edge in the canonical edge order,
   so the simulator's per-message accounting ([edge_index]) is one
   O(log deg) monomorphic int search — or free when a caller iterates
   slots directly via [iter_incident] / the [csr_*] accessors.

   Canonical edge order is unchanged from the seed implementation:
   edges as (min, max) pairs sorted lexicographically. Everything
   downstream (edge ids in packing certificates, broadcast congestion
   tables, Net edge loads) depends on that order being stable.

   Edge endpoints are stored as two flat unboxed int arrays [eu]/[ev]
   rather than a [(int * int) array]: at n = 2^20 (m ~ 4m edges) the
   tuple array costs three words per edge plus a pointer chase per
   access, which dominated [iter_edges]-shaped scans. The historical
   tuple view ([edges]) and the per-vertex [nbr] views ([neighbors]'s
   "same physical array every call" contract) are materialized lazily,
   published once through an [Atomic] so concurrent first calls from
   shard domains agree on one physical array. *)

type t = {
  n : int;
  m : int;  (* number of undirected edges *)
  off : int array;  (* n+1 offsets into adj/slot_edge *)
  adj : int array;  (* flat neighbor lists, each slice sorted *)
  slot_edge : int array;  (* adjacency slot -> edge index *)
  eu : int array;  (* edge i -> smaller endpoint, lex-sorted *)
  ev : int array;  (* edge i -> larger endpoint *)
  nbr : int array array option Atomic.t;
      (* lazy per-vertex neighbor views (copies of adj slices) *)
  tup : (int * int) array option Atomic.t;  (* lazy tuple edge view *)
}

(* Publish-once lazy view: the first caller to install wins; losers
   re-read so every caller returns the same physical array. *)
let force holder make =
  match Atomic.get holder with
  | Some v -> v
  | None ->
    let v = make () in
    if Atomic.compare_and_set holder None (Some v) then v
    else begin
      match Atomic.get holder with
      | Some v -> v
      | None -> assert false
    end

let validate n u v =
  if u = v then invalid_arg "Graph: self-loop";
  if u < 0 || v < 0 || u >= n || v >= n then
    invalid_arg "Graph: endpoint out of range"

(* Core constructor over canonical edge keys [min u v * n + max u v],
   sorted ascending, duplicates allowed (collapsed here). Keys are
   destructive-input: the caller hands over the array. *)
let build_sorted_keys ~n keys =
  let nk = Array.length keys in
  let m =
    let c = ref 0 in
    for i = 0 to nk - 1 do
      if i = 0 || keys.(i - 1) <> keys.(i) then incr c
    done;
    !c
  in
  let eu = Array.make m 0 and ev = Array.make m 0 in
  let w = ref 0 in
  for i = 0 to nk - 1 do
    let k = keys.(i) in
    if i = 0 || keys.(i - 1) <> k then begin
      eu.(!w) <- k / n;
      ev.(!w) <- k mod n;
      incr w
    end
  done;
  let deg = Array.make n 0 in
  for i = 0 to m - 1 do
    deg.(eu.(i)) <- deg.(eu.(i)) + 1;
    deg.(ev.(i)) <- deg.(ev.(i)) + 1
  done;
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + deg.(u)
  done;
  let adj = Array.make (2 * m) 0 in
  let slot_edge = Array.make (2 * m) 0 in
  let fill = Array.make n 0 in
  let put w v i =
    let s = off.(w) + fill.(w) in
    adj.(s) <- v;
    slot_edge.(s) <- i;
    fill.(w) <- fill.(w) + 1
  in
  (* Two passes over the lex-ordered edges leave every slice sorted
     without a sort: pass 1 appends each edge's smaller endpoint to the
     larger one's slice (ascending, all < w), pass 2 appends the larger
     endpoint to the smaller one's slice (ascending, all > w). *)
  for i = 0 to m - 1 do
    put ev.(i) eu.(i) i
  done;
  for i = 0 to m - 1 do
    put eu.(i) ev.(i) i
  done;
  {
    n;
    m;
    off;
    adj;
    slot_edge;
    eu;
    ev;
    nbr = Atomic.make None;
    tup = Atomic.make None;
  }

let build ~n pairs =
  (* validate in list order, with the seed's exact messages *)
  List.iter (fun (u, v) -> validate n u v) pairs;
  let keys =
    Array.of_list (List.map (fun (u, v) -> (min u v * n) + max u v) pairs)
  in
  Array.sort Int.compare keys;
  build_sorted_keys ~n keys

let of_edges ~n edges = build ~n edges
let of_edge_array ~n edges = build ~n (Array.to_list edges)

let of_endpoints ~n us vs =
  let len = Array.length us in
  if Array.length vs <> len then
    invalid_arg "Graph.of_endpoints: endpoint arrays differ in length";
  let keys = Array.make len 0 in
  for i = 0 to len - 1 do
    let u = us.(i) and v = vs.(i) in
    validate n u v;
    keys.(i) <- (min u v * n) + max u v
  done;
  Array.sort Int.compare keys;
  build_sorted_keys ~n keys

let n g = g.n
let m g = g.m

let force_nbr g =
  force g.nbr (fun () ->
      Array.init g.n (fun u -> Array.sub g.adj g.off.(u) (g.off.(u + 1) - g.off.(u))))

let neighbors g u = (force_nbr g).(u)
let degree g u = g.off.(u + 1) - g.off.(u)

let min_degree g =
  if g.n = 0 then max_int
  else begin
    let best = ref max_int in
    for u = 0 to g.n - 1 do
      let d = g.off.(u + 1) - g.off.(u) in
      if d < !best then best := d
    done;
    !best
  end

(* adjacency slot of [v] inside [u]'s sorted slice, or -1 *)
let slot_of g u v =
  let lo = ref g.off.(u) and hi = ref g.off.(u + 1) in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.adj.(mid) in
    if w = v then found := mid else if w < v then lo := mid + 1 else hi := mid
  done;
  !found

let mem_edge g u v =
  if u = v || u < 0 || v < 0 || u >= g.n || v >= g.n then false
  else slot_of g u v >= 0

let edges g = force g.tup (fun () -> Array.init g.m (fun i -> (g.eu.(i), g.ev.(i))))

let edge_index g u v =
  if u = v || u < 0 || v < 0 || u >= g.n || v >= g.n then raise Not_found;
  let s = slot_of g u v in
  if s < 0 then raise Not_found;
  g.slot_edge.(s)

let edge_endpoints g i = (g.eu.(i), g.ev.(i))
let csr_offsets g = g.off
let csr_neighbors g = g.adj
let csr_edge_ids g = g.slot_edge

let iter_incident g u f =
  for s = g.off.(u) to g.off.(u + 1) - 1 do
    f g.adj.(s) g.slot_edge.(s)
  done

let iter_edges f g =
  for i = 0 to g.m - 1 do
    f g.eu.(i) g.ev.(i)
  done

let fold_edges f acc g =
  let acc = ref acc in
  for i = 0 to g.m - 1 do
    acc := f !acc g.eu.(i) g.ev.(i)
  done;
  !acc

let iter_vertices f g = for u = 0 to g.n - 1 do f u done

let induced g keep =
  let old_of_new = ref [] in
  let new_of_old = Array.make g.n (-1) in
  let count = ref 0 in
  for u = 0 to g.n - 1 do
    if keep u then begin
      new_of_old.(u) <- !count;
      old_of_new := u :: !old_of_new;
      incr count
    end
  done;
  let mapping = Array.of_list (List.rev !old_of_new) in
  let es =
    fold_edges
      (fun acc u v ->
        if keep u && keep v then (new_of_old.(u), new_of_old.(v)) :: acc
        else acc)
      [] g
  in
  (build ~n:!count es, mapping)

let spanning_subgraph g pred =
  let es = fold_edges (fun acc u v -> if pred u v then (u, v) :: acc else acc) [] g in
  build ~n:g.n es

let union_edges g extra =
  List.iter (fun (u, v) -> validate g.n u v) extra;
  let nx = List.length extra in
  let keys = Array.make (g.m + nx) 0 in
  for i = 0 to g.m - 1 do
    keys.(i) <- (g.eu.(i) * g.n) + g.ev.(i)
  done;
  List.iteri
    (fun j (u, v) -> keys.(g.m + j) <- (min u v * g.n) + max u v)
    extra;
  Array.sort Int.compare keys;
  build_sorted_keys ~n:g.n keys

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  iter_edges (fun u v -> Format.fprintf ppf "%d -- %d@," u v) g;
  Format.fprintf ppf "@]"

let pp_dot ?(highlight = fun _ -> false) ppf g =
  Format.fprintf ppf "graph {@.";
  Format.fprintf ppf "  node [shape=circle];@.";
  for v = 0 to g.n - 1 do
    if highlight v then
      Format.fprintf ppf "  %d [style=filled, fillcolor=lightblue];@." v
  done;
  iter_edges (fun u v -> Format.fprintf ppf "  %d -- %d;@." u v) g;
  Format.fprintf ppf "}@."
