type t = {
  n : int;
  adj : int array array;
  edges : (int * int) array;
}

let canonical u v = if u < v then (u, v) else (v, u)

let build ~n pairs =
  let seen = Hashtbl.create (List.length pairs) in
  let keep =
    List.filter
      (fun (u, v) ->
        if u = v then invalid_arg "Graph: self-loop";
        if u < 0 || v < 0 || u >= n || v >= n then
          invalid_arg "Graph: endpoint out of range";
        let e = canonical u v in
        if Hashtbl.mem seen e then false
        else begin
          Hashtbl.add seen e ();
          true
        end)
      (List.map (fun (u, v) -> canonical u v) pairs)
  in
  let edges = Array.of_list keep in
  Array.sort compare edges;
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun u -> Array.make deg.(u) 0) in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iter (fun a -> Array.sort compare a) adj;
  { n; adj; edges }

let of_edges ~n edges = build ~n edges
let of_edge_array ~n edges = build ~n (Array.to_list edges)

let n g = g.n
let m g = Array.length g.edges
let neighbors g u = g.adj.(u)
let degree g u = Array.length g.adj.(u)

let min_degree g =
  if g.n = 0 then max_int
  else Array.fold_left (fun acc a -> min acc (Array.length a)) max_int g.adj

let mem_edge g u v =
  if u = v || u < 0 || v < 0 || u >= g.n || v >= g.n then false
  else begin
    let a = g.adj.(u) in
    let rec search lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if a.(mid) = v then true
        else if a.(mid) < v then search (mid + 1) hi
        else search lo mid
    in
    search 0 (Array.length a)
  end

let edges g = g.edges

let edge_index g u v =
  let e = canonical u v in
  let rec search lo hi =
    if lo >= hi then raise Not_found
    else
      let mid = (lo + hi) / 2 in
      let c = compare g.edges.(mid) e in
      if c = 0 then mid else if c < 0 then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length g.edges)

let iter_edges f g = Array.iter (fun (u, v) -> f u v) g.edges
let fold_edges f acc g = Array.fold_left (fun acc (u, v) -> f acc u v) acc g.edges
let iter_vertices f g = for u = 0 to g.n - 1 do f u done

let induced g keep =
  let old_of_new = ref [] in
  let new_of_old = Array.make g.n (-1) in
  let count = ref 0 in
  for u = 0 to g.n - 1 do
    if keep u then begin
      new_of_old.(u) <- !count;
      old_of_new := u :: !old_of_new;
      incr count
    end
  done;
  let mapping = Array.of_list (List.rev !old_of_new) in
  let es =
    fold_edges
      (fun acc u v ->
        if keep u && keep v then (new_of_old.(u), new_of_old.(v)) :: acc
        else acc)
      [] g
  in
  (build ~n:!count es, mapping)

let spanning_subgraph g pred =
  let es = fold_edges (fun acc u v -> if pred u v then (u, v) :: acc else acc) [] g in
  build ~n:g.n es

let union_edges g extra =
  build ~n:g.n (Array.to_list g.edges @ extra)

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  iter_edges (fun u v -> Format.fprintf ppf "%d -- %d@," u v) g;
  Format.fprintf ppf "@]"

let pp_dot ?(highlight = fun _ -> false) ppf g =
  Format.fprintf ppf "graph {@.";
  Format.fprintf ppf "  node [shape=circle];@.";
  for v = 0 to g.n - 1 do
    if highlight v then
      Format.fprintf ppf "  %d [style=filled, fillcolor=lightblue];@." v
  done;
  iter_edges (fun u v -> Format.fprintf ppf "  %d -- %d;@." u v) g;
  Format.fprintf ppf "}@."
