(* CSR (compressed sparse row) graph core.

   The adjacency of all n vertices lives in one flat [adj : int array]
   of length 2m, sliced by [off : int array] of length n+1: vertex [u]'s
   neighbors are [adj.(off.(u)) .. adj.(off.(u+1) - 1)], sorted
   ascending. A parallel [slot_edge : int array] maps every adjacency
   slot to the index of its undirected edge in the canonical edge order,
   so the simulator's per-message accounting ([edge_index]) is one
   O(log deg) monomorphic int search — or free when a caller iterates
   slots directly via [iter_incident] / the [csr_*] accessors.

   Canonical edge order is unchanged from the seed implementation:
   edges as (min, max) pairs sorted lexicographically. Everything
   downstream (edge ids in packing certificates, broadcast congestion
   tables, Net edge loads) depends on that order being stable.

   The per-vertex [nbr] views exist so [neighbors] keeps its historical
   contract — the same physical sorted array on every call, owned by
   the graph — without exposing the flat CSR arrays to mutation. *)

type t = {
  n : int;
  off : int array;  (* n+1 offsets into adj/slot_edge *)
  adj : int array;  (* flat neighbor lists, each slice sorted *)
  slot_edge : int array;  (* adjacency slot -> edge index *)
  nbr : int array array;  (* per-vertex neighbor views (aliases of adj data) *)
  edges : (int * int) array;  (* canonical (min,max), lex-sorted *)
}

let build ~n pairs =
  (* validate in list order, with the seed's exact messages *)
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Graph: self-loop";
      if u < 0 || v < 0 || u >= n || v >= n then
        invalid_arg "Graph: endpoint out of range")
    pairs;
  (* encode canonical pairs as u*n+v keys: dedup and lex-sort become
     monomorphic int operations *)
  let keys =
    Array.of_list (List.map (fun (u, v) -> (min u v * n) + max u v) pairs)
  in
  Array.sort Int.compare keys;
  let m =
    (* count distinct keys *)
    let c = ref 0 in
    Array.iteri (fun i k -> if i = 0 || keys.(i - 1) <> k then incr c) keys;
    !c
  in
  let eu = Array.make m 0 and ev = Array.make m 0 in
  let w = ref 0 in
  Array.iteri
    (fun i k ->
      if i = 0 || keys.(i - 1) <> k then begin
        eu.(!w) <- k / n;
        ev.(!w) <- k mod n;
        incr w
      end)
    keys;
  let deg = Array.make n 0 in
  for i = 0 to m - 1 do
    deg.(eu.(i)) <- deg.(eu.(i)) + 1;
    deg.(ev.(i)) <- deg.(ev.(i)) + 1
  done;
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + deg.(u)
  done;
  let adj = Array.make (2 * m) 0 in
  let slot_edge = Array.make (2 * m) 0 in
  let fill = Array.make n 0 in
  let put w v i =
    let s = off.(w) + fill.(w) in
    adj.(s) <- v;
    slot_edge.(s) <- i;
    fill.(w) <- fill.(w) + 1
  in
  (* Two passes over the lex-ordered edges leave every slice sorted
     without a sort: pass 1 appends each edge's smaller endpoint to the
     larger one's slice (ascending, all < w), pass 2 appends the larger
     endpoint to the smaller one's slice (ascending, all > w). *)
  for i = 0 to m - 1 do
    put ev.(i) eu.(i) i
  done;
  for i = 0 to m - 1 do
    put eu.(i) ev.(i) i
  done;
  let nbr = Array.init n (fun u -> Array.sub adj off.(u) deg.(u)) in
  let edges = Array.init m (fun i -> (eu.(i), ev.(i))) in
  { n; off; adj; slot_edge; nbr; edges }

let of_edges ~n edges = build ~n edges
let of_edge_array ~n edges = build ~n (Array.to_list edges)

let n g = g.n
let m g = Array.length g.edges
let neighbors g u = g.nbr.(u)
let degree g u = g.off.(u + 1) - g.off.(u)

let min_degree g =
  if g.n = 0 then max_int
  else begin
    let best = ref max_int in
    for u = 0 to g.n - 1 do
      let d = g.off.(u + 1) - g.off.(u) in
      if d < !best then best := d
    done;
    !best
  end

(* adjacency slot of [v] inside [u]'s sorted slice, or -1 *)
let slot_of g u v =
  let lo = ref g.off.(u) and hi = ref g.off.(u + 1) in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.adj.(mid) in
    if w = v then found := mid else if w < v then lo := mid + 1 else hi := mid
  done;
  !found

let mem_edge g u v =
  if u = v || u < 0 || v < 0 || u >= g.n || v >= g.n then false
  else slot_of g u v >= 0

let edges g = g.edges

let edge_index g u v =
  if u = v || u < 0 || v < 0 || u >= g.n || v >= g.n then raise Not_found;
  let s = slot_of g u v in
  if s < 0 then raise Not_found;
  g.slot_edge.(s)

let csr_offsets g = g.off
let csr_neighbors g = g.adj
let csr_edge_ids g = g.slot_edge

let iter_incident g u f =
  for s = g.off.(u) to g.off.(u + 1) - 1 do
    f g.adj.(s) g.slot_edge.(s)
  done

let iter_edges f g = Array.iter (fun (u, v) -> f u v) g.edges
let fold_edges f acc g = Array.fold_left (fun acc (u, v) -> f acc u v) acc g.edges
let iter_vertices f g = for u = 0 to g.n - 1 do f u done

let induced g keep =
  let old_of_new = ref [] in
  let new_of_old = Array.make g.n (-1) in
  let count = ref 0 in
  for u = 0 to g.n - 1 do
    if keep u then begin
      new_of_old.(u) <- !count;
      old_of_new := u :: !old_of_new;
      incr count
    end
  done;
  let mapping = Array.of_list (List.rev !old_of_new) in
  let es =
    fold_edges
      (fun acc u v ->
        if keep u && keep v then (new_of_old.(u), new_of_old.(v)) :: acc
        else acc)
      [] g
  in
  (build ~n:!count es, mapping)

let spanning_subgraph g pred =
  let es = fold_edges (fun acc u v -> if pred u v then (u, v) :: acc else acc) [] g in
  build ~n:g.n es

let union_edges g extra =
  build ~n:g.n (Array.to_list g.edges @ extra)

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  iter_edges (fun u v -> Format.fprintf ppf "%d -- %d@," u v) g;
  Format.fprintf ppf "@]"

let pp_dot ?(highlight = fun _ -> false) ppf g =
  Format.fprintf ppf "graph {@.";
  Format.fprintf ppf "  node [shape=circle];@.";
  for v = 0 to g.n - 1 do
    if highlight v then
      Format.fprintf ppf "  %d [style=filled, fillcolor=lightblue];@." v
  done;
  iter_edges (fun u v -> Format.fprintf ppf "  %d -- %d;@." u v) g;
  Format.fprintf ppf "}@."
