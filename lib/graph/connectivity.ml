(* Stoer–Wagner global minimum cut on the unit-weighted graph. The
   classic O(n^3) array implementation: repeatedly run maximum-adjacency
   search, record the cut-of-the-phase, merge the last two vertices. *)
let stoer_wagner g =
  let n = Graph.n g in
  if n < 2 then (max_int, Array.make n true)
  else begin
    let w = Array.make_matrix n n 0 in
    Graph.iter_edges
      (fun u v ->
        w.(u).(v) <- 1;
        w.(v).(u) <- 1)
      g;
    (* merged.(v) lists the original vertices currently contracted into v *)
    let merged = Array.init n (fun v -> [ v ]) in
    let active = Array.make n true in
    let best_cut = ref max_int in
    let best_side = ref [] in
    let remaining = ref n in
    while !remaining > 1 do
      (* maximum adjacency search *)
      let in_a = Array.make n false in
      let conn = Array.make n 0 in
      let prev = ref (-1) in
      let last = ref (-1) in
      for _ = 1 to !remaining do
        let sel = ref (-1) in
        for v = 0 to n - 1 do
          if active.(v) && not in_a.(v) && (!sel < 0 || conn.(v) > conn.(!sel))
          then sel := v
        done;
        let s = !sel in
        in_a.(s) <- true;
        prev := !last;
        last := s;
        for v = 0 to n - 1 do
          if active.(v) && not in_a.(v) then conn.(v) <- conn.(v) + w.(s).(v)
        done
      done;
      let s = !last and t = !prev in
      (* cut of the phase: ({s-as-merged}, rest) with weight conn-at-add *)
      let cut_weight =
        let total = ref 0 in
        for v = 0 to n - 1 do
          if active.(v) && v <> s then total := !total + w.(s).(v)
        done;
        !total
      in
      if cut_weight < !best_cut then begin
        best_cut := cut_weight;
        best_side := merged.(s)
      end;
      (* contract s into t *)
      for v = 0 to n - 1 do
        if active.(v) && v <> s && v <> t then begin
          w.(t).(v) <- w.(t).(v) + w.(s).(v);
          w.(v).(t) <- w.(t).(v)
        end
      done;
      merged.(t) <- merged.(s) @ merged.(t);
      active.(s) <- false;
      decr remaining
    done;
    let side = Array.make n false in
    List.iter (fun v -> side.(v) <- true) !best_side;
    (!best_cut, side)
  end

let min_edge_cut g =
  if Graph.n g >= 2 && not (Traversal.is_connected g) then begin
    (* report a connected component as one shore *)
    let _, label = Traversal.components g in
    (0, Array.map (fun l -> l = 0) label)
  end
  else stoer_wagner g

let edge_connectivity g = fst (min_edge_cut g)

let edge_connectivity_sparsified g =
  if Graph.n g < 2 then max_int
  else begin
    (* lambda <= min degree, so a (min degree + 1)-certificate preserves
       the exact value *)
    let k = min (Graph.n g - 1) (Graph.min_degree g + 1) in
    edge_connectivity (Certificate.sparse_certificate g ~k:(max 1 k))
  end

let is_complete g =
  let n = Graph.n g in
  Graph.m g = n * (n - 1) / 2

(* Candidate sources for Even's scheme: a minimum-degree vertex and its
   neighborhood. At least one of these deg+1 vertices avoids any minimum
   vertex cut (its size is at most the minimum degree), and from a vertex
   outside the cut some non-adjacent vertex lies across the cut. *)
let candidate_sources g =
  let n = Graph.n g in
  let v0 = ref 0 in
  for v = 1 to n - 1 do
    if Graph.degree g v < Graph.degree g !v0 then v0 := v
  done;
  !v0 :: Array.to_list (Graph.neighbors g !v0)

let vertex_connectivity_with_witness g =
  let n = Graph.n g in
  if n <= 1 then (max 0 (n - 1), None)
  else if not (Traversal.is_connected g) then (0, None)
  else if is_complete g then (n - 1, None)
  else begin
    let best = ref (n - 1) in
    let best_pair = ref None in
    let consider x u =
      if x <> u && not (Graph.mem_edge g x u) then begin
        let f = Maxflow.vertex_connectivity_pair g x u in
        if f < !best then begin
          best := f;
          best_pair := Some (x, u)
        end
      end
    in
    List.iter (fun x -> for u = 0 to n - 1 do consider x u done)
      (candidate_sources g);
    match !best_pair with
    | None ->
      (* no non-adjacent pair seen from candidates: fall back to scanning
         all non-adjacent pairs (tiny graphs only) *)
      for x = 0 to n - 1 do
        for u = x + 1 to n - 1 do
          consider x u
        done
      done;
      (!best, !best_pair)
    | Some _ -> (!best, !best_pair)
  end

let vertex_connectivity g = fst (vertex_connectivity_with_witness g)

let min_vertex_cut g =
  match vertex_connectivity_with_witness g with
  | _, None -> None
  | _, Some (x, u) ->
    (* Re-solve the split network and read the vertices whose internal arc
       crosses the minimum cut. *)
    let n = Graph.n g in
    let inf = (Graph.m g * 2) + n + 1 in
    let net = Maxflow.create (2 * n) in
    for y = 0 to n - 1 do
      let cap = if y = x || y = u then inf else 1 in
      Maxflow.add_edge net (2 * y) ((2 * y) + 1) cap
    done;
    Graph.iter_edges
      (fun a b ->
        Maxflow.add_edge net ((2 * a) + 1) (2 * b) inf;
        Maxflow.add_edge net ((2 * b) + 1) (2 * a) inf)
      g;
    let _ = Maxflow.max_flow net ~src:((2 * x) + 1) ~sink:(2 * u) in
    let side = Maxflow.min_cut_side net ~src:((2 * x) + 1) in
    let cut = ref [] in
    for y = n - 1 downto 0 do
      if side.(2 * y) && not side.((2 * y) + 1) then cut := y :: !cut
    done;
    Some !cut

let is_k_vertex_connected g k =
  let n = Graph.n g in
  if k <= 0 then true
  else if n <= k then false
  else if not (Traversal.is_connected g) then false
  else if is_complete g then n - 1 >= k
  else begin
    let ok = ref true in
    let consider x u =
      if !ok && x <> u && not (Graph.mem_edge g x u) then
        if Maxflow.vertex_connectivity_pair g x u < k then ok := false
    in
    List.iter (fun x -> for u = 0 to n - 1 do consider x u done)
      (candidate_sources g);
    !ok
  end

let menger_vertex_paths g u v = Maxflow.vertex_disjoint_paths g u v

let all_min_vertex_cuts g =
  let n = Graph.n g in
  if n > 26 then invalid_arg "Connectivity.all_min_vertex_cuts: too large";
  if n <= 1 || (not (Traversal.is_connected g)) || is_complete g then []
  else begin
    let k = vertex_connectivity g in
    (* enumerate k-subsets and keep the separators *)
    let cuts = ref [] in
    let subset = Array.make k 0 in
    let rec choose start depth =
      if depth = k then begin
        let member = Array.make n false in
        Array.iter (fun v -> member.(v) <- true) subset;
        let sub, _ = Graph.induced g (fun v -> not member.(v)) in
        if Graph.n sub > 0 && not (Traversal.is_connected sub) then
          cuts := Array.to_list (Array.copy subset) :: !cuts
      end
      else
        for v = start to n - 1 do
          subset.(depth) <- v;
          choose (v + 1) (depth + 1)
        done
    in
    choose 0 0;
    List.sort (List.compare Int.compare) !cuts
  end
