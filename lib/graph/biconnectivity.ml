(* Hopcroft–Tarjan lowpoint DFS (recursive; fine at simulator scale). *)

(* Edge pairs, ordered as polymorphic compare would order (int * int). *)
let compare_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let run_dfs g ~on_articulation ~on_bridge ~on_component =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let time = ref 0 in
  let edge_stack = Stack.create () in
  let is_articulation = Array.make n false in
  let pop_component ~until =
    let comp = ref [] in
    let continue = ref true in
    while !continue && not (Stack.is_empty edge_stack) do
      let e = Stack.pop edge_stack in
      comp := e :: !comp;
      if e = until then continue := false
    done;
    if !comp <> [] then on_component (List.sort compare_pair !comp)
  in
  let rec dfs u parent =
    disc.(u) <- !time;
    low.(u) <- !time;
    incr time;
    let children = ref 0 in
    Array.iter
      (fun v ->
        if disc.(v) < 0 then begin
          incr children;
          let e = (min u v, max u v) in
          Stack.push e edge_stack;
          dfs v u;
          if low.(v) < low.(u) then low.(u) <- low.(v);
          if low.(v) > disc.(u) then on_bridge e;
          if (parent >= 0 && low.(v) >= disc.(u)) then begin
            is_articulation.(u) <- true;
            pop_component ~until:e
          end
          else if parent < 0 then
            (* each child subtree of the root closes one component *)
            pop_component ~until:e
        end
        else if v <> parent && disc.(v) < disc.(u) then begin
          Stack.push (min u v, max u v) edge_stack;
          if disc.(v) < low.(u) then low.(u) <- disc.(v)
        end)
      (Graph.neighbors g u);
    if parent < 0 && !children >= 2 then is_articulation.(u) <- true
  in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then dfs root (-1)
  done;
  for v = 0 to n - 1 do
    if is_articulation.(v) then on_articulation v
  done

let articulation_points g =
  let acc = ref [] in
  run_dfs g
    ~on_articulation:(fun v -> acc := v :: !acc)
    ~on_bridge:(fun _ -> ())
    ~on_component:(fun _ -> ());
  List.sort Int.compare !acc

let bridges g =
  let acc = ref [] in
  run_dfs g
    ~on_articulation:(fun _ -> ())
    ~on_bridge:(fun e -> acc := e :: !acc)
    ~on_component:(fun _ -> ());
  List.sort compare_pair !acc

let biconnected_components g =
  let acc = ref [] in
  run_dfs g
    ~on_articulation:(fun _ -> ())
    ~on_bridge:(fun _ -> ())
    ~on_component:(fun comp -> acc := comp :: !acc);
  List.rev !acc

let is_biconnected g =
  Graph.n g >= 3
  && Traversal.is_connected g
  && articulation_points g = []
