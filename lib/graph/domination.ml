let is_dominating g member =
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    if !ok && not (member v) then
      ok := Array.exists member (Graph.neighbors g v)
  done;
  !ok

let induced_connected g member =
  let n = Graph.n g in
  let src = ref (-1) in
  for v = n - 1 downto 0 do
    if member v then src := v
  done;
  if !src < 0 then false
  else begin
    let dist = Traversal.distances_within g member !src in
    let ok = ref true in
    for v = 0 to n - 1 do
      if member v && dist.(v) < 0 then ok := false
    done;
    !ok
  end

let is_connected_dominating g member =
  is_dominating g member && induced_connected g member

let is_dominating_tree g vs es =
  let n = Graph.n g in
  let in_set = Array.make n false in
  List.iter
    (fun v -> if v >= 0 && v < n then in_set.(v) <- true)
    vs;
  let vertex_count = List.length (List.sort_uniq Int.compare vs) in
  let edges_ok =
    List.for_all
      (fun (u, v) ->
        u >= 0 && v >= 0 && u < n && v < n && in_set.(u) && in_set.(v)
        && Graph.mem_edge g u v)
      es
  in
  edges_ok
  && List.length es = vertex_count - 1
  &&
  let uf = Union_find.create n in
  List.for_all (fun (u, v) -> Union_find.union uf u v) es
  && is_dominating g (fun v -> in_set.(v))

let undominated g member =
  let acc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not (member v) && not (Array.exists member (Graph.neighbors g v)) then
      acc := v :: !acc
  done;
  !acc

let greedy_cds g =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Domination.greedy_cds: empty graph";
  if not (Traversal.is_connected g) then
    invalid_arg "Domination.greedy_cds: disconnected graph";
  if n = 1 then [ 0 ]
  else begin
    let chosen = Array.make n false in
    let covered = Array.make n false in
    let cover v =
      covered.(v) <- true;
      Array.iter (fun u -> covered.(u) <- true) (Graph.neighbors g v)
    in
    let uncovered_gain v =
      let gain = ref (if covered.(v) then 0 else 1) in
      Array.iter
        (fun u -> if not covered.(u) then incr gain)
        (Graph.neighbors g v);
      !gain
    in
    (* greedy max-coverage dominating set *)
    let all_covered () = Array.for_all (fun c -> c) covered in
    while not (all_covered ()) do
      let best = ref 0 in
      for v = 1 to n - 1 do
        if uncovered_gain v > uncovered_gain !best then best := v
      done;
      chosen.(!best) <- true;
      cover !best
    done;
    (* stitch: connect chosen components along shortest paths *)
    let member v = chosen.(v) in
    let rec stitch () =
      if not (induced_connected g member) then begin
        (* find two components of chosen and add a shortest connecting path *)
        let src = ref (-1) in
        for v = n - 1 downto 0 do
          if chosen.(v) then src := v
        done;
        let inside = Traversal.distances_within g member !src in
        let target = ref (-1) in
        for v = 0 to n - 1 do
          if chosen.(v) && inside.(v) < 0 && !target < 0 then target := v
        done;
        let dist, parent = Traversal.bfs_tree g !src in
        ignore dist;
        let rec add v =
          if not chosen.(v) then begin
            chosen.(v) <- true;
            add parent.(v)
          end
          else if inside.(v) < 0 then add parent.(v)
        in
        add !target;
        stitch ()
      end
    in
    stitch ();
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if chosen.(v) then acc := v :: !acc
    done;
    !acc
  end

let greedy_cds_within g ~allowed =
  let n = Graph.n g in
  if n = 0 then None
  else begin
    let chosen = Array.make n false in
    let covered = Array.make n false in
    let cover v =
      covered.(v) <- true;
      Array.iter (fun u -> covered.(u) <- true) (Graph.neighbors g v)
    in
    let uncovered_gain v =
      let gain = ref (if covered.(v) then 0 else 1) in
      Array.iter
        (fun u -> if not covered.(u) then incr gain)
        (Graph.neighbors g v);
      !gain
    in
    let all_covered () = Array.for_all (fun c -> c) covered in
    let feasible = ref true in
    while !feasible && not (all_covered ()) do
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if allowed v && (!best < 0 || uncovered_gain v > uncovered_gain !best)
        then best := v
      done;
      if !best < 0 || uncovered_gain !best = 0 then feasible := false
      else begin
        chosen.(!best) <- true;
        cover !best
      end
    done;
    if not !feasible then None
    else begin
      (* stitch the chosen seeds inside G[allowed] *)
      let member v = chosen.(v) in
      let src = ref (-1) in
      for v = n - 1 downto 0 do
        if chosen.(v) then src := v
      done;
      if !src < 0 then None
      else begin
        let stuck = ref false in
        let connected () = induced_connected g member in
        while (not !stuck) && not (connected ()) do
          let inside = Traversal.distances_within g member !src in
          let target = ref (-1) in
          for v = 0 to n - 1 do
            if chosen.(v) && inside.(v) < 0 && !target < 0 then target := v
          done;
          (* shortest path within allowed vertices from src-component *)
          let dist = Traversal.distances_within g allowed !src in
          if !target < 0 || dist.(!target) < 0 then stuck := true
          else begin
            (* walk back from target along allowed BFS layers *)
            let v = ref !target in
            let progress = ref true in
            while !progress && inside.(!v) < 0 do
              let next = ref (-1) in
              Array.iter
                (fun u ->
                  if allowed u && dist.(u) = dist.(!v) - 1 && !next < 0 then
                    next := u)
                (Graph.neighbors g !v);
              if !next < 0 then begin
                progress := false;
                stuck := true
              end
              else begin
                chosen.(!next) <- true;
                v := !next
              end
            done
          end
        done;
        if !stuck then None
        else begin
          let acc = ref [] in
          for v = n - 1 downto 0 do
            if chosen.(v) then acc := v :: !acc
          done;
          Some !acc
        end
      end
    end
  end

let minimum_cds_size g =
  let n = Graph.n g in
  if n = 0 || not (Traversal.is_connected g) then
    invalid_arg "Domination.minimum_cds_size";
  if n > 24 then invalid_arg "Domination.minimum_cds_size: too large";
  if n = 1 then 1
  else begin
    (* enumerate subsets in increasing popcount via sizes *)
    let best = ref n in
    for mask = 1 to (1 lsl n) - 1 do
      let size = ref 0 in
      for v = 0 to n - 1 do
        if mask land (1 lsl v) <> 0 then incr size
      done;
      if !size < !best then begin
        let member v = mask land (1 lsl v) <> 0 in
        if is_connected_dominating g member then best := !size
      end
    done;
    !best
  end
