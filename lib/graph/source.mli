(** Graph sources for drivers: a generator spec ("harary:k=8,n=64") or
    an edge-list file. Factored out of the CLI so that (a) the parsing
    is unit-testable and (b) callers can count how many times a graph is
    actually constructed — the regression surface for "the retry loop
    must not rebuild the graph per attempt". *)

(** ["name:k=8,n=64"] -> [("name", [("k", 8); ("n", 64)])]. Raises
    [Failure] on a malformed spec. *)
val parse_kv : string -> string * (string * int) list

(** Build a graph from a generator spec. Known generators: harary,
    hypercube, clique, cycle, grid, torus, clique_path, lollipop,
    random, er (["er:n=1024,deg=8,seed=1"] is G(n, deg/n)). Raises
    [Failure] on an unknown name. *)
val gen_graph : string -> Graph.t

(** [load ~gen ~file] resolves exactly one of a generator spec or an
    edge-list path ('-' = stdin) to a graph. [on_load] (default a
    no-op) is invoked once per graph actually constructed — drivers
    thread a counter through it to assert single construction.

    [domains] (the CLI's [--domains]) sets the process-wide default
    domain count for subsequently created CONGEST nets
    ({!Par.set_net_domains}): every net the driver builds after this
    load shards its rounds across that many domains. Output is
    byte-identical across domain counts (see [Congest.Net.create]).
    Raises [Failure] on [domains < 1]. *)
val load :
  ?on_load:(unit -> unit) -> ?domains:int -> gen:string option ->
  file:string option -> unit -> Graph.t
