(** Compact undirected simple graphs on vertices [0 .. n-1].

    The representation is immutable after construction: a CSR
    (compressed sparse row) adjacency — one flat sorted neighbor array
    sliced by offsets, with a parallel slot→edge-index table — plus a
    canonical edge list (each undirected edge appears once, as
    [(u, v)] with [u < v], in lexicographic order). Self-loops are
    rejected and parallel edges are collapsed at construction. *)

type t

(** {1 Construction} *)

(** [of_edges ~n edges] builds a graph on [n] vertices from an undirected
    edge list. Duplicate edges (in either orientation) are collapsed.
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)
val of_edges : n:int -> (int * int) list -> t

(** [of_edge_array ~n edges] is [of_edges] on an array. *)
val of_edge_array : n:int -> (int * int) array -> t

(** [of_endpoints ~n us vs] builds from two parallel endpoint arrays
    ([us.(i), vs.(i)] is an edge, either orientation, any order,
    duplicates collapsed) without materializing tuples — the
    constructor of choice for generated million-edge graphs.
    @raise Invalid_argument on self-loops, out-of-range endpoints, or
    length mismatch. *)
val of_endpoints : n:int -> int array -> int array -> t

(** {1 Accessors} *)

(** Number of vertices. *)
val n : t -> int

(** Number of undirected edges. *)
val m : t -> int

(** [neighbors g u] is the sorted array of neighbors of [u]. The returned
    array is owned by the graph and must not be mutated. Per-vertex
    views are materialized lazily on the first call (and published
    atomically, so concurrent first calls agree); every call returns
    the same physical array. Hot loops that only scan adjacency should
    prefer the CSR accessors below, which allocate nothing. *)
val neighbors : t -> int -> int array

(** [degree g u] is the number of neighbors of [u]. *)
val degree : t -> int -> int

(** Minimum degree over all vertices ([max_int] on the empty graph). *)
val min_degree : t -> int

(** [mem_edge g u v] tests edge presence in O(log deg). *)
val mem_edge : t -> int -> int -> bool

(** [edges g] is the canonical edge array, each edge once as [(u, v)],
    [u < v], in lexicographic order. Owned by the graph; do not mutate.
    The tuple array is materialized lazily on the first call (published
    atomically); every call returns the same physical array. Prefer
    [iter_edges] / [fold_edges] / [edge_endpoints], which read the
    unboxed endpoint storage directly. *)
val edges : t -> (int * int) array

(** [edge_index g u v] is the index of edge [{u,v}] in [edges g].
    @raise Not_found if absent. *)
val edge_index : t -> int -> int -> int

(** [edge_endpoints g i] is the [i]-th canonical edge as [(u, v)],
    [u < v], without materializing the tuple view. *)
val edge_endpoints : t -> int -> int * int

(** {1 CSR access}

    Zero-cost views of the underlying representation, for hot loops
    (the CONGEST round engine) that cannot afford per-call closures or
    bounds-checked double indirection. All returned arrays are owned by
    the graph and must not be mutated. *)

(** [csr_offsets g] has length [n g + 1]; vertex [u]'s adjacency slots
    are [csr_offsets g.(u) .. csr_offsets g.(u+1) - 1]. *)
val csr_offsets : t -> int array

(** [csr_neighbors g] is the flat neighbor array of length [2 * m g];
    each vertex's slice is sorted ascending. *)
val csr_neighbors : t -> int array

(** [csr_edge_ids g] maps each adjacency slot to the index of its
    undirected edge in [edges g]. *)
val csr_edge_ids : t -> int array

(** [iter_incident g u f] calls [f v ei] for every neighbor [v] of [u]
    in ascending order, where [ei = edge_index g u v] — without the
    O(log deg) lookup. *)
val iter_incident : t -> int -> (int -> int -> unit) -> unit

(** {1 Iteration} *)

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : ('a -> int -> int -> 'a) -> 'a -> t -> 'a
val iter_vertices : (int -> unit) -> t -> unit

(** {1 Derived graphs} *)

(** [induced g vs] is the subgraph induced by the vertex set [vs]
    (given as a membership predicate over original ids), together with
    the mapping [new_id -> old_id]. *)
val induced : t -> (int -> bool) -> t * int array

(** [spanning_subgraph g keep] keeps vertex set intact and retains the
    edges [e] with [keep u v = true]. *)
val spanning_subgraph : t -> (int -> int -> bool) -> t

(** [union_edges g extra] adds the listed edges (duplicates ignored). *)
val union_edges : t -> (int * int) list -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit

(** [pp_dot ?highlight ppf g] writes Graphviz source; [highlight]
    (vertex predicate) fills the selected vertices. *)
val pp_dot : ?highlight:(int -> bool) -> Format.formatter -> t -> unit
