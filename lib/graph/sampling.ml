let edge_partition rng g ~eta =
  if eta < 1 then invalid_arg "Sampling.edge_partition: eta < 1";
  let n = Graph.n g in
  let buckets = Array.make eta [] in
  Graph.iter_edges
    (fun u v ->
      let i = Random.State.int rng eta in
      buckets.(i) <- (u, v) :: buckets.(i))
    g;
  Array.map (fun es -> Graph.of_edges ~n es) buckets

let suggested_eta ~lambda ~n ~eps =
  let threshold = 20.0 *. log (float_of_int (max 2 n)) /. (eps *. eps) in
  max 1 (int_of_float (float_of_int lambda /. threshold))

let vertex_sample rng g ~p =
  Array.init (Graph.n g) (fun _ -> Random.State.float rng 1.0 < p)

let sampled_connectivity rng g ~trials =
  let best = ref max_int in
  for _ = 1 to trials do
    let sample = vertex_sample rng g ~p:0.5 in
    let sub, _ = Graph.induced g (fun v -> sample.(v)) in
    let k =
      if Graph.n sub = 0 then 0 else Connectivity.vertex_connectivity sub
    in
    if k < !best then best := k
  done;
  if !best = max_int then 0 else !best
