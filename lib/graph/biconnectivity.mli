(** Articulation points, bridges and biconnected components (Hopcroft–
    Tarjan lowpoint DFS) — the companion problems of Thurimella's
    sublinear certificates paper [49], and useful predicates around
    small vertex connectivity (k = 1 iff an articulation point exists;
    λ = 1 iff a bridge exists, on connected graphs). *)

(** [articulation_points g] lists the cut vertices, sorted. *)
val articulation_points : Graph.t -> int list

(** [bridges g] lists the cut edges as canonical pairs, sorted. *)
val bridges : Graph.t -> (int * int) list

(** [biconnected_components g] partitions the edges into biconnected
    components (each an edge list); isolated vertices contribute
    nothing. *)
val biconnected_components : Graph.t -> (int * int) list list

(** [is_biconnected g] holds iff [g] is connected, has at least 3
    vertices, and has no articulation point (equivalently, vertex
    connectivity >= 2). *)
val is_biconnected : Graph.t -> bool
