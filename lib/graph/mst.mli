(** Minimum spanning trees / forests over float-weighted edges. *)

type edge = { u : int; v : int; w : float }

(** [kruskal ~n edges] is the minimum spanning forest over vertices
    [0 .. n-1], as the sublist of [edges] chosen (stable order of
    increasing weight, ties broken by input order). *)
val kruskal : n:int -> edge list -> edge list

(** [prim g ~weight] is a minimum spanning forest of [g] where edge
    [{u,v}] costs [weight u v]. Result is a parent array: [parent.(root)
    = root] for each component root (lowest-id vertex of the component),
    [parent.(v)] is [v]'s tree parent otherwise. *)
val prim : Graph.t -> weight:(int -> int -> float) -> int array

(** [tree_edges_of_parents parent] lists the [(child, parent)] pairs,
    skipping roots. *)
val tree_edges_of_parents : int array -> (int * int) list

(** Sum of weights. *)
val total_weight : edge list -> float

(** [spanning_tree_cost g ~weight] is the total cost of a minimum
    spanning tree of connected [g].
    @raise Invalid_argument if [g] is disconnected. *)
val spanning_tree_cost : Graph.t -> weight:(int -> int -> float) -> float

(** [minimum_spanning_tree g ~weight] is the MST of connected [g] as a
    canonical edge list [(u, v)] with [u < v].
    @raise Invalid_argument if [g] is disconnected. *)
val minimum_spanning_tree : Graph.t -> weight:(int -> int -> float) -> (int * int) list

(** [is_spanning_tree ~n edges] checks the edge set is a tree on all [n]
    vertices: exactly [n-1] edges, connected, acyclic. *)
val is_spanning_tree : n:int -> (int * int) list -> bool
