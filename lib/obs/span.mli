(** Trace spans: named intervals with parent/child ids, kept in a
    bounded ring buffer (newest overwrite oldest). A recorder is either
    [enabled] or [disabled]; against a disabled recorder [start] and
    [finish] touch no state and allocate nothing, so instrumented fast
    paths cost one branch when tracing is off.

    Timestamps come from the wall clock (the toolchain has no
    monotonic-clock binding without C stubs); durations are clamped at
    zero so a clock step back never yields a negative span. Both sit
    outside the determinism boundary — see DESIGN.md §14. *)

type t

type span = {
  sp_id : int;
  sp_parent : int;  (** [none] for roots *)
  sp_name : string;
  sp_start_us : int;  (** microseconds since the epoch *)
  sp_dur_us : int;
}

type token
(** An open span, returned by [start] and consumed by [finish]. *)

val disabled : t

val enabled : ?capacity:int -> unit -> t
(** A live recorder retaining the most recent [capacity] (default 1024)
    finished spans. Safe to share across domains (finish takes a lock —
    use [disabled] where that matters). *)

val is_enabled : t -> bool

val none : int
(** The parent id meaning "root" (0). Real span ids start at 1. *)

val start : t -> ?parent:int -> string -> token
val id : token -> int
(** The span id to pass as [~parent] of children; [none] if disabled. *)

val finish : t -> token -> unit

val with_span : t -> ?parent:int -> string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a span; the span is finished even on raise. *)

val spans : t -> span list
(** Retained finished spans, oldest first. [] when disabled. *)

val recorded : t -> int
(** Total spans finished since creation (including overwritten ones). *)

val dropped : t -> int
(** [max 0 (recorded - capacity)]: spans lost to ring overwrite. *)
