type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_start_us : int;
  sp_dur_us : int;
}

type state = {
  ring : span array;
  cap : int;
  lock : Mutex.t;
  mutable next_slot : int;
  mutable total : int;
  mutable next_id : int;
}

(* Disabled is a constant constructor: the off switch carries no state,
   so a module can hold a [Span.t] unconditionally and pay one branch
   per call when tracing is off. *)
type t = Disabled | Enabled of state

type token = { tk_id : int; tk_parent : int; tk_name : string; tk_start_us : int }

let none = 0
let dummy_span = { sp_id = 0; sp_parent = 0; sp_name = ""; sp_start_us = 0; sp_dur_us = 0 }
let dummy_token = { tk_id = 0; tk_parent = 0; tk_name = ""; tk_start_us = 0 }

let disabled = Disabled

let enabled ?(capacity = 1024) () =
  let capacity = max 1 capacity in
  Enabled
    {
      ring = Array.make capacity dummy_span;
      cap = capacity;
      lock = Mutex.create ();
      next_slot = 0;
      total = 0;
      next_id = 1;
    }

let is_enabled = function Disabled -> false | Enabled _ -> true

let now_us () =
  (* lint: allow nondet-clock — span timestamps are observability
     metrics only: they never enter payloads or replay digests
     (DESIGN.md §14 determinism boundary) *)
  int_of_float (Unix.gettimeofday () *. 1e6)

let start t ?(parent = none) name =
  match t with
  | Disabled -> dummy_token
  | Enabled s ->
    Mutex.lock s.lock;
    let id = s.next_id in
    s.next_id <- id + 1;
    Mutex.unlock s.lock;
    { tk_id = id; tk_parent = parent; tk_name = name; tk_start_us = now_us () }

let id tok = tok.tk_id

let finish t tok =
  match t with
  | Disabled -> ()
  | Enabled s ->
    let dur = now_us () - tok.tk_start_us in
    let sp =
      {
        sp_id = tok.tk_id;
        sp_parent = tok.tk_parent;
        sp_name = tok.tk_name;
        sp_start_us = tok.tk_start_us;
        sp_dur_us = (if dur < 0 then 0 else dur);
      }
    in
    Mutex.lock s.lock;
    s.ring.(s.next_slot) <- sp;
    s.next_slot <- (s.next_slot + 1) mod s.cap;
    s.total <- s.total + 1;
    Mutex.unlock s.lock

let with_span t ?parent name f =
  match t with
  | Disabled -> f ()
  | Enabled _ ->
    let tok = start t ?parent name in
    Fun.protect ~finally:(fun () -> finish t tok) f

let spans t =
  match t with
  | Disabled -> []
  | Enabled s ->
    Mutex.lock s.lock;
    let n = min s.total s.cap in
    (* oldest retained span sits at next_slot once the ring has wrapped *)
    let first = if s.total <= s.cap then 0 else s.next_slot in
    let out = List.init n (fun i -> s.ring.((first + i) mod s.cap)) in
    Mutex.unlock s.lock;
    out

let recorded = function Disabled -> 0 | Enabled s -> s.total
let dropped = function Disabled -> 0 | Enabled s -> max 0 (s.total - s.cap)
