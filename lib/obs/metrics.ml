(* Fixed-log-bucket scheme: buckets 0..7 are exact, then each octave
   [2^o, 2^(o+1)) splits into 8 sub-buckets. Boundaries depend only on
   these constants, so histograms recorded in different domains or
   processes merge bucket-for-bucket. *)

let subs = 8
let sub_shift = 3 (* log2 subs *)
let bucket_count = 512

let rec log2i v = if v <= 1 then 0 else 1 + log2i (v lsr 1)

let bucket_of v =
  if v <= 0 then 0
  else if v < subs then v
  else begin
    let o = log2i v in
    let idx = subs + ((o - sub_shift) * subs) + ((v lsr (o - sub_shift)) - subs) in
    min idx (bucket_count - 1)
  end

let upper_bound i =
  if i < subs then i
  else begin
    let o = sub_shift + ((i - subs) / subs) in
    let sub = (i - subs) mod subs in
    ((sub + subs + 1) lsl (o - sub_shift)) - 1
  end

type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  hb : int Atomic.t array;
  hsum : int Atomic.t;
  hcount : int Atomic.t;
}

type t = {
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, histogram) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let kind_clash t name =
  (* a name owns exactly one instrument kind, else exports would emit
     the same series twice with different types *)
  if
    Hashtbl.mem t.counters name || Hashtbl.mem t.gauges name
    || Hashtbl.mem t.hists name
  then invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered" name)

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
        kind_clash t name;
        let c = Atomic.make 0 in
        Hashtbl.add t.counters name c;
        c)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

let gauge t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some g -> g
      | None ->
        kind_clash t name;
        let g = Atomic.make 0 in
        Hashtbl.add t.gauges name g;
        g)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
        kind_clash t name;
        let h =
          {
            hb = Array.init bucket_count (fun _ -> Atomic.make 0);
            hsum = Atomic.make 0;
            hcount = Atomic.make 0;
          }
        in
        Hashtbl.add t.hists name h;
        h)

let observe h v =
  let v = if v < 0 then 0 else v in
  Atomic.incr h.hb.(bucket_of v);
  ignore (Atomic.fetch_and_add h.hsum v);
  Atomic.incr h.hcount

let labeled name pairs =
  let pairs = List.sort (fun (a, _) (b, _) -> String.compare a b) pairs in
  let b = Buffer.create (String.length name + 16) in
  Buffer.add_string b name;
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b k;
      Buffer.add_string b "=\"";
      String.iter
        (fun c ->
          match c with
          | '"' | '\\' ->
            Buffer.add_char b '\\';
            Buffer.add_char b c
          | '\n' -> Buffer.add_string b "\\n"
          | c -> Buffer.add_char b c)
        v;
      Buffer.add_char b '"')
    pairs;
  Buffer.add_char b '}';
  Buffer.contents b

(* ---- snapshots ---- *)

type hist = { h_count : int; h_sum : int; h_buckets : (int * int) list }

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_hists : (string * hist) list;
}

let sorted_bindings tbl read =
  Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_read h =
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    let c = Atomic.get h.hb.(i) in
    if c > 0 then buckets := (i, c) :: !buckets
  done;
  { h_count = Atomic.get h.hcount; h_sum = Atomic.get h.hsum; h_buckets = !buckets }

let snapshot t =
  with_lock t (fun () ->
      {
        s_counters = sorted_bindings t.counters Atomic.get;
        s_gauges = sorted_bindings t.gauges Atomic.get;
        s_hists = sorted_bindings t.hists hist_read;
      })

let empty = { s_counters = []; s_gauges = []; s_hists = [] }

(* union-merge of name-sorted assoc lists; [f] combines values bound to
   the same key, so the whole merge is associative/commutative exactly
   when [f] is *)
let rec merge_assoc cmp f a b =
  match (a, b) with
  | [], x | x, [] -> x
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = cmp ka kb in
    if c < 0 then (ka, va) :: merge_assoc cmp f ta b
    else if c > 0 then (kb, vb) :: merge_assoc cmp f a tb
    else (ka, f va vb) :: merge_assoc cmp f ta tb

let merge_hist a b =
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum + b.h_sum;
    h_buckets = merge_assoc Int.compare ( + ) a.h_buckets b.h_buckets;
  }

let merge a b =
  {
    s_counters = merge_assoc String.compare ( + ) a.s_counters b.s_counters;
    s_gauges = merge_assoc String.compare max a.s_gauges b.s_gauges;
    s_hists = merge_assoc String.compare merge_hist a.s_hists b.s_hists;
  }

let quantile h q =
  if h.h_count = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let rank = if rank < 1 then 1 else rank in
    let rec walk acc = function
      | [] -> upper_bound (bucket_count - 1)
      | (i, c) :: rest ->
        if acc + c >= rank then upper_bound i else walk (acc + c) rest
    in
    walk 0 h.h_buckets
  end

let find_counter s name = List.assoc_opt name s.s_counters
let find_gauge s name = List.assoc_opt name s.s_gauges
let find_hist s name = List.assoc_opt name s.s_hists
