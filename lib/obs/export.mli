(** Snapshot renderers. This module produces strings only — writing
    them somewhere durable is the caller's job (the daemon composes
    [json] with [Exec.Artifact.write] for the atomic-rename dump), which
    keeps [lib/obs] free of dependencies and dependency cycles.

    Both renderings are deterministic functions of the snapshot:
    instruments are name-sorted and histogram buckets index-sorted
    already, and no clock or environment is consulted here. *)

val prometheus : Metrics.snapshot -> string
(** Prometheus text exposition (version 0.0.4): one [# TYPE] line per
    metric family, counters/gauges as plain samples, histograms as
    cumulative [_bucket{le="..."}] series plus [_sum] and [_count].
    Instrument names built with [Metrics.labeled] have their label
    block spliced so [le] lands inside it. *)

val json : ?spans:Span.span list -> Metrics.snapshot -> string
(** Compact JSON: [{"counters":{...},"gauges":{...},
    "histograms":{name:{"count":n,"sum":n,"buckets":[[index,count]...]}},
    "spans":[...]}]. Buckets are sparse [index, count] pairs under the
    scheme of {!Metrics.bucket_of}; [spans] is omitted when not given. *)
