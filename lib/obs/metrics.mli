(** In-process metrics: atomic counters, gauges, and fixed-log-bucket
    histograms with a deterministic snapshot and an associative merge.

    All hot-path updates are single [Atomic] operations, so instruments
    can be shared freely across [Exec.Pool] domains; registration (the
    only mutex-protected path) must happen before the instrument is
    handed to other domains. Snapshots of concurrently-updated
    instruments are per-cell atomic, not globally consistent — a
    histogram's [h_count] can momentarily disagree with the sum of its
    buckets by in-flight observations. Merging snapshots from several
    registries (one per domain, say) is exact: counters and histogram
    buckets add, gauges take the max. *)

type t
(** A registry: a named set of instruments. *)

val create : unit -> t

(** {1 Instruments}

    Looking up the same name twice returns the same instrument.
    Registering a name as two different instrument kinds raises
    [Invalid_argument]. Callers should look an instrument up once and
    cache it; lookup takes the registry mutex, updates do not. *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one non-negative integer observation (negative values are
    clamped to 0). Units are the caller's business; this module only
    promises that bucket boundaries are fixed powers-of-two subdivided
    8 ways, identical in every process, so merges line up. *)

val labeled : string -> (string * string) list -> string
(** [labeled name [(k, v); ...]] renders [name{k="v",...}] — the
    convention for per-label instruments ([serve_latency_us{op="x"}]).
    Labels are sorted by key so the same set always yields the same
    instrument name. *)

(** {1 Bucket scheme}

    Exposed for tests and exporters. Bucket [i] covers
    [[lower_bound i, upper_bound i]]; values 0..7 get exact buckets,
    beyond that each octave splits into 8 sub-buckets (worst-case
    relative error 12.5%). Everything at or above [bucket_of max_int]
    shares the top bucket. *)

val bucket_count : int
val bucket_of : int -> int
val upper_bound : int -> int

(** {1 Snapshots} *)

type hist = {
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
      (** sparse [(bucket index, count)], sorted by index, counts > 0 *)
}

type snapshot = {
  s_counters : (string * int) list;  (** sorted by name *)
  s_gauges : (string * int) list;  (** sorted by name *)
  s_hists : (string * hist) list;  (** sorted by name *)
}

val snapshot : t -> snapshot
val empty : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Associative and commutative with [empty] as identity: counters and
    histograms add pointwise, gauges take the max. *)

val quantile : hist -> float -> int
(** [quantile h q] estimates the [q]-quantile (0 <= q <= 1) as the
    upper bound of the bucket holding that rank; 0 for an empty
    histogram. Over-estimates by at most one sub-bucket width. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_hist : snapshot -> string -> hist option
