(* An instrument name is either bare ("exec_jobs_total") or labeled
   ("serve_latency_us{op=\"decompose\"}", from Metrics.labeled). The
   family is the part before '{'; histogram suffixes and the le label
   must attach to the family, inside any existing label block. *)
let split_name name =
  match String.index_opt name '{' with
  | None -> (name, None)
  | Some i ->
    ( String.sub name 0 i,
      Some (String.sub name (i + 1) (String.length name - i - 2)) )

let sample buf ~family ~suffix ~labels ~extra value =
  Buffer.add_string buf family;
  Buffer.add_string buf suffix;
  (match (labels, extra) with
  | None, None -> ()
  | _ ->
    Buffer.add_char buf '{';
    (match labels with
    | Some l -> Buffer.add_string buf l
    | None -> ());
    (match extra with
    | Some e ->
      if labels <> None then Buffer.add_char buf ',';
      Buffer.add_string buf e
    | None -> ());
    Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int value);
  Buffer.add_char buf '\n'

let type_line buf seen family kind =
  if not (List.mem family !seen) then begin
    seen := family :: !seen;
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind)
  end

let prometheus (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let seen = ref [] in
  List.iter
    (fun (name, v) ->
      let family, labels = split_name name in
      type_line buf seen family "counter";
      sample buf ~family ~suffix:"" ~labels ~extra:None v)
    s.Metrics.s_counters;
  List.iter
    (fun (name, v) ->
      let family, labels = split_name name in
      type_line buf seen family "gauge";
      sample buf ~family ~suffix:"" ~labels ~extra:None v)
    s.Metrics.s_gauges;
  List.iter
    (fun (name, h) ->
      let family, labels = split_name name in
      type_line buf seen family "histogram";
      let cum = ref 0 in
      List.iter
        (fun (i, c) ->
          cum := !cum + c;
          let le = Printf.sprintf "le=\"%d\"" (Metrics.upper_bound i) in
          sample buf ~family ~suffix:"_bucket" ~labels ~extra:(Some le) !cum)
        h.Metrics.h_buckets;
      sample buf ~family ~suffix:"_bucket" ~labels
        ~extra:(Some "le=\"+Inf\"") h.Metrics.h_count;
      sample buf ~family ~suffix:"_sum" ~labels ~extra:None h.Metrics.h_sum;
      sample buf ~family ~suffix:"_count" ~labels ~extra:None h.Metrics.h_count)
    s.Metrics.s_hists;
  Buffer.contents buf

(* ---- JSON ---- *)

let add_jstring buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_obj buf items render =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_jstring buf k;
      Buffer.add_char buf ':';
      render buf v)
    items;
  Buffer.add_char buf '}'

let add_hist buf (h : Metrics.hist) =
  Buffer.add_string buf "{\"count\":";
  Buffer.add_string buf (string_of_int h.Metrics.h_count);
  Buffer.add_string buf ",\"sum\":";
  Buffer.add_string buf (string_of_int h.Metrics.h_sum);
  Buffer.add_string buf ",\"buckets\":[";
  List.iteri
    (fun i (idx, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%d]" idx c))
    h.Metrics.h_buckets;
  Buffer.add_string buf "]}"

let add_span buf (sp : Span.span) =
  Buffer.add_string buf
    (Printf.sprintf "{\"id\":%d,\"parent\":%d,\"name\":" sp.Span.sp_id
       sp.Span.sp_parent);
  add_jstring buf sp.Span.sp_name;
  Buffer.add_string buf
    (Printf.sprintf ",\"start_us\":%d,\"dur_us\":%d}" sp.Span.sp_start_us
       sp.Span.sp_dur_us)

let json ?spans (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let add_int b v = Buffer.add_string b (string_of_int v) in
  Buffer.add_string buf "{\"counters\":";
  add_obj buf s.Metrics.s_counters add_int;
  Buffer.add_string buf ",\"gauges\":";
  add_obj buf s.Metrics.s_gauges add_int;
  Buffer.add_string buf ",\"histograms\":";
  add_obj buf s.Metrics.s_hists add_hist;
  (match spans with
  | None -> ()
  | Some sps ->
    Buffer.add_string buf ",\"spans\":[";
    List.iteri
      (fun i sp ->
        if i > 0 then Buffer.add_char buf ',';
        add_span buf sp)
      sps;
    Buffer.add_char buf ']');
  Buffer.add_char buf '}';
  Buffer.contents buf
