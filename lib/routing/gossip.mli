(** Gossiping / all-to-all broadcast (Appendix A): every node starts with
    one message (or [eta] messages); everyone must receive everything.
    Corollary A.1 bounds the time by O~(η + (N + n)/k) using the
    dominating-tree decomposition — vs the trivial O(n) single-tree
    solution that ignores connectivity. *)

type report = {
  result : Broadcast.result;
  bound : float;  (** the Corollary A.1 reference value η + (N + n)/k *)
}

(** [all_to_all ?seed ?per_node net packing ~k] gossips [per_node]
    (default 1) messages from every node via the packing; [k] is the
    connectivity used for the reference bound. *)
val all_to_all :
  ?seed:int -> ?per_node:int -> Congest.Net.t -> Domtree.Packing.t -> k:int ->
  report

(** [all_to_all_naive net ~per_node] is the single-BFS-tree baseline. *)
val all_to_all_naive : ?per_node:int -> Congest.Net.t -> Broadcast.result

(** {1 Gossip under faults}

    [all_to_all_ft net faults packing] installs the adversary on [net]
    and gossips via the packing with graceful degradation: failed CDS
    classes are dropped and their load rerouted across surviving
    classes (see {!Broadcast.via_dominating_trees_ft}). The packing
    should sustain throughput as failures mount, where the single-tree
    baseline [all_to_all_naive_ft] collapses as soon as its one tree is
    hit. *)
val all_to_all_ft :
  ?seed:int -> ?per_node:int -> ?round_cap:int ->
  Congest.Net.t -> Congest.Faults.t -> Domtree.Packing.t ->
  Broadcast.ft_result

val all_to_all_naive_ft :
  ?per_node:int -> ?round_cap:int ->
  Congest.Net.t -> Congest.Faults.t ->
  Broadcast.ft_result

(** [scattered ?seed rng_messages net packing ~k ~total ~max_per_node] is
    Corollary A.1 in full generality: [total] messages placed at random
    nodes with at most [max_per_node] at any single node; the reference
    bound is eta + (N + n)/k with eta = the realized maximum per-node
    count. *)
val scattered :
  ?seed:int -> Congest.Net.t -> Domtree.Packing.t -> k:int -> total:int ->
  max_per_node:int -> report
