(** Gossiping / all-to-all broadcast (Appendix A): every node starts with
    one message (or [eta] messages); everyone must receive everything.
    Corollary A.1 bounds the time by O~(η + (N + n)/k) using the
    dominating-tree decomposition — vs the trivial O(n) single-tree
    solution that ignores connectivity. *)

type report = {
  result : Broadcast.result;
  bound : float;  (** the Corollary A.1 reference value η + (N + n)/k *)
}

(** [all_to_all ?seed ?per_node net packing ~k] gossips [per_node]
    (default 1) messages from every node via the packing; [k] is the
    connectivity used for the reference bound. *)
val all_to_all :
  ?seed:int -> ?per_node:int -> Congest.Net.t -> Domtree.Packing.t -> k:int ->
  report

(** [all_to_all_naive net ~per_node] is the single-BFS-tree baseline. *)
val all_to_all_naive : ?per_node:int -> Congest.Net.t -> Broadcast.result

(** [scattered ?seed rng_messages net packing ~k ~total ~max_per_node] is
    Corollary A.1 in full generality: [total] messages placed at random
    nodes with at most [max_per_node] at any single node; the reference
    bound is eta + (N + n)/k with eta = the realized maximum per-node
    count. *)
val scattered :
  ?seed:int -> Congest.Net.t -> Domtree.Packing.t -> k:int -> total:int ->
  max_per_node:int -> report
