(** Oblivious-routing congestion competitiveness (Corollary 1.6).

    Routing each message along an independently random tree is oblivious:
    the route distribution never depends on the load. The information-
    theoretic optimum for N broadcasts is N/k relays at some vertex
    (every size-k vertex cut passes all messages) resp. N/λ crossings at
    some edge, so the competitive ratios below are upper bounds on the
    true competitiveness (the offline optimum can only be worse than the
    cut bound). Corollary 1.6: O(log n) for vertices, O(1) for edges. *)

type report = {
  measured_congestion : int;
  optimum_lower_bound : float;  (** N / connectivity *)
  competitiveness : float;  (** measured / optimum *)
}

(** [vertex_competitiveness net packing ~k ~sources] runs the
    dominating-tree broadcast and reports the vertex-congestion ratio. *)
val vertex_competitiveness :
  ?seed:int -> Congest.Net.t -> Domtree.Packing.t -> k:int ->
  sources:(int * int) list -> report

(** [edge_competitiveness net packing ~lambda ~sources] runs the
    spanning-tree broadcast and reports the edge-congestion ratio. *)
val edge_competitiveness :
  ?seed:int -> Congest.Net.t -> Spantree.Spacking.t -> lambda:int ->
  sources:(int * int) list -> report
