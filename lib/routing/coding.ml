module Net = Congest.Net

type result = {
  rounds : int;
  messages : int;
  throughput : float;
  transmissions : int;
  decoded_all : bool;
}

(* GF(2) vectors as limb arrays; 16-bit limbs so each fits comfortably
   within the runtime's O(log n) word-width bound. *)
let limb_bits = 16

let limbs_for bits = (bits + limb_bits - 1) / limb_bits

let coefficient_words ~n ~messages =
  ignore n;
  limbs_for messages

(* Row space with incremental Gaussian elimination: rows kept in reduced
   form, indexed by pivot position. *)
type span = {
  mutable rows : int array list;
  mutable rank : int;
  nbits : int;
}

let make_span nbits = { rows = []; rank = 0; nbits }

let get_bit v i = (v.(i / limb_bits) lsr (i mod limb_bits)) land 1

let xor_into dst src = Array.iteri (fun i x -> dst.(i) <- dst.(i) lxor x) src

let top_bit v nbits =
  let rec go i = if i < 0 then -1 else if get_bit v i = 1 then i else go (i - 1) in
  go (nbits - 1)

(* Returns true if the vector increased the rank. *)
let insert span v =
  let v = Array.copy v in
  let continue = ref true in
  let added = ref false in
  while !continue do
    let t = top_bit v span.nbits in
    if t < 0 then continue := false
    else begin
      match
        List.find_opt (fun row -> top_bit row span.nbits = t) span.rows
      with
      | Some row -> xor_into v row
      | None ->
        span.rows <- v :: span.rows;
        span.rank <- span.rank + 1;
        added := true;
        continue := false
    end
  done;
  !added

let random_of_span rng span =
  match span.rows with
  | [] -> None
  | rows ->
    let nlimbs = limbs_for span.nbits in
    let acc = Array.make nlimbs 0 in
    let nonzero = ref false in
    List.iter
      (fun row ->
        if Random.State.bool rng then begin
          xor_into acc row;
          nonzero := true
        end)
      rows;
    if (not !nonzero) || Array.for_all (fun x -> x = 0) acc then
      (* fall back to a basis row so every slot carries information *)
      Some (Array.copy (List.hd rows))
    else Some acc

let rlnc_broadcast ?(seed = 42) ?(payload_words = 1) ?(coeff_words_per_round = 6)
    ?max_rounds net ~sources =
  let n = Net.n net in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 sources in
  if total = 0 then invalid_arg "Coding.rlnc_broadcast: no messages";
  let rng = Random.State.make [| seed; n; total |] in
  let nlimbs = limbs_for total in
  let spans = Array.init n (fun _ -> make_span total) in
  (* sources hold unit vectors *)
  let next = ref 0 in
  List.iter
    (fun (origin, count) ->
      for _ = 1 to count do
        let v = Array.make nlimbs 0 in
        v.(!next / limb_bits) <- 1 lsl (!next mod limb_bits);
        incr next;
        ignore (insert spans.(origin) v)
      done)
    sources;
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> 200 * (total + n) * (limbs_for total + payload_words)
  in
  (* one packet = nlimbs coefficient words + payload_words, chunked into
     broadcast rounds of at most the per-round coefficient budget (the
     model's O(log n) bits, scaled by the caller's constant) *)
  let budget = max 1 (min 6 coeff_words_per_round) in
  let words_per_packet = nlimbs + payload_words in
  let chunks = (words_per_packet + budget - 1) / budget in
  let start = Net.checkpoint net in
  let transmissions = ref 0 in
  let all_decoded () = Array.for_all (fun s -> s.rank = total) spans in
  let rounds_used () = Net.rounds_since net start in
  while (not (all_decoded ())) && rounds_used () < max_rounds do
    (* each node draws one random packet of its span for this slot *)
    let packet = Array.map (fun s -> random_of_span rng s) spans in
    Array.iter (fun p -> if p <> None then incr transmissions) packet;
    (* ship it chunk by chunk; receivers apply on the last chunk *)
    for chunk = 0 to chunks - 1 do
      let inboxes =
        Net.broadcast_round net (fun v ->
            match packet.(v) with
            | None -> None
            | Some vec ->
              let from = chunk * budget in
              let upto = min nlimbs (from + budget) in
              let coeff_part =
                if from >= nlimbs then []
                (* lint: allow msg-budget — [upto - from <= budget <= 6] by
                   construction: this is the fixed-width chunking that keeps
                   each packet under Model.words_budget *)
                else Array.to_list (Array.sub vec from (upto - from))
              in
              (* pad the final chunk with payload filler words *)
              let filler =
                if chunk = chunks - 1 then
                  List.init
                    (min payload_words (budget - List.length coeff_part))
                    (fun _ -> 0)
                else []
              in
              (* lint: allow msg-budget — 1 + |coeff_part| + |filler| <=
                 1 + budget <= 7 words, inside Model.words_budget: the
                 chunk loop exists precisely to bound this encoding *)
              Some (Array.of_list ((chunk :: coeff_part) @ filler)))
      in
      if chunk = chunks - 1 then
        for v = 0 to n - 1 do
          List.iter
            (fun (sender, _) ->
              match packet.(sender) with
              | Some vec -> ignore (insert spans.(v) vec)
              | None -> ())
            inboxes.(v)
        done
    done
  done;
  let rounds = max 1 (rounds_used ()) in
  {
    rounds;
    messages = total;
    throughput = float_of_int total /. float_of_int rounds;
    transmissions = !transmissions;
    decoded_all = all_decoded ();
  }
