(** Random linear network coding (RLNC) broadcast over GF(2) — the §1
    comparison point.

    The paper's motivation: network coding achieves cut-capacity flow
    {e if coefficient overhead is ignored}, but CONGEST messages carry
    only O(log n) bits, and a coded packet must ship its whole
    N-dimensional coefficient vector; "because of the coefficients,
    network coding can only support a flow of O(log n) messages per
    round". The tree decompositions sidestep this entirely.

    This module simulates honest RLNC gossip: every node maintains the
    GF(2) row space of the coded packets it has received; per
    transmission it broadcasts a uniformly random vector of its span,
    chunked into as many O(log n)-bit rounds as the N coefficient bits
    (plus payload) require. Decoding completes at rank N. Experiment
    E15 plots its throughput collapsing as N grows, against the
    N-independent tree-routing throughput. *)

type result = {
  rounds : int;
  messages : int;  (** N *)
  throughput : float;  (** N / rounds *)
  transmissions : int;  (** coded packets sent in total *)
  decoded_all : bool;  (** every node reached full rank *)
}

(** [rlnc_broadcast ?seed ?payload_words net ~sources ~max_rounds]
    disseminates the messages listed in [sources] ((origin, count)
    pairs) to every node. [payload_words] (default 1) models the data
    part of each packet. Gives up after [max_rounds] (default
    generous), reporting [decoded_all = false]. *)
val rlnc_broadcast :
  ?seed:int -> ?payload_words:int -> ?coeff_words_per_round:int ->
  ?max_rounds:int -> Congest.Net.t -> sources:(int * int) list -> result

(** [coefficient_words ~n ~messages] — how many O(log n)-bit words the
    coefficient vector of one packet occupies (the overhead driving the
    paper's argument). *)
val coefficient_words : n:int -> messages:int -> int
