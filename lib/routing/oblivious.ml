type report = {
  measured_congestion : int;
  optimum_lower_bound : float;
  competitiveness : float;
}

let total_messages sources =
  List.fold_left (fun acc (_, c) -> acc + c) 0 sources

let make ~measured ~total ~connectivity =
  let opt = float_of_int total /. float_of_int (max 1 connectivity) in
  {
    measured_congestion = measured;
    optimum_lower_bound = opt;
    competitiveness = float_of_int measured /. Float.max 1. opt;
  }

let vertex_competitiveness ?seed net packing ~k ~sources =
  let r = Broadcast.via_dominating_trees ?seed net packing ~sources in
  make ~measured:r.Broadcast.max_vertex_congestion
    ~total:(total_messages sources) ~connectivity:k

let edge_competitiveness ?seed net packing ~lambda ~sources =
  let r = Broadcast.via_spanning_trees ?seed net packing ~sources in
  make ~measured:r.Broadcast.max_edge_congestion
    ~total:(total_messages sources) ~connectivity:lambda
