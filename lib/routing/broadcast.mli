(** Tree-parallel broadcast (Corollaries 1.4, 1.5; Appendix A): route
    each message along a random tree of a connectivity decomposition,
    store-and-forward, and measure the achieved throughput and the
    congestion. All simulations run over the CONGEST runtime, so rounds
    and loads are the model's.

    Delivery semantics: a node has {e received} a message once it has
    heard it from any neighbor (or originated it); members of a tree
    additionally relay it along the tree. Because every tree of a
    dominating-tree packing dominates the graph, flooding inside each
    tree delivers to everyone. *)

type result = {
  rounds : int;  (** rounds until every node received every message *)
  messages : int;  (** number of distinct broadcast messages N *)
  throughput : float;  (** N / rounds *)
  max_vertex_congestion : int;
      (** max number of transmissions performed by a single node *)
  max_edge_congestion : int;
      (** max number of messages that crossed a single edge *)
}

(** [via_dominating_trees ?seed net packing ~sources] broadcasts, in the
    V-CONGEST model, the given messages ([sources] lists (origin, how
    many)); each message is assigned to a uniformly random tree.
    Members time-share across their trees: [`Round_robin] (default)
    serves pending trees cyclically; [`Weighted] serves tree τ with
    probability proportional to its weight x_τ — the literal
    fractional-packing semantics of §1.1.
    @raise Invalid_argument if the packing is empty. *)
val via_dominating_trees :
  ?seed:int ->
  ?schedule:[ `Round_robin | `Weighted ] ->
  Congest.Net.t -> Domtree.Packing.t -> sources:(int * int) list ->
  result

(** [via_spanning_trees ?seed net packing ~sources] is the E-CONGEST
    counterpart over a fractional spanning-tree packing: per round, one
    message can cross each edge direction; each directed tree edge
    forwards its trees' pending messages round-robin. *)
val via_spanning_trees :
  ?seed:int -> Congest.Net.t -> Spantree.Spacking.t -> sources:(int * int) list ->
  result

(** [naive_single_tree net ~sources] is the baseline everyone had before
    this paper: pipeline everything over one global BFS tree (throughput
    ≤ 1 message/round regardless of connectivity). *)
val naive_single_tree : Congest.Net.t -> sources:(int * int) list -> result

(** {1 Fault-tolerant variants}

    Same schedulers, run against a {!Congest.Faults} adversary (which
    the caller installs on the net — see {!Routing.Gossip} for wrappers
    that do). Recovery semantics:

    - a tree with a crashed member or a killed tree edge is {e dead};
      its pending relays are rerouted onto surviving trees (the
      redundancy story of Theorem 1.1 — the packing degrades one class
      at a time, while the single-tree baseline has nothing to reroute
      onto);
    - every [repair_every] rounds (default 8) each surviving node
      re-gossips one random heard message, a retransmission mechanism
      against Bernoulli drops (granted to the baseline too, so the
      comparison isolates structural redundancy);
    - delivery is owed to surviving nodes only, and only for messages
      at least one survivor has heard. The run stops when every such
      message is everywhere ([ft_converged = true]) or at [round_cap]
      (default [20 * (messages + n) + 200]) when faults made full
      delivery impossible. *)

type ft_result = {
  ft_rounds : int;  (** rounds consumed (capped runs: the cap) *)
  ft_messages : int;  (** messages injected *)
  ft_delivered : int;  (** messages heard by {e every} surviving node *)
  ft_throughput : float;  (** delivered / rounds — sustained throughput *)
  ft_coverage : float;
      (** fraction of (survivor, message) pairs heard — 1.0 iff full
          delivery *)
  ft_survivors : int;
  ft_dead_trees : int;  (** trees abandoned to crashes/edge kills *)
  ft_converged : bool;
}

val via_dominating_trees_ft :
  ?seed:int ->
  ?repair_every:int ->
  ?round_cap:int ->
  Congest.Net.t -> Congest.Faults.t -> Domtree.Packing.t ->
  sources:(int * int) list ->
  ft_result

(** Single-BFS-tree baseline under the same adversary: retransmits
    against drops, but a crashed internal tree node or killed tree edge
    permanently disconnects its subtree. The tree is built on a
    fault-free scratch net (it predates the faults); those rounds are
    charged to the real clock. *)
val naive_single_tree_ft :
  ?repair_every:int ->
  ?round_cap:int ->
  Congest.Net.t -> Congest.Faults.t ->
  sources:(int * int) list ->
  ft_result
