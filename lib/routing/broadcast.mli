(** Tree-parallel broadcast (Corollaries 1.4, 1.5; Appendix A): route
    each message along a random tree of a connectivity decomposition,
    store-and-forward, and measure the achieved throughput and the
    congestion. All simulations run over the CONGEST runtime, so rounds
    and loads are the model's.

    Delivery semantics: a node has {e received} a message once it has
    heard it from any neighbor (or originated it); members of a tree
    additionally relay it along the tree. Because every tree of a
    dominating-tree packing dominates the graph, flooding inside each
    tree delivers to everyone. *)

type result = {
  rounds : int;  (** rounds until every node received every message *)
  messages : int;  (** number of distinct broadcast messages N *)
  throughput : float;  (** N / rounds *)
  max_vertex_congestion : int;
      (** max number of transmissions performed by a single node *)
  max_edge_congestion : int;
      (** max number of messages that crossed a single edge *)
}

(** [via_dominating_trees ?seed net packing ~sources] broadcasts, in the
    V-CONGEST model, the given messages ([sources] lists (origin, how
    many)); each message is assigned to a uniformly random tree.
    Members time-share across their trees: [`Round_robin] (default)
    serves pending trees cyclically; [`Weighted] serves tree τ with
    probability proportional to its weight x_τ — the literal
    fractional-packing semantics of §1.1.
    @raise Invalid_argument if the packing is empty. *)
val via_dominating_trees :
  ?seed:int ->
  ?schedule:[ `Round_robin | `Weighted ] ->
  Congest.Net.t -> Domtree.Packing.t -> sources:(int * int) list ->
  result

(** [via_spanning_trees ?seed net packing ~sources] is the E-CONGEST
    counterpart over a fractional spanning-tree packing: per round, one
    message can cross each edge direction; each directed tree edge
    forwards its trees' pending messages round-robin. *)
val via_spanning_trees :
  ?seed:int -> Congest.Net.t -> Spantree.Spacking.t -> sources:(int * int) list ->
  result

(** [naive_single_tree net ~sources] is the baseline everyone had before
    this paper: pipeline everything over one global BFS tree (throughput
    ≤ 1 message/round regardless of connectivity). *)
val naive_single_tree : Congest.Net.t -> sources:(int * int) list -> result
