module Net = Congest.Net

type report = {
  result : Broadcast.result;
  bound : float;
}

let sources_for net per_node =
  List.init (Net.n net) (fun v -> (v, per_node))

let all_to_all ?seed ?(per_node = 1) net packing ~k =
  let n = Net.n net in
  let sources = sources_for net per_node in
  let result = Broadcast.via_dominating_trees ?seed net packing ~sources in
  let total = float_of_int (n * per_node) in
  let bound =
    float_of_int per_node +. ((total +. float_of_int n) /. float_of_int (max 1 k))
  in
  { result; bound }

let all_to_all_naive ?(per_node = 1) net =
  Broadcast.naive_single_tree net ~sources:(sources_for net per_node)

let all_to_all_ft ?seed ?(per_node = 1) ?round_cap net faults packing =
  Congest.Faults.install net faults;
  Broadcast.via_dominating_trees_ft ?seed ?round_cap net faults packing
    ~sources:(sources_for net per_node)

let all_to_all_naive_ft ?(per_node = 1) ?round_cap net faults =
  Congest.Faults.install net faults;
  Broadcast.naive_single_tree_ft ?round_cap net faults
    ~sources:(sources_for net per_node)

let scattered ?(seed = 42) net packing ~k ~total ~max_per_node =
  let n = Net.n net in
  let rng = Random.State.make [| seed; n; total |] in
  let counts = Array.make n 0 in
  let placed = ref 0 in
  let guard = ref 0 in
  while !placed < total && !guard < 1000 * (total + 1) do
    incr guard;
    let v = Random.State.int rng n in
    if counts.(v) < max_per_node then begin
      counts.(v) <- counts.(v) + 1;
      incr placed
    end
  done;
  let sources = ref [] in
  let eta = ref 0 in
  Array.iteri
    (fun v c ->
      if c > 0 then sources := (v, c) :: !sources;
      if c > !eta then eta := c)
    counts;
  let result = Broadcast.via_dominating_trees ~seed net packing ~sources:!sources in
  let bound =
    float_of_int !eta
    +. (float_of_int (total + n) /. float_of_int (max 1 k))
  in
  { result; bound }
