module Graph = Graphs.Graph
module Net = Congest.Net

type result = {
  rounds : int;
  messages : int;
  throughput : float;
  max_vertex_congestion : int;
  max_edge_congestion : int;
}

let expand_sources sources =
  (* (origin, count) list -> per-message origins, message ids 0.. *)
  let acc = ref [] in
  let id = ref 0 in
  List.iter
    (fun (origin, count) ->
      for _ = 1 to count do
        acc := (!id, origin) :: !acc;
        incr id
      done)
    sources;
  (List.rev !acc, !id)

(* Edge-congestion accounting, shared by every scheme: [record_crossing]
   charges one unit to edge [ei]; [record_broadcast_crossings] charges
   every edge incident to [v] — a V-CONGEST local broadcast physically
   crosses all of them — walking the CSR slot table so no per-edge
   [edge_index] search is paid. *)
let record_crossing edge_crossings ei =
  edge_crossings.(ei) <- edge_crossings.(ei) + 1

let record_broadcast_crossings g edge_crossings v =
  Graph.iter_incident g v (fun _u ei -> record_crossing edge_crossings ei)

let finish net start ~messages ~relays ~edge_crossings =
  let rounds = max 1 (Net.rounds_since net start) in
  {
    rounds;
    messages;
    throughput = float_of_int messages /. float_of_int rounds;
    max_vertex_congestion = Array.fold_left max 0 relays;
    max_edge_congestion = Array.fold_left max 0 edge_crossings;
  }

(* ------------------------------------------------------------------ *)
(* V-CONGEST: dominating-tree packing *)

let via_dominating_trees ?(seed = 42) ?(schedule = `Round_robin) net
    (packing : Domtree.Packing.t) ~sources =
  let trees = Array.of_list packing.Domtree.Packing.trees in
  let tcount = Array.length trees in
  if tcount = 0 then
    invalid_arg "Broadcast.via_dominating_trees: empty packing";
  let g = Net.graph net in
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; tcount |] in
  let weights = Array.of_list packing.Domtree.Packing.weights in
  let wsum = Array.fold_left ( +. ) 0. weights in
  (* time-sharing: under `Weighted, a node serves tree i with probability
     proportional to x_i — the literal fractional-packing semantics of
     §1.1; `Round_robin is the uniform-weight special case *)
  let pick_weighted () =
    let x = Random.State.float rng wsum in
    let acc = ref 0. in
    let chosen = ref (tcount - 1) in
    (try
       Array.iteri
         (fun i w ->
           acc := !acc +. w;
           if !acc >= x then begin
             chosen := i;
             raise Exit
           end)
         weights
     with Exit -> ());
    !chosen
  in
  let msgs, total = expand_sources sources in
  (* assignment: message -> random tree *)
  let tree_of_msg = Array.init total (fun _ -> Random.State.int rng tcount) in
  (* membership and tree adjacency *)
  let member = Array.make_matrix tcount n false in
  let tree_edge = Hashtbl.create 256 in
  Array.iteri
    (fun i tr ->
      Array.iter (fun v -> member.(i).(v) <- true) tr.Domtree.Packing.vertices;
      List.iter
        (fun (u, v) -> Hashtbl.replace tree_edge (i, min u v, max u v) ())
        tr.Domtree.Packing.edges)
    trees;
  let is_tree_edge i u v = Hashtbl.mem tree_edge (i, min u v, max u v) in
  (* per-node state *)
  let heard = Array.init n (fun _ -> Hashtbl.create 16) in
  let heard_count = Array.make n 0 in
  let hear v msg =
    if not (Hashtbl.mem heard.(v) msg) then begin
      Hashtbl.replace heard.(v) msg ();
      heard_count.(v) <- heard_count.(v) + 1
    end
  in
  (* relay queues: per node, per tree, fifo of message ids to rebroadcast *)
  let queues = Array.init n (fun _ -> Array.init tcount (fun _ -> Queue.create ())) in
  let relayed = Array.init n (fun _ -> Hashtbl.create 16) in
  let adopt v i msg =
    (* member v will relay msg of tree i exactly once *)
    if member.(i).(v) && not (Hashtbl.mem relayed.(v) (i, msg)) then begin
      Hashtbl.replace relayed.(v) (i, msg) ();
      Queue.add msg queues.(v).(i)
    end
  in
  (* injection queues at origins *)
  let inject = Array.init n (fun _ -> Queue.create ()) in
  List.iter
    (fun (id, origin) ->
      hear origin id;
      let i = tree_of_msg.(id) in
      if member.(i).(origin) then adopt origin i id
      else Queue.add id inject.(origin))
    msgs;
  let rr = Array.make n 0 in
  let relays = Array.make n 0 in
  let edge_crossings = Array.make (Graph.m g) 0 in
  let start = Net.checkpoint net in
  let all_heard () = Array.for_all (fun c -> c = total) heard_count in
  let guard = ref 0 in
  while (not (all_heard ())) && !guard < 100 * (total + n) do
    incr guard;
    let choice =
      Array.init n (fun v ->
          if not (Queue.is_empty inject.(v)) then begin
            let id = Queue.pop inject.(v) in
            Some (tree_of_msg.(id), id)
          end
          else begin
            match schedule with
            | `Round_robin ->
              (* round-robin over trees with pending relays *)
              let found = ref None in
              let tried = ref 0 in
              while !found = None && !tried < tcount do
                let i = (rr.(v) + !tried) mod tcount in
                if not (Queue.is_empty queues.(v).(i)) then begin
                  found := Some (i, Queue.pop queues.(v).(i));
                  rr.(v) <- (i + 1) mod tcount
                end;
                incr tried
              done;
              !found
            | `Weighted ->
              (* sample a tree by weight; fall back to the next pending
                 one so no round is wasted while work remains *)
              let start = pick_weighted () in
              let found = ref None in
              let tried = ref 0 in
              while !found = None && !tried < tcount do
                let i = (start + !tried) mod tcount in
                if not (Queue.is_empty queues.(v).(i)) then
                  found := Some (i, Queue.pop queues.(v).(i));
                incr tried
              done;
              !found
          end)
    in
    let inboxes =
      Net.broadcast_round net (fun v ->
          match choice.(v) with
          | Some (i, id) -> Some [| i; id |]
          | None -> None)
    in
    for v = 0 to n - 1 do
      (match choice.(v) with
      | Some _ ->
        relays.(v) <- relays.(v) + 1;
        record_broadcast_crossings g edge_crossings v
      | None -> ());
      List.iter
        (fun (sender, m) ->
          let i = m.(0) and id = m.(1) in
          hear v id;
          (* adopt for relaying if the tree edge (sender, v) exists, or if
             v is a member hearing it from a non-member injector *)
          if member.(i).(v) && (is_tree_edge i sender v || not (member.(i).(sender)))
          then adopt v i id)
        inboxes.(v)
    done
  done;
  if not (all_heard ()) then
    failwith "Broadcast.via_dominating_trees: did not converge (bad packing?)";
  finish net start ~messages:total ~relays ~edge_crossings

(* ------------------------------------------------------------------ *)
(* E-CONGEST: spanning-tree packing *)

let via_spanning_trees ?(seed = 42) net (packing : Spantree.Spacking.t)
    ~sources =
  let trees = Array.of_list packing.Spantree.Spacking.trees in
  let tcount = Array.length trees in
  if tcount = 0 then invalid_arg "Broadcast.via_spanning_trees: empty packing";
  let g = Net.graph net in
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; tcount; 3 |] in
  let msgs, total = expand_sources sources in
  (* weighted random tree per message *)
  let weights = Array.map (fun tr -> tr.Spantree.Spacking.weight) trees in
  let wsum = Array.fold_left ( +. ) 0. weights in
  let pick_tree () =
    let x = Random.State.float rng wsum in
    let acc = ref 0. in
    let chosen = ref (tcount - 1) in
    (try
       Array.iteri
         (fun i w ->
           acc := !acc +. w;
           if !acc >= x then begin
             chosen := i;
             raise Exit
           end)
         weights
     with Exit -> ());
    !chosen
  in
  let tree_of_msg = Array.init total (fun _ -> pick_tree ()) in
  (* per tree: adjacency lists *)
  let tree_adj =
    Array.map
      (fun tr ->
        let adj = Array.make n [] in
        List.iter
          (fun (u, v) ->
            adj.(u) <- v :: adj.(u);
            adj.(v) <- u :: adj.(v))
          tr.Spantree.Spacking.edges;
        adj)
      trees
  in
  (* per directed edge (v, u): fifo of (tree, msg) to forward *)
  let out_queues = Array.init n (fun _ -> Hashtbl.create 8) in
  let queue_of v u =
    match Hashtbl.find_opt out_queues.(v) u with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace out_queues.(v) u q;
      q
  in
  let heard = Array.init n (fun _ -> Hashtbl.create 16) in
  let heard_count = Array.make n 0 in
  let learn v i id ~from =
    if not (Hashtbl.mem heard.(v) id) then begin
      Hashtbl.replace heard.(v) id ();
      heard_count.(v) <- heard_count.(v) + 1;
      (* schedule forwarding along the tree, away from the source *)
      List.iter
        (fun u -> if u <> from then Queue.add (i, id) (queue_of v u))
        tree_adj.(i).(v)
    end
  in
  List.iter
    (fun (id, origin) -> learn origin tree_of_msg.(id) id ~from:(-1))
    msgs;
  let relays = Array.make n 0 in
  let edge_crossings = Array.make (Graph.m g) 0 in
  let start = Net.checkpoint net in
  let all_heard () = Array.for_all (fun c -> c = total) heard_count in
  let guard = ref 0 in
  while (not (all_heard ())) && !guard < 100 * (total + n) do
    incr guard;
    let outgoing =
      Array.init n (fun v ->
          Hashtbl.fold
            (fun u q acc ->
              if Queue.is_empty q then acc
              else begin
                let i, id = Queue.pop q in
                (u, [| i; id |]) :: acc
              end)
            out_queues.(v) []
          |> List.sort (fun (a, _) (b, _) -> compare a b))
    in
    let inboxes = Net.edge_round net (fun v -> outgoing.(v)) in
    for v = 0 to n - 1 do
      List.iter
        (fun (u, (_ : Net.msg)) ->
          relays.(v) <- relays.(v) + 1;
          record_crossing edge_crossings (Graph.edge_index g v u))
        outgoing.(v);
      List.iter
        (fun (sender, m) -> learn v m.(0) m.(1) ~from:sender)
        inboxes.(v)
    done
  done;
  if not (all_heard ()) then
    failwith "Broadcast.via_spanning_trees: did not converge (bad packing?)";
  finish net start ~messages:total ~relays ~edge_crossings

(* ------------------------------------------------------------------ *)
(* Fault-tolerant variants: same store-and-forward schedulers, but
   aware of a Faults adversary. Recovery semantics:
   - a tree with a crashed member or a killed tree edge is dead; its
     pending relays are rerouted onto surviving trees;
   - every [repair_every] rounds each node re-gossips one random heard
     message (retransmission against Bernoulli drops);
   - delivery is owed to surviving nodes only, and only for messages
     some survivor has heard. *)

type ft_result = {
  ft_rounds : int;
  ft_messages : int;
  ft_delivered : int;
  ft_throughput : float;
  ft_coverage : float;
  ft_survivors : int;
  ft_dead_trees : int;
  ft_converged : bool;
}

let via_dominating_trees_ft ?(seed = 42) ?(repair_every = 8) ?round_cap net
    faults (packing : Domtree.Packing.t) ~sources =
  let trees = Array.of_list packing.Domtree.Packing.trees in
  let tcount = Array.length trees in
  if tcount = 0 then
    invalid_arg "Broadcast.via_dominating_trees_ft: empty packing";
  let g = Net.graph net in
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; tcount; 17 |] in
  let msgs, total = expand_sources sources in
  let cap =
    match round_cap with Some c -> c | None -> (20 * (total + n)) + 200
  in
  let member = Array.make_matrix tcount n false in
  let tree_edge = Hashtbl.create 256 in
  Array.iteri
    (fun i tr ->
      Array.iter (fun v -> member.(i).(v) <- true) tr.Domtree.Packing.vertices;
      List.iter
        (fun (u, v) -> Hashtbl.replace tree_edge (i, min u v, max u v) ())
        tr.Domtree.Packing.edges)
    trees;
  let is_tree_edge i u v = Hashtbl.mem tree_edge (i, min u v, max u v) in
  let tree_dead = Array.make tcount false in
  let tree_of_msg = Array.init total (fun _ -> Random.State.int rng tcount) in
  (* liveness bookkeeping: heard_alive.(id) counts surviving hearers *)
  let node_dead = Array.make n false in
  let alive_count = ref n in
  let heard = Array.init n (fun _ -> Hashtbl.create 16) in
  let heard_alive = Array.make total 0 in
  let hear v id =
    if (not node_dead.(v)) && not (Hashtbl.mem heard.(v) id) then begin
      Hashtbl.replace heard.(v) id ();
      heard_alive.(id) <- heard_alive.(id) + 1
    end
  in
  let queues =
    Array.init n (fun _ -> Array.init tcount (fun _ -> Queue.create ()))
  in
  let relayed = Array.init n (fun _ -> Hashtbl.create 16) in
  let adopt v i id =
    if
      member.(i).(v)
      && (not tree_dead.(i))
      && not (Hashtbl.mem relayed.(v) (i, id))
    then begin
      Hashtbl.replace relayed.(v) (i, id) ();
      Queue.add id queues.(v).(i)
    end
  in
  let inject = Array.init n (fun _ -> Queue.create ()) in
  List.iter
    (fun (id, origin) ->
      hear origin id;
      let i = tree_of_msg.(id) in
      if member.(i).(origin) then adopt origin i id
      else Queue.add id inject.(origin))
    msgs;
  let surviving_trees () =
    let acc = ref [] in
    for i = tcount - 1 downto 0 do
      if not tree_dead.(i) then acc := i :: !acc
    done;
    !acc
  in
  let random_of = function
    | [] -> None
    | l -> Some (List.nth l (Random.State.int rng (List.length l)))
  in
  (* a surviving tree v belongs to, else any surviving tree (tagged so
     the caller knows whether v can relay it itself) *)
  let pick_surviving v =
    match
      random_of (List.filter (fun i -> member.(i).(v)) (surviving_trees ()))
    with
    | Some i -> Some (true, i)
    | None -> (
      match random_of (surviving_trees ()) with
      | Some i -> Some (false, i)
      | None -> None)
  in
  let dead_trees = ref 0 in
  let reroute v i =
    let q = queues.(v).(i) in
    while not (Queue.is_empty q) do
      let id = Queue.pop q in
      match pick_surviving v with
      | Some (true, j) -> Queue.add id queues.(v).(j)
      | Some (false, _) | None -> Queue.add id inject.(v)
    done
  in
  let kill_tree i =
    if not tree_dead.(i) then begin
      tree_dead.(i) <- true;
      incr dead_trees;
      for v = 0 to n - 1 do
        if not node_dead.(v) then reroute v i
      done
    end
  in
  let bury v =
    if not node_dead.(v) then begin
      node_dead.(v) <- true;
      decr alive_count;
      (* lint: allow hashtbl-order — commutative counter decrements *)
      Hashtbl.iter
        (fun id () -> heard_alive.(id) <- heard_alive.(id) - 1)
        heard.(v)
    end
  in
  let known_crashes = ref 0 and known_kills = ref 0 in
  let sync_faults () =
    if Congest.Faults.crashes faults <> !known_crashes then begin
      known_crashes := Congest.Faults.crashes faults;
      List.iter bury (Congest.Faults.crashed_nodes faults);
      for i = 0 to tcount - 1 do
        if
          (not tree_dead.(i))
          && Array.exists
               (fun v -> node_dead.(v))
               trees.(i).Domtree.Packing.vertices
        then kill_tree i
      done
    end;
    if Congest.Faults.edges_killed faults <> !known_kills then begin
      known_kills := Congest.Faults.edges_killed faults;
      List.iter
        (fun (u, v) ->
          for i = 0 to tcount - 1 do
            if (not tree_dead.(i)) && is_tree_edge i u v then kill_tree i
          done)
        (Congest.Faults.killed_edges faults)
    end
  in
  sync_faults ();
  let rr = Array.make n 0 in
  let start = Net.checkpoint net in
  let all_done () =
    !alive_count = 0
    ||
    let ok = ref true in
    for id = 0 to total - 1 do
      let h = heard_alive.(id) in
      if h <> 0 && h <> !alive_count then ok := false
    done;
    !ok
  in
  let round = ref 0 in
  while (not (all_done ())) && !round < cap do
    incr round;
    if !round mod repair_every = 0 then
      (* repair tick: every survivor re-gossips one random heard message *)
      for v = 0 to n - 1 do
        if not node_dead.(v) then begin
          let ks =
            List.sort compare
              (Hashtbl.fold (fun id () acc -> id :: acc) heard.(v) [])
          in
          match random_of ks with
          | None -> ()
          | Some id -> (
            match pick_surviving v with
            | Some (true, j) -> Queue.add id queues.(v).(j)
            | Some (false, _) -> Queue.add id inject.(v)
            | None -> ())
        end
      done;
    let choice =
      Array.init n (fun v ->
          if node_dead.(v) then None
          else if not (Queue.is_empty inject.(v)) then begin
            let id = Queue.pop inject.(v) in
            let i0 = tree_of_msg.(id) in
            let i =
              if not tree_dead.(i0) then i0
              else
                match random_of (surviving_trees ()) with
                | Some j ->
                  tree_of_msg.(id) <- j;
                  j
                | None -> i0
            in
            Some (i, id)
          end
          else begin
            let found = ref None in
            let tried = ref 0 in
            while !found = None && !tried < tcount do
              let i = (rr.(v) + !tried) mod tcount in
              if not (Queue.is_empty queues.(v).(i)) then begin
                found := Some (i, Queue.pop queues.(v).(i));
                rr.(v) <- (i + 1) mod tcount
              end;
              incr tried
            done;
            !found
          end)
    in
    let inboxes =
      Net.broadcast_round net (fun v ->
          match choice.(v) with
          | Some (i, id) -> Some [| i; id |]
          | None -> None)
    in
    sync_faults ();
    for v = 0 to n - 1 do
      if not node_dead.(v) then
        List.iter
          (fun (sender, m) ->
            let i = m.(0) and id = m.(1) in
            hear v id;
            if
              member.(i).(v)
              && (is_tree_edge i sender v || not member.(i).(sender))
            then adopt v i id)
          inboxes.(v)
    done
  done;
  let converged = all_done () in
  let rounds = max 1 (Net.rounds_since net start) in
  let delivered = ref 0 and pairs = ref 0 in
  for id = 0 to total - 1 do
    pairs := !pairs + heard_alive.(id);
    if !alive_count > 0 && heard_alive.(id) = !alive_count then incr delivered
  done;
  {
    ft_rounds = rounds;
    ft_messages = total;
    ft_delivered = !delivered;
    ft_throughput = float_of_int !delivered /. float_of_int rounds;
    ft_coverage =
      (if total = 0 || !alive_count = 0 then 1.
       else float_of_int !pairs /. float_of_int (total * !alive_count));
    ft_survivors = !alive_count;
    ft_dead_trees = !dead_trees;
    ft_converged = converged;
  }

let naive_single_tree_ft ?(repair_every = 8) ?round_cap net faults ~sources =
  let g = Net.graph net in
  let n = Graph.n g in
  let msgs, total = expand_sources sources in
  let cap =
    match round_cap with Some c -> c | None -> (20 * (total + n)) + 200
  in
  (* the tree predates the faults: build it on a fault-free scratch net
     over the same graph and charge those rounds to the real clock *)
  let scratch = Net.create (Net.model net) g in
  let tree = Congest.Primitives.bfs_tree scratch ~root:0 in
  Net.silent_rounds net (Net.rounds scratch);
  let adj = Array.make n [] in
  Array.iteri
    (fun v p ->
      if p >= 0 && p <> v then begin
        adj.(v) <- p :: adj.(v);
        adj.(p) <- v :: adj.(p)
      end)
    tree.Congest.Primitives.parent;
  let node_dead = Array.make n false in
  let alive_count = ref n in
  let heard = Array.init n (fun _ -> Hashtbl.create 16) in
  let heard_alive = Array.make total 0 in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let learn v id =
    if (not node_dead.(v)) && not (Hashtbl.mem heard.(v) id) then begin
      Hashtbl.replace heard.(v) id ();
      heard_alive.(id) <- heard_alive.(id) + 1;
      Queue.add id queues.(v)
    end
  in
  List.iter (fun (id, origin) -> learn origin id) msgs;
  let bury v =
    if not node_dead.(v) then begin
      node_dead.(v) <- true;
      decr alive_count;
      (* lint: allow hashtbl-order — commutative counter decrements *)
      Hashtbl.iter
        (fun id () -> heard_alive.(id) <- heard_alive.(id) - 1)
        heard.(v)
    end
  in
  let tree_hit = ref false in
  let known_crashes = ref 0 and known_kills = ref 0 in
  let sync_faults () =
    if Congest.Faults.crashes faults <> !known_crashes then begin
      known_crashes := Congest.Faults.crashes faults;
      List.iter bury (Congest.Faults.crashed_nodes faults);
      if List.exists (fun v -> adj.(v) <> []) (Congest.Faults.crashed_nodes faults)
      then tree_hit := true
    end;
    if Congest.Faults.edges_killed faults <> !known_kills then begin
      known_kills := Congest.Faults.edges_killed faults;
      if
        List.exists
          (fun (u, v) -> List.mem v adj.(u))
          (Congest.Faults.killed_edges faults)
      then tree_hit := true
    end
  in
  sync_faults ();
  let rng = Random.State.make [| 42; n; total; 19 |] in
  let start = Net.checkpoint net in
  let all_done () =
    !alive_count = 0
    ||
    let ok = ref true in
    for id = 0 to total - 1 do
      let h = heard_alive.(id) in
      if h <> 0 && h <> !alive_count then ok := false
    done;
    !ok
  in
  let round = ref 0 in
  while (not (all_done ())) && !round < cap do
    incr round;
    if !round mod repair_every = 0 then
      (* retransmission against drops: re-pipeline one random heard
         message; the single tree itself is never routed around *)
      for v = 0 to n - 1 do
        if not node_dead.(v) then begin
          let ks =
            List.sort compare
              (Hashtbl.fold (fun id () acc -> id :: acc) heard.(v) [])
          in
          match ks with
          | [] -> ()
          | _ -> Queue.add (List.nth ks (Random.State.int rng (List.length ks)))
                   queues.(v)
        end
      done;
    let choice =
      Array.init n (fun v ->
          if node_dead.(v) || Queue.is_empty queues.(v) then None
          else Some (Queue.pop queues.(v)))
    in
    let inboxes =
      Net.broadcast_round net (fun v ->
          match choice.(v) with Some id -> Some [| id |] | None -> None)
    in
    sync_faults ();
    for v = 0 to n - 1 do
      if not node_dead.(v) then
        List.iter
          (fun (sender, m) -> if List.mem sender adj.(v) then learn v m.(0))
          inboxes.(v)
    done
  done;
  let converged = all_done () in
  let rounds = max 1 (Net.rounds_since net start) in
  let delivered = ref 0 and pairs = ref 0 in
  for id = 0 to total - 1 do
    pairs := !pairs + heard_alive.(id);
    if !alive_count > 0 && heard_alive.(id) = !alive_count then incr delivered
  done;
  {
    ft_rounds = rounds;
    ft_messages = total;
    ft_delivered = !delivered;
    ft_throughput = float_of_int !delivered /. float_of_int rounds;
    ft_coverage =
      (if total = 0 || !alive_count = 0 then 1.
       else float_of_int !pairs /. float_of_int (total * !alive_count));
    ft_survivors = !alive_count;
    ft_dead_trees = (if !tree_hit then 1 else 0);
    ft_converged = converged;
  }

(* ------------------------------------------------------------------ *)
(* Baseline: single BFS tree *)

let naive_single_tree net ~sources =
  let g = Net.graph net in
  let n = Graph.n g in
  let msgs, total = expand_sources sources in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let adj = Array.make n [] in
  Array.iteri
    (fun v p ->
      if p >= 0 && p <> v then begin
        adj.(v) <- p :: adj.(v);
        adj.(p) <- v :: adj.(p)
      end)
    tree.Congest.Primitives.parent;
  let heard = Array.init n (fun _ -> Hashtbl.create 16) in
  let heard_count = Array.make n 0 in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let learn v id =
    if not (Hashtbl.mem heard.(v) id) then begin
      Hashtbl.replace heard.(v) id ();
      heard_count.(v) <- heard_count.(v) + 1;
      Queue.add id queues.(v)
    end
  in
  List.iter (fun (id, origin) -> learn origin id) msgs;
  let relays = Array.make n 0 in
  let edge_crossings = Array.make (Graph.m g) 0 in
  let start = Net.checkpoint net in
  let all_heard () = Array.for_all (fun c -> c = total) heard_count in
  let guard = ref 0 in
  while (not (all_heard ())) && !guard < 100 * (total + n) do
    incr guard;
    let choice =
      Array.init n (fun v ->
          if Queue.is_empty queues.(v) then None else Some (Queue.pop queues.(v)))
    in
    let inboxes =
      Net.broadcast_round net (fun v ->
          match choice.(v) with Some id -> Some [| id |] | None -> None)
    in
    for v = 0 to n - 1 do
      (match choice.(v) with
      | Some _ ->
        relays.(v) <- relays.(v) + 1;
        record_broadcast_crossings g edge_crossings v
      | None -> ());
      List.iter
        (fun (sender, m) -> if List.mem sender adj.(v) then learn v m.(0))
        inboxes.(v)
    done
  done;
  if not (all_heard ()) then
    failwith "Broadcast.naive_single_tree: did not converge";
  finish net start ~messages:total ~relays ~edge_crossings
