module Graph = Graphs.Graph
module Net = Congest.Net

type result = {
  rounds : int;
  messages : int;
  throughput : float;
  max_vertex_congestion : int;
  max_edge_congestion : int;
}

let expand_sources sources =
  (* (origin, count) list -> per-message origins, message ids 0.. *)
  let acc = ref [] in
  let id = ref 0 in
  List.iter
    (fun (origin, count) ->
      for _ = 1 to count do
        acc := (!id, origin) :: !acc;
        incr id
      done)
    sources;
  (List.rev !acc, !id)

let finish net start ~messages ~relays ~edge_crossings =
  let rounds = max 1 (Net.rounds_since net start) in
  {
    rounds;
    messages;
    throughput = float_of_int messages /. float_of_int rounds;
    max_vertex_congestion = Array.fold_left max 0 relays;
    max_edge_congestion = Array.fold_left max 0 edge_crossings;
  }

(* ------------------------------------------------------------------ *)
(* V-CONGEST: dominating-tree packing *)

let via_dominating_trees ?(seed = 42) ?(schedule = `Round_robin) net
    (packing : Domtree.Packing.t) ~sources =
  let trees = Array.of_list packing.Domtree.Packing.trees in
  let tcount = Array.length trees in
  if tcount = 0 then
    invalid_arg "Broadcast.via_dominating_trees: empty packing";
  let g = Net.graph net in
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; tcount |] in
  let weights = Array.of_list packing.Domtree.Packing.weights in
  let wsum = Array.fold_left ( +. ) 0. weights in
  (* time-sharing: under `Weighted, a node serves tree i with probability
     proportional to x_i — the literal fractional-packing semantics of
     §1.1; `Round_robin is the uniform-weight special case *)
  let pick_weighted () =
    let x = Random.State.float rng wsum in
    let acc = ref 0. in
    let chosen = ref (tcount - 1) in
    (try
       Array.iteri
         (fun i w ->
           acc := !acc +. w;
           if !acc >= x then begin
             chosen := i;
             raise Exit
           end)
         weights
     with Exit -> ());
    !chosen
  in
  let msgs, total = expand_sources sources in
  (* assignment: message -> random tree *)
  let tree_of_msg = Array.init total (fun _ -> Random.State.int rng tcount) in
  (* membership and tree adjacency *)
  let member = Array.make_matrix tcount n false in
  let tree_edge = Hashtbl.create 256 in
  Array.iteri
    (fun i tr ->
      Array.iter (fun v -> member.(i).(v) <- true) tr.Domtree.Packing.vertices;
      List.iter
        (fun (u, v) -> Hashtbl.replace tree_edge (i, min u v, max u v) ())
        tr.Domtree.Packing.edges)
    trees;
  let is_tree_edge i u v = Hashtbl.mem tree_edge (i, min u v, max u v) in
  (* per-node state *)
  let heard = Array.init n (fun _ -> Hashtbl.create 16) in
  let heard_count = Array.make n 0 in
  let hear v msg =
    if not (Hashtbl.mem heard.(v) msg) then begin
      Hashtbl.replace heard.(v) msg ();
      heard_count.(v) <- heard_count.(v) + 1
    end
  in
  (* relay queues: per node, per tree, fifo of message ids to rebroadcast *)
  let queues = Array.init n (fun _ -> Array.init tcount (fun _ -> Queue.create ())) in
  let relayed = Array.init n (fun _ -> Hashtbl.create 16) in
  let adopt v i msg =
    (* member v will relay msg of tree i exactly once *)
    if member.(i).(v) && not (Hashtbl.mem relayed.(v) (i, msg)) then begin
      Hashtbl.replace relayed.(v) (i, msg) ();
      Queue.add msg queues.(v).(i)
    end
  in
  (* injection queues at origins *)
  let inject = Array.init n (fun _ -> Queue.create ()) in
  List.iter
    (fun (id, origin) ->
      hear origin id;
      let i = tree_of_msg.(id) in
      if member.(i).(origin) then adopt origin i id
      else Queue.add id inject.(origin))
    msgs;
  let rr = Array.make n 0 in
  let relays = Array.make n 0 in
  let edge_crossings = Array.make (Graph.m g) 0 in
  let start = Net.checkpoint net in
  let all_heard () = Array.for_all (fun c -> c = total) heard_count in
  let guard = ref 0 in
  while (not (all_heard ())) && !guard < 100 * (total + n) do
    incr guard;
    let choice =
      Array.init n (fun v ->
          if not (Queue.is_empty inject.(v)) then begin
            let id = Queue.pop inject.(v) in
            Some (tree_of_msg.(id), id)
          end
          else begin
            match schedule with
            | `Round_robin ->
              (* round-robin over trees with pending relays *)
              let found = ref None in
              let tried = ref 0 in
              while !found = None && !tried < tcount do
                let i = (rr.(v) + !tried) mod tcount in
                if not (Queue.is_empty queues.(v).(i)) then begin
                  found := Some (i, Queue.pop queues.(v).(i));
                  rr.(v) <- (i + 1) mod tcount
                end;
                incr tried
              done;
              !found
            | `Weighted ->
              (* sample a tree by weight; fall back to the next pending
                 one so no round is wasted while work remains *)
              let start = pick_weighted () in
              let found = ref None in
              let tried = ref 0 in
              while !found = None && !tried < tcount do
                let i = (start + !tried) mod tcount in
                if not (Queue.is_empty queues.(v).(i)) then
                  found := Some (i, Queue.pop queues.(v).(i));
                incr tried
              done;
              !found
          end)
    in
    let inboxes =
      Net.broadcast_round net (fun v ->
          match choice.(v) with
          | Some (i, id) -> Some [| i; id |]
          | None -> None)
    in
    for v = 0 to n - 1 do
      (match choice.(v) with
      | Some _ ->
        relays.(v) <- relays.(v) + 1;
        Array.iter
          (fun u ->
            let ei = Graph.edge_index g v u in
            edge_crossings.(ei) <- edge_crossings.(ei) + 1)
          (Graph.neighbors g v)
      | None -> ());
      List.iter
        (fun (sender, m) ->
          let i = m.(0) and id = m.(1) in
          hear v id;
          (* adopt for relaying if the tree edge (sender, v) exists, or if
             v is a member hearing it from a non-member injector *)
          if member.(i).(v) && (is_tree_edge i sender v || not (member.(i).(sender)))
          then adopt v i id)
        inboxes.(v)
    done
  done;
  if not (all_heard ()) then
    failwith "Broadcast.via_dominating_trees: did not converge (bad packing?)";
  finish net start ~messages:total ~relays ~edge_crossings

(* ------------------------------------------------------------------ *)
(* E-CONGEST: spanning-tree packing *)

let via_spanning_trees ?(seed = 42) net (packing : Spantree.Spacking.t)
    ~sources =
  let trees = Array.of_list packing.Spantree.Spacking.trees in
  let tcount = Array.length trees in
  if tcount = 0 then invalid_arg "Broadcast.via_spanning_trees: empty packing";
  let g = Net.graph net in
  let n = Graph.n g in
  let rng = Random.State.make [| seed; n; tcount; 3 |] in
  let msgs, total = expand_sources sources in
  (* weighted random tree per message *)
  let weights = Array.map (fun tr -> tr.Spantree.Spacking.weight) trees in
  let wsum = Array.fold_left ( +. ) 0. weights in
  let pick_tree () =
    let x = Random.State.float rng wsum in
    let acc = ref 0. in
    let chosen = ref (tcount - 1) in
    (try
       Array.iteri
         (fun i w ->
           acc := !acc +. w;
           if !acc >= x then begin
             chosen := i;
             raise Exit
           end)
         weights
     with Exit -> ());
    !chosen
  in
  let tree_of_msg = Array.init total (fun _ -> pick_tree ()) in
  (* per tree: adjacency lists *)
  let tree_adj =
    Array.map
      (fun tr ->
        let adj = Array.make n [] in
        List.iter
          (fun (u, v) ->
            adj.(u) <- v :: adj.(u);
            adj.(v) <- u :: adj.(v))
          tr.Spantree.Spacking.edges;
        adj)
      trees
  in
  (* per directed edge (v, u): fifo of (tree, msg) to forward *)
  let out_queues = Array.init n (fun _ -> Hashtbl.create 8) in
  let queue_of v u =
    match Hashtbl.find_opt out_queues.(v) u with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace out_queues.(v) u q;
      q
  in
  let heard = Array.init n (fun _ -> Hashtbl.create 16) in
  let heard_count = Array.make n 0 in
  let learn v i id ~from =
    if not (Hashtbl.mem heard.(v) id) then begin
      Hashtbl.replace heard.(v) id ();
      heard_count.(v) <- heard_count.(v) + 1;
      (* schedule forwarding along the tree, away from the source *)
      List.iter
        (fun u -> if u <> from then Queue.add (i, id) (queue_of v u))
        tree_adj.(i).(v)
    end
  in
  List.iter
    (fun (id, origin) -> learn origin tree_of_msg.(id) id ~from:(-1))
    msgs;
  let relays = Array.make n 0 in
  let edge_crossings = Array.make (Graph.m g) 0 in
  let start = Net.checkpoint net in
  let all_heard () = Array.for_all (fun c -> c = total) heard_count in
  let guard = ref 0 in
  while (not (all_heard ())) && !guard < 100 * (total + n) do
    incr guard;
    let outgoing =
      Array.init n (fun v ->
          Hashtbl.fold
            (fun u q acc ->
              if Queue.is_empty q then acc
              else begin
                let i, id = Queue.pop q in
                (u, [| i; id |]) :: acc
              end)
            out_queues.(v) [])
    in
    let inboxes = Net.edge_round net (fun v -> outgoing.(v)) in
    for v = 0 to n - 1 do
      List.iter
        (fun (u, (_ : Net.msg)) ->
          relays.(v) <- relays.(v) + 1;
          let ei = Graph.edge_index g v u in
          edge_crossings.(ei) <- edge_crossings.(ei) + 1)
        outgoing.(v);
      List.iter
        (fun (sender, m) -> learn v m.(0) m.(1) ~from:sender)
        inboxes.(v)
    done
  done;
  if not (all_heard ()) then
    failwith "Broadcast.via_spanning_trees: did not converge (bad packing?)";
  finish net start ~messages:total ~relays ~edge_crossings

(* ------------------------------------------------------------------ *)
(* Baseline: single BFS tree *)

let naive_single_tree net ~sources =
  let g = Net.graph net in
  let n = Graph.n g in
  let msgs, total = expand_sources sources in
  let tree = Congest.Primitives.bfs_tree net ~root:0 in
  let adj = Array.make n [] in
  Array.iteri
    (fun v p ->
      if p >= 0 && p <> v then begin
        adj.(v) <- p :: adj.(v);
        adj.(p) <- v :: adj.(p)
      end)
    tree.Congest.Primitives.parent;
  let heard = Array.init n (fun _ -> Hashtbl.create 16) in
  let heard_count = Array.make n 0 in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let learn v id =
    if not (Hashtbl.mem heard.(v) id) then begin
      Hashtbl.replace heard.(v) id ();
      heard_count.(v) <- heard_count.(v) + 1;
      Queue.add id queues.(v)
    end
  in
  List.iter (fun (id, origin) -> learn origin id) msgs;
  let relays = Array.make n 0 in
  let edge_crossings = Array.make (Graph.m g) 0 in
  let start = Net.checkpoint net in
  let all_heard () = Array.for_all (fun c -> c = total) heard_count in
  let guard = ref 0 in
  while (not (all_heard ())) && !guard < 100 * (total + n) do
    incr guard;
    let choice =
      Array.init n (fun v ->
          if Queue.is_empty queues.(v) then None else Some (Queue.pop queues.(v)))
    in
    let inboxes =
      Net.broadcast_round net (fun v ->
          match choice.(v) with Some id -> Some [| id |] | None -> None)
    in
    for v = 0 to n - 1 do
      (match choice.(v) with
      | Some _ ->
        relays.(v) <- relays.(v) + 1;
        (* V-CONGEST broadcast physically crosses every incident edge *)
        Array.iter
          (fun u ->
            let ei = Graph.edge_index g v u in
            edge_crossings.(ei) <- edge_crossings.(ei) + 1)
          (Graph.neighbors g v)
      | None -> ());
      List.iter
        (fun (sender, m) -> if List.mem sender adj.(v) then learn v m.(0))
        inboxes.(v)
    done
  done;
  if not (all_heard ()) then
    failwith "Broadcast.naive_single_tree: did not converge";
  finish net start ~messages:total ~relays ~edge_crossings
