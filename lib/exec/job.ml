type payload = {
  out : string;
  rows : string list;
  meta : (string * string) list;
}

type t = {
  algo : string;
  params : (string * string) list;
  seed : int;
  label : string;
  run : unit -> payload;
}

let default_label ~algo ~params ~seed =
  let ps =
    match params with
    | [] -> ""
    | l ->
      "("
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
      ^ ")"
  in
  Printf.sprintf "%s%s#%d" algo ps seed

let make ~algo ?(params = []) ?(seed = 0) ?label run =
  let params = List.sort compare params in
  let label =
    match label with Some l -> l | None -> default_label ~algo ~params ~seed
  in
  { algo; params; seed; label; run }

(* The canonical rendering separates fields with NUL so no choice of
   algo/param strings can collide with another job's rendering. *)
let key t =
  let b = Buffer.create 64 in
  Buffer.add_string b t.algo;
  Buffer.add_char b '\x00';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k;
      Buffer.add_char b '\x01';
      Buffer.add_string b v;
      Buffer.add_char b '\x00')
    t.params;
  Buffer.add_string b (string_of_int t.seed);
  Digest.to_hex (Digest.string (Buffer.contents b))

let label t = t.label
let run t = t.run ()
let payload ?(rows = []) ?(meta = []) out = { out; rows; meta }
let meta p k = List.assoc_opt k p.meta
