(** Work-stealing domain pool with deterministic result ordering.

    Tasks are indexed [0..n-1]; idle domains steal the next unclaimed
    index from a shared atomic counter, so the {e schedule} (which
    domain runs which task, in what real-time order) is nondeterministic
    but the {e result} is not: outcome [i] is always task [i]'s outcome,
    and tasks are required to be pure closures over their own private
    state (see {!Job}), so the outcome array of a [~domains:n] run is
    identical to a [~domains:1] run.

    Crash containment: an exception escaping task [i] is captured as
    [`Failed message] in slot [i]; the other tasks and the pool itself
    are unaffected.

    With [domains = 1] (or a single task) everything runs inline on the
    calling domain and [Domain.spawn] is never reached — the sequential
    baseline really is sequential. *)

type 'a outcome = [ `Ok of 'a | `Failed of string ]

type progress = {
  p_done : int;
  p_total : int;
  p_elapsed_s : float;
  p_eta_s : float;  (** linear extrapolation; 0 until the first task ends *)
  p_utilization : float array;
      (** per-domain busy-fraction of elapsed wall-clock *)
}

type 'a report = {
  results : 'a outcome array;  (** slot [i] = task [i], every run *)
  wall_s : float;
  busy_s : float array;  (** per-domain seconds spent inside tasks *)
}

(** [Domain.recommended_domain_count () - 1], at least 1 — leave a core
    for the coordinator/OS. *)
val default_domains : unit -> int

(** [run ?domains ?metrics ?on_progress tasks] executes every task and
    returns the ordered outcomes. [on_progress] is invoked (serialized,
    from whichever domain finished a task) after each completion.

    With [metrics], the pool feeds [exec_jobs_total],
    [exec_jobs_failed_total], and [exec_steals_total] (tasks claimed by
    a domain other than the caller's) — counter updates only, so the
    schedule and results are unaffected. *)
val run :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  ?on_progress:(progress -> unit) ->
  (unit -> 'a) array ->
  'a report
