type item = Text of string | Job of Job.t

let text fmt = Format.kasprintf (fun s -> Text s) fmt

type stats = {
  name : string;
  jobs : int;
  ok : int;
  failed : int;
  cache_hits : int;
  cache_misses : int;
  domains : int;
  wall_s : float;
  cpu_s : float;
  speedup_est : float;
  utilization : float array;
  rows_digest : string;
}

let default_jobs = Pool.default_domains

(* Throttled stderr meter; returns a Pool.on_progress callback. The
   clock read is display-only (lib/exec is scope-exempt from
   nondet-clock — nothing here feeds back into job payloads). *)
let stderr_meter ~name () =
  let last = ref 0. in
  fun (p : Pool.progress) ->
    let due = p.Pool.p_elapsed_s -. !last >= 0.5 || p.Pool.p_done = p.Pool.p_total in
    if due then begin
      last := p.Pool.p_elapsed_s;
      let util =
        if Array.length p.Pool.p_utilization = 0 then 0.
        else
          Array.fold_left ( +. ) 0. p.Pool.p_utilization
          /. float_of_int (Array.length p.Pool.p_utilization)
      in
      Printf.eprintf "\r[%s] %d/%d jobs  elapsed %.1fs  eta %.1fs  util %3.0f%%%s"
        name p.Pool.p_done p.Pool.p_total p.Pool.p_elapsed_s p.Pool.p_eta_s
        (100. *. util)
        (if p.Pool.p_done = p.Pool.p_total then "\n" else "");
      flush stderr
    end

let run ~name ?jobs ?cache ?csv ?csv_header ?bench_json ?progress items =
  let domains =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let grid =
    List.filter_map (function Job j -> Some j | Text _ -> None) items
    |> Array.of_list
  in
  let total = Array.length grid in
  let from_cache = Array.make (max 1 total) false in
  let tasks =
    Array.mapi
      (fun i job () ->
        match cache with
        | None -> Job.run job
        | Some c -> (
          let key = Job.key job in
          match Cache.find c ~key with
          | Some p ->
            from_cache.(i) <- true;
            p
          | None ->
            let p = Job.run job in
            Cache.store c ~key p;
            p))
      grid
  in
  let progress =
    match progress with Some b -> b | None -> total > 1
  in
  let on_progress = if progress then Some (stderr_meter ~name ()) else None in
  let report = Pool.run ~domains ?on_progress tasks in
  (* Render the document in item order, mirroring every byte into the
     digest buffer: text items, each payload's [out] and [rows] —
     payloads replayed from cache included — and failure lines. The
     digest is the sweep's document identity, what CI compares across
     warm/cold and -j N runs; it must not depend on whether a payload
     was executed or replayed, and it must not be vacuous for sweeps
     whose jobs emit no CSV rows (the seed digested only the rows, so a
     rows-free sweep reported the MD5 of the empty string). *)
  let doc = Buffer.create 4096 in
  let csv_lines = ref [] in
  let idx = ref 0 in
  let outcomes = ref [] in
  List.iter
    (fun item ->
      match item with
      | Text s ->
        print_string s;
        Buffer.add_string doc s
      | Job job ->
        let i = !idx in
        incr idx;
        let outcome = report.Pool.results.(i) in
        outcomes := (Job.label job, outcome) :: !outcomes;
        (match outcome with
        | `Ok p ->
          print_string p.Job.out;
          Buffer.add_string doc p.Job.out;
          List.iter
            (fun r ->
              Buffer.add_string doc r;
              Buffer.add_char doc '\n';
              csv_lines := r :: !csv_lines)
            p.Job.rows
        | `Failed msg ->
          Format.printf "FAILED %s: %s@." (Job.label job) msg;
          Buffer.add_string doc (Printf.sprintf "FAILED %s: %s\n" (Job.label job) msg)))
    items;
  flush stdout;
  let outcomes = List.rev !outcomes in
  (* CSV artifact, atomic *)
  (match (csv, csv_header) with
  | Some path, Some header ->
    Artifact.with_csv ~path ~header (fun emit ->
        List.iter emit (List.rev !csv_lines))
  | Some path, None ->
    Artifact.with_file ~path (fun emit ->
        List.iter emit (List.rev !csv_lines))
  | None, _ -> ());
  let hits = Array.fold_left (fun a b -> if b then a + 1 else a) 0 from_cache in
  let failed =
    Array.fold_left
      (fun a -> function `Failed _ -> a + 1 | `Ok _ -> a)
      0 report.Pool.results
  in
  let cpu_s = Array.fold_left ( +. ) 0. report.Pool.busy_s in
  let wall = report.Pool.wall_s in
  let stats =
    {
      name;
      jobs = total;
      ok = total - failed;
      failed;
      cache_hits = hits;
      cache_misses = total - hits;
      domains;
      wall_s = wall;
      cpu_s;
      speedup_est = (if wall > 0. then cpu_s /. wall else 1.);
      utilization =
        Array.map
          (fun b -> if wall > 0. then b /. wall else 0.)
          report.Pool.busy_s;
      rows_digest = Digest.to_hex (Digest.string (Buffer.contents doc));
    }
  in
  (match bench_json with
  | None -> ()
  | Some path ->
    let open Artifact in
    write_json ~path
      (Obj
         [
           ("sweep", String stats.name);
           ("jobs", Int stats.jobs);
           ("ok", Int stats.ok);
           ("failed", Int stats.failed);
           ("cache_hits", Int stats.cache_hits);
           ("cache_misses", Int stats.cache_misses);
           ("domains", Int stats.domains);
           ("wall_s", Float stats.wall_s);
           ("cpu_s", Float stats.cpu_s);
           ("speedup_vs_j1_est", Float stats.speedup_est);
           ( "utilization",
             List
               (Array.to_list
                  (Array.map (fun u -> Float u) stats.utilization)) );
           ("rows_digest", String stats.rows_digest);
         ]));
  (stats, outcomes)
