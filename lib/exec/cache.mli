(** Disk-backed memoization of job payloads, keyed by {!Job.key}.

    Layout: one file per entry at [<dir>/v<version>/<key>]. Bumping the
    version changes the directory, so every old entry becomes invisible
    at once — versioned invalidation without a scan. Entries carry a
    magic header and a digest of the marshalled payload; a read that
    fails the magic, the digest, or unmarshalling is treated as a miss
    and the corrupt file is moved into [<root>/_quarantine/] — never
    served, never silently destroyed (recompute-and-overwrite recovery,
    with the evidence preserved for inspection).

    Writes go through a per-domain temporary file that is fsync'd and
    then renamed into place, so a kill -9 at any instant never leaves a
    truncated or torn entry under the entry's name (the rename is
    atomic in the namespace; the fsync makes it atomic in content), and
    concurrent stores of the same key resolve to one complete file
    (last rename wins). [find]/[store] are safe to call from any
    {!Pool} domain. *)

type t

(** The default cache root, [_cache/] (gitignored). *)
val default_dir : string

(** The engine's entry-format version. Bump when {!Job.payload} or the
    entry encoding changes shape. *)
val format_version : int

(** [open_dir ?version ?metrics dir] creates [<dir>/v<version>/] if
    needed, and sweeps stale write temporaries ([<key>.tmp.<domain>]
    files a crashed writer left behind — nothing ever reads them, so at
    open time, which precedes every pool write of this process, they are
    garbage). [version] defaults to {!format_version}. With [metrics],
    the hit/miss/quarantine counters are mirrored into that registry as
    [exec_cache_{hits,misses,quarantined}_total]. *)
val open_dir : ?version:int -> ?metrics:Obs.Metrics.t -> string -> t

val dir : t -> string

(** [find t ~key] is the cached payload, or [None] on miss/corruption. *)
val find : t -> key:string -> Job.payload option

(** [store t ~key p] persists [p] atomically. Never called for failed
    jobs — only successful payloads are cacheable. *)
val store : t -> key:string -> Job.payload -> unit

(** Hit/miss counters since [open_dir] (every [find] increments one). *)
val hits : t -> int

val misses : t -> int

(** Entries moved to quarantine since [open_dir] (by {!find} or
    {!scan}). *)
val quarantined : t -> int

type scan_report = {
  scanned : int;  (** entry files examined *)
  valid : int;  (** decoded cleanly *)
  swept : int;  (** corrupt: quarantined by this scan *)
}

(** [scan t] decodes every entry in the cache (skipping the quarantine
    and write temporaries) and quarantines the ones that fail. After it
    returns, every entry still in place is servable — the invariant the
    crash-recovery harness asserts as "zero undetected-corrupt
    entries". *)
val scan : t -> scan_report
