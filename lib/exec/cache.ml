let default_dir = "_cache"
let format_version = 1
let magic = "EXEC-CACHE"

let quarantine_dirname = "_quarantine"

type cache_obs = {
  co_hits : Obs.Metrics.counter;
  co_misses : Obs.Metrics.counter;
  co_quarantined : Obs.Metrics.counter;
}

type t = {
  root : string;  (** the versioned subdirectory entries live in *)
  version : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  quarantined : int Atomic.t;
  obs : cache_obs option;
      (* mirrors of the three atomics in a shared registry, so a daemon
         can export them without holding the cache handle *)
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A writer that crashed between [open_out] and [Sys.rename] leaves its
   per-domain temporary behind; nothing ever reads "<key>.tmp.<domain>"
   files, so without a sweep they accumulate forever. [open_dir] runs
   before any pool domain starts writing, so everything matching the
   temporary pattern at open time is guaranteed stale. *)
let is_stale_tmp name =
  match String.index_opt name '.' with
  | None -> false
  | Some _ -> (
    (* "<key>.tmp.<digits>" *)
    match String.rindex_opt name '.' with
    | None -> false
    | Some last ->
      let suffix_ok =
        last < String.length name - 1
        && String.for_all
             (fun c -> c >= '0' && c <= '9')
             (String.sub name (last + 1) (String.length name - last - 1))
      in
      let tmp = ".tmp" in
      suffix_ok
      && last >= String.length tmp
      && String.sub name (last - String.length tmp) (String.length tmp) = tmp)

let sweep_stale_tmp root =
  match Sys.readdir root with
  | exception Sys_error _ -> 0
  | entries ->
    Array.fold_left
      (fun swept name ->
        if is_stale_tmp name then (
          (try Sys.remove (Filename.concat root name) with Sys_error _ -> ());
          swept + 1)
        else swept)
      0 entries

let open_dir ?(version = format_version) ?metrics dir =
  let root = Filename.concat dir (Printf.sprintf "v%d" version) in
  mkdir_p root;
  ignore (sweep_stale_tmp root);
  {
    root;
    version;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    quarantined = Atomic.make 0;
    obs =
      Option.map
        (fun m ->
          {
            co_hits = Obs.Metrics.counter m "exec_cache_hits_total";
            co_misses = Obs.Metrics.counter m "exec_cache_misses_total";
            co_quarantined =
              Obs.Metrics.counter m "exec_cache_quarantined_total";
          })
        metrics;
  }

let obs_incr t f =
  match t.obs with None -> () | Some o -> Obs.Metrics.incr (f o)

let dir t = t.root
let entry_path t ~key = Filename.concat t.root key

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Entry encoding: magic NL version NL hex-digest-of-data NL data,
   where data is the marshalled payload. Any structural or digest
   mismatch is corruption: delete and miss. *)
let decode s =
  match String.index_opt s '\n' with
  | None -> None
  | Some i1 -> (
    if String.sub s 0 i1 <> magic then None
    else
      match String.index_from_opt s (i1 + 1) '\n' with
      | None -> None
      | Some i2 -> (
        match String.index_from_opt s (i2 + 1) '\n' with
        | None -> None
        | Some i3 ->
          let digest = String.sub s (i2 + 1) (i3 - i2 - 1) in
          let data = String.sub s (i3 + 1) (String.length s - i3 - 1) in
          if Digest.to_hex (Digest.string data) <> digest then None
          else
            match (Marshal.from_string data 0 : Job.payload) with
            | p -> Some p
            | exception _ -> None))

(* A corrupt entry is never served and never silently destroyed: it is
   moved aside into the quarantine subdirectory (timestamped so repeat
   offenders of one key don't clobber each other's evidence), where a
   post-crash investigation can still read the bytes. The entry slot is
   freed either way, so the next store recomputes and overwrites. *)
let quarantine t path =
  let qdir = Filename.concat t.root quarantine_dirname in
  mkdir_p qdir;
  let dest =
    Filename.concat qdir
      (Printf.sprintf "%s.%d.%d" (Filename.basename path)
         (int_of_float (Unix.gettimeofday () *. 1000.))
         (Domain.self () :> int))
  in
  (try Sys.rename path dest
   with Sys_error _ -> ( (* cross-device or perms: deletion beats serving *)
     try Sys.remove path with Sys_error _ -> ()));
  Atomic.incr t.quarantined;
  obs_incr t (fun o -> o.co_quarantined)

let find t ~key =
  let path = entry_path t ~key in
  let entry =
    if not (Sys.file_exists path) then None
    else
      match decode (read_file path) with
      | Some p -> Some p
      | None | (exception Sys_error _) ->
        quarantine t path;
        None
  in
  (match entry with
  | Some _ ->
    Atomic.incr t.hits;
    obs_incr t (fun o -> o.co_hits)
  | None ->
    Atomic.incr t.misses;
    obs_incr t (fun o -> o.co_misses));
  entry

let store t ~key payload =
  let path = entry_path t ~key in
  let data = Marshal.to_string payload [] in
  let tmp =
    Printf.sprintf "%s.tmp.%d" path (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     output_char oc '\n';
     output_string oc (string_of_int t.version);
     output_char oc '\n';
     output_string oc (Digest.to_hex (Digest.string data));
     output_char oc '\n';
     output_string oc data;
     (* fsync before the rename: without it a crash can leave the
        {e renamed} file with torn contents — the rename is atomic in
        the namespace, not in the page cache *)
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc;
     Sys.rename tmp path
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let quarantined t = Atomic.get t.quarantined

type scan_report = { scanned : int; valid : int; swept : int }

(* Full-cache integrity audit (the chaos harness's "zero
   undetected-corrupt entries" check): decode every entry; failures are
   quarantined exactly as [find] would have. After [scan] returns,
   every remaining entry file decodes. *)
let scan t =
  let entries =
    match Sys.readdir t.root with
    | entries -> Array.to_list entries
    | exception Sys_error _ -> []
  in
  List.fold_left
    (fun acc name ->
      let path = Filename.concat t.root name in
      (* an entry can vanish between readdir and the stat/read (another
         process quarantining or sweeping it): Sys.is_directory and
         read_file then raise Sys_error, which must skip just that
         entry — counted neither valid nor swept — not abort the audit *)
      match
        if
          name = quarantine_dirname || is_stale_tmp name
          || Sys.is_directory path
        then `Skip
        else
          match decode (read_file path) with
          | Some _ -> `Valid
          | None -> `Corrupt
      with
      | `Skip | (exception Sys_error _) -> acc
      | `Valid -> { acc with scanned = acc.scanned + 1; valid = acc.valid + 1 }
      | `Corrupt ->
        quarantine t path;
        { acc with scanned = acc.scanned + 1; swept = acc.swept + 1 })
    { scanned = 0; valid = 0; swept = 0 }
    (List.sort String.compare entries)
